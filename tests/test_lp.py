"""Tests for the LP substrate: simplex vs HiGHS, cutting planes."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.lp import (
    LinearProgram,
    LPStatus,
    simplex_solve,
    solve_lp,
    solve_with_cutting_planes,
)


def _lp(c, rows, rhs, lower=None, upper=None):
    lp = LinearProgram(n_vars=len(c), c=np.array(c, float), lower=lower, upper=upper)
    for row, b in zip(rows, rhs):
        lp.add_constraint(np.array(row, float), b)
    return lp


class TestProblemContainer:
    def test_shape_validation(self):
        with pytest.raises(ValueError):
            LinearProgram(n_vars=2, c=np.array([1.0]))

    def test_row_shape_validation(self):
        lp = LinearProgram(n_vars=2, c=np.zeros(2))
        with pytest.raises(ValueError):
            lp.add_constraint(np.array([1.0]), 0.0)

    def test_bound_validation(self):
        with pytest.raises(ValueError):
            LinearProgram(
                n_vars=1, c=np.zeros(1), lower=np.array([2.0]), upper=np.array([1.0])
            )

    def test_sparse_constraint(self):
        lp = LinearProgram(n_vars=4, c=np.zeros(4))
        lp.add_sparse_constraint([(0, 1.0), (3, -2.0), (0, 0.5)], 7.0)
        A, b = lp.matrices()
        assert A[0].tolist() == [1.5, 0.0, 0.0, -2.0]
        assert b[0] == 7.0

    def test_empty_matrices(self):
        lp = LinearProgram(n_vars=3, c=np.zeros(3))
        A, b = lp.matrices()
        assert A.shape == (0, 3)
        assert b.shape == (0,)


class TestSimplexBasics:
    def test_simple_2d(self):
        # max x+y s.t. x+2y<=4, 3x+y<=6 -> min -(x+y); optimum (8/5, 6/5).
        lp = _lp([-1, -1], [[1, 2], [3, 1]], [4, 6])
        res = simplex_solve(lp)
        assert res.ok
        assert res.objective == pytest.approx(-(8 / 5 + 6 / 5))

    def test_degenerate_vertex(self):
        lp = _lp([-1, 0], [[1, 0], [1, 0], [0, 1]], [1, 1, 1])
        res = simplex_solve(lp)
        assert res.ok
        assert res.objective == pytest.approx(-1.0)

    def test_unbounded(self):
        lp = _lp([-1, 0], [[0, 1]], [1])
        assert simplex_solve(lp).status is LPStatus.UNBOUNDED

    def test_infeasible(self):
        # x <= -1 with x >= 0.
        lp = _lp([1], [[1]], [-1])
        assert simplex_solve(lp).status is LPStatus.INFEASIBLE

    def test_negative_rhs_feasible(self):
        # x >= 2 encoded as -x <= -2; minimize x -> 2.
        lp = _lp([1], [[-1]], [-2])
        res = simplex_solve(lp)
        assert res.ok
        assert res.objective == pytest.approx(2.0)

    def test_upper_bounds(self):
        lp = _lp([-1, -1], [], [], upper=np.array([1.0, 2.0]))
        res = simplex_solve(lp)
        assert res.ok
        assert res.objective == pytest.approx(-3.0)

    def test_lower_bound_shift(self):
        lp = _lp([1, 1], [[-1, -1]], [-5], lower=np.array([1.0, 1.0]))
        res = simplex_solve(lp)
        assert res.ok
        assert res.objective == pytest.approx(5.0)

    def test_no_constraints_min_at_lower(self):
        lp = _lp([2, 3], [], [], lower=np.array([1.0, 2.0]))
        res = simplex_solve(lp)
        assert res.ok
        assert res.objective == pytest.approx(8.0)

    def test_no_constraints_unbounded(self):
        lp = _lp([-1], [], [])
        assert simplex_solve(lp).status is LPStatus.UNBOUNDED

    def test_equality_via_two_rows(self):
        # x + y == 3 and min x -> x=0, y=3 with y <= 10.
        lp = _lp([1, 0], [[1, 1], [-1, -1]], [3, -3], upper=np.array([10.0, 10.0]))
        res = simplex_solve(lp)
        assert res.ok
        assert res.objective == pytest.approx(0.0)
        assert res.x[0] + res.x[1] == pytest.approx(3.0)


class TestBackendAgreement:
    @settings(max_examples=60, deadline=None)
    @given(st.integers(0, 2**31 - 1))
    def test_random_lps_agree(self, seed):
        """Simplex and HiGHS agree on random bounded-feasible LPs."""
        rng = np.random.default_rng(seed)
        n = int(rng.integers(1, 6))
        m = int(rng.integers(1, 8))
        A = rng.normal(size=(m, n))
        x0 = rng.uniform(0.2, 2.0, size=n)  # feasible interior point
        b = A @ x0 + rng.uniform(0.1, 1.0, size=m)
        c = rng.normal(size=n)
        upper = np.full(n, 10.0)  # keep it bounded
        lp1 = _lp(c, A, b, upper=upper)
        lp2 = _lp(c, A, b, upper=upper)
        r_highs = solve_lp(lp1, method="highs")
        r_simplex = solve_lp(lp2, method="simplex")
        assert r_highs.ok and r_simplex.ok
        assert r_simplex.objective == pytest.approx(r_highs.objective, abs=1e-6)

    def test_infeasible_agreement(self):
        rows, rhs = [[1.0], [-1.0]], [1.0, -2.0]  # x<=1 and x>=2
        assert solve_lp(_lp([1], rows, rhs), "highs").status is LPStatus.INFEASIBLE
        assert solve_lp(_lp([1], rows, rhs), "simplex").status is LPStatus.INFEASIBLE

    def test_unknown_method(self):
        with pytest.raises(ValueError):
            solve_lp(_lp([1], [], []), method="ellipsoid")


class TestCuttingPlanes:
    def test_converges_on_box(self):
        # min -x - y over the unit box, described only through the oracle.
        lp = _lp([-1, -1], [], [], upper=np.array([5.0, 5.0]))

        def oracle(x):
            cuts = []
            if x[0] > 1 + 1e-9:
                cuts.append((np.array([1.0, 0.0]), 1.0))
            if x[1] > 1 + 1e-9:
                cuts.append((np.array([0.0, 1.0]), 1.0))
            return cuts

        out = solve_with_cutting_planes(lp, oracle)
        assert out.ok
        assert out.result.objective == pytest.approx(-2.0)
        assert out.cuts_added == 2

    def test_no_cuts_needed(self):
        lp = _lp([1, 1], [], [])
        out = solve_with_cutting_planes(lp, lambda x: [])
        assert out.ok
        assert out.rounds == 1
        assert out.cuts_added == 0

    def test_max_rounds(self):
        lp = _lp([0.0], [], [], upper=np.array([1.0]))
        # Oracle always returns a (redundant) cut: never converges.
        out = solve_with_cutting_planes(
            lp, lambda x: [(np.array([1.0]), 2.0)], max_rounds=3
        )
        assert not out.converged
        assert out.rounds == 3

    def test_infeasible_cut(self):
        lp = _lp([1.0], [], [], upper=np.array([1.0]))

        def oracle(x):
            if x[0] >= -0.5:  # force x <= -1: infeasible with x >= 0
                return [(np.array([1.0]), -1.0)]
            return []

        out = solve_with_cutting_planes(lp, oracle)
        assert not out.ok
        assert out.result.status is LPStatus.INFEASIBLE

    def test_simplex_backend(self):
        lp = _lp([-1.0], [], [], upper=np.array([3.0]))
        out = solve_with_cutting_planes(
            lp, lambda x: [(np.array([1.0]), 1.0)] if x[0] > 1 + 1e-9 else [], method="simplex"
        )
        assert out.ok
        assert out.result.objective == pytest.approx(-1.0)
