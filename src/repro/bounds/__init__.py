"""Analytic bounds, constants and lower-bound instance families.

* :mod:`repro.bounds.harmonic` — harmonic numbers (exact, vectorized, and
  asymptotic for the astronomically large Theorem 12 constants).
* :mod:`repro.bounds.constants` — the paper's headline constants.
* :mod:`repro.bounds.instances` — the Theorem 11 cycle family and the
  Theorem 21 path-with-shortcuts family.
"""

from repro.bounds.harmonic import harmonic, harmonic_array, harmonic_diff
from repro.bounds.constants import (
    FRACTIONAL_SUBSIDY_BOUND,
    AON_SUBSIDY_BOUND,
    POS_INAPPROX_RATIO,
    pos_upper_bound,
)
from repro.bounds.instances import (
    theorem11_cycle_instance,
    theorem11_optimal_fraction,
    theorem21_path_instance,
    theorem21_fraction_limit,
)

__all__ = [
    "harmonic",
    "harmonic_array",
    "harmonic_diff",
    "FRACTIONAL_SUBSIDY_BOUND",
    "AON_SUBSIDY_BOUND",
    "POS_INAPPROX_RATIO",
    "pos_upper_bound",
    "theorem11_cycle_instance",
    "theorem11_optimal_fraction",
    "theorem21_path_instance",
    "theorem21_fraction_limit",
]
