"""Cross-module property tests: invariants that tie the library together."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.games import BroadcastGame, check_equilibrium, equilibrium_stretch
from repro.games.potential import potential_of_tree
from repro.graphs import Graph
from repro.graphs.generators import random_connected_gnp, random_tree_plus_chords
from repro.graphs.spanning_trees import (
    _enumerate_weight_bounded,
    enumerate_spanning_trees,
)
from repro.subsidies import (
    SubsidyAssignment,
    greedy_aon_sne,
    solve_aon_sne_exact,
    solve_sne_broadcast_lp3,
    theorem6_subsidies,
)


def _scaled(graph: Graph, factor: float) -> Graph:
    out = Graph()
    for u in graph.nodes:
        out.add_node(u)
    for u, v, w in graph.edges():
        out.add_edge(u, v, w * factor)
    return out


class TestScalingInvariance:
    """Multiplying all weights by lambda scales costs linearly and leaves
    every strategic fact unchanged."""

    @settings(max_examples=15, deadline=None)
    @given(st.integers(5, 9), st.integers(0, 5000), st.floats(0.1, 50.0))
    def test_equilibrium_status_invariant(self, n, seed, factor):
        g = random_tree_plus_chords(n, n // 2, seed=seed, chord_factor=1.1)
        state1 = BroadcastGame(g, root=0).mst_state()
        state2 = BroadcastGame(_scaled(g, factor), root=0).mst_state()
        assert state1.edge_set() == state2.edge_set()
        assert (
            check_equilibrium(state1).is_equilibrium
            == check_equilibrium(state2).is_equilibrium
        )

    @settings(max_examples=10, deadline=None)
    @given(st.integers(5, 8), st.integers(0, 5000), st.floats(0.5, 20.0))
    def test_lp_cost_scales_linearly(self, n, seed, factor):
        g = random_tree_plus_chords(n, n // 2, seed=seed, chord_factor=1.1)
        c1 = solve_sne_broadcast_lp3(BroadcastGame(g, root=0).mst_state()).cost
        c2 = solve_sne_broadcast_lp3(
            BroadcastGame(_scaled(g, factor), root=0).mst_state()
        ).cost
        assert c2 == pytest.approx(factor * c1, rel=1e-5, abs=1e-7)

    @settings(max_examples=10, deadline=None)
    @given(st.integers(5, 8), st.integers(0, 5000), st.floats(0.5, 20.0))
    def test_theorem6_scales_and_stretch_invariant(self, n, seed, factor):
        g = random_tree_plus_chords(n, n // 2, seed=seed, chord_factor=1.1)
        s1 = BroadcastGame(g, root=0).mst_state()
        s2 = BroadcastGame(_scaled(g, factor), root=0).mst_state()
        assert theorem6_subsidies(s2).cost == pytest.approx(
            factor * theorem6_subsidies(s1).cost, rel=1e-6
        )
        st1, st2 = equilibrium_stretch(s1), equilibrium_stretch(s2)
        if math.isfinite(st1):
            assert st2 == pytest.approx(st1, rel=1e-9)


class TestAccountingIdentities:
    @settings(max_examples=15, deadline=None)
    @given(st.integers(4, 9), st.floats(0.3, 0.8), st.integers(0, 5000))
    def test_player_costs_sum_to_unsubsidized_weight(self, n, p, seed):
        g = random_connected_gnp(n, p, seed=seed)
        state = BroadcastGame(g, root=0).mst_state()
        res = solve_sne_broadcast_lp3(state)
        # Total player payments = wgt(T) - subsidies placed on used edges.
        used_subsidy = res.subsidies.cost_on(state.edges)
        assert state.total_player_cost(res.subsidies) == pytest.approx(
            state.social_cost() - used_subsidy, abs=1e-7
        )

    @settings(max_examples=15, deadline=None)
    @given(st.integers(4, 9), st.floats(0.3, 0.8), st.integers(0, 5000))
    def test_lp_zero_iff_equilibrium(self, n, p, seed):
        g = random_connected_gnp(n, p, seed=seed)
        state = BroadcastGame(g, root=0).mst_state()
        cost = solve_sne_broadcast_lp3(state).cost
        assert (cost <= 1e-7) == check_equilibrium(state, tol=1e-7).is_equilibrium

    @settings(max_examples=10, deadline=None)
    @given(st.integers(4, 8), st.integers(0, 5000))
    def test_solver_cost_ordering(self, n, seed):
        """LP optimum <= exact AoN <= greedy AoN <= full subsidies, and
        LP <= Theorem 6 = wgt/e."""
        g = random_tree_plus_chords(n, n // 2, seed=seed, chord_factor=1.15)
        state = BroadcastGame(g, root=0).mst_state()
        lp = solve_sne_broadcast_lp3(state).cost
        aon = solve_aon_sne_exact(state).cost
        greedy = greedy_aon_sne(state).cost
        thm6 = theorem6_subsidies(state).cost
        full = sum(g.weight(*e) for e in state.edges)
        assert lp <= aon + 1e-7
        assert aon <= greedy + 1e-7
        assert greedy <= full + 1e-9
        assert lp <= thm6 + 1e-7
        assert thm6 == pytest.approx(full / math.e, rel=1e-6)

    @settings(max_examples=10, deadline=None)
    @given(st.integers(4, 8), st.floats(0.3, 0.8), st.integers(0, 5000))
    def test_potential_drops_with_subsidies(self, n, p, seed):
        g = random_connected_gnp(n, p, seed=seed)
        state = BroadcastGame(g, root=0).mst_state()
        sub = theorem6_subsidies(state).subsidies
        assert potential_of_tree(state, sub) <= potential_of_tree(state) + 1e-9


class TestEnumerationConsistency:
    @settings(max_examples=10, deadline=None)
    @given(st.integers(4, 7), st.floats(0.4, 0.9), st.integers(0, 5000))
    def test_weight_bounded_enumeration_is_a_filter(self, n, p, seed):
        g = random_connected_gnp(n, p, seed=seed)
        all_trees = {frozenset(t) for t in enumerate_spanning_trees(g)}
        budget = sorted(g.subset_weight(t) for t in all_trees)[len(all_trees) // 2]
        bounded = {frozenset(t) for t in _enumerate_weight_bounded(g, budget + 1e-9)}
        expected = {t for t in all_trees if g.subset_weight(t) <= budget + 1e-9}
        assert bounded == expected


class TestSubsidyValidity:
    @settings(max_examples=15, deadline=None)
    @given(st.integers(4, 9), st.floats(0.3, 0.8), st.integers(0, 5000))
    def test_all_solvers_respect_bounds(self, n, p, seed):
        g = random_connected_gnp(n, p, seed=seed)
        state = BroadcastGame(g, root=0).mst_state()
        for sub in (
            solve_sne_broadcast_lp3(state).subsidies,
            theorem6_subsidies(state).subsidies,
            solve_aon_sne_exact(state).subsidies,
        ):
            for e in sub:
                assert 0.0 <= sub[e] <= g.weight(*e) + 1e-9

    def test_assignment_rejects_cross_graph_reuse(self):
        g1 = Graph.from_edges([(0, 1, 1.0)])
        g2 = Graph.from_edges([(0, 1, 0.5)])
        sub = SubsidyAssignment(g1, {(0, 1): 1.0})
        with pytest.raises(ValueError):
            SubsidyAssignment(g2, dict(sub))
