"""``repro.scenarios`` — named, seeded, parameterized instance families.

The scenario catalogue turns the sweep runtime into a workload library:
structured topologies (grids, hypercubes, augmented cubes, power-law,
ISP-like, adversarial lower-bound rings) crossed with every game family
(broadcast, multicast, general, weighted, directed), all reproducible
from ``(name, n, seed, params)``.

>>> from repro.scenarios import build_scenario, scenario_names
>>> scenario_names()                                     # doctest: +SKIP
>>> game = build_scenario("grid", n=12, seed=7)          # doctest: +SKIP
>>> wg = build_scenario("isp-like", n=20, seed=7,
...                     game="weighted", demands="random")  # doctest: +SKIP
"""

from repro.scenarios.families import (
    GAME_PARAMS,
    SCENARIOS,
    ScenarioFamily,
    UnknownScenarioError,
    build_scenario,
    get_scenario,
    scenario_instances,
    scenario_names,
)
from repro.scenarios.scale import (
    LARGE_N_THRESHOLD,
    ScaleInstance,
    build_scenario_indexed,
)

__all__ = [
    "GAME_PARAMS",
    "LARGE_N_THRESHOLD",
    "SCENARIOS",
    "ScaleInstance",
    "ScenarioFamily",
    "UnknownScenarioError",
    "build_scenario",
    "build_scenario_indexed",
    "get_scenario",
    "scenario_instances",
    "scenario_names",
]
