"""A guided tour of the paper's hardness constructions, fully executed.

1. The Bypass gadget (Lemma 4): a tunable deviation threshold.
2. Theorem 3: bin-packing instances hidden inside MST equilibria.
3. Theorem 12: a SAT solver decides whether cheap (light) all-or-nothing
   subsidies exist — with exact rational arithmetic.

Run:  python examples/hardness_tour.py

Usage (doctested) — the Bypass gadget tempts its connector::

    >>> from repro.games.equilibrium import best_deviation_from_tree
    >>> from repro.hardness.bypass import build_bypass_game
    >>> game, state, gadget = build_bypass_game(5, 3)
    >>> dev = best_deviation_from_tree(state, gadget.connector)
    >>> dev.deviation_cost < dev.current_cost   # the bypass is cheaper
    True
"""

from repro.games.equilibrium import best_deviation_from_tree, check_equilibrium
from repro.hardness.bypass import build_bypass_game
from repro.hardness.binpacking_reduction import (
    any_mst_equilibrium,
    build_theorem3_instance,
    packing_from_tree,
)
from repro.hardness.sat_reduction import (
    build_theorem12_instance,
    light_enforcement_exists,
)
from repro.hardness.solvers import BinPackingInstance, CNFFormula


def tour_bypass() -> None:
    print("== 1. Bypass gadget (Lemma 4) ==")
    kappa = 5
    for beta in (3, 5, 7):
        game, state, gadget = build_bypass_game(kappa, beta)
        dev = best_deviation_from_tree(state, gadget.connector)
        verdict = "deviates" if dev.deviation_cost < dev.current_cost - 1e-12 else "stays"
        print(
            f"  capacity {kappa}, attached load {beta}: connector pays "
            f"{dev.current_cost:.4f} on the path vs {dev.deviation_cost:.4f} "
            f"on the bypass -> {verdict}"
        )
    print("  (threshold exactly at beta = kappa, as Lemma 4 states)\n")


def tour_binpacking() -> None:
    print("== 2. Theorem 3: BIN PACKING inside MST equilibria ==")
    for sizes, bins_, cap in [((4, 2, 2, 4), 2, 6), ((4, 4, 4), 2, 6)]:
        inst = build_theorem3_instance(BinPackingInstance(sizes, bins_, cap))
        state = any_mst_equilibrium(inst)
        if state is None:
            print(f"  items {sizes} into {bins_} bins of {cap}: "
                  "NO equilibrium MST exists (packing unsolvable)")
        else:
            allocation = packing_from_tree(inst, state)
            print(f"  items {sizes} into {bins_} bins of {cap}: equilibrium MST "
                  f"found, encodes allocation {allocation}")
    print()


def tour_sat() -> None:
    print("== 3. Theorem 12: light subsidies decide satisfiability ==")
    sat = CNFFormula.from_lists([[1, 2, 3], [-1, 2, 4]])
    unsat = CNFFormula.from_lists(
        [[a, b, c] for a in (1, -1) for b in (2, -2) for c in (3, -3)]
    )
    for name, formula in (("satisfiable", sat), ("unsatisfiable", unsat)):
        inst = build_theorem12_instance(formula)
        ok, chosen = light_enforcement_exists(inst)
        if ok:
            print(
                f"  {name} formula ({formula.n_clauses} clauses): light "
                f"assignment of cost 3|C| = {3 * formula.n_clauses} enforces the "
                f"MST over {inst.game.n_players:,} players"
            )
        else:
            print(
                f"  {name} formula ({formula.n_clauses} clauses): no light "
                f"assignment works; any enforcement must fully fund a heavy "
                f"edge of weight >= K = {float(inst.K):g}"
            )
    print("  (this K / 3|C| gap is the paper's any-factor inapproximability)")


def main() -> None:
    tour_bypass()
    tour_binpacking()
    tour_sat()


if __name__ == "__main__":
    main()
