"""S1 — the scenario-family tour: every workload family, every game family.

One seeded instance per :mod:`repro.scenarios` family, each wrapped as a
different game family so the tour crosses the whole
:data:`~repro.games.base.GAME_FAMILIES` spectrum, all solved through the
family-general LP (1) solver of :mod:`repro.api`.  Each row records the
scenario, the game family and the solve outcome — which is how ``run all
--json-out`` carries per-instance family names into its machine-readable
summary.
"""

from __future__ import annotations

from repro.experiments.records import ExperimentResult
from repro.utils.timing import Timer

#: (scenario, game family, extra wrapper knobs) — one cell per scenario,
#: rotating through every game family
TOUR = (
    ("grid", "broadcast", {}),
    ("hypercube", "general", {"pairs": "random"}),
    ("augmented-cube", "multicast", {"terminals": "half"}),
    ("power-law", "weighted", {"demands": "random"}),
    ("isp-like", "directed", {"orientation": "oneway-chords"}),
    ("lower-bound-cycle", "broadcast", {}),
)


def run(seed: int = 0) -> ExperimentResult:
    from repro import api
    from repro.scenarios import build_scenario

    rows = []
    with Timer() as t:
        for i, (scenario, family, extra) in enumerate(TOUR):
            game = build_scenario(
                scenario, n=10, seed=seed + i, game=family, **extra
            )
            report = api.solve(game, solver="sne-cutting-plane")
            rows.append(
                {
                    "scenario": scenario,
                    "family": family,
                    "nodes": game.graph.num_nodes,
                    "edges": game.graph.num_edges,
                    "budget": report.budget_used,
                    "target wgt": report.target_cost,
                    "ok": report.verified,
                }
            )
    all_ok = all(r["ok"] for r in rows)
    result = ExperimentResult(
        experiment_id="S1",
        title="Scenario-family tour: structured workloads across all game families",
        headline=(
            f"all {len(rows)} scenario instances enforced and verified: {all_ok} "
            "— grids, cubes, power-law, ISP-like and lower-bound families "
            "solved as broadcast/multicast/general/weighted/directed games "
            "through one engine-backed LP (1) path"
        ),
        rows=rows,
    )
    result.elapsed_seconds = t.elapsed
    return result
