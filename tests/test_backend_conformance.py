"""Cross-backend conformance: every LP backend, every game family, LP(1)+LP(2).

The backend registry's contract is that *which* LP engine answers is an
implementation detail: any registered backend must reproduce the same
subsidy verdicts on the same instances.  This suite pins that down three
ways:

* **matrix** — every registered backend x all five game families x the
  LP (1) and LP (2) solvers, agreeing with the default backend's optimal
  budget within the backend's documented tolerance;
* **determinism + fast-vs-cold** — per backend, repeat solves are byte
  identical and the warm incremental path matches the cold dense rebuild
  (the PR 5 harness pattern, now per backend);
* **corpus replay** — the pinned hard instances in
  ``tests/conformance_corpus/`` (augmented-cube, lower-bound-cycle; see
  ``tools/gen_conformance_corpus.py``) reproduce their sha256 digest on
  the default backend and their budget everywhere else.

Unavailable backends (``pulp-cbc`` without ``pulp``) are *skipped*, not
failed — the CI conformance job runs one leg with pulp installed and one
without, so both the adapter and the skip path stay exercised.

Tolerances: alternate optima at degenerate vertices make cross-backend
*vertex* equality impossible (HiGHS and the tableau legitimately return
different optimal corners), so cross-backend assertions compare optimal
*objectives*; byte-level identity is asserted per backend.  The exact
backend's tolerance covers its knife-edge fallback: when a float-built LP
is exactly infeasible by one ulp it answers for the ``2**-30``-relaxed LP,
shifting the optimum by up to ``||duals||_1 * 2**-30`` (observed ~5e-9;
bounded here by 5e-8).
"""

import hashlib
import json
import os
from pathlib import Path

import pytest

from repro import api
from repro.games.broadcast import BroadcastGame
from repro.games.directed import DirectedNetworkDesignGame
from repro.games.game import NetworkDesignGame
from repro.games.multicast import MulticastGame
from repro.games.weighted import WeightedNetworkDesignGame
from repro.graphs.generators import random_tree_plus_chords
from repro.lp import backend_names, get_backend, list_backends
from repro.runtime.spec import generate_instance

CORPUS_DIR = Path(__file__).parent / "conformance_corpus"

SOLVERS = ("sne-cutting-plane", "sne-poly")

#: |budget - reference budget| allowed per backend (None = byte-identical
#: canonical reports, the reference backend itself)
TOLERANCE = {
    "highs-sparse": None,
    "warm-tableau": 1e-7,
    "exact": 5e-8,  # strict, or the 2**-30-relaxed LP on knife-edge cells
    "pulp-cbc": 1e-6,  # CBC rounds harder than HiGHS
}

#: conformance rows collected for the CI artifact (see _report_sink)
_REPORT_ROWS = []


def _require(spec):
    """Skip (not fail) the cell when the backend's dependency is missing."""
    if not spec.available:
        pytest.skip(f"backend {spec.name!r} unavailable (needs {spec.requires})")


def _canonical_bytes(report) -> bytes:
    payload = api.serialize.canonical_report_json(report)
    return json.dumps(payload, sort_keys=True).encode()


def _stripped_report_bytes(report) -> bytes:
    """Canonical bytes minus wall clock and solve-path provenance."""
    payload = api.serialize.canonical_report_json(report)
    metadata = payload.get("metadata")
    if isinstance(metadata, dict):
        metadata.pop("profile", None)
    return json.dumps(payload, sort_keys=True).encode()


@pytest.fixture(scope="module", autouse=True)
def _report_sink():
    """Write the collected matrix to ``$REPRO_CONFORMANCE_REPORT`` (CI artifact)."""
    yield
    out = os.environ.get("REPRO_CONFORMANCE_REPORT")
    if not out:
        return
    Path(out).write_text(
        json.dumps(
            {
                "kind": "backend-conformance-report",
                "backends": backend_names(),
                "available": [s.name for s in list_backends(available_only=True)],
                "rows": _REPORT_ROWS,
            },
            indent=2,
            sort_keys=True,
        )
        + "\n"
    )


# ---------------------------------------------------------------------------
# the backend x family x solver matrix
# ---------------------------------------------------------------------------


def _family_zoo():
    """One small instance per game family, every family needing subsidies.

    Sized so the Fraction-arithmetic backend stays affordable on LP (2)
    (its tableau has ``players x nodes`` variables); seed 9 picked so all
    five families need a *nonzero* optimal budget — a zero optimum would
    let a broken backend conform vacuously.
    """
    g = random_tree_plus_chords(7, 4, seed=9, chord_factor=1.1)
    others = [u for u in g.nodes if u != 0]
    demands = [1.0 + (i % 3) * 0.5 for i in range(5)]
    return {
        "broadcast": BroadcastGame(g, root=0),
        "multicast": MulticastGame(g, 0, others[:4]),
        "general": NetworkDesignGame(g, [(u, 0) for u in others[:5]]),
        "weighted": WeightedNetworkDesignGame(g, [(u, 0) for u in others[:5]], demands),
        "directed": DirectedNetworkDesignGame(g, [(u, 0) for u in others[:5]]),
    }


@pytest.fixture(scope="module")
def zoo():
    return _family_zoo()


@pytest.fixture(scope="module")
def reference(zoo):
    """Default-backend reports: the matrix's comparison baseline."""
    return {
        (family, solver): api.solve(game, solver)
        for family, game in zoo.items()
        for solver in SOLVERS
    }


@pytest.mark.parametrize("backend", sorted(TOLERANCE))
@pytest.mark.parametrize("solver", SOLVERS)
def test_matrix_all_families(backend, solver, zoo, reference):
    spec = get_backend(backend, require_available=False)
    _require(spec)
    for family, game in zoo.items():
        ref = reference[(family, solver)]
        report = api.solve(game, solver, method=backend)
        assert report.feasible and report.verified, (backend, family, solver)
        assert report.metadata["backend"] == spec.name
        assert ref.budget_used > 1e-9  # a trivial zoo would prove nothing
        tol = TOLERANCE[backend]
        if tol is None:
            assert _canonical_bytes(report) == _canonical_bytes(ref)
        else:
            assert abs(report.budget_used - ref.budget_used) <= tol, (
                backend,
                family,
                solver,
                report.budget_used,
                ref.budget_used,
            )
        _REPORT_ROWS.append(
            {
                "check": "matrix",
                "backend": spec.name,
                "family": family,
                "solver": solver,
                "budget": report.budget_used,
                "reference": ref.budget_used,
            }
        )


@pytest.mark.parametrize("backend", sorted(TOLERANCE))
def test_per_backend_determinism(backend, zoo):
    """The same backend must answer byte-identically on repeat solves."""
    spec = get_backend(backend, require_available=False)
    _require(spec)
    game = zoo["general"]
    for solver in SOLVERS:
        first = api.solve(game, solver, method=backend)
        again = api.solve(game, solver, method=backend)
        assert _canonical_bytes(first) == _canonical_bytes(again), (backend, solver)


@pytest.mark.parametrize("backend", sorted(TOLERANCE))
def test_fast_vs_cold_byte_identical(backend, zoo):
    """Warm incremental sessions never change answers vs the cold rebuild."""
    spec = get_backend(backend, require_available=False)
    _require(spec)
    for family in ("broadcast", "general"):
        game = zoo[family]
        for solver in SOLVERS:
            fast = api.solve(game, solver, method=backend)
            cold = api.solve(game, solver, method=backend, fast=False)
            assert _stripped_report_bytes(fast) == _stripped_report_bytes(cold), (
                backend,
                family,
                solver,
            )


def test_certified_matrix_cells(zoo, reference):
    """``certify=True`` re-derives the float verdicts as exact rationals.

    LP (2) certifies the full LP, so the certificate optimum must match
    the float budget (to the exact backend's documented bound); LP (1)
    certifies the final cutting-plane *relaxation*, whose exact optimum
    can only be at or below the converged float budget.
    """
    game = zoo["broadcast"]
    lp2 = api.solve(game, "sne-poly", certify=True)
    cert = lp2.metadata["exact_certificate"]
    assert cert["status"] == "OPTIMAL"
    assert abs(cert["objective_float"] - lp2.budget_used) <= 5e-8
    lp1 = api.solve(game, "sne-cutting-plane", certify=True)
    cert1 = lp1.metadata["exact_certificate"]
    assert cert1["status"] == "OPTIMAL"
    assert cert1["objective_float"] <= lp1.budget_used + 5e-8
    assert cert1["subject"]["formulation"] == "lp1-relaxation"


# ---------------------------------------------------------------------------
# pinned hard-instance corpus replay
# ---------------------------------------------------------------------------


def _corpus_cases():
    cases = [json.loads(p.read_text()) for p in sorted(CORPUS_DIR.glob("*.json"))]
    assert cases, f"conformance corpus missing from {CORPUS_DIR}"
    return cases


@pytest.mark.parametrize(
    "case", _corpus_cases(), ids=lambda case: case["name"]
)
def test_corpus_replay(case):
    game = generate_instance(case["model"], case["n"], case["seed"], **case["params"])
    expected = case["expected"]
    assert api.get_solver(case["solver"]).version == expected["solver_version"], (
        "solver version changed — regenerate the corpus "
        "(PYTHONPATH=src python tools/gen_conformance_corpus.py) after review"
    )
    for spec in list_backends():
        if spec.exact and not case["exact_ok"]:
            continue  # exact pivoting unaffordable on this cell (documented)
        if not spec.available:
            continue  # the matrix tests cover the skip message
        report = api.solve(game, case["solver"], method=spec.name)
        assert report.feasible and report.verified, (case["name"], spec.name)
        if TOLERANCE[spec.name] is None:
            digest = hashlib.sha256(_canonical_bytes(report)).hexdigest()
            assert digest == expected["sha256"], (
                f"{case['name']}: canonical report drifted on {spec.name} — "
                "if intentional, regenerate the corpus"
            )
        else:
            assert abs(report.budget_used - expected["budget"]) <= TOLERANCE[spec.name], (
                case["name"],
                spec.name,
            )
        _REPORT_ROWS.append(
            {
                "check": "corpus",
                "backend": spec.name,
                "case": case["name"],
                "budget": report.budget_used,
                "reference": expected["budget"],
            }
        )
