"""Content-addressed on-disk result cache for the sweep runtime.

Every sweep job — one (instance, solver, options) cell, or one experiment
run — is identified by a SHA-256 key over the *content* that determines its
result (see :func:`solve_job_key` / :func:`experiment_job_key`).  Completed
results are stored one-file-per-key under a sharded directory tree::

    <cache_dir>/v1/<first two hex chars>/<key>.json

which makes three properties fall out for free:

* **incremental sweeps** — re-running a grid only recomputes cells whose
  instance, solver version or options changed;
* **resumability** — each job's entry is written atomically the moment it
  finishes, so an interrupted sweep resumes from the completed prefix;
* **invalidation without bookkeeping** — bumping a solver's
  :attr:`~repro.api.registry.SolverSpec.version` (or editing an experiment
  module, whose source is digested into the key) changes the key, orphaning
  the stale entries instead of serving them.

The default location is ``~/.cache/repro`` (override with the
``REPRO_CACHE_DIR`` environment variable or the CLI's ``--cache-dir``).
Entries are plain JSON, safe to inspect or delete by hand; concurrent
writers are safe because entries are immutable for a given key and writes
go through ``os.replace``.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from pathlib import Path
from typing import Any, Dict, Iterator, Mapping, Optional, Union

from repro.utils.hashing import stable_hash

JSONDict = Dict[str, Any]

#: bump when the on-disk entry layout changes (old trees are simply ignored)
CACHE_SCHEMA_VERSION = 1


def default_cache_dir() -> Path:
    """The cache root used when none is given explicitly.

    ``$REPRO_CACHE_DIR`` wins; otherwise ``$XDG_CACHE_HOME/repro`` or
    ``~/.cache/repro``.
    """
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro"


def solve_job_key(
    instance: JSONDict,
    solver: str,
    solver_version: str,
    opts: Optional[Mapping[str, Any]] = None,
) -> str:
    """Content hash identifying one (instance, solver, options) cell.

    ``instance`` is the serialized game payload
    (:func:`repro.api.serialize.game_to_json`), which is canonical for a
    given game, so logically-equal instances share cache cells no matter
    where they were generated.  Raises
    :class:`repro.utils.hashing.UnhashablePayloadError` when ``opts``
    contains values that cannot be hashed deterministically (such jobs run
    uncached).
    """
    return stable_hash(
        {
            "kind": "solve-job",
            "schema": CACHE_SCHEMA_VERSION,
            "instance": instance,
            "solver": solver,
            "solver_version": solver_version,
            "opts": dict(opts or {}),
        }
    )


def experiment_job_key(experiment_id: str, seed: int, source_digest: str) -> str:
    """Content hash identifying one experiment run.

    There is no hand-maintained version for experiments: ``source_digest``
    (a hash of the experiment module's source, see
    :func:`repro.runtime.workers.experiment_source_digest`) plays that
    role, so editing the experiment invalidates its cached results.
    """
    return stable_hash(
        {
            "kind": "experiment-job",
            "schema": CACHE_SCHEMA_VERSION,
            "experiment": experiment_id,
            "seed": seed,
            "source": source_digest,
        }
    )


class ResultCache:
    """One directory of content-addressed job results.

    ``get``/``put`` speak plain JSON dicts (the *entry*); the runtime stores
    ``{"kind": ..., "key": ..., "result": ..., "elapsed_seconds": ...}`` but
    the cache itself does not interpret entries beyond requiring a dict.
    """

    def __init__(self, root: Union[str, Path, None] = None):
        self.root = Path(root) if root is not None else default_cache_dir()

    # the versioned subtree actually holding entries
    @property
    def _tree(self) -> Path:
        return self.root / f"v{CACHE_SCHEMA_VERSION}"

    def path_for(self, key: str) -> Path:
        """Where the entry for ``key`` lives (whether or not it exists)."""
        return self._tree / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[JSONDict]:
        """The stored entry for ``key``, or ``None`` on a miss.

        A corrupt entry (truncated write from a killed process predating
        atomic replace, manual edit) counts as a miss and is removed, so
        one bad file cannot wedge a sweep.  A merely *unreadable* entry
        (permissions, I/O error) is a miss but is left in place — another
        process may still be able to read it.
        """
        path = self.path_for(key)
        try:
            with open(path) as fh:
                entry = json.load(fh)
        except json.JSONDecodeError:
            try:
                path.unlink()
            except OSError:
                pass
            return None
        except OSError:
            return None
        return entry if isinstance(entry, dict) else None

    def put(self, key: str, entry: Mapping[str, Any]) -> None:
        """Atomically store ``entry`` under ``key`` (last writer wins)."""
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=path.parent, prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(dict(entry), fh)
                fh.write("\n")
            os.replace(tmp, path)  # atomic on POSIX: readers never see partial JSON
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def __contains__(self, key: str) -> bool:
        return self.path_for(key).is_file()

    def _entry_paths(self) -> Iterator[Path]:
        """Entry files of the current schema (skips .tmp-* leftovers)."""
        if not self._tree.is_dir():
            return
        for shard in sorted(self._tree.iterdir()):
            if not shard.is_dir():
                continue
            for path in sorted(shard.glob("*.json")):
                # a worker killed between mkstemp and os.replace leaves a
                # ".tmp-*" file behind; it is not an entry
                if not path.name.startswith("."):
                    yield path

    def keys(self) -> Iterator[str]:
        """All stored keys (current schema version only)."""
        for path in self._entry_paths():
            yield path.stem

    def __len__(self) -> int:
        return sum(1 for _ in self.keys())

    def clear(self) -> int:
        """Delete every entry of the current schema; returns the count."""
        removed = 0
        for path in list(self._entry_paths()):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def stats(self) -> JSONDict:
        """Occupancy summary: entry count, bytes on disk, age spread.

        One directory walk, no entry is parsed — cheap enough for the
        ``cache stats`` CLI to run against multi-gigabyte shared caches.
        """
        entries = 0
        total_bytes = 0
        oldest: Optional[float] = None
        newest: Optional[float] = None
        for path in self._entry_paths():
            try:
                st = path.stat()
            except OSError:
                continue  # deleted under us by a concurrent prune/clear
            entries += 1
            total_bytes += st.st_size
            oldest = st.st_mtime if oldest is None else min(oldest, st.st_mtime)
            newest = st.st_mtime if newest is None else max(newest, st.st_mtime)
        return {
            "kind": "cache-stats",
            "root": str(self.root),
            "schema": CACHE_SCHEMA_VERSION,
            "entries": entries,
            "total_bytes": total_bytes,
            "oldest_mtime": oldest,
            "newest_mtime": newest,
        }

    def prune(self, older_than_seconds: float, now: Optional[float] = None) -> int:
        """Delete entries not written for ``older_than_seconds``; returns count.

        Age is the entry file's mtime — ``put`` rewrites the file (and
        therefore refreshes it) on every store, so a cell that keeps being
        produced by live sweeps never ages out, while cells orphaned by a
        solver-version bump do.  Safe against concurrent writers: a racing
        ``put`` either lands before the unlink (entry is recreated moments
        later by its next producer) or after (the fresh entry survives,
        ``unlink`` already happened on the old inode path — worst case one
        recomputation, never corruption).
        """
        if older_than_seconds < 0:
            raise ValueError(f"older_than_seconds must be >= 0, got {older_than_seconds}")
        cutoff = (time.time() if now is None else now) - older_than_seconds
        removed = 0
        for path in list(self._entry_paths()):
            try:
                if path.stat().st_mtime <= cutoff:
                    path.unlink()
                    removed += 1
            except OSError:
                pass  # raced with another pruner/writer
        return removed


class NullCache:
    """The ``--no-cache`` object: always misses, never stores.

    Lets the runner treat caching uniformly instead of branching on
    ``cache is None`` at every touch point.
    """

    root: Optional[Path] = None

    def get(self, key: str) -> Optional[JSONDict]:
        return None

    def put(self, key: str, entry: Mapping[str, Any]) -> None:
        return None

    def __contains__(self, key: str) -> bool:
        return False

    def __len__(self) -> int:
        return 0


AnyCache = Union[ResultCache, NullCache]


def coerce_cache(value: Union[AnyCache, str, Path, bool, None]) -> AnyCache:
    """Normalize the cache-argument convention used across the runtime.

    ``False`` → :class:`NullCache`; ``None``/``True`` → a
    :class:`ResultCache` at the default directory; a path → a
    :class:`ResultCache` there; cache objects pass through.  Every entry
    point (``SweepRunner``, ``run_all_tolerant``, the CLI) funnels its
    ``cache`` parameter through here so the convention lives in one place.
    """
    if value is False:
        return NullCache()
    if value is None or value is True:
        return ResultCache()
    if isinstance(value, (str, Path)):
        return ResultCache(value)
    return value
