"""Experiment harness reproducing every artefact of the paper's evaluation.

Each experiment module exposes ``run(seed=...) -> ExperimentResult``; the
registry in :mod:`repro.experiments.runner` maps the DESIGN.md experiment
ids (E1-E12) to those functions, and the ``repro-experiments`` CLI drives
them.  Results are plain row dicts rendered as aligned text tables so the
paper-vs-measured comparison in EXPERIMENTS.md can be regenerated verbatim.
"""

from repro.experiments.records import ExperimentResult
from repro.experiments.tables import render_table
from repro.experiments.runner import (
    EXPERIMENTS,
    RemoteFailure,
    SweepItem,
    error_text,
    run_all,
    run_all_tolerant,
    run_experiment,
    sweep_summary,
)

__all__ = [
    "ExperimentResult",
    "render_table",
    "EXPERIMENTS",
    "RemoteFailure",
    "SweepItem",
    "error_text",
    "run_all",
    "run_all_tolerant",
    "run_experiment",
    "sweep_summary",
]
