"""Property tests for the Fraction-arithmetic exact simplex backend.

Three layers of assurance, cheapest to strongest:

* **fuzz** — seeded random small LPs with *integer* data (so the float
  assembly is exact and the rational verdict is the ground truth): the
  exact backend's certificate must always re-verify by pure-rational
  substitution, and whenever it reports an optimum the float backends
  must land within their tolerance of it;
* **adversarial classics** — Beale's cycling example (Bland's rule must
  terminate at the known optimum ``-1/20``), plus hand-built degenerate,
  infeasible and unbounded LPs whose certificates we check field by
  field;
* **knife-edge fallback** — the rhs-relaxation machinery: strictly
  feasible LPs never pick up a relaxation, LPs infeasible by less than
  ``RHS_RELAX`` get the relaxed verdict with the relaxation *recorded*,
  genuinely infeasible LPs keep their strict Farkas certificate.
"""

from fractions import Fraction

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.lp import LinearProgram, LPStatus, simplex_solve, solve_lp
from repro.lp.backends import (
    RHS_RELAX,
    certify_result,
    exact_solve_certified,
    exact_solve_certified_auto,
)
from repro.lp.backends.exact import _min_uniform_relax


def _lp(c, rows, rhs, lower=None, upper=None):
    lp = LinearProgram(n_vars=len(c), c=np.array(c, float), lower=lower, upper=upper)
    for row, b in zip(rows, rhs):
        lp.add_constraint(np.array(row, float), b)
    return lp


# ---------------------------------------------------------------------------
# fuzz: random integer LPs, certificate always verifies, floats bracket exact
# ---------------------------------------------------------------------------

_coeff = st.integers(min_value=-5, max_value=5)


@st.composite
def _random_lps(draw):
    n = draw(st.integers(min_value=1, max_value=4))
    m = draw(st.integers(min_value=0, max_value=5))
    c = [draw(_coeff) for _ in range(n)]
    rows = [[draw(_coeff) for _ in range(n)] for _ in range(m)]
    rhs = [draw(st.integers(min_value=-3, max_value=10)) for _ in range(m)]
    # roughly half the draws get finite upper bounds (hits the bound-dual
    # and upper-slack paths; the rest exercise the ray / unbounded paths)
    upper = None
    if draw(st.booleans()):
        upper = [float(draw(st.integers(min_value=0, max_value=8))) for _ in range(n)]
    return _lp(c, rows, rhs, upper=upper)


@settings(max_examples=60, deadline=None)
@given(_random_lps())
def test_fuzz_certificate_always_verifies(lp):
    result, cert = exact_solve_certified_auto(lp)
    assert cert.status is result.status
    assert cert.verify(lp), cert.as_dict()
    # integer data can never sit on a float knife edge, so the strict LP
    # must have answered — the fallback has nothing to absorb
    assert cert.rhs_relax == 0


@settings(max_examples=60, deadline=None)
@given(_random_lps())
def test_fuzz_float_backends_bracket_exact_optimum(lp):
    result, cert = exact_solve_certified_auto(lp)
    if cert.status is not LPStatus.OPTIMAL:
        return
    assert isinstance(cert.objective, Fraction)
    assert result.objective == pytest.approx(float(cert.objective), abs=1e-12)
    for solver in (solve_lp, simplex_solve):
        res = solver(lp)
        assert res.status is LPStatus.OPTIMAL, solver
        # the exact optimum is ground truth; float backends must straddle it
        assert abs(res.objective - float(cert.objective)) <= 1e-6, solver


# ---------------------------------------------------------------------------
# adversarial classics
# ---------------------------------------------------------------------------


def test_beale_cycling_example():
    """Beale's LP cycles under naive Dantzig pivoting; Bland must finish."""
    lp = _lp(
        [-0.75, 150.0, -0.02, 6.0],
        [[0.25, -60.0, -0.04, 9.0], [0.5, -90.0, -0.02, 3.0], [0.0, 0.0, 1.0, 0.0]],
        [0.0, 0.0, 1.0],
    )
    result, cert = exact_solve_certified(lp)
    assert cert.status is LPStatus.OPTIMAL
    # the textbook optimum is -1/20; the exact answer is that optimum for
    # the *float-rounded* data (-0.02 and -0.04 are not dyadic), one ulp off
    assert abs(cert.objective - Fraction(-1, 20)) < Fraction(1, 10**15)
    assert cert.pivots > 0  # Bland's rule finished instead of cycling
    assert cert.verify(lp)
    assert result.objective == pytest.approx(-0.05)


def test_degenerate_vertex_certificate():
    # three constraints meet at (0, 1): more tight rows than dimensions
    lp = _lp([1.0, -1.0], [[1.0, 1.0], [-1.0, 1.0], [0.0, 1.0]], [1.0, 1.0, 1.0])
    _, cert = exact_solve_certified(lp)
    assert cert.status is LPStatus.OPTIMAL
    assert cert.objective == Fraction(-1)
    assert cert.x == (Fraction(0), Fraction(1))
    assert cert.verify(lp)


def test_infeasible_farkas_certificate():
    # x1 + x2 <= -1 with x >= 0 is plainly empty
    lp = _lp([1.0, 1.0], [[1.0, 1.0]], [-1.0])
    result, cert = exact_solve_certified(lp)
    assert result.status is LPStatus.INFEASIBLE
    assert cert.farkas is not None and any(u > 0 for u in cert.farkas)
    assert cert.verify(lp)


def test_unbounded_ray_certificate():
    # minimize -x2 subject only to x1 <= 1: x2 rides to infinity
    lp = _lp([0.0, -1.0], [[1.0, 0.0]], [1.0])
    result, cert = exact_solve_certified(lp)
    assert result.status is LPStatus.UNBOUNDED
    assert cert.ray is not None and cert.feasible_point is not None
    assert cert.verify(lp)


def test_certify_result_attaches_subject_and_self_verifies():
    lp = _lp([1.0, 2.0], [[-1.0, -1.0]], [-1.0])
    cert = certify_result(lp, subject={"formulation": "unit-test"})
    assert cert.subject["formulation"] == "unit-test"
    assert cert.status is LPStatus.OPTIMAL
    assert cert.objective == Fraction(1)
    d = cert.as_dict()
    assert d["objective"] == "1" and d["objective_float"] == 1.0
    assert "rhs_relax" not in d  # strict verdicts carry no relaxation


# ---------------------------------------------------------------------------
# the knife-edge rhs-relaxation fallback
# ---------------------------------------------------------------------------


def _knife_edge_lp():
    """Infeasible by exactly 1e-12 < RHS_RELAX: -x <= -(1+1e-12), x <= 1."""
    return _lp([1.0], [[-1.0], [1.0]], [-(1.0 + 1e-12), 1.0])


def test_strict_lp_never_relaxed():
    lp = _lp([1.0, 1.0], [[-1.0, -1.0]], [-1.0])
    _, cert = exact_solve_certified_auto(lp)
    assert cert.status is LPStatus.OPTIMAL
    assert cert.rhs_relax == 0


def test_knife_edge_lp_gets_recorded_relaxation():
    lp = _knife_edge_lp()
    # strict solve: genuinely infeasible as exact rationals
    _, strict = exact_solve_certified(lp)
    assert strict.status is LPStatus.INFEASIBLE
    assert strict.verify(lp)
    # auto solve: the one-ulp gap is inside the documented tolerance, so
    # the relaxed LP answers — and says so on the certificate
    result, cert = exact_solve_certified_auto(lp)
    assert cert.status is LPStatus.OPTIMAL
    assert cert.rhs_relax == RHS_RELAX
    assert cert.verify(lp)
    assert "rhs_relax" in cert.as_dict()
    assert result.objective == pytest.approx(1.0, abs=2 * float(RHS_RELAX))


def test_genuinely_infeasible_keeps_strict_farkas():
    # gap of 1 >> RHS_RELAX: no relaxation may paper over this
    lp = _lp([0.0], [[-1.0], [1.0]], [-2.0, 1.0])
    _, cert = exact_solve_certified_auto(lp)
    assert cert.status is LPStatus.INFEASIBLE
    assert cert.rhs_relax == 0
    assert cert.verify(lp)


def test_min_uniform_relax_matches_the_gap():
    lp = _knife_edge_lp()
    _, cert = exact_solve_certified(lp)
    t_min = _min_uniform_relax(lp, cert.farkas)
    assert t_min is not None and 0 < t_min <= RHS_RELAX
    # strictly less than t_min cannot help: the same Farkas vector stands
    _, still = exact_solve_certified(lp, rhs_relax=t_min / 2)
    assert still.status is LPStatus.INFEASIBLE
    # relaxing by exactly t_min makes the LP exactly feasible
    _, relaxed = exact_solve_certified(lp, rhs_relax=t_min)
    assert relaxed.status is LPStatus.OPTIMAL
    assert relaxed.verify(lp)
