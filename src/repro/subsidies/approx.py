"""Approximate & anytime SNE solvers with certified optimality gaps.

The exact LP(1)/LP(2)/LP(3) pipeline answers the paper's question to
optimality but tops out around a few hundred nodes.  This module is the
scale tier above it: heuristics that always return a *feasible* subsidy
assignment together with a **certified lower bound** on the optimum, so
every run carries a proved optimality gap ``ub - lb``:

* :func:`solve_sne_greedy` — generic greedy over any game family: per
  round, every violated player's own path is fully subsidized (a fully
  subsidized path has cost 0 and deviation costs are nonnegative, so each
  round permanently settles its violated players — at most ``n_players``
  rounds).  Violated LP(1) rows are pooled; the certificate is either the
  pooled-row LP relaxation optimum or the closed-form Lagrangian bound.
* :func:`solve_sne_primal_dual` — the exact LP(1) cutting-plane loop run
  *anytime*: each round's LP objective is a monotone certified lower
  bound (the LP over any subset of the exponentially many rows is a
  relaxation), upper bounds come from greedy completion of the current
  iterate, and the loop stops on ``deadline`` / ``target_gap`` or —
  without either — converges to the same optimum (and byte-identical
  subsidies) as ``sne-cutting-plane``.
* :func:`solve_sne_greedy_indexed` — the memory-lean broadcast path for
  10^5–10^6-node instances: no per-player dicts, no ``Graph``, just the
  :class:`~repro.graphs.core.IndexedGraph` CSR arrays and vectorized
  Lemma 2 incidence slacks over an
  :class:`~repro.graphs.indexed_tree.IndexedTree`.

Certificate soundness rests on two facts.  (1) Every pooled row is a
valid constraint of the full LP(1)/LP(3), so the LP over any row subset
is a relaxation and its optimum — or any Lagrangian value of it — lower
bounds the true minimum subsidy.  (2) Fully subsidizing every established
target edge is always feasible (own costs drop to 0 and deviation costs
stay nonnegative), so ``wgt(T)`` caps every upper bound and deadline
bailouts always have a feasible fallback.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.games.broadcast import TreeState
from repro.games.engine import BestResponseEngine
from repro.graphs.core import IndexedGraph
from repro.graphs.indexed_tree import IndexedTree
from repro.graphs.mst import kruskal_mst_ids
from repro.lp import IncrementalLP, LinearProgram, LPStatus, solve_lp
from repro.subsidies.assignment import SubsidyAssignment
from repro.subsidies.sne_lp import AnyState, SNEResult, _verify_with_binding
from repro.utils.tolerances import LP_TOL

#: pooled-row LPs are solved exactly below this edge count; above it the
#: closed-form Lagrangian bound is used (deterministic in the instance).
LP_BOUND_MAX_EDGES = 2000

#: gaps below ``1e-9 * max(1, ub)`` count as proved optimal.
_OPT_TOL = 1e-9


# ---------------------------------------------------------------------------
# Certificates
# ---------------------------------------------------------------------------


@dataclass
class GapCertificate:
    """A certified bracket ``lower_bound <= OPT <= upper_bound``.

    ``kind`` names the lower-bound construction: ``"lp-relaxation"``
    (pooled violated rows solved exactly), ``"lagrangian"`` (closed-form
    uniform-multiplier bound over the pooled rows) or ``"exact"`` (the
    cutting-plane loop converged, so the LP optimum itself is the bound).
    """

    kind: str
    lower_bound: float
    upper_bound: float

    @property
    def gap(self) -> float:
        return max(0.0, self.upper_bound - self.lower_bound)

    @property
    def relative_gap(self) -> float:
        return self.gap / self.upper_bound if self.upper_bound > 0 else 0.0

    @property
    def proves_optimal(self) -> bool:
        return self.gap <= _OPT_TOL * max(1.0, self.upper_bound)

    def as_dict(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "lower_bound": self.lower_bound,
            "upper_bound": self.upper_bound,
            "gap": self.gap,
            "relative_gap": self.relative_gap,
        }


@dataclass
class AnytimeLog:
    """The improving ``(round, upper_bound, lower_bound)`` trajectory.

    Iterates carry no timestamps on purpose: reports must stay
    byte-stable across runs (the serve daemon's canonical-bytes
    contract), and wall-clock provenance already lives in
    ``wall_clock_seconds``.
    """

    iterates: List[Tuple[int, float, float]] = field(default_factory=list)
    #: why the loop ended: "converged" | "deadline" | "target-gap" | "max-rounds"
    stopped: str = "converged"

    def record(self, round_idx: int, ub: float, lb: float) -> None:
        self.iterates.append((round_idx, float(ub), float(lb)))

    def as_dict(self) -> Dict[str, object]:
        return {
            "iterates": [[r, ub, lb] for r, ub, lb in self.iterates],
            "stopped": self.stopped,
        }


@dataclass
class ApproxSNEResult(SNEResult):
    """An :class:`~repro.subsidies.sne_lp.SNEResult` plus its certificate."""

    certificate: Optional[GapCertificate] = None
    anytime: Optional[AnytimeLog] = None
    #: the certificate's gap closed to (numerical) zero
    optimal: bool = False


@dataclass
class IndexedApproxResult:
    """Array-level outcome of the memory-lean broadcast greedy.

    ``subsidy_vector`` is indexed by edge id of the input
    :class:`~repro.graphs.core.IndexedGraph`; nothing label-keyed is
    materialized (that is the point of this path).
    """

    subsidy_vector: np.ndarray
    cost: float
    feasible: bool
    verified: bool
    method: str
    rounds: int
    certificate: GapCertificate
    tree_eids: np.ndarray
    num_incidences: int
    anytime: Optional[AnytimeLog] = None

    @property
    def optimal(self) -> bool:
        return self.certificate.proves_optimal


# ---------------------------------------------------------------------------
# Certified lower bounds over pooled rows
# ---------------------------------------------------------------------------


def lagrangian_lower_bound(
    weights: np.ndarray, g: np.ndarray, total_deficit: float
) -> Tuple[float, float]:
    """Closed-form Lagrangian lower bound over pooled rows, no LP solve.

    The pool holds rows ``a_j . b >= c_j`` (valid for every feasible
    subsidy vector) with ``c_j > 0``; ``g = sum_j a_j`` and
    ``total_deficit = sum_j c_j``.  Relaxing all rows with one uniform
    multiplier ``lam >= 0`` gives, for ``0 <= b <= w``::

        L(lam) = lam * sum_j c_j + sum_e w_e * min(0, 1 - lam * g_e)

    which is concave piecewise-linear in ``lam`` with breakpoints at
    ``1/g_e`` (``g_e > 0``).  The exact maximizer is found by a sorted
    slope scan in O(m log m); any value of ``L`` certifies
    ``OPT >= L(lam)``.  Returns ``(bound, lam)``.
    """
    if total_deficit <= 0.0:
        return 0.0, 0.0
    pos = g > 0.0
    if not bool(pos.any()):
        # Cannot happen when the pool comes from a feasible instance
        # (b = w satisfies every row, forcing g . w >= total_deficit > 0);
        # stay conservative rather than claim an unbounded dual.
        return 0.0, 0.0
    lam_bp = 1.0 / g[pos]
    wg = weights[pos] * g[pos]
    order = np.argsort(lam_bp)
    lam_sorted = lam_bp[order]
    slopes = total_deficit - np.cumsum(wg[order])
    nonpos = slopes <= 0.0
    k = int(np.argmax(nonpos)) if bool(nonpos.any()) else len(lam_sorted) - 1
    lam = float(lam_sorted[k])
    value = lam * total_deficit + float(
        np.minimum(0.0, weights * (1.0 - lam * g)).sum()
    )
    return max(0.0, value), lam


def _pooled_lp_lower_bound(
    weights: np.ndarray, rows: List[Tuple[np.ndarray, float]], method: str
) -> Optional[float]:
    """Exact optimum of the pooled-row relaxation (``row . b <= rhs`` form)."""
    n = len(weights)
    lp = LinearProgram(n_vars=n, c=np.ones(n), upper=weights.copy())
    for row, rhs in rows:
        lp.add_constraint(row, rhs)
    res = solve_lp(lp, method=method)
    if res.status is not LPStatus.OPTIMAL or res.objective is None:
        return None
    return max(0.0, float(res.objective))


def _resolve_bound(bound: str, num_edges: int) -> str:
    if bound == "auto":
        return "lp" if num_edges <= LP_BOUND_MAX_EDGES else "lagrangian"
    if bound not in ("lp", "lagrangian"):
        raise ValueError(f"unknown bound {bound!r} (use auto|lp|lagrangian)")
    return bound


# ---------------------------------------------------------------------------
# Shared generic machinery (engine-binding based, all game families)
# ---------------------------------------------------------------------------


def _established_eids(state: AnyState, ig) -> List[int]:
    """Edge ids of the target state's established edges."""
    if isinstance(state, TreeState):
        edges = [e for e in state.edges if state.loads[e] > 0]
    else:
        edges = list(state.established_edges())
    return [ig.edge_id_of(e) for e in edges]


class _RowPool:
    """Violated LP(1) rows accumulated across rounds, for the certificate.

    Rows arrive in the oracle's ``row . b <= rhs`` orientation; the pool
    keeps them verbatim (for the LP bound) and accumulates ``g`` /
    ``total_deficit`` of the equivalent ``(-row) . b >= -rhs`` form for
    rows with positive deficit (the only ones the Lagrangian uses).
    """

    def __init__(self, n_vars: int) -> None:
        self.rows: List[Tuple[np.ndarray, float]] = []
        self.g = np.zeros(n_vars)
        self.total_deficit = 0.0

    def add(self, row: np.ndarray, rhs: float) -> None:
        self.rows.append((row, rhs))
        if rhs < 0.0:
            self.g -= row
            self.total_deficit -= rhs

    def lower_bound(
        self, weights: np.ndarray, bound: str, method: str
    ) -> Tuple[float, str]:
        if not self.rows:
            return 0.0, bound if bound != "lp" else "lp-relaxation"
        if bound == "lp":
            lb = _pooled_lp_lower_bound(weights, self.rows, method)
            if lb is not None:
                return lb, "lp-relaxation"
        lb, _lam = lagrangian_lower_bound(weights, self.g, self.total_deficit)
        return lb, "lagrangian"


def _oracle_rows(binding, scan, cur_path, weights, n_vars, wb):
    """Violated players with their LP(1) rows at net weights ``wb``.

    Identical row construction to ``solve_sne_cutting_plane_lp1``'s
    separation oracle (same share coefficients, same orientation), so the
    primal-dual loop admits exactly the cuts the exact solver would.
    """
    out = []
    for rec in scan(wb, tol=LP_TOL, find_all=True):
        row = np.zeros(n_vars)
        rhs = 0.0
        for e in cur_path(rec.position):
            c = binding.current_share_coeff(rec.position, e)
            row[e] -= c
            rhs -= weights[e] * c
        for e in rec.edge_ids:
            c = binding.joining_share_coeff(rec.position, e)
            row[e] += c
            rhs += weights[e] * c
        out.append((rec, row, float(rhs)))
    return out


def _greedy_rounds(
    binding,
    scan,
    cur_path,
    weights,
    b: np.ndarray,
    pool: Optional[_RowPool],
    deadline_at: Optional[float],
) -> Tuple[np.ndarray, int, bool]:
    """Fully subsidize every violated player's own path until none remain.

    Mutates and returns ``b``.  Returns ``(b, rounds, timed_out)``;
    on timeout ``b`` is *not* feasible yet (callers fall back to the
    full-target assignment).  Termination: a fully subsidized own path
    costs 0 and deviations are nonnegative, so each round's violated
    players stay satisfied forever — at most ``n_players`` rounds.
    """
    n_vars = len(weights)
    rounds = 0
    while True:
        if deadline_at is not None and time.monotonic() >= deadline_at and rounds:
            return b, rounds, True
        wb = np.maximum(0.0, weights - b)
        found = _oracle_rows(binding, scan, cur_path, weights, n_vars, wb)
        if not found:
            return b, rounds, False
        rounds += 1
        for rec, row, rhs in found:
            if pool is not None:
                pool.add(row, rhs)
            for e in cur_path(rec.position):
                b[e] = weights[e]


# ---------------------------------------------------------------------------
# Greedy (all game families)
# ---------------------------------------------------------------------------


def solve_sne_greedy(
    state: AnyState,
    method: str = "highs",
    verify: bool = True,
    fast: bool = True,
    bound: str = "auto",
    anytime: bool = False,
    deadline: Optional[float] = None,
    target_gap: Optional[float] = None,
) -> ApproxSNEResult:
    """Greedy full-path subsidies with a certified gap, any game family.

    Per round, every violated player (from the engine binding's exact
    scan — ``fast=False`` uses the pre-batching ``scan_legacy`` reference
    and must produce identical subsidies) gets its own path fully
    subsidized.  The violated LP(1) rows seen along the way are pooled
    and turned into a certified lower bound (``bound``: ``"lp"`` solves
    the pooled relaxation exactly, ``"lagrangian"`` uses the closed-form
    dual value, ``"auto"`` picks by instance size).

    ``deadline`` (seconds of wall clock) aborts the scan loop and falls
    back to fully subsidizing every established target edge — always
    feasible, cost ``wgt(T)``.  ``target_gap`` stops early once the
    certified relative gap of the *fallback* bracket reaches the target.
    ``anytime`` records the ``(round, ub, lb)`` trajectory.
    """
    graph = state.game.graph
    engine = BestResponseEngine.for_graph(graph)
    binding = engine.bind(state)
    stats = engine.stats
    before = stats.snapshot()
    ig = engine.ig
    n_vars = engine.num_edges
    weights = ig.edge_weights
    cur_path = binding.current_path_eids
    scan = binding.scan if fast else binding.scan_legacy

    established = _established_eids(state, ig)
    full_target = np.zeros(n_vars)
    full_target[established] = weights[established]
    ub_fallback = float(full_target.sum())

    deadline_at = time.monotonic() + deadline if deadline is not None else None
    pool = _RowPool(n_vars)
    log = AnytimeLog() if anytime else None
    bound_mode = _resolve_bound(bound, n_vars)

    b = np.zeros(n_vars)
    rounds = 0
    timed_out = False
    stopped = "converged"
    while True:
        if deadline_at is not None and time.monotonic() >= deadline_at and rounds:
            timed_out = True
            stopped = "deadline"
            break
        wb = np.maximum(0.0, weights - b)
        found = _oracle_rows(binding, scan, cur_path, weights, n_vars, wb)
        if not found:
            break
        rounds += 1
        for rec, row, rhs in found:
            pool.add(row, rhs)
            for e in cur_path(rec.position):
                b[e] = weights[e]
        if log is not None:
            lb_r, _ = lagrangian_lower_bound(weights, pool.g, pool.total_deficit)
            log.record(rounds, ub_fallback, lb_r)
        if target_gap is not None and ub_fallback > 0:
            lb_r, _ = lagrangian_lower_bound(weights, pool.g, pool.total_deficit)
            if (ub_fallback - lb_r) / ub_fallback <= target_gap:
                timed_out = True  # settle via the feasible fallback
                stopped = "target-gap"
                break

    if timed_out:
        b = full_target.copy()

    subsidies = SubsidyAssignment.from_vector(graph, list(ig.edge_labels), b)
    cost = subsidies.cost
    lb, kind = pool.lower_bound(weights, bound_mode, method)
    lb = min(lb, cost)
    certificate = GapCertificate(kind, lb, cost)
    if log is not None:
        log.stopped = stopped
        log.record(rounds + (1 if timed_out else 0), cost, lb)
    verified = _verify_with_binding(engine, binding, subsidies, fast) if verify else True
    return ApproxSNEResult(
        subsidies=subsidies,
        cost=cost,
        feasible=True,
        verified=verified,
        method="greedy",
        rounds=max(rounds, 1),
        cuts=len(pool.rows),
        profile=stats.delta(before),
        certificate=certificate,
        anytime=log,
        optimal=certificate.proves_optimal,
    )


# ---------------------------------------------------------------------------
# Primal-dual anytime (all game families)
# ---------------------------------------------------------------------------


def solve_sne_primal_dual(
    state: AnyState,
    method: str = "highs",
    max_rounds: int = 200,
    verify: bool = True,
    fast: bool = True,
    anytime: bool = False,
    deadline: Optional[float] = None,
    target_gap: Optional[float] = None,
) -> ApproxSNEResult:
    """LP(1) cutting planes run anytime: monotone certified lower bounds.

    The loop is the exact solver's loop (same incremental LP, same oracle
    rounding, same cut order): run to convergence it returns the same
    optimum — and byte-identical subsidies — as ``sne-cutting-plane``,
    with certificate kind ``"exact"`` and gap 0.  Each round's LP
    objective is a certified lower bound (LP over a row subset is a
    relaxation of LP(1)), monotone because rows only accumulate.  Upper
    bounds come from greedy completion of the current LP iterate
    (computed per round when ``anytime``, else only at an early stop),
    seeded with the always-feasible full-target assignment.  ``deadline``
    / ``target_gap`` stop early with the best feasible vector found.
    """
    graph = state.game.graph
    engine = BestResponseEngine.for_graph(graph)
    binding = engine.bind(state)
    stats = engine.stats
    before = stats.snapshot()
    ig = engine.ig
    n_vars = engine.num_edges
    all_edges = list(ig.edge_labels)
    weights = ig.edge_weights
    cur_path = binding.current_path_eids
    scan = binding.scan if fast else binding.scan_legacy

    lp: Union[IncrementalLP, LinearProgram]
    if fast:
        lp = IncrementalLP(n_vars, c=np.ones(n_vars), upper=weights.copy())
    else:
        lp = LinearProgram(n_vars=n_vars, c=np.ones(n_vars), upper=weights.copy())

    established = _established_eids(state, ig)
    best_ub_vec = np.zeros(n_vars)
    best_ub_vec[established] = weights[established]
    best_ub = float(best_ub_vec.sum())

    deadline_at = time.monotonic() + deadline if deadline is not None else None
    log = AnytimeLog() if anytime else None
    lb = 0.0
    rounds = 0
    cuts_added = 0
    converged = False
    stopped = "max-rounds"
    final_x: Optional[np.ndarray] = None
    last_x: Optional[np.ndarray] = None

    def completed_ub(x: np.ndarray) -> Optional[np.ndarray]:
        b0 = np.minimum(np.where(x > 1e-12, x, 0.0), weights)
        done, _r, out_of_time = _greedy_rounds(
            binding, scan, cur_path, weights, b0, None, deadline_at
        )
        return None if out_of_time else done

    for round_idx in range(1, max_rounds + 1):
        rounds = round_idx
        if isinstance(lp, IncrementalLP):
            res = lp.solve(method=method)
        else:
            res = solve_lp(lp, method=method)
        if res.status is not LPStatus.OPTIMAL or res.x is None:
            stats.cut_rounds += rounds
            if isinstance(lp, IncrementalLP):
                stats.warm_start_hits += lp.stats.warm_start_hits
            zero = SubsidyAssignment.zero(graph)
            return ApproxSNEResult(
                subsidies=zero,
                cost=float("inf"),
                feasible=False,
                verified=False,
                method="primal-dual",
                rounds=rounds,
                cuts=cuts_added,
                profile=stats.delta(before),
                certificate=GapCertificate("exact", float("inf"), float("inf")),
                anytime=log,
            )
        lb = max(lb, float(res.objective))
        last_x = res.x
        b_round = np.where(res.x > 1e-12, res.x, 0.0)
        wb = np.maximum(0.0, weights - b_round)
        found = _oracle_rows(binding, scan, cur_path, weights, n_vars, wb)
        if not found:
            converged = True
            stopped = "converged"
            final_x = res.x
            break
        if anytime:
            comp = completed_ub(res.x)
            if comp is not None:
                comp_cost = float(comp.sum())
                if comp_cost < best_ub:
                    best_ub, best_ub_vec = comp_cost, comp
        if log is not None:
            log.record(round_idx, best_ub, lb)
        if (
            target_gap is not None
            and best_ub > 0
            and (best_ub - lb) / best_ub <= target_gap
        ):
            stopped = "target-gap"
            break
        if deadline_at is not None and time.monotonic() >= deadline_at:
            stopped = "deadline"
            break
        for _rec, row, rhs in found:
            lp.add_constraint(row, rhs)
            cuts_added += 1

    stats.cut_rounds += rounds
    if isinstance(lp, IncrementalLP):
        stats.warm_start_hits += lp.stats.warm_start_hits

    if converged and final_x is not None:
        subsidies = SubsidyAssignment.from_vector(graph, all_edges, final_x)
        cost = subsidies.cost
        certificate = GapCertificate("exact", min(lb, cost), cost)
    else:
        if (stopped == "max-rounds" or not anytime) and last_x is not None:
            # One completion attempt from the last iterate before falling
            # back to the full-target assignment.
            comp = completed_ub(last_x)
            if comp is not None and float(comp.sum()) < best_ub:
                best_ub, best_ub_vec = float(comp.sum()), comp
        subsidies = SubsidyAssignment.from_vector(graph, all_edges, best_ub_vec)
        cost = subsidies.cost
        certificate = GapCertificate("lp-relaxation", min(lb, cost), cost)
    if log is not None:
        log.stopped = stopped
        log.record(rounds, cost, certificate.lower_bound)
    verified = _verify_with_binding(engine, binding, subsidies, fast) if verify else True
    return ApproxSNEResult(
        subsidies=subsidies,
        cost=cost,
        feasible=True,
        verified=verified,
        method="primal-dual",
        rounds=rounds,
        cuts=cuts_added,
        profile=stats.delta(before),
        certificate=certificate,
        anytime=log,
        optimal=certificate.proves_optimal,
    )


# ---------------------------------------------------------------------------
# Memory-lean indexed greedy (broadcast, 10^5-10^6 nodes)
# ---------------------------------------------------------------------------


def solve_sne_greedy_indexed(
    ig: IndexedGraph,
    root: int,
    tree_eids: Optional[np.ndarray] = None,
    multiplicity: Optional[np.ndarray] = None,
    tol: float = LP_TOL,
    anytime: bool = False,
    deadline: Optional[float] = None,
    target_gap: Optional[float] = None,
    max_rounds: int = 10_000,
) -> IndexedApproxResult:
    """Certified greedy SNE on a broadcast instance, pure arrays end to end.

    The target is the rooted spanning tree over ``tree_eids`` (default:
    the Kruskal MST at the edge-id level).  Per round the Lemma 2
    incidence slacks are evaluated for *all* non-tree incidences at once
    — two prefix-sum passes and one batch LCA, no per-player structures —
    and every violated incidence's own subpath ``u -> lca`` is fully
    subsidized via the diff-counting subtree pass.  Violated rows
    accumulate into the closed-form Lagrangian lower bound
    (:func:`lagrangian_lower_bound`), so the returned
    :class:`GapCertificate` is certified without ever building an LP.

    Memory: O(n + m) flat float64/int arrays; nothing label- or
    player-keyed.  ``deadline`` falls back to fully subsidizing every
    established tree edge (always feasible).
    """
    w = ig.edge_weights
    m = ig.num_edges
    n = ig.num_nodes
    if tree_eids is None:
        tree_eids = kruskal_mst_ids(ig)
    tree = IndexedTree(ig, root, tree_eids)

    if multiplicity is None:
        mult = np.ones(n)
        mult[root] = 0.0
    else:
        mult = np.asarray(multiplicity, dtype=np.float64)
    loads = tree.edge_loads(mult)
    inv_own = np.zeros(m)
    used = loads > 0
    inv_own[used] = 1.0 / loads[used]
    inv_dev = np.zeros(m)
    inv_dev[tree.is_tree_edge] = 1.0 / (loads[tree.is_tree_edge] + 1.0)

    # All incidences (u, v) once: u deviates along a non-tree edge to v
    # and follows v's tree path; the shared suffix above lca(u, v)
    # cancels (Lemma 2).
    nontree = np.flatnonzero(~tree.is_tree_edge)
    U = np.concatenate([ig.edge_u[nontree], ig.edge_v[nontree]]).astype(np.int64)
    V = np.concatenate([ig.edge_v[nontree], ig.edge_u[nontree]]).astype(np.int64)
    Wc = np.concatenate([w[nontree], w[nontree]])
    keep = (U != root) & (mult[U] > 0)
    L = tree.lca(U, V) if len(U) else np.empty(0, dtype=np.int64)

    # Row constants at b = 0 (rows are fixed linear constraints; their
    # deficits don't move as subsidies grow).
    p1_0 = tree.prefix_sum_edges(w * inv_own)
    p2_0 = tree.prefix_sum_edges(w * inv_dev)
    deficit0 = (p1_0[U] - p1_0[L]) - (p2_0[V] - p2_0[L]) - Wc if len(U) else Wc

    established = tree_eids[loads[tree_eids] > 0]
    ub_fallback = float(w[established].sum())

    deadline_at = time.monotonic() + deadline if deadline is not None else None
    log = AnytimeLog() if anytime else None
    b = np.zeros(m)
    g = np.zeros(m)
    total_deficit = 0.0
    pooled = np.zeros(len(U), dtype=bool)
    pe = tree.parent_eid
    rounds = 0
    num_rows = 0
    timed_out = False
    stopped = "converged"

    def _mark_paths(tops: np.ndarray, stops: np.ndarray) -> np.ndarray:
        """Nodes x whose parent edge lies on >=1 path top -> stop (counts)."""
        marks = np.zeros(n, dtype=np.int64)
        np.add.at(marks, tops, 1)
        np.add.at(marks, stops, -1)
        return tree.subtree_counts(marks)

    while rounds < max_rounds:
        if deadline_at is not None and time.monotonic() >= deadline_at and rounds:
            timed_out = True
            stopped = "deadline"
            break
        wn = w - b
        p1 = tree.prefix_sum_edges(wn * inv_own)
        p2 = tree.prefix_sum_edges(wn * inv_dev)
        slack = Wc + (p2[V] - p2[L]) - (p1[U] - p1[L]) if len(U) else Wc
        viol = keep & (slack < -tol) if len(U) else np.zeros(0, dtype=bool)
        if not bool(viol.any()):
            break
        rounds += 1
        # Pool each violated row once for the Lagrangian certificate.
        new = viol & ~pooled & (deficit0 > 0)
        if bool(new.any()):
            cnt_own = _mark_paths(U[new], L[new])
            cnt_dev = _mark_paths(V[new], L[new])
            nz = np.flatnonzero(cnt_own | cnt_dev)
            nz = nz[nz != root]
            eids = pe[nz]
            g[eids] += cnt_own[nz] * inv_own[eids] - cnt_dev[nz] * inv_dev[eids]
            total_deficit += float(deficit0[new].sum())
            num_rows += int(new.sum())
        pooled |= viol
        # Greedy step: fully subsidize every violated own subpath.
        cnt = _mark_paths(U[viol], L[viol])
        hit = np.flatnonzero(cnt > 0)
        hit = hit[hit != root]
        b[pe[hit]] = w[pe[hit]]
        if log is not None:
            lb_r, _ = lagrangian_lower_bound(w, g, total_deficit)
            log.record(rounds, ub_fallback, lb_r)
        if target_gap is not None and ub_fallback > 0:
            lb_r, _ = lagrangian_lower_bound(w, g, total_deficit)
            if (ub_fallback - lb_r) / ub_fallback <= target_gap:
                timed_out = True
                stopped = "target-gap"
                break

    if timed_out:
        b = np.zeros(m)
        b[established] = w[established]
        feasible_now = True
        verified = True  # full-target subsidies are feasible by construction
    else:
        # Re-evaluate every incidence slack at the final subsidies: the
        # vectorized analogue of the exact checker's broadcast scan.
        wn = w - b
        p1 = tree.prefix_sum_edges(wn * inv_own)
        p2 = tree.prefix_sum_edges(wn * inv_dev)
        slack = Wc + (p2[V] - p2[L]) - (p1[U] - p1[L]) if len(U) else Wc
        verified = not bool((keep & (slack < -tol)).any()) if len(U) else True
        feasible_now = verified

    cost = float(b.sum())
    lb, _lam = lagrangian_lower_bound(w, g, total_deficit)
    lb = min(lb, cost)
    certificate = GapCertificate("lagrangian", lb, cost)
    if log is not None:
        log.stopped = stopped
        log.record(rounds + (1 if timed_out else 0), cost, lb)
    return IndexedApproxResult(
        subsidy_vector=b,
        cost=cost,
        feasible=feasible_now,
        verified=verified,
        method="greedy-indexed",
        rounds=max(rounds, 1),
        certificate=certificate,
        tree_eids=tree_eids,
        num_incidences=int(keep.sum()),
        anytime=log,
    )
