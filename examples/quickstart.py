"""Quickstart: enforce a minimum spanning tree with subsidies.

Builds a tiny broadcast game where the MST is *not* an equilibrium, then
stabilizes it three ways:

1. the LP-optimal subsidies (Theorem 1 / LP (3)),
2. the constructive Theorem 6 assignment (cost exactly wgt(T)/e),
3. an all-or-nothing assignment (Section 5).

Run:  python examples/quickstart.py
"""

from repro.games import BroadcastGame, check_equilibrium
from repro.graphs import Graph
from repro.subsidies import (
    solve_aon_sne_exact,
    solve_sne_broadcast_lp3,
    theorem6_subsidies,
)


def main() -> None:
    # A path 0-1-2-3 (the MST) with two tempting shortcuts to the root.
    g = Graph.from_edges(
        [
            (0, 1, 1.0),
            (1, 2, 1.0),
            (2, 3, 1.0),
            (0, 2, 1.3),  # shortcut for player 2
            (0, 3, 1.6),  # shortcut for player 3
        ]
    )
    game = BroadcastGame(g, root=0)
    mst = game.mst_state()
    print(f"MST weight: {mst.social_cost():.3f}")

    report = check_equilibrium(mst, find_all=True)
    print(f"MST is an equilibrium without subsidies: {report.is_equilibrium}")
    for dev in report.deviations:
        print(
            f"  player {dev.player} pays {dev.current_cost:.3f} but could pay "
            f"{dev.deviation_cost:.3f} via {dev.path_nodes}"
        )

    # 1. Optimal fractional subsidies (Theorem 1, broadcast LP (3)).
    lp = solve_sne_broadcast_lp3(mst)
    print(f"\nLP-optimal subsidies: cost {lp.cost:.4f} "
          f"({lp.fraction_of_target(mst.social_cost()):.1%} of wgt(T))")
    for edge in lp.subsidies:
        print(f"  subsidize {edge}: {lp.subsidies[edge]:.4f}")
    assert check_equilibrium(mst, lp.subsidies, tol=1e-6).is_equilibrium

    # 2. The Theorem 6 constructive assignment: always exactly wgt(T)/e.
    constructive = theorem6_subsidies(mst)
    print(f"\nTheorem 6 constructive: cost {constructive.cost:.4f} "
          f"(= wgt(T)/e = {constructive.bound:.4f})")
    assert check_equilibrium(mst, constructive.subsidies, tol=1e-7).is_equilibrium

    # 3. All-or-nothing: links can only be fully funded.
    aon = solve_aon_sne_exact(mst)
    print(f"\nAll-or-nothing optimum: cost {aon.cost:.4f} "
          f"(fully funds {list(aon.subsidies.subsidized_edges())})")
    assert aon.verified

    print("\nAll three assignments make the MST a Nash equilibrium.")


if __name__ == "__main__":
    main()
