"""Theorem 3: broadcast SND is NP-hard even with zero budget.

Reduction from strict BIN PACKING (Figure 2): one Bypass gadget of capacity
``C`` per bin, one star of ``s_i`` nodes per item (center ``x_i`` plus
``s_i - 1`` zero-weight leaves), and a complete bipartite layer between
connectors and star centers of weight ``2 * (H_{C+l} - H_C)``.

A minimum spanning tree picks one connector per item; it is an equilibrium
iff the induced item-to-bin allocation fills every bin exactly — i.e. iff
the BIN PACKING instance is solvable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.bounds.harmonic import harmonic_diff
from repro.graphs.graph import Edge, Graph, Node, canonical_edge
from repro.games.broadcast import BroadcastGame, TreeState
from repro.games.equilibrium import check_equilibrium
from repro.hardness.bypass import BypassGadget, add_bypass_gadget
from repro.hardness.solvers.binpacking import BinPackingInstance, solve_bin_packing_exact


@dataclass
class Theorem3Instance:
    """The constructed SND instance plus reduction bookkeeping."""

    packing: BinPackingInstance
    game: BroadcastGame
    gadgets: List[BypassGadget]
    item_centers: List[Node]
    star_edges: List[Edge] = field(default_factory=list)
    bipartite_weight: float = 0.0
    ell: int = 0
    #: target equilibrium weight K = k*l + 2n*(H_{C+l} - H_C)
    K: float = 0.0

    @property
    def root(self) -> Node:
        return self.game.root

    def connector(self, bin_idx: int) -> Node:
        return self.gadgets[bin_idx].connector


def build_theorem3_instance(packing: BinPackingInstance) -> Theorem3Instance:
    """Construct the Theorem 3 broadcast game from a strict instance."""
    if not packing.is_strict():
        raise ValueError(
            "Theorem 3 requires the strict form: even sizes/capacity, "
            "sum(sizes) = k*C, capacity >= max size (use to_strict_form)"
        )
    if any(s < 2 for s in packing.sizes):
        raise ValueError("strict sizes are even, hence >= 2")

    g = Graph()
    root: Node = "r"
    g.add_node(root)

    gadgets = [
        add_bypass_gadget(g, root, kappa=packing.capacity, tag=("bin", j))
        for j in range(packing.n_bins)
    ]
    ell = gadgets[0].ell
    bip_w = 2.0 * harmonic_diff(packing.capacity + ell, packing.capacity)

    item_centers: List[Node] = []
    star_edges: List[Edge] = []
    for i, size in enumerate(packing.sizes):
        center: Node = ("item", i)
        g.add_node(center)
        item_centers.append(center)
        for t in range(size - 1):
            leaf = ("leaf", i, t)
            g.add_edge(center, leaf, 0.0)
            star_edges.append(canonical_edge(center, leaf))
        for gadget in gadgets:
            g.add_edge(center, gadget.connector, bip_w)

    game = BroadcastGame(g, root=root)
    K = packing.n_bins * ell + 2 * len(packing.sizes) * (bip_w / 2.0)
    return Theorem3Instance(
        packing=packing,
        game=game,
        gadgets=gadgets,
        item_centers=item_centers,
        star_edges=star_edges,
        bipartite_weight=bip_w,
        ell=ell,
        K=K,
    )


def tree_from_packing(
    instance: Theorem3Instance, assignment: Sequence[int]
) -> TreeState:
    """The spanning tree ``T_ne`` induced by an item-to-bin assignment."""
    if not instance.packing.check_solution(assignment):
        raise ValueError("assignment does not solve the strict packing instance")
    edges: List[Tuple[Node, Node]] = list(instance.star_edges)
    for gadget in instance.gadgets:
        edges.extend(gadget.basic_path_edges)
    for i, b in enumerate(assignment):
        edges.append((instance.item_centers[i], instance.gadgets[b].connector))
    return instance.game.tree_state(edges)


def packing_from_tree(instance: Theorem3Instance, state: TreeState) -> List[int]:
    """Read the item-to-bin allocation off a minimum spanning tree."""
    connector_index: Dict[Node, int] = {
        gadget.connector: j for j, gadget in enumerate(instance.gadgets)
    }
    tree_set = state.edge_set()
    out: List[int] = []
    for i, center in enumerate(instance.item_centers):
        bins = [
            connector_index[c]
            for c in connector_index
            if canonical_edge(center, c) in tree_set
        ]
        if len(bins) != 1:
            raise ValueError(f"item {i} is not connected to exactly one connector")
        out.append(bins[0])
    return out


def any_mst_equilibrium(
    instance: Theorem3Instance,
) -> Optional[TreeState]:
    """Search for an MST that is an equilibrium, via the reduction itself.

    By Theorem 3 this succeeds iff the packing is solvable, so we invoke the
    exact packing oracle and map its solution through
    :func:`tree_from_packing` (then double-check with the game's own
    equilibrium checker — the reduction's forward direction, executed).
    """
    solution = solve_bin_packing_exact(instance.packing)
    if solution is None:
        return None
    state = tree_from_packing(instance, solution)
    report = check_equilibrium(state)
    if not report.is_equilibrium:  # pragma: no cover - would falsify Thm 3
        raise AssertionError("reduction violated: packing solution not an equilibrium")
    return state
