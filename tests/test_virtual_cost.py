"""Tests for the virtual cost function (Lemma 7, Claims 8/10, Figure 4)."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.subsidies.virtual_cost import (
    claim10_closed_form,
    edge_virtual_cost,
    pack_subsidies_on_path,
    path_virtual_cost,
    real_cost_share,
)


class TestEdgeVirtualCost:
    def test_unsubsidized_singleton_infinite(self):
        assert edge_virtual_cost(1.0, 1, 0.0) == math.inf

    def test_fully_subsidized_zero(self):
        assert edge_virtual_cost(1.0, 3, 1.0) == pytest.approx(0.0)

    def test_basic_value(self):
        assert edge_virtual_cost(1.0, 2, 0.0) == pytest.approx(math.log(2))

    def test_scales_with_c(self):
        assert edge_virtual_cost(5.0, 2, 0.0) == pytest.approx(5 * math.log(2))

    def test_validation(self):
        with pytest.raises(ValueError):
            edge_virtual_cost(0.0, 2, 0.0)
        with pytest.raises(ValueError):
            edge_virtual_cost(1.0, 0, 0.0)
        with pytest.raises(ValueError):
            edge_virtual_cost(1.0, 2, 1.5)

    @given(st.integers(1, 200), st.floats(0.0, 1.0))
    def test_claim8_dominates_real_share(self, m, y_frac):
        """Claim 8: vc(a, y) >= (c - y)/n_a for any n_a >= m."""
        c = 1.0
        y = y_frac * c
        vc = edge_virtual_cost(c, m, y)
        assert vc >= (c - y) / m - 1e-12

    @given(st.integers(2, 100), st.floats(0.0, 0.99))
    def test_monotone_decreasing_in_subsidy(self, m, y):
        assert edge_virtual_cost(1.0, m, y + 0.01) <= edge_virtual_cost(1.0, m, y)


class TestPacking:
    def test_pack_fills_least_crowded_first(self):
        y = pack_subsidies_on_path(1.0, [3, 1, 2], total=1.6)
        # Least crowded (m=1) filled first, then m=2 gets the remainder.
        assert y == [0.0, 1.0, pytest.approx(0.6)]

    def test_pack_zero(self):
        assert pack_subsidies_on_path(1.0, [1, 2], 0.0) == [0.0, 0.0]

    def test_pack_everything(self):
        assert pack_subsidies_on_path(2.0, [1, 2], 4.0) == [2.0, 2.0]

    def test_pack_validation(self):
        with pytest.raises(ValueError):
            pack_subsidies_on_path(1.0, [1], 2.0)

    def test_alignment_validation(self):
        with pytest.raises(ValueError):
            path_virtual_cost(1.0, [1, 2], [0.0])


class TestClaim10:
    """vc of a packed path equals the closed form c*ln(t/(t-|q'|+y/c))."""

    @given(st.integers(1, 30), st.integers(0, 60))
    def test_closed_form_matches_sum(self, q_len, tenths):
        c = 1.0
        total = min(tenths / 10.0, q_len * c)
        t = q_len  # multiplicities 1..q_len (consecutive, ending at t)
        mults = list(range(1, q_len + 1))
        subsidies = pack_subsidies_on_path(c, mults, total)
        vc_sum = path_virtual_cost(c, mults, subsidies)
        vc_closed = claim10_closed_form(c, t, q_len, total)
        if math.isinf(vc_closed):
            assert math.isinf(vc_sum)
        else:
            assert vc_sum == pytest.approx(vc_closed, abs=1e-9)

    @given(st.integers(2, 20), st.integers(1, 15), st.integers(0, 40))
    def test_closed_form_shifted_multiplicities(self, q_len, h, tenths):
        """Multiplicities h+1 .. h+q_len (Lemma 7's subtree case)."""
        c = 2.0
        total = min(tenths / 10.0, q_len * c)
        t = h + q_len
        mults = list(range(h + 1, h + q_len + 1))
        subsidies = pack_subsidies_on_path(c, mults, total)
        vc_sum = path_virtual_cost(c, mults, subsidies)
        assert vc_sum == pytest.approx(claim10_closed_form(c, t, q_len, total), abs=1e-9)


class TestFigure4:
    def test_figure4_numbers(self):
        """The Figure 4 scenario: 6 heavy edges, m = 1..6, subsidies 1.6c.

        The caption: leftmost edge and 60% of the second are subsidized;
        vc = ln(6/1.6).
        """
        c = 1.0
        mults = [1, 2, 3, 4, 5, 6]
        y = pack_subsidies_on_path(c, mults, 1.6)
        assert y[0] == 1.0 and y[1] == pytest.approx(0.6)
        assert path_virtual_cost(c, mults, y) == pytest.approx(math.log(6 / 1.6))
        # Real cost of the deepest player is below the virtual cost.
        assert real_cost_share(c, mults, y) <= path_virtual_cost(c, mults, y)

    @given(st.integers(1, 25), st.integers(0, 50))
    def test_real_cost_below_virtual(self, q_len, tenths):
        c = 1.0
        total = min(tenths / 10.0, q_len * c)
        mults = list(range(1, q_len + 1))
        y = pack_subsidies_on_path(c, mults, total)
        assert real_cost_share(c, mults, y) <= path_virtual_cost(c, mults, y) + 1e-12
