"""Tests for the Theorem 6 constructive wgt(T)/e algorithm."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.bounds.instances import theorem11_cycle_instance
from repro.games import BroadcastGame, check_equilibrium
from repro.graphs import Graph
from repro.graphs.generators import (
    grid_graph,
    random_connected_gnp,
    random_tree_plus_chords,
)
from repro.subsidies import solve_sne_broadcast_lp3, theorem6_subsidies
from repro.subsidies.theorem6 import weight_level_decomposition

E = math.e


class TestDecomposition:
    def test_single_weight(self):
        assert weight_level_decomposition([2.0, 2.0]) == [(2.0, 2.0)]

    def test_two_levels(self):
        assert weight_level_decomposition([1.0, 3.0]) == [(1.0, 1.0), (3.0, 2.0)]

    def test_zero_weights_skipped(self):
        assert weight_level_decomposition([0.0, 1.0]) == [(1.0, 1.0)]

    def test_levels_sum_to_max(self):
        weights = [0.5, 1.25, 4.0, 4.0, 7.5]
        levels = weight_level_decomposition(weights)
        assert sum(c for _, c in levels) == pytest.approx(max(weights))

    def test_empty(self):
        assert weight_level_decomposition([0.0, 0.0]) == []


class TestUniformInstances:
    """Uniform weights: one level, hand-checkable subsidy totals."""

    def test_single_edge(self):
        g = Graph.from_edges([(0, 1, 1.0)])
        game = BroadcastGame(g, root=0)
        res = theorem6_subsidies(game.mst_state())
        # One heavy edge with m=1: subsidy c/e.
        assert res.cost == pytest.approx(1 / E)
        assert res.fraction == pytest.approx(1 / E)

    def test_unit_path(self):
        # Path 0-1-2: edge loads {2, 1}; total must be 2/e.
        g = Graph.from_edges([(0, 1, 1.0), (1, 2, 1.0)])
        game = BroadcastGame(g, root=0)
        res = theorem6_subsidies(game.mst_state())
        assert res.cost == pytest.approx(2 / E)

    def test_star_below_heavy_trunk(self):
        # Root - u (trunk), u - {l1, l2}: m = 3 on the trunk, 1 on leaves.
        g = Graph.from_edges([(0, 1, 1.0), (1, 2, 1.0), (1, 3, 1.0)])
        game = BroadcastGame(g, root=0)
        res = theorem6_subsidies(game.mst_state())
        assert res.cost == pytest.approx(3 / E)
        # The trunk sits above the cut (vc = ln(3/2) < 1): zero subsidies.
        assert res.subsidies.get((0, 1)) == 0.0
        # Each leaf edge gets c * 3/(2e).
        assert res.subsidies.get((1, 2)) == pytest.approx(3 / (2 * E))

    def test_unit_cycle_matches_theory(self):
        for n in (4, 9, 17):
            game, state = theorem11_cycle_instance(n)
            res = theorem6_subsidies(state)
            assert res.cost == pytest.approx(n / E)
            assert check_equilibrium(state, res.subsidies, tol=1e-7).is_equilibrium


class TestGuarantees:
    @settings(max_examples=20, deadline=None)
    @given(st.integers(4, 12), st.floats(0.25, 0.8), st.integers(0, 10_000))
    def test_bound_and_enforcement_random_graphs(self, n, p, seed):
        g = random_connected_gnp(n, p, seed=seed)
        game = BroadcastGame(g, root=0)
        state = game.mst_state()
        res = theorem6_subsidies(state)
        # (a) never exceeds wgt(T)/e; the accounting is exactly wgt(T)/e.
        assert res.cost <= res.bound + 1e-9
        assert res.cost == pytest.approx(res.bound, rel=1e-6)
        # (b) enforces the MST as an equilibrium.
        assert check_equilibrium(state, res.subsidies, tol=1e-7).is_equilibrium
        # (c) per-level totals match the Lemma 7 accounting.
        for lvl in res.levels:
            assert lvl.subsidy_total == pytest.approx(lvl.level_weight / E, rel=1e-9)

    @settings(max_examples=12, deadline=None)
    @given(st.integers(4, 10), st.integers(0, 10_000))
    def test_lp_optimum_never_exceeds_constructive(self, n, seed):
        g = random_tree_plus_chords(n, n // 2, seed=seed, chord_factor=1.1)
        game = BroadcastGame(g, root=0)
        state = game.mst_state()
        lp = solve_sne_broadcast_lp3(state)
        constructive = theorem6_subsidies(state)
        assert lp.cost <= constructive.cost + 1e-6

    def test_grid(self):
        game = BroadcastGame(grid_graph(3, 4), root=0)
        state = game.mst_state()
        res = theorem6_subsidies(state)
        assert check_equilibrium(state, res.subsidies, tol=1e-7).is_equilibrium
        assert res.fraction == pytest.approx(1 / E, rel=1e-9)

    def test_multilevel_weights(self):
        g = Graph.from_edges(
            [(0, 1, 1.0), (1, 2, 2.5), (2, 3, 1.0), (0, 3, 3.0), (1, 3, 4.0)]
        )
        game = BroadcastGame(g, root=0)
        state = game.mst_state()
        res = theorem6_subsidies(state)
        assert len(res.levels) >= 2
        assert res.cost == pytest.approx(res.bound, rel=1e-9)
        assert check_equilibrium(state, res.subsidies, tol=1e-7).is_equilibrium

    def test_zero_weight_edges_get_nothing(self):
        g = Graph.from_edges([(0, 1, 0.0), (1, 2, 1.0), (0, 2, 1.5)])
        game = BroadcastGame(g, root=0)
        res = theorem6_subsidies(game.mst_state())
        assert res.subsidies.get((0, 1)) == 0.0


class TestValidation:
    def test_rejects_non_mst(self):
        g = Graph.from_edges([(0, 1, 1.0), (1, 2, 1.0), (0, 2, 5.0)])
        game = BroadcastGame(g, root=0)
        heavy_tree = game.tree_state([(0, 1), (0, 2)])
        with pytest.raises(ValueError):
            theorem6_subsidies(heavy_tree)

    def test_rejects_multiplicities(self):
        g = Graph.from_edges([(0, 1, 1.0), (1, 2, 1.0)])
        game = BroadcastGame(g, root=0, multiplicity={2: 3})
        with pytest.raises(ValueError):
            theorem6_subsidies(game.tree_state([(0, 1), (1, 2)]))

    def test_alternative_mst_accepted(self):
        # Uniform square: any spanning path is an MST.
        g = Graph.from_edges([(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0), (3, 0, 1.0)])
        game = BroadcastGame(g, root=0)
        alt = game.tree_state([(0, 1), (1, 2), (3, 0)])
        res = theorem6_subsidies(alt)
        assert check_equilibrium(alt, res.subsidies, tol=1e-7).is_equilibrium
