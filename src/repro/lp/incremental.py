"""Incremental LP with sparse row storage and warm-started re-solves.

The cutting-plane driver's access pattern — solve, append a few cut rows,
solve again — is pathological for the dense :class:`~repro.lp.problem.
LinearProgram`: every round re-materializes the full ``A_ub`` and every
backend solve starts from scratch.  :class:`IncrementalLP` is the fast
path built for exactly that pattern:

* the constraint store is CSR-shaped from the start (``data`` / ``indices``
  / ``indptr`` growth buffers with amortized-doubling capacity), so a cut
  appends in ``O(nnz(row))`` and nothing dense is ever materialized;
* the HiGHS backend receives the rows as a ``scipy.sparse.csr_matrix``
  *view* over the buffers — construction is O(1)-ish per solve — and a
  re-solve whose appended rows are already satisfied by the previous
  optimum is answered from that optimum without calling the solver at all
  (adding satisfied constraints cannot displace the optimum of a
  minimization);
* the bespoke tableau backend resumes from the previous optimal basis via
  :class:`~repro.lp.simplex.WarmSimplex` (dual-simplex warm start).

Exact parity with the dense path is part of the contract: the HiGHS
backend receives bit-identical matrices either way (scipy canonicalizes
dense input to the same sparse form), and :meth:`IncrementalLP.
to_linear_program` materializes the dense twin the parity tests compare
against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np
import scipy.sparse as sp
from scipy.optimize import linprog

from repro.lp.backend import _SCIPY_STATUS
from repro.lp.problem import LinearProgram, LPResult, LPStatus
from repro.lp.simplex import WarmSimplex


def _capture_highs_direct():
    """Bind HiGHS core handles once, skipping scipy's per-call pipeline.

    ``scipy.optimize.linprog`` spends a large, problem-size-independent
    slice of each call parsing arguments, re-validating options and
    rebuilding solver state.  The cutting-plane loop calls with the same
    (validated, canonical) structures every round, so the fast path feeds
    the HiGHS core directly: one prebuilt ``HighsOptions`` carrying
    exactly the values scipy's ``method="highs"`` path sets (presolve on,
    dual simplex strategy, output off), a ``HighsLp`` filled from the CSC
    buffers, then ``passOptions``/``passModel``/``run``.  Same library,
    same options, same matrices — bit-identical answers (the benchmark
    asserts this against the public ``linprog`` path).  Returns ``None``
    when scipy's private layout changed; callers then fall back to
    ``linprog``.
    """
    try:
        from scipy.optimize import _linprog_highs as glue
        from scipy.optimize._highspy import _highs_wrapper as wrapper_mod

        core = wrapper_mod._h
        options = core.HighsOptions()
        # Exactly the non-default values _highs_wrapper applies for
        # scipy's method="highs" (everything else it leaves at default).
        options.presolve = "on"
        options.highs_debug_level = int(glue.HighsDebugLevel.kHighsDebugLevelNone)
        options.log_to_console = False
        options.output_flag = False
        options.simplex_strategy = int(glue.s_c.SimplexStrategy.kSimplexStrategyDual)
        return {
            "core": core,
            "inf": glue.kHighsInf,
            "to_scipy": glue._highs_to_scipy_status_message,
            "options": options,
        }
    except Exception:  # pragma: no cover - exercised only on scipy drift
        return None


_HIGHS_DIRECT = _capture_highs_direct()


@dataclass
class LPStats:
    """Solve-path bookkeeping for one :class:`IncrementalLP`."""

    #: backend solves requested (including ones answered without a solver run)
    solves: int = 0
    #: re-solves served from warm state: a resumed simplex basis, a cached
    #: optimum, or a satisfied-cuts shortcut — anything cheaper than cold
    warm_start_hits: int = 0
    #: rows appended over the program's lifetime
    rows_added: int = 0

    def as_dict(self) -> dict:
        return {
            "solves": self.solves,
            "warm_start_hits": self.warm_start_hits,
            "rows_added": self.rows_added,
        }


class IncrementalLP:
    """A ``min c.x : A x <= b, l <= x <= u`` LP built for row appends.

    Mirrors the :class:`~repro.lp.problem.LinearProgram` construction API
    (``add_constraint`` / ``add_sparse_constraint``) so the cutting-plane
    driver and the LP(1)/LP(2) builders can use either interchangeably;
    see the module docstring for what changes under the hood.  Variable
    bounds are fixed at construction — the incremental machinery assumes
    only rows ever change.
    """

    def __init__(
        self,
        n_vars: int,
        c: np.ndarray,
        lower: Optional[np.ndarray] = None,
        upper: Optional[np.ndarray] = None,
    ) -> None:
        self.n_vars = n_vars
        self.c = np.asarray(c, dtype=float)
        if self.c.shape != (n_vars,):
            raise ValueError(f"objective has shape {self.c.shape}, expected ({n_vars},)")
        self.lower = np.zeros(n_vars) if lower is None else np.asarray(lower, dtype=float)
        self.upper = (
            np.full(n_vars, np.inf) if upper is None else np.asarray(upper, dtype=float)
        )
        if np.any(self.lower > self.upper):
            raise ValueError("lower bound exceeds upper bound for some variable")
        self.stats = LPStats()

        # CSR growth buffers: rows occupy data/indices[indptr[i]:indptr[i+1]].
        self._data = np.empty(16, dtype=np.float64)
        self._indices = np.empty(16, dtype=np.int64)
        self._indptr = np.zeros(17, dtype=np.int64)
        self._m = 0
        self._nnz = 0
        self._rhs: List[float] = []

        #: last solve per method: (rows_solved, LPResult)
        self._last: dict = {}
        self._warm: Optional[WarmSimplex] = None
        self._warm_rows_fed = 0
        #: (lb, ub) with infinities replaced for the HiGHS core, built once
        self._highs_bounds: Optional[Tuple[np.ndarray, np.ndarray]] = None

    # -- construction --------------------------------------------------------

    @property
    def n_constraints(self) -> int:
        return self._m

    @property
    def rhs(self) -> List[float]:
        """Right-hand sides, in row order (read-only by convention)."""
        return self._rhs

    def add_constraint(self, coeffs: Sequence[float] | np.ndarray, rhs: float) -> None:
        """Append the row ``coeffs . x <= rhs`` (dense input, sparse storage)."""
        row = np.asarray(coeffs, dtype=float)
        if row.shape != (self.n_vars,):
            raise ValueError(f"row has shape {row.shape}, expected ({self.n_vars},)")
        idx = np.nonzero(row)[0]
        self._append_row(idx.astype(np.int64), row[idx], rhs)

    def add_sparse_constraint(self, entries: Sequence[Tuple[int, float]], rhs: float) -> None:
        """Append a row given as (index, coefficient) pairs.

        Duplicate indices accumulate, matching
        :meth:`~repro.lp.problem.LinearProgram.add_sparse_constraint`.
        """
        acc: dict = {}
        for idx, coef in entries:
            if not 0 <= idx < self.n_vars:
                raise IndexError(f"column {idx} out of range for {self.n_vars} variables")
            acc[idx] = acc.get(idx, 0.0) + float(coef)
        cols = np.fromiter(sorted(acc), dtype=np.int64, count=len(acc))
        vals = np.array([acc[int(i)] for i in cols], dtype=np.float64)
        keep = vals != 0.0
        self._append_row(cols[keep], vals[keep], rhs)

    def _append_row(self, cols: np.ndarray, vals: np.ndarray, rhs: float) -> None:
        """O(nnz) append into the CSR buffers (amortized-doubling growth)."""
        order = np.argsort(cols, kind="stable")
        cols, vals = cols[order], vals[order]
        k = len(cols)
        nnz, m = self._nnz, self._m
        if nnz + k > len(self._data):
            cap = max(2 * len(self._data), nnz + k)
            data = np.empty(cap, dtype=np.float64)
            data[:nnz] = self._data[:nnz]
            indices = np.empty(cap, dtype=np.int64)
            indices[:nnz] = self._indices[:nnz]
            self._data, self._indices = data, indices
        if m + 2 > len(self._indptr):
            indptr = np.zeros(max(2 * len(self._indptr), m + 2), dtype=np.int64)
            indptr[: m + 1] = self._indptr[: m + 1]
            self._indptr = indptr
        self._data[nnz : nnz + k] = vals
        self._indices[nnz : nnz + k] = cols
        self._indptr[m + 1] = nnz + k
        self._nnz = nnz + k
        self._m = m + 1
        self._rhs.append(float(rhs))
        self.stats.rows_added += 1

    # -- materialization -----------------------------------------------------

    def sparse_matrix(self) -> sp.csr_matrix:
        """The rows as a ``csr_matrix`` sharing the growth buffers.

        Safe against later appends: new rows write past ``nnz``, and a
        capacity doubling swaps in fresh buffers without touching the old
        ones a previously returned matrix still references.
        """
        return sp.csr_matrix(
            (
                self._data[: self._nnz],
                self._indices[: self._nnz],
                self._indptr[: self._m + 1],
            ),
            shape=(self._m, self.n_vars),
            copy=False,
        )

    def matrices(self) -> Tuple[np.ndarray, np.ndarray]:
        """Dense ``(A_ub, b_ub)`` (debug/parity aid; the solvers never call it)."""
        return (
            self.sparse_matrix().toarray(),
            np.asarray(self._rhs, dtype=float),
        )

    def row(self, i: int) -> np.ndarray:
        """Row ``i`` densified (feeds the warm tableau and the tests)."""
        if not 0 <= i < self._m:
            raise IndexError(f"row {i} out of range for {self._m} constraints")
        out = np.zeros(self.n_vars)
        lo, hi = self._indptr[i], self._indptr[i + 1]
        out[self._indices[lo:hi]] = self._data[lo:hi]
        return out

    def to_linear_program(self) -> LinearProgram:
        """The dense cold-path twin with identical rows, in order."""
        lp = LinearProgram(
            n_vars=self.n_vars,
            c=self.c.copy(),
            lower=self.lower.copy(),
            upper=self.upper.copy(),
        )
        for i in range(self._m):
            lp.add_constraint(self.row(i), self._rhs[i])
        return lp

    # -- solving -------------------------------------------------------------

    def solve(self, method: str = "highs", max_iter: int = 20_000) -> LPResult:
        """Solve with the chosen backend, warm-starting where possible."""
        self.stats.solves += 1
        cached = self._last.get(method)
        if cached is not None and cached[0] == self._m:
            self.stats.warm_start_hits += 1
            return cached[1]
        if method == "highs":
            result, warm = self._solve_highs(cached)
        elif method == "simplex":
            result, warm = self._solve_simplex(max_iter)
        else:
            raise ValueError(f"unknown LP method {method!r}")
        if warm:
            self.stats.warm_start_hits += 1
        self._last[method] = (self._m, result)
        return result

    def _solve_highs(
        self, cached: Optional[Tuple[int, LPResult]]
    ) -> Tuple[LPResult, bool]:
        # Solution-guided shortcut: rows appended since an optimal solve
        # that the previous optimum already satisfies cannot displace it.
        if cached is not None and cached[1].ok:
            rows_solved, prev = cached
            x = prev.x
            assert x is not None
            lo, hi = self._indptr[rows_solved], self._indptr[self._m]
            tail = sp.csr_matrix(
                (
                    self._data[lo:hi],
                    self._indices[lo:hi],
                    self._indptr[rows_solved : self._m + 1] - lo,
                ),
                shape=(self._m - rows_solved, self.n_vars),
                copy=False,
            )
            if np.all(tail @ x <= np.asarray(self._rhs[rows_solved:], dtype=float)):
                return prev, True

        # Rowless LP with strictly positive costs: the optimum is exactly
        # the lower-bound vertex (unique, and what HiGHS returns bit-for-bit
        # — LP (1)'s first round hits this every solve).
        if self._m == 0 and np.all(self.c > 0.0) and np.all(np.isfinite(self.lower)):
            x = self.lower.copy()
            return LPResult(LPStatus.OPTIMAL, x=x, objective=float(self.c @ x)), False
        direct = _HIGHS_DIRECT
        if direct is not None:
            try:
                return self._solve_highs_direct(direct), False
            except Exception:  # pragma: no cover - scipy drift safety net
                pass
        A = self.sparse_matrix() if self._m else None
        bounds = list(zip(self.lower, self.upper))
        res = linprog(
            self.c,
            A_ub=A,
            b_ub=np.asarray(self._rhs, dtype=float) if self._m else None,
            bounds=bounds,
            method="highs",
        )
        status = _SCIPY_STATUS.get(res.status, LPStatus.INFEASIBLE)
        if status is not LPStatus.OPTIMAL:
            return LPResult(status), False
        x = np.asarray(res.x, dtype=float)
        return LPResult(LPStatus.OPTIMAL, x=x, objective=float(res.fun)), False

    def _solve_highs_direct(self, direct: dict) -> LPResult:
        """One HiGHS solve through the captured core handles (see above)."""
        core = direct["core"]
        inf = direct["inf"]
        if self._highs_bounds is None:
            # Bounds are fixed at construction; replace infinities once.
            self._highs_bounds = (
                np.where(np.isinf(self.lower), -inf, self.lower),
                np.where(np.isinf(self.upper), inf, self.upper),
            )
        lb, ub = self._highs_bounds
        A = self.sparse_matrix().tocsc()
        m = self._m
        n = self.n_vars

        lp = core.HighsLp()
        lp.num_col_ = n
        lp.num_row_ = m
        lp.a_matrix_.num_col_ = n
        lp.a_matrix_.num_row_ = m
        lp.a_matrix_.format_ = core.MatrixFormat.kColwise
        lp.col_cost_ = self.c
        lp.col_lower_ = lb
        lp.col_upper_ = ub
        lp.row_lower_ = np.full(m, -inf)
        lp.row_upper_ = np.asarray(self._rhs, dtype=float)
        lp.a_matrix_.start_ = A.indptr
        lp.a_matrix_.index_ = A.indices
        lp.a_matrix_.value_ = A.data

        highs = core._Highs()
        if highs.passOptions(direct["options"]) == core.HighsStatus.kError:
            raise RuntimeError("HiGHS rejected the prebuilt options")
        if highs.passModel(lp) == core.HighsStatus.kError:
            raise RuntimeError("HiGHS rejected the model")
        highs.run()
        model_status = highs.getModelStatus()
        if model_status != core.HighsModelStatus.kOptimal:
            scipy_status, _msg = direct["to_scipy"](
                model_status, highs.modelStatusToString(model_status)
            )
            return LPResult(_SCIPY_STATUS.get(scipy_status, LPStatus.INFEASIBLE))
        solution = highs.getSolution()
        info = highs.getInfo()
        x = np.asarray(solution.col_value, dtype=float)
        return LPResult(
            LPStatus.OPTIMAL, x=x, objective=float(info.objective_function_value)
        )

    def _solve_simplex(self, max_iter: int) -> Tuple[LPResult, bool]:
        warm = self._warm
        if warm is None:
            warm = self._warm = WarmSimplex(
                self.n_vars, self.c, self.lower, self.upper, max_iter=max_iter
            )
            self._warm_rows_fed = 0
        for i in range(self._warm_rows_fed, self._m):
            warm.add_row(self.row(i), self._rhs[i])
        self._warm_rows_fed = self._m
        return warm.solve()
