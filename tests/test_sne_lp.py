"""Tests for the three SNE LP formulations (Theorem 1 / Lemma 2)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.bounds.instances import theorem11_cycle_instance, theorem11_optimal_fraction
from repro.games import BroadcastGame, NetworkDesignGame, check_equilibrium
from repro.graphs import Graph
from repro.graphs.generators import random_connected_gnp, random_tree_plus_chords
from repro.subsidies import (
    solve_sne,
    solve_sne_broadcast_lp3,
    solve_sne_cutting_plane_lp1,
    solve_sne_polynomial_lp2,
)


@pytest.fixture
def shortcut_triangle():
    """MST path 0-1-2 destabilized by shortcut (0,2) of weight 1.2.

    Minimum enforcement: reduce player 2's cost from 1.5 to 1.2; the
    cheapest way is 0.3 on the leaf edge (load 1).
    """
    g = Graph.from_edges([(0, 1, 1.0), (1, 2, 1.0), (0, 2, 1.2)])
    game = BroadcastGame(g, root=0)
    return game.tree_state([(0, 1), (1, 2)])


class TestLP3:
    def test_triangle_optimal_cost(self, shortcut_triangle):
        res = solve_sne_broadcast_lp3(shortcut_triangle)
        assert res.feasible and res.verified
        assert res.cost == pytest.approx(0.3, abs=1e-6)
        assert res.subsidies.get((1, 2)) == pytest.approx(0.3, abs=1e-6)

    def test_already_equilibrium_zero_cost(self):
        g = Graph.from_edges([(0, 1, 1.0), (1, 2, 1.0), (0, 2, 2.0)])
        game = BroadcastGame(g, root=0)
        res = solve_sne_broadcast_lp3(game.tree_state([(0, 1), (1, 2)]))
        assert res.cost == pytest.approx(0.0, abs=1e-9)

    def test_enforces_equilibrium(self, shortcut_triangle):
        res = solve_sne_broadcast_lp3(shortcut_triangle)
        assert check_equilibrium(shortcut_triangle, res.subsidies, tol=1e-6).is_equilibrium

    def test_simplex_backend_agrees(self, shortcut_triangle):
        r1 = solve_sne_broadcast_lp3(shortcut_triangle, method="highs")
        r2 = solve_sne_broadcast_lp3(shortcut_triangle, method="simplex")
        assert r1.cost == pytest.approx(r2.cost, abs=1e-6)

    def test_non_mst_target_enforceable(self):
        """SNE applies to any target tree, not just MSTs."""
        g = Graph.from_edges([(0, 1, 1.0), (1, 2, 1.0), (0, 2, 1.2)])
        game = BroadcastGame(g, root=0)
        star = game.tree_state([(0, 1), (0, 2)])
        res = solve_sne_broadcast_lp3(star)
        assert res.feasible and res.verified

    def test_theorem11_cycle_matches_closed_form(self):
        for n in (5, 9, 16, 31):
            game, state = theorem11_cycle_instance(n)
            res = solve_sne_broadcast_lp3(state)
            assert res.verified
            expected = theorem11_optimal_fraction(n) * n
            assert res.cost == pytest.approx(expected, abs=1e-6)

    def test_multiplicity_aware(self):
        # Ten co-located players at node 2 already stabilize the path.
        g = Graph.from_edges([(0, 1, 1.0), (1, 2, 1.0), (0, 2, 1.2)])
        game = BroadcastGame(g, root=0, multiplicity={2: 10})
        res = solve_sne_broadcast_lp3(game.tree_state([(0, 1), (1, 2)]))
        assert res.cost == pytest.approx(0.0, abs=1e-9)


class TestLP1CuttingPlanes:
    def test_triangle(self, shortcut_triangle):
        res = solve_sne_cutting_plane_lp1(shortcut_triangle)
        assert res.feasible and res.verified
        assert res.cost == pytest.approx(0.3, abs=1e-6)
        assert res.cuts >= 1

    def test_no_subsidies_on_non_target_edges(self, shortcut_triangle):
        res = solve_sne_cutting_plane_lp1(shortcut_triangle)
        assert res.subsidies.get((0, 2)) == pytest.approx(0.0, abs=1e-8)

    def test_general_two_player_game(self):
        # Both players s->t across a shared middle edge; a private bypass
        # tempts player 0.
        g = Graph.from_edges(
            [(0, 1, 1.0), (1, 2, 4.0), (2, 3, 1.0), (0, 2, 2.2)]
        )
        game = NetworkDesignGame(g, [(0, 3), (1, 3)])
        state = game.state([[0, 1, 2, 3], [1, 2, 3]])
        res = solve_sne_cutting_plane_lp1(state)
        assert res.feasible and res.verified
        assert check_equilibrium(state, res.subsidies, tol=1e-6).is_equilibrium

    def test_converges_in_few_rounds(self, shortcut_triangle):
        res = solve_sne_cutting_plane_lp1(shortcut_triangle)
        assert res.rounds <= 10


class TestLP2Polynomial:
    def test_triangle(self, shortcut_triangle):
        res = solve_sne_polynomial_lp2(shortcut_triangle)
        assert res.feasible and res.verified
        assert res.cost == pytest.approx(0.3, abs=1e-6)

    def test_general_game(self):
        g = Graph.from_edges([(0, 1, 1.0), (1, 2, 1.0), (0, 2, 1.2)])
        game = NetworkDesignGame(g, [(1, 0), (2, 0)])
        state = game.state([[1, 0], [2, 1, 0]])
        res = solve_sne_polynomial_lp2(state)
        assert res.feasible and res.verified


class TestFormulationAgreement:
    """Theorem 1's three formulations must agree on optimal cost."""

    @settings(max_examples=12, deadline=None)
    @given(st.integers(4, 9), st.integers(0, 10_000))
    def test_agreement_on_random_broadcast_msts(self, n, seed):
        g = random_tree_plus_chords(n, n // 2, seed=seed, chord_factor=1.2)
        game = BroadcastGame(g, root=0)
        state = game.mst_state()
        r3 = solve_sne_broadcast_lp3(state)
        r1 = solve_sne_cutting_plane_lp1(state)
        r2 = solve_sne_polynomial_lp2(state)
        assert r3.cost == pytest.approx(r1.cost, abs=1e-5)
        assert r3.cost == pytest.approx(r2.cost, abs=1e-5)
        assert r1.verified and r2.verified and r3.verified

    def test_front_door_dispatch(self, shortcut_triangle):
        auto = solve_sne(shortcut_triangle)
        assert auto.method == "lp3"
        lp2 = solve_sne(shortcut_triangle, formulation="lp2")
        assert lp2.cost == pytest.approx(auto.cost, abs=1e-6)
        with pytest.raises(ValueError):
            solve_sne(shortcut_triangle, formulation="magic")

    def test_lp3_rejects_general_state(self):
        g = Graph.from_edges([(0, 1, 1.0)])
        game = NetworkDesignGame(g, [(0, 1)])
        with pytest.raises(ValueError):
            solve_sne(game.state([[0, 1]]), formulation="lp3")


class TestSNEOnRandomGraphs:
    @settings(max_examples=10, deadline=None)
    @given(st.integers(5, 10), st.floats(0.3, 0.8), st.integers(0, 10_000))
    def test_lp3_always_enforces_mst(self, n, p, seed):
        g = random_connected_gnp(n, p, seed=seed)
        game = BroadcastGame(g, root=0)
        state = game.mst_state()
        res = solve_sne_broadcast_lp3(state)
        assert res.feasible
        assert res.verified
        # Theorem 6 caps the optimum at wgt(T)/e.
        assert res.cost <= state.social_cost() / 2.718281828 + 1e-6
