"""Subsidy assignments (Section 2 of the paper).

A subsidy assignment maps edges to amounts ``b_a`` with ``0 <= b_a <= w_a``.
It behaves as a read-only mapping (so the game layer, which accepts any
``Mapping[Edge, float]``, consumes it directly) and knows its own cost,
all-or-nothing status and MST-weight fraction.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Mapping, Tuple

import numpy as np

from repro.graphs.graph import Edge, Graph, Node, canonical_edge
from repro.utils.tolerances import EQ_TOL


class SubsidyAssignment(Mapping):
    """An immutable, validated ``edge -> subsidy`` mapping.

    Parameters
    ----------
    graph:
        The game graph; validates ``0 <= b_a <= w_a`` for each entry.
    values:
        Edge-to-amount mapping; near-zero round-off (within ``tol``) is
        clipped into the valid range rather than rejected, since most
        assignments come out of an LP solver.
    """

    def __init__(
        self,
        graph: Graph,
        values: Mapping[Tuple[Node, Node], float],
        tol: float = 1e-6,
    ) -> None:
        self.graph = graph
        data: Dict[Edge, float] = {}
        for (u, v), b in values.items():
            e = canonical_edge(u, v)
            if not graph.has_edge(*e):
                raise ValueError(f"subsidized edge {e!r} is not a graph edge")
            w = graph.weight(*e)
            bf = float(b)
            if bf < -tol * max(1.0, w) or bf > w + tol * max(1.0, w):
                raise ValueError(f"subsidy {bf} on edge {e!r} outside [0, {w}]")
            bf = min(max(bf, 0.0), w)
            if bf > 0.0:
                data[e] = bf
        self._data = data

    # -- Mapping protocol ---------------------------------------------------

    def __getitem__(self, edge: Tuple[Node, Node]) -> float:
        return self._data[canonical_edge(*edge)]

    def get(self, edge: Tuple[Node, Node], default: float = 0.0) -> float:
        return self._data.get(canonical_edge(*edge), default)

    def __iter__(self) -> Iterator[Edge]:
        return iter(self._data)

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, edge: object) -> bool:
        try:
            u, v = edge  # type: ignore[misc]
        except (TypeError, ValueError):
            return False
        return canonical_edge(u, v) in self._data

    # -- paper quantities -----------------------------------------------------

    @property
    def cost(self) -> float:
        """``b(E)``: the total amount of subsidies."""
        return float(sum(self._data.values()))

    def cost_on(self, edges: Iterable[Tuple[Node, Node]]) -> float:
        """``b(A)`` for an edge subset A."""
        return float(sum(self.get(e) for e in edges))

    def fraction_of(self, weight: float) -> float:
        """Subsidy cost as a fraction of a reference weight (e.g. wgt(MST))."""
        if weight <= 0:
            raise ValueError("reference weight must be positive")
        return self.cost / weight

    def is_all_or_nothing(self, tol: float = EQ_TOL) -> bool:
        """True when every subsidized edge is fully subsidized."""
        for e, b in self._data.items():
            w = self.graph.weight(*e)
            if abs(b - w) > tol * max(1.0, w) and abs(b) > tol * max(1.0, w):
                return False
        return True

    def subsidized_edges(self) -> Tuple[Edge, ...]:
        return tuple(self._data)

    # -- constructors -----------------------------------------------------------

    @classmethod
    def zero(cls, graph: Graph) -> "SubsidyAssignment":
        return cls(graph, {})

    @classmethod
    def full_on(cls, graph: Graph, edges: Iterable[Tuple[Node, Node]]) -> "SubsidyAssignment":
        """All-or-nothing assignment fully subsidizing the given edges."""
        return cls(graph, {canonical_edge(u, v): graph.weight(u, v) for u, v in edges})

    @classmethod
    def from_vector(
        cls,
        graph: Graph,
        edge_order: Iterable[Edge],
        x: np.ndarray,
        tol: float = 1e-6,
    ) -> "SubsidyAssignment":
        """Build from an LP solution vector aligned with ``edge_order``."""
        values = {e: float(b) for e, b in zip(edge_order, x)}
        return cls(graph, values, tol=tol)

    def combined_with(self, other: "SubsidyAssignment") -> "SubsidyAssignment":
        """Edge-wise sum (used to compose the per-level Theorem 6 subsidies)."""
        merged: Dict[Edge, float] = dict(self._data)
        for e, b in other._data.items():
            merged[e] = merged.get(e, 0.0) + b
        return SubsidyAssignment(self.graph, merged)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SubsidyAssignment(n_edges={len(self)}, cost={self.cost:.6g})"
