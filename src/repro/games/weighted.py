"""Weighted network design games (Chen & Roughgarden; the paper's §6).

Player ``i`` carries a demand ``d_i > 0`` and pays the *demand-proportional*
share of each edge she uses:  ``cost_i = sum_a d_i (w_a - b_a) / D_a(T)``
where ``D_a(T)`` is the total demand on ``a``.  Unweighted games are the
``d_i = 1`` special case.  The SNE question stays a linear program in the
subsidies (the demands only change the constants), so the cutting-plane
solver below mirrors LP (1) with weighted denominators.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.graphs.graph import Edge, Graph, Node, canonical_edge
from repro.graphs.shortest_paths import dijkstra
from repro.lp import LinearProgram, solve_with_cutting_planes
from repro.games.game import Subsidies, _path_nodes_to_edges
from repro.subsidies.assignment import SubsidyAssignment
from repro.utils.tolerances import EQ_TOL, LP_TOL, is_improvement


@dataclass(frozen=True)
class WeightedPlayer:
    index: int
    source: Node
    target: Node
    demand: float


class WeightedState:
    """A strategy profile of a weighted game; tracks demand loads."""

    def __init__(self, game: "WeightedNetworkDesignGame", node_paths: Sequence[Sequence[Node]]):
        if len(node_paths) != game.n_players:
            raise ValueError(f"expected {game.n_players} paths")
        self.game = game
        self.node_paths: List[Tuple[Node, ...]] = []
        self.edge_paths: List[Tuple[Edge, ...]] = []
        load: Dict[Edge, float] = {}
        for player, nodes in zip(game.players, node_paths):
            nodes = tuple(nodes)
            if nodes[0] != player.source or nodes[-1] != player.target:
                raise ValueError(f"path endpoints wrong for player {player.index}")
            edges = _path_nodes_to_edges(nodes)
            for e in edges:
                if not game.graph.has_edge(*e):
                    raise ValueError(f"non-edge {e!r}")
                load[e] = load.get(e, 0.0) + player.demand
            self.node_paths.append(nodes)
            self.edge_paths.append(edges)
        self.load = load

    def social_cost(self) -> float:
        return sum(self.game.graph.weight(*e) for e in self.load)

    def player_cost(self, i: int, subsidies: Optional[Subsidies] = None) -> float:
        g = self.game.graph
        d = self.game.players[i].demand
        total = 0.0
        for e in self.edge_paths[i]:
            b = subsidies.get(e, 0.0) if subsidies else 0.0
            total += d * max(0.0, g.weight(*e) - b) / self.load[e]
        return total

    def total_player_cost(self, subsidies: Optional[Subsidies] = None) -> float:
        return sum(self.player_cost(i, subsidies) for i in range(self.game.n_players))


class WeightedNetworkDesignGame:
    """Network design game with player demands and proportional sharing."""

    def __init__(
        self,
        graph: Graph,
        terminal_pairs: Sequence[Tuple[Node, Node]],
        demands: Sequence[float],
    ):
        if len(terminal_pairs) != len(demands):
            raise ValueError("one demand per player required")
        self.graph = graph
        self.players: List[WeightedPlayer] = []
        for i, ((s, t), d) in enumerate(zip(terminal_pairs, demands)):
            if s not in graph or t not in graph:
                raise ValueError(f"terminals {(s, t)!r} not in graph")
            if s == t:
                raise ValueError("identical terminals")
            if d <= 0:
                raise ValueError(f"demand must be positive, got {d}")
            self.players.append(WeightedPlayer(i, s, t, float(d)))

    @property
    def n_players(self) -> int:
        return len(self.players)

    def state(self, node_paths: Sequence[Sequence[Node]]) -> WeightedState:
        return WeightedState(self, node_paths)


def weighted_best_response(
    state: WeightedState, i: int, subsidies: Optional[Subsidies] = None
) -> Tuple[float, List[Node]]:
    """Best response of weighted player i: cost and node path.

    Edge ``a`` costs her ``d_i (w_a - b_a) / (D_a + d_i - d_i * uses_i(a))``.
    """
    game = state.game
    player = game.players[i]
    own = set(state.edge_paths[i])
    d = player.demand

    def weight_fn(u: Node, v: Node) -> float:
        e = canonical_edge(u, v)
        w = game.graph.weight(u, v)
        b = subsidies.get(e, 0.0) if subsidies else 0.0
        denom = state.load.get(e, 0.0) + d - (d if e in own else 0.0)
        return d * max(0.0, w - b) / denom

    dist, parent = dijkstra(game.graph, player.source, weight_fn=weight_fn, target=player.target)
    nodes = [player.target]
    while nodes[-1] != player.source:
        nodes.append(parent[nodes[-1]])
    nodes.reverse()
    return dist[player.target], nodes


def check_weighted_equilibrium(
    state: WeightedState, subsidies: Optional[Subsidies] = None, tol: float = EQ_TOL
) -> bool:
    """Pure Nash check for weighted games (weak inequality, shared tol)."""
    for i in range(state.game.n_players):
        current = state.player_cost(i, subsidies)
        if current <= tol:
            continue
        best, _ = weighted_best_response(state, i, subsidies)
        if is_improvement(best, current, tol):
            return False
    return True


def solve_weighted_sne(
    state: WeightedState, method: str = "highs", max_rounds: int = 200
) -> Tuple[Optional[SubsidyAssignment], float]:
    """Minimum subsidies enforcing a weighted state (LP (1) + oracle).

    Returns ``(subsidies, cost)``; ``(None, inf)`` if the cutting-plane
    loop fails to converge (not observed on the tested families).
    """
    game = state.game
    graph = game.graph
    all_edges = [canonical_edge(u, v) for u, v, _ in graph.edges()]
    index = {e: k for k, e in enumerate(all_edges)}
    n_vars = len(all_edges)
    upper = np.array([graph.weight(*e) for e in all_edges])
    lp = LinearProgram(n_vars=n_vars, c=np.ones(n_vars), upper=upper)

    def oracle(x: np.ndarray):
        subsidies = {e: float(x[index[e]]) for e in all_edges if x[index[e]] > 1e-12}
        cuts = []
        for i, player in enumerate(game.players):
            current = state.player_cost(i, subsidies)
            best, nodes = weighted_best_response(state, i, subsidies)
            if not is_improvement(best, current, LP_TOL):
                continue
            d = player.demand
            own = set(state.edge_paths[i])
            row = np.zeros(n_vars)
            rhs = 0.0
            for e in state.edge_paths[i]:
                share = d / state.load[e]
                row[index[e]] -= share
                rhs -= share * graph.weight(*e)
            dev_edges = [canonical_edge(a, b) for a, b in zip(nodes, nodes[1:])]
            for e in dev_edges:
                denom = state.load.get(e, 0.0) + d - (d if e in own else 0.0)
                share = d / denom
                row[index[e]] += share
                rhs += share * graph.weight(*e)
            cuts.append((row, rhs))
        return cuts

    out = solve_with_cutting_planes(lp, oracle, method=method, max_rounds=max_rounds)
    if not out.ok:
        return None, float("inf")
    subsidies = SubsidyAssignment.from_vector(graph, all_edges, out.result.x)
    return subsidies, subsidies.cost
