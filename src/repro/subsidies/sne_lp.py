"""STABLE NETWORK ENFORCEMENT via linear programming (Theorem 1, Lemma 2).

Three formulations, exactly as in the paper:

* **LP (1)** — one constraint per player-deviation path (exponentially
  many), solved by constraint generation with the paper's shortest-path
  separation oracle (:func:`solve_sne_cutting_plane_lp1`).
* **LP (2)** — the polynomial-size reformulation with shortest-path
  potential variables ``pi_i(v)`` (:func:`solve_sne_polynomial_lp2`).
* **LP (3)** — the broadcast-specific LP with one constraint per non-tree
  edge incidence (:func:`solve_sne_broadcast_lp3`), whose correctness is
  Lemma 2.

All solvers minimize total subsidies enforcing the given target state and
re-verify the result with the exact equilibrium checker.  ``method``
accepts any :mod:`repro.lp.backends` registry name or alias, and
``certify=True`` re-derives the float verdict with the Fraction-exact
backend, attaching a rationally-verified
:class:`~repro.lp.backends.ExactCertificate` to the result: LP (2)/LP (3)
certify the full LP; LP (1) certifies the final accumulated cutting-plane
relaxation, whose exact optimum brackets the true LP (1) optimum from
below while the converged float solution brackets it from above.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.graphs.graph import Edge, Graph, Node, canonical_edge
from repro.lp import (
    ExactCertificate,
    IncrementalLP,
    LinearProgram,
    LPStatus,
    certify_result,
    get_backend,
    solve_lp,
    solve_with_cutting_planes,
)
from repro.games.broadcast import TreeState
from repro.games.engine import BestResponseEngine, _StateBinding
from repro.games.equilibrium import check_equilibrium
from repro.games.game import State
from repro.subsidies.assignment import SubsidyAssignment
from repro.utils.tolerances import LP_TOL

AnyState = Union[State, TreeState]


@dataclass
class SNEResult:
    """Outcome of an SNE solve."""

    subsidies: SubsidyAssignment
    cost: float
    feasible: bool
    #: True when the subsidized target passed the exact equilibrium re-check.
    verified: bool
    method: str
    #: cutting-plane bookkeeping (LP (1) only)
    rounds: int = 1
    cuts: int = 0
    #: oracle/LP work counters for this solve (LP (1)/LP (2)): see
    #: :class:`repro.games.engine.OracleStats` — dijkstra_calls,
    #: players_batched, cut_rounds, warm_start_hits
    profile: Optional[Dict[str, int]] = None
    #: canonical name of the LP backend that produced the float answer
    backend: Optional[str] = None
    #: exact rational re-derivation of the verdict (``certify=True`` only)
    certificate: Optional[ExactCertificate] = None

    def fraction_of_target(self, target_weight: float) -> float:
        return self.subsidies.fraction_of(target_weight)


def _infeasible(
    graph: Graph,
    method: str,
    backend: Optional[str] = None,
    certificate: Optional[ExactCertificate] = None,
) -> SNEResult:
    return SNEResult(
        SubsidyAssignment.zero(graph),
        float("inf"),
        False,
        False,
        method,
        backend=backend,
        certificate=certificate,
    )


def _certify_lp(
    lp: Union[LinearProgram, IncrementalLP],
    formulation: str,
    float_objective: Optional[float],
) -> ExactCertificate:
    """Exact-solve (the dense twin of) ``lp`` and self-verify the proof."""
    dense = lp.to_linear_program() if isinstance(lp, IncrementalLP) else lp
    subject: Dict[str, object] = {"formulation": formulation}
    if float_objective is not None:
        subject["float_objective"] = float(float_objective)
    return certify_result(dense, subject=subject)


def _verify_with_binding(
    engine: BestResponseEngine,
    binding: _StateBinding,
    subsidies: SubsidyAssignment,
    fast: bool,
) -> bool:
    """Exact equilibrium re-check through the solver's own binding.

    Equivalent to :func:`check_equilibrium` (same scan, same tolerance);
    routed through the binding so the cold reference path (``fast=False``)
    can verify via :meth:`~repro.games.engine._StateBinding.scan_legacy`
    and stay entirely on pre-batching code.
    """
    wb = engine.net_weights(engine.subsidy_vector(subsidies))
    scan = binding.scan if fast else binding.scan_legacy
    return not scan(wb, tol=LP_TOL)


# ---------------------------------------------------------------------------
# LP (3): broadcast games, one constraint per non-tree incidence (Lemma 2)
# ---------------------------------------------------------------------------


def build_broadcast_lp3(state: TreeState) -> Tuple[LinearProgram, List[Edge]]:
    """Materialize LP (3) for a broadcast tree state.

    Variables: one subsidy per tree edge (in the returned edge order).  For
    every node ``u`` and graph neighbor ``v`` with ``(u, v)`` not in ``T``
    the constraint compares the cost of ``T_u`` against deviating along
    ``(u, v)`` and then ``T_v``; the common suffix above ``lca(u, v)``
    cancels (as in the Lemma 2 proof), so rows only involve the disjoint
    subpaths.  Exposed separately because the all-or-nothing branch-and-bound
    reuses the same rows with tightened variable bounds.
    """
    game = state.game
    graph = game.graph
    tree = state.tree
    edges: List[Edge] = state.edges
    index = {e: i for i, e in enumerate(edges)}
    n_vars = len(edges)

    c = np.ones(n_vars)
    upper = np.array([graph.weight(*e) for e in edges])
    lp = LinearProgram(n_vars=n_vars, c=c, upper=upper)

    tree_edge_set = set(edges)
    for u in graph.nodes:
        if u == game.root:
            continue
        if game.multiplicity.get(u, 1) == 0:
            continue
        for v in graph.neighbors(u):
            e_uv = canonical_edge(u, v)
            if e_uv in tree_edge_set:
                continue
            # Disjoint subpaths u->lca and v->lca; shared suffix cancels.
            w = tree.lca(u, v)
            coeffs: Dict[int, float] = {}
            rhs = graph.weight(u, v)
            x = u
            while x != w:
                e = tree.edge_to_parent(x)
                n_a = state.loads[e]
                coeffs[index[e]] = coeffs.get(index[e], 0.0) - 1.0 / n_a
                rhs -= graph.weight(*e) / n_a
                x = tree.parent[x]
            x = v
            while x != w:
                e = tree.edge_to_parent(x)
                n_a = state.loads[e] + 1  # deviator joins these edges
                coeffs[index[e]] = coeffs.get(index[e], 0.0) + 1.0 / n_a
                rhs += graph.weight(*e) / n_a
                x = tree.parent[x]
            if coeffs:
                lp.add_sparse_constraint(list(coeffs.items()), rhs)

    return lp, edges


def solve_sne_broadcast_lp3(
    state: TreeState,
    method: str = "highs",
    verify: bool = True,
    certify: bool = False,
) -> SNEResult:
    """Minimum subsidies enforcing a broadcast tree state, via LP (3)."""
    graph = state.game.graph
    backend = get_backend(method).name
    lp, edges = build_broadcast_lp3(state)
    res = solve_lp(lp, method=method)
    if res.status is not LPStatus.OPTIMAL:
        cert = _certify_lp(lp, "lp3", None) if certify else None
        return _infeasible(graph, "lp3", backend=backend, certificate=cert)
    cert = _certify_lp(lp, "lp3", res.objective) if certify else None
    subsidies = SubsidyAssignment.from_vector(graph, edges, res.x)
    verified = (
        check_equilibrium(state, subsidies, tol=LP_TOL).is_equilibrium if verify else True
    )
    return SNEResult(
        subsidies,
        subsidies.cost,
        True,
        verified,
        "lp3",
        backend=backend,
        certificate=cert,
    )


# ---------------------------------------------------------------------------
# LP (1): exponential LP + separation oracle, via cutting planes
# ---------------------------------------------------------------------------


def solve_sne_cutting_plane_lp1(
    state: AnyState,
    method: str = "highs",
    max_rounds: int = 200,
    verify: bool = True,
    fast: bool = True,
    certify: bool = False,
) -> SNEResult:
    """Minimum subsidies via the exponential LP (1) + separation oracle.

    Works for *every* game family — broadcast trees, general states, and
    the rule-priced families (weighted demands, per-edge splits, directed
    arcs): the state's engine binding both prices the separation oracle
    and supplies the cut-row share coefficients
    (:meth:`~repro.games.engine._StateBinding.current_share_coeff` /
    ``joining_share_coeff``), so the LP never needs to know which sharing
    rule is in force.  Variables cover *all* graph edges (as in the
    paper's presentation); optimal solutions put nothing on non-target
    edges, which the tests assert.

    Each violated deviation contributes the LP (1) row::

        sum_{a in T_i} c_a (w_a - b_a)  -  sum_{a in T'} c'_a (w_a - b_a) <= 0

    with ``c_a = 1/n_a`` and ``c'_a = 1/(n_a + 1 - n_a^i)`` under fair
    sharing (``alpha_i(a)/L_a`` and ``alpha_i(a)/(L_a + alpha_i(a) -
    alpha_i(a) n_a^i)`` in general); edges on both paths carry equal
    coefficients and cancel exactly.

    ``fast`` (the default) runs the optimized subsystem: cut rows append
    into a sparse :class:`~repro.lp.incremental.IncrementalLP` and every
    re-solve warm-starts from the previous round, while the separation
    oracle batches its per-player searches (Lemma 2 certificates for
    broadcast, shared-target group searches otherwise).  ``fast=False``
    keeps the cold-rebuild reference path — dense LP rebuilt per round,
    one isolated search per player — which admits exactly the same cuts
    and returns identical results; ``benchmarks/bench_lp_warmstart.py``
    gates the speedup and the equality.
    """
    graph = state.game.graph
    engine = BestResponseEngine.for_graph(graph)
    binding = engine.bind(state)
    stats = engine.stats
    before = stats.snapshot()
    ig = engine.ig
    n_vars = engine.num_edges
    all_edges: List[Edge] = list(ig.edge_labels)
    weights = ig.edge_weights
    cur_path = binding.current_path_eids  # resolved lazily per violated player
    scan = binding.scan if fast else binding.scan_legacy

    lp: Union[IncrementalLP, LinearProgram]
    if fast:
        lp = IncrementalLP(n_vars, c=np.ones(n_vars), upper=weights.copy())
    else:
        lp = LinearProgram(n_vars=n_vars, c=np.ones(n_vars), upper=weights.copy())

    def oracle(x: np.ndarray):
        b = np.where(x > 1e-12, x, 0.0)
        wb = np.maximum(0.0, weights - b)
        cuts = []
        for rec in scan(wb, tol=LP_TOL, find_all=True):
            row = np.zeros(n_vars)
            rhs = 0.0
            for e in cur_path(rec.position):
                c = binding.current_share_coeff(rec.position, e)
                row[e] -= c
                rhs -= weights[e] * c
            for e in rec.edge_ids:
                c = binding.joining_share_coeff(rec.position, e)
                row[e] += c
                rhs += weights[e] * c
            cuts.append((row, float(rhs)))
        return cuts

    backend = get_backend(method).name
    out = solve_with_cutting_planes(lp, oracle, method=method, max_rounds=max_rounds)
    stats.cut_rounds += out.rounds
    if isinstance(lp, IncrementalLP):
        stats.warm_start_hits += lp.stats.warm_start_hits
    if not out.ok:
        return _infeasible(graph, "lp1", backend=backend)
    # LP (1) certification targets the *final accumulated relaxation* —
    # exactly the LP whose optimum the float answer is.  Its exact optimum
    # is a certified lower bound on the full (exponential) LP (1) optimum,
    # and the converged float solution is primal-feasible for it, so the
    # pair brackets the true optimum.
    cert = (
        _certify_lp(lp, "lp1-relaxation", out.result.objective) if certify else None
    )
    subsidies = SubsidyAssignment.from_vector(graph, all_edges, out.result.x)
    verified = (
        _verify_with_binding(engine, binding, subsidies, fast) if verify else True
    )
    return SNEResult(
        subsidies,
        subsidies.cost,
        True,
        verified,
        "lp1",
        rounds=out.rounds,
        cuts=out.cuts_added,
        profile=stats.delta(before),
        backend=backend,
        certificate=cert,
    )


# ---------------------------------------------------------------------------
# LP (2): polynomial-size reformulation with potential variables
# ---------------------------------------------------------------------------


def solve_sne_polynomial_lp2(
    state: AnyState,
    method: str = "highs",
    verify: bool = True,
    fast: bool = True,
    certify: bool = False,
) -> SNEResult:
    """Minimum subsidies via the polynomial LP (2).

    Variables: ``b_a`` for every edge plus ``pi_i(v)`` for every player and
    node.  ``pi_i`` is a certified lower bound on the deviator-priced
    shortest-path distance from ``s_i``; requiring ``pi_i(t_i) >=
    cost_i(T; b)`` is then exactly the equilibrium condition.

    Family-aware like LP (1): rule-priced states (weighted demands,
    per-edge splits) contribute ``alpha_i(a)``-scaled coefficients, and
    directed games only get edge relaxations along their allowed arcs.

    LP (2) rows are 3-sparse in ``n_players * n_nodes + n_edges``
    variables, so the dense materialization is quadratically wasteful;
    with ``fast`` (the default) the same rows stream into a sparse
    :class:`~repro.lp.incremental.IncrementalLP` instead.  ``fast=False``
    keeps the dense reference build (identical rows, identical solution).
    """
    game = state.game
    graph = game.graph
    allows = getattr(game, "allows", None)
    if isinstance(state, TreeState):
        players = [
            (u, game.root, state.tree.path_to_root(u))
            for u in game.player_nodes()
        ]
        usage: Dict[Edge, float] = dict(state.loads)

        def alpha(i: int, e: Edge) -> float:
            return 1.0

    else:
        players = [
            (p.source, p.target, list(state.edge_paths[p.index]))
            for p in game.players
        ]
        load = getattr(state, "load", None)
        usage = dict(load) if load is not None else dict(state.usage)
        alpha = game.cost_sharing.weight_on

    all_edges = [canonical_edge(u, v) for u, v, _ in graph.edges()]
    e_index = {e: i for i, e in enumerate(all_edges)}
    m = len(all_edges)
    nodes = graph.nodes
    v_index = {v: i for i, v in enumerate(nodes)}
    n_nodes = len(nodes)
    n_players = len(players)
    n_vars = m + n_players * n_nodes

    def pi_var(i: int, v: Node) -> int:
        return m + i * n_nodes + v_index[v]

    c = np.zeros(n_vars)
    c[:m] = 1.0
    lower = np.zeros(n_vars)
    upper = np.full(n_vars, np.inf)
    upper[:m] = [graph.weight(*e) for e in all_edges]
    for i, (s_i, _t_i, _path) in enumerate(players):
        upper[pi_var(i, s_i)] = 0.0  # pi_i(s_i) = 0 via bounds

    engine = BestResponseEngine.for_graph(graph)
    stats = engine.stats
    before = stats.snapshot()

    lp: Union[IncrementalLP, LinearProgram]
    if fast:
        lp = IncrementalLP(n_vars, c=c, lower=lower, upper=upper)
    else:
        lp = LinearProgram(n_vars=n_vars, c=c, lower=lower, upper=upper)

    for i, (s_i, t_i, path) in enumerate(players):
        own = set(path)
        # Edge relaxations: pi(v) <= pi(u) + alpha (w - b)/d per allowed arc.
        for u, v, w in graph.edges():
            e = canonical_edge(u, v)
            a_i = alpha(i, e)
            d = usage.get(e, 0) + a_i - (a_i if e in own else 0)
            for tail, head in ((u, v), (v, u)):
                if allows is not None and not allows(tail, head):
                    continue
                # pi(head) - pi(tail) + alpha b_e/d <= alpha w/d
                lp.add_sparse_constraint(
                    [
                        (pi_var(i, head), 1.0),
                        (pi_var(i, tail), -1.0),
                        (e_index[e], a_i / d),
                    ],
                    a_i * w / d,
                )
        # pi_i(t_i) >= cost_i(T; b):
        #   -pi(t_i) - sum alpha b_a/L_a <= -sum alpha w_a/L_a
        entries = [(pi_var(i, t_i), -1.0)]
        rhs = 0.0
        for e in path:
            a_i = alpha(i, e)
            n_a = usage[e]
            entries.append((e_index[e], -a_i / n_a))
            rhs -= a_i * graph.weight(*e) / n_a
        lp.add_sparse_constraint(entries, rhs)

    backend = get_backend(method).name
    if isinstance(lp, IncrementalLP):
        res = lp.solve(method=method)
        stats.warm_start_hits += lp.stats.warm_start_hits
    else:
        res = solve_lp(lp, method=method)
    if res.status is not LPStatus.OPTIMAL:
        cert = _certify_lp(lp, "lp2", None) if certify else None
        return _infeasible(graph, "lp2", backend=backend, certificate=cert)
    cert = _certify_lp(lp, "lp2", res.objective) if certify else None
    subsidies = SubsidyAssignment.from_vector(graph, all_edges, res.x[:m])
    # The engine binding is only needed (and only built) for verification.
    verified = (
        _verify_with_binding(engine, engine.bind(state), subsidies, fast)
        if verify
        else True
    )
    return SNEResult(
        subsidies,
        subsidies.cost,
        True,
        verified,
        "lp2",
        profile=stats.delta(before),
        backend=backend,
        certificate=cert,
    )


# ---------------------------------------------------------------------------
# Front door
# ---------------------------------------------------------------------------


def solve_sne(
    state: AnyState,
    formulation: str = "auto",
    method: str = "highs",
    verify: bool = True,
    fast: bool = True,
) -> SNEResult:
    """Solve the optimization version of SNE for a target state.

    .. deprecated:: 1.1
        Prefer the unified facade: ``repro.api.solve(state, solver="sne-lp3")``
        (or ``"sne-poly"`` / ``"sne-cutting-plane"``), which returns a
        canonical :class:`repro.api.SolveReport`.  This function remains as a
        thin compatibility shim.

    ``formulation``: ``"lp3"`` (broadcast only), ``"lp2"``, ``"lp1"`` or
    ``"auto"`` (LP (3) for broadcast states, LP (1) otherwise).
    """
    if formulation == "auto":
        formulation = "lp3" if isinstance(state, TreeState) else "lp1"
    if formulation == "lp3":
        if not isinstance(state, TreeState):
            raise ValueError("LP (3) applies to broadcast tree states only")
        return solve_sne_broadcast_lp3(state, method=method, verify=verify)
    if formulation == "lp2":
        return solve_sne_polynomial_lp2(state, method=method, verify=verify, fast=fast)
    if formulation == "lp1":
        return solve_sne_cutting_plane_lp1(state, method=method, verify=verify, fast=fast)
    raise ValueError(f"unknown formulation {formulation!r}")
