"""STABLE NETWORK DESIGN (Section 3).

Given a broadcast game and a subsidy budget ``B``, find a spanning tree of
minimum weight that some subsidy assignment of cost <= B enforces as an
equilibrium.  Theorem 3 proves this NP-hard even for ``B = 0``, so we ship:

* :func:`solve_snd_exact` — enumerate spanning trees (small instances),
  scoring each with the LP (3) minimum enforcement cost;
* :func:`snd_heuristic` — MST-first with a budget check, best-response
  fallback, and an edge-swap local search that trades tree weight against
  enforcement cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Set, Tuple

from repro.graphs.graph import Edge, canonical_edge
from repro.graphs.mst import kruskal_mst
from repro.graphs.spanning_trees import enumerate_spanning_trees
from repro.games.broadcast import BroadcastGame
from repro.games.dynamics import equilibrium_from_optimum
from repro.subsidies.aon import solve_aon_sne_exact
from repro.subsidies.assignment import SubsidyAssignment
from repro.subsidies.sne_lp import solve_sne_broadcast_lp3
from repro.utils.tolerances import LP_TOL


@dataclass
class SNDResult:
    """A feasible stable design: tree, weight and the enforcing subsidies."""

    tree_edges: List[Edge]
    weight: float
    subsidies: SubsidyAssignment
    subsidy_cost: float
    optimal: bool
    method: str

    @property
    def within_budget(self) -> bool:  # convenience for experiments
        return True


def _enforcement_cost(
    game: BroadcastGame, edges: List[Edge], all_or_nothing: bool, method: str
) -> Tuple[Optional[SubsidyAssignment], float]:
    """Minimum enforcement cost of one candidate tree.

    Candidate scoring skips the LP solver's redundant equilibrium re-check
    (``verify=False``): the exact tree enumeration and the local search call
    this once per candidate, and the consumers of the winning design
    (``repro.api`` adapters, experiments) re-verify the returned subsidies
    through the engine-backed :func:`~repro.games.equilibrium.check_equilibrium`.
    """
    state = game.tree_state(edges)
    if all_or_nothing:
        res_aon = solve_aon_sne_exact(state, method=method)
        return res_aon.subsidies, res_aon.cost
    res = solve_sne_broadcast_lp3(state, method=method, verify=False)
    if not res.feasible:  # pragma: no cover - SNE is always feasible
        return None, float("inf")
    return res.subsidies, res.cost


def solve_snd_exact(
    game: BroadcastGame,
    budget: float,
    all_or_nothing: bool = False,
    method: str = "highs",
    tree_limit: Optional[int] = None,
) -> Optional[SNDResult]:
    """Exact SND by spanning-tree enumeration (exponential; small instances).

    Returns the minimum-weight tree whose minimum enforcement cost fits the
    budget, or ``None`` when ``tree_limit`` cut the enumeration short of any
    feasible tree (with a full enumeration a feasible tree always exists,
    since full subsidies cost at most ``wgt(T)``... provided the budget
    allows; otherwise ``None`` genuinely means "no design fits").
    """
    best: Optional[SNDResult] = None
    for edges in enumerate_spanning_trees(game.graph, limit=tree_limit):
        state = game.tree_state(edges)
        w = state.social_cost()
        if best is not None and w >= best.weight - 1e-12:
            continue
        sub, cost = _enforcement_cost(game, edges, all_or_nothing, method)
        if sub is not None and cost <= budget + LP_TOL * max(1.0, budget):
            best = SNDResult(list(edges), w, sub, cost, optimal=True, method="exact")
    return best


def _tree_candidates_from_equilibrium(game: BroadcastGame) -> Optional[List[Edge]]:
    """A spanning tree extracted from a best-response equilibrium.

    BRD from the MST yields an equilibrium state; its established edges may
    contain (zero-weight) cycles, so we take an MST of the established
    subgraph, completing with original edges if players left some node
    isolated (cannot happen in broadcast games, but guarded anyway).
    """
    if any(k > 1 for k in game.multiplicity.values()):
        return None
    result = equilibrium_from_optimum(game)
    if not result.converged:
        return None
    used = set(result.final_state.usage)
    sub = game.graph.edge_subgraph(used)
    if not sub.is_connected():
        return None
    return kruskal_mst(sub)


def snd_local_search(
    game: BroadcastGame,
    budget: float,
    start_edges: List[Edge],
    all_or_nothing: bool = False,
    method: str = "highs",
    max_iters: int = 50,
) -> Optional[SNDResult]:
    """Edge-swap local search: lower tree weight while staying enforceable.

    Starting from a budget-feasible tree, repeatedly look for a non-tree
    edge ``e`` and a tree edge ``f`` on the induced cycle with
    ``w_e < w_f`` such that the swapped tree is still enforceable within
    budget; accept the best-improving swap each round.
    """
    sub, cost = _enforcement_cost(game, start_edges, all_or_nothing, method)
    if sub is None or cost > budget + LP_TOL * max(1.0, budget):
        return None
    graph = game.graph
    current = list(start_edges)
    current_w = graph.subset_weight(current)
    current_sub, current_cost = sub, cost

    for _ in range(max_iters):
        state = game.tree_state(current)
        tree_set: Set[Edge] = set(current)
        best_swap: Optional[Tuple[float, List[Edge], SubsidyAssignment, float]] = None
        for u, v, w_e in graph.edges():
            e = canonical_edge(u, v)
            if e in tree_set:
                continue
            for f in state.tree.path_between(u, v):
                w_f = graph.weight(*f)
                if w_e >= w_f - 1e-12:
                    continue
                swapped = [x for x in current if x != f] + [e]
                sub2, cost2 = _enforcement_cost(game, swapped, all_or_nothing, method)
                if sub2 is None or cost2 > budget + LP_TOL * max(1.0, budget):
                    continue
                new_w = current_w - w_f + w_e
                if best_swap is None or new_w < best_swap[0]:
                    best_swap = (new_w, swapped, sub2, cost2)
        if best_swap is None:
            break
        current_w, current, current_sub, current_cost = best_swap

    return SNDResult(
        current, current_w, current_sub, current_cost, optimal=False, method="local_search"
    )


def snd_heuristic(
    game: BroadcastGame,
    budget: float,
    all_or_nothing: bool = False,
    method: str = "highs",
) -> SNDResult:
    """Budgeted SND heuristic.

    1. If the MST itself is enforceable within budget, return it (this is
       globally optimal: no tree is lighter).  By Theorem 6 this branch
       always fires when ``budget >= wgt(MST)/e`` for fractional subsidies.
    2. Otherwise run BRD from the MST: the resulting equilibrium needs no
       subsidies, giving a feasible fallback tree.
    3. Improve the fallback with the edge-swap local search under budget.
    """
    mst_edges = kruskal_mst(game.graph)
    sub, cost = _enforcement_cost(game, mst_edges, all_or_nothing, method)
    if sub is not None and cost <= budget + LP_TOL * max(1.0, budget):
        w = game.graph.subset_weight(mst_edges)
        return SNDResult(mst_edges, w, sub, cost, optimal=True, method="mst_first")

    fallback = _tree_candidates_from_equilibrium(game)
    if fallback is None:
        # Last resort: the MST with full subsidies (only valid when the
        # budget allows; report it regardless, flagged by its cost).
        full = SubsidyAssignment.full_on(
            game.graph, [e for e in mst_edges if game.graph.weight(*e) > 0]
        )
        return SNDResult(
            mst_edges,
            game.graph.subset_weight(mst_edges),
            full,
            full.cost,
            optimal=False,
            method="full_subsidy_fallback",
        )

    improved = snd_local_search(
        game, budget, fallback, all_or_nothing=all_or_nothing, method=method
    )
    if improved is not None:
        return improved
    state = game.tree_state(fallback)
    sub_fb, cost_fb = _enforcement_cost(game, fallback, all_or_nothing, method)
    assert sub_fb is not None
    return SNDResult(
        fallback, state.social_cost(), sub_fb, cost_fb, optimal=False, method="brd_fallback"
    )
