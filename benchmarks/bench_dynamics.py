"""E9 benchmark — best-response dynamics and the PoS <= H_n descent."""

import pytest

from repro.bounds.harmonic import harmonic
from repro.games.broadcast import BroadcastGame
from repro.games.dynamics import best_response_dynamics, equilibrium_from_optimum
from repro.graphs.generators import random_connected_gnp


@pytest.mark.parametrize("n", [10, 18])
def test_descent_from_optimum(benchmark, n):
    g = random_connected_gnp(n, 0.35, seed=n)
    game = BroadcastGame(g, root=0)
    res = benchmark(equilibrium_from_optimum, game)
    assert res.converged
    assert res.final_social_cost <= harmonic(game.n_players) * game.mst_weight() + 1e-9


def test_brd_from_shortest_paths(benchmark):
    g = random_connected_gnp(14, 0.4, seed=3)
    game = BroadcastGame(g, root=0)
    nd = game.to_network_design_game()
    start = nd.shortest_path_state()
    res = benchmark(best_response_dynamics, start)
    assert res.converged
