"""The ``warm-tableau`` backend: the repo's own two-phase simplex.

Cold solves go through :func:`repro.lp.simplex.simplex_solve` (the dense
reference implementation the cutting-plane driver was developed against);
incremental sessions wrap :class:`repro.lp.simplex.WarmSimplex`, which
keeps the final tableau alive across cut appends and resumes from the
previous optimal basis with dual-simplex pivots.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.lp.problem import LinearProgram, LPResult
from repro.lp.simplex import WarmSimplex, simplex_solve


def solve_dense(problem: LinearProgram, max_iter: int = 20_000) -> LPResult:
    """One cold two-phase tableau solve of a dense :class:`LinearProgram`."""
    return simplex_solve(problem, max_iter=max_iter)


class TableauSession:
    """Warm tableau state for one :class:`~repro.lp.incremental.IncrementalLP`."""

    def __init__(self, spec, inc) -> None:
        self._inc = inc
        self._warm: Optional[WarmSimplex] = None
        self._rows_fed = 0

    def solve(self, cached, max_iter: int = 20_000) -> Tuple[LPResult, bool]:
        inc = self._inc
        warm = self._warm
        if warm is None:
            # max_iter is captured at first solve, matching the historical
            # IncrementalLP._solve_simplex behavior.
            warm = self._warm = WarmSimplex(
                inc.n_vars, inc.c, inc.lower, inc.upper, max_iter=max_iter
            )
            self._rows_fed = 0
        for i in range(self._rows_fed, inc._m):
            warm.add_row(inc.row(i), inc._rhs[i])
        self._rows_fed = inc._m
        return warm.solve()
