"""Experiment registry and drivers (ids match DESIGN.md / EXPERIMENTS.md).

``run_all_tolerant`` is the engine behind ``repro-experiments run all``:
it drives every experiment to a terminal :class:`SweepItem` — ``ok``,
``cached`` (served from the :mod:`repro.runtime` result cache), ``skipped``
(excluded up front) or ``failed`` — optionally fanning out across worker
processes.  Cache keys digest each experiment module's *source*, so editing
an experiment transparently invalidates its cached results.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional

from repro.experiments.records import ExperimentResult
from repro.experiments import (
    exp_ablation,
    exp_aon_lower_bound,
    exp_binpacking,
    exp_bypass,
    exp_extensions,
    exp_independent_set,
    exp_lower_bound_cycle,
    exp_lp_agreement,
    exp_pos_potential,
    exp_sat_reduction,
    exp_scenarios,
    exp_snd,
    exp_theorem6,
    exp_virtual_cost,
)

#: experiment id -> run(seed=...) callable
EXPERIMENTS: Dict[str, Callable[..., ExperimentResult]] = {
    "E1": exp_lp_agreement.run,
    "E2": exp_theorem6.run,
    "E3": exp_lower_bound_cycle.run,
    "E4": exp_aon_lower_bound.run,
    "E5": exp_bypass.run,
    "E6": exp_binpacking.run,
    "E7": exp_independent_set.run,
    "E8": exp_sat_reduction.run,
    "E9": exp_pos_potential.run,
    "E10": exp_virtual_cost.run,
    "E11": exp_snd.run,
    "A1": exp_ablation.run,
    "A2": exp_extensions.run,
    "S1": exp_scenarios.run,
}


def run_experiment(experiment_id: str, seed: int = 0) -> ExperimentResult:
    """Run one experiment by id (raises KeyError for unknown ids)."""
    key = experiment_id.upper()
    if key not in EXPERIMENTS:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; known: {', '.join(EXPERIMENTS)}"
        )
    return EXPERIMENTS[key](seed=seed)


def run_all(seed: int = 0) -> List[ExperimentResult]:
    """Run every experiment in id order (aborts on the first failure)."""
    return [EXPERIMENTS[k](seed=seed) for k in EXPERIMENTS]


class RemoteFailure(RuntimeError):
    """An experiment failure transported back from a worker.

    ``str()`` is already the original ``"ExceptionType: message"`` line
    produced inside the worker, so renderers must show it verbatim
    instead of prefixing another class name (see :func:`error_text`).
    """


def error_text(error: BaseException) -> str:
    """One-line rendering of a sweep error, without double type prefixes."""
    if isinstance(error, RemoteFailure):
        return str(error)
    return f"{type(error).__name__}: {error}"


@dataclass
class SweepItem:
    """Outcome of one experiment inside a failure-tolerant sweep."""

    experiment_id: str
    result: Optional[ExperimentResult]
    error: Optional[BaseException]
    elapsed_seconds: float
    #: served from the result cache instead of re-running
    cached: bool = False
    #: excluded before running (``run all --skip``); not a failure
    skipped: bool = False

    @property
    def ok(self) -> bool:
        return self.error is None and not self.skipped

    @property
    def status(self) -> str:
        """``"ok"``, ``"cached"``, ``"skipped"`` or ``"failed"``."""
        if self.skipped:
            return "skipped"
        if self.error is not None:
            return "failed"
        return "cached" if self.cached else "ok"


def sweep_summary(items: List[SweepItem], seed: int = 0) -> dict:
    """Machine-readable summary of a tolerant sweep.

    The CLI writes this next to the human table (``run all --json-out``) so
    dashboards and CI can consume per-experiment status and wall time without
    scraping text.
    """
    return {
        "kind": "experiment-sweep-summary",
        "seed": seed,
        "passed": sum(1 for item in items if item.ok),
        "failed": sum(1 for item in items if item.status == "failed"),
        "skipped": sum(1 for item in items if item.skipped),
        "cache_hits": sum(1 for item in items if item.cached),
        "total_seconds": sum(item.elapsed_seconds for item in items),
        "experiments": [
            {
                "id": item.experiment_id,
                "ok": item.ok,
                "status": item.status,
                "seconds": item.elapsed_seconds,
                "headline": item.result.headline if item.ok and item.result else None,
                "families": _row_families(item),
                "error": error_text(item.error) if item.error is not None else None,
            }
            for item in items
        ],
    }


def _row_families(item: SweepItem) -> Optional[List[str]]:
    """Game-family names named by an experiment's per-instance rows.

    The scenario tour (S1) tags each row with the instance's game family;
    surfacing them here lets ``run all --json-out`` consumers see which
    families a sweep covered without parsing row tables.
    """
    if item.result is None:
        return None
    families = sorted(
        {str(row["family"]) for row in item.result.rows if "family" in row}
    )
    return families or None


def run_all_tolerant(
    seed: int = 0,
    jobs: int = 1,
    cache: object = False,
    timeout: Optional[float] = None,
    skip: Iterable[str] = (),
) -> List[SweepItem]:
    """Run every experiment, continuing past failures.

    Each item records the per-experiment wall-clock time and, when the
    experiment raised, the exception instead of a result.  The CLI uses
    this for ``run all`` so one broken experiment cannot hide the rest.

    Parameters
    ----------
    jobs:
        ``> 1`` fans experiments out across a :mod:`repro.runtime` process
        pool; ``1`` (default) runs them inline.
    cache:
        ``False`` disables the result cache (default, matching the legacy
        behaviour), ``None`` uses the default cache directory, or pass a
        :class:`repro.runtime.ResultCache`.  Cached items come back with
        ``status == "cached"`` and ``elapsed_seconds == 0`` (this run did
        no work; the original solve time remains inside the result).
    timeout:
        Per-experiment wall-clock budget in seconds.
    skip:
        Experiment ids excluded up front (``status == "skipped"``); skips
        are reported distinctly from failures and do not fail the sweep.
    """
    from repro.runtime.cache import coerce_cache, experiment_job_key
    from repro.runtime.runner import execute_payloads
    from repro.runtime.workers import experiment_source_digest, run_experiment_job

    skip_keys = {s.upper() for s in skip}
    unknown = sorted(skip_keys - set(EXPERIMENTS))
    if unknown:
        raise KeyError(
            f"cannot skip unknown experiment(s) {', '.join(unknown)}; "
            f"known: {', '.join(EXPERIMENTS)}"
        )
    store = coerce_cache(cache)  # type: ignore[arg-type]

    items: Dict[str, SweepItem] = {}
    pending: List[str] = []
    keys: Dict[str, str] = {}
    for key in EXPERIMENTS:
        if key in skip_keys:
            items[key] = SweepItem(key, None, None, 0.0, skipped=True)
            continue
        cache_key = keys[key] = experiment_job_key(
            key, seed, experiment_source_digest(key)
        )
        entry = store.get(cache_key)
        if entry is not None and entry.get("status") == "ok":
            # elapsed_seconds is what *this run* spent (~nothing for a
            # hit); the original solve time stays inside the result's own
            # elapsed_seconds field for display.
            items[key] = SweepItem(
                key,
                ExperimentResult.from_json(entry["result"]),
                None,
                0.0,
                cached=True,
            )
        else:
            pending.append(key)

    payloads = [
        {"experiment": key, "seed": seed, "timeout": timeout} for key in pending
    ]
    for i, raw in execute_payloads(payloads, run_experiment_job, jobs=jobs):
        key = pending[i]
        if raw["status"] == "ok":
            result = ExperimentResult.from_json(raw["result"])
            items[key] = SweepItem(key, result, None, raw["elapsed_seconds"])
            try:
                store.put(
                    keys[key],
                    {
                        "kind": "experiment-entry",
                        "key": keys[key],
                        "status": "ok",
                        "result": raw["result"],
                        "elapsed_seconds": raw["elapsed_seconds"],
                    },
                )
            except OSError:
                pass  # unwritable cache degrades to uncached, not a crash
        else:
            # The worker already rendered "ExceptionType: message";
            # RemoteFailure carries it without re-prefixing a class name.
            error: BaseException = RemoteFailure(raw.get("error", "experiment failed"))
            if raw["status"] == "timeout":
                error = TimeoutError(raw.get("error", "experiment timed out"))
            items[key] = SweepItem(key, None, error, raw.get("elapsed_seconds", 0.0))
    return [items[key] for key in EXPERIMENTS]
