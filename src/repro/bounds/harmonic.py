"""Harmonic numbers.

``H_n = 1 + 1/2 + ... + 1/n`` appears everywhere in the paper: Rosenthal's
potential, the ``PoS <= H_n`` bound, the Bypass gadget thresholds
``H_{kappa+l} - H_kappa`` and the Theorem 11 calculation.  Small arguments
use a cached exact cumulative sum (vectorized); huge arguments (the
Theorem 12 constants reach ``n_1 ~ 10^368``) switch to the asymptotic
expansion ``H_n = ln n + gamma + 1/(2n) - 1/(12 n^2) + ...`` whose error is
far below any tolerance we use.
"""

from __future__ import annotations

import math
from typing import Union

import numpy as np

#: Euler-Mascheroni constant.
EULER_GAMMA = 0.5772156649015328606

_CACHE_LIMIT = 1 << 20
_cache = np.concatenate([[0.0], np.cumsum(1.0 / np.arange(1, 4097))])


def _extend_cache(n: int) -> None:
    global _cache
    size = len(_cache)
    if n < size:
        return
    new_n = min(_CACHE_LIMIT, max(n + 1, 2 * size))
    extra = np.cumsum(1.0 / np.arange(size, new_n)) + _cache[-1]
    _cache = np.concatenate([_cache, extra])


def harmonic(n: Union[int, float]) -> float:
    """The n-th harmonic number ``H_n`` (``H_0 = 0``).

    Exact cumulative sum for moderate ``n``; asymptotic expansion beyond
    2^20 (absolute error < 1e-26 there).  Accepts Python bigints.
    """
    if n < 0:
        raise ValueError(f"harmonic number undefined for n={n}")
    if n == 0:
        return 0.0
    if n < _CACHE_LIMIT:
        ni = int(n)
        _extend_cache(ni)
        return float(_cache[ni])
    # Asymptotic expansion.  math.log handles arbitrary-precision ints
    # natively; float(n) would overflow for the Theorem 12 bigints, so the
    # 1/(2n) correction term is dropped once it is below double precision.
    ln_n = math.log(n)
    try:
        inv = 1.0 / float(n)
    except OverflowError:
        inv = 0.0
    return ln_n + EULER_GAMMA + inv / 2 - inv * inv / 12


def harmonic_array(n_max: int) -> np.ndarray:
    """Vector ``[H_0, H_1, ..., H_{n_max}]`` (length ``n_max + 1``)."""
    if n_max < 0:
        raise ValueError("n_max must be >= 0")
    if n_max >= _CACHE_LIMIT:
        raise ValueError("harmonic_array supports n_max < 2^20; use harmonic()")
    _extend_cache(n_max)
    return _cache[: n_max + 1].copy()


def harmonic_diff(n: Union[int, float], k: Union[int, float]) -> float:
    """``H_n - H_k`` computed stably (both exact or both asymptotic)."""
    if k > n:
        return -harmonic_diff(k, n)
    if n < _CACHE_LIMIT:
        ni, ki = int(n), int(k)
        _extend_cache(ni)
        return float(_cache[ni] - _cache[ki])
    # Both huge: ln(n/k) dominates; the 1/(2n) corrections are negligible but
    # kept for symmetry.
    return harmonic(n) - harmonic(k)
