"""Content distribution: multicast terminals, weighted tenants, coalitions.

A CDN operator multicasts from an origin (the root) to a handful of edge
sites — a *multicast game* (the paper's Section 6 generalization): only the
subscribing sites are players and the optimal backbone is a Steiner tree,
not an MST.  Tenants also differ in traffic volume (*weighted players*),
and co-located tenants may defect together (*coalitional deviations*).

This example exercises all three extensions on one scenario:

1. compute the exact Steiner-optimal distribution tree (Dreyfus-Wagner),
2. price the subsidies that keep every subscriber on it (LP (1)),
3. show a heavy tenant needs a bigger sweetener than a light one,
4. exhibit a configuration that is Nash-stable yet collapses when two
   tenants coordinate.

Run:  python examples/content_distribution.py

Usage (doctested) — only subscribers play in a multicast game::

    >>> from repro.games import MulticastGame
    >>> from repro.graphs import Graph
    >>> g = Graph.from_edges([(0, 1, 1.0), (1, 2, 1.0), (0, 3, 5.0)])
    >>> game = MulticastGame(g, root=0, terminals=[2])
    >>> game.n_players                          # node 3 is not subscribed
    1
"""

from repro.games import (
    MulticastGame,
    NetworkDesignGame,
    WeightedNetworkDesignGame,
    check_equilibrium,
    check_strong_equilibrium,
    check_weighted_equilibrium,
    solve_weighted_sne,
)
from repro.graphs import Graph
from repro.graphs.generators import random_geometric_graph
from repro.subsidies import solve_sne_cutting_plane_lp1


def steiner_multicast() -> None:
    print("== 1-2. Multicast over a metro network ==")
    g = random_geometric_graph(18, radius=0.38, seed=21)
    terminals = [4, 9, 13, 17]
    game = MulticastGame(g, root=0, terminals=terminals)
    edges, weight = game.optimal_design()
    print(f"  origin 0 -> sites {terminals}: Steiner tree of weight {weight:.3f} "
          f"({len(edges)} links)")
    state = game.optimal_state()
    stable = check_equilibrium(state).is_equilibrium
    print(f"  Steiner optimum stable without subsidies: {stable}")
    res = solve_sne_cutting_plane_lp1(state)
    print(f"  subsidies to enforce it: {res.cost:.4f} "
          f"({res.cost / weight:.1%} of the tree) via LP (1), "
          f"{res.rounds} cutting-plane rounds\n")
    assert res.verified


def weighted_tenants() -> None:
    print("== 3. Weighted tenants on a shared trunk ==")
    g = Graph.from_edges([(0, 1, 4.0), (0, 2, 1.1), (1, 2, 1.1)])
    print("  trunk (1->0) costs 4.0; bypass via 2 costs 2.2 total")
    for demand in (1.0, 3.0, 9.0):
        game = WeightedNetworkDesignGame(g, [(1, 0), (1, 0)], [1.0, demand])
        state = game.state([[1, 0], [1, 0]])
        sub, cost = solve_weighted_sne(state)
        share = state.player_cost(1)
        print(f"  tenant volume {demand:>4.1f}: trunk share {share:.3f}, "
              f"subsidy needed {cost:.4f}")
        assert sub is not None and check_weighted_equilibrium(state, sub, tol=1e-6)
    print("  (the heavier the tenant, the more it costs to keep her)\n")


def coalition_collapse() -> None:
    print("== 4. Nash-stable but coalition-fragile ==")
    g = Graph.from_edges(
        [(1, 0, 1.0), (2, 0, 1.0), (1, 3, 0.4), (2, 3, 0.4), (3, 0, 1.1)]
    )
    game = NetworkDesignGame(g, [(1, 0), (2, 0)])
    state = game.state([[1, 0], [2, 0]])
    print(f"  both tenants on direct links: Nash = "
          f"{check_equilibrium(state).is_equilibrium}")
    report = check_strong_equilibrium(state, max_coalition=2)
    dev = report.deviation
    print(f"  2-strong = {report.is_strong_equilibrium}: tenants {dev.members} "
          f"jointly reroute via the shared trunk,")
    for m, old, new in zip(dev.members, dev.old_costs, dev.new_costs):
        print(f"    tenant {m}: {old:.3f} -> {new:.3f}")


def main() -> None:
    steiner_multicast()
    weighted_tenants()
    coalition_collapse()


if __name__ == "__main__":
    main()
