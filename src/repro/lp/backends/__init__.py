"""Pluggable LP backends: registry + the four built-in implementations.

One layer below :mod:`repro.api`'s solver registry sits this one: every
way the repo can solve ``min c.x : A x <= b, l <= x <= u`` is an
:class:`LPBackendSpec` with capability flags, and everything above —
:class:`~repro.lp.incremental.IncrementalLP`, the cutting-plane driver,
the LP(1)/LP(2)/LP(3) subsidy solvers, the approx tier, the CLI and the
serve daemon — selects backends by name or capability instead of
hard-coded branches.

Built-ins registered on import:

==============  =======================  ==============================
name            aliases                  what it is
==============  =======================  ==============================
``highs-sparse``  ``highs``              scipy's HiGHS, sparse-fed, with
                                         the PR 5 warm-guided fast path
``warm-tableau``  ``simplex``            the repo's two-phase tableau
                                         simplex with dual-simplex warm
                                         restarts
``exact``         ``fraction``,          Fraction-arithmetic two-phase
                  ``rational``           simplex; emits
                                         :class:`ExactCertificate`
``pulp-cbc``      ``cbc``                COIN-OR CBC via PuLP
                                         (conformance; needs ``pulp``)
==============  =======================  ==============================

The legacy spellings ``method="highs"`` / ``method="simplex"`` remain
valid everywhere a backend name is accepted.
"""

from __future__ import annotations

from repro.lp.backends import cbc as _cbc
from repro.lp.backends import exact as _exact
from repro.lp.backends import highs as _highs
from repro.lp.backends import tableau as _tableau
from repro.lp.backends.exact import (
    RHS_RELAX,
    ExactCertificate,
    certify_result,
    exact_solve_certified,
    exact_solve_certified_auto,
)
from repro.lp.backends.registry import (
    BackendUnavailableError,
    LPBackendSpec,
    UnknownBackendError,
    backend_names,
    get_backend,
    list_backends,
    register_backend,
    solve_lp,
)

HIGHS_SPARSE = register_backend(
    LPBackendSpec(
        name="highs-sparse",
        description="scipy HiGHS fed sparse, with warm-guided re-solve shortcuts",
        solve=_highs.solve_dense,
        warm_start=True,
        sparse=True,
        incremental=True,
        aliases=("highs",),
        session_factory=_highs.HighsSession,
    )
)

WARM_TABLEAU = register_backend(
    LPBackendSpec(
        name="warm-tableau",
        description="in-repo two-phase tableau simplex with dual-simplex warm restarts",
        solve=_tableau.solve_dense,
        warm_start=True,
        incremental=True,
        aliases=("simplex",),
        session_factory=_tableau.TableauSession,
    )
)

EXACT = register_backend(
    LPBackendSpec(
        name="exact",
        description="Fraction-arithmetic two-phase simplex emitting exact certificates",
        solve=_exact.exact_solve,
        exact=True,
        aliases=("fraction", "rational"),
    )
)

PULP_CBC = register_backend(
    LPBackendSpec(
        name="pulp-cbc",
        description="COIN-OR CBC via PuLP (independent conformance implementation)",
        solve=_cbc.solve_dense,
        aliases=("cbc",),
        requires="pulp",
    )
)

__all__ = [
    "BackendUnavailableError",
    "EXACT",
    "ExactCertificate",
    "HIGHS_SPARSE",
    "LPBackendSpec",
    "PULP_CBC",
    "RHS_RELAX",
    "UnknownBackendError",
    "WARM_TABLEAU",
    "backend_names",
    "certify_result",
    "exact_solve_certified",
    "exact_solve_certified_auto",
    "get_backend",
    "list_backends",
    "register_backend",
    "solve_lp",
]
