"""Stdlib HTTP front end for :class:`~repro.serve.service.SolverService`.

A :class:`~http.server.ThreadingHTTPServer` (one thread per connection,
``HTTP/1.1`` keep-alive) dispatching to the transport-independent service
core.  The routing table is deliberately tiny:

======  ==============  ====================================================
method  path            body
======  ==============  ====================================================
POST    ``/solve``      canonical :class:`~repro.api.report.SolveReport` JSON
POST    ``/solve-batch``  ``grid[i][j]`` of canonical reports
POST    ``/sweep``      deterministic sweep-result JSON
GET     ``/solvers``    the solver registry
GET     ``/families``   scenario + game families
GET     ``/healthz``    liveness probe
GET     ``/version``    package version
GET     ``/stats``      counters, LRU occupancy, admission state
======  ==============  ====================================================

Every response is ``application/json``.  Errors are
``{"error": "<message>"}`` with the matching status; saturation answers
``429`` with a ``Retry-After`` header instead of queueing unboundedly.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional

from repro import __version__
from repro.serve.service import Saturated, ServeConfig, ServeRequestError, SolverService

#: request bodies above this are rejected with 413 (a 10k-node dense game
#: serializes to well under this; the bound exists to stop accidental or
#: hostile multi-GB uploads from exhausting daemon memory)
MAX_BODY_BYTES = 64 * 1024 * 1024

#: seconds suggested to a 429'd client before retrying
RETRY_AFTER_SECONDS = 1


class _Handler(BaseHTTPRequestHandler):
    """Routes requests to the attached :class:`SolverService`."""

    server_version = f"repro-serve/{__version__}"
    protocol_version = "HTTP/1.1"

    # The service is attached to the *server* (one per daemon), not the
    # handler (one per connection).
    @property
    def service(self) -> SolverService:
        return self.server.service  # type: ignore[attr-defined]

    def log_message(self, format: str, *args: Any) -> None:
        if getattr(self.server, "quiet", True):  # type: ignore[attr-defined]
            return
        super().log_message(format, *args)

    # -- response helpers ---------------------------------------------------

    def _send(self, status: int, body: bytes, retry_after: Optional[int] = None) -> None:
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if retry_after is not None:
            self.send_header("Retry-After", str(retry_after))
        self.end_headers()
        self.wfile.write(body)

    def _send_error(self, status: int, message: str, retry_after: Optional[int] = None) -> None:
        body = (json.dumps({"error": message}, indent=2) + "\n").encode("utf-8")
        self._send(status, body, retry_after=retry_after)

    def _read_json(self) -> Dict[str, Any]:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            raise ServeRequestError(400, "request body required (Content-Length missing)")
        if length > MAX_BODY_BYTES:
            raise ServeRequestError(413, f"request body exceeds {MAX_BODY_BYTES} bytes")
        raw = self.rfile.read(length)
        try:
            data = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ServeRequestError(400, f"request body is not valid JSON: {exc}") from None
        if not isinstance(data, dict):
            raise ServeRequestError(400, "request body must be a JSON object")
        return data

    # -- dispatch -----------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802  (http.server naming)
        service = self.service
        service.counters.bump(f"requests GET {self.path}")
        if self.path == "/healthz":
            self._send(200, service.health_json())
        elif self.path == "/version":
            self._send(200, service.version_json())
        elif self.path == "/stats":
            self._send(200, service.stats_json())
        elif self.path == "/solvers":
            self._send(200, service.solvers_json())
        elif self.path == "/families":
            self._send(200, service.families_json())
        else:
            self._send_error(404, f"no such endpoint: GET {self.path}")

    def do_POST(self) -> None:  # noqa: N802
        service = self.service
        service.counters.bump(f"requests POST {self.path}")
        if self.path not in ("/solve", "/solve-batch", "/sweep"):
            self._send_error(404, f"no such endpoint: POST {self.path}")
            return
        try:
            service.admission.admit()
        except Saturated as exc:
            self._send_error(429, str(exc), retry_after=RETRY_AFTER_SECONDS)
            return
        try:
            data = self._read_json()
            if self.path == "/solve":
                body = service.solve_json(data)
            elif self.path == "/solve-batch":
                body = service.solve_batch_json(data)
            else:
                body = service.sweep_json(data)
            self._send(200, body)
        except ServeRequestError as exc:
            self._send_error(exc.status, str(exc))
        except Exception as exc:  # noqa: BLE001 — daemon must not die per-request
            self._send_error(500, f"{type(exc).__name__}: {exc}")
        finally:
            service.admission.release()

    def do_PUT(self) -> None:  # noqa: N802
        self._send_error(405, "method not allowed")

    do_DELETE = do_PUT
    do_PATCH = do_PUT


class ServeHTTPServer(ThreadingHTTPServer):
    """Threaded HTTP server carrying the shared :class:`SolverService`."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address, service: SolverService, quiet: bool = True):
        super().__init__(address, _Handler)
        self.service = service
        self.quiet = quiet


def make_server(
    config: Optional[ServeConfig] = None,
    host: str = "127.0.0.1",
    port: int = 8350,
    quiet: bool = True,
) -> ServeHTTPServer:
    """Build a bound (not yet serving) daemon; ``port=0`` picks a free port.

    The caller owns the lifecycle::

        server = make_server(ServeConfig(), port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        ...
        server.shutdown(); server.server_close()
    """
    service = SolverService(config)
    return ServeHTTPServer((host, port), service, quiet=quiet)


def serve_forever(
    config: Optional[ServeConfig] = None,
    host: str = "127.0.0.1",
    port: int = 8350,
    quiet: bool = False,
    ready: Optional[threading.Event] = None,
) -> None:
    """Run the daemon in the current thread until interrupted.

    ``ready`` (if given) is set once the socket is bound and accepting —
    handy for tests and the CI smoke job, which start the daemon in a
    subprocess and must not race the first request against the bind.
    """
    server = make_server(config, host, port, quiet=quiet)
    bound_host, bound_port = server.server_address[:2]
    if not quiet:
        print(f"repro-serve {__version__} listening on http://{bound_host}:{bound_port}")
    if ready is not None:
        ready.set()
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.shutdown()
        server.server_close()
