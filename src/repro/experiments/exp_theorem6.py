"""E2 — Theorem 6: the constructive algorithm spends exactly wgt(T)/e.

On every instance family the per-level accounting lands on wgt(T_j)/e, the
composed assignment enforces the MST, and the LP optimum is never above the
constructive cost (it is the optimum, after all).
"""

from __future__ import annotations

import math

from repro.experiments.records import ExperimentResult
from repro.games.broadcast import BroadcastGame
from repro.games.equilibrium import check_equilibrium
from repro.graphs.generators import (
    grid_graph,
    random_connected_gnp,
    random_geometric_graph,
    random_tree_plus_chords,
)
from repro.subsidies import solve_sne_broadcast_lp3, theorem6_subsidies
from repro.utils.timing import Timer


def run(seed: int = 0) -> ExperimentResult:
    families = [
        ("gnp(16,0.3)", random_connected_gnp(16, 0.3, seed=seed)),
        ("gnp(24,0.2)", random_connected_gnp(24, 0.2, seed=seed + 1)),
        ("geometric(20)", random_geometric_graph(20, 0.35, seed=seed + 2)),
        ("grid(4x5)", grid_graph(4, 5)),
        ("tree+chords(18)", random_tree_plus_chords(18, 9, seed=seed + 3)),
    ]
    rows = []
    with Timer() as t:
        for name, g in families:
            game = BroadcastGame(g, root=0)
            state = game.mst_state()
            res = theorem6_subsidies(state)
            lp = solve_sne_broadcast_lp3(state)
            enforced = check_equilibrium(state, res.subsidies, tol=1e-7).is_equilibrium
            rows.append(
                {
                    "family": name,
                    "wgt(T)": state.social_cost(),
                    "constructive": res.cost,
                    "fraction": res.fraction,
                    "lp_optimum": lp.cost,
                    "lp_fraction": lp.cost / state.social_cost(),
                    "levels": len(res.levels),
                    "enforced": enforced,
                }
            )
    result = ExperimentResult(
        experiment_id="E2",
        title="Theorem 6: constructive subsidies of wgt(T)/e enforce the MST",
        headline=(
            f"constructive fraction = 1/e = {1/math.e:.5f} on every family; "
            "LP optimum <= constructive throughout (paper: 37% always suffices)"
        ),
        rows=rows,
    )
    result.elapsed_seconds = t.elapsed
    return result
