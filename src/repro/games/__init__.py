"""Network design games (Section 2 of the paper).

* :mod:`repro.games.base` — the game-family layer: the five first-class
  families (broadcast, multicast, general, weighted, directed) and the
  pluggable :class:`CostSharingRule` (fair/Shapley, demand-proportional,
  arbitrary per-edge splits).
* :class:`NetworkDesignGame` — arbitrary source/destination pairs, states are
  per-player paths with fair (Shapley) cost sharing.
* :class:`BroadcastGame` — one player per non-root node (optionally with
  co-located player *multiplicities*), states are spanning trees.
* :class:`DirectedNetworkDesignGame` — per-direction traversal constraints
  on the shared undirected cost model.
* Equilibrium checking, coalition scans and equilibrium stretch run on the
  vectorized :class:`BestResponseEngine` for every family; Rosenthal's
  potential and best-response dynamics additionally require fair sharing
  (weighted/per-edge splits have no exact potential) and cover the
  broadcast/multicast/general/directed families.
"""

from repro.games.base import (
    GAME_FAMILIES,
    CostSharingRule,
    FairSharing,
    FamilyCoercionError,
    PerEdgeSplit,
    ProportionalSharing,
    family_of,
    rule_from_json,
    to_broadcast,
    to_general,
)
from repro.games.game import NetworkDesignGame, Player, State
from repro.games.broadcast import BroadcastGame, TreeState
from repro.games.equilibrium import (
    Deviation,
    EquilibriumReport,
    best_response,
    check_equilibrium,
    check_equilibrium_legacy,
)
from repro.games.engine import BestResponseEngine, EngineProfile
from repro.games.potential import rosenthal_potential, potential_of_tree
from repro.games.dynamics import BRDResult, best_response_dynamics
from repro.games.efficiency import (
    EfficiencyReport,
    equilibrium_spanning_trees,
    price_of_anarchy,
    price_of_stability,
)
from repro.games.multicast import MulticastGame
from repro.games.directed import DirectedNetworkDesignGame, DirectedState
from repro.games.weighted import (
    WeightedNetworkDesignGame,
    WeightedState,
    check_weighted_equilibrium,
    check_weighted_equilibrium_legacy,
    solve_weighted_sne,
)
from repro.games.coalitions import (
    CoalitionDeviation,
    StrongEquilibriumReport,
    check_strong_equilibrium,
)
from repro.games.approx import (
    equilibrium_stretch,
    is_alpha_equilibrium,
    subsidies_for_stretch,
)

__all__ = [
    "GAME_FAMILIES",
    "CostSharingRule",
    "FairSharing",
    "FamilyCoercionError",
    "PerEdgeSplit",
    "ProportionalSharing",
    "family_of",
    "rule_from_json",
    "to_broadcast",
    "to_general",
    "NetworkDesignGame",
    "Player",
    "State",
    "DirectedNetworkDesignGame",
    "DirectedState",
    "BroadcastGame",
    "TreeState",
    "Deviation",
    "EquilibriumReport",
    "best_response",
    "check_equilibrium",
    "check_equilibrium_legacy",
    "BestResponseEngine",
    "EngineProfile",
    "rosenthal_potential",
    "potential_of_tree",
    "BRDResult",
    "best_response_dynamics",
    "EfficiencyReport",
    "equilibrium_spanning_trees",
    "price_of_anarchy",
    "price_of_stability",
    "MulticastGame",
    "WeightedNetworkDesignGame",
    "WeightedState",
    "check_weighted_equilibrium",
    "check_weighted_equilibrium_legacy",
    "solve_weighted_sne",
    "CoalitionDeviation",
    "StrongEquilibriumReport",
    "check_strong_equilibrium",
    "equilibrium_stretch",
    "is_alpha_equilibrium",
    "subsidies_for_stretch",
]
