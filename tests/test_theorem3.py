"""Tests for the Theorem 3 reduction (BIN PACKING -> zero-budget SND)."""

import pytest

from repro.games import check_equilibrium
from repro.graphs.mst import is_minimum_spanning_tree
from repro.graphs.spanning_trees import enumerate_minimum_spanning_trees
from repro.hardness.binpacking_reduction import (
    any_mst_equilibrium,
    build_theorem3_instance,
    packing_from_tree,
    tree_from_packing,
)
from repro.hardness.solvers import BinPackingInstance, solve_bin_packing_exact


@pytest.fixture(scope="module")
def solvable():
    return build_theorem3_instance(BinPackingInstance((2, 2, 2, 2), 2, 4))


@pytest.fixture(scope="module")
def unsolvable():
    return build_theorem3_instance(BinPackingInstance((4, 4, 4), 2, 6))


class TestConstruction:
    def test_structure(self, solvable):
        inst = solvable
        k, n = inst.packing.n_bins, len(inst.packing.sizes)
        # Nodes: root + k gadgets of ell + per item (center + size-1 leaves).
        expected_nodes = 1 + k * inst.ell + sum(inst.packing.sizes)
        assert inst.game.graph.num_nodes == expected_nodes
        assert len(inst.gadgets) == k
        assert len(inst.item_centers) == n

    def test_rejects_non_strict(self):
        with pytest.raises(ValueError):
            build_theorem3_instance(BinPackingInstance((3, 3), 2, 3))

    def test_target_weight_K(self, solvable):
        inst = solvable
        mst = inst.game.mst_state()
        assert mst.social_cost() == pytest.approx(inst.K)

    def test_tree_from_packing_is_mst(self, solvable):
        inst = solvable
        sol = solve_bin_packing_exact(inst.packing)
        state = tree_from_packing(inst, sol)
        assert is_minimum_spanning_tree(inst.game.graph, state.edges)
        assert state.social_cost() == pytest.approx(inst.K)

    def test_tree_from_bad_assignment_rejected(self, solvable):
        with pytest.raises(ValueError):
            tree_from_packing(solvable, [0, 0, 0, 0])

    def test_roundtrip(self, solvable):
        inst = solvable
        sol = solve_bin_packing_exact(inst.packing)
        state = tree_from_packing(inst, sol)
        assert packing_from_tree(inst, state) == sol


class TestEquivalence:
    """Theorem 3's equivalence, executed in both directions."""

    def test_solvable_packing_gives_equilibrium_mst(self, solvable):
        state = any_mst_equilibrium(solvable)
        assert state is not None
        assert check_equilibrium(state).is_equilibrium

    def test_unsolvable_packing_has_no_equilibrium_mst(self, unsolvable):
        """Exhaustive: NO minimum spanning tree is an equilibrium."""
        inst = unsolvable
        found = False
        count = 0
        for edges in enumerate_minimum_spanning_trees(inst.game.graph):
            count += 1
            state = inst.game.tree_state(edges)
            if check_equilibrium(state).is_equilibrium:
                found = True
                break
        # k^n item-to-bin choices = 2^3 MSTs.
        assert count == 8
        assert not found
        assert any_mst_equilibrium(inst) is None

    def test_solvable_exhaustive_agreement(self, solvable):
        """Every MST is an equilibrium exactly when its allocation packs."""
        inst = solvable
        for edges in enumerate_minimum_spanning_trees(inst.game.graph):
            state = inst.game.tree_state(edges)
            allocation = packing_from_tree(inst, state)
            packs = inst.packing.check_solution(allocation)
            assert check_equilibrium(state).is_equilibrium == packs

    def test_underfull_bin_connector_deviates(self, solvable):
        """Putting three items in one bin leaves the other underfull: the
        starved connector grabs its bypass edge (Lemma 4)."""
        inst = solvable
        edges = list(inst.star_edges)
        for gadget in inst.gadgets:
            edges.extend(gadget.basic_path_edges)
        lopsided = [0, 0, 0, 1]
        for i, b in enumerate(lopsided):
            edges.append((inst.item_centers[i], inst.gadgets[b].connector))
        state = inst.game.tree_state(edges)
        report = check_equilibrium(state, find_all=True)
        assert not report.is_equilibrium
        deviators = {d.player for d in report.deviations}
        assert inst.gadgets[1].connector in deviators
