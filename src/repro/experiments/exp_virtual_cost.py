"""E10 — Figure 4: the virtual cost of a packed path.

Regenerates the figure's data: a path of heavy edges with multiplicities
1..6 and 1.6c of subsidies packed on the least crowded edges; the virtual
cost equals the closed form c*ln(t/(t-|q'|+y/c)) (Claim 10) and dominates
the real cost of the deepest player (Claim 8).
"""

from __future__ import annotations

import math

from repro.experiments.records import ExperimentResult
from repro.subsidies.virtual_cost import (
    claim10_closed_form,
    pack_subsidies_on_path,
    path_virtual_cost,
    real_cost_share,
)
from repro.utils.timing import Timer


def run(seed: int = 0, q_len: int = 6, steps=(0.0, 0.6, 1.0, 1.6, 2.4, 3.0, 4.5, 6.0)) -> ExperimentResult:
    c = 1.0
    mults = list(range(1, q_len + 1))
    rows = []
    dominated = True
    with Timer() as t:
        for total in steps:
            y = pack_subsidies_on_path(c, mults, total)
            vc = path_virtual_cost(c, mults, y)
            closed = claim10_closed_form(c, q_len, q_len, total)
            real = real_cost_share(c, mults, y)
            dominated &= real <= vc + 1e-12
            rows.append(
                {
                    "subsidies y(q)": total,
                    "packing": "+".join(f"{v:.1f}" for v in y),
                    "virtual_cost": vc,
                    "closed_form": closed,
                    "real_cost_deepest": real,
                    "claim8_holds": real <= vc + 1e-12,
                }
            )
    fig_vc = claim10_closed_form(c, 6, 6, 1.6)
    result = ExperimentResult(
        experiment_id="E10",
        title="Figure 4: virtual cost of a path with packed subsidies",
        headline=(
            f"at y(q)=1.6 (the figure's setting) vc = ln(6/1.6) = {fig_vc:.5f}; "
            f"real cost <= virtual cost on every row: {dominated}"
        ),
        rows=rows,
        notes=f"infinite virtual cost at y=0 reflects the unsubsidized m=1 edge (ln inf); e = {math.e:.5f}",
    )
    result.elapsed_seconds = t.elapsed
    return result
