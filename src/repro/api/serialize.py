"""JSON (de)serialization for graphs, games, subsidies and solve reports.

Instances and results can cross process / service boundaries: every
``*_to_json`` returns a plain JSON-compatible dict, and the matching
``*_from_json`` reconstructs an equal object (accepting either the dict or
its ``json.dumps`` string).  Python's ``json`` round-trips floats exactly
(shortest-repr), so costs and subsidies survive bit-for-bit.

Graph nodes are arbitrary hashables in this codebase (the hardness gadgets
use tuples and strings), so nodes are encoded as small tagged lists::

    5            -> ["i", 5]          "s3"   -> ["s", "s3"]
    2.5          -> ["f", 2.5]        True   -> ["b", true]
    None         -> ["z"]             (u, v) -> ["t", [enc(u), enc(v)]]
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Mapping, Tuple, Union

import numpy as np

from repro.games.base import ProportionalSharing, rule_from_json
from repro.games.broadcast import BroadcastGame
from repro.games.directed import DirectedNetworkDesignGame
from repro.games.game import NetworkDesignGame
from repro.games.multicast import MulticastGame
from repro.games.weighted import WeightedNetworkDesignGame
from repro.graphs.graph import Edge, Graph, Node, _sort_key, canonical_edge
from repro.subsidies.assignment import SubsidyAssignment
from repro.api.report import SolveReport

JSONDict = Dict[str, Any]
AnyGame = Union[
    BroadcastGame,
    MulticastGame,
    NetworkDesignGame,
    WeightedNetworkDesignGame,
    DirectedNetworkDesignGame,
]


# ---------------------------------------------------------------------------
# Nodes
# ---------------------------------------------------------------------------


def encode_node(node: Node) -> List[Any]:
    """Encode one node as a tagged JSON list."""
    if node is None:
        return ["z"]
    if isinstance(node, bool):  # before int: bool is an int subclass
        return ["b", node]
    if isinstance(node, (int, np.integer)):  # numpy labels from the generators
        return ["i", int(node)]
    if isinstance(node, (float, np.floating)):
        return ["f", float(node)]
    if isinstance(node, str):
        return ["s", node]
    if isinstance(node, tuple):
        return ["t", [encode_node(x) for x in node]]
    raise TypeError(f"cannot JSON-encode node of type {type(node).__name__}: {node!r}")


def decode_node(data: List[Any]) -> Node:
    """Inverse of :func:`encode_node`."""
    tag = data[0]
    if tag == "z":
        return None
    if tag in ("b", "i", "f", "s"):
        return data[1]
    if tag == "t":
        return tuple(decode_node(x) for x in data[1])
    raise ValueError(f"unknown node tag {tag!r}")


def _encode_edge(edge: Edge) -> List[Any]:
    u, v = canonical_edge(*edge)
    return [encode_node(u), encode_node(v)]


def _decode_edge(data: List[Any]) -> Edge:
    return canonical_edge(decode_node(data[0]), decode_node(data[1]))


def _as_dict(data: Union[str, JSONDict], expected_kind: str) -> JSONDict:
    if isinstance(data, str):
        data = json.loads(data)
    if not isinstance(data, dict):
        raise ValueError(f"expected a JSON object for {expected_kind!r}")
    kind = data.get("kind")
    if kind != expected_kind:
        raise ValueError(f"expected kind {expected_kind!r}, got {kind!r}")
    return data


# ---------------------------------------------------------------------------
# Graphs
# ---------------------------------------------------------------------------


def graph_to_json(graph: Graph) -> JSONDict:
    return {
        "kind": "graph",
        "nodes": [encode_node(u) for u in graph.nodes],
        "edges": [[encode_node(u), encode_node(v), w] for u, v, w in graph.edges()],
    }


def graph_from_json(data: Union[str, JSONDict]) -> Graph:
    data = _as_dict(data, "graph")
    g = Graph()
    for enc in data["nodes"]:
        g.add_node(decode_node(enc))
    for enc_u, enc_v, w in data["edges"]:
        g.add_edge(decode_node(enc_u), decode_node(enc_v), w)
    return g


# ---------------------------------------------------------------------------
# Games
# ---------------------------------------------------------------------------


def _encode_pairs(game: AnyGame) -> List[List[Any]]:
    return [[encode_node(p.source), encode_node(p.target)] for p in game.players]


def _decode_pairs(data: JSONDict) -> List[Tuple[Node, Node]]:
    return [(decode_node(s), decode_node(t)) for s, t in data["pairs"]]


def game_to_json(game: AnyGame) -> JSONDict:
    """Serialize a game of any family (dispatch on type).

    Every :data:`repro.games.base.GAME_FAMILIES` member has a JSON kind:
    ``broadcast-game``, ``multicast-game``, ``network-design-game``
    (general), ``weighted-game`` and ``directed-game``.  Payloads are
    deterministic for a given game (set-valued fields are emitted in
    canonical sort order), which the content-addressed result cache relies
    on.
    """
    if isinstance(game, BroadcastGame):
        return {
            "kind": "broadcast-game",
            "graph": graph_to_json(game.graph),
            "root": encode_node(game.root),
            "multiplicity": [
                [encode_node(u), k] for u, k in game.multiplicity.items()
            ],
        }
    if isinstance(game, MulticastGame):
        return {
            "kind": "multicast-game",
            "graph": graph_to_json(game.graph),
            "root": encode_node(game.root),
            "terminals": [encode_node(t) for t in game.terminals],
        }
    if isinstance(game, WeightedNetworkDesignGame):
        payload: JSONDict = {
            "kind": "weighted-game",
            "graph": graph_to_json(game.graph),
            "pairs": _encode_pairs(game),
            "demands": [p.demand for p in game.players],
        }
        rule = game.cost_sharing
        if rule != ProportionalSharing(payload["demands"]):
            payload["sharing"] = rule.to_json()
        return payload
    if isinstance(game, DirectedNetworkDesignGame):
        arcs = sorted(game.arcs, key=lambda a: (_sort_key(a[0]), _sort_key(a[1])))
        return {
            "kind": "directed-game",
            "graph": graph_to_json(game.graph),
            "pairs": _encode_pairs(game),
            "arcs": [[encode_node(u), encode_node(v)] for u, v in arcs],
        }
    if isinstance(game, NetworkDesignGame):
        return {
            "kind": "network-design-game",
            "graph": graph_to_json(game.graph),
            "pairs": _encode_pairs(game),
        }
    raise TypeError(f"cannot serialize game of type {type(game).__name__}")


def game_from_json(data: Union[str, JSONDict]) -> AnyGame:
    """Reconstruct a game of any family (dispatch on ``kind``)."""
    if isinstance(data, str):
        data = json.loads(data)
    if not isinstance(data, dict):
        raise ValueError("expected a JSON object for a game")
    kind = data.get("kind")
    if kind == "broadcast-game":
        graph = graph_from_json(data["graph"])
        multiplicity = {decode_node(enc): k for enc, k in data["multiplicity"]}
        return BroadcastGame(graph, decode_node(data["root"]), multiplicity)
    if kind == "multicast-game":
        graph = graph_from_json(data["graph"])
        terminals = [decode_node(t) for t in data["terminals"]]
        return MulticastGame(graph, decode_node(data["root"]), terminals)
    if kind == "weighted-game":
        graph = graph_from_json(data["graph"])
        sharing = data.get("sharing")
        # An absent "sharing" key means the default demand-proportional
        # rule; an explicit rule (FairSharing included — it differs from
        # proportional whenever demands are non-unit) passes through as is.
        rule = rule_from_json(sharing) if sharing is not None else None
        return WeightedNetworkDesignGame(
            graph, _decode_pairs(data), data["demands"], cost_sharing=rule
        )
    if kind == "directed-game":
        graph = graph_from_json(data["graph"])
        arcs = [(decode_node(u), decode_node(v)) for u, v in data["arcs"]]
        return DirectedNetworkDesignGame(graph, _decode_pairs(data), arcs)
    if kind == "network-design-game":
        graph = graph_from_json(data["graph"])
        return NetworkDesignGame(graph, _decode_pairs(data))
    raise ValueError(f"unknown game kind {kind!r}")


# ---------------------------------------------------------------------------
# Subsidies
# ---------------------------------------------------------------------------


def subsidies_to_json(subsidies: SubsidyAssignment) -> JSONDict:
    return {
        "kind": "subsidies",
        "values": [[*_encode_edge(e), b] for e, b in subsidies.items()],
    }


def subsidies_from_json(data: Union[str, JSONDict], graph: Graph) -> SubsidyAssignment:
    data = _as_dict(data, "subsidies")
    values: Dict[Edge, float] = {}
    for enc_u, enc_v, b in data["values"]:
        values[canonical_edge(decode_node(enc_u), decode_node(enc_v))] = b
    return SubsidyAssignment(graph, values)


# ---------------------------------------------------------------------------
# Solve reports
# ---------------------------------------------------------------------------


def report_to_json(report: SolveReport) -> JSONDict:
    """Serialize a report (self-contained: embeds the instance graph)."""
    return {
        "kind": "solve-report",
        "graph": graph_to_json(report.subsidies.graph),
        "solver": report.solver,
        "problem": report.problem,
        "subsidies": subsidies_to_json(report.subsidies),
        "budget_used": report.budget_used,
        "target_edges": [_encode_edge(e) for e in report.target_edges],
        "target_cost": report.target_cost,
        "feasible": report.feasible,
        "verified": report.verified,
        "optimal": report.optimal,
        "metadata": dict(report.metadata),
        "wall_clock_seconds": report.wall_clock_seconds,
    }


def canonical_report_json(report: Union[SolveReport, JSONDict]) -> JSONDict:
    """:func:`report_to_json` with the wall clock zeroed.

    Every field of a report except ``wall_clock_seconds`` is deterministic
    for a (instance, solver, version, options) cell — including the
    solve-path ``metadata["profile"]`` counters, which count the same
    oracle work no matter how warm the process is.  Zeroing the one
    timing field therefore makes equal solves *byte*-equal, which is the
    response contract of the serve daemon (:mod:`repro.serve`) and of
    ``repro-experiments solve --json --canonical``: the same instance
    solved by a fresh CLI process and by a long-running daemon renders
    identical bytes.
    """
    payload = report_to_json(report) if isinstance(report, SolveReport) else dict(report)
    payload["wall_clock_seconds"] = 0.0
    return payload


def report_from_json(data: Union[str, JSONDict]) -> SolveReport:
    data = _as_dict(data, "solve-report")
    graph = graph_from_json(data["graph"])
    return SolveReport(
        solver=data["solver"],
        problem=data["problem"],
        subsidies=subsidies_from_json(data["subsidies"], graph),
        budget_used=data["budget_used"],
        target_edges=tuple(_decode_edge(e) for e in data["target_edges"]),
        target_cost=data["target_cost"],
        feasible=data["feasible"],
        verified=data["verified"],
        optimal=data["optimal"],
        metadata=dict(data["metadata"]),
        wall_clock_seconds=data["wall_clock_seconds"],
    )


# ---------------------------------------------------------------------------
# Convenience string front-ends
# ---------------------------------------------------------------------------


def dumps(obj: Union[Graph, AnyGame, SolveReport, SubsidyAssignment], **kwargs: Any) -> str:
    """``json.dumps`` any serializable object (dispatch on type)."""
    if isinstance(obj, Graph):
        payload: Mapping[str, Any] = graph_to_json(obj)
    elif isinstance(
        obj,
        (BroadcastGame, MulticastGame, NetworkDesignGame, WeightedNetworkDesignGame),
    ):
        payload = game_to_json(obj)  # DirectedNetworkDesignGame subclasses general
    elif isinstance(obj, SolveReport):
        payload = report_to_json(obj)
    elif isinstance(obj, SubsidyAssignment):
        payload = subsidies_to_json(obj)
    else:
        raise TypeError(f"cannot serialize object of type {type(obj).__name__}")
    return json.dumps(payload, **kwargs)


_LOADERS = {
    "graph": graph_from_json,
    "broadcast-game": game_from_json,
    "multicast-game": game_from_json,
    "network-design-game": game_from_json,
    "weighted-game": game_from_json,
    "directed-game": game_from_json,
    "solve-report": report_from_json,
}


def loads(text: Union[str, JSONDict]) -> Union[Graph, AnyGame, SolveReport]:
    """Inverse of :func:`dumps` for self-contained payloads.

    Subsidies are not self-contained (they validate against a graph), so
    use :func:`subsidies_from_json` for those.
    """
    data = json.loads(text) if isinstance(text, str) else text
    kind = data.get("kind") if isinstance(data, dict) else None
    if kind not in _LOADERS:
        raise ValueError(f"cannot deserialize payload of kind {kind!r}")
    return _LOADERS[kind](data)
