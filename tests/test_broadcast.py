"""Tests for broadcast games and tree states."""

import pytest

from repro.games import BroadcastGame
from repro.graphs import Graph
from repro.graphs.generators import cycle_graph, fan_graph


@pytest.fixture
def small_game():
    # Root 0; path 0-1-2 plus shortcut (0, 2).
    g = Graph.from_edges([(0, 1, 1.0), (1, 2, 1.0), (0, 2, 1.5)])
    return BroadcastGame(g, root=0)


class TestConstruction:
    def test_basic(self, small_game):
        assert small_game.n_players == 2
        assert set(small_game.player_nodes()) == {1, 2}

    def test_root_not_in_graph(self):
        with pytest.raises(ValueError):
            BroadcastGame(Graph.from_edges([(0, 1, 1.0)]), root=9)

    def test_disconnected_rejected(self):
        g = Graph.from_edges([(0, 1, 1.0)])
        g.add_node(5)
        with pytest.raises(ValueError):
            BroadcastGame(g, root=0)

    def test_multiplicities(self):
        g = Graph.from_edges([(0, 1, 1.0), (1, 2, 0.0)])
        game = BroadcastGame(g, root=0, multiplicity={2: 5})
        assert game.n_players == 6
        assert game.multiplicity == {1: 1, 2: 5}

    def test_negative_multiplicity(self):
        g = Graph.from_edges([(0, 1, 1.0)])
        with pytest.raises(ValueError):
            BroadcastGame(g, root=0, multiplicity={1: -1})

    def test_zero_multiplicity_node_has_no_player(self):
        g = Graph.from_edges([(0, 1, 1.0), (1, 2, 1.0)])
        game = BroadcastGame(g, root=0, multiplicity={1: 0})
        assert set(game.player_nodes()) == {2}


class TestTreeState:
    def test_loads(self, small_game):
        st = small_game.tree_state([(0, 1), (1, 2)])
        assert st.loads == {(0, 1): 2, (1, 2): 1}

    def test_loads_with_multiplicity(self):
        g = Graph.from_edges([(0, 1, 1.0), (1, 2, 0.0)])
        game = BroadcastGame(g, root=0, multiplicity={2: 9})
        st = game.tree_state([(0, 1), (1, 2)])
        assert st.loads == {(0, 1): 10, (1, 2): 9}

    def test_social_cost(self, small_game):
        st = small_game.tree_state([(0, 1), (1, 2)])
        assert st.social_cost() == pytest.approx(2.0)

    def test_non_spanning_rejected(self, small_game):
        with pytest.raises(ValueError):
            small_game.tree_state([(0, 1)])

    def test_non_graph_edge_rejected(self):
        g = Graph.from_edges([(0, 1, 1.0), (1, 2, 1.0), (0, 2, 1.0), (1, 3, 1.0)])
        game = BroadcastGame(g, root=0)
        with pytest.raises(ValueError):
            game.tree_state([(0, 1), (1, 2), (2, 3)])

    def test_player_cost(self, small_game):
        st = small_game.tree_state([(0, 1), (1, 2)])
        assert st.player_cost(1) == pytest.approx(0.5)
        assert st.player_cost(2) == pytest.approx(1.5)

    def test_player_cost_with_subsidies(self, small_game):
        st = small_game.tree_state([(0, 1), (1, 2)])
        assert st.player_cost(2, {(1, 2): 0.5}) == pytest.approx(1.0)

    def test_player_cost_root_rejected(self, small_game):
        st = small_game.tree_state([(0, 1), (1, 2)])
        with pytest.raises(ValueError):
            st.player_cost(0)

    def test_all_player_costs_match_single(self, small_game):
        st = small_game.tree_state([(0, 1), (1, 2)])
        costs = st.all_player_costs()
        assert costs[1] == pytest.approx(st.player_cost(1))
        assert costs[2] == pytest.approx(st.player_cost(2))

    def test_total_player_cost_equals_weight(self, small_game):
        st = small_game.tree_state([(0, 1), (1, 2)])
        assert st.total_player_cost() == pytest.approx(st.social_cost())

    def test_total_player_cost_multiplicity(self):
        g = Graph.from_edges([(0, 1, 3.0), (1, 2, 0.0)])
        game = BroadcastGame(g, root=0, multiplicity={2: 2})
        st = game.tree_state([(0, 1), (1, 2)])
        # Three players share the weight-3 edge; total = 3.
        assert st.total_player_cost() == pytest.approx(3.0)

    def test_usage(self, small_game):
        st = small_game.tree_state([(0, 1), (1, 2)])
        assert st.usage((1, 0)) == 2
        assert st.usage((0, 2)) == 0


class TestMST:
    def test_mst_state(self, small_game):
        st = small_game.mst_state()
        assert st.edge_set() == frozenset({(0, 1), (1, 2)})
        assert small_game.mst_weight() == pytest.approx(2.0)

    def test_fan_mst_uses_rim(self):
        game = BroadcastGame(fan_graph(5), root=0)
        st = game.mst_state()
        # One spoke plus the rim.
        spokes = [e for e in st.edges if 0 in e]
        assert len(spokes) == 1


class TestConversion:
    def test_to_network_design_game(self, small_game):
        nd = small_game.to_network_design_game()
        assert nd.n_players == 2
        st = small_game.mst_state()
        paths = small_game.tree_state_to_paths(st)
        general = nd.state(paths)
        assert general.social_cost() == pytest.approx(st.social_cost())
        for i, p in enumerate(nd.players):
            assert general.player_cost(i) == pytest.approx(st.player_cost(p.source))

    def test_conversion_rejects_multiplicity(self):
        g = Graph.from_edges([(0, 1, 1.0)])
        game = BroadcastGame(g, root=0, multiplicity={1: 3})
        with pytest.raises(ValueError):
            game.to_network_design_game()

    def test_paths_respect_multiplicity(self):
        g = cycle_graph(4)
        game = BroadcastGame(g, root=0, multiplicity={1: 1, 2: 0, 3: 1})
        st = game.tree_state([(0, 1), (1, 2), (2, 3)])
        paths = game.tree_state_to_paths(st)
        assert len(paths) == 2
