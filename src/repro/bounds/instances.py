"""Lower-bound instance families (Theorems 11 and 21).

Both families come with closed-form optimal-subsidy formulas derived exactly
as in the paper's proofs; the test suite cross-checks these formulas against
the generic LP / branch-and-bound solvers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

from repro.bounds.harmonic import harmonic
from repro.graphs.graph import Graph
from repro.games.broadcast import BroadcastGame, TreeState


# ---------------------------------------------------------------------------
# Theorem 11 — unit cycle: fractional subsidies need ~ wgt(T)/e
# ---------------------------------------------------------------------------


def theorem11_cycle_instance(n: int) -> Tuple[BroadcastGame, TreeState]:
    """The Theorem 11 instance: a unit-weight cycle on ``n + 1`` nodes.

    Nodes are ``0..n`` with root ``0``; the target state ``T`` is the path
    ``0-1-...-n`` (a minimum spanning tree), leaving the cycle-closing edge
    ``(n, 0)`` as the tempting deviation for the player at node ``n``.
    """
    if n < 2:
        raise ValueError("need n >= 2 players")
    g = Graph()
    for i in range(n):
        g.add_edge(i, i + 1, 1.0)
    g.add_edge(n, 0, 1.0)
    game = BroadcastGame(g, root=0)
    state = game.tree_state([(i, i + 1) for i in range(n)])
    return game, state


def theorem11_optimal_fraction(n: int) -> float:
    """Closed-form optimal *fractional* subsidy cost / wgt(T) for the cycle.

    The single binding constraint is the far player's deviation to the
    cycle-closing unit edge: ``sum_i (1 - b_i) / (n - i + 1) <= 1``.  Packing
    subsidies on the least-crowded edges (the paper's Theorem 11 argument)
    gives: fully subsidize the edges with loads ``1..k`` where ``k`` is the
    largest integer with ``H_n - H_k >= 1``, then a fractional top-up on the
    load-``k+1`` edge.  Total: ``k + (k+1) * (H_n - H_k - 1)``.
    """
    if n < 2:
        raise ValueError("need n >= 2")
    if harmonic(n) <= 1.0:  # pragma: no cover - n >= 2 always has H_n > 1
        return 0.0
    k = 0
    while harmonic(n) - harmonic(k + 1) >= 1.0:
        k += 1
    residual = harmonic(n) - harmonic(k) - 1.0
    total = k + (k + 1) * max(0.0, residual)
    return total / float(n)


# ---------------------------------------------------------------------------
# Theorem 21 — path with shortcuts: all-or-nothing needs ~ e/(2e-1)
# ---------------------------------------------------------------------------


@dataclass
class Theorem21Analysis:
    """Closed-form accounting of the two all-or-nothing strategies."""

    x: float
    tree_weight: float
    #: cost of subsidizing every light path edge (heavy edge unsubsidized)
    cost_all_light: float
    #: cost of subsidizing the heavy edge plus k light edges
    cost_heavy_plus_k: float
    k: int

    @property
    def optimal_cost(self) -> float:
        return min(self.cost_all_light, self.cost_heavy_plus_k)

    @property
    def optimal_fraction(self) -> float:
        return self.optimal_cost / self.tree_weight


def theorem21_path_instance(n: int) -> Tuple[BroadcastGame, TreeState]:
    """The Theorem 21 instance on nodes ``0..n`` (root ``0``).

    Tree path ``0-1-...-n``; edges ``(i, i+1)`` for ``i < n-1`` have weight
    ``x = 1 / (n - n/e + 1)``, the last edge ``(n-1, n)`` weight 1.  Shortcut
    edges: ``(0, n-1)`` of weight ``x`` and ``(0, n)`` of weight 1.
    """
    if n < 4:
        raise ValueError("need n >= 4")
    x = 1.0 / (n - n / math.e + 1.0)
    g = Graph()
    for i in range(n - 1):
        g.add_edge(i, i + 1, x)
    g.add_edge(n - 1, n, 1.0)
    g.add_edge(0, n - 1, x)
    g.add_edge(0, n, 1.0)
    game = BroadcastGame(g, root=0)
    state = game.tree_state([(i, i + 1) for i in range(n)])
    return game, state


def theorem21_analysis(n: int) -> Theorem21Analysis:
    """Exact costs of the two candidate all-or-nothing assignments.

    * Leave the heavy edge alone: the player at ``n`` must then prefer her
      path over the direct unit edge, which forces subsidies on **all**
      ``n - 1`` light path edges — cost ``(n-1) x``.
    * Subsidize the heavy edge (cost 1): the player at ``n-1`` must prefer
      her light path (loads ``2..n``) over the direct ``x`` edge, requiring
      the ``k`` least-crowded light edges where ``k`` is minimal with
      ``H_n - H_{k+1} <= 1`` — cost ``1 + k x``.
    """
    if n < 4:
        raise ValueError("need n >= 4")
    x = 1.0 / (n - n / math.e + 1.0)
    tree_weight = (n - 1) * x + 1.0
    k = 0
    while harmonic(n) - harmonic(k + 1) > 1.0:
        k += 1
    return Theorem21Analysis(
        x=x,
        tree_weight=tree_weight,
        cost_all_light=(n - 1) * x,
        cost_heavy_plus_k=1.0 + k * x,
        k=k,
    )


def theorem21_fraction_limit() -> float:
    """The asymptote ``e / (2e - 1) ~ 0.6127`` of the optimal fraction."""
    return math.e / (2.0 * math.e - 1.0)
