"""Experiment registry and drivers (ids match DESIGN.md / EXPERIMENTS.md)."""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.experiments.records import ExperimentResult
from repro.experiments import (
    exp_ablation,
    exp_aon_lower_bound,
    exp_binpacking,
    exp_bypass,
    exp_extensions,
    exp_independent_set,
    exp_lower_bound_cycle,
    exp_lp_agreement,
    exp_pos_potential,
    exp_sat_reduction,
    exp_snd,
    exp_theorem6,
    exp_virtual_cost,
)

#: experiment id -> run(seed=...) callable
EXPERIMENTS: Dict[str, Callable[..., ExperimentResult]] = {
    "E1": exp_lp_agreement.run,
    "E2": exp_theorem6.run,
    "E3": exp_lower_bound_cycle.run,
    "E4": exp_aon_lower_bound.run,
    "E5": exp_bypass.run,
    "E6": exp_binpacking.run,
    "E7": exp_independent_set.run,
    "E8": exp_sat_reduction.run,
    "E9": exp_pos_potential.run,
    "E10": exp_virtual_cost.run,
    "E11": exp_snd.run,
    "A1": exp_ablation.run,
    "A2": exp_extensions.run,
}


def run_experiment(experiment_id: str, seed: int = 0) -> ExperimentResult:
    """Run one experiment by id (raises KeyError for unknown ids)."""
    key = experiment_id.upper()
    if key not in EXPERIMENTS:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; known: {', '.join(EXPERIMENTS)}"
        )
    return EXPERIMENTS[key](seed=seed)


def run_all(seed: int = 0) -> List[ExperimentResult]:
    """Run every experiment in id order."""
    return [EXPERIMENTS[k](seed=seed) for k in EXPERIMENTS]
