"""E11 benchmark — STABLE NETWORK DESIGN solvers under a budget."""

import pytest

from repro.games.broadcast import BroadcastGame
from repro.graphs.generators import random_tree_plus_chords
from repro.subsidies import snd_heuristic, solve_snd_exact


@pytest.fixture(scope="module")
def game():
    g = random_tree_plus_chords(7, 3, seed=19, chord_factor=1.05)
    return BroadcastGame(g, root=0)


@pytest.mark.parametrize("budget_frac", [0.0, 0.2])
def test_exact_snd(benchmark, game, budget_frac):
    budget = budget_frac * game.mst_weight()
    res = benchmark(solve_snd_exact, game, budget)
    assert res is not None
    assert res.subsidy_cost <= budget + 1e-6
    assert res.weight >= game.mst_weight() - 1e-9


def test_heuristic_snd(benchmark, game):
    budget = 0.2 * game.mst_weight()
    exact = solve_snd_exact(game, budget)
    res = benchmark(snd_heuristic, game, budget)
    assert res.weight >= exact.weight - 1e-9
