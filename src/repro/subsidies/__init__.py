"""The paper's contribution: STABLE NETWORK ENFORCEMENT and STABLE NETWORK
DESIGN solvers.

* :mod:`repro.subsidies.assignment` — validated subsidy assignments.
* :mod:`repro.subsidies.sne_lp` — Theorem 1: LP (1) via cutting planes with
  the shortest-path separation oracle, the polynomial LP (2), and the simple
  broadcast LP (3) (Lemma 2).
* :mod:`repro.subsidies.virtual_cost` — the virtual cost function of Lemma 7
  / Claims 8 and 10 (and Figure 4).
* :mod:`repro.subsidies.theorem6` — the constructive ``wgt(T)/e`` algorithm.
* :mod:`repro.subsidies.aon` — all-or-nothing SNE: exact branch & bound and
  the least-crowded greedy heuristic (Section 5).
* :mod:`repro.subsidies.snd` — SND: exact small-instance solver and
  budgeted heuristics (Section 3 problem statement).

.. deprecated:: 1.1
    The per-solver entry points below remain as thin compatibility shims;
    new code should go through the unified registry facade instead:
    ``repro.api.solve(game_or_state, solver=name)`` with the names listed
    by ``repro.api.list_solvers()`` (``"sne-lp3"``, ``"sne-poly"``,
    ``"sne-cutting-plane"``, ``"theorem6"``, ``"aon-exact"``,
    ``"aon-greedy"``, ``"snd-exact"``, ``"snd-local-search"``,
    ``"combinatorial"``).
"""

from repro.subsidies.approx import (
    AnytimeLog,
    ApproxSNEResult,
    GapCertificate,
    IndexedApproxResult,
    lagrangian_lower_bound,
    solve_sne_greedy,
    solve_sne_greedy_indexed,
    solve_sne_primal_dual,
)
from repro.subsidies.assignment import SubsidyAssignment
from repro.subsidies.sne_lp import (
    SNEResult,
    solve_sne,
    solve_sne_broadcast_lp3,
    solve_sne_cutting_plane_lp1,
    solve_sne_polynomial_lp2,
)
from repro.subsidies.virtual_cost import (
    edge_virtual_cost,
    pack_subsidies_on_path,
    path_virtual_cost,
)
from repro.subsidies.theorem6 import Theorem6Result, theorem6_subsidies
from repro.subsidies.aon import AONResult, greedy_aon_sne, solve_aon_sne_exact
from repro.subsidies.snd import SNDResult, snd_heuristic, solve_snd_exact
from repro.subsidies.combinatorial import (
    CombinatorialSNEResult,
    combinatorial_sne,
    waterfill_player,
)

__all__ = [
    "AnytimeLog",
    "ApproxSNEResult",
    "GapCertificate",
    "IndexedApproxResult",
    "lagrangian_lower_bound",
    "solve_sne_greedy",
    "solve_sne_greedy_indexed",
    "solve_sne_primal_dual",
    "SubsidyAssignment",
    "SNEResult",
    "solve_sne",
    "solve_sne_broadcast_lp3",
    "solve_sne_cutting_plane_lp1",
    "solve_sne_polynomial_lp2",
    "edge_virtual_cost",
    "path_virtual_cost",
    "pack_subsidies_on_path",
    "Theorem6Result",
    "theorem6_subsidies",
    "AONResult",
    "greedy_aon_sne",
    "solve_aon_sne_exact",
    "SNDResult",
    "snd_heuristic",
    "solve_snd_exact",
    "CombinatorialSNEResult",
    "combinatorial_sne",
    "waterfill_player",
]
