"""Transport-independent core of the solver daemon.

:class:`SolverService` is everything the daemon does minus HTTP: it can be
driven directly from tests (no sockets), from the stdlib HTTP front end
(:mod:`repro.serve.app`), or from any future transport.  One request flows
through four layers, cheapest first:

1. **result cache** — the request's content address
   (:func:`repro.runtime.cache.solve_job_key`, the *same* key the sweep
   runtime uses) is looked up in the shared
   :class:`~repro.runtime.cache.ResultCache`; a hit short-circuits solving
   entirely, and daemon solves conversely pre-warm later sweeps;
2. **coalescing** — concurrent identical requests collapse into one solve
   (:class:`~repro.serve.coalesce.Coalescer`): one engine scan through the
   batched separation oracle serves the whole group;
3. **instance interning** — the payload digest indexes an LRU of live game
   objects (:class:`InstanceLRU`); a warm instance carries its cached
   :class:`~repro.games.engine.BestResponseEngine` (interned CSR arrays)
   and state bindings, so repeat traffic skips graph indexing and binding
   translation;
4. **solve** — :func:`repro.api.solve` through the ordinary registry.

Admission control (:class:`AdmissionControl`) bounds the work the daemon
accepts: at most ``workers`` solves run concurrently, at most ``queue``
more may wait, and anything beyond that is rejected up front (the HTTP
layer renders the rejection as ``429 Retry-After``) instead of building an
unbounded backlog.

Responses are canonical: the report JSON with the wall clock zeroed
(:func:`repro.api.serialize.canonical_report_json`), byte-identical to
``repro-experiments solve --json --canonical`` for the same instance.
"""

from __future__ import annotations

import json
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro import __version__, api
from repro.lp import list_backends
from repro.runtime.cache import AnyCache, coerce_cache, solve_job_key
from repro.serve.coalesce import Coalescer
from repro.utils.hashing import UnhashablePayloadError, stable_hash

JSONDict = Dict[str, Any]


class ServeRequestError(ValueError):
    """A malformed or unserviceable request (maps to an HTTP 4xx)."""

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status


class Saturated(RuntimeError):
    """The daemon is at capacity (maps to HTTP 429 + Retry-After)."""


@dataclass
class ServeConfig:
    """Daemon knobs (the ``repro-experiments serve`` flags).

    ``cache`` follows the repo-wide convention of
    :func:`repro.runtime.cache.coerce_cache`: ``None`` selects the default
    directory (``$REPRO_CACHE_DIR``, then ``$XDG_CACHE_HOME/repro``, then
    ``~/.cache/repro``), a path selects that directory, ``False`` disables
    the response store entirely.
    """

    #: max solves running concurrently (worker slots)
    workers: int = 4
    #: max additional requests allowed to wait for a worker slot; beyond
    #: ``workers + queue`` in flight, new solve requests are rejected
    queue: int = 16
    #: seconds a coalescing leader lingers before solving so identical
    #: requests can join its flight (0 = pure single-flight dedup)
    batch_window: float = 0.0
    #: interned live instances kept resident (graphs + engines + bindings)
    lru_size: int = 128
    #: response store (shared with the sweep runtime's result cache)
    cache: Union[AnyCache, str, Path, bool, None] = None

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.queue < 0:
            raise ValueError(f"queue must be >= 0, got {self.queue}")
        if self.lru_size < 1:
            raise ValueError(f"lru_size must be >= 1, got {self.lru_size}")
        if self.batch_window < 0:
            raise ValueError(f"batch_window must be >= 0, got {self.batch_window}")


class InstanceLRU:
    """Digest-keyed LRU of live, interned game instances.

    Two logically-equal payloads (key order, whitespace, provenance all
    irrelevant — :func:`~repro.utils.hashing.stable_hash` canonicalizes)
    intern to the *same* live object, so every request for an instance the
    daemon has seen recently reuses the graph's cached engine and binding
    state instead of re-deserializing and re-indexing from cold.
    """

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, Any]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def intern(self, payload: JSONDict) -> Tuple[str, Any]:
        """``(digest, game)`` for a serialized instance, warm when possible."""
        digest = stable_hash(payload)
        with self._lock:
            game = self._entries.get(digest)
            if game is not None:
                self._entries.move_to_end(digest)
                self.hits += 1
                return digest, game
        # Deserialize outside the lock: interning must not serialize the
        # daemon's solve threads behind one slow graph build.
        game = api.serialize.game_from_json(payload)
        with self._lock:
            existing = self._entries.get(digest)
            if existing is not None:  # a racing thread interned it first
                self._entries.move_to_end(digest)
                self.hits += 1
                return digest, existing
            self.misses += 1
            self._entries[digest] = game
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1
        return digest, game

    def stats(self) -> JSONDict:
        with self._lock:
            return {
                "capacity": self.capacity,
                "resident": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }


class AdmissionControl:
    """Bounds in-flight solve requests; rejects instead of queueing forever.

    ``capacity = workers + queue``: at most ``workers`` requests hold a
    worker slot at once (the semaphore), the next ``queue`` wait their
    turn, and anything beyond is refused immediately — a saturated daemon
    answers "try again" in microseconds rather than timing clients out.
    """

    def __init__(self, workers: int, queue: int):
        self.workers = workers
        self.capacity = workers + queue
        self._slots = threading.BoundedSemaphore(workers)
        self._lock = threading.Lock()
        self._inflight = 0
        self.rejected = 0

    @property
    def inflight(self) -> int:
        return self._inflight

    def admit(self) -> None:
        """Claim an admission ticket or raise :class:`Saturated`."""
        with self._lock:
            if self._inflight >= self.capacity:
                self.rejected += 1
                raise Saturated(
                    f"{self._inflight} requests in flight >= capacity "
                    f"{self.capacity} (workers={self.workers})"
                )
            self._inflight += 1

    def release(self) -> None:
        with self._lock:
            self._inflight -= 1

    def worker_slot(self) -> threading.BoundedSemaphore:
        """The semaphore actually serializing solve work."""
        return self._slots

    def stats(self) -> JSONDict:
        with self._lock:
            return {
                "workers": self.workers,
                "capacity": self.capacity,
                "inflight": self._inflight,
                "rejected": self.rejected,
            }


class _Counters:
    """Lock-protected monotone counters for ``/stats``."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._values: Dict[str, int] = {}

    def bump(self, name: str, by: int = 1) -> None:
        with self._lock:
            self._values[name] = self._values.get(name, 0) + by

    def as_dict(self) -> Dict[str, int]:
        with self._lock:
            return dict(sorted(self._values.items()))


def _request_field(data: JSONDict, name: str, kind: type, required: bool = True) -> Any:
    value = data.get(name)
    if value is None:
        if required:
            raise ServeRequestError(400, f"request is missing {name!r}")
        return None
    if not isinstance(value, kind):
        raise ServeRequestError(
            400, f"{name!r} must be a {kind.__name__}, got {type(value).__name__}"
        )
    return value


class SolverService:
    """The daemon's brain: caching, interning, coalescing, solving.

    Stateless transports (HTTP, tests) call the ``*_json`` methods, each
    returning the exact response body bytes; request problems raise
    :class:`ServeRequestError` (status + message), saturation raises
    :class:`Saturated`.
    """

    def __init__(self, config: Optional[ServeConfig] = None):
        self.config = config or ServeConfig()
        self.cache: AnyCache = coerce_cache(self.config.cache)
        self.instances = InstanceLRU(self.config.lru_size)
        self.admission = AdmissionControl(self.config.workers, self.config.queue)
        self.coalescer = Coalescer()
        self.counters = _Counters()
        self.started_at = time.time()

    # -- request plumbing ---------------------------------------------------

    def _solve_request(self, data: JSONDict) -> Tuple[JSONDict, str, JSONDict]:
        instance = _request_field(data, "instance", dict)
        solver = _request_field(data, "solver", str)
        opts = _request_field(data, "opts", dict, required=False) or {}
        return instance, solver, opts

    def _solve_one(self, instance: JSONDict, solver: str, opts: JSONDict) -> JSONDict:
        """One solve through cache -> coalescer -> LRU -> registry.

        Returns the *canonical* report JSON (wall clock zeroed).
        """
        try:
            spec = api.get_solver(solver)
        except api.UnknownSolverError as exc:
            raise ServeRequestError(400, str(exc)) from None
        try:
            key: Optional[str] = solve_job_key(instance, spec.name, spec.version, opts)
        except UnhashablePayloadError as exc:
            raise ServeRequestError(400, f"options are not cacheable JSON: {exc}") from None

        entry = self.cache.get(key)
        if entry is not None and entry.get("status") == "ok":
            self.counters.bump("result_cache_hits")
            return api.serialize.canonical_report_json(entry["report"])
        self.counters.bump("result_cache_misses")

        def compute() -> JSONDict:
            _digest, game = self.instances.intern(instance)
            with self.admission.worker_slot():
                start = time.perf_counter()
                try:
                    report = api.solve(game, spec.name, **opts)
                except (ValueError, TypeError) as exc:
                    # Bad options / instance-solver mismatch: the caller's
                    # fault, not the daemon's.
                    raise ServeRequestError(400, f"{type(exc).__name__}: {exc}") from exc
                elapsed = time.perf_counter() - start
            self.counters.bump("solves")
            self._bump_report_counters(report.metadata)
            payload = api.serialize.report_to_json(report)
            try:
                # Same entry shape as SweepRunner.run stores, so the daemon
                # and the sweep runtime share one response store.
                self.cache.put(
                    key,
                    {
                        "kind": "solve-entry",
                        "key": key,
                        "status": "ok",
                        "solver": spec.name,
                        "report": payload,
                        "elapsed_seconds": elapsed,
                        "created_at": time.time(),
                    },
                )
            except OSError:
                pass  # unwritable cache degrades to uncached, not a crash
            return api.serialize.canonical_report_json(payload)

        result, joined = self.coalescer.run(key, compute, self.config.batch_window)
        if joined:
            self.counters.bump("coalesced_joins")
        return result

    def _bump_report_counters(self, metadata: Optional[JSONDict]) -> None:
        """Fold a report's engine profile / anytime log into ``/stats``.

        Solvers that ran the best-response engine attach an ``OracleStats``
        delta as ``metadata["profile"]``; the anytime solvers attach their
        ``(round, ub, lb)`` trajectory as ``metadata["anytime"]``.  Both
        aggregate into monotone daemon-wide counters (``engine_*`` /
        ``anytime_*``) surfaced as sections of ``GET /stats``.
        """
        meta = metadata or {}
        profile = meta.get("profile")
        if isinstance(profile, dict):
            for name, value in profile.items():
                if isinstance(value, int) and not isinstance(value, bool):
                    self.counters.bump(f"engine_{name}", value)
        anytime = meta.get("anytime")
        if isinstance(anytime, dict):
            self.counters.bump("anytime_solves")
            iterates = anytime.get("iterates")
            if isinstance(iterates, list):
                self.counters.bump("anytime_iterates", len(iterates))
            stopped = anytime.get("stopped")
            if isinstance(stopped, str):
                self.counters.bump(f"anytime_stopped_{stopped.replace('-', '_')}")
        backend = meta.get("backend")
        if isinstance(backend, str) and backend:
            self.counters.bump(f"backend_{backend.replace('-', '_')}")
        if "exact_certificate" in meta:
            self.counters.bump("certified_solves")

    # -- endpoint bodies ----------------------------------------------------

    @staticmethod
    def _body(payload: Any) -> bytes:
        """Render a response exactly like ``cli.py``'s ``--json`` output."""
        return (json.dumps(payload, indent=2) + "\n").encode("utf-8")

    def solve_json(self, data: JSONDict) -> bytes:
        """``POST /solve`` body: one canonical report."""
        instance, solver, opts = self._solve_request(data)
        return self._body(self._solve_one(instance, solver, opts))

    def solve_batch_json(self, data: JSONDict) -> bytes:
        """``POST /solve-batch`` body: ``grid[i][j]`` = solver j on instance i.

        Matches ``repro-experiments solve-batch --json --canonical`` byte
        for byte.  Cells run sequentially inside this request (the request
        already holds an admission ticket); each cell still passes through
        the cache and coalescer, so concurrent batches share work.
        """
        instances = data.get("instances")
        if isinstance(instances, dict) and instances.get("kind") == "instance-set":
            instances = instances["instances"]
        if not isinstance(instances, list) or not instances:
            raise ServeRequestError(
                400, "'instances' must be a non-empty list or an instance-set payload"
            )
        solvers = data.get("solvers")
        if isinstance(solvers, str):
            solvers = [solvers]
        if not isinstance(solvers, list) or not solvers:
            raise ServeRequestError(400, "'solvers' must be a non-empty list")
        opts = _request_field(data, "opts", dict, required=False) or {}
        grid: List[List[JSONDict]] = []
        for instance in instances:
            if not isinstance(instance, dict):
                raise ServeRequestError(400, "each instance must be a game JSON object")
            grid.append([self._solve_one(instance, name, opts) for name in solvers])
        return self._body(grid)

    def sweep_json(self, data: JSONDict) -> bytes:
        """``POST /sweep`` body: the deterministic sweep-result JSON.

        Runs the grid through the ordinary :class:`~repro.runtime.runner.
        SweepRunner` *inline* (``jobs=1`` — the daemon's parallelism is
        across requests, not within one), sharing the daemon's result
        cache; the body is byte-identical to the file ``repro-experiments
        sweep --json-out`` writes for the same spec.
        """
        from repro.runtime import SweepRunner, SweepSpec

        spec_data = _request_field(data, "spec", dict)
        try:
            spec = SweepSpec.from_mapping(spec_data)
            jobs = spec.expand()
        except (ValueError, TypeError, KeyError) as exc:
            raise ServeRequestError(400, f"bad sweep spec: {exc}") from None
        with self.admission.worker_slot():
            result = SweepRunner(jobs=1, cache=self.cache).run(jobs)
        self.counters.bump("sweep_jobs", len(jobs))
        self.counters.bump("sweep_cache_hits", result.cache_hits)
        return (
            json.dumps(result.to_json(), indent=2, sort_keys=True) + "\n"
        ).encode("utf-8")

    def solvers_json(self) -> bytes:
        """``GET /solvers``: the registry, JSON-shaped."""
        rows = [
            {
                "name": spec.name,
                "problem": spec.problem,
                "exact": spec.exact,
                "broadcast_only": spec.broadcast_only,
                "requires_tree_state": spec.requires_tree_state,
                "version": spec.version,
                "aliases": list(spec.aliases),
                "description": spec.description,
            }
            for spec in api.list_solvers()
        ]
        return self._body({"kind": "solver-list", "solvers": rows})

    def families_json(self) -> bytes:
        """``GET /families``: scenario families + game families."""
        from repro.games.base import describe_families
        from repro.scenarios import SCENARIOS, scenario_names

        scenarios = [
            {
                "name": name,
                "stochastic": SCENARIOS[name].stochastic,
                "description": SCENARIOS[name].description,
                "params": dict(SCENARIOS[name].params),
            }
            for name in scenario_names()
        ]
        return self._body(
            {
                "kind": "family-list",
                "scenarios": scenarios,
                "games": describe_families(),
            }
        )

    def health_json(self) -> bytes:
        return self._body({"status": "ok", "version": __version__})

    def version_json(self) -> bytes:
        return self._body({"version": __version__})

    def stats_json(self) -> bytes:
        """``GET /stats``: counters, LRU occupancy, admission, engine work."""
        root = getattr(self.cache, "root", None)
        counters = self.counters.as_dict()
        engine = {
            name[len("engine_"):]: value
            for name, value in counters.items()
            if name.startswith("engine_")
        }
        anytime = {
            name[len("anytime_"):]: value
            for name, value in counters.items()
            if name.startswith("anytime_")
        }
        backends = {
            "registry": [
                {
                    "name": spec.name,
                    "aliases": list(spec.aliases),
                    "available": spec.available,
                    **spec.capabilities(),
                }
                for spec in list_backends()
            ],
            # solves routed through each LP backend (from report metadata)
            "usage": {
                name[len("backend_"):]: value
                for name, value in counters.items()
                if name.startswith("backend_")
            },
            "certified_solves": counters.get("certified_solves", 0),
        }
        return self._body(
            {
                "kind": "serve-stats",
                "version": __version__,
                "uptime_seconds": time.time() - self.started_at,
                "counters": counters,
                "engine": engine,
                "anytime": anytime,
                "backends": backends,
                "result_cache": {
                    "root": str(root) if root else None,
                    "hits": counters.get("result_cache_hits", 0),
                    "misses": counters.get("result_cache_misses", 0),
                },
                "instances": self.instances.stats(),
                "admission": self.admission.stats(),
                "coalescer": {"open_flights": self.coalescer.inflight()},
                "config": {
                    "workers": self.config.workers,
                    "queue": self.config.queue,
                    "batch_window": self.config.batch_window,
                    "lru_size": self.config.lru_size,
                },
            }
        )
