"""Spanning tree enumeration and counting.

Exact price-of-stability computations (and the Theorem 3/5 reduction checks)
need *all* spanning trees of small graphs.  Enumeration uses include/exclude
backtracking with connectivity pruning; counting uses the Matrix-Tree theorem
so tests can cross-check the enumerator against a determinant.

The backtracking runs entirely over interned int ids
(:class:`~repro.graphs.core.IndexedGraph` + array union-find); only the
yielded trees are converted back to canonical label edges, in the same fixed
edge order the dict-based implementation used.
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

import numpy as np

from repro.graphs.core import IndexedGraph, IntUnionFind
from repro.graphs.graph import Edge, Graph
from repro.graphs.mst import kruskal_mst


def count_spanning_trees(graph: Graph) -> int:
    """Number of spanning trees via Kirchhoff's Matrix-Tree theorem.

    Uses an unweighted Laplacian minor determinant (LU via numpy).  Exact for
    counts comfortably below 2^52; plenty for test-sized graphs.
    """
    ig = graph.to_indexed()
    n = ig.num_nodes
    if n <= 1:
        return 1
    if not graph.is_connected():
        return 0
    lap = np.zeros((n, n))
    eu, ev = ig.edge_u, ig.edge_v
    np.add.at(lap, (eu, eu), 1.0)
    np.add.at(lap, (ev, ev), 1.0)
    np.add.at(lap, (eu, ev), -1.0)
    np.add.at(lap, (ev, eu), -1.0)
    minor = lap[1:, 1:]
    sign, logdet = np.linalg.slogdet(minor)
    if sign <= 0:
        return 0
    return int(round(float(np.exp(logdet))))


def _remaining_connects(n: int, id_pairs: List[Tuple[int, int]]) -> bool:
    """Can all ``n`` nodes still be spanned using only the given id pairs?"""
    uf = IntUnionFind(n)
    for u, v in id_pairs:
        uf.union(u, v)
    return uf.n_components == 1


def _id_pairs(ig: IndexedGraph) -> List[Tuple[int, int]]:
    return list(zip(ig.edge_u.tolist(), ig.edge_v.tolist()))


def enumerate_spanning_trees(graph: Graph, limit: int | None = None) -> Iterator[List[Edge]]:
    """Yield every spanning tree of ``graph`` as a canonical edge list.

    Classic include/exclude backtracking over a fixed edge order:

    * include edge i only when it does not close a cycle with the current
      partial forest;
    * exclude edge i only when the remaining edges can still span the graph.

    Both prunings together make the search tree proportional to the number of
    spanning trees (times m for the connectivity check).  ``limit`` caps the
    number of trees yielded.
    """
    ig = graph.to_indexed()
    n = ig.num_nodes
    if n == 0:
        return
    pairs = _id_pairs(ig)
    edge_labels = ig.edge_labels
    m = len(pairs)
    produced = 0

    def backtrack(idx: int, chosen: List[int]) -> Iterator[List[Edge]]:
        nonlocal produced
        if limit is not None and produced >= limit:
            return
        if len(chosen) == n - 1:
            produced += 1
            yield [edge_labels[i] for i in chosen]
            return
        if idx == m:
            return
        # Rebuild a union-find for the current partial forest.  Partial
        # forests are tiny (< n edges) so this stays cheap relative to the
        # exponential number of trees enumerated.
        uf = IntUnionFind(n)
        for i in chosen:
            uf.union(*pairs[i])
        u, v = pairs[idx]
        # Branch 1: include the edge when it joins two components.
        if not uf.connected(u, v):
            chosen.append(idx)
            yield from backtrack(idx + 1, chosen)
            chosen.pop()
        # Branch 2: exclude the edge when the rest can still span.
        allowed = [pairs[i] for i in chosen] + pairs[idx + 1 :]
        if _remaining_connects(n, allowed):
            yield from backtrack(idx + 1, chosen)

    yield from backtrack(0, [])


def enumerate_minimum_spanning_trees(
    graph: Graph, tol: float = 1e-9, limit: int | None = None
) -> Iterator[List[Edge]]:
    """Yield every *minimum* spanning tree.

    The Theorem 3 reduction produces graphs with exponentially many spanning
    trees but asks only about minimum ones, so we restrict the include/exclude
    search to edges that can appear in some MST: an edge may be included only
    when the partial tree weight still extends to the optimum.
    """
    best = graph.subset_weight(kruskal_mst(graph))
    count = 0
    for tree in _enumerate_weight_bounded(graph, best + tol * max(1.0, best)):
        yield tree
        count += 1
        if limit is not None and count >= limit:
            return


def _enumerate_weight_bounded(graph: Graph, budget: float) -> Iterator[List[Edge]]:
    """All spanning trees of total weight <= budget (branch and bound)."""
    ig = graph.to_indexed()
    n = ig.num_nodes
    if n == 0:
        return
    order = np.argsort(ig.edge_weights, kind="stable").tolist()
    pairs_all = _id_pairs(ig)
    pairs = [pairs_all[i] for i in order]
    weights = [float(ig.edge_weights[i]) for i in order]
    edge_labels = [ig.edge_labels[i] for i in order]
    m = len(pairs)

    def mst_completion_bound(chosen: List[int], idx: int) -> float:
        """Weight of the cheapest completion using edges[idx:] (Kruskal-style)."""
        uf = IntUnionFind(n)
        total = 0.0
        for i in chosen:
            uf.union(*pairs[i])
            total += weights[i]
        for k in range(idx, m):
            if uf.union(*pairs[k]):
                total += weights[k]
        if uf.n_components != 1:
            return float("inf")
        return total

    def backtrack(idx: int, chosen: List[int]) -> Iterator[List[Edge]]:
        if len(chosen) == n - 1:
            yield [edge_labels[i] for i in chosen]
            return
        if idx == m:
            return
        if mst_completion_bound(chosen, idx) > budget:
            return
        uf = IntUnionFind(n)
        for i in chosen:
            uf.union(*pairs[i])
        u, v = pairs[idx]
        if not uf.connected(u, v):
            chosen.append(idx)
            yield from backtrack(idx + 1, chosen)
            chosen.pop()
        allowed = [pairs[i] for i in chosen] + pairs[idx + 1 :]
        if _remaining_connects(n, allowed):
            yield from backtrack(idx + 1, chosen)

    yield from backtrack(0, [])
