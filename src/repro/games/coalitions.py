"""Coalitional deviations (strong equilibria) — the paper's §6 direction.

A coalition ``S`` has a profitable joint deviation from state ``T`` when
there are new strategies for all members making *every* member strictly
better off (others fixed).  A state immune to coalitions of size ≤ k is a
k-strong equilibrium; k = 1 recovers the Nash condition.

Checking is NP-hard in general; this module is exact on small instances:
singleton coalitions run on the vectorized
:class:`~repro.games.engine.BestResponseEngine` (the same binding that
powers ``check_equilibrium``, so k = 1 is exact over *all* deviations,
not just an enumerated sample), and larger coalitions enumerate bounded
joint path combinations.  Costs go through the game's
:class:`~repro.games.base.CostSharingRule`, so general, weighted
(demand-proportional / per-edge split) and directed states are all
supported — directed candidate paths are filtered to arc-respecting walks.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations, product
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.graphs.graph import Edge, Node
from repro.graphs.paths import enumerate_simple_paths
from repro.games.game import State, Subsidies, _path_nodes_to_edges
from repro.games.weighted import WeightedState
from repro.utils.tolerances import EQ_TOL, is_improvement

AnyPathState = Union[State, WeightedState]


@dataclass
class CoalitionDeviation:
    """A profitable joint move: members, their new paths, cost changes."""

    members: Tuple[int, ...]
    new_paths: List[List[Node]]
    old_costs: List[float]
    new_costs: List[float]

    @property
    def gains(self) -> List[float]:
        return [o - n for o, n in zip(self.old_costs, self.new_costs)]


@dataclass
class StrongEquilibriumReport:
    is_strong_equilibrium: bool
    max_coalition_checked: int
    deviation: Optional[CoalitionDeviation] = None
    coalitions_checked: int = 0


def _joint_costs(
    state: AnyPathState,
    members: Sequence[int],
    new_edge_paths: Sequence[Tuple[Edge, ...]],
    subsidies: Optional[Subsidies],
) -> List[float]:
    """Member costs after the coalition jointly switches paths.

    Loads are updated through the game's cost-sharing rule — fair states
    keep their integer usage counts, weighted/per-edge states their
    contribution sums.
    """
    game = state.game
    rule = game.cost_sharing
    load: Dict[Edge, float] = dict(getattr(state, "load", None) or state.usage)
    for i in members:
        for e in state.edge_paths[i]:
            load[e] -= rule.weight_on(i, e)
    for i, edges in zip(members, new_edge_paths):
        for e in edges:
            load[e] = load.get(e, 0) + rule.weight_on(i, e)
    costs = []
    for i, edges in zip(members, new_edge_paths):
        total = 0.0
        for e in edges:
            w = game.graph.weight(*e)
            b = subsidies.get(e, 0.0) if subsidies else 0.0
            total += rule.weight_on(i, e) * max(0.0, w - b) / load[e]
        costs.append(total)
    return costs


def _singleton_scan(
    state: AnyPathState, subsidies: Optional[Subsidies], tol: float
) -> Tuple[Optional[CoalitionDeviation], int]:
    """Exact k = 1 pass on the engine; returns (deviation, players scanned)."""
    from repro.games.engine import BestResponseEngine

    engine = BestResponseEngine.for_graph(state.game.graph)
    binding = engine.bind(state)
    wb = engine.net_weights(engine.subsidy_vector(subsidies))
    recs = binding.scan(wb, tol=tol)
    n = len(binding.player_keys)
    if not recs:
        return None, n
    rec = recs[0]
    labels = engine.ig.labels
    deviation = CoalitionDeviation(
        members=(rec.position,),
        new_paths=[[labels[i] for i in rec.node_ids]],
        old_costs=[rec.current_cost],
        new_costs=[rec.deviation_cost],
    )
    return deviation, rec.position + 1  # coalitions checked before the hit


def check_strong_equilibrium(
    state: AnyPathState,
    max_coalition: int = 2,
    subsidies: Optional[Subsidies] = None,
    tol: float = EQ_TOL,
    max_paths_per_player: int = 200,
) -> StrongEquilibriumReport:
    """Exact k-strong equilibrium check.

    Singleton coalitions run on the engine (exact over all deviations);
    every coalition of size 2..``max_coalition`` is tested against every
    combination of ≤ ``max_paths_per_player`` simple paths per member.
    Exponential — use on small instances (that is where the interesting
    examples live; see ``exp_extensions``).  Accepts any path-profile
    state: general, weighted (rule-priced) or directed (candidate paths
    are restricted to arc-respecting walks).
    """
    game = state.game
    checked = 0

    if max_coalition >= 1:
        deviation, scanned = _singleton_scan(state, subsidies, tol)
        checked += scanned
        if deviation is not None:
            return StrongEquilibriumReport(False, max_coalition, deviation, checked)

    path_allowed = getattr(game, "path_allowed", None)
    candidate_paths: Dict[int, List[Tuple[Edge, ...]]] = {}
    node_paths: Dict[int, List[List[Node]]] = {}
    if max_coalition >= 2:
        for i, p in enumerate(game.players):
            node_paths[i] = [
                nodes
                for nodes in enumerate_simple_paths(
                    game.graph, p.source, p.target, max_paths=max_paths_per_player
                )
                if path_allowed is None or path_allowed(nodes)
            ]
            candidate_paths[i] = [_path_nodes_to_edges(nodes) for nodes in node_paths[i]]

    for k in range(2, max_coalition + 1):
        for members in combinations(range(game.n_players), k):
            checked += 1
            old_costs = [state.player_cost(i, subsidies) for i in members]
            for pick in product(*(range(len(candidate_paths[i])) for i in members)):
                new_edges = [candidate_paths[m][j] for m, j in zip(members, pick)]
                if all(
                    new_edges[idx] == state.edge_paths[m]
                    for idx, m in enumerate(members)
                ):
                    continue
                new_costs = _joint_costs(state, members, new_edges, subsidies)
                if all(
                    is_improvement(nc, oc, tol)
                    for nc, oc in zip(new_costs, old_costs)
                ):
                    return StrongEquilibriumReport(
                        False,
                        max_coalition,
                        CoalitionDeviation(
                            members,
                            [node_paths[m][j] for m, j in zip(members, pick)],
                            old_costs,
                            new_costs,
                        ),
                        checked,
                    )
    return StrongEquilibriumReport(True, max_coalition, None, checked)
