"""Tests for repro.utils helpers."""

import numpy as np
import pytest

from repro.utils import (
    EQ_TOL,
    Timer,
    ensure_rng,
    is_close,
    is_improvement,
    leq_with_tol,
    nonnegative,
)
from repro.utils.validation import check_edge_weight, check_positive_int, check_probability


class TestTolerances:
    def test_leq_exact(self):
        assert leq_with_tol(1.0, 1.0)
        assert leq_with_tol(1.0, 2.0)
        assert not leq_with_tol(2.0, 1.0)

    def test_leq_within_tolerance(self):
        assert leq_with_tol(1.0 + 1e-12, 1.0)

    def test_leq_scales_with_magnitude(self):
        assert leq_with_tol(1e9 + 1.0, 1e9, tol=1e-8)
        assert not leq_with_tol(1e9 + 100.0, 1e9, tol=1e-9)

    def test_improvement_is_negation(self):
        for a, b in [(1.0, 1.0), (1.0, 1.0 + 1e-12), (0.5, 1.0), (2.0, 1.0)]:
            assert is_improvement(a, b) == (not leq_with_tol(b, a))

    def test_tie_is_not_improvement(self):
        assert not is_improvement(1.0, 1.0)
        assert not is_improvement(1.0 - 1e-13, 1.0)
        assert is_improvement(0.9, 1.0)

    def test_is_close(self):
        assert is_close(1.0, 1.0 + EQ_TOL / 10)
        assert not is_close(1.0, 1.1)

    def test_nonnegative_clips(self):
        assert nonnegative(-1e-12) == 0.0
        assert nonnegative(2.5) == 2.5

    def test_nonnegative_rejects(self):
        with pytest.raises(ValueError):
            nonnegative(-0.5)


class TestRng:
    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_int_seed_reproducible(self):
        assert ensure_rng(42).random() == ensure_rng(42).random()

    def test_generator_passthrough(self):
        rng = np.random.default_rng(0)
        assert ensure_rng(rng) is rng


class TestTimer:
    def test_elapsed_nonnegative(self):
        with Timer() as t:
            sum(range(1000))
        assert t.elapsed >= 0.0


class TestValidation:
    def test_edge_weight_ok(self):
        assert check_edge_weight(0) == 0.0
        assert check_edge_weight(float("inf")) == float("inf")

    def test_edge_weight_bad(self):
        with pytest.raises(ValueError):
            check_edge_weight(-1)
        with pytest.raises(ValueError):
            check_edge_weight(float("nan"))

    def test_positive_int(self):
        assert check_positive_int(3) == 3
        with pytest.raises(ValueError):
            check_positive_int(0)
        with pytest.raises(TypeError):
            check_positive_int(2.5)
        with pytest.raises(TypeError):
            check_positive_int(True)

    def test_probability(self):
        assert check_probability(0.5) == 0.5
        with pytest.raises(ValueError):
            check_probability(-0.1)
        with pytest.raises(ValueError):
            check_probability(1.1)
