"""Substrate benchmarks — the kernels everything else leans on.

Not tied to a single paper artefact; tracks the cost of the primitives
(MST, Dijkstra, equilibrium check, spanning-tree enumeration, simplex) so
regressions in the substrate surface before they distort the experiment
benchmarks.
"""

import numpy as np
import pytest

from repro.games.broadcast import BroadcastGame
from repro.games.equilibrium import check_equilibrium
from repro.graphs import dijkstra, kruskal_mst, prim_mst
from repro.graphs.generators import complete_graph, random_connected_gnp
from repro.graphs.spanning_trees import count_spanning_trees, enumerate_spanning_trees
from repro.lp import LinearProgram, simplex_solve, solve_lp


@pytest.fixture(scope="module")
def big_graph():
    return random_connected_gnp(300, 0.05, seed=0)


def test_kruskal(benchmark, big_graph):
    tree = benchmark(kruskal_mst, big_graph)
    assert len(tree) == big_graph.num_nodes - 1


def test_prim(benchmark, big_graph):
    tree = benchmark(prim_mst, big_graph)
    assert big_graph.subset_weight(tree) == pytest.approx(
        big_graph.subset_weight(kruskal_mst(big_graph))
    )


def test_dijkstra(benchmark, big_graph):
    dist, _ = benchmark(dijkstra, big_graph, 0)
    assert len(dist) == big_graph.num_nodes


def test_equilibrium_check(benchmark, big_graph):
    game = BroadcastGame(big_graph, root=0)
    state = game.mst_state()
    benchmark(check_equilibrium, state)


def test_spanning_tree_enumeration(benchmark):
    g = complete_graph(6)
    trees = benchmark(lambda: list(enumerate_spanning_trees(g)))
    assert len(trees) == count_spanning_trees(g) == 6**4


def _random_lp(seed: int, n: int = 12, m: int = 20) -> LinearProgram:
    rng = np.random.default_rng(seed)
    A = rng.normal(size=(m, n))
    b = A @ rng.uniform(0.2, 1.0, size=n) + rng.uniform(0.1, 1.0, size=m)
    lp = LinearProgram(n_vars=n, c=rng.normal(size=n), upper=np.full(n, 5.0))
    for row, rhs in zip(A, b):
        lp.add_constraint(row, rhs)
    return lp


def test_simplex_from_scratch(benchmark):
    res = benchmark(lambda: simplex_solve(_random_lp(1)))
    assert res.ok


def test_highs_backend(benchmark):
    res = benchmark(lambda: solve_lp(_random_lp(1), "highs"))
    assert res.ok
