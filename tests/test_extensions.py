"""Tests for the Section 6 extensions: multicast, weighted, coalitions,
combinatorial SNE."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.bounds.instances import theorem11_cycle_instance
from repro.games import BroadcastGame, check_equilibrium
from repro.games.coalitions import check_strong_equilibrium
from repro.games.game import NetworkDesignGame
from repro.games.multicast import MulticastGame
from repro.games.weighted import (
    WeightedNetworkDesignGame,
    check_weighted_equilibrium,
    solve_weighted_sne,
    weighted_best_response,
)
from repro.graphs import Graph
from repro.graphs.generators import random_connected_gnp, random_tree_plus_chords
from repro.subsidies import solve_sne_broadcast_lp3, solve_sne_cutting_plane_lp1
from repro.subsidies.combinatorial import combinatorial_sne, waterfill_player


class TestMulticast:
    def test_validation(self):
        g = Graph.from_edges([(0, 1, 1.0)])
        with pytest.raises(ValueError):
            MulticastGame(g, root=9, terminals=[1])
        with pytest.raises(ValueError):
            MulticastGame(g, root=0, terminals=[])
        with pytest.raises(ValueError):
            MulticastGame(g, root=0, terminals=[0])

    def test_optimal_design_is_steiner(self):
        # Terminals 1, 3 in a square + diagonal: optimum avoids the heavy edge.
        g = Graph.from_edges(
            [(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0), (3, 0, 1.0), (1, 3, 5.0)]
        )
        game = MulticastGame(g, root=0, terminals=[1, 3])
        edges, w = game.optimal_design()
        assert w == pytest.approx(2.0)
        assert set(edges) == {(0, 1), (0, 3)}

    def test_optimal_state_costs(self):
        g = Graph.from_edges([(0, 1, 1.0), (1, 2, 1.0), (0, 2, 3.0)])
        game = MulticastGame(g, root=0, terminals=[2])
        state = game.optimal_state()
        assert state.social_cost() == pytest.approx(2.0)
        assert state.player_cost(0) == pytest.approx(2.0)

    def test_state_from_tree_missing_terminal(self):
        g = Graph.from_edges([(0, 1, 1.0), (1, 2, 1.0)])
        game = MulticastGame(g, root=0, terminals=[2])
        with pytest.raises(ValueError):
            game.state_from_tree([(0, 1)])

    def test_sne_on_steiner_optimum(self):
        g = random_connected_gnp(10, 0.35, seed=4)
        game = MulticastGame(g, root=0, terminals=[3, 7, 9])
        state = game.optimal_state()
        res = solve_sne_cutting_plane_lp1(state)
        assert res.feasible and res.verified

    def test_broadcast_special_case(self):
        g = random_connected_gnp(6, 0.6, seed=8)
        game = MulticastGame(g, root=0, terminals=[u for u in g.nodes if u != 0])
        bc = BroadcastGame(g, root=0)
        assert game.social_optimum() == pytest.approx(bc.mst_weight())


class TestWeighted:
    @pytest.fixture
    def shared_edge_game(self):
        g = Graph.from_edges([(0, 1, 4.0), (0, 2, 1.1), (1, 2, 1.1)])
        return g

    def test_validation(self, shared_edge_game):
        with pytest.raises(ValueError):
            WeightedNetworkDesignGame(shared_edge_game, [(1, 0)], [1.0, 2.0])
        with pytest.raises(ValueError):
            WeightedNetworkDesignGame(shared_edge_game, [(1, 0)], [0.0])
        with pytest.raises(ValueError):
            WeightedNetworkDesignGame(shared_edge_game, [(1, 1)], [1.0])

    def test_proportional_shares(self, shared_edge_game):
        game = WeightedNetworkDesignGame(shared_edge_game, [(1, 0), (1, 0)], [1.0, 3.0])
        state = game.state([[1, 0], [1, 0]])
        assert state.player_cost(0) == pytest.approx(1.0)
        assert state.player_cost(1) == pytest.approx(3.0)
        assert state.total_player_cost() == pytest.approx(state.social_cost())

    def test_unit_demands_match_unweighted(self):
        g = random_connected_gnp(7, 0.5, seed=2)
        bc = BroadcastGame(g, root=0)
        nd = bc.to_network_design_game()
        pairs = [(p.source, p.target) for p in nd.players]
        wgame = WeightedNetworkDesignGame(g, pairs, [1.0] * len(pairs))
        paths = bc.tree_state_to_paths(bc.mst_state())
        ustate = nd.state(paths)
        wstate = wgame.state(paths)
        for i in range(len(pairs)):
            assert wstate.player_cost(i) == pytest.approx(ustate.player_cost(i))
        assert check_weighted_equilibrium(wstate) == check_equilibrium(ustate).is_equilibrium

    def test_heavy_player_deviates_first(self, shared_edge_game):
        game = WeightedNetworkDesignGame(shared_edge_game, [(1, 0), (1, 0)], [1.0, 9.0])
        state = game.state([[1, 0], [1, 0]])
        light, _ = weighted_best_response(state, 0)
        heavy, _ = weighted_best_response(state, 1)
        # The heavy player's share (3.6) exceeds her bypass (2.2); the light
        # player's share (0.4) does not.
        assert heavy < state.player_cost(1) - 1e-9
        assert light >= state.player_cost(0) - 1e-9

    def test_weighted_sne_enforces(self, shared_edge_game):
        game = WeightedNetworkDesignGame(shared_edge_game, [(1, 0), (1, 0)], [1.0, 9.0])
        state = game.state([[1, 0], [1, 0]])
        assert not check_weighted_equilibrium(state)
        sub, cost = solve_weighted_sne(state)
        assert sub is not None and cost > 0
        assert check_weighted_equilibrium(state, sub, tol=1e-6)

    def test_subsidy_cost_grows_with_demand(self, shared_edge_game):
        costs = []
        for d in (1.0, 3.0, 9.0):
            game = WeightedNetworkDesignGame(shared_edge_game, [(1, 0), (1, 0)], [1.0, d])
            state = game.state([[1, 0], [1, 0]])
            _, cost = solve_weighted_sne(state)
            costs.append(cost)
        assert costs[0] == pytest.approx(0.0, abs=1e-8)
        assert costs[0] <= costs[1] <= costs[2]


class TestCoalitions:
    @pytest.fixture
    def gadget(self):
        g = Graph.from_edges(
            [(1, 0, 1.0), (2, 0, 1.0), (1, 3, 0.4), (2, 3, 0.4), (3, 0, 1.1)]
        )
        game = NetworkDesignGame(g, [(1, 0), (2, 0)])
        return game.state([[1, 0], [2, 0]])

    def test_nash_but_not_2_strong(self, gadget):
        assert check_equilibrium(gadget).is_equilibrium
        report = check_strong_equilibrium(gadget, max_coalition=2)
        assert not report.is_strong_equilibrium
        dev = report.deviation
        assert dev.members == (0, 1)
        assert all(g > 0 for g in dev.gains)

    def test_k1_equals_nash(self, gadget):
        report = check_strong_equilibrium(gadget, max_coalition=1)
        assert report.is_strong_equilibrium  # Nash holds

    def test_strong_state_passes(self):
        g = Graph.from_edges([(1, 0, 1.0), (2, 0, 1.0), (1, 2, 5.0)])
        game = NetworkDesignGame(g, [(1, 0), (2, 0)])
        state = game.state([[1, 0], [2, 0]])
        report = check_strong_equilibrium(state, max_coalition=2)
        assert report.is_strong_equilibrium
        assert report.coalitions_checked == 3  # {0}, {1}, {0,1}

    def test_subsidies_restore_strongness(self, gadget):
        # Fully subsidizing the direct edges kills the joint temptation.
        sub = {(0, 1): 1.0, (0, 2): 1.0}
        report = check_strong_equilibrium(gadget, max_coalition=2, subsidies=sub)
        assert report.is_strong_equilibrium


class TestCombinatorialSNE:
    def test_waterfill_single_player_exact(self):
        game, state = theorem11_cycle_instance(10)
        extra = waterfill_player(state, 10, target_cost=1.0)
        lp = solve_sne_broadcast_lp3(state)
        assert sum(extra.values()) == pytest.approx(lp.cost, abs=1e-9)

    def test_waterfill_noop_when_cheap_enough(self):
        game, state = theorem11_cycle_instance(6)
        assert waterfill_player(state, 1, target_cost=10.0) == {}

    def test_waterfill_unreachable_target(self):
        game, state = theorem11_cycle_instance(6)
        with pytest.raises(ValueError):
            waterfill_player(state, 6, target_cost=-1.0)

    def test_cycle_family_matches_lp(self):
        for n in (5, 11, 23):
            _, state = theorem11_cycle_instance(n)
            comb = combinatorial_sne(state)
            lp = solve_sne_broadcast_lp3(state)
            assert comb.verified and comb.converged
            assert comb.cost == pytest.approx(lp.cost, abs=1e-7)

    @settings(max_examples=15, deadline=None)
    @given(st.integers(5, 10), st.integers(0, 10_000))
    def test_random_instances_upper_bound_lp(self, n, seed):
        g = random_tree_plus_chords(n, n // 2, seed=seed, chord_factor=1.1)
        game = BroadcastGame(g, root=0)
        state = game.mst_state()
        comb = combinatorial_sne(state)
        lp = solve_sne_broadcast_lp3(state)
        assert comb.verified
        assert comb.cost >= lp.cost - 1e-7
        # On these families water-filling has matched the LP exactly so far;
        # keep a loose factor so the test documents (not enforces) optimality.
        assert comb.cost <= max(lp.cost * 1.5, lp.cost + 0.5)

    def test_already_equilibrium(self):
        g = Graph.from_edges([(0, 1, 1.0), (1, 2, 1.0), (0, 2, 2.0)])
        game = BroadcastGame(g, root=0)
        comb = combinatorial_sne(game.mst_state())
        assert comb.cost == 0.0
        assert comb.iterations == 0
