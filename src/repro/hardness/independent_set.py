"""Theorem 5: approximating the broadcast price of stability is APX-hard.

Reduction from INDEPENDENT SET in 3-regular graphs: given cubic ``H``, the
broadcast graph ``G`` has a node per vertex (set ``U``) and per edge (set
``V``) of ``H``, unit edges from every non-root node to the root, and
incidence edges of weight ``(2 + delta)/3``.

Equilibria of the broadcast game consist solely of branches of types A
(direct edge) and B (a ``U`` node with its three ``V`` neighbors); the
type-B branch roots form an independent set of ``H``, and an equilibrium
with ``m`` type-B branches weighs exactly ``5n/2 - (1 - delta) m``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Set, Tuple

from repro.graphs.graph import Graph, Node, canonical_edge
from repro.games.broadcast import BroadcastGame, TreeState
from repro.games.equilibrium import check_equilibrium
from repro.hardness.solvers.mis import is_independent_set, is_k_regular, max_independent_set


@dataclass
class Theorem5Instance:
    """The constructed broadcast game plus reduction bookkeeping."""

    source: Graph  # the 3-regular graph H
    game: BroadcastGame
    delta: float
    u_nodes: Dict[Node, Node]  # H-vertex -> G-node
    v_nodes: Dict[FrozenSet, Node]  # H-edge -> G-node

    @property
    def root(self) -> Node:
        return self.game.root

    @property
    def n(self) -> int:
        """Number of vertices of H (so G has 5n/2 + 1 nodes)."""
        return self.source.num_nodes


def build_theorem5_instance(h: Graph, delta: float = 1.0 / 12.0) -> Theorem5Instance:
    """Construct the Theorem 5 broadcast game from a cubic graph ``H``."""
    if not is_k_regular(h, 3):
        raise ValueError("Theorem 5 requires a 3-regular source graph")
    if not 0.0 < delta <= 1.0 / 12.0:
        raise ValueError("delta must lie in (0, 1/12]")

    g = Graph()
    root: Node = "r"
    g.add_node(root)
    u_nodes: Dict[Node, Node] = {}
    v_nodes: Dict[FrozenSet, Node] = {}
    for v in h.nodes:
        u_nodes[v] = ("U", v)
        g.add_edge(root, ("U", v), 1.0)
    incidence_w = (2.0 + delta) / 3.0
    for a, b, _w in h.edges():
        key = frozenset((a, b))
        node = ("V", canonical_edge(a, b))
        v_nodes[key] = node
        g.add_edge(root, node, 1.0)
        g.add_edge(node, ("U", a), incidence_w)
        g.add_edge(node, ("U", b), incidence_w)

    game = BroadcastGame(g, root=root)
    return Theorem5Instance(source=h, game=game, delta=delta, u_nodes=u_nodes, v_nodes=v_nodes)


def equilibrium_weight(instance: Theorem5Instance, m: int) -> float:
    """``5n/2 - (1 - delta) m``: weight of the equilibrium with m B-branches."""
    n = instance.n
    return 2.5 * n - (1.0 - instance.delta) * m


def tree_from_independent_set(
    instance: Theorem5Instance, independent: Iterable[Node]
) -> TreeState:
    """Equilibrium tree with one type-B branch per independent-set vertex."""
    chosen = set(independent)
    if not is_independent_set(instance.source, chosen):
        raise ValueError("input is not an independent set of H")
    edges: List[Tuple[Node, Node]] = []
    covered_v: Set[Node] = set()
    for v in chosen:
        u_node = instance.u_nodes[v]
        edges.append((instance.root, u_node))
        for nbr in instance.source.neighbors(v):
            v_node = instance.v_nodes[frozenset((v, nbr))]
            edges.append((u_node, v_node))
            covered_v.add(v_node)
    for v, u_node in instance.u_nodes.items():
        if v not in chosen:
            edges.append((instance.root, u_node))
    for v_node in instance.v_nodes.values():
        if v_node not in covered_v:
            edges.append((instance.root, v_node))
    return instance.game.tree_state(edges)


def independent_set_from_tree(instance: Theorem5Instance, state: TreeState) -> Set[Node]:
    """Roots of the type-B branches (must form an independent set of H)."""
    out: Set[Node] = set()
    tree = state.tree
    for v, u_node in instance.u_nodes.items():
        if tree.parent.get(u_node) == instance.root and len(tree.children[u_node]) == 3:
            out.add(v)
    return out


def classify_branch(instance: Theorem5Instance, state: TreeState, top: Node) -> str:
    """Classify the branch rooted at a depth-1 node into types A-E.

    * A — a single edge to the root;
    * B — a U node carrying its three adjacent V nodes;
    * C — a depth-2 branch that is not B;
    * D — depth exactly 3;
    * E — depth at least 4.
    """
    tree = state.tree
    if tree.parent.get(top) != instance.root:
        raise ValueError(f"{top!r} is not a depth-1 node")
    subtree = tree.subtree_nodes(top)
    depth = max(tree.depth[x] for x in subtree)
    if depth == 1:
        return "A"
    if depth == 2:
        is_u = isinstance(top, tuple) and top[0] == "U"
        if is_u and len(tree.children[top]) == 3:
            return "B"
        return "C"
    if depth == 3:
        return "D"
    return "E"


def best_equilibrium_weight_via_mis(instance: Theorem5Instance) -> float:
    """The reduction's promise: best equilibrium weight = 5n/2 - (1-d)*MIS."""
    mis = max_independent_set(instance.source)
    state = tree_from_independent_set(instance, mis)
    if not check_equilibrium(state).is_equilibrium:  # pragma: no cover
        raise AssertionError("reduction violated: MIS tree is not an equilibrium")
    return state.social_cost()
