"""E2/E10 benchmark — Theorem 6 constructive subsidies and Figure 4 data.

Regenerates the wgt(T)/e assignment on growing random graphs and the
virtual-cost series of Figure 4.
"""

import math

import pytest

from repro.games.broadcast import BroadcastGame
from repro.games.equilibrium import check_equilibrium
from repro.graphs.generators import random_connected_gnp
from repro.subsidies import theorem6_subsidies
from repro.subsidies.virtual_cost import (
    claim10_closed_form,
    pack_subsidies_on_path,
    path_virtual_cost,
)


@pytest.mark.parametrize("n", [20, 60, 150])
def test_theorem6_constructive(benchmark, n):
    g = random_connected_gnp(n, 0.2, seed=n)
    game = BroadcastGame(g, root=0)
    state = game.mst_state()
    res = benchmark(theorem6_subsidies, state)
    assert res.cost == pytest.approx(res.bound, rel=1e-6)
    assert res.fraction == pytest.approx(1 / math.e, rel=1e-6)


def test_theorem6_enforcement_check(benchmark):
    g = random_connected_gnp(60, 0.2, seed=7)
    game = BroadcastGame(g, root=0)
    state = game.mst_state()
    res = theorem6_subsidies(state)
    report = benchmark(check_equilibrium, state, res.subsidies, 1e-7)
    assert report.is_equilibrium


def test_figure4_virtual_cost_series(benchmark):
    def series():
        c = 1.0
        mults = list(range(1, 7))
        rows = []
        for tenths in range(0, 61):
            total = tenths / 10
            y = pack_subsidies_on_path(c, mults, total)
            rows.append((total, path_virtual_cost(c, mults, y)))
        return rows

    rows = benchmark(series)
    # Spot-check against the Claim 10 closed form at the figure's y = 1.6.
    at_16 = dict(rows)[1.6]
    assert at_16 == pytest.approx(claim10_closed_form(1.0, 6, 6, 1.6))
    assert at_16 == pytest.approx(math.log(6 / 1.6))
