"""Rosenthal's potential function for network design games.

``Phi(T; b) = sum_a (w_a - b_a) * H_{n_a(T)}`` where ``H_k`` is the k-th
harmonic number.  Unilateral deviations change the potential by exactly the
deviating player's cost change, so local minima of Phi are equilibria and
best-response dynamics terminate.  The potential also sandwiches the social
cost: ``wgt(T) <= Phi(T) <= H_n * wgt(T)`` — the engine behind the
``PoS <= H_n`` bound of Anshelevich et al. cited throughout the paper.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.bounds.harmonic import harmonic
from repro.games.broadcast import TreeState
from repro.games.game import State, Subsidies


def rosenthal_potential(state: State, subsidies: Optional[Subsidies] = None) -> float:
    """Potential of a general-game state."""
    g = state.game.graph
    total = 0.0
    for e, n_a in state.usage.items():
        w = g.weight(*e)
        b = subsidies.get(e, 0.0) if subsidies else 0.0
        total += max(0.0, w - b) * harmonic(n_a)
    return total


def potential_of_tree(state: TreeState, subsidies: Optional[Subsidies] = None) -> float:
    """Potential of a broadcast tree state (multiplicity-aware)."""
    g = state.game.graph
    total = 0.0
    for e, n_a in state.loads.items():
        if n_a == 0:
            continue
        w = g.weight(*e)
        b = subsidies.get(e, 0.0) if subsidies else 0.0
        total += max(0.0, w - b) * harmonic(n_a)
    return total


def potential(
    state: Union[State, TreeState], subsidies: Optional[Subsidies] = None
) -> float:
    """Dispatch on state type."""
    if isinstance(state, TreeState):
        return potential_of_tree(state, subsidies)
    return rosenthal_potential(state, subsidies)
