"""Targeted tests for solver fallback paths and defensive branches."""

import pytest

from repro.games import BroadcastGame, check_equilibrium
from repro.graphs import Graph
from repro.subsidies import greedy_aon_sne, snd_heuristic, solve_snd_exact
from repro.subsidies.snd import SNDResult, _tree_candidates_from_equilibrium


@pytest.fixture
def multiplicity_game():
    """A game BRD cannot handle (multiplicity > 1) with an unstable MST.

    The two co-located players at node 3 crowd edge (0,1) (load 4), so the
    lone player at node 2 pays 1/4 + 1 = 1.25 > 1.2 and wants her shortcut.
    """
    g = Graph.from_edges([(0, 1, 1.0), (1, 2, 1.0), (0, 2, 1.2), (1, 3, 0.0)])
    return BroadcastGame(g, root=0, multiplicity={3: 2})


class TestSNDFallbacks:
    def test_brd_candidate_rejects_multiplicities(self, multiplicity_game):
        assert _tree_candidates_from_equilibrium(multiplicity_game) is None

    def test_full_subsidy_fallback_path(self, multiplicity_game):
        # Budget too small for the MST and BRD unavailable: the heuristic
        # reports the flagged full-subsidy fallback rather than crashing.
        res = snd_heuristic(multiplicity_game, budget=0.0)
        assert res.method == "full_subsidy_fallback"
        assert not res.optimal
        state = multiplicity_game.tree_state(res.tree_edges)
        assert check_equilibrium(state, res.subsidies, tol=1e-6).is_equilibrium

    def test_exact_snd_handles_multiplicities(self, multiplicity_game):
        res = solve_snd_exact(multiplicity_game, budget=1.0)
        assert res is not None
        state = multiplicity_game.tree_state(res.tree_edges)
        assert check_equilibrium(state, res.subsidies, tol=1e-6).is_equilibrium

    def test_exact_snd_tree_limit_may_miss(self):
        g = Graph.from_edges([(0, 1, 1.0), (1, 2, 1.0), (0, 2, 1.2)])
        game = BroadcastGame(g, root=0)
        # With enough budget any tree is fine; limit 1 still finds one.
        res = solve_snd_exact(game, budget=10.0, tree_limit=1)
        assert res is not None

    def test_snd_result_dataclass(self):
        g = Graph.from_edges([(0, 1, 1.0)])
        from repro.subsidies import SubsidyAssignment

        r = SNDResult([(0, 1)], 1.0, SubsidyAssignment.zero(g), 0.0, True, "exact")
        assert r.within_budget


class TestGreedyEdgeCases:
    def test_max_steps_forces_baseline(self):
        g = Graph.from_edges([(0, 1, 1.0), (1, 2, 1.0), (0, 2, 1.2)])
        game = BroadcastGame(g, root=0)
        state = game.tree_state([(0, 1), (1, 2)])
        res = greedy_aon_sne(state, max_steps=0)
        # Loop never ran: falls back to subsidizing everything.
        assert res.cost == pytest.approx(2.0)
        assert res.verified

    def test_greedy_on_multiplicity_game(self, multiplicity_game):
        state = multiplicity_game.tree_state([(0, 1), (1, 2), (1, 3)])
        res = greedy_aon_sne(state)
        assert res.verified
        assert check_equilibrium(state, res.subsidies, tol=1e-6).is_equilibrium


class TestExperimentRecords:
    def test_columns_and_empty(self):
        from repro.experiments.records import ExperimentResult

        r = ExperimentResult("EX", "t", "h")
        assert r.columns() == []
        assert "(no rows)" not in r.to_text()  # empty rows are just omitted
        r2 = ExperimentResult("EX", "t", "h", rows=[{"a": 1, "b": 2}])
        assert r2.columns() == ["a", "b"]
