"""The paper's headline constants, as importable, documented values.

Every threshold a theorem pins down — the ``1/e`` fractional-subsidy
bound (Theorems 6/11), the ``e/(2e-1)`` all-or-nothing bound
(Theorem 21), the ``571/570`` PoS inapproximability ratio (Theorem 5) —
lives here exactly once, so experiments, tests and docs compare against
the same numbers the paper states rather than re-deriving them inline.
"""

from __future__ import annotations

import math

from repro.bounds.harmonic import harmonic

#: Theorem 6 / Theorem 11 — subsidies of ``wgt(T)/e`` suffice (and may be
#: needed) to enforce an MST as an equilibrium: 1/e ~ 0.3679 ("37%").
FRACTIONAL_SUBSIDY_BOUND: float = 1.0 / math.e

#: Theorem 21 — all-or-nothing subsidies may need ``e/(2e-1)`` of the MST
#: weight: ~0.6127 ("61%").
AON_SUBSIDY_BOUND: float = math.e / (2.0 * math.e - 1.0)

#: Theorem 5 — approximating the broadcast price of stability below this
#: ratio is NP-hard.
POS_INAPPROX_RATIO: float = 571.0 / 570.0


def pos_upper_bound(n_players: int) -> float:
    """``H_n``: the general price-of-stability upper bound of Anshelevich
    et al. used as the reference line in the potential-descent experiment."""
    return harmonic(n_players)


def theorem5_yes_weight(k: float, delta: float, eps: float) -> float:
    """Best-equilibrium weight (per ``k``) when the SAT instance is
    satisfiable in the Theorem 5 reduction: ``570 + 140*delta + (1-delta)*eps``."""
    return 570.0 + 140.0 * delta + (1.0 - delta) * eps


def theorem5_no_weight(k: float, delta: float, eps: float) -> float:
    """Best-equilibrium weight lower bound (per ``k``) when unsatisfiable:
    ``571 + 139*delta - (1-delta)*eps``."""
    return 571.0 + 139.0 * delta - (1.0 - delta) * eps
