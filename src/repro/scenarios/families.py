"""The scenario catalogue: named, seeded, parameterized instance families.

Each :class:`ScenarioFamily` couples a deterministic *topology builder*
(grid, hypercube, augmented cube, preferential attachment, two-tier ISP,
adversarial lower-bound rings) with a *game wrapper* that turns the graph
into an instance of any :data:`~repro.games.base.GAME_FAMILIES` member.
Everything is reproducible from ``(name, n, seed, params)`` — the exact
tuple the sweep runtime content-addresses — so a scenario cell in a sweep
grid, a ``repro-experiments gen --family`` file and a test fixture built
by :func:`build_scenario` are the same instance byte for byte.

Topology notes
--------------
* ``grid`` — an r x c mesh trimmed to exactly ``n`` nodes (row-major), the
  classic data-center/street-network workload.
* ``hypercube`` / ``augmented-cube`` — ``Q_d`` and ``AQ_d`` on ``2^d <= n``
  nodes.  The augmented cube (Choudum & Sunitha; studied for independent
  spanning trees by Mane, Kandekar & Waphare — see PAPERS.md) doubles the
  hypercube's edge set with suffix-complement links, giving dense
  low-diameter deviation structure.
* ``power-law`` — Barabasi-Albert preferential attachment: a few hub
  nodes absorb most connections, the worst case for uniform subsidy rules.
* ``isp-like`` — a cheap backbone ring over hub sites plus geometric
  access links, the paper's ISP motivation made concrete.
* ``lower-bound-cycle`` — the Theorem 11 unit cycle (or a spoked wheel),
  the family driving the paper's ``1/e`` lower bound.

Game wrapping
-------------
The shared wrapper params select the game family and its shape: ``game``
(default ``broadcast``), ``terminals`` (``all``/``half``; multicast),
``demands`` (``unit``/``random``; weighted), ``orientation``
(``symmetric``/``oneway-chords``; directed) and ``pairs``
(``broadcast``/``random``; general).  Defaults sit inside the broadcast
overlap, so every registered solver accepts every scenario's default
instance; the non-default values produce genuinely multicast / weighted /
directed workloads for the family-general solvers.
"""

from __future__ import annotations

import difflib
import math
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.graphs.graph import Graph
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_positive_int

#: game-wrapper knobs every scenario accepts on top of its topology params
GAME_PARAMS = ("game", "terminals", "demands", "orientation", "pairs")


class UnknownScenarioError(KeyError):
    """Raised when a scenario name is not in the catalogue."""

    def __init__(self, name: str, known: List[str]):
        suggestions = difflib.get_close_matches(name, known, n=3, cutoff=0.4)
        msg = f"unknown scenario family {name!r}; known: {', '.join(known)}"
        if suggestions:
            msg += f" (did you mean {' or '.join(repr(s) for s in suggestions)}?)"
        super().__init__(msg)

    def __str__(self) -> str:
        return self.args[0]


@dataclass(frozen=True)
class ScenarioFamily:
    """One named instance family of the scenario catalogue."""

    #: catalogue name, e.g. ``"augmented-cube"``
    name: str
    #: one-line human description (shown by ``repro-experiments families``)
    description: str
    #: topology builder ``(n, rng, **params) -> Graph``
    build_graph: Callable[..., Graph]
    #: topology knobs and their defaults
    params: Mapping[str, Any] = field(default_factory=dict)
    #: builders that draw nothing from the RNG reproduce without a seed
    stochastic: bool = True

    def all_params(self) -> Dict[str, Any]:
        """Topology defaults plus the shared game-wrapper defaults."""
        return {
            **dict(self.params),
            "game": "broadcast",
            "terminals": "all",
            "demands": "unit",
            "orientation": "symmetric",
            "pairs": "broadcast",
        }


# ---------------------------------------------------------------------------
# Topology builders
# ---------------------------------------------------------------------------


def _jittered(rng: np.random.Generator, jitter: float) -> float:
    """A unit weight perturbed by ±jitter (0 disables the draw entirely)."""
    if jitter <= 0.0:
        return 1.0
    return float(rng.uniform(1.0 - jitter, 1.0 + jitter))


def _grid_graph(n: int, rng: np.random.Generator, jitter: float = 0.25) -> Graph:
    """r x c mesh trimmed to exactly ``n`` nodes (row-major order)."""
    check_positive_int(n, "n")
    rows = max(1, math.isqrt(n))
    cols = math.ceil(n / rows)
    g = Graph()
    g.add_node(0)
    for k in range(n):
        r, c = divmod(k, cols)
        if c + 1 < cols and k + 1 < n:
            g.add_edge(k, k + 1, _jittered(rng, jitter))
        if (r + 1) * cols + c < n:
            g.add_edge(k, k + cols, _jittered(rng, jitter))
    return g


def _cube_dim(n: int) -> int:
    """Largest ``d`` with ``2^d <= n`` (at least 1)."""
    check_positive_int(n, "n")
    return max(1, n.bit_length() - 1)


def _hypercube_graph(n: int, rng: np.random.Generator, jitter: float = 0.25) -> Graph:
    """The hypercube ``Q_d`` on ``2^d <= n`` nodes."""
    d = _cube_dim(n)
    g = Graph()
    g.add_node(0)
    for u in range(1 << d):
        for bit in range(d):
            v = u ^ (1 << bit)
            if u < v:
                g.add_edge(u, v, _jittered(rng, jitter))
    return g


def _aq_edge_list(d: int) -> List[Tuple[int, int]]:
    """Edges of the augmented cube ``AQ_d`` (recursive construction)."""
    if d == 1:
        return [(0, 1)]
    h = 1 << (d - 1)
    lower = _aq_edge_list(d - 1)
    edges = list(lower) + [(u + h, v + h) for u, v in lower]
    for u in range(h):
        edges.append((u, u + h))  # hypercube link
        edges.append((u, ((h - 1) ^ u) + h))  # suffix-complement link
    return edges


def _augmented_cube_graph(
    n: int, rng: np.random.Generator, jitter: float = 0.25
) -> Graph:
    """The augmented cube ``AQ_d`` on ``2^d <= n`` nodes."""
    d = _cube_dim(n)
    g = Graph()
    g.add_node(0)
    seen = set()
    for u, v in _aq_edge_list(d):
        key = (min(u, v), max(u, v))
        if key not in seen:
            seen.add(key)
            g.add_edge(u, v, _jittered(rng, jitter))
    return g


def _power_law_graph(
    n: int, rng: np.random.Generator, m: int = 2, jitter: float = 0.5
) -> Graph:
    """Barabasi-Albert preferential attachment with ``m`` links per node."""
    check_positive_int(n, "n")
    m = max(1, min(int(m), n - 1)) if n > 1 else 1
    g = Graph()
    g.add_node(0)
    endpoints: List[int] = []  # degree-proportional sampling pool
    for v in range(m, n):
        if endpoints:
            chosen: set = set()
            # mix uniform picks in so early nodes cannot monopolize forever
            while len(chosen) < min(m, v):
                if rng.random() < 0.9:
                    u = endpoints[int(rng.integers(len(endpoints)))]
                else:
                    u = int(rng.integers(v))
                chosen.add(u)
        else:
            chosen = set(range(v))  # first arrival wires the seed clique
        for u in sorted(chosen):
            g.add_edge(v, u, _jittered(rng, jitter))
            endpoints += [v, u]
    return g


def _isp_graph(
    n: int, rng: np.random.Generator, hubs: int = 4, backbone_discount: float = 0.3
) -> Graph:
    """Two-tier ISP: a cheap hub backbone ring plus geometric access links."""
    check_positive_int(n, "n")
    h = max(3, min(int(hubs), n))
    pts = rng.random((max(n, h), 2))
    g = Graph()
    g.add_node(0)

    def dist(i: int, j: int) -> float:
        return float(np.hypot(*(pts[i] - pts[j])))

    for i in range(h):  # backbone ring at a bulk discount
        j = (i + 1) % h
        if i != j and not g.has_edge(i, j):
            g.add_edge(i, j, backbone_discount * max(dist(i, j), 1e-3))
    for k in range(h, n):  # each site uplinks to its two nearest hubs
        order = sorted(range(h), key=lambda i: dist(k, i))
        for i in order[:2]:
            g.add_edge(k, i, max(dist(k, i), 1e-3))
    return g


def _lower_bound_graph(
    n: int, rng: np.random.Generator, shape: str = "cycle"
) -> Graph:
    """The paper's adversarial families: Theorem 11 cycles and spoked wheels."""
    from repro.graphs.generators import cycle_graph, wheel_graph

    check_positive_int(n, "n")
    if shape == "cycle":
        return cycle_graph(max(3, n), weight=1.0)
    if shape == "wheel":
        rim = max(3, n - 1)
        return wheel_graph(rim, spoke_weight=1.0, rim_weight=4.0 / max(4, n))
    raise ValueError(f"lower-bound shape must be 'cycle' or 'wheel', got {shape!r}")


# ---------------------------------------------------------------------------
# The catalogue
# ---------------------------------------------------------------------------

SCENARIOS: Dict[str, ScenarioFamily] = {
    fam.name: fam
    for fam in (
        ScenarioFamily(
            "grid",
            "r x c mesh trimmed to n nodes; jittered unit weights",
            _grid_graph,
            {"jitter": 0.25},
        ),
        ScenarioFamily(
            "hypercube",
            "hypercube Q_d on 2^d <= n nodes; jittered unit weights",
            _hypercube_graph,
            {"jitter": 0.25},
        ),
        ScenarioFamily(
            "augmented-cube",
            "augmented cube AQ_d: Q_d plus suffix-complement links",
            _augmented_cube_graph,
            {"jitter": 0.25},
        ),
        ScenarioFamily(
            "power-law",
            "Barabasi-Albert preferential attachment (m links per arrival)",
            _power_law_graph,
            {"m": 2, "jitter": 0.5},
        ),
        ScenarioFamily(
            "isp-like",
            "cheap hub backbone ring plus geometric access uplinks",
            _isp_graph,
            {"hubs": 4, "backbone_discount": 0.3},
        ),
        ScenarioFamily(
            "lower-bound-cycle",
            "Theorem 11 unit cycle (or spoked wheel): the 1/e adversary",
            _lower_bound_graph,
            {"shape": "cycle"},
            stochastic=False,
        ),
    )
}


def scenario_names() -> List[str]:
    """Catalogue names in deterministic order."""
    return sorted(SCENARIOS)


def get_scenario(name: str) -> ScenarioFamily:
    """Look up a scenario family (close-match suggestions on miss)."""
    if not isinstance(name, str):
        raise TypeError(f"scenario name must be a string, got {type(name).__name__}")
    try:
        return SCENARIOS[name]
    except KeyError:
        raise UnknownScenarioError(name, scenario_names()) from None


# ---------------------------------------------------------------------------
# Game wrapping
# ---------------------------------------------------------------------------


def _wrap_game(
    graph: Graph,
    game_family: str,
    rng: np.random.Generator,
    terminals: str,
    demands: str,
    orientation: str,
    pairs: str,
):
    from repro.games.base import GAME_FAMILIES
    from repro.games.broadcast import BroadcastGame
    from repro.games.directed import DirectedNetworkDesignGame
    from repro.games.game import NetworkDesignGame
    from repro.games.multicast import MulticastGame
    from repro.games.weighted import WeightedNetworkDesignGame

    root = graph.nodes[0]
    others = [u for u in graph.nodes if u != root]
    if not others:
        raise ValueError("scenario instance needs at least 2 nodes")

    if game_family == "broadcast":
        return BroadcastGame(graph, root)

    if game_family == "multicast":
        if terminals == "all":
            terms = list(others)
        elif terminals == "half":
            k = max(1, len(others) // 2)
            picks = rng.choice(len(others), size=k, replace=False)
            terms = [others[i] for i in sorted(int(i) for i in picks)]
        else:
            raise ValueError(f"terminals must be 'all' or 'half', got {terminals!r}")
        return MulticastGame(graph, root, terms)

    if game_family == "general":
        if pairs == "broadcast":
            pair_list = [(u, root) for u in others]
        elif pairs == "random":
            pair_list = []
            for u in others[: max(1, len(others) // 2)]:
                # never sample u itself; a single-non-root-node instance
                # falls back to the root as the only other endpoint
                choices = [v for v in others if v != u] or [root]
                pair_list.append((u, choices[int(rng.integers(len(choices)))]))
        else:
            raise ValueError(f"pairs must be 'broadcast' or 'random', got {pairs!r}")
        return NetworkDesignGame(graph, pair_list)

    if game_family == "weighted":
        pair_list = [(u, root) for u in others]
        if demands == "unit":
            demand_list = [1.0] * len(pair_list)
        elif demands == "random":
            demand_list = [float(rng.uniform(1.0, 3.0)) for _ in pair_list]
        else:
            raise ValueError(f"demands must be 'unit' or 'random', got {demands!r}")
        return WeightedNetworkDesignGame(graph, pair_list, demand_list)

    if game_family == "directed":
        pair_list = [(u, root) for u in others]
        if orientation == "symmetric":
            arcs = None
        elif orientation == "oneway-chords":
            # Spanning-tree edges stay two-way (reachability guarantee);
            # every chord gets one seeded direction.
            from repro.graphs.mst import kruskal_mst

            tree = set(kruskal_mst(graph))
            arc_list = []
            for u, v, _ in graph.edges():
                if (u, v) in tree:
                    arc_list += [(u, v), (v, u)]
                else:
                    arc_list.append((u, v) if rng.random() < 0.5 else (v, u))
            arcs = arc_list
        else:
            raise ValueError(
                f"orientation must be 'symmetric' or 'oneway-chords', got {orientation!r}"
            )
        return DirectedNetworkDesignGame(graph, pair_list, arcs)

    raise ValueError(
        f"unknown game family {game_family!r}; known: {', '.join(GAME_FAMILIES)}"
    )


def build_scenario(name: str, n: int = 16, seed: int = 0, **params: Any):
    """Build one seeded scenario instance.

    Parameters
    ----------
    name:
        Catalogue name (see :func:`scenario_names`).
    n:
        Target node count (cube families round down to ``2^d`` nodes).
    seed:
        RNG seed; the topology and the game wrapper share one stream, so
        the instance is a pure function of ``(name, n, seed, params)``.
    params:
        Topology knobs (family-specific, see
        :attr:`ScenarioFamily.params`) plus the shared game-wrapper knobs
        ``game``/``terminals``/``demands``/``orientation``/``pairs``.
        Unknown names are rejected.
    """
    fam = get_scenario(name)
    params = dict(params)
    game_family = params.pop("game", None) or "broadcast"
    wrapper = {
        "terminals": params.pop("terminals", "all"),
        "demands": params.pop("demands", "unit"),
        "orientation": params.pop("orientation", "symmetric"),
        "pairs": params.pop("pairs", "broadcast"),
    }
    topo = dict(fam.params)
    for key in list(params):
        if key in topo:
            topo[key] = params.pop(key)
    if params:
        raise ValueError(
            f"unknown parameter(s) for scenario {name!r}: "
            f"{', '.join(sorted(params))} (accepted: "
            f"{', '.join(sorted({**fam.params, **dict.fromkeys(GAME_PARAMS)}))})"
        )
    rng = ensure_rng(seed)
    graph = fam.build_graph(n, rng, **topo)
    return _wrap_game(graph, game_family, rng, **wrapper)


def scenario_instances(
    game_family: str, n: int = 12, seed: int = 0, names: Optional[List[str]] = None
):
    """One instance of ``game_family`` per scenario family (test/report sweep)."""
    out = []
    for name in names or scenario_names():
        out.append((name, build_scenario(name, n=n, seed=seed, game=game_family)))
    return out
