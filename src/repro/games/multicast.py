"""Multicast games — the paper's Section 6 generalization.

A multicast game is a network design game in which a *subset* of nodes
(the terminals) each connect to a common root; broadcast is the special
case where every node is a terminal.  The optimal design is a minimum
Steiner tree over ``terminals + {root}`` (computed exactly with
Dreyfus-Wagner), and SNE is solved through the general LP (1)/(2)
machinery, which applies verbatim.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

from repro.graphs.graph import Edge, Graph, Node
from repro.graphs.steiner import steiner_tree
from repro.graphs.tree import RootedTree
from repro.games.game import NetworkDesignGame, State


class MulticastGame:
    """A multicast game: ``terminals`` each connect to ``root``.

    Thin orchestration over :class:`NetworkDesignGame` (states/costs/
    equilibria are inherited) plus Steiner-tree optimal designs.
    """

    #: game-family name (see :mod:`repro.games.base`)
    family = "multicast"

    def __init__(self, graph: Graph, root: Node, terminals: Sequence[Node]):
        if root not in graph:
            raise ValueError(f"root {root!r} not in graph")
        terms = list(dict.fromkeys(terminals))
        if not terms:
            raise ValueError("a multicast game needs at least one terminal")
        if root in terms:
            raise ValueError("the root is not a terminal")
        self.graph = graph
        self.root = root
        self.terminals: List[Node] = terms
        self.nd_game = NetworkDesignGame(graph, [(t, root) for t in terms])

    @property
    def n_players(self) -> int:
        return len(self.terminals)

    @property
    def cost_sharing(self):
        """The sharing rule (multicast games are fair/Shapley)."""
        from repro.games.base import FairSharing

        return FairSharing()

    def state(self, node_paths: Sequence[Sequence[Node]]) -> State:
        """Validate a per-terminal strategy profile (delegates inward)."""
        return self.nd_game.state(node_paths)

    def default_state(self) -> State:
        """The family's natural target state (the Steiner optimum)."""
        return self.optimal_state()

    # -- optimal designs -----------------------------------------------------

    def optimal_design(self) -> Tuple[List[Edge], float]:
        """Exact minimum Steiner tree over terminals + root."""
        return steiner_tree(self.graph, [self.root, *self.terminals])

    def state_from_tree(self, edges: Iterable[Tuple[Node, Node]]) -> State:
        """The state where every terminal follows the given tree to the root.

        ``edges`` must form a tree containing the root and all terminals
        (extra Steiner nodes are fine).
        """
        tree = RootedTree(self.root, edges)
        missing = [t for t in self.terminals if t not in tree.depth]
        if missing:
            raise ValueError(f"tree does not reach terminals {missing!r}")
        paths = []
        for t in self.terminals:
            nodes = [t]
            while nodes[-1] != self.root:
                nodes.append(tree.parent[nodes[-1]])
            paths.append(nodes)
        return self.nd_game.state(paths)

    def optimal_state(self) -> State:
        """The Steiner-optimal design as a state."""
        edges, _ = self.optimal_design()
        if not edges:
            raise ValueError("degenerate multicast instance")
        return self.state_from_tree(edges)

    def social_optimum(self) -> float:
        return self.optimal_design()[1]
