"""Tests for RootedTree utilities."""

import pytest

from repro.graphs import RootedTree
from repro.graphs.graph import canonical_edge


@pytest.fixture
def caterpillar():
    #      r
    #      |
    #      a
    #     / \
    #    b   c
    #    |
    #    d
    return RootedTree("r", [("r", "a"), ("a", "b"), ("a", "c"), ("b", "d")])


class TestStructure:
    def test_parents(self, caterpillar):
        t = caterpillar
        assert t.parent["a"] == "r"
        assert t.parent["d"] == "b"
        assert t.root == "r"

    def test_depths(self, caterpillar):
        t = caterpillar
        assert t.depth == {"r": 0, "a": 1, "b": 2, "c": 2, "d": 3}

    def test_num_nodes_and_edges(self, caterpillar):
        assert caterpillar.num_nodes == 5
        assert len(caterpillar.edges) == 4

    def test_leaves(self, caterpillar):
        assert set(caterpillar.leaves()) == {"c", "d"}

    def test_edge_to_parent(self, caterpillar):
        assert caterpillar.edge_to_parent("d") == canonical_edge("d", "b")
        with pytest.raises(ValueError):
            caterpillar.edge_to_parent("r")

    def test_child_endpoint(self, caterpillar):
        e = caterpillar.edge_to_parent("b")
        assert caterpillar.child_endpoint(e) == "b"
        with pytest.raises(ValueError):
            caterpillar.child_endpoint(("r", "d"))

    def test_rejects_cycle(self):
        with pytest.raises(ValueError):
            RootedTree(0, [(0, 1), (1, 2), (2, 0)])

    def test_rejects_disconnected(self):
        with pytest.raises(ValueError):
            RootedTree(0, [(0, 1), (2, 3)])

    def test_rejects_duplicate_edge(self):
        with pytest.raises(ValueError):
            RootedTree(0, [(0, 1), (1, 0)])

    def test_single_node_tree(self):
        t = RootedTree("r", [])
        assert t.nodes == ["r"]
        assert t.path_to_root("r") == []


class TestPaths:
    def test_path_to_root(self, caterpillar):
        t = caterpillar
        path = t.path_to_root("d")
        assert path == [
            canonical_edge("d", "b"),
            canonical_edge("b", "a"),
            canonical_edge("a", "r"),
        ]

    def test_path_cache_returns_fresh_lists(self, caterpillar):
        t = caterpillar
        p1 = t.path_to_root("d")
        p1.append(("x", "y"))
        assert len(t.path_to_root("d")) == 3

    def test_lca(self, caterpillar):
        t = caterpillar
        assert t.lca("d", "c") == "a"
        assert t.lca("b", "d") == "b"
        assert t.lca("r", "d") == "r"
        assert t.lca("c", "c") == "c"

    def test_path_between(self, caterpillar):
        t = caterpillar
        path = t.path_between("d", "c")
        assert path == [
            canonical_edge("d", "b"),
            canonical_edge("b", "a"),
            canonical_edge("a", "c"),
        ]
        assert t.path_between("c", "c") == []


class TestSubtrees:
    def test_subtree_nodes(self, caterpillar):
        t = caterpillar
        assert t.subtree_nodes("a") == {"a", "b", "c", "d"}
        assert t.subtree_nodes("d") == {"d"}

    def test_subtree_loads_unit(self, caterpillar):
        t = caterpillar
        loads = t.subtree_loads()
        assert loads[canonical_edge("a", "r")] == 4
        assert loads[canonical_edge("b", "a")] == 2
        assert loads[canonical_edge("c", "a")] == 1
        assert loads[canonical_edge("d", "b")] == 1

    def test_subtree_loads_multiplicity(self, caterpillar):
        t = caterpillar
        loads = t.subtree_loads({"d": 10, "c": 0})
        assert loads[canonical_edge("d", "b")] == 10
        assert loads[canonical_edge("b", "a")] == 11
        assert loads[canonical_edge("c", "a")] == 0
        assert loads[canonical_edge("a", "r")] == 12

    def test_loads_sum_to_depth_weighted_count(self):
        # For a path r-1-2-3, edge loads are 3, 2, 1.
        t = RootedTree(0, [(0, 1), (1, 2), (2, 3)])
        loads = t.subtree_loads()
        assert loads[(0, 1)] == 3
        assert loads[(1, 2)] == 2
        assert loads[(2, 3)] == 1
