"""E11 — STABLE NETWORK DESIGN under a budget sweep.

Exact SND on small instances: the achievable social cost is non-increasing
in the budget, reaches the MST weight once the budget passes the LP-optimal
enforcement cost (at most wgt(MST)/e by Theorem 6), and the heuristic
tracks the exact front.  Both design solvers run through the
:mod:`repro.api` registry.
"""

from __future__ import annotations

import math

from repro.api import solve
from repro.experiments.records import ExperimentResult
from repro.games.broadcast import BroadcastGame
from repro.graphs.generators import random_tree_plus_chords
from repro.utils.timing import Timer


def _interesting_instance(seed: int, n: int) -> BroadcastGame:
    """A random instance whose MST genuinely needs subsidies (cost > 0) —
    otherwise the budget sweep is a flat line."""
    for offset in range(64):
        g = random_tree_plus_chords(n, n // 2, seed=seed + offset, chord_factor=1.05)
        game = BroadcastGame(g, root=0)
        cost = solve(game.mst_state(), solver="sne-lp3").budget_used
        if cost > 0.02 * game.mst_weight():
            return game
    return game  # fall back to the last candidate


def run(seed: int = 0, n: int = 7, budget_fracs=(0.0, 0.05, 0.1, 0.2, 1 / math.e, 0.6)) -> ExperimentResult:
    game = _interesting_instance(seed, n)
    mst_w = game.mst_weight()
    mst_cost = solve(game.mst_state(), solver="sne-lp3").budget_used
    rows = []
    monotone = True
    prev = math.inf
    with Timer() as t:
        for frac in budget_fracs:
            budget = frac * mst_w
            exact = solve(game, solver="snd-exact", budget=budget)
            heur = solve(game, solver="snd-local-search", budget=budget)
            assert exact.feasible
            monotone &= exact.target_cost <= prev + 1e-9
            prev = exact.target_cost
            rows.append(
                {
                    "budget/wgt(MST)": frac,
                    "exact_weight": exact.target_cost,
                    "exact_subsidy": exact.budget_used,
                    "heuristic_weight": heur.target_cost,
                    "heuristic_method": heur.metadata["method"],
                    "mst_reached": abs(exact.target_cost - mst_w) < 1e-9,
                }
            )
    result = ExperimentResult(
        experiment_id="E11",
        title="SND: social cost vs subsidy budget (exact + heuristic)",
        headline=(
            f"exact cost non-increasing in budget: {monotone}; MST (weight "
            f"{mst_w:.4g}) becomes affordable at budget {mst_cost:.4g} "
            f"<= wgt(MST)/e = {mst_w/math.e:.4g} (Theorem 6)"
        ),
        rows=rows,
    )
    result.elapsed_seconds = t.elapsed
    return result
