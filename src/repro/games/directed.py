"""Directed network design games: paths must follow allowed arc directions.

The built network is still a set of undirected edges whose cost is split
fairly among all users (the paper's cost model is orientation-blind), but
each edge may only be *traversed* in its allowed direction(s) — the
"one-way fiber pair" variant of the ISP story in the paper's introduction.
A fully symmetric instance is exactly a :class:`~repro.games.game.
NetworkDesignGame` (and :func:`repro.games.base.to_general` performs that
downgrade), so the directed family strictly extends the general one.

Best response and equilibrium checking run on the shared
:class:`~repro.games.engine.BestResponseEngine`: the undirected CSR stays
the substrate and closed directions are masked out per arc slot
(:meth:`~repro.graphs.core.IndexedGraph.arc_open_mask`).
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.games.game import NetworkDesignGame, State
from repro.graphs.graph import Graph, Node


class DirectedState(State):
    """A strategy profile whose paths all respect the game's arcs."""

    #: engine dispatch marker (see ``BestResponseEngine.bind``)
    binding_kind = "rule"

    def __init__(self, game: "DirectedNetworkDesignGame", node_paths: Sequence[Sequence[Node]]):
        super().__init__(game, node_paths)
        for i, nodes in enumerate(self.node_paths):
            for u, v in zip(nodes, nodes[1:]):
                if not game.allows(u, v):
                    raise ValueError(
                        f"player {i}: traversal {(u, v)!r} goes against the arc"
                    )


class DirectedNetworkDesignGame(NetworkDesignGame):
    """A network design game with per-direction traversal constraints.

    Parameters
    ----------
    graph:
        The undirected edge-weighted graph of buildable links.
    terminal_pairs:
        One ``(source, target)`` pair per player.
    arcs:
        Allowed ``(tail, head)`` traversals.  Every arc must be a direction
        of an existing edge; edges absent from ``arcs`` entirely are
        unusable.  ``None`` (default) opens both directions of every edge,
        making the game symmetric.
    """

    family = "directed"

    def __init__(
        self,
        graph: Graph,
        terminal_pairs: Sequence[Tuple[Node, Node]],
        arcs: Optional[Iterable[Tuple[Node, Node]]] = None,
    ):
        super().__init__(graph, terminal_pairs)
        if arcs is None:
            allowed = frozenset(
                arc for u, v, _ in graph.edges() for arc in ((u, v), (v, u))
            )
        else:
            collected = set()
            for u, v in arcs:
                if not graph.has_edge(u, v):
                    raise ValueError(f"arc {(u, v)!r} has no underlying edge")
                collected.add((u, v))
            allowed = frozenset(collected)
        # cost_sharing stays the inherited FairSharing property: the built
        # edge is orientation-blind, only traversal is constrained.
        self.arcs: FrozenSet[Tuple[Node, Node]] = allowed
        self._arc_open_cache: Optional[Tuple[int, np.ndarray]] = None

    # -- arc queries ---------------------------------------------------------

    def allows(self, u: Node, v: Node) -> bool:
        """True when the edge {u, v} may be traversed from ``u`` to ``v``."""
        return (u, v) in self.arcs

    def is_symmetric(self) -> bool:
        """True when the game equals its undirected relaxation.

        Every graph edge must be open in *both* directions — an edge with
        no arcs at all is unusable here but traversable in the undirected
        game, so it breaks the overlap just like a one-way arc does.
        """
        arcs = self.arcs
        return all(
            (u, v) in arcs and (v, u) in arcs for u, v, _ in self.graph.edges()
        )

    def path_allowed(self, nodes: Sequence[Node]) -> bool:
        """True when a node walk respects every arc direction."""
        return all(self.allows(u, v) for u, v in zip(nodes, nodes[1:]))

    def engine_arc_open(self, ig) -> np.ndarray:
        """CSR arc-slot mask for the engine (cached per graph version)."""
        cached = self._arc_open_cache
        if cached is not None and cached[0] == self.graph._version:
            return cached[1]
        mask = ig.arc_open_mask(self.arcs)
        self._arc_open_cache = (self.graph._version, mask)
        return mask

    # -- states --------------------------------------------------------------

    def state(self, node_paths: Sequence[Sequence[Node]]) -> DirectedState:
        return DirectedState(self, node_paths)

    def shortest_path_state(self) -> DirectedState:
        """Every player on her arc-respecting weight-shortest path."""
        from repro.graphs.core import dijkstra_indexed

        ig = self.graph.to_indexed()
        mask = self.engine_arc_open(ig)
        labels = ig.labels
        paths: List[List[Node]] = []
        for p in self.players:
            s, t = ig.id_of(p.source), ig.id_of(p.target)
            dist, pred, _ = dijkstra_indexed(ig, s, target=t, arc_open=mask)
            if dist[t] == float("inf"):
                raise ValueError(
                    f"player {p.index}: no arc-respecting path "
                    f"{p.source!r}->{p.target!r}"
                )
            rev = [t]
            while rev[-1] != s:
                rev.append(pred[rev[-1]])
            paths.append([labels[x] for x in reversed(rev)])
        return DirectedState(self, paths)
