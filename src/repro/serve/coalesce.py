"""Same-request coalescing for the solver daemon (single-flight + window).

Under load, identical requests arrive together: a dashboard refreshing a
panel, a sweep fan-out hitting the same instance from several clients.
Solving each copy independently wastes exactly the work the engine's
batched separation oracle exists to avoid — so the service funnels every
(instance digest, solver, options) cell through a :class:`Coalescer`:

* the **first** arrival becomes the *leader* and computes the result —
  one engine scan, one LP, one cache write;
* arrivals while that flight is open become *followers*: they block on
  the flight's event and receive the leader's result without touching a
  worker slot;
* an optional **batch window** makes the leader linger briefly before
  solving, widening the group under bursty traffic (off by default: with
  a window of 0 the coalescer is pure single-flight).

Results are deterministic either way — followers get bytes identical to
what a lone request would have produced — so coalescing is purely a
throughput lever, never a correctness trade.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Dict, Optional, Tuple


class _Flight:
    """One in-progress computation plus everyone waiting on it."""

    __slots__ = ("event", "value", "error", "joiners")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.value: Any = None
        self.error: Optional[BaseException] = None
        self.joiners = 0


class Coalescer:
    """Deduplicates concurrent calls that share a key.

    ``run(key, fn)`` executes ``fn`` once per group of concurrent callers
    with equal ``key``: the leader runs it, followers wait and share the
    value (or the leader's exception).  Thread-safe; a flight is removed
    the moment it settles, so sequential calls never coalesce (the result
    cache handles those).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._inflight: Dict[str, _Flight] = {}

    def inflight(self) -> int:
        """Number of currently open flights (for ``/stats``)."""
        with self._lock:
            return len(self._inflight)

    def run(
        self, key: str, fn: Callable[[], Any], window: float = 0.0
    ) -> Tuple[Any, bool]:
        """Compute or join: returns ``(value, joined)``.

        ``joined`` is True when this caller received a leader's result
        instead of computing its own.  ``window`` > 0 makes a leader sleep
        that many seconds before computing, so same-key requests arriving
        just behind it join the same flight.
        """
        with self._lock:
            flight = self._inflight.get(key)
            lead = flight is None
            if lead:
                flight = self._inflight[key] = _Flight()
            else:
                flight.joiners += 1

        if not lead:
            flight.event.wait()
            if flight.error is not None:
                raise flight.error
            return flight.value, True

        try:
            if window > 0:
                time.sleep(window)
            flight.value = fn()
            return flight.value, False
        except BaseException as exc:
            flight.error = exc
            raise
        finally:
            # Settle under the lock *before* waking followers: once the
            # event is set no new caller may join this flight.
            with self._lock:
                self._inflight.pop(key, None)
            flight.event.set()
