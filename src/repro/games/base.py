"""The game-family layer: one contract over every game shape.

The paper's machinery (LP (1)-(3), SND, the virtual-cost analysis) is
defined per game *shape* — broadcast trees, multicast terminals, general
source/target pairs, weighted demands, directed arcs — but the quantities
every solver actually consumes are the same three: a strategy space per
player, per-edge usage loads, and a *cost-sharing rule* mapping an edge's
(subsidized) weight and its load to each user's share.  This module names
that contract:

* :class:`CostSharingRule` — the pluggable sharing layer.  A rule assigns
  each player a per-edge **load contribution** ``alpha_i(a) > 0``; her
  share of edge ``a`` is ``alpha_i(a) * (w_a - b_a) / L_a`` where ``L_a``
  is the total contribution of ``a``'s users.  :class:`FairSharing`
  (``alpha = 1``: the Shapley/equal split of the paper's Section 2),
  :class:`ProportionalSharing` (``alpha_i = d_i``: Chen-Roughgarden
  demand-proportional shares, Section 6) and :class:`PerEdgeSplit`
  (arbitrary exogenous per-(player, edge) contributions) instantiate it.
* :data:`GAME_FAMILIES` and :func:`family_of` — the five first-class
  families every layer above (engine bindings, ``repro.api`` adapters,
  the sweep runtime, the scenario library) can rely on.
* :func:`to_general` / :func:`to_broadcast` — *exact* downgrades between
  families where their semantics coincide (unit demands, symmetric arcs,
  full terminal coverage), so family-restricted solvers serve any family
  instance that is semantically inside their domain.

The engine consumes rules through :meth:`CostSharingRule.weights_for`
(one scalar-or-array of load contributions per player, broadcastable over
edge ids); the dict-based layers use :meth:`CostSharingRule.weight_on`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    List,
    Mapping,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from repro.graphs.graph import Edge, canonical_edge

if TYPE_CHECKING:  # pragma: no cover - import cycle guards
    from repro.games.broadcast import BroadcastGame
    from repro.games.engine import BestResponseEngine
    from repro.games.game import NetworkDesignGame

#: the five first-class game families, in generality order
GAME_FAMILIES = ("broadcast", "multicast", "general", "weighted", "directed")


# ---------------------------------------------------------------------------
# Cost-sharing rules
# ---------------------------------------------------------------------------


class CostSharingRule(ABC):
    """How an edge's (subsidized) weight splits among its users.

    A rule is fully determined by the per-(player, edge) load contribution
    ``alpha_i(a)``: player ``i``'s share of edge ``a`` in state ``T`` is ::

        share_i(a; b) = alpha_i(a) * max(0, w_a - b_a) / L_a(T),
        L_a(T) = sum_{j uses a} alpha_j(a)

    and a deviator joining ``a`` pays with denominator ``L_a + alpha_i(a)``
    (``L_a`` when she already uses it) — exactly the generalization the
    best-response engine prices in two vector operations.
    """

    #: short registry name (also the JSON tag)
    name: str = ""

    @abstractmethod
    def weight_on(self, position: int, edge: Edge) -> float:
        """Load contribution ``alpha_i(a)`` of player ``position`` on ``edge``."""

    def weights_for(
        self, position: int, engine: "BestResponseEngine"
    ) -> Union[float, np.ndarray]:
        """Per-edge-id contributions of one player (scalar broadcasts).

        The generic implementation materializes an array through
        :meth:`weight_on`; constant rules override with a scalar.
        """
        return np.array(
            [self.weight_on(position, e) for e in engine.ig.edge_labels]
        )

    def to_json(self) -> Dict[str, Any]:
        """Plain-data form (inverse: :func:`rule_from_json`)."""
        return {"rule": self.name}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"


class FairSharing(CostSharingRule):
    """Equal (Shapley) split: every user contributes 1 (the paper's model)."""

    name = "fair"

    def weight_on(self, position: int, edge: Edge) -> float:
        return 1.0

    def weights_for(
        self, position: int, engine: "BestResponseEngine"
    ) -> Union[float, np.ndarray]:
        return 1.0

    def __eq__(self, other: object) -> bool:
        return isinstance(other, FairSharing)

    def __hash__(self) -> int:
        return hash(self.name)


class ProportionalSharing(CostSharingRule):
    """Demand-proportional split: player ``i`` contributes ``d_i`` everywhere."""

    name = "proportional"

    def __init__(self, demands: Sequence[float]):
        self.demands: Tuple[float, ...] = tuple(float(d) for d in demands)
        if any(d <= 0 for d in self.demands):
            raise ValueError("demands must be positive")

    def weight_on(self, position: int, edge: Edge) -> float:
        return self.demands[position]

    def weights_for(
        self, position: int, engine: "BestResponseEngine"
    ) -> Union[float, np.ndarray]:
        return self.demands[position]

    def to_json(self) -> Dict[str, Any]:
        return {"rule": self.name, "demands": list(self.demands)}

    def __eq__(self, other: object) -> bool:
        return isinstance(other, ProportionalSharing) and self.demands == other.demands

    def __hash__(self) -> int:
        return hash((self.name, self.demands))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ProportionalSharing({list(self.demands)!r})"


class PerEdgeSplit(CostSharingRule):
    """Arbitrary exogenous split: per-edge vectors of player contributions.

    ``table[edge][i]`` is ``alpha_i(edge)``; edges missing from the table
    fall back to the player's ``base`` contribution (default 1, i.e. fair).
    With every vector constant this degrades to :class:`ProportionalSharing`;
    with all-ones it degrades to :class:`FairSharing`.
    """

    name = "per-edge"

    def __init__(
        self,
        table: Mapping[Edge, Sequence[float]],
        n_players: int,
        base: Union[float, Sequence[float]] = 1.0,
    ):
        self.n_players = int(n_players)
        if isinstance(base, (int, float)):
            self.base: Tuple[float, ...] = (float(base),) * self.n_players
        else:
            self.base = tuple(float(b) for b in base)
            if len(self.base) != self.n_players:
                raise ValueError("base must give one contribution per player")
        self.table: Dict[Edge, Tuple[float, ...]] = {}
        for edge, weights in table.items():
            row = tuple(float(w) for w in weights)
            if len(row) != self.n_players:
                raise ValueError(
                    f"edge {edge!r}: expected {self.n_players} contributions, "
                    f"got {len(row)}"
                )
            if any(w <= 0 for w in row):
                raise ValueError(f"edge {edge!r}: contributions must be positive")
            self.table[canonical_edge(*edge)] = row
        if any(b <= 0 for b in self.base):
            raise ValueError("base contributions must be positive")

    def weight_on(self, position: int, edge: Edge) -> float:
        row = self.table.get(canonical_edge(*edge))
        return row[position] if row is not None else self.base[position]

    def to_json(self) -> Dict[str, Any]:
        from repro.api.serialize import encode_node
        from repro.graphs.graph import _sort_key

        # canonical edge order: equal rules must serialize byte-identically
        # (the content-addressed sweep cache keys on instance JSON)
        rows = sorted(
            self.table.items(),
            key=lambda kv: (_sort_key(kv[0][0]), _sort_key(kv[0][1])),
        )
        return {
            "rule": self.name,
            "n_players": self.n_players,
            "base": list(self.base),
            "table": [
                [encode_node(u), encode_node(v), list(row)] for (u, v), row in rows
            ],
        }

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, PerEdgeSplit)
            and self.base == other.base
            and self.table == other.table
        )

    def __hash__(self) -> int:
        return hash((self.name, self.base, tuple(sorted(self.table.items(), key=repr))))


def rule_from_json(data: Mapping[str, Any]) -> CostSharingRule:
    """Inverse of :meth:`CostSharingRule.to_json`."""
    kind = data.get("rule")
    if kind == "fair":
        return FairSharing()
    if kind == "proportional":
        return ProportionalSharing(data["demands"])
    if kind == "per-edge":
        from repro.api.serialize import decode_node

        table = {
            canonical_edge(decode_node(u), decode_node(v)): row
            for u, v, row in data["table"]
        }
        return PerEdgeSplit(table, int(data["n_players"]), base=data["base"])
    raise ValueError(f"unknown cost-sharing rule {kind!r}")


# ---------------------------------------------------------------------------
# Family identification
# ---------------------------------------------------------------------------


def family_of(game: Any) -> str:
    """The :data:`GAME_FAMILIES` name of a game instance.

    Every game class carries a ``family`` class attribute; anything without
    one is not part of the game-family contract.
    """
    family = getattr(type(game), "family", None)
    if family not in GAME_FAMILIES:
        raise TypeError(
            f"{type(game).__name__} is not a registered game family "
            f"(known: {', '.join(GAME_FAMILIES)})"
        )
    return family


# ---------------------------------------------------------------------------
# Exact downgrades between families
# ---------------------------------------------------------------------------


class FamilyCoercionError(TypeError):
    """A family instance lies outside the target family's exact overlap."""


def to_general(game: Any) -> "NetworkDesignGame":
    """Exact :class:`NetworkDesignGame` view of any family instance.

    Raises :class:`FamilyCoercionError` when the instance's semantics do
    not coincide with fair sharing on an undirected graph: non-unit
    demands (weighted), asymmetric arcs (directed).
    """
    from repro.games.game import NetworkDesignGame

    family = family_of(game)
    if family == "general":
        return game
    if family == "broadcast":
        return game.to_network_design_game()
    if family == "multicast":
        return game.nd_game
    if family == "weighted":
        rule = game.cost_sharing
        if not (
            isinstance(rule, ProportionalSharing)
            and len(set(rule.demands)) <= 1
        ):
            raise FamilyCoercionError(
                "a weighted game equals a fair-sharing game only with "
                "uniform demands; this instance's shares are genuinely "
                f"demand-dependent ({rule!r})"
            )
        return NetworkDesignGame(
            game.graph, [(p.source, p.target) for p in game.players]
        )
    if family == "directed":
        if not game.is_symmetric():
            raise FamilyCoercionError(
                "a directed game equals an undirected one only when every "
                "edge is traversable both ways; this instance has one-way "
                "or fully-closed edges"
            )
        return NetworkDesignGame(
            game.graph, [(p.source, p.target) for p in game.players]
        )
    raise FamilyCoercionError(f"cannot view a {family!r} game as general")


def to_broadcast(game: Any) -> "BroadcastGame":
    """Exact :class:`BroadcastGame` view of any family instance.

    The overlap condition: (after :func:`to_general` coercion) every
    non-root node hosts exactly one player and all players share one
    destination.  Multicast games qualify exactly when their terminals
    cover every non-root node.
    """
    from repro.games.broadcast import BroadcastGame

    family = family_of(game)
    if family == "broadcast":
        return game
    if family == "multicast":
        if set(game.terminals) != game.graph.node_set() - {game.root}:
            raise FamilyCoercionError(
                "a multicast game is a broadcast game only when its "
                "terminals cover every non-root node"
            )
        return BroadcastGame(game.graph, game.root)
    nd = to_general(game)  # weighted/directed funnel through the general view
    targets = {p.target for p in nd.players}
    if len(targets) != 1:
        raise FamilyCoercionError(
            "broadcast needs a single common destination; this instance "
            f"has {len(targets)} distinct targets"
        )
    root = next(iter(targets))
    sources = [p.source for p in nd.players]
    expected = nd.graph.node_set() - {root}
    if len(sources) != len(set(sources)) or set(sources) != expected:
        raise FamilyCoercionError(
            "broadcast needs exactly one player per non-root node; this "
            "instance's sources do not cover the nodes one-to-one"
        )
    return BroadcastGame(nd.graph, root)


def describe_families() -> List[Dict[str, str]]:
    """One-line description per family (the ``cli families`` footer)."""
    return [
        {"family": "broadcast", "description": "every non-root node connects to a common root; states are spanning trees"},
        {"family": "multicast", "description": "a terminal subset connects to the root; optimal designs are Steiner trees"},
        {"family": "general", "description": "arbitrary source/target pairs with fair (Shapley) sharing"},
        {"family": "weighted", "description": "players carry demands; edge costs split demand-proportionally"},
        {"family": "directed", "description": "paths must follow allowed arc directions on the built edges"},
    ]
