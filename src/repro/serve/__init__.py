"""``repro.serve`` — the persistent solver daemon (HTTP/JSON API).

Everything else in the repo is one-shot: each CLI invocation re-interns
graphs, re-binds engines and re-grows LP bases from cold.  The serve layer
keeps that warm state *resident*: a long-running process holds an LRU of
interned instances (live game objects, whose graphs carry their cached
:class:`~repro.games.engine.BestResponseEngine` and state bindings), shares
the content-addressed :class:`~repro.runtime.cache.ResultCache` as its
response store, and speaks the existing canonical JSON over plain HTTP —
no dependencies beyond the standard library.

The pieces:

* :class:`ServeConfig` / :class:`SolverService` — the transport-independent
  core: interning, result-cache short-circuiting, admission control and
  same-request coalescing (:mod:`repro.serve.service`);
* :func:`make_server` / :func:`serve_forever` — the threaded stdlib HTTP
  front end (:mod:`repro.serve.app`);
* :class:`ServeClient` — the matching client, used by the tests, the CI
  smoke job and ``benchmarks/bench_serve.py`` (:mod:`repro.serve.client`).

Response contract: ``POST /solve`` returns exactly the bytes of
``repro-experiments solve --json --canonical`` for the same instance —
the canonical report JSON with the wall clock zeroed (see
:func:`repro.api.serialize.canonical_report_json`), so a daemon and a
cold CLI process are byte-for-byte interchangeable.

>>> from repro.serve import ServeConfig, make_server   # doctest: +SKIP
>>> server = make_server(ServeConfig(), "127.0.0.1", 0) # doctest: +SKIP
>>> server.serve_forever()                              # doctest: +SKIP

CLI front end: ``repro-experiments serve --host 127.0.0.1 --port 8350``.
"""

from repro.serve.coalesce import Coalescer
from repro.serve.service import (
    AdmissionControl,
    InstanceLRU,
    ServeConfig,
    ServeRequestError,
    SolverService,
)
from repro.serve.app import make_server, serve_forever
from repro.serve.client import ServeClient, ServeError

__all__ = [
    "AdmissionControl",
    "Coalescer",
    "InstanceLRU",
    "ServeClient",
    "ServeConfig",
    "ServeError",
    "ServeRequestError",
    "SolverService",
    "make_server",
    "serve_forever",
]
