"""A1 — ablations of the Theorem 6 / Theorem 11 design choices.

Two design choices carry the upper bound:

1. **Packing discipline** — subsidies go to the *least crowded* edges.
   Ablation: satisfy the Theorem 11 cycle constraint packing most-crowded
   edges first, or spreading uniformly; both are strictly costlier, and
   the gap grows with n.
2. **Weight-level decomposition** — multi-weight graphs are peeled into
   uniform levels before the virtual-cost argument.  Ablation: a naive
   single-level application (every positive tree edge treated as heavy at
   ``c = w_max``) overshoots the ``wgt(T)/e`` bound on two-level
   instances, while the decomposed algorithm stays exactly at it.
"""

from __future__ import annotations

from repro.api import solve
from repro.bounds.harmonic import harmonic
from repro.bounds.instances import theorem11_cycle_instance
from repro.experiments.records import ExperimentResult
from repro.games.broadcast import BroadcastGame
from repro.graphs.graph import Graph
from repro.subsidies.theorem6 import _level_subsidies
from repro.utils.timing import Timer


def _cycle_cost_most_crowded(n: int) -> float:
    """Min subsidies satisfying the cycle constraint when forced to fill
    the most crowded edges (loads n, n-1, ...) first."""
    need = harmonic(n) - 1.0  # required reduction of sum b_i / load_i
    total = 0.0
    for load in range(n, 0, -1):
        if need <= 0:
            break
        take = min(1.0, need * load)
        total += take
        need -= take / load
    return total


def _cycle_cost_uniform(n: int) -> float:
    """Min uniform subsidy level b on every edge: b * H_n >= H_n - 1."""
    b = (harmonic(n) - 1.0) / harmonic(n)
    return b * n


def run(seed: int = 0, sizes=(8, 16, 32, 64)) -> ExperimentResult:
    rows = []
    with Timer() as t:
        for n in sizes:
            _, state = theorem11_cycle_instance(n)
            least = solve(state, solver="sne-lp3").budget_used  # = least-crowded packing
            most = _cycle_cost_most_crowded(n)
            uniform = _cycle_cost_uniform(n)
            rows.append(
                {
                    "ablation": "packing rule",
                    "n": n,
                    "least_crowded": least / n,
                    "uniform": uniform / n,
                    "most_crowded": most / n,
                    "penalty_most/least": most / least,
                }
            )

        # Decomposition ablation on a two-level caterpillar.
        g = Graph.from_edges(
            [(0, 1, 1.0), (1, 2, 3.0), (2, 3, 1.0), (3, 4, 3.0), (0, 4, 6.5), (1, 3, 4.5)]
        )
        game = BroadcastGame(g, root=0)
        state = game.mst_state()
        decomposed = solve(state, solver="theorem6")
        # Naive single level: all positive tree edges heavy at c = w_max.
        w_max = max(game.graph.weight(*e) for e in state.edges)
        heavy = {e for e in state.edges if game.graph.weight(*e) > 0}
        _, naive_total = _level_subsidies(state, heavy, w_max)
        rows.append(
            {
                "ablation": "decomposition",
                "n": game.n_players,
                "least_crowded": decomposed.budget_used / state.social_cost(),
                "uniform": float("nan"),
                "most_crowded": naive_total / state.social_cost(),
                "penalty_most/least": naive_total / decomposed.budget_used,
            }
        )
    result = ExperimentResult(
        experiment_id="A1",
        title="Ablations: least-crowded packing and weight-level decomposition",
        headline=(
            "both design choices matter: most-crowded packing pays "
            f"{rows[len(sizes)-1]['penalty_most/least']:.2f}x at n={sizes[-1]}, "
            "and skipping the decomposition overshoots the wgt(T)/e budget by "
            f"{rows[-1]['penalty_most/least']:.2f}x"
        ),
        rows=rows,
        notes=(
            "'least_crowded'/'most_crowded' columns hold subsidy fractions of "
            "wgt(T); for the decomposition row they hold the decomposed vs "
            "naive single-level totals."
        ),
    )
    result.elapsed_seconds = t.elapsed
    return result
