"""Game-family benchmark — engine-backed weighted check vs legacy oracle.

The acceptance bar for the unified game-family layer: on a 200-node
weighted broadcast-shaped instance the engine-backed
:func:`check_weighted_equilibrium` must beat the dict-based
:func:`check_weighted_equilibrium_legacy` by at least 2x, with identical
verdicts on randomized cross-checks — the same bar PR 2 set for the
broadcast checker, now extended to the weighted family.  The directed
binding is exercised alongside (same engine, plus the CSR arc mask).
"""

import os
import time

import pytest

from repro.games.directed import DirectedNetworkDesignGame
from repro.games.equilibrium import check_equilibrium
from repro.games.weighted import (
    WeightedNetworkDesignGame,
    check_weighted_equilibrium,
    check_weighted_equilibrium_legacy,
)
from repro.graphs.generators import random_tree_plus_chords


def _weighted_state(n, seed):
    g = random_tree_plus_chords(n, n // 2, seed=seed, chord_factor=1.1)
    others = [u for u in g.nodes if u != 0]
    demands = [1.0 + (i % 4) * 0.5 for i in range(len(others))]
    game = WeightedNetworkDesignGame(g, [(u, 0) for u in others], demands)
    return game.shortest_path_state()


@pytest.fixture(scope="module")
def weighted_200():
    return _weighted_state(200, seed=7)


def _engine_full_scan(state):
    """Engine-backed weighted check in full-scan mode (no early exit)."""
    return check_equilibrium(state, find_all=True).is_equilibrium


def _legacy_full_scan(state):
    return check_weighted_equilibrium_legacy(state, find_all=True)


def test_engine_weighted_check(benchmark, weighted_200):
    stable = benchmark(_engine_full_scan, weighted_200)
    assert isinstance(stable, bool)


def test_legacy_weighted_check(benchmark, weighted_200):
    stable = benchmark(_legacy_full_scan, weighted_200)
    assert isinstance(stable, bool)


def test_directed_engine_check(benchmark):
    g = random_tree_plus_chords(200, 100, seed=7, chord_factor=1.1)
    others = [u for u in g.nodes if u != 0]
    game = DirectedNetworkDesignGame(g, [(u, 0) for u in others])
    state = game.shortest_path_state()
    report = benchmark(check_equilibrium, state, find_all=True)
    assert isinstance(report.is_equilibrium, bool)


def test_verdicts_identical_on_randomized_instances(weighted_200):
    states = [weighted_200] + [
        _weighted_state(n, seed)
        for n, seed in [(60, 1), (60, 2), (80, 3), (100, 4), (120, 5)]
    ]
    for state in states:
        assert check_weighted_equilibrium(state) == (
            check_weighted_equilibrium_legacy(state)
        )
        assert _engine_full_scan(state) == _legacy_full_scan(state)


@pytest.mark.skipif(
    os.environ.get("CI", "") != "",
    reason="wall-clock ratio assertion; shared CI runners are too noisy for it",
)
def test_engine_beats_legacy_2x(weighted_200):
    """min-of-5 wall-clock: engine at least 2x faster than the legacy oracle.

    Full-scan mode on both sides (find-first exits on the first improving
    deviation, which measures nothing but the first player's query).
    """

    def best_of(fn, reps=5):
        times = []
        for _ in range(reps):
            t0 = time.perf_counter()
            fn(weighted_200)
            times.append(time.perf_counter() - t0)
        return min(times)

    _engine_full_scan(weighted_200)  # warm the interned caches
    t_engine = best_of(_engine_full_scan)
    t_legacy = best_of(_legacy_full_scan)
    speedup = t_legacy / t_engine
    assert speedup >= 2.0, (
        f"engine {t_engine * 1e3:.2f}ms vs legacy {t_legacy * 1e3:.2f}ms "
        f"-> {speedup:.2f}x (< 2x)"
    )
