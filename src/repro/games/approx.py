"""Approximate equilibria (Albers & Lenzner [2] in the paper's related work).

A state is an *alpha-approximate* Nash equilibrium when no player can cut
her cost by more than a factor ``alpha``: ``cost_i(T) <= alpha * cost_i(T')``
for every deviation.  The *stretch* of a state is the smallest such alpha —
a complementary lens on the paper's question: subsidies buy the designer
exact stability, approximation tolerance buys it for free, and
:func:`subsidies_for_stretch` interpolates between the two.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple, Union

import numpy as np

from repro.graphs.graph import canonical_edge
from repro.lp import LinearProgram, LPStatus, solve_lp
from repro.games.broadcast import TreeState
from repro.games.game import State, Subsidies
from repro.subsidies.assignment import SubsidyAssignment

AnyState = Union[State, TreeState]


def equilibrium_stretch(state: AnyState, subsidies: Optional[Subsidies] = None) -> float:
    """The smallest alpha making the state an alpha-approximate equilibrium.

    ``max_i cost_i / best_response_i`` (1.0 at an exact equilibrium; a
    player whose best response is free while she pays something gives
    ``inf``).

    Runs on the engine binding of the state's game family — broadcast
    trees, general paths, weighted/per-edge-split demands and directed
    arcs all price through the same vectorized scan.
    """
    from repro.games.engine import BestResponseEngine

    engine = BestResponseEngine.for_graph(state.game.graph)
    binding = engine.bind(state)
    wb = engine.net_weights(engine.subsidy_vector(subsidies))
    worst = 1.0
    for rec in binding.scan(wb, find_all=True, improving_only=False):
        if rec.current_cost <= 0:
            continue
        if rec.deviation_cost <= 0:
            return float("inf")
        worst = max(worst, rec.current_cost / rec.deviation_cost)
    return worst


def is_alpha_equilibrium(
    state: AnyState, alpha: float, subsidies: Optional[Subsidies] = None, tol: float = 1e-9
) -> bool:
    """True when no player improves by more than a factor ``alpha`` >= 1."""
    if alpha < 1.0:
        raise ValueError("alpha must be >= 1")
    return equilibrium_stretch(state, subsidies) <= alpha * (1 + tol)


def subsidies_for_stretch(
    state: TreeState, alpha: float, method: str = "highs"
) -> Tuple[Optional[SubsidyAssignment], float]:
    """Cheapest subsidies making a broadcast tree an alpha-approximate
    equilibrium.

    The LP is LP (3) with the deviation side of every constraint inflated
    by ``alpha``:  ``sum_{a in T_u} (w-b)/n_a <= alpha * [w_uv +
    sum_{a in T_v} (w-b)/(n_a + 1 - n^u_a)]``.  Unlike exact LP (3) the
    shared suffix above ``lca(u, v)`` does *not* cancel when ``alpha > 1``
    (the two sides carry different factors), so full root paths are used.
    ``alpha = 1`` recovers exact SNE; larger alpha is monotonically cheaper.

    Caveat: the constraint family covers deviations that leave the tree on
    one edge and then follow tree paths.  For ``alpha = 1`` Lemma 2 proves
    this family dominates all deviations; for ``alpha > 1`` it is a
    relaxation, so callers wanting a certificate should re-check with
    :func:`equilibrium_stretch` (the tests do).
    """
    if alpha < 1.0:
        raise ValueError("alpha must be >= 1")
    game = state.game
    graph = game.graph
    tree = state.tree
    edges = state.edges
    index = {e: i for i, e in enumerate(edges)}
    lp = LinearProgram(
        n_vars=len(edges),
        c=np.ones(len(edges)),
        upper=np.array([graph.weight(*e) for e in edges]),
    )
    tree_set = set(edges)
    for u in graph.nodes:
        if u == game.root or game.multiplicity.get(u, 1) == 0:
            continue
        own_path = tree.path_to_root(u)
        own_set = set(own_path)
        for v in graph.neighbors(u):
            e_uv = canonical_edge(u, v)
            if e_uv in tree_set:
                continue
            coeffs: Dict[int, float] = {}
            rhs = alpha * graph.weight(u, v)
            for e in own_path:
                n_a = state.loads[e]
                coeffs[index[e]] = coeffs.get(index[e], 0.0) - 1.0 / n_a
                rhs -= graph.weight(*e) / n_a
            for e in tree.path_to_root(v):
                denom = state.loads[e] + 1 - (1 if e in own_set else 0)
                coeffs[index[e]] = coeffs.get(index[e], 0.0) + alpha / denom
                rhs += alpha * graph.weight(*e) / denom
            coeffs = {i: c for i, c in coeffs.items() if abs(c) > 1e-15}
            if coeffs:
                lp.add_sparse_constraint(list(coeffs.items()), rhs)
    res = solve_lp(lp, method=method)
    if res.status is not LPStatus.OPTIMAL:
        return None, float("inf")
    sub = SubsidyAssignment.from_vector(graph, edges, res.x)
    return sub, sub.cost
