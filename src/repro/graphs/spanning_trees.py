"""Spanning tree enumeration and counting.

Exact price-of-stability computations (and the Theorem 3/5 reduction checks)
need *all* spanning trees of small graphs.  Enumeration uses include/exclude
backtracking with connectivity pruning; counting uses the Matrix-Tree theorem
so tests can cross-check the enumerator against a determinant.
"""

from __future__ import annotations

from typing import Iterator, List, Set

import numpy as np

from repro.graphs.graph import Edge, Graph, canonical_edge
from repro.graphs.mst import kruskal_mst
from repro.graphs.unionfind import UnionFind


def count_spanning_trees(graph: Graph) -> int:
    """Number of spanning trees via Kirchhoff's Matrix-Tree theorem.

    Uses an unweighted Laplacian minor determinant (LU via numpy).  Exact for
    counts comfortably below 2^52; plenty for test-sized graphs.
    """
    nodes = graph.nodes
    if len(nodes) <= 1:
        return 1
    if not graph.is_connected():
        return 0
    index = {u: i for i, u in enumerate(nodes)}
    n = len(nodes)
    lap = np.zeros((n, n))
    for u, v, _w in graph.edges():
        i, j = index[u], index[v]
        lap[i, i] += 1
        lap[j, j] += 1
        lap[i, j] -= 1
        lap[j, i] -= 1
    minor = lap[1:, 1:]
    sign, logdet = np.linalg.slogdet(minor)
    if sign <= 0:
        return 0
    return int(round(float(np.exp(logdet))))


def _remaining_connects(graph: Graph, allowed: Set[Edge]) -> bool:
    """Can the graph still be spanned using only edges in ``allowed``?"""
    uf = UnionFind(graph.nodes)
    for u, v in allowed:
        uf.union(u, v)
    return uf.n_components == 1


def enumerate_spanning_trees(graph: Graph, limit: int | None = None) -> Iterator[List[Edge]]:
    """Yield every spanning tree of ``graph`` as a canonical edge list.

    Classic include/exclude backtracking over a fixed edge order:

    * include edge i only when it does not close a cycle with the current
      partial forest;
    * exclude edge i only when the remaining edges can still span the graph.

    Both prunings together make the search tree proportional to the number of
    spanning trees (times m for the connectivity check).  ``limit`` caps the
    number of trees yielded.
    """
    n = graph.num_nodes
    if n == 0:
        return
    edges = [canonical_edge(u, v) for u, v, _ in graph.edges()]
    m = len(edges)
    produced = 0

    def backtrack(idx: int, chosen: List[Edge], uf_edges: List[Edge]) -> Iterator[List[Edge]]:
        nonlocal produced
        if limit is not None and produced >= limit:
            return
        if len(chosen) == n - 1:
            produced += 1
            yield list(chosen)
            return
        if idx == m:
            return
        # Rebuild a union-find for the current partial forest.  Partial
        # forests are tiny (< n edges) so this stays cheap relative to the
        # exponential number of trees enumerated.
        uf = UnionFind(graph.nodes)
        for u, v in chosen:
            uf.union(u, v)
        u, v = edges[idx]
        # Branch 1: include the edge when it joins two components.
        if not uf.connected(u, v):
            chosen.append(edges[idx])
            yield from backtrack(idx + 1, chosen, uf_edges)
            chosen.pop()
        # Branch 2: exclude the edge when the rest can still span.
        allowed = set(chosen) | set(edges[idx + 1 :])
        if _remaining_connects(graph, allowed):
            yield from backtrack(idx + 1, chosen, uf_edges)

    yield from backtrack(0, [], [])


def enumerate_minimum_spanning_trees(
    graph: Graph, tol: float = 1e-9, limit: int | None = None
) -> Iterator[List[Edge]]:
    """Yield every *minimum* spanning tree.

    The Theorem 3 reduction produces graphs with exponentially many spanning
    trees but asks only about minimum ones, so we restrict the include/exclude
    search to edges that can appear in some MST: an edge may be included only
    when the partial tree weight still extends to the optimum.
    """
    best = graph.subset_weight(kruskal_mst(graph))
    count = 0
    for tree in _enumerate_weight_bounded(graph, best + tol * max(1.0, best)):
        yield tree
        count += 1
        if limit is not None and count >= limit:
            return


def _enumerate_weight_bounded(graph: Graph, budget: float) -> Iterator[List[Edge]]:
    """All spanning trees of total weight <= budget (branch and bound)."""
    n = graph.num_nodes
    if n == 0:
        return
    edges = sorted(
        (canonical_edge(u, v) for u, v, _ in graph.edges()),
        key=lambda e: graph.weight(*e),
    )
    m = len(edges)
    weights = [graph.weight(u, v) for u, v in edges]

    def mst_completion_bound(chosen: List[Edge], idx: int) -> float:
        """Weight of the cheapest completion using edges[idx:] (Kruskal-style)."""
        uf = UnionFind(graph.nodes)
        total = 0.0
        for u, v in chosen:
            uf.union(u, v)
            total += graph.weight(u, v)
        for k in range(idx, m):
            u, v = edges[k]
            if uf.union(u, v):
                total += weights[k]
        if uf.n_components != 1:
            return float("inf")
        return total

    def backtrack(idx: int, chosen: List[Edge]) -> Iterator[List[Edge]]:
        if len(chosen) == n - 1:
            yield list(chosen)
            return
        if idx == m:
            return
        if mst_completion_bound(chosen, idx) > budget:
            return
        uf = UnionFind(graph.nodes)
        for u, v in chosen:
            uf.union(u, v)
        u, v = edges[idx]
        if not uf.connected(u, v):
            chosen.append(edges[idx])
            yield from backtrack(idx + 1, chosen)
            chosen.pop()
        allowed = set(chosen) | set(edges[idx + 1 :])
        if _remaining_connects(graph, allowed):
            yield from backtrack(idx + 1, chosen)

    yield from backtrack(0, [])
