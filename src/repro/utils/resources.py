"""Process resource introspection for the scale tier.

One tiny helper shared by ``repro-experiments solve --json`` (which reports
the solve's peak RSS in its metadata) and ``benchmarks/bench_scale.py``
(which gates the memory budget of the 10^5-node anytime runs): the
process-wide peak resident set size, normalized to bytes.

``getrusage`` reports ``ru_maxrss`` in kilobytes on Linux but bytes on
macOS; on platforms without the :mod:`resource` module (Windows) the peak
is simply unknown and reported as 0 rather than crashing the caller.
"""

from __future__ import annotations

import sys

try:  # pragma: no cover - resource is POSIX-only
    import resource
except ImportError:  # pragma: no cover - Windows
    resource = None  # type: ignore[assignment]


def peak_rss_bytes() -> int:
    """Peak resident set size of this process in bytes (0 if unknown)."""
    if resource is None:  # pragma: no cover - Windows
        return 0
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - macOS reports bytes
        return int(peak)
    return int(peak) * 1024
