"""Adapters wrapping every legacy solver behind the canonical report shape.

Each adapter takes one *instance* — a target state (``TreeState``,
``State``, ``WeightedState``, ``DirectedState``) or a game of any
:data:`~repro.games.base.GAME_FAMILIES` family — coerces it to what the
underlying solver expects, runs the solver, and returns a
:class:`~repro.api.report.SolveReport`.  Games default to their family's
natural target state (``default_state()``: the MST for broadcast, the
Steiner optimum for multicast, all shortest paths otherwise).

Family-restricted solvers serve *any* family instance that lies inside
their domain via the exact downgrades of :mod:`repro.games.base`
(:func:`~repro.games.base.to_broadcast` / :func:`~repro.games.base.
to_general`): a weighted game with uniform demands, a symmetric directed
game, or a multicast game whose terminals cover every node coerces
losslessly; anything outside the overlap raises a
:class:`~repro.games.base.FamilyCoercionError` naming the obstruction.
Importing this module populates the registry with the eleven built-in
solvers.
"""

from __future__ import annotations

from typing import Optional, Tuple, Union

from repro.games.base import FamilyCoercionError, to_broadcast
from repro.games.broadcast import BroadcastGame, TreeState
from repro.games.directed import DirectedNetworkDesignGame, DirectedState
from repro.games.equilibrium import check_equilibrium
from repro.games.game import NetworkDesignGame, State
from repro.games.multicast import MulticastGame
from repro.games.weighted import WeightedNetworkDesignGame, WeightedState
from repro.graphs.graph import Edge
from repro.lp import get_backend
from repro.subsidies.aon import AONResult, greedy_aon_sne, solve_aon_sne_exact
from repro.subsidies.approx import (
    ApproxSNEResult,
    solve_sne_greedy,
    solve_sne_primal_dual,
)
from repro.subsidies.assignment import SubsidyAssignment
from repro.subsidies.combinatorial import combinatorial_sne
from repro.subsidies.snd import SNDResult, snd_heuristic, solve_snd_exact
from repro.subsidies.sne_lp import (
    SNEResult,
    solve_sne_broadcast_lp3,
    solve_sne_cutting_plane_lp1,
    solve_sne_polynomial_lp2,
)
from repro.subsidies.theorem6 import theorem6_subsidies
from repro.api.registry import register_solver
from repro.api.report import SolveReport
from repro.utils.timing import Timer
from repro.utils.tolerances import LP_TOL

AnyGame = Union[
    BroadcastGame,
    MulticastGame,
    NetworkDesignGame,
    WeightedNetworkDesignGame,
    DirectedNetworkDesignGame,
]
AnyState = Union[TreeState, State, WeightedState, DirectedState]
AnyInstance = Union[AnyState, AnyGame]

_GAME_TYPES = (
    BroadcastGame,
    MulticastGame,
    NetworkDesignGame,
    WeightedNetworkDesignGame,
    DirectedNetworkDesignGame,
)
_STATE_TYPES = (TreeState, State, WeightedState)


# ---------------------------------------------------------------------------
# Instance coercion
# ---------------------------------------------------------------------------


def as_tree_state(instance: AnyInstance) -> TreeState:
    """Coerce to a broadcast tree state (games default to their MST).

    Any family instance inside the broadcast overlap qualifies: a
    multicast game covering every node, a weighted game with uniform
    demands, a symmetric directed game (each with one player per non-root
    node and a common destination).
    """
    if isinstance(instance, TreeState):
        return instance
    if isinstance(instance, _GAME_TYPES):
        try:
            return to_broadcast(instance).mst_state()
        except FamilyCoercionError as exc:
            raise FamilyCoercionError(
                f"this solver needs a broadcast target: {exc}"
            ) from None
    raise TypeError(
        f"this solver needs a broadcast TreeState (or a game inside the "
        f"broadcast overlap, whose MST becomes the target); got "
        f"{type(instance).__name__}"
    )


def as_any_state(instance: AnyInstance) -> AnyState:
    """Coerce to a target state of any game family.

    States pass through; games default to their family's natural target
    (``default_state()``: MST for broadcast, Steiner optimum for
    multicast, all shortest paths otherwise).
    """
    if isinstance(instance, _STATE_TYPES):
        return instance
    if isinstance(instance, _GAME_TYPES):
        return instance.default_state()
    raise TypeError(
        f"expected a target state or a game; got {type(instance).__name__}"
    )


def as_broadcast_game(instance: AnyInstance) -> BroadcastGame:
    """Coerce to a broadcast game (design solvers pick their own tree)."""
    if isinstance(instance, TreeState):
        return instance.game
    if isinstance(instance, _GAME_TYPES):
        try:
            return to_broadcast(instance)
        except FamilyCoercionError as exc:
            raise FamilyCoercionError(
                f"SND solvers design a broadcast tree: {exc}"
            ) from None
    raise TypeError(
        f"SND solvers design the tree themselves and need a BroadcastGame "
        f"(or a game inside the broadcast overlap); got {type(instance).__name__}"
    )


def _target_of(state: AnyState) -> Tuple[Tuple[Edge, ...], float]:
    """Established edges and their weight for either state flavour."""
    if isinstance(state, TreeState):
        edges = tuple(e for e in state.edges if state.loads[e] > 0)
    else:
        edges = tuple(state.established_edges())
    return edges, state.game.graph.subset_weight(edges)


# ---------------------------------------------------------------------------
# SNE: the three LP formulations of Theorem 1 / Lemma 2
# ---------------------------------------------------------------------------


def _report_from_sne(
    res: SNEResult, state: AnyState, solver: str, elapsed: float, checked: bool
) -> SolveReport:
    target_edges, target_cost = _target_of(state)
    metadata = {"method": res.method, "rounds": res.rounds, "cuts": res.cuts}
    if res.backend is not None:
        # Canonical LP backend name (registry spelling), for provenance,
        # the serve daemon's per-backend counters, and cache keying via
        # the solver version bumps below.
        metadata["backend"] = res.backend
    if res.certificate is not None:
        # The exact rational re-derivation of the verdict; deterministic
        # for a given instance, so it participates in canonical bytes.
        metadata["exact_certificate"] = res.certificate.as_dict()
    if res.profile is not None:
        # Solve-path provenance (oracle searches, batch skips, cut rounds,
        # LP warm starts).  Like wall_clock_seconds it describes *how* the
        # answer was produced, not the answer: comparisons between solve
        # paths strip it (see benchmarks/bench_lp_warmstart.py).
        metadata["profile"] = res.profile
    # The legacy SNEResult reports verified=True when verification was
    # skipped; the canonical report only claims `verified` for an actual
    # equilibrium-checker run.
    return SolveReport(
        solver=solver,
        problem="sne",
        subsidies=res.subsidies,
        budget_used=res.subsidies.cost,
        target_edges=target_edges,
        target_cost=target_cost,
        feasible=res.feasible,
        verified=checked and res.verified and res.feasible,
        optimal=res.feasible,  # the LPs solve SNE to optimality
        metadata=metadata,
        wall_clock_seconds=elapsed,
    )


@register_solver(
    "sne-lp3",
    problem="sne",
    description="LP (3): one row per non-tree incidence (Lemma 2; broadcast)",
    broadcast_only=True,
    requires_tree_state=True,
    # version 2: LP backend registry — `method` accepts any backend
    # name/alias, the backend joins the metadata, and certify=True attaches
    # an exact rational certificate
    version="2",
)
def solve_sne_lp3(
    instance: AnyInstance,
    method: str = "highs",
    verify: bool = True,
    certify: bool = False,
) -> SolveReport:
    state = as_tree_state(instance)
    with Timer() as t:
        res = solve_sne_broadcast_lp3(
            state, method=method, verify=verify, certify=certify
        )
    return _report_from_sne(res, state, "sne-lp3", t.elapsed, verify)


@register_solver(
    "sne-cutting-plane",
    problem="sne",
    description="LP (1): exponential LP via shortest-path separation oracle",
    broadcast_only=False,
    requires_tree_state=False,
    aliases=("sne-lp1",),
    # version 4: LP backend registry — backend name joined the metadata,
    # certify=True exact-certifies the final cutting-plane relaxation
    # (version 3: warm-started incremental cutting planes + batched
    # separation oracle, and profile counters joined the report metadata)
    version="4",
)
def solve_sne_cutting_plane(
    instance: AnyInstance,
    method: str = "highs",
    max_rounds: int = 200,
    verify: bool = True,
    fast: bool = True,
    certify: bool = False,
) -> SolveReport:
    state = as_any_state(instance)
    with Timer() as t:
        res = solve_sne_cutting_plane_lp1(
            state,
            method=method,
            max_rounds=max_rounds,
            verify=verify,
            fast=fast,
            certify=certify,
        )
    return _report_from_sne(res, state, "sne-cutting-plane", t.elapsed, verify)


@register_solver(
    "sne-poly",
    problem="sne",
    description="LP (2): polynomial reformulation with potential variables",
    broadcast_only=False,
    requires_tree_state=False,
    aliases=("sne-lp2",),
    # version 4: LP backend registry — backend name joined the metadata,
    # certify=True exact-certifies the full LP (2)
    # (version 3: sparse incremental row construction and profile counters)
    version="4",
)
def solve_sne_poly(
    instance: AnyInstance,
    method: str = "highs",
    verify: bool = True,
    fast: bool = True,
    certify: bool = False,
) -> SolveReport:
    state = as_any_state(instance)
    with Timer() as t:
        res = solve_sne_polynomial_lp2(
            state, method=method, verify=verify, fast=fast, certify=certify
        )
    return _report_from_sne(res, state, "sne-poly", t.elapsed, verify)


# ---------------------------------------------------------------------------
# SNE scale tier: certified approximate / anytime solvers
# ---------------------------------------------------------------------------


def _report_from_approx(
    res: ApproxSNEResult,
    state: AnyState,
    solver: str,
    elapsed: float,
    checked: bool,
    backend: Optional[str] = None,
) -> SolveReport:
    target_edges, target_cost = _target_of(state)
    metadata: dict = {"method": res.method, "rounds": res.rounds, "cuts": res.cuts}
    if backend is not None:
        metadata["backend"] = backend
    if res.certificate is not None:
        # The certified bracket lb <= OPT <= ub; deterministic for a given
        # instance/opts (no timestamps), so it participates in canonical
        # report bytes — unlike `profile`, which is provenance.
        metadata["certificate"] = res.certificate.as_dict()
    if res.anytime is not None:
        metadata["anytime"] = res.anytime.as_dict()
    if res.profile is not None:
        metadata["profile"] = res.profile
    return SolveReport(
        solver=solver,
        problem="sne",
        subsidies=res.subsidies,
        budget_used=res.subsidies.cost,
        target_edges=target_edges,
        target_cost=target_cost,
        feasible=res.feasible,
        verified=checked and res.verified and res.feasible,
        optimal=res.feasible and res.optimal,
        metadata=metadata,
        wall_clock_seconds=elapsed,
    )


@register_solver(
    "approx-greedy",
    problem="sne",
    description="certified greedy: full-path subsidies + pooled-row lower bound",
    broadcast_only=False,
    requires_tree_state=False,
    exact=False,
    # version 2: LP backend registry — backend name joined the metadata
    version="2",
)
def solve_approx_greedy(
    instance: AnyInstance,
    method: str = "highs",
    verify: bool = True,
    fast: bool = True,
    bound: str = "auto",
    anytime: bool = False,
    deadline: Optional[float] = None,
    target_gap: Optional[float] = None,
) -> SolveReport:
    state = as_any_state(instance)
    with Timer() as t:
        res = solve_sne_greedy(
            state,
            method=method,
            verify=verify,
            fast=fast,
            bound=bound,
            anytime=anytime,
            deadline=deadline,
            target_gap=target_gap,
        )
    return _report_from_approx(
        res, state, "approx-greedy", t.elapsed, verify, backend=get_backend(method).name
    )


@register_solver(
    "approx-primal-dual",
    problem="sne",
    description="anytime LP(1) cutting planes: monotone certified lower bounds",
    broadcast_only=False,
    requires_tree_state=False,
    exact=False,  # exact at convergence, but deadline/target-gap stop early
    aliases=("approx-anytime",),
    # version 2: LP backend registry — backend name joined the metadata
    version="2",
)
def solve_approx_primal_dual(
    instance: AnyInstance,
    method: str = "highs",
    max_rounds: int = 200,
    verify: bool = True,
    fast: bool = True,
    anytime: bool = False,
    deadline: Optional[float] = None,
    target_gap: Optional[float] = None,
) -> SolveReport:
    state = as_any_state(instance)
    with Timer() as t:
        res = solve_sne_primal_dual(
            state,
            method=method,
            max_rounds=max_rounds,
            verify=verify,
            fast=fast,
            anytime=anytime,
            deadline=deadline,
            target_gap=target_gap,
        )
    return _report_from_approx(
        res,
        state,
        "approx-primal-dual",
        t.elapsed,
        verify,
        backend=get_backend(method).name,
    )


# ---------------------------------------------------------------------------
# SNE: the Theorem 6 constructive wgt(T)/e algorithm
# ---------------------------------------------------------------------------


@register_solver(
    "theorem6",
    problem="sne",
    description="Theorem 6 constructive subsidies: exactly wgt(T)/e on an MST",
    broadcast_only=True,
    requires_tree_state=True,
    exact=False,  # matches the 1/e guarantee, not the instance optimum
    version="1",
)
def solve_theorem6(instance: AnyInstance, check_level_totals: bool = True) -> SolveReport:
    state = as_tree_state(instance)
    with Timer() as t:
        res = theorem6_subsidies(state, check_level_totals=check_level_totals)
        verified = check_equilibrium(state, res.subsidies, tol=1e-7).is_equilibrium
    target_edges, target_cost = _target_of(state)
    return SolveReport(
        solver="theorem6",
        problem="sne",
        subsidies=res.subsidies,
        budget_used=res.subsidies.cost,
        target_edges=target_edges,
        target_cost=target_cost,
        feasible=True,
        verified=verified,
        optimal=False,
        metadata={
            "method": "theorem6",
            "levels": len(res.levels),
            "bound": res.bound,
            "fraction": res.fraction,
            "tree_weight": res.tree_weight,
        },
        wall_clock_seconds=t.elapsed,
    )


# ---------------------------------------------------------------------------
# All-or-nothing SNE (Section 5)
# ---------------------------------------------------------------------------


def _report_from_aon(
    res: AONResult, state: TreeState, solver: str, elapsed: float
) -> SolveReport:
    target_edges, target_cost = _target_of(state)
    return SolveReport(
        solver=solver,
        problem="aon-sne",
        subsidies=res.subsidies,
        budget_used=res.subsidies.cost,
        target_edges=target_edges,
        target_cost=target_cost,
        feasible=True,
        verified=res.verified,
        optimal=res.optimal,
        metadata={"method": res.method, "nodes_explored": res.nodes_explored},
        wall_clock_seconds=elapsed,
    )


@register_solver(
    "aon-exact",
    problem="aon-sne",
    description="all-or-nothing SNE: exact branch & bound over edge funding",
    broadcast_only=True,
    requires_tree_state=True,
    version="1",
)
def solve_aon_exact(
    instance: AnyInstance,
    method: str = "highs",
    max_nodes: int = 100_000,
    tol: float = 1e-6,
) -> SolveReport:
    state = as_tree_state(instance)
    with Timer() as t:
        res = solve_aon_sne_exact(state, method=method, max_nodes=max_nodes, tol=tol)
    return _report_from_aon(res, state, "aon-exact", t.elapsed)


@register_solver(
    "aon-greedy",
    problem="aon-sne",
    description="all-or-nothing SNE: least-crowded-edge greedy heuristic",
    broadcast_only=True,
    requires_tree_state=True,
    exact=False,
    version="1",
)
def solve_aon_greedy(instance: AnyInstance, max_steps: Optional[int] = None) -> SolveReport:
    state = as_tree_state(instance)
    with Timer() as t:
        res = greedy_aon_sne(state, max_steps=max_steps)
    return _report_from_aon(res, state, "aon-greedy", t.elapsed)


# ---------------------------------------------------------------------------
# Combinatorial (LP-free) SNE — the paper's §6 open problem
# ---------------------------------------------------------------------------


@register_solver(
    "combinatorial",
    problem="sne",
    description="LP-free water-filling SNE (exact on nested-constraint families)",
    broadcast_only=True,
    requires_tree_state=True,
    exact=False,
    version="1",
)
def solve_combinatorial(
    instance: AnyInstance,
    max_iterations: Optional[int] = None,
    tol: float = LP_TOL,
) -> SolveReport:
    state = as_tree_state(instance)
    with Timer() as t:
        res = combinatorial_sne(state, max_iterations=max_iterations, tol=tol)
    target_edges, target_cost = _target_of(state)
    return SolveReport(
        solver="combinatorial",
        problem="sne",
        subsidies=res.subsidies,
        budget_used=res.subsidies.cost,
        target_edges=target_edges,
        target_cost=target_cost,
        feasible=res.verified,
        verified=res.verified,
        optimal=False,
        metadata={
            "method": "waterfill",
            "iterations": res.iterations,
            "converged": res.converged,
        },
        wall_clock_seconds=t.elapsed,
    )


# ---------------------------------------------------------------------------
# Stable network design (Section 3): the solver picks the tree
# ---------------------------------------------------------------------------


def _report_from_snd(
    res: Optional[SNDResult],
    game: BroadcastGame,
    budget: float,
    solver: str,
    elapsed: float,
) -> SolveReport:
    if res is None:
        return SolveReport(
            solver=solver,
            problem="snd",
            subsidies=SubsidyAssignment.zero(game.graph),
            budget_used=0.0,
            target_edges=(),
            target_cost=0.0,
            feasible=False,
            verified=False,
            optimal=False,
            metadata={"method": "none", "budget": budget},
            wall_clock_seconds=elapsed,
        )
    within = res.subsidy_cost <= budget + LP_TOL * max(1.0, budget)
    state = game.tree_state(res.tree_edges)
    verified = check_equilibrium(state, res.subsidies, tol=LP_TOL).is_equilibrium
    return SolveReport(
        solver=solver,
        problem="snd",
        subsidies=res.subsidies,
        budget_used=res.subsidy_cost,
        target_edges=tuple(res.tree_edges),
        target_cost=res.weight,
        feasible=within,
        verified=verified and within,
        optimal=res.optimal,
        metadata={"method": res.method, "budget": budget},
        wall_clock_seconds=elapsed,
    )


def _default_budget(game: BroadcastGame, budget: Optional[float]) -> float:
    # wgt(MST) always suffices (full subsidies on the MST), so it is the
    # natural "unconstrained" default.
    return game.mst_weight() if budget is None else float(budget)


@register_solver(
    "snd-exact",
    problem="snd",
    description="SND: exact spanning-tree enumeration under a subsidy budget",
    broadcast_only=True,
    requires_tree_state=False,
    version="1",
)
def solve_snd_exact_adapter(
    instance: AnyInstance,
    budget: Optional[float] = None,
    all_or_nothing: bool = False,
    method: str = "highs",
    tree_limit: Optional[int] = None,
) -> SolveReport:
    game = as_broadcast_game(instance)
    b = _default_budget(game, budget)
    with Timer() as t:
        res = solve_snd_exact(
            game, budget=b, all_or_nothing=all_or_nothing, method=method, tree_limit=tree_limit
        )
    return _report_from_snd(res, game, b, "snd-exact", t.elapsed)


@register_solver(
    "snd-local-search",
    problem="snd",
    description="SND heuristic: MST-first, BRD fallback, edge-swap local search",
    broadcast_only=True,
    requires_tree_state=False,
    exact=False,
    aliases=("snd-heuristic",),
    version="1",
)
def solve_snd_local_search(
    instance: AnyInstance,
    budget: Optional[float] = None,
    all_or_nothing: bool = False,
    method: str = "highs",
) -> SolveReport:
    game = as_broadcast_game(instance)
    b = _default_budget(game, budget)
    with Timer() as t:
        res = snd_heuristic(game, budget=b, all_or_nothing=all_or_nothing, method=method)
    return _report_from_snd(res, game, b, "snd-local-search", t.elapsed)
