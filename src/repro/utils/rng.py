"""Random number generator plumbing.

All stochastic entry points accept ``seed`` as ``None``, an ``int`` or an
existing :class:`numpy.random.Generator` and normalize through
:func:`ensure_rng`, so experiments are reproducible end to end.
"""

from __future__ import annotations

from typing import List

import numpy as np


def ensure_rng(seed: "int | np.random.Generator | None" = None) -> np.random.Generator:
    """Return a numpy Generator for any accepted seed spec."""
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def child_seeds(seed: "int | None", n: int) -> List[int]:
    """``n`` statistically independent child seeds derived from ``seed``.

    Sweeps that need one reproducible stream per instance (the CLI ``gen``
    command, batched experiments) should derive children here instead of
    ad-hoc ``seed + i`` arithmetic, which makes neighbouring sweeps overlap
    (base seed 0 instance 1 == base seed 1 instance 0).  Uses
    :class:`numpy.random.SeedSequence` spawning, so the mapping is stable
    across platforms and numpy versions.
    """
    if n < 0:
        raise ValueError(f"cannot derive {n} child seeds")
    ss = np.random.SeedSequence(seed)
    return [int(child.generate_state(1, dtype=np.uint64)[0]) for child in ss.spawn(n)]
