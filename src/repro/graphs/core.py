"""Indexed graph core: interned labels, CSR adjacency, array algorithms.

The hashable-node :class:`~repro.graphs.graph.Graph` is the friendly front
door (the hardness gadgets key nodes by tuples and strings), but every hot
path — best-response Dijkstra, MST scoring, spanning-tree search — spends
most of its time hashing labels and walking dict-of-dicts.  This module is
the layer-zero substrate those paths run on instead:

* :class:`IndexedGraph` — an immutable snapshot of a ``Graph`` with node
  labels interned to contiguous int ids and the adjacency stored CSR-style
  (``indptr`` / ``neighbors`` / ``weights`` as numpy arrays).  Edges get
  contiguous ids too, so per-edge quantities (usage counts, subsidies,
  deviation prices) live in flat arrays indexed by edge id.
* :func:`dijkstra_indexed` — single-source shortest paths over int ids with
  preallocated distance/predecessor arrays and pluggable per-edge costs.
* :class:`IntUnionFind` — array-backed union-find over ``0..n-1``.

``Graph.to_indexed()`` caches the snapshot keyed by the graph's mutation
counter, so repeated interning of the same graph is free.

Label interning order is the deterministic ``_sort_key`` order (type name,
then repr), which makes id comparisons reproduce the legacy heterogeneous
tie-breaks exactly: sorting edges by ``(weight, id_u, id_v)`` yields the
same Kruskal MST the dict implementation picked.
"""

from __future__ import annotations

import heapq
from bisect import bisect_left
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.graphs.graph import Edge, Graph, Node, _sort_key, canonical_edge


class IntUnionFind:
    """Union-find over the integers ``0..n-1`` (list-backed, path halving)."""

    __slots__ = ("_parent", "_rank", "n_components")

    def __init__(self, n: int) -> None:
        self._parent = list(range(n))
        self._rank = [0] * n
        self.n_components = n

    def find(self, x: int) -> int:
        parent = self._parent
        while parent[x] != x:
            parent[x] = parent[parent[x]]  # path halving
            x = parent[x]
        return x

    def union(self, x: int, y: int) -> bool:
        rx, ry = self.find(x), self.find(y)
        if rx == ry:
            return False
        rank = self._rank
        if rank[rx] < rank[ry]:
            rx, ry = ry, rx
        self._parent[ry] = rx
        if rank[rx] == rank[ry]:
            rank[rx] += 1
        self.n_components -= 1
        return True

    def connected(self, x: int, y: int) -> bool:
        return self.find(x) == self.find(y)


class IndexedGraph:
    """Immutable int-indexed CSR snapshot of an undirected weighted graph.

    Attributes
    ----------
    labels:
        ``labels[i]`` is the original hashable label of node id ``i``
        (ids are assigned in deterministic ``_sort_key`` order).
    indptr, neighbors, weights, adj_edge:
        CSR adjacency: the directed arcs out of node ``u`` occupy slots
        ``indptr[u]:indptr[u+1]``; ``neighbors[k]`` is the head node id,
        ``weights[k]`` the edge weight and ``adj_edge[k]`` the undirected
        edge id of arc ``k``.  Arcs are sorted by (tail, head).
    edge_u, edge_v, edge_weights:
        Per-edge arrays in ``Graph.edges()`` order; ``(edge_u[e],
        edge_v[e])`` are the ids of the canonical endpoints.
    edge_labels:
        ``edge_labels[e]`` is the canonical ``(u, v)`` label pair of edge
        ``e`` — the exact keys the dict-based layers use.
    """

    __slots__ = (
        "labels",
        "indptr",
        "neighbors",
        "weights",
        "adj_edge",
        "edge_u",
        "edge_v",
        "edge_weights",
        "_edge_labels",
        "_id_of",
        "_edge_id",
        "_indptr_l",
        "_neighbors_l",
        "_adj_edge_l",
        "_weights_l",
        "_arc_slots",
    )

    def __init__(self, nodes: Sequence[Node], edges: Iterable[Tuple[Node, Node, float]]):
        labels = sorted(nodes, key=_sort_key)
        id_of: Dict[Node, int] = {u: i for i, u in enumerate(labels)}
        if len(id_of) != len(labels):
            raise ValueError("duplicate node labels")
        n = len(labels)

        edge_labels: List[Edge] = []
        eu: List[int] = []
        ev: List[int] = []
        ew: List[float] = []
        edge_id: Dict[Edge, int] = {}
        for u, v, w in edges:
            e = canonical_edge(u, v)
            if e in edge_id:
                raise ValueError(f"duplicate edge {e!r}")
            edge_id[e] = len(edge_labels)
            edge_labels.append(e)
            eu.append(id_of[e[0]])
            ev.append(id_of[e[1]])
            ew.append(float(w))
        m = len(edge_labels)

        self.labels: Sequence[Node] = labels
        self._id_of = id_of
        self._edge_labels: Optional[List[Edge]] = edge_labels
        self._edge_id: Optional[Dict[Edge, int]] = edge_id
        self.edge_u = np.asarray(eu, dtype=np.int64).reshape(m)
        self.edge_v = np.asarray(ev, dtype=np.int64).reshape(m)
        self.edge_weights = np.asarray(ew, dtype=np.float64).reshape(m)
        self._build_csr(n)

    def _build_csr(self, n: int, idx_dtype=np.int64) -> None:
        """CSR over both arc directions, grouped by tail then head."""
        m = len(self.edge_weights)
        tails = np.concatenate([self.edge_u, self.edge_v]).astype(np.int64)
        heads = np.concatenate([self.edge_v, self.edge_u]).astype(idx_dtype)
        eids = np.concatenate(
            [np.arange(m, dtype=idx_dtype), np.arange(m, dtype=idx_dtype)]
        )
        order = np.lexsort((heads, tails))
        self.neighbors = heads[order]
        self.adj_edge = eids[order]
        self.weights = self.edge_weights[self.adj_edge]
        indptr = np.zeros(n + 1, dtype=idx_dtype)
        np.cumsum(np.bincount(tails, minlength=n), out=indptr[1:])
        self.indptr = indptr

        # Plain-list mirrors for the Python-level inner loops (list indexing
        # is several times faster than numpy scalar indexing) are built
        # lazily: the array-native scale tier never touches them, which
        # keeps million-node snapshots at a few int32/float64 arrays.
        self._indptr_l: Optional[List[int]] = None
        self._neighbors_l: Optional[List[int]] = None
        self._adj_edge_l: Optional[List[int]] = None
        self._weights_l: Optional[List[float]] = None
        self._arc_slots: Optional[List[List[int]]] = None

    # -- construction ------------------------------------------------------

    @classmethod
    def from_graph(cls, graph: Graph) -> "IndexedGraph":
        """Snapshot a :class:`Graph` (prefer the cached ``Graph.to_indexed``)."""
        return cls(graph.nodes, graph.edges())

    @classmethod
    def from_arrays(
        cls,
        num_nodes: int,
        edge_u: np.ndarray,
        edge_v: np.ndarray,
        edge_weights: np.ndarray,
        validate: bool = True,
    ) -> "IndexedGraph":
        """Array-native constructor for the memory-lean scale tier.

        Node labels are the identity ``range(num_nodes)`` (no dicts, no
        interning — ids *are* labels), the CSR index arrays are int32 when
        they fit, and the label-level side structures (``edge_labels``,
        ``id_of`` maps, plain-list mirrors) stay lazy.  A million-node
        instance therefore costs a handful of flat arrays rather than the
        dict-of-dicts a :class:`Graph` round trip would materialize.

        Note the identity labeling differs from ``Graph.to_indexed()``'s
        repr-order interning (where ``10`` sorts before ``2``); edge and
        node *ids* of the two constructions are not comparable, only the
        label-level ``(u, v, w)`` triples are.
        """
        n = int(num_nodes)
        eu = np.ascontiguousarray(edge_u, dtype=np.int64)
        ev = np.ascontiguousarray(edge_v, dtype=np.int64)
        ew = np.ascontiguousarray(edge_weights, dtype=np.float64)
        m = len(ew)
        if len(eu) != m or len(ev) != m:
            raise ValueError("edge_u/edge_v/edge_weights length mismatch")
        if validate and m:
            if int(eu.min()) < 0 or int(ev.min()) < 0 or max(
                int(eu.max()), int(ev.max())
            ) >= n:
                raise ValueError("edge endpoint out of range")
            if bool((eu == ev).any()):
                raise ValueError("self-loop edge")
            lo, hi = np.minimum(eu, ev), np.maximum(eu, ev)
            keys = lo * np.int64(n) + hi
            if len(np.unique(keys)) != m:
                raise ValueError("duplicate edge")
        idx_dtype = np.int32 if max(n + 1, 2 * m) < 2**31 else np.int64

        self = cls.__new__(cls)
        self.labels = range(n)
        self._id_of = None
        self._edge_labels = None
        self._edge_id = None
        self.edge_u = eu.astype(idx_dtype)
        self.edge_v = ev.astype(idx_dtype)
        self.edge_weights = ew
        self._build_csr(n, idx_dtype=idx_dtype)
        return self

    # -- size --------------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        return len(self.labels)

    @property
    def num_edges(self) -> int:
        return len(self.edge_weights)

    # -- lazy label-level structures ---------------------------------------

    @property
    def edge_labels(self) -> List[Edge]:
        """``edge_labels[e]``: canonical ``(u, v)`` label pair of edge ``e``."""
        labels = self._edge_labels
        if labels is None:
            node = self.labels
            labels = [
                canonical_edge(node[int(u)], node[int(v)])
                for u, v in zip(self.edge_u.tolist(), self.edge_v.tolist())
            ]
            self._edge_labels = labels
        return labels

    @property
    def _edge_index(self) -> Dict[Edge, int]:
        idx = self._edge_id
        if idx is None:
            idx = {e: i for i, e in enumerate(self.edge_labels)}
            self._edge_id = idx
        return idx

    @property
    def _indptr_list(self) -> List[int]:
        mirror = self._indptr_l
        if mirror is None:
            mirror = self._indptr_l = self.indptr.tolist()
        return mirror

    @property
    def _neighbors_list(self) -> List[int]:
        mirror = self._neighbors_l
        if mirror is None:
            mirror = self._neighbors_l = self.neighbors.tolist()
        return mirror

    @property
    def _adj_edge_list(self) -> List[int]:
        mirror = self._adj_edge_l
        if mirror is None:
            mirror = self._adj_edge_l = self.adj_edge.tolist()
        return mirror

    @property
    def _weights_list(self) -> List[float]:
        mirror = self._weights_l
        if mirror is None:
            mirror = self._weights_l = self.weights.tolist()
        return mirror

    # -- label <-> id ------------------------------------------------------

    def id_of(self, label: Node) -> int:
        """Int id of a node label (KeyError when absent)."""
        id_of = self._id_of
        if id_of is None:  # identity labels from ``from_arrays``
            if isinstance(label, int) and 0 <= label < len(self.labels):
                return label
            raise KeyError(label)
        return id_of[label]

    def label_of(self, node_id: int) -> Node:
        """Original hashable label of a node id."""
        return self.labels[node_id]

    def has_label(self, label: Node) -> bool:
        try:
            self.id_of(label)
        except KeyError:
            return False
        return True

    def edge_id(self, u: Node, v: Node) -> int:
        """Edge id of the undirected edge {u, v} (KeyError when absent)."""
        return self._edge_index[canonical_edge(u, v)]

    def edge_id_of(self, edge: Edge) -> int:
        """Edge id of an already-canonical edge key."""
        return self._edge_index[edge]

    def edge_of(self, eid: int) -> Edge:
        """Canonical label pair of an edge id."""
        return self.edge_labels[eid]

    def path_edge_ids(self, node_labels: Sequence[Node]) -> List[int]:
        """Edge ids along a node-label walk."""
        eid = self._edge_index
        return [
            eid[canonical_edge(a, b)] for a, b in zip(node_labels, node_labels[1:])
        ]

    # -- conversion --------------------------------------------------------

    def to_graph(self) -> Graph:
        """Materialize back into a mutable hashable-node :class:`Graph`."""
        g = Graph()
        for u in self.labels:
            g.add_node(u)
        for (u, v), w in zip(self.edge_labels, self.edge_weights):
            g.add_edge(u, v, float(w))
        return g

    def degree(self, node_id: int) -> int:
        return int(self.indptr[node_id + 1] - self.indptr[node_id])

    @property
    def arc_slots_of_edge(self) -> List[List[int]]:
        """CSR arc slots of each edge id (both directions), lazily built.

        ``arc_slots_of_edge[e]`` lists the slots ``k`` with
        ``adj_edge[k] == e`` — exactly the positions a caller must patch to
        re-price edge ``e`` in a shared per-arc cost list.  The engine's
        per-player own-edge overrides use this to pay ``O(|T_i|)`` per
        query instead of copying an ``O(m)`` cost array each time.
        """
        slots = self._arc_slots
        if slots is None:
            slots = [[] for _ in range(self.num_edges)]
            for k, e in enumerate(self._adj_edge_list):
                slots[e].append(k)
            self._arc_slots = slots
        return slots

    def arc_open_mask(self, arcs: Iterable[Tuple[Node, Node]]) -> np.ndarray:
        """Boolean mask over CSR arc slots opening only the given directions.

        ``arcs`` are ``(tail, head)`` label pairs; each must be a direction
        of an existing undirected edge (KeyError otherwise).  The mask is
        aligned with :attr:`neighbors`/:attr:`adj_edge` and feeds
        :func:`dijkstra_indexed`'s ``arc_open`` parameter — the substrate
        for directed game families on the shared undirected CSR.
        """
        mask = np.zeros(len(self.neighbors), dtype=bool)
        indptr = self._indptr_list
        neighbors = self._neighbors_list
        id_of = self.id_of
        for u_label, v_label in arcs:
            u, v = id_of(u_label), id_of(v_label)
            lo, hi = indptr[u], indptr[u + 1]
            k = bisect_left(neighbors, v, lo, hi)  # heads sorted within a tail
            if k >= hi or neighbors[k] != v:
                raise KeyError(f"no edge under arc {(u_label, v_label)!r}")
            mask[k] = True
        return mask

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"IndexedGraph(n={self.num_nodes}, m={self.num_edges})"


class DijkstraWorkspace:
    """Reusable scratch state for :func:`dijkstra_indexed`.

    A search allocates three length-``n`` lists and a heap; oracles that run
    hundreds of queries per scan pay that over and over.  A workspace keeps
    the flat arrays (and the heap list, whose capacity persists) alive
    across queries and resets lazily: every node the previous query touched
    is recorded and only those entries are restored, so a bounded search
    that settled ``k`` nodes costs ``O(k)`` to clean up, not ``O(n)``.

    The lists returned by a workspace-backed search are the scratch buffers
    themselves — read what you need (distances, the predecessor walk)
    before the next query on the same workspace overwrites them.  A
    workspace is single-threaded by design; concurrent scans must use
    separate workspaces (the engine creates one per scan).
    """

    __slots__ = ("n", "dist", "pred", "pred_edge", "heap", "_touched")

    def __init__(self, n: int) -> None:
        self.n = n
        self.dist: List[float] = [float("inf")] * n
        self.pred: List[int] = [-1] * n
        self.pred_edge: List[int] = [-1] * n
        self.heap: List[Tuple[float, int]] = []
        self._touched: List[int] = []

    def _begin(self) -> Tuple[List[float], List[int], List[int], List[Tuple[float, int]], List[int]]:
        """Reset the entries touched by the previous query; hand out buffers."""
        dist, pred, pred_edge = self.dist, self.pred, self.pred_edge
        INF = float("inf")
        for v in self._touched:
            dist[v] = INF
            pred[v] = -1
            pred_edge[v] = -1
        self._touched = touched = []
        self.heap.clear()
        return dist, pred, pred_edge, self.heap, touched


def dijkstra_indexed(
    ig: IndexedGraph,
    source: int,
    edge_costs: Optional[np.ndarray] = None,
    target: int = -1,
    validate: bool = False,
    bound: float = float("inf"),
    arc_open: Optional[np.ndarray] = None,
    arc_costs: Optional[List[float]] = None,
    workspace: Optional[DijkstraWorkspace] = None,
) -> Tuple[List[float], List[int], List[int]]:
    """Dijkstra over int node ids with per-edge-id costs.

    Parameters
    ----------
    edge_costs:
        Array of length ``num_edges`` giving the cost of each undirected
        edge; ``None`` uses the stored weights.  Costs must be nonnegative
        (set ``validate=True`` to check).
    arc_open:
        Optional boolean mask over CSR arc slots (see
        :meth:`IndexedGraph.arc_open_mask`); closed directions are never
        relaxed, which is how directed game families search on the shared
        undirected CSR.
    arc_costs:
        Optional pre-expanded per-arc-slot cost *list* (length
        ``2 * num_edges``, aligned with :attr:`IndexedGraph.adj_edge`),
        taking precedence over ``edge_costs``/``arc_open``.  Callers that
        run many queries over a shared pricing (the rule-priced engine
        binding) patch this list in place per query instead of paying an
        O(m) array conversion each time; closed directions are encoded as
        ``inf`` entries.
    target:
        Stop as soon as this node id is settled (``-1``: settle everything).
    bound:
        Prune tentative distances ``>= bound``.  Distances below the bound
        are still exact minima; nodes whose every path costs at least the
        bound stay at ``inf``.  Best-response oracles pass the deviating
        player's current cost here — a costlier prefix can never yield an
        improving deviation.
    workspace:
        Optional :class:`DijkstraWorkspace` whose preallocated arrays back
        the search.  The returned lists are then the workspace buffers,
        valid until its next query; repeated queries skip the per-call
        allocations and pay only an ``O(touched)`` lazy reset.

    Returns
    -------
    ``(dist, pred, pred_edge)`` lists of length ``num_nodes``: tentative
    distance (``inf`` when unreached), predecessor node id and predecessor
    edge id (``-1`` when unreached / at the source).  As in the dict-based
    implementation, entries of frontier nodes hold their best tentative
    values when the search exits early at ``target``.
    """
    if arc_costs is not None:
        costs = arc_costs
    elif edge_costs is None:
        if arc_open is None:
            costs = ig._weights_list
        else:
            costs = np.where(arc_open, ig.weights, np.inf).tolist()
    else:
        if validate and edge_costs.size:
            lo = np.min(edge_costs)
            if not lo >= 0.0:  # catches NaN too
                raise ValueError(f"negative/NaN edge cost: {lo}")
        arc_costs = edge_costs[ig.adj_edge]
        if arc_open is not None:
            arc_costs = np.where(arc_open, arc_costs, np.inf)
        costs = arc_costs.tolist()

    n = ig.num_nodes
    INF = float("inf")
    touched: Optional[List[int]] = None
    if workspace is None:
        dist = [INF] * n
        pred = [-1] * n
        pred_edge = [-1] * n
        heap: List[Tuple[float, int]] = []
    else:
        if workspace.n != n:
            raise ValueError(
                f"workspace sized for {workspace.n} nodes, graph has {n}"
            )
        dist, pred, pred_edge, heap, touched = workspace._begin()
    indptr = ig._indptr_list
    neighbors = ig._neighbors_list
    adj_edge = ig._adj_edge_list

    dist[source] = 0.0
    heap.append((0.0, source))
    if touched is not None:
        touched.append(source)
        touched_append = touched.append
    push = heapq.heappush
    pop = heapq.heappop
    while heap:
        d, u = pop(heap)
        if d > dist[u]:
            continue  # stale entry
        if u == target:
            break
        for k in range(indptr[u], indptr[u + 1]):
            v = neighbors[k]
            nd = d + costs[k]
            if nd < dist[v] and nd < bound:
                if touched is not None and pred[v] < 0 and v != source:
                    touched_append(v)
                dist[v] = nd
                pred[v] = u
                pred_edge[v] = adj_edge[k]
                push(heap, (nd, v))
    return dist, pred, pred_edge


def bfs_hops_indexed(ig: IndexedGraph, source: int) -> List[int]:
    """Unweighted hop counts from ``source`` (-1 for unreachable nodes).

    The unit-weight cross-check for :func:`dijkstra_indexed` in the tests,
    and a cheap reachability primitive.
    """
    n = ig.num_nodes
    hops = [-1] * n
    hops[source] = 0
    indptr = ig._indptr_list
    neighbors = ig._neighbors_list
    frontier = [source]
    level = 0
    while frontier:
        level += 1
        nxt: List[int] = []
        for u in frontier:
            for k in range(indptr[u], indptr[u + 1]):
                v = neighbors[k]
                if hops[v] < 0:
                    hops[v] = level
                    nxt.append(v)
        frontier = nxt
    return hops
