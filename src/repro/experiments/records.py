"""Result containers for experiments."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class ExperimentResult:
    """One experiment's output: a headline claim plus a table of rows."""

    experiment_id: str
    title: str
    #: one-line paper-vs-measured statement
    headline: str
    #: table rows; all rows share a key set (column order = first row's)
    rows: List[Dict[str, object]] = field(default_factory=list)
    notes: Optional[str] = None
    elapsed_seconds: float = 0.0

    def columns(self) -> List[str]:
        return list(self.rows[0].keys()) if self.rows else []

    def to_text(self) -> str:
        from repro.experiments.tables import render_table

        parts = [f"[{self.experiment_id}] {self.title}", self.headline]
        if self.rows:
            parts.append(render_table(self.rows))
        if self.notes:
            parts.append(self.notes)
        parts.append(f"(elapsed: {self.elapsed_seconds:.2f}s)")
        return "\n".join(parts)
