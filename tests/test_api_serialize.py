"""JSON round-trips for graphs, games, subsidies and solve reports."""

import json

import pytest

from repro import api
from repro.api import serialize
from repro.games.broadcast import BroadcastGame
from repro.games.game import NetworkDesignGame
from repro.graphs.generators import random_connected_gnp, random_tree_plus_chords
from repro.graphs.graph import Graph


def _graphs_equal(a: Graph, b: Graph) -> bool:
    return a.node_set() == b.node_set() and dict(
        ((u, v), w) for u, v, w in a.edges()
    ) == dict(((u, v), w) for u, v, w in b.edges())


class TestNodes:
    @pytest.mark.parametrize("node", [0, -3, 2.5, "s17", True, None, ("c", 4, ("x",))])
    def test_node_roundtrip(self, node):
        enc = serialize.encode_node(node)
        back = serialize.decode_node(json.loads(json.dumps(enc)))
        assert back == node
        assert type(back) is type(node)

    def test_unsupported_node_type(self):
        with pytest.raises(TypeError, match="cannot JSON-encode"):
            serialize.encode_node(frozenset({1}))


class TestGraphRoundtrip:
    @pytest.mark.parametrize("seed", range(5))
    def test_random_graphs(self, seed):
        g = random_connected_gnp(12, 0.3, seed=seed)
        data = json.loads(json.dumps(serialize.graph_to_json(g)))
        g2 = serialize.graph_from_json(data)
        assert _graphs_equal(g, g2)

    def test_tuple_and_string_nodes(self):
        g = Graph.from_edges(
            [(("v", 1), "root", 1.5), (("v", 2), "root", 0.25), (("v", 1), ("v", 2), 3.0)]
        )
        g.add_node(("iso", 0))
        g2 = serialize.graph_from_json(serialize.graph_to_json(g))
        assert _graphs_equal(g, g2)

    def test_exact_float_weights(self):
        g = Graph.from_edges([(0, 1, 0.1 + 0.2), (1, 2, 1 / 3)])
        g2 = serialize.graph_from_json(serialize.graph_to_json(g))
        assert g2.weight(0, 1) == g.weight(0, 1)  # bit-for-bit
        assert g2.weight(1, 2) == g.weight(1, 2)

    def test_kind_checked(self):
        with pytest.raises(ValueError, match="kind"):
            serialize.graph_from_json({"kind": "solve-report"})


class TestGameRoundtrip:
    @pytest.mark.parametrize("seed", range(4))
    def test_broadcast_game(self, seed):
        g = random_tree_plus_chords(10, 5, seed=seed, chord_factor=1.2)
        game = BroadcastGame(g, root=0, multiplicity={1: 2, 2: 0})
        game2 = serialize.game_from_json(
            json.loads(json.dumps(serialize.game_to_json(game)))
        )
        assert isinstance(game2, BroadcastGame)
        assert game2.root == game.root
        assert game2.multiplicity == game.multiplicity
        assert _graphs_equal(game.graph, game2.graph)

    def test_network_design_game(self):
        g = Graph.from_edges([(0, 1, 1.0), (1, 2, 2.0), (0, 2, 2.5)])
        game = NetworkDesignGame(g, [(0, 2), (1, 2)])
        game2 = serialize.game_from_json(serialize.game_to_json(game))
        assert isinstance(game2, NetworkDesignGame)
        assert [(p.source, p.target) for p in game2.players] == [(0, 2), (1, 2)]
        assert _graphs_equal(game.graph, game2.graph)

    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown game kind"):
            serialize.game_from_json({"kind": "chess"})


class TestSubsidiesRoundtrip:
    def test_roundtrip_preserves_values(self):
        g = random_tree_plus_chords(10, 5, seed=3, chord_factor=1.1)
        game = BroadcastGame(g, root=0)
        sub = api.solve(game, solver="sne-lp3").subsidies
        back = serialize.subsidies_from_json(
            json.loads(json.dumps(serialize.subsidies_to_json(sub))), g
        )
        assert dict(back.items()) == dict(sub.items())
        assert back.cost == sub.cost


class TestReportRoundtrip:
    @pytest.mark.parametrize("solver", ["sne-lp3", "theorem6", "snd-exact", "aon-greedy"])
    @pytest.mark.parametrize("seed", [0, 7])
    def test_report_roundtrip_exact(self, solver, seed):
        g = random_tree_plus_chords(8, 4, seed=seed, chord_factor=1.1)
        game = BroadcastGame(g, root=0)
        report = api.solve(game, solver=solver)
        payload = serialize.report_to_json(report)
        # Through an actual JSON string, as it would cross a service boundary.
        report2 = serialize.report_from_json(json.loads(json.dumps(payload)))
        assert report2 == report
        assert report2.wall_clock_seconds == report.wall_clock_seconds
        # And the re-serialization is byte-identical.
        assert json.dumps(serialize.report_to_json(report2)) == json.dumps(payload)

    @pytest.mark.parametrize("solver", ["sne-cutting-plane", "sne-poly"])
    def test_profile_metadata_roundtrip(self, solver):
        """The LP solvers' oracle/LP work counters survive a JSON hop intact.

        ``metadata["profile"]`` carries the OracleStats counters; they must
        round-trip exactly (ints, not floats), every counter present, and
        re-serialize byte-identically.
        """
        g = random_tree_plus_chords(10, 5, seed=2, chord_factor=1.1)
        game = BroadcastGame(g, root=0)
        report = api.solve(game, solver=solver)
        profile = report.metadata.get("profile")
        assert profile is not None, "LP solvers must emit profile metadata"
        assert set(profile) == {
            "dijkstra_calls",
            "players_batched",
            "cut_rounds",
            "warm_start_hits",
        }
        payload = serialize.report_to_json(report)
        report2 = serialize.report_from_json(json.loads(json.dumps(payload)))
        profile2 = report2.metadata["profile"]
        assert profile2 == profile
        assert all(type(v) is int for v in profile2.values()), profile2
        assert json.dumps(serialize.report_to_json(report2)) == json.dumps(payload)

    def test_canonical_report_json_zeroes_only_the_wall_clock(self):
        """canonical_report_json: wall clock pinned to 0.0, nothing else
        touched, and the result still deserializes."""
        g = random_tree_plus_chords(8, 4, seed=5, chord_factor=1.1)
        game = BroadcastGame(g, root=0)
        report = api.solve(game, solver="sne-poly")
        raw = serialize.report_to_json(report)
        canonical = serialize.canonical_report_json(report)
        assert canonical["wall_clock_seconds"] == 0.0
        assert {k: v for k, v in canonical.items() if k != "wall_clock_seconds"} == {
            k: v for k, v in raw.items() if k != "wall_clock_seconds"
        }
        # accepts an already-serialized payload too, without mutating it
        again = serialize.canonical_report_json(raw)
        assert again == canonical
        assert raw["wall_clock_seconds"] == report.wall_clock_seconds
        back = serialize.report_from_json(canonical)
        assert back.wall_clock_seconds == 0.0
        assert back.subsidies == report.subsidies

    def test_dumps_loads_dispatch(self):
        g = random_tree_plus_chords(8, 4, seed=1, chord_factor=1.1)
        game = BroadcastGame(g, root=0)
        report = api.solve(game, solver="theorem6")
        for obj in (g, game, report):
            back = serialize.loads(serialize.dumps(obj))
            assert type(back) is type(obj)
        with pytest.raises(TypeError):
            serialize.dumps(42)
        with pytest.raises(ValueError):
            serialize.loads('{"kind": "nope"}')
