"""E8 — Theorem 12: light enforcement <-> satisfiability (Corollary 20).

Builds the gadget graph for satisfiable and unsatisfiable formulas and
checks, with exact rational arithmetic, that a (cost-``3|C|``) light
assignment enforces the target MST exactly when the formula is satisfiable
— the engine of the any-factor inapproximability result.
"""

from __future__ import annotations

from itertools import product

from repro.experiments.records import ExperimentResult
from repro.hardness.sat_reduction import (
    assignment_to_subsidized_edges,
    build_theorem12_instance,
    exact_light_assignment_check,
    light_enforcement_exists,
)
from repro.hardness.solvers import CNFFormula, dpll_solve
from repro.utils.timing import Timer


def _formulas():
    sat1 = CNFFormula.from_lists([[1, 2, 3]])
    sat2 = CNFFormula.from_lists([[1, 2, 3], [-1, 2, 4]])
    sat3 = CNFFormula.from_lists([[1, 2, 3], [-1, 4, 5], [2, -4, 6]])
    unsat = CNFFormula.from_lists(
        [[s1 * 1, s2 * 2, s3 * 3] for s1 in (1, -1) for s2 in (1, -1) for s3 in (1, -1)]
    )
    return [("1 clause (sat)", sat1), ("2 clauses (sat)", sat2), ("3 clauses (sat)", sat3), ("8 clauses (unsat)", unsat)]


def run(seed: int = 0) -> ExperimentResult:
    rows = []
    all_match = True
    with Timer() as t:
        for name, formula in _formulas():
            inst = build_theorem12_instance(formula)
            satisfiable = dpll_solve(formula) is not None
            enforceable, chosen = light_enforcement_exists(inst)
            # Count how many full truth assignments enforce (exact check).
            n_vars = formula.n_vars
            enforcing = 0
            tried = 0
            if n_vars <= 6:
                for bits in product([False, True], repeat=n_vars):
                    tried += 1
                    enc = assignment_to_subsidized_edges(
                        inst, dict(zip(range(1, n_vars + 1), bits))
                    )
                    ok, _ = exact_light_assignment_check(inst, enc)
                    enforcing += ok
            all_match &= enforceable == satisfiable
            rows.append(
                {
                    "formula": name,
                    "satisfiable": satisfiable,
                    "light_enforcement": enforceable,
                    "light_cost": 3 * formula.n_clauses if enforceable else None,
                    "players": inst.game.n_players,
                    "enforcing/total assignments": f"{enforcing}/{tried}" if tried else "-",
                }
            )
    result = ExperimentResult(
        experiment_id="E8",
        title="Theorem 12: light (cost 3|C|) enforcement iff satisfiable",
        headline=(
            f"Corollary 20 equivalence held on every formula: {all_match} "
            "(exact-rational equilibrium checks)"
        ),
        rows=rows,
        notes=(
            "Unsatisfiable formulas force subsidies on a heavy (>= K) edge, "
            "giving the paper's unbounded approximation gap K / 3|C|."
        ),
    )
    result.elapsed_seconds = t.elapsed
    return result
