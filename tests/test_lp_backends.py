"""Unit tests for the LP backend registry itself.

The conformance suite (``test_backend_conformance.py``) proves the
backends *agree*; this file proves the registry machinery around them —
registration atomicity, alias lookup, capability filters, availability
gating, and the ColdSession fallback for backends without bespoke
incremental sessions.
"""

import numpy as np
import pytest

from repro.lp import IncrementalLP, LPStatus
from repro.lp.backends import registry as reg
from repro.lp.backends.registry import (
    BackendUnavailableError,
    LPBackendSpec,
    UnknownBackendError,
    backend_names,
    get_backend,
    list_backends,
    register_backend,
)

BUILTINS = ("exact", "highs-sparse", "pulp-cbc", "warm-tableau")


def _dummy_spec(name, **kw):
    return LPBackendSpec(name=name, description="test dummy", solve=lambda p, max_iter=0: None, **kw)


# ---------------------------------------------------------------------------
# registration
# ---------------------------------------------------------------------------


def test_builtins_registered():
    assert backend_names() == sorted(BUILTINS)


def test_register_collision_on_name():
    with pytest.raises(ValueError, match="already registered"):
        register_backend(_dummy_spec("highs-sparse"))


def test_register_collision_on_alias():
    # a *new* name whose alias shadows an existing name must also refuse —
    # and atomically: the unique name must not be left half-registered
    with pytest.raises(ValueError, match="already registered"):
        register_backend(_dummy_spec("totally-new", aliases=("exact",)))
    with pytest.raises(UnknownBackendError):
        get_backend("totally-new")


def test_register_collision_on_existing_alias():
    with pytest.raises(ValueError, match="already registered"):
        register_backend(_dummy_spec("another-new", aliases=("simplex",)))


def test_registration_round_trip(monkeypatch):
    monkeypatch.setattr(reg, "_REGISTRY", dict(reg._REGISTRY))
    monkeypatch.setattr(reg, "_ALIASES", dict(reg._ALIASES))
    spec = register_backend(_dummy_spec("scratch", aliases=("sc",), exact=True))
    assert get_backend("scratch") is spec
    assert get_backend("sc") is spec
    assert "scratch" in backend_names()
    assert "sc" in backend_names(include_aliases=True)
    assert "sc" not in backend_names()


# ---------------------------------------------------------------------------
# lookup
# ---------------------------------------------------------------------------


def test_alias_lookup_matches_canonical():
    assert get_backend("highs") is get_backend("highs-sparse")
    assert get_backend("simplex") is get_backend("warm-tableau")
    assert get_backend("fraction") is get_backend("exact")
    assert get_backend("rational") is get_backend("exact")
    cbc = get_backend("cbc", require_available=False)
    assert cbc is get_backend("pulp-cbc", require_available=False)


def test_unknown_backend_is_value_error_with_suggestion():
    with pytest.raises(UnknownBackendError) as exc:
        get_backend("highs-sparce")
    assert isinstance(exc.value, ValueError)  # legacy solve_lp error contract
    assert "highs-sparse" in str(exc.value)  # difflib suggestion surfaced
    assert exc.value.known == backend_names()


def test_non_string_name_is_type_error():
    with pytest.raises(TypeError):
        get_backend(None)


def test_availability_gating():
    spec = get_backend("pulp-cbc", require_available=False)
    assert spec.requires == "pulp"
    if spec.available:
        assert get_backend("pulp-cbc") is spec  # pulp installed: both paths work
    else:
        with pytest.raises(BackendUnavailableError, match="pulp"):
            get_backend("pulp-cbc")


def test_backends_without_requirements_always_available():
    for name in ("exact", "highs-sparse", "warm-tableau"):
        spec = get_backend(name)
        assert spec.requires is None and spec.available


# ---------------------------------------------------------------------------
# capability filters
# ---------------------------------------------------------------------------


def test_capability_filters():
    assert [s.name for s in list_backends(exact=True)] == ["exact"]
    assert [s.name for s in list_backends(sparse=True)] == ["highs-sparse"]
    warm = [s.name for s in list_backends(warm_start=True)]
    assert warm == ["highs-sparse", "warm-tableau"]
    assert [s.name for s in list_backends(incremental=False, exact=False)] == ["pulp-cbc"]


def test_available_only_filter():
    names = [s.name for s in list_backends(available_only=True)]
    cbc_available = get_backend("pulp-cbc", require_available=False).available
    expected = sorted(BUILTINS) if cbc_available else sorted(set(BUILTINS) - {"pulp-cbc"})
    assert names == expected


def test_capabilities_dict_shape():
    caps = get_backend("highs-sparse").capabilities()
    assert caps == {"warm_start": True, "sparse": True, "exact": False, "incremental": True}


# ---------------------------------------------------------------------------
# ColdSession fallback
# ---------------------------------------------------------------------------


def test_cold_session_matches_dense_solve():
    """Backends without bespoke sessions still honor the session contract."""
    inc = IncrementalLP(2, np.array([1.0, 1.0]))
    inc.add_constraint([-1.0, -1.0], -1.0)  # x1 + x2 >= 1
    spec = get_backend("exact")
    assert spec.session_factory is None
    session = spec.make_session(inc)
    result, warm = session.solve(None)
    assert warm is False  # ColdSession never claims a warm solve
    assert result.status is LPStatus.OPTIMAL
    assert result.objective == pytest.approx(1.0)
    # appended rows are visible on the next solve (dense-twin rebuild)
    inc.add_constraint([0.0, -1.0], -0.75)  # x2 >= 0.75
    result2, _ = session.solve(None)
    assert result2.objective == pytest.approx(1.0)
    assert result2.x[1] == pytest.approx(0.75)


def test_incremental_lp_accepts_backend_names():
    inc = IncrementalLP(2, np.array([2.0, 3.0]))
    inc.add_constraint([-1.0, 0.0], -1.0)
    for method in ("highs", "warm-tableau", "exact"):
        res = inc.solve(method=method)
        assert res.status is LPStatus.OPTIMAL
        assert res.objective == pytest.approx(2.0), method


def test_spec_is_frozen():
    spec = get_backend("exact")
    with pytest.raises(AttributeError):
        spec.name = "other"
