"""Sweep specifications: parameter grids expanded into runnable jobs.

A :class:`SweepSpec` describes a sweep declaratively — which solvers, which
instance grid (generator model × sizes × count, or an explicit instance
list), which solver options — and :meth:`SweepSpec.expand` turns it into a
flat list of :class:`SweepJob` cells.  Expansion happens once, in the
parent process, so every execution mode (serial, ``--jobs N`` process pool,
warm cache) sees the *same* job payloads in the same order; determinism of
the whole sweep reduces to determinism of the individual solvers.

Seeding follows the repo-wide rule (:func:`repro.utils.rng.child_seeds`):
one ``SeedSequence`` child per grid cell, assigned in a fixed enumeration
order (model-major, then size, then replica), so the instance behind
``gnp-n20[3]`` is identical whether the sweep runs on one core or eight,
with or without the other grid dimensions.

Specs load from JSON or TOML files (see :meth:`SweepSpec.from_file`)::

    solvers = ["sne-lp3", "theorem6"]
    models  = ["tree-chords", "gnp"]
    sizes   = [12, 16]
    count   = 2
    seed    = 7

    [params]
    density = 0.3

    [opts]
    verify = true
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

JSONDict = Dict[str, Any]

from repro.scenarios.families import GAME_PARAMS, SCENARIOS

#: the classic random-graph generators (mirrors ``repro-experiments gen``)
GENERATOR_MODELS = ("tree-chords", "gnp", "geometric")

#: every instance model `expand` understands: the random generators plus
#: the named scenario families of :mod:`repro.scenarios`
MODELS = GENERATOR_MODELS + tuple(sorted(SCENARIOS))

#: the knobs each model accepts; grid expansion scopes a shared params
#: dict per model with this, so mixed-model grids can carry model-specific
#: parameters (gnp's density next to grid's jitter).  Scenario families
#: additionally accept the shared game-wrapper knobs (game/terminals/
#: demands/orientation/pairs).
MODEL_PARAMS = {
    "tree-chords": ("chords", "chord_factor", "weight_low", "weight_high"),
    "gnp": ("density", "weight_low", "weight_high"),
    "geometric": ("radius",),
    **{name: tuple(fam.params) + GAME_PARAMS for name, fam in SCENARIOS.items()},
}

#: spec-file keys accepted by :meth:`SweepSpec.from_mapping`
_SPEC_KEYS = (
    "solvers",
    "models",
    "sizes",
    "count",
    "seed",
    "params",
    "opts",
    "instances",
)


def generate_instance(model: str, n: int, seed: int, **params: Any):
    """Build one instance for a grid cell.

    This is the single instance-construction path shared by the ``gen``
    CLI command and sweep expansion, so a grid cell and a generated
    instance file with the same (model, n, seed, params) are the same
    game.  ``model`` is either one of the classic random generators
    (``tree-chords``/``gnp``/``geometric``, always broadcast games) or a
    named scenario family from :mod:`repro.scenarios`, whose ``game``
    parameter selects any game family.  ``params`` accepts the model's
    knobs and rejects unknown names.
    """
    from repro.games.broadcast import BroadcastGame
    from repro.graphs.generators import (
        random_connected_gnp,
        random_geometric_graph,
        random_tree_plus_chords,
    )

    if model in SCENARIOS:
        from repro.scenarios.families import build_scenario

        return build_scenario(model, n=n, seed=seed, **params)

    params = dict(params)

    def take(name: str, default: Any) -> Any:
        return params.pop(name, default)

    if model == "gnp":
        graph = random_connected_gnp(
            n,
            take("density", 0.3),
            seed=seed,
            weight_low=take("weight_low", 0.5),
            weight_high=take("weight_high", 2.0),
        )
    elif model == "geometric":
        graph = random_geometric_graph(n, take("radius", 0.5), seed=seed)
    elif model == "tree-chords":
        chords = take("chords", None)
        graph = random_tree_plus_chords(
            n,
            n // 2 if chords is None else int(chords),
            seed=seed,
            weight_low=take("weight_low", 0.5),
            weight_high=take("weight_high", 2.0),
            chord_factor=take("chord_factor", 1.1),
        )
    else:
        raise ValueError(f"unknown instance model {model!r}; known: {', '.join(MODELS)}")
    if params:
        raise ValueError(
            f"unknown generator parameter(s) for model {model!r}: "
            f"{', '.join(sorted(params))}"
        )
    return BroadcastGame(graph, root=0)


def read_spec_file(path: Union[str, Path]) -> Dict[str, Any]:
    """Read a ``.json`` or ``.toml`` sweep-spec file as a plain dict.

    Separate from :meth:`SweepSpec.from_file` so callers (the CLI) can
    overlay command-line refinements onto the raw mapping *before*
    validation — a spec file without ``solvers`` plus ``--solver`` flags
    is a valid combination.
    """
    path = Path(path)
    if path.suffix.lower() == ".toml":
        try:
            import tomllib
        except ModuleNotFoundError as exc:  # pragma: no cover - 3.10 only
            raise ValueError(
                "TOML sweep specs need Python >= 3.11 (tomllib); "
                "use a JSON spec instead"
            ) from exc
        with open(path, "rb") as fh:
            data: Any = tomllib.load(fh)
    else:
        with open(path) as fh:
            data = json.load(fh)
    if not isinstance(data, Mapping):
        raise ValueError(f"sweep spec {path} must be a table/object at top level")
    return dict(data)


@dataclass(frozen=True)
class SweepJob:
    """One cell of an expanded sweep: solve ``instance`` with ``solver``.

    ``instance`` is the serialized game payload (not a live object): jobs
    must cross process boundaries and feed content-addressed cache keys,
    and the JSON form is canonical for both.
    """

    #: position in the expanded sweep (stable output ordering)
    index: int
    #: human-readable cell id, e.g. ``"gnp-n20[1] x sne-lp3"``
    label: str
    #: serialized game (:func:`repro.api.serialize.game_to_json` payload)
    instance: JSONDict
    #: registry solver name (canonical or alias)
    solver: str
    #: solver options forwarded to :func:`repro.api.solve`
    opts: JSONDict = field(default_factory=dict)


@dataclass
class SweepSpec:
    """Declarative description of a sweep grid.

    Either give ``instances`` (serialized game payloads, e.g. from
    ``repro-experiments gen``) or a generator grid (``models`` × ``sizes``
    × ``count`` replicas seeded from ``seed``).  ``opts`` are applied to
    every solve.
    """

    solvers: List[str]
    models: List[str] = field(default_factory=lambda: ["tree-chords"])
    sizes: List[int] = field(default_factory=lambda: [12])
    count: int = 1
    seed: int = 0
    params: JSONDict = field(default_factory=dict)
    opts: JSONDict = field(default_factory=dict)
    instances: Optional[List[JSONDict]] = None

    def __post_init__(self) -> None:
        self.solvers = list(self.solvers)
        if not self.solvers:
            raise ValueError("a sweep needs at least one solver")
        if not isinstance(self.seed, int) or isinstance(self.seed, bool):
            # seed=None would pull OS entropy into child_seeds, silently
            # defeating both the cache and the byte-identical-JSON contract
            raise ValueError(
                f"seed must be an int for deterministic expansion, got {self.seed!r}"
            )
        self.models = list(self.models)
        self.sizes = [int(n) for n in self.sizes]
        if self.instances is None:
            if not self.models or not self.sizes:
                raise ValueError("a generator grid needs >=1 model and >=1 size")
            if self.count < 1:
                raise ValueError(f"count must be >= 1, got {self.count}")
            for model in self.models:
                if model not in MODELS:
                    raise ValueError(
                        f"unknown instance model {model!r}; known: {', '.join(MODELS)}"
                    )
            known = {k for model in self.models for k in MODEL_PARAMS[model]}
            unknown = sorted(set(self.params) - known)
            if unknown:
                raise ValueError(
                    f"generator parameter(s) {', '.join(unknown)} fit none of "
                    f"the grid's models ({', '.join(self.models)})"
                )

    # -- construction -------------------------------------------------------

    @classmethod
    def from_mapping(cls, data: Mapping[str, Any]) -> "SweepSpec":
        """Build a spec from a plain dict (the JSON/TOML file contents)."""
        unknown = sorted(set(data) - set(_SPEC_KEYS))
        if unknown:
            raise ValueError(
                f"unknown sweep-spec key(s): {', '.join(unknown)}; "
                f"accepted: {', '.join(_SPEC_KEYS)}"
            )
        if "solvers" not in data:
            raise ValueError("sweep spec must list 'solvers'")
        kwargs: Dict[str, Any] = {"solvers": list(data["solvers"])}
        for key in ("models", "sizes", "count", "seed", "params", "opts", "instances"):
            if key in data:
                kwargs[key] = data[key]
        return cls(**kwargs)

    @classmethod
    def from_file(cls, path: Union[str, Path]) -> "SweepSpec":
        """Load a spec from a ``.json`` or ``.toml`` file."""
        return cls.from_mapping(read_spec_file(path))

    def to_mapping(self) -> JSONDict:
        """The inverse of :meth:`from_mapping` (for ``--json-out`` echoes)."""
        out: JSONDict = {"solvers": list(self.solvers)}
        if self.instances is not None:
            out["instances"] = list(self.instances)
        else:
            out.update(
                models=list(self.models),
                sizes=list(self.sizes),
                count=self.count,
                seed=self.seed,
            )
        if self.params:
            out["params"] = dict(self.params)
        if self.opts:
            out["opts"] = dict(self.opts)
        return out

    # -- expansion ----------------------------------------------------------

    def _grid_instances(self) -> List[Tuple[str, JSONDict]]:
        """(label stem, game payload) per instance, in enumeration order."""
        from repro.api.serialize import game_to_json
        from repro.utils.rng import child_seeds

        if self.instances is not None:
            return [
                (f"inst{i}", dict(payload))
                for i, payload in enumerate(self.instances)
            ]
        cells = [
            (model, n, k)
            for model in self.models
            for n in self.sizes
            for k in range(self.count)
        ]
        seeds = child_seeds(self.seed, len(cells))
        out: List[Tuple[str, JSONDict]] = []
        for (model, n, k), cell_seed in zip(cells, seeds):
            # scope the shared params dict to what this model understands,
            # so mixed-model grids can carry model-specific knobs
            params = {
                key: v for key, v in self.params.items() if key in MODEL_PARAMS[model]
            }
            game = generate_instance(model, n, cell_seed, **params)
            out.append((f"{model}-n{n}[{k}]", game_to_json(game)))
        return out

    def expand(self) -> List[SweepJob]:
        """Materialize the full (instance × solver) job list.

        Instance-major order: all solvers of instance 0, then instance 1,
        … — matching :func:`repro.api.solve_many`'s grid convention.
        """
        jobs: List[SweepJob] = []
        for stem, payload in self._grid_instances():
            for solver in self.solvers:
                jobs.append(
                    SweepJob(
                        index=len(jobs),
                        label=f"{stem} x {solver}",
                        instance=payload,
                        solver=solver,
                        opts=dict(self.opts),
                    )
                )
        return jobs


def jobs_from_instances(
    instances: Sequence[JSONDict],
    solvers: Sequence[str],
    opts: Optional[Mapping[str, Any]] = None,
) -> List[SweepJob]:
    """Jobs for explicit instance payloads (the ``solve-batch`` path)."""
    spec = SweepSpec(
        solvers=list(solvers), instances=[dict(p) for p in instances], opts=dict(opts or {})
    )
    return spec.expand()
