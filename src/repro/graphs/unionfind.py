"""Disjoint-set forest with union by rank and path compression."""

from __future__ import annotations

from typing import Dict, Hashable, Iterable


class UnionFind:
    """Union-find over arbitrary hashable elements.

    Elements are registered lazily by :meth:`find`, or eagerly via the
    constructor.  ``n_components`` tracks the number of disjoint sets among
    the registered elements.
    """

    def __init__(self, elements: Iterable[Hashable] = ()) -> None:
        self._parent: Dict[Hashable, Hashable] = {}
        self._rank: Dict[Hashable, int] = {}
        self.n_components: int = 0
        for x in elements:
            self.add(x)

    def add(self, x: Hashable) -> None:
        """Register a new singleton element (no-op when present)."""
        if x not in self._parent:
            self._parent[x] = x
            self._rank[x] = 0
            self.n_components += 1

    def __contains__(self, x: Hashable) -> bool:
        return x in self._parent

    def __len__(self) -> int:
        return len(self._parent)

    def find(self, x: Hashable) -> Hashable:
        """Representative of x's set (registers x when unknown)."""
        self.add(x)
        root = x
        while self._parent[root] != root:
            root = self._parent[root]
        # Path compression: point the whole chain at the root.
        while self._parent[x] != root:
            self._parent[x], x = root, self._parent[x]
        return root

    def union(self, x: Hashable, y: Hashable) -> bool:
        """Merge the sets of x and y; returns True when they were distinct."""
        rx, ry = self.find(x), self.find(y)
        if rx == ry:
            return False
        if self._rank[rx] < self._rank[ry]:
            rx, ry = ry, rx
        self._parent[ry] = rx
        if self._rank[rx] == self._rank[ry]:
            self._rank[rx] += 1
        self.n_components -= 1
        return True

    def connected(self, x: Hashable, y: Hashable) -> bool:
        return self.find(x) == self.find(y)
