"""Minimal aligned-text table rendering for experiment output."""

from __future__ import annotations

from typing import Dict, List, Sequence


def _format(value: object) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.5g}"
    return str(value)


def render_table(rows: Sequence[Dict[str, object]]) -> str:
    """Render dict rows as an aligned text table with a header rule."""
    if not rows:
        return "(no rows)"
    columns: List[str] = list(rows[0].keys())
    cells = [[_format(r.get(c, "")) for c in columns] for r in rows]
    widths = [
        max(len(col), *(len(row[i]) for row in cells)) for i, col in enumerate(columns)
    ]
    header = "  ".join(col.ljust(w) for col, w in zip(columns, widths))
    rule = "  ".join("-" * w for w in widths)
    body = ["  ".join(cell.ljust(w) for cell, w in zip(row, widths)) for row in cells]
    return "\n".join([header, rule, *body])
