"""E11 benchmark — STABLE NETWORK DESIGN solvers under a budget.

Runs through the :mod:`repro.api` registry (design solvers take the game
and pick their own tree).
"""

import pytest

from repro.api import solve
from repro.games.broadcast import BroadcastGame
from repro.graphs.generators import random_tree_plus_chords


@pytest.fixture(scope="module")
def game():
    g = random_tree_plus_chords(7, 3, seed=19, chord_factor=1.05)
    return BroadcastGame(g, root=0)


@pytest.mark.parametrize("budget_frac", [0.0, 0.2])
def test_exact_snd(benchmark, game, budget_frac):
    budget = budget_frac * game.mst_weight()
    res = benchmark(solve, game, "snd-exact", budget=budget)
    assert res.feasible
    assert res.budget_used <= budget + 1e-6
    assert res.target_cost >= game.mst_weight() - 1e-9


def test_heuristic_snd(benchmark, game):
    budget = 0.2 * game.mst_weight()
    exact = solve(game, solver="snd-exact", budget=budget)
    res = benchmark(solve, game, "snd-local-search", budget=budget)
    assert res.target_cost >= exact.target_cost - 1e-9
