"""E9 — the PoS <= H_n potential-descent argument (Anshelevich et al.).

Best-response dynamics started from the optimal design (the MST) converge
to an equilibrium whose cost is within ``H_n`` of optimal — the classical
upper bound the paper's subsidy results sharpen to a constant.
"""

from __future__ import annotations

from repro.bounds.harmonic import harmonic
from repro.experiments.records import ExperimentResult
from repro.games.broadcast import BroadcastGame
from repro.games.dynamics import equilibrium_from_optimum
from repro.graphs.generators import random_connected_gnp
from repro.utils.timing import Timer


def run(seed: int = 0, sizes=(8, 12, 16, 20), trials: int = 3) -> ExperimentResult:
    rows = []
    all_within = True
    with Timer() as t:
        for n in sizes:
            for trial in range(trials):
                g = random_connected_gnp(n, 0.35, seed=seed + 1000 * n + trial)
                game = BroadcastGame(g, root=0)
                opt = game.mst_weight()
                res = equilibrium_from_optimum(game)
                ratio = res.final_social_cost / opt
                bound = harmonic(game.n_players)
                all_within &= res.converged and ratio <= bound + 1e-9
                rows.append(
                    {
                        "n": n,
                        "trial": trial,
                        "opt": opt,
                        "equilibrium_cost": res.final_social_cost,
                        "ratio": ratio,
                        "H_n": bound,
                        "moves": res.n_moves,
                        "converged": res.converged,
                    }
                )
    result = ExperimentResult(
        experiment_id="E9",
        title="PoS <= H_n: best-response descent from the optimum",
        headline=(
            f"every run converged with cost ratio <= H_n: {all_within} "
            "(potential argument of Anshelevich et al., Section 1)"
        ),
        rows=rows,
    )
    result.elapsed_seconds = t.elapsed
    return result
