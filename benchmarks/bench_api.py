"""Benchmarks of the :mod:`repro.api` facade itself.

Measures what the unified entry point adds on top of the raw solvers:
registry dispatch + report normalization, JSON round-trips, and
``solve_many`` batch throughput (serial vs thread pool).
"""

import json

import pytest

from repro.api import serialize, solve, solve_many
from repro.games.broadcast import BroadcastGame
from repro.graphs.generators import random_tree_plus_chords


@pytest.fixture(scope="module")
def states():
    out = []
    for i in range(12):
        g = random_tree_plus_chords(10, 5, seed=100 + i, chord_factor=1.1)
        out.append(BroadcastGame(g, root=0).mst_state())
    return out


def test_facade_dispatch_theorem6(benchmark, states):
    # theorem6 is the cheapest solver, so this is dominated by facade overhead.
    res = benchmark(solve, states[0], "theorem6")
    assert res.verified


def test_report_json_roundtrip(benchmark, states):
    report = solve(states[0], solver="sne-lp3")

    def roundtrip():
        return serialize.report_from_json(
            json.loads(json.dumps(serialize.report_to_json(report)))
        )

    assert benchmark(roundtrip) == report


def test_solve_many_serial(benchmark, states):
    reports = benchmark(solve_many, states, "theorem6")
    assert all(r.verified for r in reports)


def test_solve_many_threaded(benchmark, states):
    serial = solve_many(states, "theorem6")
    reports = benchmark(solve_many, states, "theorem6", 4)
    assert reports == serial
