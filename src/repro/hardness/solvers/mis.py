"""Exact maximum independent set and 3-regular graph families.

Theorem 5 reduces from INDEPENDENT SET in 3-regular graphs; the branch &
bound here provides ground truth for small instances, and the generators
supply the cubic graphs the experiments feed through the reduction.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Set

import numpy as np

from repro.graphs.graph import Graph, Node
from repro.utils.rng import ensure_rng


def is_independent_set(graph: Graph, nodes: Iterable[Node]) -> bool:
    """No two chosen nodes are adjacent."""
    chosen = list(nodes)
    chosen_set = set(chosen)
    if len(chosen_set) != len(chosen):
        return False
    for u in chosen_set:
        for v in graph.neighbors(u):
            if v in chosen_set:
                return False
    return True


def max_independent_set(graph: Graph) -> Set[Node]:
    """Exact maximum independent set by branch & bound.

    Branches on a maximum-degree vertex (in the residual graph): either it
    is excluded, or included and its neighborhood removed.  A simple
    residual-size upper bound prunes.  Exponential worst case; fine for the
    reduction-sized cubic graphs (tens of nodes).
    """
    adjacency: Dict[Node, Set[Node]] = {u: set(graph.neighbors(u)) for u in graph.nodes}
    best: Set[Node] = set()

    def search(remaining: Set[Node], chosen: Set[Node]) -> None:
        nonlocal best
        if len(chosen) + len(remaining) <= len(best):
            return
        # Strip isolated-in-residual vertices: always take them.
        isolated = [u for u in remaining if not (adjacency[u] & remaining)]
        if isolated:
            search(remaining - set(isolated), chosen | set(isolated))
            return
        if not remaining:
            if len(chosen) > len(best):
                best = set(chosen)
            return
        pivot = max(remaining, key=lambda u: len(adjacency[u] & remaining))
        # Branch 1: include the pivot.
        search(remaining - {pivot} - adjacency[pivot], chosen | {pivot})
        # Branch 2: exclude it.
        search(remaining - {pivot}, chosen)

    search(set(graph.nodes), set())
    assert is_independent_set(graph, best)
    return best


def is_k_regular(graph: Graph, k: int) -> bool:
    return all(graph.degree(u) == k for u in graph.nodes)


# ---------------------------------------------------------------------------
# Cubic graph families
# ---------------------------------------------------------------------------


def complete_graph_k4() -> Graph:
    """K4: the smallest 3-regular graph (MIS size 1)."""
    g = Graph()
    for i in range(4):
        for j in range(i + 1, 4):
            g.add_edge(i, j, 1.0)
    return g


def k33_graph() -> Graph:
    """K3,3: bipartite cubic graph (MIS size 3)."""
    g = Graph()
    for i in range(3):
        for j in range(3, 6):
            g.add_edge(i, j, 1.0)
    return g


def prism_graph(n: int = 3) -> Graph:
    """The n-prism (two n-cycles joined by a perfect matching), cubic."""
    if n < 3:
        raise ValueError("prism needs n >= 3")
    g = Graph()
    for i in range(n):
        g.add_edge(("a", i), ("a", (i + 1) % n), 1.0)
        g.add_edge(("b", i), ("b", (i + 1) % n), 1.0)
        g.add_edge(("a", i), ("b", i), 1.0)
    return g


def petersen_graph() -> Graph:
    """The Petersen graph (MIS size 4)."""
    g = Graph()
    for i in range(5):
        g.add_edge(("outer", i), ("outer", (i + 1) % 5), 1.0)
        g.add_edge(("inner", i), ("inner", (i + 2) % 5), 1.0)
        g.add_edge(("outer", i), ("inner", i), 1.0)
    return g


def random_3_regular_graph(
    n: int, seed: "int | np.random.Generator | None" = None, max_tries: int = 500
) -> Graph:
    """Random simple 3-regular graph via the configuration model.

    ``n`` must be even (handshake lemma).  Pairings with self-loops or
    multi-edges are rejected and resampled.
    """
    if n % 2 != 0 or n < 4:
        raise ValueError("3-regular graphs need even n >= 4")
    rng = ensure_rng(seed)
    stubs = [u for u in range(n) for _ in range(3)]
    for _ in range(max_tries):
        perm = list(rng.permutation(len(stubs)))
        pairs = [(stubs[perm[2 * i]], stubs[perm[2 * i + 1]]) for i in range(len(stubs) // 2)]
        edges: Set[FrozenSet[int]] = set()
        ok = True
        for u, v in pairs:
            if u == v or frozenset((u, v)) in edges:
                ok = False
                break
            edges.add(frozenset((u, v)))
        if ok:
            g = Graph()
            for e in edges:
                u, v = tuple(e)
                g.add_edge(u, v, 1.0)
            if g.is_connected():
                return g
    raise RuntimeError("failed to sample a connected 3-regular graph")
