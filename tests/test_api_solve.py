"""The repro.api facade: solve() across all solvers, report invariants,
and solve_many parallel-vs-serial equality."""

import math

import pytest

from repro import api
from repro.api.report import SolveReport
from repro.games.broadcast import BroadcastGame
from repro.games.equilibrium import check_equilibrium
from repro.games.game import NetworkDesignGame
from repro.graphs.generators import random_tree_plus_chords
from repro.graphs.graph import Graph
from repro.subsidies.assignment import SubsidyAssignment


@pytest.fixture(scope="module")
def game():
    g = random_tree_plus_chords(9, 4, seed=11, chord_factor=1.1)
    return BroadcastGame(g, root=0)


class TestSolveAllSolvers:
    @pytest.mark.parametrize("name", [
        "sne-lp3",
        "sne-cutting-plane",
        "sne-poly",
        "theorem6",
        "aon-exact",
        "aon-greedy",
        "snd-exact",
        "snd-local-search",
        "combinatorial",
    ])
    def test_every_solver_returns_a_report(self, game, name):
        report = api.solve(game, solver=name)
        assert isinstance(report, SolveReport)
        assert report.solver == name
        assert report.feasible
        # Budget invariant: budget used == sum of subsidies.
        assert report.budget_used == pytest.approx(report.subsidies.cost, abs=1e-12)
        # Certificate consistency: verified reports really are equilibria.
        if report.verified and report.problem != "snd":
            state = game.mst_state()
            assert check_equilibrium(state, report.subsidies, tol=1e-6).is_equilibrium
        assert report.wall_clock_seconds >= 0.0
        assert report.target_cost == pytest.approx(
            game.graph.subset_weight(report.target_edges)
        )

    def test_lp_solvers_agree(self, game):
        costs = [
            api.solve(game, solver=n).budget_used
            for n in ("sne-lp3", "sne-cutting-plane", "sne-poly")
        ]
        assert max(costs) - min(costs) < 1e-6

    def test_theorem6_fraction(self, game):
        report = api.solve(game, solver="theorem6")
        assert report.fraction_of_target() == pytest.approx(1 / math.e, rel=1e-9)
        assert report.metadata["levels"] >= 1

    @pytest.mark.parametrize("name", ["sne-lp3", "sne-cutting-plane", "sne-poly"])
    def test_skipped_verification_is_not_claimed(self, game, name):
        report = api.solve(game, solver=name, verify=False)
        assert report.feasible
        assert not report.verified  # no checker run -> no certificate

    def test_solver_opts_forwarded(self, game):
        default = api.solve(game.mst_state(), solver="sne-lp3")
        simplex = api.solve(game.mst_state(), solver="sne-lp3", method="simplex")
        assert simplex.budget_used == pytest.approx(default.budget_used, abs=1e-6)

    def test_snd_budget_zero_still_feasible(self, game):
        report = api.solve(game, solver="snd-exact", budget=0.0)
        assert report.feasible
        assert report.budget_used <= 1e-9
        assert report.problem == "snd"

    def test_unknown_solver_raises(self, game):
        with pytest.raises(api.UnknownSolverError):
            api.solve(game, solver="definitely-not-a-solver")


class TestInstanceCoercion:
    def test_tree_state_and_game_give_same_answer(self, game):
        via_game = api.solve(game, solver="sne-lp3")
        via_state = api.solve(game.mst_state(), solver="sne-lp3")
        assert via_game == via_state

    def test_general_game_accepted_by_general_solvers(self):
        g = Graph.from_edges([(0, 1, 1.0), (1, 2, 1.0), (0, 2, 2.5)])
        ndg = NetworkDesignGame(g, [(0, 2), (1, 2)])
        report = api.solve(ndg, solver="sne-cutting-plane")
        assert report.feasible
        assert report.budget_used >= 0.0

    def test_non_broadcast_general_game_rejected_by_broadcast_solvers(self):
        # Node 1 hosts no player, so this game is outside the broadcast
        # overlap and family coercion must refuse it with a clear reason.
        g = Graph.from_edges([(0, 1, 1.0), (1, 2, 1.0)])
        ndg = NetworkDesignGame(g, [(0, 2)])
        with pytest.raises(TypeError, match="broadcast"):
            api.solve(ndg, solver="sne-lp3")
        with pytest.raises(TypeError, match="broadcast"):
            api.solve(ndg, solver="snd-exact")

    def test_broadcast_shaped_general_game_accepted_by_broadcast_solvers(self):
        # One player per non-root node, common destination: semantically a
        # broadcast game, so broadcast-only solvers serve it via downgrade.
        g = Graph.from_edges([(0, 1, 1.0), (1, 2, 1.0), (0, 2, 2.5)])
        ndg = NetworkDesignGame(g, [(0, 2), (1, 2)])
        report = api.solve(ndg, solver="sne-lp3")
        assert report.feasible and report.verified
        bg = BroadcastGame(g, root=2)
        assert report == api.solve(bg, solver="sne-lp3")


class TestReportInvariants:
    def test_budget_mismatch_rejected(self, game):
        sub = SubsidyAssignment.zero(game.graph)
        with pytest.raises(ValueError, match="budget_used"):
            SolveReport(
                solver="x",
                problem="sne",
                subsidies=sub,
                budget_used=1.0,  # != sub.cost == 0
                target_edges=(),
                target_cost=0.0,
                feasible=True,
                verified=False,
                optimal=False,
            )

    def test_verified_implies_feasible(self, game):
        sub = SubsidyAssignment.zero(game.graph)
        with pytest.raises(ValueError, match="feasible"):
            SolveReport(
                solver="x",
                problem="sne",
                subsidies=sub,
                budget_used=0.0,
                target_edges=(),
                target_cost=0.0,
                feasible=False,
                verified=True,
                optimal=False,
            )

    def test_comparable_excludes_wall_clock(self, game):
        a = api.solve(game, solver="theorem6")
        b = api.solve(game, solver="theorem6")
        assert a.wall_clock_seconds != b.wall_clock_seconds or True  # timing varies
        assert a == b  # equality ignores wall clock
        assert "wall_clock" not in str(sorted(a.comparable()))


class TestSolveMany:
    @pytest.fixture(scope="class")
    def instances(self):
        out = []
        for i in range(20):
            g = random_tree_plus_chords(8, 4, seed=200 + i, chord_factor=1.1)
            out.append(BroadcastGame(g, root=0))
        return out

    def test_parallel_matches_serial_single_solver(self, instances):
        serial = api.solve_many(instances, "sne-lp3")
        parallel = api.solve_many(instances, "sne-lp3", workers=4)
        assert len(serial) == len(parallel) == 20
        assert serial == parallel

    def test_parallel_matches_serial_solver_grid(self, instances):
        solvers = ["theorem6", "sne-lp3"]
        serial = api.solve_many(instances[:6], solvers)
        parallel = api.solve_many(instances[:6], solvers, workers=4)
        assert serial == parallel
        for row in serial:
            assert [r.solver for r in row] == solvers

    def test_opts_applied_to_all(self, instances):
        reports = api.solve_many(
            instances[:3], "snd-local-search", workers=2, opts={"budget": 0.0}
        )
        for r in reports:
            assert r.metadata["budget"] == 0.0

    def test_unknown_solver_fails_fast(self, instances):
        with pytest.raises(api.UnknownSolverError):
            api.solve_many(instances[:2], ["sne-lp3", "bogus"], workers=2)
