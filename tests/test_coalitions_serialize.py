"""Coalition checks and stretch under serialization round-trips.

The satellite contract: a game of any family serialized to JSON and back
produces *identical* coalition reports (``StrongEquilibriumReport``) and
equilibrium stretch on the same deterministic state — not merely close,
since JSON round-trips floats exactly.
"""

import pytest

from repro import api
from repro.games import (
    BroadcastGame,
    DirectedNetworkDesignGame,
    MulticastGame,
    NetworkDesignGame,
    WeightedNetworkDesignGame,
    equilibrium_stretch,
)
from repro.games.coalitions import check_strong_equilibrium
from repro.graphs.generators import random_tree_plus_chords
from repro.graphs.graph import Graph


def _coalition_gadget():
    # Nash but not 2-strong (from exp_extensions): sharing edge (3, 0)
    # helps both players only jointly.
    return Graph.from_edges(
        [(1, 0, 1.0), (2, 0, 1.0), (1, 3, 0.4), (2, 3, 0.4), (3, 0, 1.1)]
    )


def _roundtrip(game):
    return api.serialize.game_from_json(api.serialize.game_to_json(game))


def _report_data(report):
    dev = report.deviation
    return {
        "strong": report.is_strong_equilibrium,
        "checked": report.coalitions_checked,
        "deviation": None
        if dev is None
        else (dev.members, dev.new_paths, dev.old_costs, dev.new_costs),
    }


class TestCoalitionsSurviveSerialization:
    def _assert_identical(self, game, paths, **kwargs):
        state = game.state(paths)
        clone_state = _roundtrip(game).state(paths)
        a = check_strong_equilibrium(state, max_coalition=2, **kwargs)
        b = check_strong_equilibrium(clone_state, max_coalition=2, **kwargs)
        assert _report_data(a) == _report_data(b)
        assert equilibrium_stretch(state) == equilibrium_stretch(clone_state)
        return a

    def test_general_gadget(self):
        game = NetworkDesignGame(_coalition_gadget(), [(1, 0), (2, 0)])
        report = self._assert_identical(game, [[1, 0], [2, 0]])
        assert not report.is_strong_equilibrium
        assert report.deviation.members == (0, 1)

    def test_weighted_gadget(self):
        game = WeightedNetworkDesignGame(
            _coalition_gadget(), [(1, 0), (2, 0)], [1.0, 2.0]
        )
        self._assert_identical(game, [[1, 0], [2, 0]])

    def test_directed_gadget(self):
        g = _coalition_gadget()
        arcs = [a for u, v, _ in g.edges() for a in ((u, v), (v, u))]
        arcs.remove((1, 3))  # one-way: 1 cannot reach the shared shortcut
        game = DirectedNetworkDesignGame(g, [(1, 0), (2, 0)], arcs)
        report = self._assert_identical(game, [[1, 0], [2, 0]])
        # The joint deviation needs 1 -> 3, which the arcs forbid.
        assert report.is_strong_equilibrium

    def test_directed_singleton_via_engine(self):
        g = Graph.from_edges([(0, 1, 1.0), (1, 2, 1.0), (0, 2, 10.0)])
        game = DirectedNetworkDesignGame(g, [(2, 0)])
        report = check_strong_equilibrium(game.state([[2, 0]]), max_coalition=1)
        assert not report.is_strong_equilibrium
        assert report.deviation.members == (0,)
        assert report.deviation.new_paths == [[2, 1, 0]]

    def test_max_coalition_zero_checks_nothing(self):
        # Unstable state, but "immune to coalitions of size <= 0" is vacuous.
        g = Graph.from_edges([(0, 1, 1.0), (1, 2, 1.0), (0, 2, 10.0)])
        state = NetworkDesignGame(g, [(2, 0)]).state([[2, 0]])
        report = check_strong_equilibrium(state, max_coalition=0)
        assert report.is_strong_equilibrium
        assert report.coalitions_checked == 0

    def test_subsidies_apply_after_round_trip(self):
        game = NetworkDesignGame(_coalition_gadget(), [(1, 0), (2, 0)])
        sub = {(0, 1): 1.0, (0, 2): 1.0}
        report = self._assert_identical(game, [[1, 0], [2, 0]], subsidies=sub)
        assert report.is_strong_equilibrium


class TestStretchSurvivesSerialization:
    def test_broadcast_and_multicast_states(self):
        for seed in range(4):
            g = random_tree_plus_chords(9, 4, seed=seed, chord_factor=1.05)
            others = [u for u in g.nodes if u != 0]
            bg = BroadcastGame(g, 0)
            assert equilibrium_stretch(bg.mst_state()) == equilibrium_stretch(
                _roundtrip(bg).mst_state()
            )
            mg = MulticastGame(g, 0, others[:4])
            assert equilibrium_stretch(mg.optimal_state()) == equilibrium_stretch(
                _roundtrip(mg).optimal_state()
            )

    def test_weighted_and_directed_states(self):
        for seed in range(4):
            g = random_tree_plus_chords(9, 4, seed=seed, chord_factor=1.05)
            others = [u for u in g.nodes if u != 0]
            pairs = [(u, 0) for u in others]
            wg = WeightedNetworkDesignGame(
                g, pairs, [1.0 + (i % 3) for i in range(len(pairs))]
            )
            assert equilibrium_stretch(
                wg.shortest_path_state()
            ) == equilibrium_stretch(_roundtrip(wg).shortest_path_state())
            dg = DirectedNetworkDesignGame(g, pairs)
            assert equilibrium_stretch(
                dg.shortest_path_state()
            ) == equilibrium_stretch(_roundtrip(dg).shortest_path_state())

    def test_stretch_at_least_one_and_one_at_equilibrium(self):
        g = _coalition_gadget()
        game = NetworkDesignGame(g, [(1, 0), (2, 0)])
        state = game.state([[1, 0], [2, 0]])
        assert equilibrium_stretch(state) == pytest.approx(1.0)
