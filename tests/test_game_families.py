"""The game-family layer: rules, downgrades, engine bindings, acceptance.

The acceptance matrix at the bottom is the PR's contract: every registered
subsidy solver solves at least one instance from each game family through
``repro.api.solve``, with JSON-stable reports.
"""

import json

import pytest

from repro import api
from repro.games import (
    GAME_FAMILIES,
    BroadcastGame,
    DirectedNetworkDesignGame,
    FairSharing,
    FamilyCoercionError,
    MulticastGame,
    NetworkDesignGame,
    PerEdgeSplit,
    ProportionalSharing,
    WeightedNetworkDesignGame,
    check_equilibrium,
    check_weighted_equilibrium,
    check_weighted_equilibrium_legacy,
    family_of,
    rule_from_json,
    solve_weighted_sne,
    to_broadcast,
    to_general,
)
from repro.games.equilibrium import check_equilibrium_legacy
from repro.graphs.generators import random_tree_plus_chords
from repro.graphs.graph import Graph


@pytest.fixture
def graph():
    return Graph.from_edges(
        [(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0), (0, 2, 1.3), (0, 3, 1.6)]
    )


def _family_zoo(graph):
    """One instance per family, all inside the broadcast overlap."""
    others = [u for u in graph.nodes if u != 0]
    pairs = [(u, 0) for u in others]
    return {
        "broadcast": BroadcastGame(graph, 0),
        "multicast": MulticastGame(graph, 0, others),
        "general": NetworkDesignGame(graph, pairs),
        "weighted": WeightedNetworkDesignGame(graph, pairs, [1.0] * len(pairs)),
        "directed": DirectedNetworkDesignGame(graph, pairs),
    }


class TestFamilyContract:
    def test_family_of(self, graph):
        for name, game in _family_zoo(graph).items():
            assert family_of(game) == name
            assert name in GAME_FAMILIES

    def test_family_of_rejects_strangers(self):
        with pytest.raises(TypeError, match="not a registered game family"):
            family_of(object())

    def test_every_family_has_default_state_and_rule(self, graph):
        for game in _family_zoo(graph).values():
            state = game.default_state()
            assert state is not None
            assert game.cost_sharing is not None


class TestCostSharingRules:
    def test_fair_is_unit(self):
        rule = FairSharing()
        assert rule.weight_on(0, (0, 1)) == 1.0
        assert rule == FairSharing()

    def test_proportional_tracks_demands(self):
        rule = ProportionalSharing([1.0, 2.5])
        assert rule.weight_on(1, (0, 1)) == 2.5
        with pytest.raises(ValueError, match="positive"):
            ProportionalSharing([1.0, 0.0])

    def test_per_edge_split_table_and_base(self):
        rule = PerEdgeSplit({(0, 1): (1.0, 3.0)}, n_players=2, base=2.0)
        assert rule.weight_on(1, (1, 0)) == 3.0  # canonicalized lookup
        assert rule.weight_on(1, (1, 2)) == 2.0  # base fallback
        with pytest.raises(ValueError, match="expected 2 contributions"):
            PerEdgeSplit({(0, 1): (1.0,)}, n_players=2)

    def test_per_edge_split_json_is_insertion_order_independent(self):
        # Equal rules must serialize byte-identically: the sweep cache
        # content-addresses instance JSON.
        a = PerEdgeSplit({(0, 1): (1.0, 2.0), (1, 2): (2.0, 1.0)}, 2)
        b = PerEdgeSplit({(1, 2): (2.0, 1.0), (0, 1): (1.0, 2.0)}, 2)
        assert a == b
        assert json.dumps(a.to_json()) == json.dumps(b.to_json())

    def test_rule_json_round_trips(self):
        for rule in (
            FairSharing(),
            ProportionalSharing([1.0, 2.0, 3.5]),
            PerEdgeSplit({(0, 1): (1.0, 2.0)}, n_players=2, base=(1.5, 2.5)),
        ):
            assert rule_from_json(rule.to_json()) == rule

    def test_per_edge_split_prices_shares(self, graph):
        # Edge (0,1) splits 1:5 — the favoured player pays 1/6 of it.
        rule = PerEdgeSplit({(0, 1): (1.0, 5.0)}, n_players=2)
        game = WeightedNetworkDesignGame(
            graph, [(1, 0), (1, 0)], [1.0, 1.0], cost_sharing=rule
        )
        state = game.state([[1, 0], [1, 0]])
        assert state.player_cost(0) == pytest.approx(1.0 / 6.0)
        assert state.player_cost(1) == pytest.approx(5.0 / 6.0)


class TestDowngrades:
    def test_overlap_instances_downgrade(self, graph):
        zoo = _family_zoo(graph)
        for name, game in zoo.items():
            bg = to_broadcast(game)
            assert isinstance(bg, BroadcastGame)
            nd = to_general(game)
            assert isinstance(nd, NetworkDesignGame)
            assert nd.n_players == len(graph.nodes) - 1

    def test_weighted_nonuniform_demands_refused(self, graph):
        game = WeightedNetworkDesignGame(graph, [(1, 0), (2, 0)], [1.0, 2.0])
        with pytest.raises(FamilyCoercionError, match="uniform demands"):
            to_general(game)

    def test_directed_asymmetric_refused(self, graph):
        game = DirectedNetworkDesignGame(
            graph, [(1, 0)], arcs=[(1, 0), (0, 2), (2, 0)]
        )
        with pytest.raises(FamilyCoercionError, match="one-way"):
            to_general(game)

    def test_directed_fully_closed_edge_refused(self, graph):
        # Edge (0, 3) has no arcs at all: unusable here, traversable in the
        # undirected relaxation — outside the overlap.
        arcs = [
            a
            for u, v, _ in graph.edges()
            if (u, v) != (0, 3)
            for a in ((u, v), (v, u))
        ]
        game = DirectedNetworkDesignGame(graph, [(1, 0)], arcs)
        assert not game.is_symmetric()
        with pytest.raises(FamilyCoercionError, match="fully-closed"):
            to_general(game)

    def test_multicast_partial_coverage_refused(self, graph):
        game = MulticastGame(graph, 0, [1, 3])
        with pytest.raises(FamilyCoercionError, match="cover every non-root"):
            to_broadcast(game)

    def test_general_wrong_shape_refused(self, graph):
        game = NetworkDesignGame(graph, [(1, 0), (2, 3)])
        with pytest.raises(FamilyCoercionError, match="destination"):
            to_broadcast(game)


class TestWeightedEngineParity:
    def test_engine_matches_legacy_on_random_instances(self):
        for seed in range(6):
            g = random_tree_plus_chords(10, 5, seed=seed, chord_factor=1.05)
            others = [u for u in g.nodes if u != 0]
            demands = [1.0 + (i % 3) for i in range(len(others))]
            game = WeightedNetworkDesignGame(g, [(u, 0) for u in others], demands)
            state = game.shortest_path_state()
            assert check_weighted_equilibrium(state) == (
                check_weighted_equilibrium_legacy(state)
            )
            sub, cost = solve_weighted_sne(state)
            assert sub is not None and cost < float("inf")
            assert check_weighted_equilibrium(state, sub, tol=1e-6)
            assert check_weighted_equilibrium_legacy(state, sub, tol=1e-6)

    def test_heavier_demand_raises_subsidy_bill(self):
        g = Graph.from_edges([(0, 1, 4.0), (0, 2, 1.1), (1, 2, 1.1)])
        costs = []
        for demands in ((1.0, 1.0), (1.0, 3.0), (1.0, 9.0)):
            game = WeightedNetworkDesignGame(g, [(1, 0), (1, 0)], demands)
            state = game.state([[1, 0], [1, 0]])
            costs.append(solve_weighted_sne(state)[1])
        assert costs == sorted(costs)

    def test_verify_false_skips_recheck(self):
        g = Graph.from_edges([(0, 1, 4.0), (0, 2, 1.1), (1, 2, 1.1)])
        game = WeightedNetworkDesignGame(g, [(1, 0), (1, 0)], (1.0, 2.0))
        state = game.state([[1, 0], [1, 0]])
        sub, cost = solve_weighted_sne(state, verify=False)
        assert sub is not None
        assert cost == pytest.approx(solve_weighted_sne(state)[1])


class TestDirectedGames:
    def test_state_rejects_against_arc_paths(self, graph):
        game = DirectedNetworkDesignGame(
            graph, [(1, 0)], arcs=[(2, 1), (3, 2), (0, 3), (1, 0)]
        )
        with pytest.raises(ValueError, match="against the arc"):
            game.state([[1, 2, 3, 0]])  # every hop runs against its arc

    def test_shortest_path_respects_arcs(self):
        g = Graph.from_edges([(0, 1, 1.0), (1, 2, 1.0), (0, 2, 10.0)])
        game = DirectedNetworkDesignGame(
            g, [(2, 0)], arcs=[(2, 0), (0, 2), (0, 1), (1, 2)]
        )
        # 2->1->0 is cheap but (2,1) and (1,0) are one-way the other way.
        state = game.shortest_path_state()
        assert state.node_paths[0] == (2, 0)

    def test_equilibrium_check_honours_arcs(self):
        # The cheap return path exists but may not be traversed, so the
        # expensive direct edge is an equilibrium in the directed game and
        # not in its symmetric relaxation.
        g = Graph.from_edges([(0, 1, 1.0), (1, 2, 1.0), (0, 2, 10.0)])
        directed = DirectedNetworkDesignGame(
            g, [(2, 0)], arcs=[(2, 0), (0, 2), (0, 1), (1, 2)]
        )
        sym = NetworkDesignGame(g, [(2, 0)])
        d_state = directed.state([[2, 0]])
        s_state = sym.state([[2, 0]])
        assert check_equilibrium(d_state).is_equilibrium
        assert not check_equilibrium(s_state).is_equilibrium

    def test_dynamics_run_on_directed_and_reject_weighted(self):
        from repro.games.dynamics import best_response_dynamics

        g = Graph.from_edges([(0, 1, 1.0), (1, 2, 1.0), (0, 2, 2.5)])
        dg = DirectedNetworkDesignGame(g, [(1, 0), (2, 0)])
        result = best_response_dynamics(dg.shortest_path_state())
        assert result.converged
        assert check_equilibrium(result.final_state).is_equilibrium
        wg = WeightedNetworkDesignGame(g, [(1, 0), (2, 0)], [1.0, 2.0])
        with pytest.raises(TypeError, match="fair-sharing"):
            best_response_dynamics(wg.shortest_path_state())

    def test_symmetric_directed_matches_general_engine_and_legacy(self):
        for seed in range(4):
            g = random_tree_plus_chords(9, 4, seed=seed)
            others = [u for u in g.nodes if u != 0]
            directed = DirectedNetworkDesignGame(g, [(u, 0) for u in others])
            general = NetworkDesignGame(g, [(u, 0) for u in others])
            d_state = directed.shortest_path_state()
            g_state = general.state([list(p) for p in d_state.node_paths])
            verdict = check_equilibrium(d_state).is_equilibrium
            assert verdict == check_equilibrium(g_state).is_equilibrium
            assert verdict == check_equilibrium_legacy(g_state).is_equilibrium


class TestSerializationAcrossFamilies:
    def test_game_json_round_trips_all_families(self, graph):
        zoo = _family_zoo(graph)
        zoo["multicast-half"] = MulticastGame(graph, 0, [1, 3])
        zoo["weighted-rand"] = WeightedNetworkDesignGame(
            graph, [(1, 0), (2, 0)], [1.0, 2.5]
        )
        zoo["directed-oneway"] = DirectedNetworkDesignGame(
            graph, [(1, 0)], arcs=[(1, 0), (0, 1), (1, 2)]
        )
        zoo["per-edge"] = WeightedNetworkDesignGame(
            graph,
            [(1, 0), (2, 0)],
            [1.0, 1.0],
            cost_sharing=PerEdgeSplit({(0, 1): (1.0, 2.0)}, n_players=2),
        )
        for name, game in zoo.items():
            payload = api.serialize.game_to_json(game)
            text = json.dumps(payload, sort_keys=True)
            back = api.serialize.game_from_json(json.loads(text))
            assert type(back) is type(game), name
            assert (
                json.dumps(api.serialize.game_to_json(back), sort_keys=True) == text
            ), name

    def test_explicit_fair_rule_survives_round_trip(self, graph):
        # Fair sharing with non-unit demands is NOT proportional sharing;
        # the JSON round trip must preserve the rule and hence the costs.
        game = WeightedNetworkDesignGame(
            graph, [(1, 0), (1, 0)], [2.0, 5.0], cost_sharing=FairSharing()
        )
        clone = api.serialize.game_from_json(api.serialize.game_to_json(game))
        assert isinstance(clone.cost_sharing, FairSharing)
        paths = [[1, 0], [1, 0]]
        for i in (0, 1):
            assert clone.state(paths).player_cost(i) == game.state(paths).player_cost(i)

    def test_loads_dispatches_new_kinds(self, graph):
        for game in _family_zoo(graph).values():
            text = api.serialize.dumps(game)
            back = api.serialize.loads(text)
            assert api.serialize.dumps(back) == text


class TestSolverFamilyAcceptance:
    """Every registered solver x every game family: solve + JSON stability."""

    @pytest.mark.parametrize("family", GAME_FAMILIES)
    def test_every_solver_serves_every_family(self, family):
        g = random_tree_plus_chords(8, 4, seed=3)
        others = [u for u in g.nodes if u != 0]
        pairs = [(u, 0) for u in others]
        overlap = {
            "broadcast": BroadcastGame(g, 0),
            "multicast": MulticastGame(g, 0, others),
            "general": NetworkDesignGame(g, pairs),
            "weighted": WeightedNetworkDesignGame(g, pairs, [1.0] * len(pairs)),
            "directed": DirectedNetworkDesignGame(g, pairs),
        }[family]
        for spec in api.list_solvers():
            report = api.solve(overlap, solver=spec.name)
            assert report.feasible, (family, spec.name)
            payload = api.serialize.report_to_json(report)
            text = json.dumps(payload, sort_keys=True)
            back = api.serialize.report_from_json(json.loads(text))
            assert back == report
            assert json.dumps(api.serialize.report_to_json(back), sort_keys=True) == text

    def test_general_solvers_serve_non_overlap_instances(self):
        g = random_tree_plus_chords(8, 4, seed=5)
        others = [u for u in g.nodes if u != 0]
        pairs = [(u, 0) for u in others]
        genuinely = [
            MulticastGame(g, 0, others[:3]),
            WeightedNetworkDesignGame(
                g, pairs, [1.0 + 0.5 * i for i in range(len(pairs))]
            ),
        ]
        for game in genuinely:
            for solver in ("sne-cutting-plane", "sne-poly"):
                report = api.solve(game, solver=solver)
                assert report.feasible and report.verified, (family_of(game), solver)

    def test_lp1_lp2_agree_on_weighted_instances(self):
        g = Graph.from_edges([(0, 1, 4.0), (0, 2, 1.1), (1, 2, 1.1)])
        game = WeightedNetworkDesignGame(g, [(1, 0), (1, 0)], (1.0, 3.0))
        state = game.state([[1, 0], [1, 0]])
        r1 = api.solve(state, solver="sne-cutting-plane")
        r2 = api.solve(state, solver="sne-poly")
        assert r1.budget_used == pytest.approx(r2.budget_used, abs=1e-6)
        assert r1.verified and r2.verified
