"""Tests for simple-path enumeration and the Steiner tree substrate."""

import networkx as nx
import pytest
from hypothesis import given, settings, strategies as st

from repro.graphs import Graph
from repro.graphs.generators import complete_graph, cycle_graph, grid_graph, random_connected_gnp
from repro.graphs.paths import count_simple_paths, enumerate_simple_paths
from repro.graphs.steiner import steiner_tree, steiner_tree_brute_force
from repro.graphs.unionfind import UnionFind


class TestSimplePaths:
    def test_path_graph_single(self):
        g = Graph.from_edges([(0, 1, 1.0), (1, 2, 1.0)])
        assert list(enumerate_simple_paths(g, 0, 2)) == [[0, 1, 2]]

    def test_cycle_two_paths(self):
        g = cycle_graph(5)
        paths = list(enumerate_simple_paths(g, 0, 2))
        assert sorted(paths) == [[0, 1, 2], [0, 4, 3, 2]]

    def test_trivial(self):
        g = Graph.from_edges([(0, 1, 1.0)])
        assert list(enumerate_simple_paths(g, 0, 0)) == [[0]]

    def test_missing_node(self):
        with pytest.raises(KeyError):
            list(enumerate_simple_paths(Graph(), 0, 1))

    def test_max_paths(self):
        g = complete_graph(6)
        assert len(list(enumerate_simple_paths(g, 0, 1, max_paths=7))) == 7

    def test_max_length(self):
        # In the 7-cycle, 0 -> 3 is 3 hops one way and 4 the other.
        g = cycle_graph(7)
        paths = list(enumerate_simple_paths(g, 0, 3, max_length=3))
        assert paths == [[0, 1, 2, 3]]
        both = list(enumerate_simple_paths(g, 0, 3, max_length=4))
        assert sorted(both) == [[0, 1, 2, 3], [0, 6, 5, 4, 3]]

    def test_count_complete_graph(self):
        # K4: paths 0->1: direct (1), via one other (2), via both (2) = 5.
        assert count_simple_paths(complete_graph(4), 0, 1) == 5

    @settings(max_examples=20, deadline=None)
    @given(st.integers(4, 7), st.integers(0, 5000))
    def test_count_matches_networkx(self, n, seed):
        g = random_connected_gnp(n, 0.5, seed=seed)
        h = nx.Graph()
        for u, v, w in g.edges():
            h.add_edge(u, v)
        ours = count_simple_paths(g, 0, n - 1)
        theirs = sum(1 for _ in nx.all_simple_paths(h, 0, n - 1))
        assert ours == theirs


class TestSteiner:
    def test_two_terminals_is_shortest_path(self):
        g = grid_graph(3, 3)
        edges, w = steiner_tree(g, [0, 8])
        assert w == pytest.approx(4.0)
        assert len(edges) == 4

    def test_single_terminal(self):
        g = cycle_graph(4)
        assert steiner_tree(g, [2]) == ([], 0.0)

    def test_unknown_terminal(self):
        with pytest.raises(KeyError):
            steiner_tree(cycle_graph(4), [0, 99])

    def test_star_center_used(self):
        # Terminals on 3 leaves of a star: tree must pass through the hub.
        g = Graph.from_edges([(0, 1, 1.0), (0, 2, 1.0), (0, 3, 1.0), (1, 2, 5.0)])
        edges, w = steiner_tree(g, [1, 2, 3])
        assert w == pytest.approx(3.0)
        assert set(edges) == {(0, 1), (0, 2), (0, 3)}

    def test_tree_connects_terminals(self):
        g = random_connected_gnp(10, 0.4, seed=5)
        edges, _ = steiner_tree(g, [0, 4, 9])
        uf = UnionFind()
        for u, v in edges:
            uf.union(u, v)
        assert uf.connected(0, 4) and uf.connected(0, 9)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(6, 9), st.integers(0, 5000))
    def test_matches_brute_force(self, n, seed):
        g = random_connected_gnp(n, 0.4, seed=seed)
        terminals = [0, n // 2, n - 1]
        _, w_dw = steiner_tree(g, terminals)
        _, w_bf = steiner_tree_brute_force(g, terminals)
        assert w_dw == pytest.approx(w_bf, abs=1e-9)

    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 5000))
    def test_four_terminals_match_brute_force(self, seed):
        g = random_connected_gnp(8, 0.45, seed=seed)
        terminals = [0, 2, 5, 7]
        _, w_dw = steiner_tree(g, terminals)
        _, w_bf = steiner_tree_brute_force(g, terminals)
        assert w_dw == pytest.approx(w_bf, abs=1e-9)

    def test_all_nodes_terminals_gives_mst(self):
        from repro.graphs.mst import kruskal_mst

        g = random_connected_gnp(7, 0.5, seed=3)
        _, w = steiner_tree(g, g.nodes)
        assert w == pytest.approx(g.subset_weight(kruskal_mst(g)))
