"""Serve core: interning LRU, coalescer, admission control, SolverService."""

import json
import threading
import time

import pytest

from repro import api
from repro.games.broadcast import BroadcastGame
from repro.graphs.generators import random_tree_plus_chords
from repro.runtime import ResultCache, SweepRunner, SweepSpec
from repro.serve import (
    AdmissionControl,
    Coalescer,
    InstanceLRU,
    ServeConfig,
    ServeRequestError,
    SolverService,
)
from repro.serve.service import Saturated


def _instance(seed=3, n=10):
    g = random_tree_plus_chords(n, n // 2, seed=seed, chord_factor=1.1)
    return api.serialize.game_to_json(BroadcastGame(g, root=0))


def _canonical_body(instance, solver="sne-lp2", **opts):
    game = api.serialize.game_from_json(instance)
    report = api.solve(game, solver, **opts)
    payload = api.serialize.canonical_report_json(report)
    return (json.dumps(payload, indent=2) + "\n").encode("utf-8")


class TestInstanceLRU:
    def test_intern_returns_same_live_object(self):
        lru = InstanceLRU(4)
        payload = _instance()
        d1, g1 = lru.intern(payload)
        d2, g2 = lru.intern(json.loads(json.dumps(payload)))  # equal, not identical
        assert d1 == d2
        assert g1 is g2  # the warm object, carrying its cached engine
        assert lru.hits == 1 and lru.misses == 1

    def test_key_order_does_not_matter(self):
        lru = InstanceLRU(4)
        payload = _instance()
        shuffled = dict(reversed(list(payload.items())))
        d1, g1 = lru.intern(payload)
        d2, g2 = lru.intern(shuffled)
        assert d1 == d2 and g1 is g2

    def test_capacity_evicts_lru(self):
        lru = InstanceLRU(2)
        a, b, c = _instance(1), _instance(2), _instance(5)
        _, ga = lru.intern(a)
        lru.intern(b)
        lru.intern(a)  # refresh a; b is now least-recent
        lru.intern(c)  # evicts b
        assert lru.evictions == 1
        assert len(lru) == 2
        _, ga2 = lru.intern(a)
        assert ga2 is ga  # a survived
        lru.intern(b)  # b was evicted: re-deserializes
        assert lru.misses == 4  # a, b, c, b-again

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            InstanceLRU(0)


class TestCoalescer:
    def test_concurrent_callers_share_one_computation(self):
        coalescer = Coalescer()
        calls = []
        gate = threading.Event()

        def compute():
            calls.append(1)
            gate.wait(5.0)
            return "value"

        results = []
        threads = [
            threading.Thread(
                target=lambda: results.append(coalescer.run("k", compute))
            )
            for _ in range(4)
        ]
        for t in threads:
            t.start()
        deadline = time.monotonic() + 5
        while coalescer.inflight() == 0 and time.monotonic() < deadline:
            time.sleep(0.005)
        time.sleep(0.05)  # let the followers pile onto the open flight
        gate.set()
        for t in threads:
            t.join()
        assert len(calls) == 1  # one leader computed
        assert [v for v, _ in results] == ["value"] * 4
        assert sum(1 for _, joined in results if joined) == 3
        assert coalescer.inflight() == 0

    def test_sequential_calls_do_not_coalesce(self):
        coalescer = Coalescer()
        calls = []
        for _ in range(3):
            value, joined = coalescer.run("k", lambda: calls.append(1) or len(calls))
            assert not joined
        assert len(calls) == 3

    def test_leader_error_propagates_to_followers(self):
        coalescer = Coalescer()
        gate = threading.Event()
        outcomes = []

        def boom():
            gate.wait(5.0)
            raise RuntimeError("solver exploded")

        def follow():
            try:
                outcomes.append(coalescer.run("k", boom))
            except RuntimeError as exc:
                outcomes.append(str(exc))

        threads = [threading.Thread(target=follow) for _ in range(3)]
        for t in threads:
            t.start()
        time.sleep(0.05)
        gate.set()
        for t in threads:
            t.join()
        assert outcomes == ["solver exploded"] * 3


class TestAdmissionControl:
    def test_rejects_beyond_capacity(self):
        control = AdmissionControl(workers=1, queue=1)
        control.admit()
        control.admit()
        with pytest.raises(Saturated):
            control.admit()
        assert control.rejected == 1
        control.release()
        control.admit()  # a slot freed up
        assert control.inflight == 2

    def test_stats_shape(self):
        control = AdmissionControl(workers=2, queue=3)
        assert control.stats() == {
            "workers": 2,
            "capacity": 5,
            "inflight": 0,
            "rejected": 0,
        }


class TestServeConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"workers": 0},
            {"queue": -1},
            {"lru_size": 0},
            {"batch_window": -0.1},
        ],
    )
    def test_rejects_bad_knobs(self, kwargs):
        with pytest.raises(ValueError):
            ServeConfig(**kwargs)


class TestSolverService:
    def test_solve_body_is_canonical_cli_bytes(self):
        service = SolverService(ServeConfig(cache=False))
        instance = _instance()
        body = service.solve_json({"instance": instance, "solver": "sne-lp2"})
        assert body == _canonical_body(instance)

    def test_opts_flow_through(self):
        service = SolverService(ServeConfig(cache=False))
        instance = _instance()
        body = service.solve_json(
            {"instance": instance, "solver": "sne-lp1", "opts": {"method": "simplex"}}
        )
        assert body == _canonical_body(instance, "sne-lp1", method="simplex")

    @pytest.mark.parametrize(
        "data, match",
        [
            ({}, "missing 'instance'"),
            ({"instance": _instance()}, "missing 'solver'"),
            ({"instance": [], "solver": "sne-lp2"}, "'instance' must be a dict"),
            ({"instance": _instance(), "solver": "nope"}, "unknown solver"),
            (
                {"instance": _instance(), "solver": "sne-lp2", "opts": "x"},
                "'opts' must be a dict",
            ),
        ],
    )
    def test_bad_requests_are_400s(self, data, match):
        service = SolverService(ServeConfig(cache=False))
        with pytest.raises(ServeRequestError, match=match) as excinfo:
            service.solve_json(data)
        assert excinfo.value.status == 400

    def test_bad_solver_opts_are_400_not_500(self):
        service = SolverService(ServeConfig(cache=False))
        with pytest.raises(ServeRequestError) as excinfo:
            service.solve_json(
                {
                    "instance": _instance(),
                    "solver": "sne-lp2",
                    "opts": {"method": "no-such-backend"},
                }
            )
        assert excinfo.value.status == 400

    def test_result_cache_round_trip_within_service(self, tmp_path):
        service = SolverService(ServeConfig(cache=tmp_path))
        request = {"instance": _instance(), "solver": "sne-lp2"}
        first = service.solve_json(request)
        second = service.solve_json(request)
        assert first == second
        counters = service.counters.as_dict()
        assert counters["solves"] == 1
        assert counters["result_cache_hits"] == 1
        assert counters["result_cache_misses"] == 1

    def test_cache_shared_with_sweep_runtime_both_ways(self, tmp_path):
        """Daemon solves pre-warm sweeps and vice versa: one store, one key."""
        instance = _instance()
        spec = SweepSpec(solvers=["sne-lp2"], instances=[instance])
        jobs = spec.expand()

        # sweep first -> daemon hit
        SweepRunner(cache=ResultCache(tmp_path / "a")).run(jobs)
        service = SolverService(ServeConfig(cache=tmp_path / "a"))
        service.solve_json({"instance": instance, "solver": "sne-lp2"})
        assert service.counters.as_dict()["result_cache_hits"] == 1
        assert "solves" not in service.counters.as_dict()

        # daemon first -> sweep hit
        service2 = SolverService(ServeConfig(cache=tmp_path / "b"))
        service2.solve_json({"instance": instance, "solver": "sne-lp2"})
        result = SweepRunner(cache=ResultCache(tmp_path / "b")).run(jobs)
        assert result.cache_hits == 1

    def test_repro_cache_dir_env_selects_store(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "via-env"))
        service = SolverService(ServeConfig(cache=None))
        assert service.cache.root == tmp_path / "via-env"

    def test_batch_grid_matches_cli_shape(self):
        service = SolverService(ServeConfig(cache=False))
        instance = _instance()
        body = service.solve_batch_json(
            {"instances": [instance], "solvers": ["sne-lp1", "sne-lp2"]}
        )
        grid = json.loads(body.decode())
        assert len(grid) == 1 and len(grid[0]) == 2
        # accepts a whole instance-set payload, as written by `gen`
        body2 = service.solve_batch_json(
            {
                "instances": {"kind": "instance-set", "instances": [instance]},
                "solvers": "sne-lp2",
            }
        )
        assert json.loads(body2.decode())[0][0] == grid[0][1]

    def test_sweep_body_matches_cli_json_out(self, tmp_path):
        from repro.cli import main

        spec = {
            "solvers": ["sne-lp2", "theorem6"],
            "models": ["tree-chords"],
            "sizes": [8],
            "count": 2,
            "seed": 5,
        }
        service = SolverService(ServeConfig(cache=tmp_path / "serve-cache"))
        body = service.sweep_json({"spec": spec})

        spec_file = tmp_path / "spec.json"
        spec_file.write_text(json.dumps(spec))
        json_out = tmp_path / "sweep.json"
        rc = main(
            [
                "sweep",
                "--spec",
                str(spec_file),
                "--json-out",
                str(json_out),
                "--cache-dir",
                str(tmp_path / "cli-cache"),
                "--quiet",
            ]
        )
        assert rc == 0
        assert body == json_out.read_bytes()

    def test_stats_and_version_payloads(self, tmp_path):
        from repro import __version__

        service = SolverService(ServeConfig(cache=tmp_path))
        service.solve_json({"instance": _instance(), "solver": "sne-lp2"})
        stats = json.loads(service.stats_json().decode())
        assert stats["kind"] == "serve-stats"
        assert stats["version"] == __version__
        assert stats["result_cache"]["root"] == str(tmp_path)
        assert stats["instances"]["resident"] == 1
        assert stats["admission"]["inflight"] == 0
        assert stats["config"]["workers"] == ServeConfig().workers
        version = json.loads(service.version_json().decode())
        assert version == {"version": __version__}

    def test_solvers_and_families_payloads(self):
        service = SolverService(ServeConfig(cache=False))
        solvers = json.loads(service.solvers_json().decode())["solvers"]
        assert {s["name"] for s in solvers} == set(api.solver_names())
        families = json.loads(service.families_json().decode())
        assert {g["family"] for g in families["games"]} == {
            "broadcast",
            "multicast",
            "general",
            "weighted",
            "directed",
        }
        assert any(s["name"] == "hypercube" for s in families["scenarios"])

    def test_concurrent_identical_requests_coalesce(self, monkeypatch):
        service = SolverService(ServeConfig(cache=False, workers=4))
        instance = _instance()
        real_solve = api.solve
        started = threading.Event()
        release = threading.Event()

        def slow_solve(*args, **kwargs):
            started.set()
            release.wait(5.0)
            return real_solve(*args, **kwargs)

        monkeypatch.setattr(api, "solve", slow_solve)
        bodies = []
        threads = [
            threading.Thread(
                target=lambda: bodies.append(
                    service.solve_json({"instance": instance, "solver": "sne-lp2"})
                )
            )
            for _ in range(3)
        ]
        for t in threads:
            t.start()
        assert started.wait(5.0)
        time.sleep(0.05)  # let the followers join the open flight
        release.set()
        for t in threads:
            t.join()
        assert len(set(bodies)) == 1
        counters = service.counters.as_dict()
        assert counters["solves"] == 1
        assert counters["coalesced_joins"] == 2
