"""LP backend shoot-out: one subsidy workload, every registered backend.

Not a speed *gate* between backends — they serve different purposes
(HiGHS is the production path, the tableau is the dependency-free
fallback, the exact backend trades seconds for proofs, CBC exists for
independence) — but the relative costs should stay visible across
commits, and two *relationships* are worth gating:

* every available backend must land on the same optimal budget (the
  timing loop doubles as one more conformance pass, on a bigger instance
  than the test-suite zoo), and
* the exact backend's overhead over ``highs-sparse`` must stay within a
  generous envelope (exact pivots are ``O(m*n)`` big-rational
  multiplies; an order-of-magnitude regression here means a pivoting
  bug, not noise).

(No "fastest backend" gate on purpose: at this instance size the dense
tableau legitimately beats HiGHS — scipy's call overhead dominates —
and the ranking flips around n≈200, so it is a property of the size,
not of the code.)

Gates follow this directory's convention: skipped under plain ``CI``,
armed by ``REPRO_BENCH_BACKENDS=1`` or any quiet machine.  Each armed
run appends a record to ``BENCH_backends.json`` at the repo root.
"""

import json
import os
import time
from pathlib import Path

import pytest

from repro.api import solve
from repro.games.broadcast import BroadcastGame
from repro.graphs.generators import random_tree_plus_chords
from repro.lp import get_backend, list_backends

REPO_ROOT = Path(__file__).resolve().parent.parent
TRAJECTORY = REPO_ROOT / "BENCH_backends.json"

#: exact-backend certification overhead envelope on the LP (1) instance,
#: as a multiple of the highs-sparse wall clock (generous: proofs are
#: allowed to be slow, regressions are not allowed to be silent)
EXACT_MAX_RATIO = float(os.environ.get("REPRO_BENCH_EXACT_MAX_RATIO", "2000"))

_SKIP_TIMING = (
    os.environ.get("CI", "") != ""
    and "REPRO_BENCH_BACKENDS" not in os.environ
    and "REPRO_BENCH_EXACT_MAX_RATIO" not in os.environ
)


def _lp1_game():
    """A mid-size broadcast instance: big enough to separate the backends,
    small enough that the exact backend finishes LP (1) in milliseconds."""
    g = random_tree_plus_chords(60, 30, seed=7, chord_factor=1.1)
    return BroadcastGame(g, root=0)


@pytest.fixture(scope="module")
def game():
    return _lp1_game()


def _available_backends():
    return [s.name for s in list_backends(available_only=True)]


# ---------------------------------------------------------------------------
# pytest-benchmark visibility (one row per backend, no gates)
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("backend", ["highs-sparse", "warm-tableau", "exact", "pulp-cbc"])
def test_backend_lp1_wall_clock(benchmark, backend, game):
    spec = get_backend(backend, require_available=False)
    if not spec.available:
        pytest.skip(f"backend {backend!r} unavailable (needs {spec.requires})")
    report = benchmark(lambda: solve(game, "sne-cutting-plane", method=backend))
    assert report.feasible and report.verified


def test_certified_solve_wall_clock(benchmark, game):
    report = benchmark(lambda: solve(game, "sne-cutting-plane", certify=True))
    assert report.verified and "exact_certificate" in report.metadata


# ---------------------------------------------------------------------------
# the relationship gates + BENCH_backends.json trajectory
# ---------------------------------------------------------------------------


@pytest.mark.skipif(
    _SKIP_TIMING,
    reason="backend wall-clock comparisons need a quiet machine or an "
    "explicit REPRO_BENCH_BACKENDS=1 (plain CI skips them)",
)
def test_backend_relative_costs(game):
    solve(game, "sne-cutting-plane")  # warm graph/binding caches once

    timings = {}
    budgets = {}
    for name in _available_backends():
        best = float("inf")
        for _ in range(3):
            t0 = time.perf_counter()
            report = solve(game, "sne-cutting-plane", method=name)
            best = min(best, time.perf_counter() - t0)
        assert report.feasible and report.verified, name
        timings[name] = best
        budgets[name] = report.budget_used

    t0 = time.perf_counter()
    certified = solve(game, "sne-cutting-plane", certify=True)
    t_certify = time.perf_counter() - t0
    assert certified.metadata["exact_certificate"]["status"] == "OPTIMAL"

    _append_trajectory(
        {
            "bench": "backends",
            "timestamp": time.time(),
            "instance": "broadcast n=60 chords=30 seed=7",
            "lp1_ms": {name: t * 1e3 for name, t in timings.items()},
            "lp1_budget": budgets,
            "certify_ms": t_certify * 1e3,
            "exact_max_ratio": EXACT_MAX_RATIO,
        }
    )

    reference = budgets["highs-sparse"]
    for name, budget in budgets.items():
        assert abs(budget - reference) <= 1e-6, (name, budget, reference)
    if "exact" in timings:
        ratio = timings["exact"] / timings["highs-sparse"]
        assert ratio <= EXACT_MAX_RATIO, (
            f"exact backend overhead {ratio:.0f}x highs-sparse "
            f"(> {EXACT_MAX_RATIO:.0f}x envelope) — check the pivot loop"
        )


def _append_trajectory(entry: dict) -> None:
    history = []
    if TRAJECTORY.exists():
        try:
            history = json.loads(TRAJECTORY.read_text())
        except json.JSONDecodeError:
            history = []
        if not isinstance(history, list):
            history = [history]
    history.append(entry)
    TRAJECTORY.write_text(json.dumps(history, indent=2) + "\n")
