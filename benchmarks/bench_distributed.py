"""Distributed sweep benchmark — worker scaling, steals, byte-identity.

The acceptance bar for :mod:`repro.runtime.distributed`, on a 12-job
``aon-exact`` grid (per-job cost a few hundred ms, so protocol overhead is
a rounding error):

* ``--json-out`` bytes are identical across a single-host sweep, a
  1-worker distributed run, and a 4-worker run with one worker SIGKILLed
  mid-lease (asserted unconditionally, everywhere);
* 4 workers clear >= ``REPRO_BENCH_DIST_MIN``x (default 1.7x) the 1-worker
  jobs/s on a >= 4-core machine (the ratio gate skips itself under plain
  CI, following the repo's benchmark convention);
* each gated run appends a record to ``BENCH_distributed.json`` at the
  repo root — jobs/s at 1 vs 2 vs 4 workers, steal counts from the kill
  run, and the coordinator's peak-RSS ceiling.

Throughput is measured as the coordinator's ``jobs_per_second`` — fresh
completions over the first-lease -> finish window — so worker-interpreter
boot time does not pollute the scaling ratio.
"""

import json
import os
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.runtime import SweepRunner, SweepSpec
from repro.runtime.distributed import STALL_ENV, SweepCoordinator
from repro.utils.resources import peak_rss_bytes

REPO_ROOT = Path(__file__).resolve().parent.parent
TRAJECTORY = REPO_ROOT / "BENCH_distributed.json"

#: 4 workers must reach this multiple of the 1-worker jobs/s
DIST_MIN = float(os.environ.get("REPRO_BENCH_DIST_MIN", "1.7"))

#: plain CI without an explicit threshold: run everything except the gate
_SKIP_TIMING = (
    os.environ.get("CI", "") != "" and "REPRO_BENCH_DIST_MIN" not in os.environ
)

#: the acceptance grid: 12 aon-exact cells heavy enough to parallelize
GRID = dict(
    solvers=["aon-exact"],
    models=["tree-chords"],
    sizes=[56, 64],
    count=6,
    seed=11,
)

#: filled by the kill test, folded into the trajectory record by the gate
KILL_RECORD = {}


def expand():
    return SweepSpec(**GRID).expand()


def start_workers(host, port, count, stall=None, name="w"):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    if stall is not None:
        env[STALL_ENV] = str(stall)
    return [
        subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli", "sweep-worker",
                "--connect", f"{host}:{port}", "--id", f"{name}{i}",
                "--no-cache", "--quiet",
            ],
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        for i in range(count)
    ]


def run_distributed(tmp_path, n_workers, lease_timeout=None, kill_stalled=False):
    """One coordinated run with ``n_workers`` real worker processes.

    With ``kill_stalled`` a stalled victim worker leases a job first and is
    SIGKILLed holding it, so the run exercises lease expiry + reassignment.
    """
    out = tmp_path / f"dist-{n_workers}{'-kill' if kill_stalled else ''}.json"
    coordinator = SweepCoordinator(
        expand(), cache=False, json_out=out, lease_timeout=lease_timeout
    )
    host, port = coordinator.serve("127.0.0.1", 0)
    victim = None
    try:
        if kill_stalled:
            victim = start_workers(host, port, 1, stall=300, name="victim")[0]
            deadline = time.monotonic() + 60.0
            while time.monotonic() < deadline:
                if coordinator.stats_json()["jobs"]["leased"] >= 1:
                    break
                time.sleep(0.05)
            else:
                pytest.fail("victim never leased a job")
            victim.kill()
            victim.wait(timeout=30)
        workers = start_workers(host, port, n_workers)
        result = coordinator.run()
        for proc in workers:
            proc.wait(timeout=120)
    finally:
        if victim is not None and victim.poll() is None:
            victim.kill()
    return result, out.read_bytes()


def _append_trajectory(entry):
    history = []
    if TRAJECTORY.exists():
        try:
            history = json.loads(TRAJECTORY.read_text())
        except json.JSONDecodeError:
            history = []
        if not isinstance(history, list):
            history = [history]
    history.append(entry)
    TRAJECTORY.write_text(json.dumps(history, indent=2) + "\n")


@pytest.fixture(scope="module")
def reference(tmp_path_factory):
    """The single-host run: the byte oracle every distributed run must hit."""
    path = tmp_path_factory.mktemp("reference") / "single.json"
    result = SweepRunner(cache=False).run(expand())
    assert result.ok
    result.write_json(path)
    return path.read_bytes()


# ---------------------------------------------------------------------------
# byte-identity (no gate: runs everywhere, CI included)
# ---------------------------------------------------------------------------


def test_one_worker_byte_identical(reference, tmp_path):
    result, got = run_distributed(tmp_path, 1)
    assert result.ok, result.summary_text()
    assert result.stolen == 0 and result.duplicates == 0
    assert got == reference


def test_four_workers_with_kill_byte_identical(reference, tmp_path):
    result, got = run_distributed(
        tmp_path, 4, lease_timeout=1.5, kill_stalled=True
    )
    assert result.ok, result.summary_text()
    assert result.stolen >= 1, "the SIGKILLed lease was never reassigned"
    assert got == reference
    KILL_RECORD.update(
        stolen=result.stolen,
        duplicates=result.duplicates,
        victim_stolen_from=result.workers.get("victim0", {}).get("stolen_from"),
    )
    # Recorded here as well as in the gated entry, so the trajectory (and
    # the CI artifact) exists even where the scaling gate skips itself.
    _append_trajectory(
        {
            "bench": "distributed-kill",
            "timestamp": time.time(),
            "grid": {**GRID, "jobs": len(expand())},
            "workers": 4,
            "byte_identical": True,
            **KILL_RECORD,
            "jobs_per_second": result.jobs_per_second,
            "coordinator_peak_rss_bytes": peak_rss_bytes(),
        }
    )


# ---------------------------------------------------------------------------
# the scaling gate + the BENCH_distributed.json trajectory record
# ---------------------------------------------------------------------------


@pytest.mark.skipif(
    _SKIP_TIMING,
    reason="wall-clock ratio gate needs a quiet machine or an explicit "
    "REPRO_BENCH_DIST_MIN threshold (the CI distributed-smoke job sets one)",
)
@pytest.mark.skipif(
    (os.cpu_count() or 1) < 4,
    reason="multi-worker scaling needs >= 4 cores",
)
def test_four_workers_scale_jobs_per_second(reference, tmp_path):
    """Gate 4-vs-1 worker throughput and append the trajectory record."""
    rates = {}
    for n in (1, 2, 4):
        result, got = run_distributed(tmp_path, n)
        assert result.ok, result.summary_text()
        assert got == reference, f"{n}-worker bytes diverged from single-host"
        rates[n] = result.jobs_per_second
    ratio = rates[4] / max(rates[1], 1e-9)

    _append_trajectory(
        {
            "bench": "distributed",
            "timestamp": time.time(),
            "threshold": DIST_MIN,
            "grid": {**GRID, "jobs": len(expand())},
            "jobs_per_second": {"1": rates[1], "2": rates[2], "4": rates[4]},
            "speedup_4v1": ratio,
            "kill_run": dict(KILL_RECORD) or None,
            "coordinator_peak_rss_bytes": peak_rss_bytes(),
        }
    )
    assert ratio >= DIST_MIN, (
        f"4 workers {rates[4]:.1f} jobs/s vs 1 worker {rates[1]:.1f} jobs/s "
        f"-> {ratio:.2f}x (< {DIST_MIN}x)"
    )
