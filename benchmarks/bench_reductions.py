"""E6/E7/E8 benchmark — the three hardness reductions, end to end."""

import pytest

from repro.games.equilibrium import check_equilibrium
from repro.graphs.spanning_trees import enumerate_minimum_spanning_trees
from repro.hardness.binpacking_reduction import any_mst_equilibrium, build_theorem3_instance
from repro.hardness.independent_set import (
    build_theorem5_instance,
    equilibrium_weight,
    tree_from_independent_set,
)
from repro.hardness.sat_reduction import build_theorem12_instance, light_enforcement_exists
from repro.hardness.solvers import (
    BinPackingInstance,
    CNFFormula,
    max_independent_set,
    petersen_graph,
)


def test_theorem3_solvable_roundtrip(benchmark):
    packing = BinPackingInstance((6, 2, 4, 4), 2, 8)

    def kernel():
        inst = build_theorem3_instance(packing)
        return any_mst_equilibrium(inst)

    state = benchmark(kernel)
    assert state is not None


def test_theorem3_unsolvable_exhaustive(benchmark):
    packing = BinPackingInstance((4, 4, 4), 2, 6)
    inst = build_theorem3_instance(packing)

    def kernel():
        return sum(
            check_equilibrium(inst.game.tree_state(edges)).is_equilibrium
            for edges in enumerate_minimum_spanning_trees(inst.game.graph)
        )

    assert benchmark(kernel) == 0


def test_theorem5_petersen(benchmark):
    inst = build_theorem5_instance(petersen_graph())
    mis = max_independent_set(inst.source)

    def kernel():
        state = tree_from_independent_set(inst, mis)
        assert check_equilibrium(state).is_equilibrium
        return state.social_cost()

    weight = benchmark(kernel)
    assert weight == pytest.approx(equilibrium_weight(inst, len(mis)))


def test_theorem12_satisfiable(benchmark):
    formula = CNFFormula.from_lists([[1, 2, 3], [-1, 2, 4]])

    def kernel():
        inst = build_theorem12_instance(formula)
        return light_enforcement_exists(inst)

    ok, chosen = benchmark(kernel)
    assert ok and len(chosen) == 6


def test_theorem12_unsatisfiable(benchmark):
    clauses = [
        [a * 1, b * 2, c * 3] for a in (1, -1) for b in (1, -1) for c in (1, -1)
    ]
    formula = CNFFormula.from_lists(clauses)
    inst = build_theorem12_instance(formula)
    ok, _ = benchmark(light_enforcement_exists, inst)
    assert not ok
