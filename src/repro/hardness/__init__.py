"""Hardness constructions of the paper (Sections 3 and 5).

Every reduction is implemented as a *constructor* producing a concrete
broadcast game plus both directions of the paper's equivalence, verified
end-to-end against exact NP solvers from :mod:`repro.hardness.solvers`:

* :mod:`repro.hardness.bypass` — the Bypass gadget (Lemma 4),
* :mod:`repro.hardness.binpacking_reduction` — Theorem 3 (SND is NP-hard
  even with zero budget), from BIN PACKING,
* :mod:`repro.hardness.independent_set` — Theorem 5 (PoS is APX-hard),
  from INDEPENDENT SET in 3-regular graphs,
* :mod:`repro.hardness.sat_reduction` — Theorem 12 (all-or-nothing SNE is
  inapproximable), from 3SAT-4.
"""

from repro.hardness.bypass import BypassGadget, bypass_ell, build_bypass_game
from repro.hardness.binpacking_reduction import (
    Theorem3Instance,
    build_theorem3_instance,
    packing_from_tree,
    tree_from_packing,
)
from repro.hardness.independent_set import (
    Theorem5Instance,
    build_theorem5_instance,
    equilibrium_weight,
    independent_set_from_tree,
    tree_from_independent_set,
)
from repro.hardness.sat_reduction import (
    Theorem12Instance,
    assignment_to_subsidized_edges,
    build_theorem12_instance,
    exact_light_assignment_check,
    light_enforcement_exists,
)

__all__ = [
    "BypassGadget",
    "bypass_ell",
    "build_bypass_game",
    "Theorem3Instance",
    "build_theorem3_instance",
    "packing_from_tree",
    "tree_from_packing",
    "Theorem5Instance",
    "build_theorem5_instance",
    "equilibrium_weight",
    "independent_set_from_tree",
    "tree_from_independent_set",
    "Theorem12Instance",
    "assignment_to_subsidized_edges",
    "build_theorem12_instance",
    "exact_light_assignment_check",
    "light_enforcement_exists",
]
