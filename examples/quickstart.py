"""Quickstart: enforce a minimum spanning tree with subsidies.

Builds a tiny broadcast game where the MST is *not* an equilibrium, then
stabilizes it three ways through the unified ``repro.api`` facade:

1. the LP-optimal subsidies (Theorem 1 / LP (3)): ``solver="sne-lp3"``,
2. the constructive Theorem 6 assignment (cost exactly wgt(T)/e),
3. an all-or-nothing assignment (Section 5): ``solver="aon-exact"``.

Run:  python examples/quickstart.py

Usage (doctested)::

    >>> from repro import api
    >>> from repro.games import BroadcastGame
    >>> from repro.graphs import Graph
    >>> g = Graph.from_edges([(0, 1, 1.0), (1, 2, 1.0), (0, 2, 1.2)])
    >>> report = api.solve(BroadcastGame(g, root=0), solver="sne-lp3")
    >>> report.verified and report.budget_used < report.target_cost
    True
"""

from repro import api
from repro.games import BroadcastGame, check_equilibrium
from repro.graphs import Graph


def main() -> None:
    # A path 0-1-2-3 (the MST) with two tempting shortcuts to the root.
    g = Graph.from_edges(
        [
            (0, 1, 1.0),
            (1, 2, 1.0),
            (2, 3, 1.0),
            (0, 2, 1.3),  # shortcut for player 2
            (0, 3, 1.6),  # shortcut for player 3
        ]
    )
    game = BroadcastGame(g, root=0)
    mst = game.mst_state()
    print(f"MST weight: {mst.social_cost():.3f}")

    report = check_equilibrium(mst, find_all=True)
    print(f"MST is an equilibrium without subsidies: {report.is_equilibrium}")
    for dev in report.deviations:
        print(
            f"  player {dev.player} pays {dev.current_cost:.3f} but could pay "
            f"{dev.deviation_cost:.3f} via {dev.path_nodes}"
        )

    # One registry, one entry point, one canonical report shape.
    print("\nRegistered solvers:", ", ".join(api.solver_names()))

    # 1. Optimal fractional subsidies (Theorem 1, broadcast LP (3)).
    lp = api.solve(game, solver="sne-lp3")
    print(f"\n{lp.summary()}")
    for edge in lp.subsidies:
        print(f"  subsidize {edge}: {lp.subsidies[edge]:.4f}")
    assert lp.verified

    # 2. The Theorem 6 constructive assignment: always exactly wgt(T)/e.
    constructive = api.solve(game, solver="theorem6")
    print(f"\n{constructive.summary()}")
    print(f"  (= wgt(T)/e = {constructive.metadata['bound']:.4f})")
    assert constructive.verified

    # 3. All-or-nothing: links can only be fully funded.
    aon = api.solve(game, solver="aon-exact")
    print(f"\n{aon.summary()}")
    print(f"  fully funds {list(aon.subsidies.subsidized_edges())}")
    assert aon.verified

    # Reports serialize to JSON and round-trip exactly.
    payload = api.serialize.report_to_json(lp)
    assert api.serialize.report_from_json(payload) == lp

    print("\nAll three assignments make the MST a Nash equilibrium.")


if __name__ == "__main__":
    main()
