"""A1/A2 benchmark — ablations and the Section 6 extensions."""

import pytest

from repro.bounds.instances import theorem11_cycle_instance
from repro.games.multicast import MulticastGame
from repro.games.weighted import WeightedNetworkDesignGame, solve_weighted_sne
from repro.games.coalitions import check_strong_equilibrium
from repro.games.game import NetworkDesignGame
from repro.graphs import Graph
from repro.graphs.generators import random_connected_gnp
from repro.graphs.steiner import steiner_tree
from repro.subsidies import solve_sne_broadcast_lp3
from repro.subsidies.combinatorial import combinatorial_sne


@pytest.mark.parametrize("k", [3, 5])
def test_steiner_dreyfus_wagner(benchmark, k):
    g = random_connected_gnp(25, 0.2, seed=k)
    terminals = list(range(0, 2 * k, 2))
    edges, w = benchmark(steiner_tree, g, terminals)
    assert w > 0 and edges


def test_multicast_sne(benchmark):
    g = random_connected_gnp(12, 0.3, seed=2)
    game = MulticastGame(g, root=0, terminals=[3, 7, 11])

    def kernel():
        from repro.subsidies import solve_sne_cutting_plane_lp1

        return solve_sne_cutting_plane_lp1(game.optimal_state())

    res = benchmark(kernel)
    assert res.verified


def test_weighted_sne(benchmark):
    g = Graph.from_edges([(0, 1, 4.0), (0, 2, 1.1), (1, 2, 1.1)])
    game = WeightedNetworkDesignGame(g, [(1, 0), (1, 0)], [1.0, 9.0])
    state = game.state([[1, 0], [1, 0]])
    sub, cost = benchmark(solve_weighted_sne, state)
    assert sub is not None and cost > 0


def test_strong_equilibrium_check(benchmark):
    g = Graph.from_edges(
        [(1, 0, 1.0), (2, 0, 1.0), (1, 3, 0.4), (2, 3, 0.4), (3, 0, 1.1)]
    )
    game = NetworkDesignGame(g, [(1, 0), (2, 0)])
    state = game.state([[1, 0], [2, 0]])
    report = benchmark(check_strong_equilibrium, state, 2)
    assert not report.is_strong_equilibrium


@pytest.mark.parametrize("n", [12, 24])
def test_combinatorial_waterfilling(benchmark, n):
    _, state = theorem11_cycle_instance(n)
    res = benchmark(combinatorial_sne, state)
    lp = solve_sne_broadcast_lp3(state)
    assert res.verified
    assert res.cost == pytest.approx(lp.cost, abs=1e-7)
