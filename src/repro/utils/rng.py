"""Random number generator plumbing.

All stochastic entry points accept ``seed`` as ``None``, an ``int`` or an
existing :class:`numpy.random.Generator` and normalize through
:func:`ensure_rng`, so experiments are reproducible end to end.
"""

from __future__ import annotations

import numpy as np


def ensure_rng(seed: "int | np.random.Generator | None" = None) -> np.random.Generator:
    """Return a numpy Generator for any accepted seed spec."""
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)
