"""Theorem 6: subsidies of ``wgt(T)/e`` always suffice to enforce an MST.

The constructive proof has two moving parts, both implemented here:

1. **Weight-level decomposition** — the graph is peeled into copies
   ``G_1 .. G_k`` whose edge weights are ``{0, c_j}``; the target tree
   restricted to each copy is again an MST there.
2. **Virtual-cost packing (Lemma 7)** — inside each uniform copy, heavy
   edges get subsidies so that the virtual cost of every root path is capped
   at ``c_j``: edges below the cut set ``S`` are fully subsidized, edges
   above get nothing, and each cut edge ``a = (v, p(v))`` receives::

       b_a = c_j * (1 - m_a * (1 - exp(vc(T_{p(v)}, 0)/c_j - 1)))

   which makes ``vc(T_{p(v)}, 0) + vc(a, b_a) = c_j`` exactly.  The per-level
   total always comes out to ``wgt(T_j)/e`` (the paper's path-transformation
   argument; asserted at runtime).

Composing the per-level assignments enforces the tree in the original game.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.graphs.graph import Edge, Graph
from repro.games.broadcast import BroadcastGame, TreeState
from repro.subsidies.assignment import SubsidyAssignment

_E = math.e


@dataclass
class LevelReport:
    """Per-level bookkeeping of the decomposition."""

    c: float
    n_heavy_tree_edges: int
    subsidy_total: float

    @property
    def level_weight(self) -> float:
        """``wgt(T_j)`` = (number of heavy tree edges) * c_j."""
        return self.n_heavy_tree_edges * self.c


@dataclass
class Theorem6Result:
    """Constructive subsidies plus the paper's accounting."""

    subsidies: SubsidyAssignment
    levels: List[LevelReport] = field(default_factory=list)
    tree_weight: float = 0.0

    @property
    def cost(self) -> float:
        return self.subsidies.cost

    @property
    def bound(self) -> float:
        """The Theorem 6 guarantee ``wgt(T)/e``."""
        return self.tree_weight / _E

    @property
    def fraction(self) -> float:
        return self.cost / self.tree_weight if self.tree_weight > 0 else 0.0


def weight_level_decomposition(weights: List[float]) -> List[Tuple[float, float]]:
    """Thresholds of the peeling: ``[(threshold_j, c_j), ...]``.

    ``threshold_j`` is the original-weight cutoff above which an edge is
    heavy in copy ``j``; ``c_j`` is that copy's uniform heavy weight
    (successive differences of the distinct positive weights).
    """
    distinct = sorted({w for w in weights if w > 0})
    out: List[Tuple[float, float]] = []
    prev = 0.0
    for w in distinct:
        out.append((w, w - prev))
        prev = w
    return out


def _level_subsidies(
    state: TreeState, heavy_edges: set, c: float
) -> Tuple[Dict[Edge, float], float]:
    """Lemma 7 subsidies for one uniform copy; returns (per-edge, total).

    ``heavy_edges`` are the *tree* edges that carry weight ``c`` in this
    copy; all other tree edges are light (weight 0) there.
    """
    tree = state.tree

    # m_a: heavy players (nodes whose parent edge is heavy) in the subtree
    # below each heavy edge.  Computed leaf-up in one reversed-BFS pass.
    heavy_below: Dict[object, int] = {}
    for u in reversed(tree.bfs_order):
        own = 0
        if u != tree.root and tree.edge_to_parent(u) in heavy_edges:
            own = 1
        heavy_below[u] = own + sum(heavy_below[ch] for ch in tree.children[u])

    # vc0(u): virtual cost of the (unsubsidized) path from u to the root.
    vc0: Dict[object, float] = {tree.root: 0.0}
    for u in tree.bfs_order[1:]:
        e = tree.edge_to_parent(u)
        inc = 0.0
        if e in heavy_edges:
            m = heavy_below[u]
            inc = math.inf if m == 1 else c * math.log(m / (m - 1.0))
        vc0[u] = vc0[tree.parent[u]] + inc

    out: Dict[Edge, float] = {}
    total = 0.0
    for e in heavy_edges:
        v = tree.child_endpoint(e)
        p = tree.parent[v]
        m = heavy_below[v]
        if vc0[v] < c:
            continue  # root side of the cut: no subsidies
        if vc0[p] >= c:
            b = c  # strictly below the cut: fully subsidized
        else:
            # Cut edge: top up so vc0(p) + vc(e, b) = c exactly.
            b = c * (1.0 - m * (1.0 - math.exp(vc0[p] / c - 1.0)))
        b = min(max(b, 0.0), c)
        if b > 0.0:
            out[e] = b
            total += b
    return out, total


def theorem6_subsidies(state: TreeState, check_level_totals: bool = True) -> Theorem6Result:
    """Compute the Theorem 6 constructive subsidy assignment for an MST.

    Parameters
    ----------
    state:
        A broadcast tree state; must be a *minimum* spanning tree (the
        decomposition argument requires it) with unit player multiplicities
        (the paper's model).
    check_level_totals:
        Assert the per-level total equals ``wgt(T_j)/e`` (the paper's exact
        accounting) — cheap and catches structural bugs early.

    Raises
    ------
    ValueError
        When the state is not an MST or multiplicities are not all 1.
    """
    game: BroadcastGame = state.game
    if any(k != 1 for k in game.multiplicity.values()):
        raise ValueError("Theorem 6 is stated for unit player multiplicities")
    tree_weight = sum(game.graph.weight(*e) for e in state.edges)
    mst_weight = game.mst_weight()
    if tree_weight > mst_weight + 1e-9 * max(1.0, mst_weight):
        raise ValueError(
            f"target tree weight {tree_weight:.6g} exceeds MST weight "
            f"{mst_weight:.6g}; Theorem 6 applies to minimum spanning trees"
        )

    graph: Graph = game.graph
    tree_weights = {e: graph.weight(*e) for e in state.edges}
    levels = weight_level_decomposition(list(tree_weights.values()))

    combined: Dict[Edge, float] = {}
    reports: List[LevelReport] = []
    for threshold, c in levels:
        heavy = {e for e, w in tree_weights.items() if w >= threshold - 1e-12}
        per_edge, total = _level_subsidies(state, heavy, c)
        expected = len(heavy) * c / _E
        if check_level_totals and abs(total - expected) > 1e-6 * max(1.0, expected):
            raise AssertionError(
                f"level c={c}: subsidy total {total:.9g} != wgt(T_j)/e {expected:.9g}"
            )
        for e, b in per_edge.items():
            combined[e] = combined.get(e, 0.0) + b
        reports.append(LevelReport(c=c, n_heavy_tree_edges=len(heavy), subsidy_total=total))

    subsidies = SubsidyAssignment(graph, combined)
    return Theorem6Result(subsidies=subsidies, levels=reports, tree_weight=tree_weight)
