"""ISP backbone design with selfish customers (the paper's intro scenario).

An ISP wants to roll out the cheapest backbone (an MST over its candidate
fiber routes) connecting every point of presence to its core router, but
each customer site pays only its fair share of the links it uses and will
reroute unilaterally if a cheaper attachment exists.  The regulator can
subsidize part of each link's cost.

This example measures, over random geometric deployments:

* how often the MST is already stable,
* the LP-optimal subsidy budget as a fraction of the MST cost,
* the Theorem 6 guarantee (1/e ~ 36.8%) that budget never exceeds,
* what the regulator gets for intermediate budgets (SND sweep).

Run:  python examples/isp_backbone.py

Usage (doctested) — the Theorem 6 guarantee on one deployment::

    >>> from repro.games import BroadcastGame
    >>> from repro.graphs.generators import random_geometric_graph
    >>> from repro.subsidies import theorem6_subsidies
    >>> g = random_geometric_graph(12, 0.6, seed=4)
    >>> state = BroadcastGame(g, root=0).mst_state()
    >>> res = theorem6_subsidies(state)
    >>> res.fraction <= 1 / 2.718281828        # never above wgt(T)/e
    True
"""

import math

from repro.games import BroadcastGame, check_equilibrium
from repro.graphs.generators import random_geometric_graph
from repro.subsidies import snd_heuristic, solve_sne_broadcast_lp3, theorem6_subsidies


def main() -> None:
    print("deployment  sites  mst_cost  stable  lp_budget  lp_frac  thm6_frac")
    print("-" * 72)
    fractions = []
    for seed in range(6):
        g = random_geometric_graph(22, radius=0.33, seed=seed)
        game = BroadcastGame(g, root=0)
        mst = game.mst_state()
        stable = check_equilibrium(mst).is_equilibrium
        lp = solve_sne_broadcast_lp3(mst)
        thm6 = theorem6_subsidies(mst)
        frac = lp.cost / mst.social_cost()
        fractions.append(frac)
        print(
            f"seed={seed:<6d} {game.n_players:>5d}  {mst.social_cost():8.3f}  "
            f"{'yes' if stable else 'no ':<6s}  {lp.cost:9.4f}  {frac:7.2%}  "
            f"{thm6.fraction:8.2%}"
        )
        assert lp.verified
        assert frac <= 1 / math.e + 1e-9, "Theorem 6 bound violated!"

    print(f"\nworst-case LP fraction observed: {max(fractions):.2%} "
          f"(Theorem 6 guarantee: {1/math.e:.2%})")

    # Budget sweep on the last deployment: what does half the LP budget buy?
    g = random_geometric_graph(14, radius=0.4, seed=11)
    game = BroadcastGame(g, root=0)
    lp_cost = solve_sne_broadcast_lp3(game.mst_state()).cost
    print(f"\nSND budget sweep (MST cost {game.mst_weight():.3f}, "
          f"full enforcement budget {lp_cost:.4f}):")
    for frac in (0.0, 0.25, 0.5, 1.0):
        budget = frac * lp_cost
        res = snd_heuristic(game, budget=budget)
        print(
            f"  budget {budget:7.4f}: backbone cost {res.weight:7.3f} "
            f"(subsidies used {res.subsidy_cost:.4f}, via {res.method})"
        )


if __name__ == "__main__":
    main()
