"""Input validation helpers shared by constructors and generators."""

from __future__ import annotations

import math


def check_edge_weight(weight: float) -> float:
    """Validate an edge weight: finite-or-inf, nonnegative float."""
    w = float(weight)
    if math.isnan(w):
        raise ValueError("edge weight may not be NaN")
    if w < 0:
        raise ValueError(f"edge weight must be nonnegative, got {w}")
    return w


def check_positive_int(value: int, name: str = "value") -> int:
    """Validate a strictly positive integer parameter."""
    if not isinstance(value, (int,)) or isinstance(value, bool):
        raise TypeError(f"{name} must be an int, got {type(value).__name__}")
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value}")
    return value


def check_probability(p: float, name: str = "p") -> float:
    """Validate a probability in [0, 1]."""
    q = float(p)
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"{name} must lie in [0, 1], got {q}")
    return q
