"""E1 benchmark — Theorem 1: the three SNE LP formulations.

Measures each formulation on a fixed 20-node broadcast instance — through
the :mod:`repro.api` registry, so the numbers include the facade's
dispatch + report-normalization overhead — and asserts they produce the
same optimal subsidy cost.
"""

import pytest

from repro.api import solve
from repro.games.broadcast import BroadcastGame
from repro.graphs.generators import random_tree_plus_chords


@pytest.fixture(scope="module")
def instance():
    g = random_tree_plus_chords(20, 10, seed=42, chord_factor=1.1)
    game = BroadcastGame(g, root=0)
    state = game.mst_state()
    reference = solve(state, solver="sne-lp3").budget_used
    return state, reference


def test_lp3_broadcast(benchmark, instance):
    state, reference = instance
    res = benchmark(solve, state, "sne-lp3")
    assert res.verified
    assert res.budget_used == pytest.approx(reference, abs=1e-6)


def test_lp2_polynomial(benchmark, instance):
    state, reference = instance
    res = benchmark(solve, state, "sne-poly")
    assert res.verified
    assert res.budget_used == pytest.approx(reference, abs=1e-5)


def test_lp1_cutting_planes(benchmark, instance):
    state, reference = instance
    res = benchmark(solve, state, "sne-cutting-plane")
    assert res.verified
    assert res.budget_used == pytest.approx(reference, abs=1e-5)


def test_lp3_simplex_backend(benchmark, instance):
    state, reference = instance
    res = benchmark(solve, state, "sne-lp3", method="simplex")
    assert res.budget_used == pytest.approx(reference, abs=1e-5)
