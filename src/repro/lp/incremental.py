"""Incremental LP with sparse row storage and warm-started re-solves.

The cutting-plane driver's access pattern — solve, append a few cut rows,
solve again — is pathological for the dense :class:`~repro.lp.problem.
LinearProgram`: every round re-materializes the full ``A_ub`` and every
backend solve starts from scratch.  :class:`IncrementalLP` is the fast
path built for exactly that pattern:

* the constraint store is CSR-shaped from the start (``data`` / ``indices``
  / ``indptr`` growth buffers with amortized-doubling capacity), so a cut
  appends in ``O(nnz(row))`` and nothing dense is ever materialized;
* each backend from the :mod:`repro.lp.backends` registry holds its warm
  state in a per-program *session* (``spec.make_session(inc)``): the
  ``highs-sparse`` session feeds the rows as a ``scipy.sparse.csr_matrix``
  *view* over the buffers and answers satisfied-cut re-solves from the
  previous optimum without calling the solver; the ``warm-tableau``
  session resumes from the previous optimal basis via
  :class:`~repro.lp.simplex.WarmSimplex` (dual-simplex warm start);
  backends without incremental machinery fall back to a cold
  dense-rebuild session.

Exact parity with the dense path is part of the contract: the HiGHS
backend receives bit-identical matrices either way (scipy canonicalizes
dense input to the same sparse form), and :meth:`IncrementalLP.
to_linear_program` materializes the dense twin the parity tests compare
against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np
import scipy.sparse as sp

# Import via the package so the built-in backends are always registered.
from repro.lp.backends import get_backend
from repro.lp.problem import LinearProgram, LPResult


@dataclass
class LPStats:
    """Solve-path bookkeeping for one :class:`IncrementalLP`."""

    #: backend solves requested (including ones answered without a solver run)
    solves: int = 0
    #: re-solves served from warm state: a resumed simplex basis, a cached
    #: optimum, or a satisfied-cuts shortcut — anything cheaper than cold
    warm_start_hits: int = 0
    #: rows appended over the program's lifetime
    rows_added: int = 0

    def as_dict(self) -> dict:
        return {
            "solves": self.solves,
            "warm_start_hits": self.warm_start_hits,
            "rows_added": self.rows_added,
        }


class IncrementalLP:
    """A ``min c.x : A x <= b, l <= x <= u`` LP built for row appends.

    Mirrors the :class:`~repro.lp.problem.LinearProgram` construction API
    (``add_constraint`` / ``add_sparse_constraint``) so the cutting-plane
    driver and the LP(1)/LP(2) builders can use either interchangeably;
    see the module docstring for what changes under the hood.  Variable
    bounds are fixed at construction — the incremental machinery assumes
    only rows ever change.
    """

    def __init__(
        self,
        n_vars: int,
        c: np.ndarray,
        lower: Optional[np.ndarray] = None,
        upper: Optional[np.ndarray] = None,
    ) -> None:
        self.n_vars = n_vars
        self.c = np.asarray(c, dtype=float)
        if self.c.shape != (n_vars,):
            raise ValueError(f"objective has shape {self.c.shape}, expected ({n_vars},)")
        self.lower = np.zeros(n_vars) if lower is None else np.asarray(lower, dtype=float)
        self.upper = (
            np.full(n_vars, np.inf) if upper is None else np.asarray(upper, dtype=float)
        )
        if np.any(self.lower > self.upper):
            raise ValueError("lower bound exceeds upper bound for some variable")
        self.stats = LPStats()

        # CSR growth buffers: rows occupy data/indices[indptr[i]:indptr[i+1]].
        self._data = np.empty(16, dtype=np.float64)
        self._indices = np.empty(16, dtype=np.int64)
        self._indptr = np.zeros(17, dtype=np.int64)
        self._m = 0
        self._nnz = 0
        self._rhs: List[float] = []

        #: last solve per canonical backend name: (rows_solved, LPResult)
        self._last: dict = {}
        #: warm-state session per canonical backend name
        self._sessions: dict = {}

    # -- construction --------------------------------------------------------

    @property
    def n_constraints(self) -> int:
        return self._m

    @property
    def rhs(self) -> List[float]:
        """Right-hand sides, in row order (read-only by convention)."""
        return self._rhs

    def add_constraint(self, coeffs: Sequence[float] | np.ndarray, rhs: float) -> None:
        """Append the row ``coeffs . x <= rhs`` (dense input, sparse storage)."""
        row = np.asarray(coeffs, dtype=float)
        if row.shape != (self.n_vars,):
            raise ValueError(f"row has shape {row.shape}, expected ({self.n_vars},)")
        idx = np.nonzero(row)[0]
        self._append_row(idx.astype(np.int64), row[idx], rhs)

    def add_sparse_constraint(self, entries: Sequence[Tuple[int, float]], rhs: float) -> None:
        """Append a row given as (index, coefficient) pairs.

        Duplicate indices accumulate, matching
        :meth:`~repro.lp.problem.LinearProgram.add_sparse_constraint`.
        """
        acc: dict = {}
        for idx, coef in entries:
            if not 0 <= idx < self.n_vars:
                raise IndexError(f"column {idx} out of range for {self.n_vars} variables")
            acc[idx] = acc.get(idx, 0.0) + float(coef)
        cols = np.fromiter(sorted(acc), dtype=np.int64, count=len(acc))
        vals = np.array([acc[int(i)] for i in cols], dtype=np.float64)
        keep = vals != 0.0
        self._append_row(cols[keep], vals[keep], rhs)

    def _append_row(self, cols: np.ndarray, vals: np.ndarray, rhs: float) -> None:
        """O(nnz) append into the CSR buffers (amortized-doubling growth)."""
        order = np.argsort(cols, kind="stable")
        cols, vals = cols[order], vals[order]
        k = len(cols)
        nnz, m = self._nnz, self._m
        if nnz + k > len(self._data):
            cap = max(2 * len(self._data), nnz + k)
            data = np.empty(cap, dtype=np.float64)
            data[:nnz] = self._data[:nnz]
            indices = np.empty(cap, dtype=np.int64)
            indices[:nnz] = self._indices[:nnz]
            self._data, self._indices = data, indices
        if m + 2 > len(self._indptr):
            indptr = np.zeros(max(2 * len(self._indptr), m + 2), dtype=np.int64)
            indptr[: m + 1] = self._indptr[: m + 1]
            self._indptr = indptr
        self._data[nnz : nnz + k] = vals
        self._indices[nnz : nnz + k] = cols
        self._indptr[m + 1] = nnz + k
        self._nnz = nnz + k
        self._m = m + 1
        self._rhs.append(float(rhs))
        self.stats.rows_added += 1

    # -- materialization -----------------------------------------------------

    def sparse_matrix(self) -> sp.csr_matrix:
        """The rows as a ``csr_matrix`` sharing the growth buffers.

        Safe against later appends: new rows write past ``nnz``, and a
        capacity doubling swaps in fresh buffers without touching the old
        ones a previously returned matrix still references.
        """
        return sp.csr_matrix(
            (
                self._data[: self._nnz],
                self._indices[: self._nnz],
                self._indptr[: self._m + 1],
            ),
            shape=(self._m, self.n_vars),
            copy=False,
        )

    def matrices(self) -> Tuple[np.ndarray, np.ndarray]:
        """Dense ``(A_ub, b_ub)`` (debug/parity aid; the solvers never call it)."""
        return (
            self.sparse_matrix().toarray(),
            np.asarray(self._rhs, dtype=float),
        )

    def row(self, i: int) -> np.ndarray:
        """Row ``i`` densified (feeds the warm tableau and the tests)."""
        if not 0 <= i < self._m:
            raise IndexError(f"row {i} out of range for {self._m} constraints")
        out = np.zeros(self.n_vars)
        lo, hi = self._indptr[i], self._indptr[i + 1]
        out[self._indices[lo:hi]] = self._data[lo:hi]
        return out

    def to_linear_program(self) -> LinearProgram:
        """The dense cold-path twin with identical rows, in order."""
        lp = LinearProgram(
            n_vars=self.n_vars,
            c=self.c.copy(),
            lower=self.lower.copy(),
            upper=self.upper.copy(),
        )
        for i in range(self._m):
            lp.add_constraint(self.row(i), self._rhs[i])
        return lp

    # -- solving -------------------------------------------------------------

    def solve(self, method: str = "highs", max_iter: int = 20_000) -> LPResult:
        """Solve with the chosen backend, warm-starting where possible.

        ``method`` is any :mod:`repro.lp.backends` registry name or alias;
        warm state (and the last-result cache) is keyed by the canonical
        backend name, so ``"highs"`` and ``"highs-sparse"`` share a
        session.
        """
        spec = get_backend(method)
        self.stats.solves += 1
        cached = self._last.get(spec.name)
        if cached is not None and cached[0] == self._m:
            self.stats.warm_start_hits += 1
            return cached[1]
        session = self._sessions.get(spec.name)
        if session is None:
            session = self._sessions[spec.name] = spec.make_session(self)
        result, warm = session.solve(cached, max_iter=max_iter)
        if warm:
            self.stats.warm_start_hits += 1
        self._last[spec.name] = (self._m, result)
        return result
