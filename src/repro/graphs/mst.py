"""Minimum spanning trees: Kruskal and Prim, plus validators.

Broadcast games make MSTs the optimal designs (Section 2 of the paper), so
these routines sit under every SNE/SND experiment.  Ties are broken
deterministically (by canonical edge key) so repeated runs pick the same MST.
"""

from __future__ import annotations

import heapq
from typing import Iterable, List, Set, Tuple

import numpy as np

from repro.graphs.core import IntUnionFind
from repro.graphs.graph import Edge, Graph, Node, canonical_edge, _sort_key
from repro.graphs.unionfind import UnionFind


def _edge_order_key(item: Tuple[Node, Node, float]):
    u, v, w = item
    return (w, _sort_key(u), _sort_key(v))


def kruskal_mst(graph: Graph) -> List[Edge]:
    """Minimum spanning tree via Kruskal's algorithm.

    Returns the tree's edges in canonical form.  Raises ``ValueError`` when
    the graph is disconnected (a broadcast game needs all players reachable).

    Runs over the indexed snapshot: node ids are interned in ``_sort_key``
    order, so the ``(weight, id_u, id_v)`` lexsort reproduces the legacy
    deterministic tie-break ``(weight, _sort_key(u), _sort_key(v))`` exactly
    while sorting ints instead of calling ``repr`` per comparison.
    """
    ig = graph.to_indexed()
    n = ig.num_nodes
    if n == 0:
        return []
    order = np.lexsort((ig.edge_v, ig.edge_u, ig.edge_weights))
    eu = ig.edge_u.tolist()
    ev = ig.edge_v.tolist()
    edge_labels = ig.edge_labels
    uf = IntUnionFind(n)
    tree: List[Edge] = []
    for i in order.tolist():
        if uf.union(eu[i], ev[i]):
            tree.append(edge_labels[i])
            if len(tree) == n - 1:
                break
    if len(tree) != n - 1:
        raise ValueError("graph is disconnected; no spanning tree exists")
    return tree


def kruskal_mst_ids(ig) -> np.ndarray:
    """Kruskal at the edge-id level over an :class:`IndexedGraph`.

    Returns the tree's edge ids as an int64 array (in discovery order).
    Tie-break is ``(weight, id_u, id_v)`` — identical to :func:`kruskal_mst`
    for ``Graph.to_indexed()`` snapshots (ids are interned in ``_sort_key``
    order there) and plain numeric order for ``IndexedGraph.from_arrays``
    graphs.  Never materializes edge labels, so it is the MST entry point
    for the memory-lean scale tier.
    """
    n = ig.num_nodes
    if n == 0:
        return np.empty(0, dtype=np.int64)
    order = np.lexsort((ig.edge_v, ig.edge_u, ig.edge_weights))
    eu = ig.edge_u.tolist()
    ev = ig.edge_v.tolist()
    uf = IntUnionFind(n)
    tree: List[int] = []
    for i in order.tolist():
        if uf.union(eu[i], ev[i]):
            tree.append(i)
            if len(tree) == n - 1:
                break
    if len(tree) != n - 1:
        raise ValueError("graph is disconnected; no spanning tree exists")
    return np.asarray(tree, dtype=np.int64)


def prim_mst(graph: Graph, start: Node | None = None) -> List[Edge]:
    """Minimum spanning tree via Prim's algorithm with a binary heap."""
    if graph.num_nodes == 0:
        return []
    nodes = graph.nodes
    root = start if start is not None else nodes[0]
    visited: Set[Node] = {root}
    tree: List[Edge] = []
    counter = 0  # heap tiebreaker so heterogeneous nodes never get compared
    heap: List[Tuple[float, int, Node, Node]] = []
    for v, w in graph.adjacency(root).items():
        heapq.heappush(heap, (w, counter, root, v))
        counter += 1
    while heap and len(visited) < graph.num_nodes:
        w, _, u, v = heapq.heappop(heap)
        if v in visited:
            continue
        visited.add(v)
        tree.append(canonical_edge(u, v))
        for x, wx in graph.adjacency(v).items():
            if x not in visited:
                heapq.heappush(heap, (wx, counter, v, x))
                counter += 1
    if len(visited) != graph.num_nodes:
        raise ValueError("graph is disconnected; no spanning tree exists")
    return tree


def minimum_spanning_tree(graph: Graph) -> Graph:
    """MST as a :class:`Graph` (all original nodes, tree edges only)."""
    return graph.edge_subgraph(kruskal_mst(graph))


def is_spanning_tree(graph: Graph, edges: Iterable[Edge]) -> bool:
    """Check that ``edges`` form a spanning tree of ``graph``."""
    edge_list = [canonical_edge(u, v) for u, v in edges]
    if len(set(edge_list)) != len(edge_list):
        return False
    if len(edge_list) != graph.num_nodes - 1:
        return False
    uf = UnionFind(graph.nodes)
    for u, v in edge_list:
        if not graph.has_edge(u, v):
            return False
        if not uf.union(u, v):
            return False  # cycle
    return uf.n_components == 1


def is_minimum_spanning_tree(graph: Graph, edges: Iterable[Edge], tol: float = 1e-9) -> bool:
    """Check that ``edges`` form a spanning tree of minimum total weight."""
    edge_list = list(edges)
    if not is_spanning_tree(graph, edge_list):
        return False
    best = graph.subset_weight(kruskal_mst(graph))
    return graph.subset_weight(edge_list) <= best + tol * max(1.0, abs(best))
