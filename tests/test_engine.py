"""Cross-checks: the vectorized BestResponseEngine vs the legacy oracles.

The acceptance bar for the engine refactor is *verdict identity*: on
randomized instances (broadcast trees and general games, with and without
subsidies) the engine-backed :func:`check_equilibrium` must agree with the
dict-based :func:`check_equilibrium_legacy` — same equilibrium verdict,
same deviating players when scanning all of them.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.games import (
    BestResponseEngine,
    BroadcastGame,
    EngineProfile,
    NetworkDesignGame,
    check_equilibrium,
    check_equilibrium_legacy,
    rosenthal_potential,
)
from repro.games.dynamics import best_response_dynamics
from repro.graphs.generators import random_connected_gnp, random_tree_plus_chords
from repro.subsidies.sne_lp import solve_sne_broadcast_lp3
from repro.utils.rng import ensure_rng


def _random_tree_state(n, seed):
    g = random_tree_plus_chords(n, n // 2, seed=seed, chord_factor=1.2)
    game = BroadcastGame(g, root=0)
    rng = ensure_rng(seed + 1)
    if rng.random() < 0.5:
        return game.mst_state()
    # A random (BFS from a random relabeling) spanning tree: usually worse
    # than the MST, so this exercises the "deviation found" branch too.
    from repro.graphs.spanning_trees import enumerate_spanning_trees

    tree = next(enumerate_spanning_trees(g, limit=1))
    return game.tree_state(tree)


@settings(max_examples=25, deadline=None)
@given(st.integers(5, 14), st.integers(0, 10_000))
def test_tree_verdicts_match_legacy(n, seed):
    state = _random_tree_state(n, seed)
    a = check_equilibrium(state, find_all=True)
    b = check_equilibrium_legacy(state, find_all=True)
    assert a.is_equilibrium == b.is_equilibrium
    assert [d.player for d in a.deviations] == [d.player for d in b.deviations]
    for da, db in zip(a.deviations, b.deviations):
        assert da.current_cost == pytest.approx(db.current_cost)
        assert da.deviation_cost == pytest.approx(db.deviation_cost)


@settings(max_examples=25, deadline=None)
@given(st.integers(5, 12), st.integers(0, 10_000))
def test_tree_verdicts_match_legacy_with_subsidies(n, seed):
    state = _random_tree_state(n, seed)
    # LP(3) subsidies enforce the state; both checkers must agree on that
    # and on partially-withdrawn subsidies.
    res = solve_sne_broadcast_lp3(state, verify=False)
    full = res.subsidies
    half = {e: 0.5 * b for e, b in full.items()}
    for subsidies in (full, half, None):
        a = check_equilibrium(state, subsidies, find_all=True)
        b = check_equilibrium_legacy(state, subsidies, find_all=True)
        assert a.is_equilibrium == b.is_equilibrium
        assert [d.player for d in a.deviations] == [d.player for d in b.deviations]


@settings(max_examples=25, deadline=None)
@given(st.integers(4, 10), st.integers(0, 10_000))
def test_general_verdicts_match_legacy(n, seed):
    g = random_connected_gnp(n, 0.5, seed=seed)
    rng = ensure_rng(seed)
    nodes = g.nodes
    pairs = []
    for _ in range(min(4, n - 1)):
        s, t = rng.choice(len(nodes), size=2, replace=False)
        pairs.append((nodes[int(s)], nodes[int(t)]))
    game = NetworkDesignGame(g, pairs)
    state = game.shortest_path_state()
    a = check_equilibrium(state, find_all=True)
    b = check_equilibrium_legacy(state, find_all=True)
    assert a.is_equilibrium == b.is_equilibrium
    assert [d.player for d in a.deviations] == [d.player for d in b.deviations]


def test_multiplicity_and_zero_weight_edges_match_legacy():
    from repro.graphs import Graph

    g = Graph.from_edges([(0, 1, 0.0), (1, 2, 1.0), (0, 2, 1.2), (2, 3, 0.4)])
    game = BroadcastGame(g, root=0, multiplicity={1: 0, 2: 5, 3: 2})
    state = game.tree_state([(0, 1), (1, 2), (2, 3)])
    a = check_equilibrium(state, find_all=True)
    b = check_equilibrium_legacy(state, find_all=True)
    assert a.is_equilibrium == b.is_equilibrium
    assert [d.player for d in a.deviations] == [d.player for d in b.deviations]


class TestEngineProfile:
    def _profile(self, n=8, seed=13):
        g = random_connected_gnp(n, 0.45, seed=seed)
        game = BroadcastGame(g, root=0).to_network_design_game()
        state = game.shortest_path_state()
        engine = BestResponseEngine.for_graph(game.graph)
        wb = engine.net_weights(engine.subsidy_vector(None))
        return state, engine, EngineProfile(engine, state, wb)

    def test_initial_costs_and_potential_match_state(self):
        state, _, profile = self._profile()
        assert profile.potential() == pytest.approx(rosenthal_potential(state))
        for i in range(state.game.n_players):
            assert profile.player_cost(i) == pytest.approx(state.player_cost(i))

    def test_incremental_usage_matches_rebuilt_state(self):
        state, engine, profile = self._profile()
        moved = 0
        for i in range(state.game.n_players):
            rec = profile.best_response(i)
            if rec.deviation_cost < rec.current_cost:
                profile.apply(i, rec.node_ids, rec.edge_ids)
                moved += 1
        rebuilt = profile.to_state()
        fresh = EngineProfile(engine, rebuilt, profile.wb)
        assert profile.usage.tolist() == fresh.usage.tolist()
        assert profile.potential() == pytest.approx(rosenthal_potential(rebuilt))
        assert moved > 0  # the shortest-path profile is not an equilibrium here

    def test_engine_cache_invalidated_on_graph_mutation(self):
        state, engine, _ = self._profile()
        graph = state.game.graph
        assert BestResponseEngine.for_graph(graph) is engine
        graph.add_edge(0, 100, 5.0)
        assert BestResponseEngine.for_graph(graph) is not engine


def test_dynamics_final_state_is_engine_equilibrium():
    g = random_connected_gnp(10, 0.4, seed=99)
    game = BroadcastGame(g, root=0).to_network_design_game()
    start = game.shortest_path_state()
    result = best_response_dynamics(start, seed=1)
    assert result.converged
    assert check_equilibrium(result.final_state).is_equilibrium
    assert check_equilibrium_legacy(result.final_state).is_equilibrium
    assert result.potential_trace[0] == pytest.approx(rosenthal_potential(start))
    assert result.potential_trace[-1] == pytest.approx(
        rosenthal_potential(result.final_state)
    )
