"""General network design games with fair cost sharing.

A game is an edge-weighted undirected graph plus one ``(source, target)``
pair per player.  A *state* assigns every player a simple path; the weight of
each established edge is split equally among its users, optionally after
subtracting subsidies (the "extension of the game with subsidies b" of the
paper): ``cost_i(T; b) = sum_{a in T_i} (w_a - b_a) / n_a(T)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, Tuple

from repro.graphs.graph import Edge, Graph, Node, canonical_edge

#: Subsidies are any mapping from canonical edge to the subsidized amount.
Subsidies = Mapping[Edge, float]


@dataclass(frozen=True)
class Player:
    """A player: an index plus the terminal pair she must connect."""

    index: int
    source: Node
    target: Node


def _path_nodes_to_edges(nodes: Sequence[Node]) -> Tuple[Edge, ...]:
    """Convert a node walk to canonical edges, rejecting non-simple walks."""
    if len(set(nodes)) != len(nodes):
        raise ValueError(f"path visits a node twice: {list(nodes)!r}")
    return tuple(canonical_edge(u, v) for u, v in zip(nodes, nodes[1:]))


def shortest_node_paths(graph: Graph, players: Sequence) -> List[List[Node]]:
    """One weight-shortest node path per player (shared across families)."""
    from repro.graphs.shortest_paths import dijkstra

    paths = []
    for p in players:
        dist, parent = dijkstra(graph, p.source, target=p.target)
        if p.target not in dist:
            raise ValueError(f"player {p.index}: no path {p.source!r}->{p.target!r}")
        nodes = [p.target]
        while nodes[-1] != p.source:
            nodes.append(parent[nodes[-1]])
        paths.append(list(reversed(nodes)))
    return paths


class State:
    """A strategy profile: one simple path (node sequence) per player.

    Exposes the quantities the paper works with: edge usage counts
    ``n_a(T)``, the established edge set, per-player and social cost.
    """

    #: engine dispatch marker (rule-priced subclasses override with "rule")
    binding_kind = "general"

    def __init__(self, game: "NetworkDesignGame", node_paths: Sequence[Sequence[Node]]):
        if len(node_paths) != game.n_players:
            raise ValueError(
                f"expected {game.n_players} paths, got {len(node_paths)}"
            )
        self.game = game
        self.node_paths: List[Tuple[Node, ...]] = []
        self.edge_paths: List[Tuple[Edge, ...]] = []
        self.edge_sets: List[FrozenSet[Edge]] = []
        usage: Dict[Edge, int] = {}
        for player, nodes in zip(game.players, node_paths):
            nodes = tuple(nodes)
            if not nodes or nodes[0] != player.source or nodes[-1] != player.target:
                raise ValueError(
                    f"player {player.index}: path endpoints {nodes[:1]}..{nodes[-1:]} "
                    f"do not match terminals ({player.source!r}, {player.target!r})"
                )
            edges = _path_nodes_to_edges(nodes)
            for u, v in edges:
                if not game.graph.has_edge(u, v):
                    raise ValueError(f"path uses non-edge {(u, v)!r}")
            self.node_paths.append(nodes)
            self.edge_paths.append(edges)
            self.edge_sets.append(frozenset(edges))
            for e in edges:
                usage[e] = usage.get(e, 0) + 1
        self.usage: Dict[Edge, int] = usage

    # -- paper quantities ---------------------------------------------------

    def established_edges(self) -> List[Edge]:
        """Edges used by at least one player (the built network)."""
        return list(self.usage)

    def social_cost(self) -> float:
        """``wgt(T)``: total weight of established edges."""
        g = self.game.graph
        return sum(g.weight(u, v) for u, v in self.usage)

    def uses(self, player_index: int, edge: Edge) -> bool:
        """``n_a^i(T)`` as a boolean (precomputed frozenset: hot path)."""
        return edge in self.edge_sets[player_index]

    def player_cost(self, player_index: int, subsidies: Optional[Subsidies] = None) -> float:
        """``cost_i(T; b)`` — the player's fair share along her path."""
        g = self.game.graph
        total = 0.0
        for e in self.edge_paths[player_index]:
            w = g.weight(*e)
            b = subsidies.get(e, 0.0) if subsidies else 0.0
            total += max(0.0, w - b) / self.usage[e]
        return total

    def total_player_cost(self, subsidies: Optional[Subsidies] = None) -> float:
        """Sum of all player costs (= social cost minus used subsidies)."""
        return sum(self.player_cost(i, subsidies) for i in range(self.game.n_players))

    def with_player_path(self, player_index: int, nodes: Sequence[Node]) -> "State":
        """The state ``(T_{-i}, T'_i)`` where player i switches paths."""
        paths = list(self.node_paths)
        paths[player_index] = tuple(nodes)
        return State(self.game, paths)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, State) and self.node_paths == other.node_paths

    def __hash__(self) -> int:
        return hash(tuple(self.node_paths))


class NetworkDesignGame:
    """A network design game: graph + terminal pairs, fair cost sharing."""

    #: game-family name (see :mod:`repro.games.base`)
    family = "general"

    def __init__(self, graph: Graph, terminal_pairs: Sequence[Tuple[Node, Node]]):
        self.graph = graph
        self.players: List[Player] = []
        for i, (s, t) in enumerate(terminal_pairs):
            if s not in graph or t not in graph:
                raise ValueError(f"terminal pair {(s, t)!r} not in graph")
            if s == t:
                raise ValueError(f"player {i} has identical terminals {s!r}")
            self.players.append(Player(i, s, t))

    @property
    def n_players(self) -> int:
        return len(self.players)

    @property
    def cost_sharing(self):
        """The sharing rule (fair/Shapley for the base game)."""
        from repro.games.base import FairSharing

        return FairSharing()

    def state(self, node_paths: Sequence[Sequence[Node]]) -> State:
        """Validate and wrap a strategy profile."""
        return State(self, node_paths)

    def default_state(self) -> State:
        """The family's natural target state (all shortest paths here)."""
        return self.shortest_path_state()

    def shortest_path_state(self) -> State:
        """The profile where every player takes her weight-shortest path.

        A natural (generally non-equilibrium) starting point for dynamics.
        """
        return self.state(shortest_node_paths(self.graph, self.players))
