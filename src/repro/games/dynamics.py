"""Best-response dynamics.

Network design games are potential games (Rosenthal), so sequential
best-response moves strictly decrease the potential and must terminate at a
pure Nash equilibrium.  This module implements the dynamics with three
schedulers and records the potential trace — the engine behind experiment E9
(the ``PoS <= H_n`` potential-descent argument of Anshelevich et al. that the
paper's introduction builds on).

The run executes on an :class:`~repro.games.engine.EngineProfile`: the graph
is interned once, usage counts are updated incrementally along the old/new
path of each move, and the Rosenthal potential is one vectorized dot product
per move — no intermediate ``State`` objects are built until the final
profile is materialized (and re-validated) for the result.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.games.broadcast import BroadcastGame
from repro.games.engine import BestResponseEngine, EngineProfile
from repro.games.game import State, Subsidies
from repro.utils.rng import ensure_rng
from repro.utils.tolerances import EQ_TOL, is_improvement


@dataclass
class BRDResult:
    """Outcome of a best-response-dynamics run."""

    final_state: State
    converged: bool
    n_moves: int
    n_rounds: int
    potential_trace: List[float] = field(default_factory=list)

    @property
    def final_social_cost(self) -> float:
        return self.final_state.social_cost()


def best_response_dynamics(
    state: State,
    subsidies: Optional[Subsidies] = None,
    scheduler: str = "round_robin",
    max_rounds: int = 1000,
    tol: float = EQ_TOL,
    seed: "int | np.random.Generator | None" = None,
) -> BRDResult:
    """Run sequential best-response dynamics from ``state``.

    Parameters
    ----------
    scheduler:
        ``"round_robin"`` — fixed player order each round;
        ``"random"`` — random player order each round;
        ``"max_gain"`` — each step moves the player with the largest gain
        (slower: evaluates every player per move).
    max_rounds:
        A *round* is a full pass (or, for ``max_gain``, ``n`` single moves).

    Returns the final state; ``converged`` is True when a full round passed
    with no improving move.
    """
    if scheduler not in ("round_robin", "random", "max_gain"):
        raise ValueError(f"unknown scheduler {scheduler!r}")
    rng = ensure_rng(seed)
    game = state.game
    n = game.n_players

    engine = BestResponseEngine.for_graph(game.graph)
    wb = engine.net_weights(engine.subsidy_vector(subsidies))
    profile = EngineProfile(engine, state, wb)
    trace = [profile.potential()]
    n_moves = 0

    for round_idx in range(1, max_rounds + 1):
        moved = False
        if scheduler == "max_gain":
            for _ in range(n):
                recs = [profile.best_response(i, bounded=True) for i in range(n)]
                best = max(recs, key=lambda r: r.current_cost - r.deviation_cost)
                if not is_improvement(best.deviation_cost, best.current_cost, tol):
                    break
                profile.apply(best.position, best.node_ids, best.edge_ids)
                trace.append(profile.potential())
                n_moves += 1
                moved = True
        else:
            order = list(range(n))
            if scheduler == "random":
                rng.shuffle(order)
            for i in order:
                rec = profile.best_response(i, bounded=True)
                if is_improvement(rec.deviation_cost, rec.current_cost, tol):
                    profile.apply(i, rec.node_ids, rec.edge_ids)
                    trace.append(profile.potential())
                    n_moves += 1
                    moved = True
        if not moved:
            return BRDResult(profile.to_state(), True, n_moves, round_idx, trace)
    return BRDResult(profile.to_state(), False, n_moves, max_rounds, trace)


def equilibrium_from_optimum(
    game: BroadcastGame,
    subsidies: Optional[Subsidies] = None,
    scheduler: str = "round_robin",
    max_rounds: int = 1000,
    seed: "int | np.random.Generator | None" = None,
) -> BRDResult:
    """Run BRD starting from the optimal design (the MST).

    This is exactly the Anshelevich et al. construction the paper cites: the
    resulting equilibrium has potential below ``Phi(OPT) <= H_n * wgt(OPT)``,
    hence social cost at most ``H_n`` times optimal.
    """
    nd_game = game.to_network_design_game()
    mst = game.mst_state()
    start = nd_game.state(game.tree_state_to_paths(mst))
    return best_response_dynamics(
        start,
        subsidies=subsidies,
        scheduler=scheduler,
        max_rounds=max_rounds,
        seed=seed,
    )
