"""Exact minimum Steiner trees via the Dreyfus-Wagner dynamic program.

Multicast games (the paper's Section 6 direction) have optimal designs
that are Steiner trees over the terminal set, the way broadcast games have
MSTs.  Dreyfus-Wagner runs in ``O(3^k n + 2^k n^2 + n^3)`` for ``k``
terminals — exact and fast for the experiment-sized instances here.
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, List, Sequence, Set, Tuple

from repro.graphs.graph import Edge, Graph, Node, canonical_edge
from repro.graphs.shortest_paths import reconstruct_path


def steiner_tree(graph: Graph, terminals: Sequence[Node]) -> Tuple[List[Edge], float]:
    """Exact minimum Steiner tree connecting ``terminals``.

    Returns ``(edges, weight)``.  Handles up to ~12 terminals comfortably.
    """
    terms = list(dict.fromkeys(terminals))
    for t in terms:
        if t not in graph:
            raise KeyError(f"terminal {t!r} not in graph")
    if len(terms) <= 1:
        return [], 0.0
    # All-pairs shortest paths from each node: one indexed Dijkstra per
    # node over the CSR snapshot, re-keyed to labels for the DP below.
    from repro.graphs.core import dijkstra_indexed

    ig = graph.to_indexed()
    nodes = ig.labels
    INF0 = float("inf")
    sp_dist: Dict[Node, Dict[Node, float]] = {}
    sp_parent: Dict[Node, Dict[Node, Node]] = {}
    for v in nodes:
        dist_arr, pred_arr, _ = dijkstra_indexed(ig, ig.id_of(v))
        sp_dist[v] = {nodes[i]: d for i, d in enumerate(dist_arr) if d != INF0}
        sp_parent[v] = {nodes[i]: nodes[p] for i, p in enumerate(pred_arr) if p >= 0}

    if len(terms) == 2:
        a, b = terms
        path = reconstruct_path(sp_parent[a], a, b)
        return path, sp_dist[a][b]

    base, rest = terms[0], terms[1:]
    k = len(rest)
    full = (1 << k) - 1

    INF = float("inf")
    # dp[mask][v] = weight of a min tree spanning {rest[i] : i in mask} + {v}.
    dp: List[Dict[Node, float]] = [dict() for _ in range(full + 1)]
    choice: List[Dict[Node, Tuple]] = [dict() for _ in range(full + 1)]
    for i, t in enumerate(rest):
        m = 1 << i
        for v in nodes:
            dp[m][v] = sp_dist[t].get(v, INF)
            choice[m][v] = ("leaf", t)

    masks = sorted(range(1, full + 1), key=lambda m: bin(m).count("1"))
    for mask in masks:
        if bin(mask).count("1") < 2:
            continue
        merged: Dict[Node, float] = {}
        merged_choice: Dict[Node, Tuple] = {}
        sub = (mask - 1) & mask
        seen: Set[int] = set()
        while sub > 0:
            other = mask ^ sub
            if other and sub not in seen and other not in seen:
                seen.add(sub)
                seen.add(other)
                for v in nodes:
                    cost = dp[sub].get(v, INF) + dp[other].get(v, INF)
                    if cost < merged.get(v, INF):
                        merged[v] = cost
                        merged_choice[v] = ("merge", sub, other)
            sub = (sub - 1) & mask
        # Relax through shortest paths: dp[mask][v] = min_u merged[u] + d(u,v).
        best: Dict[Node, float] = dict(merged)
        best_choice: Dict[Node, Tuple] = dict(merged_choice)
        for u in nodes:
            mu = merged.get(u, INF)
            if mu == INF:
                continue
            for v, duv in sp_dist[u].items():
                cost = mu + duv
                if cost < best.get(v, INF):
                    best[v] = cost
                    best_choice[v] = ("walk", u)
        dp[mask] = best
        choice[mask].update(best_choice)
        # Preserve merge provenance for nodes whose best came from a merge.
        for v, ch in merged_choice.items():
            if best[v] == merged[v]:
                choice[mask][v] = ch

    # Backtrack into an edge set.
    edges: Set[Edge] = set()

    def emit_path(u: Node, v: Node) -> None:
        for e in reconstruct_path(sp_parent[u], u, v):
            edges.add(e)

    def backtrack(mask: int, v: Node) -> None:
        ch = choice[mask].get(v)
        if ch is None:
            return
        kind = ch[0]
        if kind == "leaf":
            emit_path(ch[1], v)
        elif kind == "walk":
            u = ch[1]
            emit_path(u, v)
            backtrack(mask, u)
        else:
            _, sub, other = ch
            backtrack(sub, v)
            backtrack(other, v)

    backtrack(full, base)
    # The DP weight counts shared shortest-path edges once per use; the
    # extracted edge *set* can only be lighter.  Prune to a spanning
    # structure: take an MST of the induced subgraph restricted to the
    # component containing the terminals, then trim non-terminal leaves.
    pruned = _prune_to_terminals(graph, edges, set(terms))
    weight = graph.subset_weight(pruned)
    assert weight <= dp[full][base] + 1e-9 * max(1.0, abs(dp[full][base]))
    return sorted(pruned), weight


def _prune_to_terminals(graph: Graph, edges: Set[Edge], terminals: Set[Node]) -> Set[Edge]:
    """Drop cycles (via a Kruskal pass) and strip non-terminal leaves."""
    from repro.graphs.unionfind import UnionFind

    sub = Graph()
    for t in terminals:
        sub.add_node(t)
    for u, v in edges:
        sub.add_edge(u, v, graph.weight(u, v))
    # Keep only the component containing the terminals.
    comps = sub.connected_components()
    comp = next(c for c in comps if terminals <= c)
    tree_edges = set()
    uf = UnionFind(comp)
    for u, v in sorted(edges, key=lambda e: graph.weight(*e)):
        if u in comp and v in comp and uf.union(u, v):
            tree_edges.add(canonical_edge(u, v))
    # Trim non-terminal leaves.
    changed = True
    while changed:
        changed = False
        degree: Dict[Node, int] = {}
        for u, v in tree_edges:
            degree[u] = degree.get(u, 0) + 1
            degree[v] = degree.get(v, 0) + 1
        for e in list(tree_edges):
            u, v = e
            if (degree[u] == 1 and u not in terminals) or (
                degree[v] == 1 and v not in terminals
            ):
                tree_edges.remove(e)
                changed = True
    return tree_edges


def steiner_tree_brute_force(
    graph: Graph, terminals: Sequence[Node]
) -> Tuple[List[Edge], float]:
    """Exponential reference: try every subset of non-terminal nodes as
    Steiner points and span each candidate set with an MST.  Used only to
    cross-check Dreyfus-Wagner in tests."""
    from repro.graphs.mst import kruskal_mst

    terms = set(terminals)
    others = [u for u in graph.nodes if u not in terms]
    best_edges: List[Edge] = []
    best_w = float("inf")
    for r in range(len(others) + 1):
        for extra in combinations(others, r):
            keep = terms | set(extra)
            sub = Graph()
            for u in keep:
                sub.add_node(u)
            for u, v, w in graph.edges():
                if u in keep and v in keep:
                    sub.add_edge(u, v, w)
            if not sub.is_connected():
                continue
            try:
                tree = kruskal_mst(sub)
            except ValueError:
                continue
            pruned = _prune_to_terminals(graph, set(tree), terms)
            w = graph.subset_weight(pruned)
            if w < best_w:
                best_w = w
                best_edges = sorted(pruned)
    return best_edges, best_w
