"""Solver registry: one declarative catalogue of every subsidy solver.

Each solver is described by a :class:`SolverSpec` — its canonical name, the
problem it solves (SNE, all-or-nothing SNE, or SND), capability flags the
facade uses to coerce inputs, and the adapter callable that produces a
canonical :class:`repro.api.report.SolveReport`.

Solvers register themselves with the :func:`register_solver` decorator;
:mod:`repro.api.adapters` registers the eleven built-in solvers on import.
Lookup is by canonical name or alias, and unknown names raise
:class:`UnknownSolverError` with close-match suggestions.
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple


class UnknownSolverError(KeyError):
    """Raised when a solver name is not in the registry."""

    def __init__(self, name: str, known: List[str]):
        self.name = name
        self.known = known
        suggestions = difflib.get_close_matches(name, known, n=3, cutoff=0.4)
        msg = f"unknown solver {name!r}; known solvers: {', '.join(known)}"
        if suggestions:
            msg += f" (did you mean {' or '.join(repr(s) for s in suggestions)}?)"
        super().__init__(msg)

    def __str__(self) -> str:  # KeyError quotes its arg; keep the message readable
        return self.args[0]


@dataclass(frozen=True)
class SolverSpec:
    """Declarative description of one registered solver."""

    #: canonical registry name, e.g. ``"sne-lp3"``
    name: str
    #: adapter ``(instance, **opts) -> SolveReport``
    fn: Callable[..., object]
    #: problem family: ``"sne"``, ``"aon-sne"`` or ``"snd"``
    problem: str
    #: one-line human description (shown by ``repro-experiments solvers``)
    description: str
    #: only defined on broadcast games (vs. general network design games)
    broadcast_only: bool = True
    #: needs an explicit spanning-tree target state (vs. taking a whole game)
    requires_tree_state: bool = False
    #: proves optimality of the returned subsidies (vs. heuristic/upper bound)
    exact: bool = True
    #: alternative lookup names
    aliases: Tuple[str, ...] = field(default=())
    #: algorithm version; part of the result-cache key, so bump it whenever
    #: the solver's output for a fixed instance can change
    version: str = "1"


_REGISTRY: Dict[str, SolverSpec] = {}
_ALIASES: Dict[str, str] = {}

PROBLEMS = ("sne", "aon-sne", "snd")


def register_solver(
    name: str,
    *,
    problem: str,
    description: str,
    broadcast_only: bool = True,
    requires_tree_state: bool = False,
    exact: bool = True,
    aliases: Tuple[str, ...] = (),
    version: str = "1",
) -> Callable[[Callable[..., object]], Callable[..., object]]:
    """Decorator registering an adapter function under ``name``.

    The decorated function keeps working as a plain callable; registration
    only records it in the catalogue.  Re-registering a taken name (or
    alias) raises ``ValueError`` — names are a public API surface.

    ``version`` feeds the :mod:`repro.runtime` result cache: cached reports
    are keyed by (instance, solver name, ``version``, options), so bumping
    it is how a solver declares "my outputs changed" and invalidates every
    previously cached cell.
    """
    if problem not in PROBLEMS:
        raise ValueError(f"problem must be one of {PROBLEMS}, got {problem!r}")

    def decorator(fn: Callable[..., object]) -> Callable[..., object]:
        for key in (name, *aliases):
            if key in _REGISTRY or key in _ALIASES:
                raise ValueError(f"solver name {key!r} is already registered")
        spec = SolverSpec(
            name=name,
            fn=fn,
            problem=problem,
            description=description,
            broadcast_only=broadcast_only,
            requires_tree_state=requires_tree_state,
            exact=exact,
            aliases=tuple(aliases),
            version=version,
        )
        _REGISTRY[name] = spec
        for alias in aliases:
            _ALIASES[alias] = name
        return fn

    return decorator


def get_solver(name: str) -> SolverSpec:
    """Look up a solver by canonical name or alias."""
    if not isinstance(name, str):
        raise TypeError(f"solver name must be a string, got {type(name).__name__}")
    key = _ALIASES.get(name, name)
    try:
        return _REGISTRY[key]
    except KeyError:
        raise UnknownSolverError(name, solver_names()) from None


def list_solvers(problem: Optional[str] = None) -> List[SolverSpec]:
    """All registered solvers (optionally filtered by problem family)."""
    specs = sorted(_REGISTRY.values(), key=lambda s: (s.problem, s.name))
    if problem is not None:
        specs = [s for s in specs if s.problem == problem]
    return specs


def solver_names(include_aliases: bool = False) -> List[str]:
    """Canonical names of all registered solvers."""
    names = sorted(_REGISTRY)
    if include_aliases:
        names += sorted(_ALIASES)
    return names
