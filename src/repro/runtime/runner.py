"""The sweep runner: cache-aware parallel execution of expanded jobs.

:class:`SweepRunner` takes the flat job list produced by
:meth:`repro.runtime.spec.SweepSpec.expand` and drives it to completion:

1. **cache pass** — every job's content key is looked up in the
   :class:`~repro.runtime.cache.ResultCache`; hits are finished before any
   process spawns;
2. **execute pass** — misses run through
   :func:`repro.runtime.workers.run_solve_job`, inline for ``jobs <= 1``
   or on a ``ProcessPoolExecutor`` otherwise (fork start method where the
   platform offers it, so workers inherit the warm interpreter);
3. **store pass** — each successful outcome is written to the cache *as it
   completes*, which is what makes interrupted sweeps resumable.

Failures never abort the sweep: a job that raises or times out becomes a
``"failed"`` / ``"timeout"`` outcome and the remaining cells keep going.
Progress is observable live via the ``progress`` callback (the CLI renders
it to stderr).

Determinism: expansion is done before the runner sees anything, the same
worker function runs in every mode, and :meth:`SweepResult.to_json` strips
wall-clock timings — so the JSON result of a sweep is byte-identical
across ``--jobs 1``, ``--jobs N``, and warm-cache reruns.
"""

from __future__ import annotations

import json
import multiprocessing
import time
from concurrent.futures import FIRST_COMPLETED, Executor, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    IO,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.runtime.cache import AnyCache, coerce_cache, solve_job_key
from repro.runtime.spec import SweepJob, jobs_from_instances
from repro.runtime.workers import run_solve_job
from repro.utils.hashing import UnhashablePayloadError

JSONDict = Dict[str, Any]
ProgressFn = Callable[["JobOutcome", int, int], None]

#: outcome statuses a job can end in
STATUSES = ("ok", "failed", "timeout")

#: instance JSON kind -> game-family name (for sweep result records)
_KIND_FAMILY = {
    "broadcast-game": "broadcast",
    "multicast-game": "multicast",
    "network-design-game": "general",
    "weighted-game": "weighted",
    "directed-game": "directed",
}


def _pool(max_workers: int) -> ProcessPoolExecutor:
    """A process pool preferring the fork start method.

    Forked workers inherit the parent's already-imported numpy/scipy, so
    per-worker startup is milliseconds instead of a full interpreter boot;
    on platforms without fork (Windows) the default method is used.
    """
    methods = multiprocessing.get_all_start_methods()
    ctx = multiprocessing.get_context("fork" if "fork" in methods else None)
    return ProcessPoolExecutor(max_workers=max_workers, mp_context=ctx)


def store_solve_entry(
    cache: AnyCache,
    key: str,
    solver: str,
    report: Optional[JSONDict],
    elapsed: float,
) -> None:
    """Write one successful solve outcome to the result cache.

    The entry shape is shared by every producer — :class:`SweepRunner`,
    the distributed coordinator and remote ``sweep-worker`` processes —
    which is what lets any number of hosts write the same
    content-addressed cell concurrently: entries for a key are identical
    up to timing fields, so last-writer-wins is harmless.
    """
    try:
        cache.put(
            key,
            {
                "kind": "solve-entry",
                "key": key,
                "status": "ok",
                "solver": solver,
                "report": report,
                "elapsed_seconds": elapsed,
                "created_at": time.time(),
            },
        )
    except OSError:
        pass  # unwritable cache degrades to uncached, not a crash


def sweep_job_key(job: SweepJob) -> Optional[str]:
    """The content-address of one sweep cell, or ``None`` when uncacheable.

    Validates the solver name against the registry as a side effect
    (raising :class:`~repro.api.registry.UnknownSolverError` up front,
    before any work is scheduled).
    """
    from repro.api.registry import get_solver

    spec = get_solver(job.solver)
    try:
        return solve_job_key(job.instance, spec.name, spec.version, job.opts)
    except UnhashablePayloadError:
        return None  # runnable, just not cacheable


#: pool respawns tolerated per execute_payloads call before giving up
_MAX_POOL_RESPAWNS = 5

#: times one job may be implicated in a pool death before it is failed
_MAX_JOB_RETRIES = 2


def _abort_pool(
    pool: ProcessPoolExecutor,
    pending: Mapping[Any, int],
    salvage: Optional[Callable[[int, JSONDict], None]],
) -> None:
    """Hard-stop a pool mid-sweep without losing finished work.

    Three steps, in order: cancel everything still queued so no new job
    starts; hand results that workers *finished* but the consumer never
    consumed to ``salvage`` (the runner flushes them to the result cache);
    terminate the worker processes so the executor's exit join returns
    immediately.  A Ctrl-C therefore leaves neither orphaned worker
    processes nor a shutdown hang waiting on half-done solves — and every
    completed cell survives on disk for the resumed sweep.
    """
    # Snapshot the workers BEFORE shutdown(): the executor drops its
    # _processes reference during shutdown even with wait=False.
    processes = list((getattr(pool, "_processes", None) or {}).values())
    pool.shutdown(wait=False, cancel_futures=True)
    if salvage is not None:
        for future, i in pending.items():
            if future.done() and not future.cancelled():
                try:
                    salvage(i, future.result())
                except Exception:  # noqa: BLE001 - salvage is best-effort
                    pass
    # ProcessPoolExecutor has no public "abandon running jobs"; killing the
    # (terminate-safe, side-effect-free) workers is the supported escape
    # hatch for interrupt handling.
    for process in processes:
        process.terminate()


def execute_payloads(
    payloads: Sequence[JSONDict],
    worker: Callable[[JSONDict], JSONDict],
    jobs: int = 1,
    salvage: Optional[Callable[[int, JSONDict], None]] = None,
) -> Iterator[Tuple[int, JSONDict]]:
    """Run ``worker(payload)`` for every payload, yielding ``(index, outcome)``.

    ``jobs <= 1`` runs inline (same code path, no processes); otherwise a
    process pool executes them and outcomes are yielded as they complete —
    out of order, which is why the index travels with the outcome.

    A worker dying (segfault, OOM kill) breaks the whole pool, failing
    every in-flight future without telling us which job was the culprit —
    so all implicated jobs are retried on a fresh pool, up to
    ``_MAX_JOB_RETRIES`` implications per job and ``_MAX_POOL_RESPAWNS``
    respawns per call.  The repeatedly implicated culprit ends up
    ``"failed"`` while healthy cells still complete: one bad cell cannot
    take the whole sweep down with it.

    On interruption — ``KeyboardInterrupt`` while waiting, an exception in
    the consumer, or an explicit ``gen.close()`` — the pool is torn down
    hard (queued jobs cancelled, workers terminated) and any outcomes that
    finished without being yielded are passed to ``salvage(index, outcome)``
    so the caller can still persist them.
    """
    if jobs <= 1 or len(payloads) <= 1:
        for i, payload in enumerate(payloads):
            yield i, worker(payload)
        return

    queued: List[int] = list(range(len(payloads)))
    retries: Dict[int, int] = {}
    respawns = 0
    while queued:
        implicated: Dict[int, str] = {}
        pending: Dict[Any, int] = {}
        with _pool(min(jobs, len(queued))) as pool:
            try:
                for i in queued:
                    pending[pool.submit(worker, payloads[i])] = i
                queued = []
                while pending:
                    done, _ = wait(list(pending), return_when=FIRST_COMPLETED)
                    for future in done:
                        i = pending.pop(future)
                        try:
                            yield i, future.result()
                        except Exception as exc:  # noqa: BLE001 - pool breakage
                            implicated[i] = f"{type(exc).__name__}: {exc}"
                    if implicated:
                        # The pool is broken; everything still pending will
                        # fail the same way the moment we wait on it.
                        implicated.update(
                            (i, "worker pool died") for i in pending.values()
                        )
                        break
            except BaseException:
                # Interrupt / consumer error / generator close: salvage
                # finished-but-unseen outcomes, then stop the pool dead so
                # the ``with`` exit does not block on running solves.
                _abort_pool(pool, pending, salvage)
                raise
        if not implicated:
            continue
        respawns += 1
        exhausted = respawns > _MAX_POOL_RESPAWNS
        for i in sorted(implicated):
            retries[i] = retries.get(i, 0) + 1
            if exhausted or retries[i] >= _MAX_JOB_RETRIES:
                yield i, {
                    "status": "failed",
                    "error": f"worker process died ({implicated[i]})",
                    "elapsed_seconds": 0.0,
                }
            else:
                queued.append(i)


@dataclass
class JobOutcome:
    """Terminal state of one sweep job."""

    job: SweepJob
    #: ``"ok"``, ``"failed"`` or ``"timeout"``
    status: str
    #: the result was served from the cache (status is necessarily ``"ok"``)
    cached: bool = False
    #: content-address of the cell; ``None`` when the options are uncacheable
    key: Optional[str] = None
    #: full report JSON (``report_to_json`` shape) when ``status == "ok"``
    report: Optional[JSONDict] = None
    error: Optional[str] = None
    #: solve time for fresh runs; the *original* solve time for cache hits
    elapsed_seconds: float = 0.0
    #: False when a requested timeout could not be armed on this platform
    #: (no SIGALRM / non-main thread); deliberately absent from to_json()
    timeout_enforced: bool = True

    @property
    def ok(self) -> bool:
        return self.status == "ok"


@dataclass
class SweepResult:
    """Every outcome of one sweep, in job order."""

    outcomes: List[JobOutcome]
    #: end-to-end runner time (cache pass + execution), in seconds
    wall_seconds: float = 0.0
    cache_root: Optional[str] = None

    def __iter__(self) -> Iterator[JobOutcome]:
        return iter(self.outcomes)

    def __len__(self) -> int:
        return len(self.outcomes)

    def count(self, status: str) -> int:
        return sum(1 for o in self.outcomes if o.status == status)

    @property
    def cache_hits(self) -> int:
        return sum(1 for o in self.outcomes if o.cached)

    @property
    def ok(self) -> bool:
        """True when every job finished with an ``"ok"`` outcome."""
        return all(o.ok for o in self.outcomes)

    def to_json(self) -> JSONDict:
        """Deterministic plain-data form of the sweep's *results*.

        Wall-clock times and cache provenance are deliberately excluded:
        this payload is byte-identical across ``--jobs 1`` / ``--jobs N``
        and cold / warm cache runs of the same sweep (timings live in the
        text summary instead).

        This materializes every job record at once; large sweeps should
        prefer :meth:`write_json`, which streams the identical bytes one
        record at a time.
        """
        return {
            "kind": "sweep-result",
            "schema": SWEEP_RESULT_SCHEMA,
            "jobs": [job_record(o) for o in self.outcomes],
        }

    def write_json(self, sink: Union[str, Path, IO[str]]) -> None:
        """Stream the :meth:`to_json` payload to ``sink``, one job at a time.

        Byte-identical to ``json.dump(self.to_json(), fh, indent=2,
        sort_keys=True)`` plus a trailing newline — the ``--json-out``
        contract — but memory stays one record, not the whole report list.
        ``sink`` is a path or an open text file.
        """
        dumped = (dump_job_record(job_record(o)) for o in self.outcomes)
        if hasattr(sink, "write"):
            write_sweep_json(sink, dumped)  # type: ignore[arg-type]
        else:
            with open(sink, "w") as fh:
                write_sweep_json(fh, dumped)

    def summary_text(self) -> str:
        """The human sweep summary (counts, timings, cache hits)."""
        n = len(self.outcomes)
        parts = [f"{n} job{'s' if n != 1 else ''}: {self.count('ok')} ok"]
        if self.cache_hits:
            parts[-1] += f" ({self.cache_hits} cached)"
        for status in ("failed", "timeout"):
            if self.count(status):
                parts.append(f"{self.count(status)} {status}")
        solve_time = sum(o.elapsed_seconds for o in self.outcomes if not o.cached)
        parts.append(f"wall {self.wall_seconds:.2f}s (solve {solve_time:.2f}s)")
        return " · ".join(parts)


#: ``sweep-result`` payload schema (bump when the record shape changes)
SWEEP_RESULT_SCHEMA = 3


def job_record(o: JobOutcome) -> JSONDict:
    """The deterministic per-job record of the ``sweep-result`` payload.

    Shared by :meth:`SweepResult.to_json`, the streaming
    :meth:`SweepResult.write_json` writer and the distributed
    coordinator's incremental spool — one definition is what makes the
    single-host and N-worker ``--json-out`` files byte-identical.
    """
    return {
        "label": o.job.label,
        "solver": o.job.solver,
        "family": _KIND_FAMILY.get(o.job.instance.get("kind")),
        "key": o.key,
        "status": o.status,
        # schema 3: engine/LP work counters lifted out of the
        # report metadata (None for solvers that don't emit them)
        "profile": _profile_of(o.report),
        "report": _strip_wall_clock(o.report),
        "error": o.error,
    }


def dump_job_record(record: JSONDict) -> str:
    """One record serialized exactly as the full canonical dump would."""
    return json.dumps(record, indent=2, sort_keys=True)


def write_sweep_json(fh: IO[str], dumped_records: Iterable[str]) -> None:
    """Emit a ``sweep-result`` JSON document from pre-dumped job records.

    Pastes each :func:`dump_job_record` string into the enclosing document
    at the right indentation, producing bytes identical to
    ``json.dump({"kind": ..., "schema": ..., "jobs": [...]}, fh, indent=2,
    sort_keys=True)`` followed by a newline — without ever holding more
    than one record in memory.  (Top-level keys are emitted in sorted
    order by hand: ``jobs`` < ``kind`` < ``schema``.)
    """
    fh.write('{\n  "jobs": [')
    n = 0
    for dumped in dumped_records:
        if n:
            fh.write(",")
        fh.write("\n    " + dumped.replace("\n", "\n    "))
        n += 1
    fh.write("\n  ]," if n else "],")
    fh.write(f'\n  "kind": "sweep-result",\n  "schema": {SWEEP_RESULT_SCHEMA}\n}}\n')


def _strip_wall_clock(report: Optional[JSONDict]) -> Optional[JSONDict]:
    """Drop the wall clock and the (lifted) profile from a job's report copy."""
    if report is None:
        return None
    out = {k: v for k, v in report.items() if k != "wall_clock_seconds"}
    metadata = out.get("metadata")
    if isinstance(metadata, dict) and "profile" in metadata:
        out["metadata"] = {k: v for k, v in metadata.items() if k != "profile"}
    return out


def _profile_of(report: Optional[JSONDict]) -> Optional[JSONDict]:
    """The solver's oracle/LP work counters, when the report carries them.

    The LP-backed SNE solvers record ``metadata["profile"]`` (see
    :class:`repro.games.engine.OracleStats`): dijkstra_calls,
    players_batched, cut_rounds and warm_start_hits for that solve.
    Deterministic for a fixed instance/solver/version, so lifting it into
    the per-job records keeps the sweep JSON byte-identical across job
    counts and cache states.
    """
    if report is None:
        return None
    metadata = report.get("metadata")
    if not isinstance(metadata, dict):
        return None
    return metadata.get("profile")


class SweepRunner:
    """Executes expanded sweep jobs with caching, parallelism and timeouts.

    Parameters
    ----------
    jobs:
        Worker processes; ``1`` (default) runs inline in this process.
    cache:
        A :class:`ResultCache`, ``None`` for the default cache directory,
        or ``False`` / a :class:`NullCache` to disable caching entirely.
    timeout:
        Per-job wall-clock budget in seconds (enforced inside workers via
        ``SIGALRM`` where the platform supports it).
    progress:
        ``progress(outcome, done, total)`` fired after every job —
        cache hits included — in completion order.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache: Union[AnyCache, bool, None] = None,
        timeout: Optional[float] = None,
        progress: Optional[ProgressFn] = None,
    ):
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        self.cache: AnyCache = coerce_cache(cache)
        self.timeout = timeout
        self.progress = progress

    # -- key computation ----------------------------------------------------

    def _key_of(self, job: SweepJob) -> Optional[str]:
        return sweep_job_key(job)

    def _store(
        self, job: SweepJob, key: str, report: Optional[JSONDict], elapsed: float
    ) -> None:
        store_solve_entry(self.cache, key, job.solver, report, elapsed)

    # -- execution ----------------------------------------------------------

    def run(self, sweep_jobs: Sequence[SweepJob]) -> SweepResult:
        """Drive every job to a terminal outcome (never raises per-job)."""
        start = time.perf_counter()
        total = len(sweep_jobs)
        done = 0
        outcomes: Dict[int, JobOutcome] = {}
        misses: List[SweepJob] = []
        keys: Dict[int, Optional[str]] = {}

        def finish(outcome: JobOutcome) -> None:
            nonlocal done
            outcomes[outcome.job.index] = outcome
            done += 1
            if self.progress is not None:
                self.progress(outcome, done, total)

        # 1. cache pass (also validates every solver name up front)
        for job in sweep_jobs:
            key = keys[job.index] = self._key_of(job)
            entry = self.cache.get(key) if key else None
            if entry is not None and entry.get("status") == "ok":
                finish(
                    JobOutcome(
                        job=job,
                        status="ok",
                        cached=True,
                        key=key,
                        report=entry.get("report"),
                        elapsed_seconds=entry.get("elapsed_seconds", 0.0),
                    )
                )
            else:
                misses.append(job)

        # 2 + 3. execute misses, caching each success as it completes
        payloads = [
            {
                "instance": job.instance,
                "solver": job.solver,
                "opts": job.opts,
                "timeout": self.timeout,
            }
            for job in misses
        ]
        def salvage(i: int, raw: JSONDict) -> None:
            # Interrupt path: a worker finished this job but the consumer
            # loop never saw it — flush it to the cache anyway, so the
            # resumed sweep starts from everything that actually completed.
            job = misses[i]
            key = keys[job.index]
            if raw.get("status") == "ok" and key is not None:
                self._store(job, key, raw.get("report"), raw.get("elapsed_seconds", 0.0))

        producer = execute_payloads(
            payloads, run_solve_job, jobs=self.jobs, salvage=salvage
        )
        try:
            for i, raw in producer:
                job = misses[i]
                key = keys[job.index]
                outcome = JobOutcome(
                    job=job,
                    status=raw["status"],
                    key=key,
                    report=raw.get("report"),
                    error=raw.get("error"),
                    elapsed_seconds=raw.get("elapsed_seconds", 0.0),
                    timeout_enforced=raw.get("timeout_enforced", True),
                )
                if outcome.ok and key is not None:
                    self._store(job, key, outcome.report, outcome.elapsed_seconds)
                finish(outcome)
        finally:
            # A KeyboardInterrupt in *this* loop's body (cache write,
            # progress callback) must still tear the pool down; closing the
            # generator raises GeneratorExit at its yield point, which runs
            # the same salvage-and-terminate cleanup as an interrupt inside.
            producer.close()

        ordered = [outcomes[i] for i in sorted(outcomes)]
        root = getattr(self.cache, "root", None)
        return SweepResult(
            outcomes=ordered,
            wall_seconds=time.perf_counter() - start,
            cache_root=str(root) if root else None,
        )


# ---------------------------------------------------------------------------
# solve_many's engine
# ---------------------------------------------------------------------------


def run_solve_batch(
    instances: Sequence[Any],
    solvers: Sequence[str],
    opts: Optional[Mapping[str, Any]] = None,
    workers: Optional[int] = None,
    executor: str = "thread",
    cache: Union[AnyCache, bool, None] = False,
    timeout: Optional[float] = None,
):
    """The engine behind :func:`repro.api.solve_many`.

    ``executor="thread"`` keeps instances as live objects (states allowed,
    nothing serialized, no caching) and fans out over a thread pool —
    cheap, and fine for the many solvers that release little of the GIL
    only briefly.  ``executor="process"`` serializes every instance
    (games only), runs through :class:`SweepRunner` — gaining true
    multi-core execution, per-job timeouts and the result cache — and
    rehydrates the canonical reports.

    Returns the ``grid[i][j]`` = solver ``j`` on instance ``i`` nested-list
    shape in both modes.
    """
    from repro.api.facade import solve
    from repro.api.registry import get_solver

    names = list(solvers)
    for name in names:
        get_solver(name)  # fail fast before launching any work
    kwargs = dict(opts or {})
    n_workers = workers or 1

    if executor == "thread":
        if cache is not False or timeout is not None:
            # Silently ignoring these would look like they were active.
            raise ValueError(
                "cache= and timeout= require executor='process' "
                "(the thread executor shares live objects and cannot "
                "content-address or bound jobs)"
            )
        from concurrent.futures import ThreadPoolExecutor

        jobs = [
            (i, j, instance, name)
            for i, instance in enumerate(instances)
            for j, name in enumerate(names)
        ]
        grid: List[List[Any]] = [[None] * len(names) for _ in range(len(instances))]
        if n_workers > 1 and len(jobs) > 1:
            with ThreadPoolExecutor(max_workers=n_workers) as pool:
                futures = {
                    pool.submit(solve, instance, name, **kwargs): (i, j)
                    for i, j, instance, name in jobs
                }
                for future, (i, j) in futures.items():
                    grid[i][j] = future.result()
        else:
            for i, j, instance, name in jobs:
                grid[i][j] = solve(instance, name, **kwargs)
        return grid

    if executor != "process":
        raise ValueError(f"executor must be 'thread' or 'process', got {executor!r}")

    from repro.api import serialize

    payloads = []
    for instance in instances:
        try:
            payloads.append(serialize.game_to_json(instance))
        except TypeError as exc:
            raise TypeError(
                "executor='process' needs serializable game instances "
                "(any repro.games family: broadcast/multicast/general/"
                "weighted/directed); pass games or use "
                f"executor='thread' — {exc}"
            ) from None
    sweep_jobs = jobs_from_instances(payloads, names, opts=kwargs)
    result = SweepRunner(
        jobs=n_workers, cache=cache, timeout=timeout
    ).run(sweep_jobs)
    bad = next((o for o in result if not o.ok), None)
    if bad is not None:
        raise RuntimeError(f"sweep job {bad.job.label!r} {bad.status}: {bad.error}")
    reports = [serialize.report_from_json(o.report) for o in result]
    k = len(names)
    return [reports[i * k : (i + 1) * k] for i in range(len(instances))]
