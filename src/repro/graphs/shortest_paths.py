"""Single-source shortest paths (Dijkstra) with pluggable edge costs.

The equilibrium checker prices edge ``a`` at ``(w_a - b_a) / (n_a + 1 - n_a^i)``
for the deviating player, so :func:`dijkstra` accepts a ``weight_fn`` override
instead of always reading the stored graph weight.
"""

from __future__ import annotations

import heapq
import math
from typing import Callable, Dict, List, Optional, Tuple

from repro.graphs.graph import Edge, Graph, Node, canonical_edge

WeightFn = Callable[[Node, Node], float]


def dijkstra(
    graph: Graph,
    source: Node,
    weight_fn: Optional[WeightFn] = None,
    target: Optional[Node] = None,
) -> Tuple[Dict[Node, float], Dict[Node, Node]]:
    """Dijkstra from ``source``; returns ``(dist, parent)`` maps.

    ``weight_fn(u, v)`` must be nonnegative; when omitted the stored graph
    weight is used.  When ``target`` is given the search stops as soon as the
    target is settled.

    Stored-weight queries run over the interned int-id CSR snapshot
    (:mod:`repro.graphs.core`); the hashable-keyed loop below remains for
    ``weight_fn`` overrides, whose costs may be exact types (Fractions) or
    defined only on the edges the search actually relaxes.
    """
    if source not in graph:
        raise KeyError(f"source node {source!r} not in graph")
    if weight_fn is None:
        return _dijkstra_stored(graph, source, target)
    # Distances start from integer 0 so exact numeric types survive: with a
    # Fraction-valued weight_fn, 0 + Fraction stays a Fraction, whereas a
    # float seed would silently degrade every distance to float.
    dist: Dict[Node, float] = {source: 0}
    parent: Dict[Node, Node] = {}
    settled: set = set()
    counter = 0
    heap: List[Tuple[float, int, Node]] = [(0, counter, source)]
    while heap:
        d, _, u = heapq.heappop(heap)
        if u in settled:
            continue
        settled.add(u)
        if u == target:
            break
        for v, stored_w in graph.adjacency(u).items():
            if v in settled:
                continue
            w = stored_w if weight_fn is None else weight_fn(u, v)
            if w < 0 or math.isnan(w):
                raise ValueError(f"negative/NaN edge cost on {(u, v)!r}: {w}")
            nd = d + w
            if nd < dist.get(v, math.inf):
                dist[v] = nd
                parent[v] = u
                counter += 1
                heapq.heappush(heap, (nd, counter, v))
    return dist, parent


def _dijkstra_stored(
    graph: Graph, source: Node, target: Optional[Node]
) -> Tuple[Dict[Node, float], Dict[Node, Node]]:
    """Stored-weight Dijkstra over the indexed core, re-keyed to labels."""
    from repro.graphs.core import dijkstra_indexed

    ig = graph.to_indexed()
    target_id = ig.id_of(target) if target is not None and target in graph else -1
    dist_arr, pred_arr, _ = dijkstra_indexed(ig, ig.id_of(source), target=target_id)
    labels = ig.labels
    inf = math.inf
    dist = {labels[i]: d for i, d in enumerate(dist_arr) if d != inf}
    parent = {labels[i]: labels[p] for i, p in enumerate(pred_arr) if p >= 0}
    return dist, parent


def reconstruct_path(parent: Dict[Node, Node], source: Node, target: Node) -> List[Edge]:
    """Edge list of the tree path source->target recorded in ``parent``."""
    if target == source:
        return []
    if target not in parent:
        raise ValueError(f"target {target!r} unreachable from {source!r}")
    path: List[Edge] = []
    v = target
    while v != source:
        u = parent[v]
        path.append(canonical_edge(u, v))
        v = u
    path.reverse()
    return path


def shortest_path(
    graph: Graph,
    source: Node,
    target: Node,
    weight_fn: Optional[WeightFn] = None,
) -> Tuple[float, List[Edge]]:
    """Length and edge list of a shortest source->target path."""
    dist, parent = dijkstra(graph, source, weight_fn=weight_fn, target=target)
    if target not in dist:
        raise ValueError(f"target {target!r} unreachable from {source!r}")
    return dist[target], reconstruct_path(parent, source, target)


def path_weight(graph: Graph, path: List[Edge], weight_fn: Optional[WeightFn] = None) -> float:
    """Total cost of an explicit edge list under the given pricing."""
    total = 0.0
    for u, v in path:
        total += graph.weight(u, v) if weight_fn is None else weight_fn(u, v)
    return total
