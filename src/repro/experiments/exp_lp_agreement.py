"""E1 — Theorem 1: the three SNE LP formulations agree.

For random broadcast games the optimal subsidy cost from LP (3), the
polynomial LP (2) and the cutting-plane LP (1) must coincide, and the
cutting-plane method should converge in a handful of rounds (the practical
face of the paper's separation-oracle argument).  All solvers run through
the :mod:`repro.api` registry.
"""

from __future__ import annotations

from repro.api import solve
from repro.experiments.records import ExperimentResult
from repro.games.broadcast import BroadcastGame
from repro.graphs.generators import random_tree_plus_chords
from repro.utils.timing import Timer


def run(seed: int = 0, sizes=(6, 10, 14, 18, 24)) -> ExperimentResult:
    rows = []
    max_gap = 0.0
    with Timer() as t:
        for i, n in enumerate(sizes):
            g = random_tree_plus_chords(n, n // 2, seed=seed + i, chord_factor=1.2)
            game = BroadcastGame(g, root=0)
            state = game.mst_state()
            r3 = solve(state, solver="sne-lp3")
            r2 = solve(state, solver="sne-poly")
            r1 = solve(state, solver="sne-cutting-plane")
            gap = max(
                abs(r3.budget_used - r2.budget_used),
                abs(r3.budget_used - r1.budget_used),
            )
            max_gap = max(max_gap, gap)
            rows.append(
                {
                    "n": n,
                    "lp3_cost": r3.budget_used,
                    "lp2_cost": r2.budget_used,
                    "lp1_cost": r1.budget_used,
                    "lp1_rounds": r1.metadata["rounds"],
                    "lp1_cuts": r1.metadata["cuts"],
                    "all_verified": r1.verified and r2.verified and r3.verified,
                }
            )
    result = ExperimentResult(
        experiment_id="E1",
        title="Theorem 1: LP formulations (1)/(2)/(3) agree on optimal subsidies",
        headline=(
            f"max |cost difference| across formulations = {max_gap:.2e} "
            "(paper: all three are exact solutions of SNE)"
        ),
        rows=rows,
    )
    result.elapsed_seconds = t.elapsed
    return result
