"""Command-line entry point: ``repro-experiments``.

Usage::

    repro-experiments list
    repro-experiments run E3 [--seed 7]
    repro-experiments run all [--seed 7]
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.experiments import EXPERIMENTS, run_all, run_experiment

_DESCRIPTIONS = {
    "E1": "Theorem 1: LP formulations (1)/(2)/(3) agree",
    "E2": "Theorem 6: constructive wgt(T)/e subsidies",
    "E3": "Theorem 11: cycle lower bound -> 1/e",
    "E4": "Theorem 21: all-or-nothing lower bound -> e/(2e-1)",
    "E5": "Lemma 4: Bypass gadget threshold",
    "E6": "Theorem 3: BIN PACKING reduction",
    "E7": "Theorem 5: INDEPENDENT SET reduction & PoS gap",
    "E8": "Theorem 12: 3SAT reduction (Corollary 20)",
    "E9": "PoS <= H_n potential descent",
    "E10": "Figure 4: virtual cost visualization data",
    "E11": "SND budget sweep (exact vs heuristic)",
    "A1": "Ablations: packing rule & decomposition",
    "A2": "Section 6 extensions: multicast/weighted/coalitions/combinatorial",
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description=(
            "Reproduce the evaluation artefacts of 'Enforcing efficient "
            "equilibria in network design games via subsidies' (SPAA 2012)."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available experiments")
    run_p = sub.add_parser("run", help="run one experiment (or 'all')")
    run_p.add_argument("experiment", help="experiment id (E1..E11, A1, A2) or 'all'")
    run_p.add_argument("--seed", type=int, default=0, help="base RNG seed")
    run_p.add_argument(
        "--out", default=None, help="also write the report to this file"
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        for key in EXPERIMENTS:
            print(f"{key:4s} {_DESCRIPTIONS.get(key, '')}")
        return 0

    def emit(chunks: List[str]) -> None:
        text = "\n\n".join(chunks)
        print(text)
        if args.out:
            with open(args.out, "w") as fh:
                fh.write(text + "\n")

    if args.experiment.lower() == "all":
        emit([r.to_text() for r in run_all(seed=args.seed)])
        return 0
    try:
        result = run_experiment(args.experiment, seed=args.seed)
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    emit([result.to_text()])
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
