"""Broadcast games: every player connects her own node to a common root.

The paper's central special case (Section 2).  States considered here are
spanning trees — as the paper notes, any equilibrium containing a cycle has
only zero-weight edges on it and an equivalent tree equilibrium exists.

``BroadcastGame`` additionally supports integer player *multiplicities* per
node: ``multiplicity[u] = k`` means ``k`` co-located players at node ``u``.
This is how we instantiate the Theorem 12 gadgets, whose auxiliary stars of
``n_j ~ 28^(2^(9-j))/4`` zero-weight leaves are game-theoretically identical
to co-located players but physically impossible to build as graph nodes.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro.graphs.graph import Edge, Graph, Node, canonical_edge
from repro.graphs.mst import kruskal_mst
from repro.graphs.tree import RootedTree
from repro.games.game import NetworkDesignGame, Subsidies


class TreeState:
    """A spanning-tree state of a broadcast game.

    Wraps a :class:`RootedTree` together with the edge usage counts
    ``n_a(T)`` (subtree player loads) and provides per-player costs.
    """

    def __init__(self, game: "BroadcastGame", edges: Iterable[Tuple[Node, Node]]):
        self.game = game
        self.tree = RootedTree(game.root, edges)
        if set(self.tree.nodes) != game.graph.node_set():
            raise ValueError("state does not span all nodes of the game graph")
        for u, v in self.tree.edges:
            if not game.graph.has_edge(u, v):
                raise ValueError(f"tree edge {(u, v)!r} is not a graph edge")
        self.loads: Dict[Edge, int] = self.tree.subtree_loads(game.multiplicity)

    @property
    def edges(self) -> List[Edge]:
        return self.tree.edges

    def edge_set(self) -> frozenset:
        return frozenset(self.tree.edges)

    def social_cost(self) -> float:
        """``wgt(T)`` over established (used) edges.

        Edges whose subtree hosts zero players are *not established* (no
        player uses them); with default multiplicities every tree edge
        counts.
        """
        g = self.game.graph
        return sum(g.weight(u, v) for u, v in self.tree.edges if self.loads[(u, v)] > 0)

    def usage(self, edge: Edge) -> int:
        """``n_a(T)``: players using the tree edge (0 for non-tree edges)."""
        return self.loads.get(canonical_edge(*edge), 0)

    def player_cost(self, node: Node, subsidies: Optional[Subsidies] = None) -> float:
        """Cost of (each of) the player(s) located at ``node``."""
        if node == self.game.root:
            raise ValueError("the root hosts no player")
        g = self.game.graph
        total = 0.0
        for e in self.tree.path_to_root(node):
            n_a = self.loads[e]
            if n_a == 0:  # pragma: no cover - only with zero multiplicities
                continue
            b = subsidies.get(e, 0.0) if subsidies else 0.0
            total += max(0.0, g.weight(*e) - b) / n_a
        return total

    def all_player_costs(self, subsidies: Optional[Subsidies] = None) -> Dict[Node, float]:
        """Costs of all players, computed incrementally in BFS order (O(n))."""
        g = self.game.graph
        costs: Dict[Node, float] = {self.game.root: 0.0}
        for u in self.tree.bfs_order[1:]:
            e = self.tree.edge_to_parent(u)
            n_a = self.loads[e]
            share = 0.0
            if n_a > 0:
                b = subsidies.get(e, 0.0) if subsidies else 0.0
                share = max(0.0, g.weight(*e) - b) / n_a
            costs[u] = costs[self.tree.parent[u]] + share
        del costs[self.game.root]
        return costs

    def total_player_cost(self, subsidies: Optional[Subsidies] = None) -> float:
        costs = self.all_player_costs(subsidies)
        mult = self.game.multiplicity
        return sum(c * mult.get(u, 1) for u, c in costs.items())


class BroadcastGame:
    """A broadcast game on ``graph`` with destination ``root``.

    Parameters
    ----------
    graph:
        Connected edge-weighted graph.
    root:
        The common destination node ``r``.
    multiplicity:
        Optional ``{node: k}`` co-located player counts (default 1 per
        non-root node; 0 is allowed and means "no player here", used for
        structural helper nodes).
    """

    #: game-family name (see :mod:`repro.games.base`)
    family = "broadcast"

    def __init__(
        self,
        graph: Graph,
        root: Node,
        multiplicity: Optional[Mapping[Node, int]] = None,
    ):
        if root not in graph:
            raise ValueError(f"root {root!r} not in graph")
        if not graph.is_connected():
            raise ValueError("broadcast games require a connected graph")
        self.graph = graph
        self.root = root
        self.multiplicity: Dict[Node, int] = {}
        for u in graph.nodes:
            if u == root:
                continue
            k = 1 if multiplicity is None else int(multiplicity.get(u, 1))
            if k < 0:
                raise ValueError(f"multiplicity of {u!r} must be >= 0")
            self.multiplicity[u] = k

    @property
    def n_players(self) -> int:
        return sum(self.multiplicity.values())

    def player_nodes(self) -> List[Node]:
        """Nodes hosting at least one player."""
        return [u for u, k in self.multiplicity.items() if k > 0]

    # -- states -------------------------------------------------------------

    def tree_state(self, edges: Iterable[Tuple[Node, Node]]) -> TreeState:
        return TreeState(self, edges)

    def mst_state(self) -> TreeState:
        """The deterministic Kruskal MST as a state (the optimal design)."""
        return TreeState(self, kruskal_mst(self.graph))

    def default_state(self) -> TreeState:
        """The family's natural target state (the MST)."""
        return self.mst_state()

    @property
    def cost_sharing(self):
        """The sharing rule (broadcast games are fair/Shapley)."""
        from repro.games.base import FairSharing

        return FairSharing()

    def mst_weight(self) -> float:
        return self.graph.subset_weight(kruskal_mst(self.graph))

    # -- bridges ------------------------------------------------------------

    def to_network_design_game(self) -> NetworkDesignGame:
        """The same game as a general :class:`NetworkDesignGame`.

        Requires all multiplicities <= 1 (the general-game State stores one
        explicit path per player; co-located duplicates would be fine in
        principle but are rejected to keep cross-validation honest).
        """
        if any(k > 1 for k in self.multiplicity.values()):
            raise ValueError("conversion requires multiplicities <= 1")
        pairs = [(u, self.root) for u, k in self.multiplicity.items() if k == 1]
        return NetworkDesignGame(self.graph, pairs)

    def tree_state_to_paths(self, state: TreeState) -> List[List[Node]]:
        """Node paths (one per unit-multiplicity player) for a tree state."""
        paths = []
        for u, k in self.multiplicity.items():
            if k == 0:
                continue
            nodes = [u]
            while nodes[-1] != self.root:
                nodes.append(state.tree.parent[nodes[-1]])
            for _ in range(k):
                paths.append(list(nodes))
        return paths
