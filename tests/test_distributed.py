"""The distributed sweep runtime: leases, stealing, and byte-identity.

The load-bearing guarantee mirrors the single-host runner's
parallel==serial contract: ``--json-out`` bytes are identical across a
single-host sweep, a 1-worker distributed run, an N-worker run, a run with
a worker SIGKILLed mid-lease, and a duplicate completion of a stolen job.
"""

import json
import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.cli import main
from repro.runtime import SweepRunner, SweepSpec
from repro.runtime.distributed import (
    STALL_ENV,
    CoordinatorClient,
    LeaseBoard,
    SweepCoordinator,
    Welford,
    cell_of_label,
    run_worker,
)

REPO_ROOT = Path(__file__).resolve().parents[1]


def small_spec(**overrides):
    kw = dict(
        solvers=["theorem6"], models=["tree-chords"], sizes=[8], count=2, seed=5
    )
    kw.update(overrides)
    return SweepSpec(**kw)


def single_host_bytes(tmp_path, spec, name="single.json"):
    path = tmp_path / name
    SweepRunner(cache=False).run(spec.expand()).write_json(path)
    return path.read_bytes()


def run_workers_in_threads(n, **kwargs):
    threads = [
        threading.Thread(
            target=run_worker,
            kwargs=dict(worker_id=f"w{i}", cache=False, **kwargs),
        )
        for i in range(n)
    ]
    for t in threads:
        t.start()
    return threads


# ---------------------------------------------------------------------------
# streaming aggregation primitives
# ---------------------------------------------------------------------------


class TestWelford:
    def test_matches_batch_statistics(self):
        import statistics

        xs = [3.0, 1.5, -2.0, 7.25, 0.0, 4.5]
        w = Welford()
        for x in xs:
            w.update(x)
        assert w.count == len(xs)
        assert w.mean == pytest.approx(statistics.mean(xs))
        assert w.variance == pytest.approx(statistics.pvariance(xs))
        assert w.min == min(xs) and w.max == max(xs)

    def test_empty_serializes_as_count_zero(self):
        assert Welford().to_json() == {"count": 0}

    def test_single_sample_zero_variance(self):
        w = Welford()
        w.update(2.5)
        assert w.variance == 0.0
        assert w.to_json()["mean"] == 2.5


class TestCellOfLabel:
    def test_strips_replica_index(self):
        assert (
            cell_of_label("tree-chords-n12[3] x sne-lp3")
            == "tree-chords-n12 x sne-lp3"
        )

    def test_explicit_instance_labels_are_their_own_cells(self):
        assert cell_of_label("inst0 x theorem6") == "inst0 x theorem6"

    def test_label_without_solver_passes_through(self):
        assert cell_of_label("whatever") == "whatever"

    def test_non_numeric_bracket_preserved(self):
        assert cell_of_label("foo[bar] x s") == "foo[bar] x s"


# ---------------------------------------------------------------------------
# the lease board (injected clock — no sleeps)
# ---------------------------------------------------------------------------


class TestLeaseBoard:
    def board(self, n=3, **kw):
        kw.setdefault("lease_timeout", 10.0)
        return LeaseBoard(total=n, queued=range(n), **kw)

    def test_leases_in_queue_order_then_starves(self):
        b = self.board()
        got = [b.lease("w", now=0.0) for _ in range(4)]
        assert [g[0] for g in got[:3]] == [0, 1, 2]
        assert got[3] is None

    def test_complete_marks_done_and_sets_event(self):
        b = self.board(n=1)
        index, lease = b.lease("w", now=0.0)
        assert b.complete("w", lease, index, ok=True, now=1.0)
        assert b.all_done.is_set()
        assert b.counts()["done"] == 1

    def test_expired_lease_is_stolen_and_requeued(self):
        b = self.board(n=1)
        b.lease("slow", now=0.0)
        assert b.lease("fast", now=5.0) is None  # lease still live
        index, _ = b.lease("fast", now=11.0)  # past the 10s deadline
        assert index == 0
        assert b.counts()["stolen"] == 1
        assert b.worker_stats(now=11.0)["slow"]["stolen_from"] == 1

    def test_heartbeat_extends_the_lease(self):
        b = self.board(n=1)
        b.lease("w", now=0.0)
        b.heartbeat("w", now=9.0)  # deadline moves to 19.0
        assert b.lease("thief", now=15.0) is None
        assert b.counts()["stolen"] == 0

    def test_heartbeat_only_extends_own_leases(self):
        b = self.board(n=2)
        b.lease("a", now=0.0)
        b.lease("b", now=0.0)
        b.heartbeat("a", now=9.0)
        stolen, _ = b.lease("thief", now=11.0)  # only b's lease lapsed
        assert stolen == 1

    def test_max_steals_gives_up_and_reaps(self):
        b = self.board(n=1, max_steals=2)
        now = 0.0
        for _ in range(2):
            b.lease("victim", now=now)
            now += 11.0  # expire it
        gave_up = b.reap(now=now)
        assert [index for index, _ in gave_up] == [0]
        assert "lease expired 2 times" in gave_up[0][1]
        assert b.all_done.is_set()
        assert b.reap(now=now) == []  # reported once

    def test_duplicate_completion_refused_and_counted(self):
        b = self.board(n=1)
        index, lease = b.lease("w1", now=0.0)
        assert b.complete("w1", lease, index, ok=True, now=1.0)
        assert not b.complete("w2", None, index, ok=True, now=2.0)
        assert b.counts()["duplicates"] == 1
        assert b.worker_stats(now=2.0)["w2"]["duplicates"] == 1

    def test_late_completion_of_stolen_job_is_accepted(self):
        b = self.board(n=1)
        index, old_lease = b.lease("slow", now=0.0)
        b.lease("fast", now=11.0)  # steal
        # the original holder finishes anyway — still valid work
        assert b.complete("slow", old_lease, index, ok=True, now=12.0)
        assert b.all_done.is_set()

    def test_zero_lease_timeout_rejected(self):
        with pytest.raises(ValueError):
            LeaseBoard(total=1, queued=[0], lease_timeout=0.0)

    def test_force_done_idempotent(self):
        b = self.board(n=1)
        assert b.force_done(0, worker="w", ok=True)
        assert not b.force_done(0, worker="w", ok=True)
        assert b.counts()["duplicates"] == 1
        assert b.all_done.is_set()


# ---------------------------------------------------------------------------
# satellite: SweepResult.write_json streams byte-identically
# ---------------------------------------------------------------------------


class TestWriteJsonRegression:
    def test_streamed_bytes_equal_dumped_to_json(self, tmp_path):
        result = SweepRunner(cache=False).run(small_spec().expand())
        path = tmp_path / "streamed.json"
        result.write_json(path)
        expected = (
            json.dumps(result.to_json(), indent=2, sort_keys=True) + "\n"
        ).encode()
        assert path.read_bytes() == expected

    def test_empty_result_bytes(self, tmp_path):
        result = SweepRunner(cache=False).run([])
        path = tmp_path / "empty.json"
        result.write_json(path)
        expected = (
            json.dumps(result.to_json(), indent=2, sort_keys=True) + "\n"
        ).encode()
        assert path.read_bytes() == expected
        assert json.loads(path.read_bytes())["jobs"] == []

    def test_accepts_open_file_objects(self, tmp_path):
        result = SweepRunner(cache=False).run(small_spec(count=1).expand())
        path = tmp_path / "fh.json"
        with open(path, "w") as fh:
            result.write_json(fh)
        assert (
            path.read_bytes()
            == (json.dumps(result.to_json(), indent=2, sort_keys=True) + "\n").encode()
        )


# ---------------------------------------------------------------------------
# end-to-end byte-identity (in-process workers)
# ---------------------------------------------------------------------------


class TestDistributedByteIdentity:
    def test_http_transport_n_workers(self, tmp_path):
        spec = small_spec(solvers=["theorem6", "sne-lp3"])
        expected = single_host_bytes(tmp_path, spec)
        out = tmp_path / "http.json"
        coordinator = SweepCoordinator(spec.expand(), cache=False, json_out=out)
        host, port = coordinator.serve("127.0.0.1", 0)
        threads = run_workers_in_threads(3, connect=(host, port))
        result = coordinator.run()
        for t in threads:
            t.join(timeout=30)
        assert result.ok and result.total == 4
        assert out.read_bytes() == expected
        assert sum(w["completed"] for w in result.workers.values()) == 4

    def test_spool_transport(self, tmp_path):
        spec = small_spec()
        expected = single_host_bytes(tmp_path, spec)
        out = tmp_path / "spool.json"
        coordinator = SweepCoordinator(
            spec.expand(), cache=False, json_out=out, spool=tmp_path / "spool"
        )
        threads = run_workers_in_threads(2, spool=tmp_path / "spool", poll=0.02)
        result = coordinator.run(poll=0.02)
        for t in threads:
            t.join(timeout=30)
        assert result.ok
        assert out.read_bytes() == expected

    def test_warm_cache_completes_without_workers(self, tmp_path):
        spec = small_spec()
        expected = single_host_bytes(tmp_path, spec)
        cache_dir = tmp_path / "cache"
        first_out = tmp_path / "first.json"
        coordinator = SweepCoordinator(
            spec.expand(), cache=cache_dir, json_out=first_out
        )
        host, port = coordinator.serve("127.0.0.1", 0)
        threads = run_workers_in_threads(1, connect=(host, port))
        coordinator.run()
        for t in threads:
            t.join(timeout=30)
        warm_out = tmp_path / "warm.json"
        warm = SweepCoordinator(spec.expand(), cache=cache_dir, json_out=warm_out)
        result = warm.run()  # never serves, never needs a worker
        assert result.ok and result.cache_hits == result.total
        assert first_out.read_bytes() == warm_out.read_bytes() == expected

    def test_duplicate_completion_is_idempotent(self, tmp_path):
        """Two workers finish the same stolen job; bytes stay identical."""
        spec = small_spec(count=1)
        expected = single_host_bytes(tmp_path, spec)
        out = tmp_path / "dup.json"
        coordinator = SweepCoordinator(
            spec.expand(), cache=False, json_out=out, lease_timeout=0.05
        )
        slow = coordinator.lease_json("slow")
        index = slow["job"]["index"]
        time.sleep(0.1)  # the lease lapses; no heartbeat arrives
        stolen = coordinator.lease_json("fast")
        assert stolen["job"]["index"] == index  # same job, re-leased
        from repro.runtime.workers import run_solve_job

        outcome = run_solve_job(stolen["job"]["payload"])
        first = coordinator.complete_json("fast", stolen["lease"], index, outcome)
        assert first == {"accepted": True, "duplicate": False}
        second = coordinator.complete_json("slow", slow["lease"], index, outcome)
        assert second == {"accepted": False, "duplicate": True}
        # drain the rest of the queue inline
        while True:
            lease = coordinator.lease_json("fast")
            if lease["job"] is None:
                break
            coordinator.complete_json(
                "fast",
                lease["lease"],
                lease["job"]["index"],
                run_solve_job(lease["job"]["payload"]),
            )
        result = coordinator.run()
        assert result.ok
        assert result.duplicates == 1 and result.stolen >= 1
        assert result.workers["slow"]["duplicates"] == 1
        assert out.read_bytes() == expected

    def test_exhausted_lease_becomes_failure_record(self, tmp_path):
        spec = small_spec(count=1)
        coordinator = SweepCoordinator(
            spec.expand(), cache=False, lease_timeout=0.01, max_steals=1,
            json_out=tmp_path / "fail.json",
        )
        assert coordinator.lease_json("crasher")["job"] is not None
        time.sleep(0.05)
        result = coordinator.run()
        assert not result.ok
        assert result.counts["failed"] == 1
        assert result.failures and "lease expired" in result.failures[0]["error"]
        payload = json.loads((tmp_path / "fail.json").read_bytes())
        assert payload["jobs"][0]["status"] == "failed"


class TestSpoolStealing:
    def test_stale_claim_is_renamed_back_to_jobs(self, tmp_path):
        spool = tmp_path / "spool"
        coordinator = SweepCoordinator(
            small_spec(count=1).expand(), cache=False, spool=spool,
            lease_timeout=5.0,
        )
        job_file = next((spool / "jobs").glob("*.json"))
        claim = spool / "claims" / job_file.name
        os.rename(job_file, claim)
        (spool / "claims" / f"{claim.name}.worker").write_text("dead-worker")
        old = time.time() - 60.0
        os.utime(claim, (old, old))
        coordinator._spool_scan()
        assert not claim.exists()
        assert (spool / "jobs" / job_file.name).exists()
        assert coordinator.board.counts()["stolen"] == 1
        coordinator.folder.close()

    def test_spool_give_up_after_max_steals(self, tmp_path):
        spool = tmp_path / "spool"
        coordinator = SweepCoordinator(
            small_spec(count=1).expand(), cache=False, spool=spool,
            lease_timeout=5.0, max_steals=1, json_out=tmp_path / "out.json",
        )
        job_file = next((spool / "jobs").glob("*.json"))
        claim = spool / "claims" / job_file.name
        os.rename(job_file, claim)
        old = time.time() - 60.0
        os.utime(claim, (old, old))
        result = coordinator.run(poll=0.02)
        assert not result.ok
        assert "lease expired" in result.failures[0]["error"]

    def test_corrupt_result_file_fails_that_job_only(self, tmp_path):
        spool = tmp_path / "spool"
        coordinator = SweepCoordinator(
            small_spec().expand(), cache=False, spool=spool,
            json_out=tmp_path / "out.json",
        )
        jobs = sorted((spool / "jobs").glob("*.json"))
        (spool / "results" / jobs[0].name).write_text("{not json")
        jobs[0].unlink()
        threads = run_workers_in_threads(1, spool=spool, poll=0.02)
        result = coordinator.run(poll=0.02)
        for t in threads:
            t.join(timeout=30)
        assert result.counts["failed"] == 1
        assert result.counts["ok"] == result.total - 1
        assert "corrupt spool result" in result.failures[0]["error"]


# ---------------------------------------------------------------------------
# worker-crash containment (a real SIGKILL on a real worker process)
# ---------------------------------------------------------------------------


def start_worker_process(host, port, worker_id, stall=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    if stall is not None:
        env[STALL_ENV] = str(stall)
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "sweep-worker",
            "--connect", f"{host}:{port}", "--id", worker_id,
            "--no-cache", "--quiet",
        ],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )


class TestWorkerCrashContainment:
    def test_sigkill_mid_lease_steal_and_identical_bytes(self, tmp_path):
        spec = small_spec()
        expected = single_host_bytes(tmp_path, spec)
        out = tmp_path / "crash.json"
        coordinator = SweepCoordinator(
            spec.expand(), cache=False, json_out=out, lease_timeout=1.0
        )
        host, port = coordinator.serve("127.0.0.1", 0)
        # The victim leases a job, then stalls inside the chaos hook — a
        # deterministic mid-lease window for the SIGKILL.
        victim = start_worker_process(host, port, "victim", stall=120)
        try:
            deadline = time.monotonic() + 60.0
            while time.monotonic() < deadline:
                if coordinator.stats_json()["jobs"]["leased"] >= 1:
                    break
                time.sleep(0.05)
            else:
                pytest.fail("victim never leased a job")
            victim.kill()  # SIGKILL: no cleanup, no heartbeat, lease lapses
            victim.wait(timeout=30)
            rescuer = start_worker_process(host, port, "rescuer")
            try:
                result = coordinator.run()
            finally:
                rescuer.wait(timeout=60)
        finally:
            if victim.poll() is None:
                victim.kill()
        assert result.ok, result.summary_text()
        assert result.stolen >= 1
        assert result.workers["victim"]["stolen_from"] >= 1
        assert result.workers["rescuer"]["completed"] == result.total
        assert out.read_bytes() == expected


# ---------------------------------------------------------------------------
# /stats schema
# ---------------------------------------------------------------------------


class TestStatsEndpoint:
    def test_schema_and_counters(self, tmp_path):
        coordinator = SweepCoordinator(small_spec().expand(), cache=False)
        host, port = coordinator.serve("127.0.0.1", 0)
        client = CoordinatorClient(host, port)
        try:
            client.wait_ready()
            health = client.healthz()
            assert health["role"] == "sweep-coordinator" and not health["done"]
            stats = client.stats()
            assert stats["kind"] == "sweep-coordinator-stats"
            assert set(stats) >= {
                "kind", "version", "uptime_seconds", "lease_timeout",
                "jobs", "workers", "cells", "failures",
            }
            jobs = stats["jobs"]
            assert jobs["total"] == 2 and jobs["queued"] == 2
            assert {"leased", "done", "stolen", "duplicates", "ok",
                    "failed", "timeout", "cached"} <= set(jobs)
            assert stats["workers"] == {}
            # one lease in: per-worker liveness appears
            client.lease("w0")
            stats = client.stats()
            assert stats["jobs"]["leased"] == 1
            worker = stats["workers"]["w0"]
            assert worker["leases_held"] == 1
            assert worker["heartbeat_age_seconds"] >= 0.0
            assert {"completed", "failed_jobs", "duplicates",
                    "stolen_from"} <= set(worker)
        finally:
            client.close()
            coordinator.folder.close()
            coordinator.close()

    def test_cells_fold_welford_stats(self, tmp_path):
        out = tmp_path / "cells.json"
        coordinator = SweepCoordinator(
            small_spec().expand(), cache=False, json_out=out
        )
        host, port = coordinator.serve("127.0.0.1", 0)
        threads = run_workers_in_threads(1, connect=(host, port))
        result = coordinator.run()
        for t in threads:
            t.join(timeout=30)
        assert result.ok
        cell = result.cells["tree-chords-n8 x theorem6"]
        assert cell["budget"]["count"] == 2  # both replicas, one cell
        assert cell["elapsed"]["count"] == 2
        assert cell["budget"]["min"] <= cell["budget"]["mean"] <= cell["budget"]["max"]


# ---------------------------------------------------------------------------
# CLI surface
# ---------------------------------------------------------------------------


class TestCliValidation:
    def test_jobs_flag_conflicts_with_listen(self, capsys):
        code = main(
            ["sweep", "--solver", "theorem6", "--jobs", "2",
             "--listen", "127.0.0.1:0", "--quiet"]
        )
        assert code == 2
        assert "sweep-worker" in capsys.readouterr().err

    def test_lease_timeout_requires_distributed(self, capsys):
        code = main(
            ["sweep", "--solver", "theorem6", "--lease-timeout", "5", "--quiet"]
        )
        assert code == 2
        assert "--listen/--spool" in capsys.readouterr().err

    def test_worker_needs_exactly_one_transport(self, capsys):
        assert main(["sweep-worker", "--quiet"]) == 2
        assert "exactly one" in capsys.readouterr().err
        assert main(
            ["sweep-worker", "--connect", "h:1", "--spool", "d", "--quiet"]
        ) == 2

    def test_bad_hostport_rejected(self, capsys):
        assert main(["sweep-worker", "--connect", "nocolon", "--quiet"]) == 2
        assert "HOST:PORT" in capsys.readouterr().err


class TestCacheCli:
    def fill(self, tmp_path):
        cache_dir = tmp_path / "cache"
        assert main(
            ["sweep", "--solver", "theorem6", "--n", "8", "--count", "2",
             "--seed", "5", "--cache-dir", str(cache_dir), "--quiet"]
        ) == 0
        return cache_dir

    def test_stats_text_and_json(self, tmp_path, capsys):
        cache_dir = self.fill(tmp_path)
        capsys.readouterr()
        assert main(["cache", "stats", "--cache-dir", str(cache_dir)]) == 0
        text = capsys.readouterr().out
        assert "entries:    2" in text and str(cache_dir) in text
        assert main(
            ["cache", "stats", "--cache-dir", str(cache_dir), "--json"]
        ) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["kind"] == "cache-stats"
        assert stats["entries"] == 2
        assert stats["total_bytes"] > 0
        assert stats["oldest_mtime"] <= stats["newest_mtime"]

    def test_prune_respects_age(self, tmp_path, capsys):
        cache_dir = self.fill(tmp_path)
        capsys.readouterr()
        assert main(
            ["cache", "prune", "--older-than", "1d", "--cache-dir", str(cache_dir)]
        ) == 0
        assert "pruned 0 entries" in capsys.readouterr().out
        assert main(
            ["cache", "prune", "--older-than", "0s", "--cache-dir", str(cache_dir)]
        ) == 0
        assert "pruned 2 entries" in capsys.readouterr().out

    def test_clear(self, tmp_path, capsys):
        cache_dir = self.fill(tmp_path)
        capsys.readouterr()
        assert main(["cache", "clear", "--cache-dir", str(cache_dir)]) == 0
        assert "removed 2 entries" in capsys.readouterr().out
        assert main(["cache", "stats", "--cache-dir", str(cache_dir)]) == 0
        assert "entries:    0" in capsys.readouterr().out

    def test_bad_age_rejected(self, tmp_path, capsys):
        assert main(
            ["cache", "prune", "--older-than", "soon",
             "--cache-dir", str(tmp_path / "c")]
        ) == 2
        assert "NUMBER[s|m|h|d|w]" in capsys.readouterr().err

    def test_stats_on_missing_cache_dir(self, tmp_path, capsys):
        assert main(
            ["cache", "stats", "--cache-dir", str(tmp_path / "nothing")]
        ) == 0
        assert "entries:    0" in capsys.readouterr().out


class TestCliDistributedSweep:
    def test_spool_mode_end_to_end(self, tmp_path, capsys):
        spec = small_spec()
        expected = single_host_bytes(tmp_path, spec)
        out = tmp_path / "cli-spool.json"
        spool = tmp_path / "spool"
        threads = run_workers_in_threads(
            2, spool=spool, poll=0.02, ready_timeout=60.0
        )
        code = main(
            ["sweep", "--solver", "theorem6", "--n", "8", "--count", "2",
             "--seed", "5", "--no-cache", "--spool", str(spool),
             "--json-out", str(out), "--quiet"]
        )
        for t in threads:
            t.join(timeout=30)
        captured = capsys.readouterr()
        assert code == 0
        assert "2 jobs: 2 ok" in captured.out
        assert "sweep-worker --spool" in captured.err
        assert out.read_bytes() == expected
