"""Tests for equilibrium checking (general and broadcast)."""

import pytest

from repro.games import BroadcastGame, NetworkDesignGame, check_equilibrium
from repro.games.equilibrium import best_deviation_from_tree, best_response
from repro.graphs import Graph
from repro.graphs.generators import cycle_graph, fan_graph


class TestBroadcastEquilibrium:
    def test_unique_tree_is_equilibrium(self):
        g = Graph.from_edges([(0, 1, 1.0), (1, 2, 1.0)])
        game = BroadcastGame(g, root=0)
        st = game.tree_state([(0, 1), (1, 2)])
        assert check_equilibrium(st).is_equilibrium

    def test_cheap_shortcut_breaks_equilibrium(self):
        # Player 2 pays 1.5 on the path but the direct edge costs 1.2.
        g = Graph.from_edges([(0, 1, 1.0), (1, 2, 1.0), (0, 2, 1.2)])
        game = BroadcastGame(g, root=0)
        st = game.tree_state([(0, 1), (1, 2)])
        report = check_equilibrium(st)
        assert not report.is_equilibrium
        dev = report.deviations[0]
        assert dev.player == 2
        assert dev.deviation_cost == pytest.approx(1.2)
        assert dev.path_nodes == [2, 0]

    def test_expensive_shortcut_keeps_equilibrium(self):
        g = Graph.from_edges([(0, 1, 1.0), (1, 2, 1.0), (0, 2, 1.6)])
        game = BroadcastGame(g, root=0)
        st = game.tree_state([(0, 1), (1, 2)])
        assert check_equilibrium(st).is_equilibrium

    def test_subsidies_restore_equilibrium(self):
        g = Graph.from_edges([(0, 1, 1.0), (1, 2, 1.0), (0, 2, 1.2)])
        game = BroadcastGame(g, root=0)
        st = game.tree_state([(0, 1), (1, 2)])
        # Subsidize the leaf edge so player 2 pays 0.5 + 0.5 = 1.0 <= 1.2.
        assert check_equilibrium(st, {(1, 2): 0.5}).is_equilibrium

    def test_exact_tie_is_equilibrium(self):
        # Deviation cost exactly equals current cost: weak inequality holds.
        g = Graph.from_edges([(0, 1, 1.0), (1, 2, 1.0), (0, 2, 1.5)])
        game = BroadcastGame(g, root=0)
        st = game.tree_state([(0, 1), (1, 2)])
        assert st.player_cost(2) == pytest.approx(1.5)
        assert check_equilibrium(st).is_equilibrium

    def test_fan_spokes_equilibrium(self):
        # All players on direct spokes: each pays 1 alone; any rim deviation
        # via a neighbor's spoke costs rim + spoke/2 = 0.1 + 0.5 < 1 -> not eq.
        game = BroadcastGame(fan_graph(5, rim_weight_scale=1.0), root=0)
        st = game.tree_state([(0, i) for i in range(1, 6)])
        assert not check_equilibrium(st).is_equilibrium

    def test_find_all_deviations(self):
        g = Graph.from_edges(
            [(0, 1, 1.0), (1, 2, 1.0), (0, 2, 1.2), (1, 3, 1.0), (0, 3, 1.2)]
        )
        game = BroadcastGame(g, root=0)
        st = game.tree_state([(0, 1), (1, 2), (1, 3)])
        report = check_equilibrium(st, find_all=True)
        assert len(report.deviations) == 2

    def test_multiplicity_shifts_equilibrium(self):
        # Heavy co-location on node 2 makes the shared path cheap enough.
        g = Graph.from_edges([(0, 1, 1.0), (1, 2, 1.0), (0, 2, 1.2)])
        plain = BroadcastGame(g, root=0)
        crowded = BroadcastGame(g, root=0, multiplicity={2: 10})
        st_plain = plain.tree_state([(0, 1), (1, 2)])
        st_crowd = crowded.tree_state([(0, 1), (1, 2)])
        assert not check_equilibrium(st_plain).is_equilibrium
        # Each of the 10 players at node 2 pays 1/11 + 1/10 << 1.2.
        assert check_equilibrium(st_crowd).is_equilibrium

    def test_best_deviation_includes_path(self):
        g = cycle_graph(5)
        game = BroadcastGame(g, root=0)
        st = game.tree_state([(0, 1), (1, 2), (2, 3), (3, 4)])
        dev = best_deviation_from_tree(st, 4)
        assert dev.path_nodes == [4, 0]
        assert dev.deviation_cost == pytest.approx(1.0)
        assert dev.current_cost == pytest.approx(1 + 1 / 2 + 1 / 3 + 1 / 4)
        assert dev.gain == pytest.approx(dev.current_cost - 1.0)


class TestGeneralEquilibrium:
    def test_single_player_takes_shortest_path(self):
        g = Graph.from_edges([(0, 1, 1.0), (1, 2, 1.0), (0, 2, 3.0)])
        game = NetworkDesignGame(g, [(0, 2)])
        good = game.state([[0, 1, 2]])
        bad = game.state([[0, 2]])
        assert check_equilibrium(good).is_equilibrium
        assert not check_equilibrium(bad).is_equilibrium

    def test_sharing_makes_expensive_edge_stable(self):
        # Two players both cross a weight-3 edge: each pays 1.5; alternative
        # solo edges cost 2 each -> staying is an equilibrium.
        g = Graph.from_edges([(0, 1, 3.0), (0, 2, 2.0), (1, 2, 2.0)])
        game = NetworkDesignGame(g, [(0, 1), (0, 1)])
        st = game.state([[0, 1], [0, 1]])
        assert check_equilibrium(st).is_equilibrium

    def test_best_response_accounts_for_sharing(self):
        g = Graph.from_edges([(0, 1, 3.0), (0, 2, 2.0), (1, 2, 2.0)])
        game = NetworkDesignGame(g, [(0, 1), (0, 1)])
        st = game.state([[0, 1], [0, 2, 1]])
        dev = best_response(st, 1)
        # Joining player 0 on (0,1) splits 3 two ways: 1.5 < 4.
        assert dev.deviation_cost == pytest.approx(1.5)
        assert dev.path_nodes == [0, 1]

    def test_broadcast_and_general_checkers_agree(self):
        g = Graph.from_edges(
            [(0, 1, 1.0), (1, 2, 1.0), (0, 2, 1.2), (2, 3, 0.7), (0, 3, 2.5)]
        )
        game = BroadcastGame(g, root=0)
        nd = game.to_network_design_game()
        for tree in [
            [(0, 1), (1, 2), (2, 3)],
            [(0, 1), (0, 2), (2, 3)],
            [(0, 1), (0, 2), (0, 3)],
        ]:
            st = game.tree_state(tree)
            general = nd.state(game.tree_state_to_paths(st))
            assert (
                check_equilibrium(st).is_equilibrium
                == check_equilibrium(general).is_equilibrium
            )

    def test_zero_cost_players_skipped(self):
        g = Graph.from_edges([(0, 1, 0.0), (1, 2, 0.0), (0, 2, 1.0)])
        game = BroadcastGame(g, root=0)
        st = game.tree_state([(0, 1), (1, 2)])
        assert check_equilibrium(st).is_equilibrium
