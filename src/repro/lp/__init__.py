"""Linear programming substrate.

Every LP solve goes through the :mod:`repro.lp.backends` registry — a
catalogue of :class:`~repro.lp.backends.LPBackendSpec` entries with
capability flags (``warm_start`` / ``sparse`` / ``exact`` /
``incremental``), looked up by name or alias via :func:`solve_lp`:

* ``"highs-sparse"`` (alias ``"highs"``) — scipy's HiGHS (production
  default), sparse-fed with warm-guided re-solve shortcuts,
* ``"warm-tableau"`` (alias ``"simplex"``) — the from-scratch dense
  two-phase simplex in :mod:`repro.lp.simplex`, kept as an
  independently-tested reference with dual-simplex warm restarts,
* ``"exact"`` — a Fraction-arithmetic two-phase simplex whose verdicts
  come with :class:`~repro.lp.backends.ExactCertificate` proofs,
* ``"pulp-cbc"`` — COIN-OR CBC via PuLP, an independent conformance
  implementation (available only when ``pulp`` is installed).

:mod:`repro.lp.cutting_plane` provides the constraint-generation driver used
to solve the paper's exponential-size LP (1) with a shortest-path separation
oracle (the practical stand-in for the ellipsoid method cited in Theorem 1).

:mod:`repro.lp.incremental` is the fast path for that driver's access
pattern: :class:`IncrementalLP` stores rows sparsely (``O(nnz)`` cut
appends) and holds one warm-state session per backend — a dual-simplex
basis resume on ``"warm-tableau"``, a sparse + previous-solution-guided
path on ``"highs-sparse"`` — while returning exactly the answers of the
dense cold path.
"""

from repro.lp.problem import LinearProgram, LPResult, LPStatus
from repro.lp.simplex import WarmSimplex, simplex_solve
from repro.lp.backends import (
    BackendUnavailableError,
    ExactCertificate,
    LPBackendSpec,
    UnknownBackendError,
    backend_names,
    certify_result,
    exact_solve_certified,
    get_backend,
    list_backends,
    register_backend,
    solve_lp,
)
from repro.lp.incremental import IncrementalLP, LPStats
from repro.lp.cutting_plane import CuttingPlaneResult, solve_with_cutting_planes

__all__ = [
    "BackendUnavailableError",
    "CuttingPlaneResult",
    "ExactCertificate",
    "IncrementalLP",
    "LinearProgram",
    "LPBackendSpec",
    "LPResult",
    "LPStats",
    "LPStatus",
    "UnknownBackendError",
    "WarmSimplex",
    "backend_names",
    "certify_result",
    "exact_solve_certified",
    "get_backend",
    "list_backends",
    "register_backend",
    "simplex_solve",
    "solve_lp",
    "solve_with_cutting_planes",
]
