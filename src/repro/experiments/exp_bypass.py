"""E5 — Lemma 4: the Bypass gadget threshold.

Sweep the attached load ``beta`` around the capacity ``kappa``: the
connector player deviates to the bypass edge exactly when ``beta < kappa``.
"""

from __future__ import annotations

from repro.experiments.records import ExperimentResult
from repro.games.equilibrium import best_deviation_from_tree
from repro.hardness.bypass import build_bypass_game, bypass_ell, connector_deviates
from repro.utils.timing import Timer


def run(seed: int = 0, kappas=(3, 5, 8)) -> ExperimentResult:
    rows = []
    all_match = True
    with Timer() as t:
        for kappa in kappas:
            ell = bypass_ell(kappa)
            for beta in range(max(0, kappa - 2), kappa + 3):
                game, state, gadget = build_bypass_game(kappa, beta)
                dev = best_deviation_from_tree(state, gadget.connector)
                measured = dev.deviation_cost < dev.current_cost - 1e-12
                predicted = connector_deviates(kappa, beta)
                all_match &= measured == predicted
                rows.append(
                    {
                        "kappa": kappa,
                        "ell": ell,
                        "beta": beta,
                        "path_cost": dev.current_cost,
                        "bypass_cost": dev.deviation_cost,
                        "deviates": measured,
                        "lemma4_predicts": predicted,
                    }
                )
    result = ExperimentResult(
        experiment_id="E5",
        title="Lemma 4: Bypass gadget deviation threshold at beta = kappa",
        headline=(
            f"measured deviation == Lemma 4 prediction on all rows: {all_match} "
            "(connector deviates iff beta < kappa)"
        ),
        rows=rows,
    )
    result.elapsed_seconds = t.elapsed
    return result
