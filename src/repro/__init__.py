"""repro — reproduction of *Enforcing efficient equilibria in network design
games via subsidies* (Augustine, Caragiannis, Fanelli, Kalaitzis, SPAA 2012).

Public API highlights
---------------------
- :mod:`repro.api` — **the unified solver facade**: ``repro.api.solve(game,
  solver="sne-lp3")``, batch execution via ``solve_many``, the solver
  registry, and JSON serialization for instances and results,
- :class:`repro.graphs.Graph` and the graph substrate,
- the game-family layer in :mod:`repro.games` — broadcast / multicast /
  general / weighted / directed games over pluggable cost-sharing rules
  (:mod:`repro.games.base`),
- the scenario catalogue in :mod:`repro.scenarios` (named, seeded instance
  families behind ``repro-experiments gen --family`` and sweep grids),
- SNE solvers in :mod:`repro.subsidies` (LP formulations (1)-(3) of the paper,
  the Theorem 6 constructive ``wgt(T)/e`` algorithm, all-or-nothing solvers),
- SND solvers and heuristics,
- hardness-reduction constructors in :mod:`repro.hardness`,
- lower-bound instance families and constants in :mod:`repro.bounds`,
- the experiment harness in :mod:`repro.experiments` (CLI: ``repro-experiments``),
- the parallel sweep runtime with its content-addressed result cache in
  :mod:`repro.runtime` (CLI: ``repro-experiments sweep``),
- the persistent solver daemon in :mod:`repro.serve` — HTTP/JSON API with
  resident warm state (CLI: ``repro-experiments serve``).

Subpackages are imported lazily (PEP 562) so ``import repro`` stays cheap —
``repro.api`` and friends materialize on first attribute access.
"""

from importlib import import_module
from typing import TYPE_CHECKING

__version__ = "1.4.0"

#: lazily importable public subpackages
_SUBMODULES = (
    "api",
    "bounds",
    "experiments",
    "games",
    "graphs",
    "hardness",
    "lp",
    "runtime",
    "scenarios",
    "serve",
    "subsidies",
    "utils",
)

__all__ = [*_SUBMODULES, "__version__"]

if TYPE_CHECKING:  # pragma: no cover - static analysis only
    from repro import (  # noqa: F401
        api,
        bounds,
        experiments,
        games,
        graphs,
        hardness,
        lp,
        runtime,
        scenarios,
        serve,
        subsidies,
        utils,
    )


def __getattr__(name: str):
    if name in _SUBMODULES:
        module = import_module(f"repro.{name}")
        globals()[name] = module  # cache: __getattr__ fires once per name
        return module
    raise AttributeError(f"module 'repro' has no attribute {name!r}")


def __dir__():
    return sorted(set(globals()) | set(_SUBMODULES))
