"""Equilibrium-check benchmark — vectorized engine vs legacy per-deviation checker.

The acceptance bar for the indexed-core refactor: on a 200-node broadcast
instance the engine-backed :func:`check_equilibrium` must beat the
dict-based :func:`check_equilibrium_legacy` by at least 2x, with identical
equilibrium verdicts on randomized cross-checks.
"""

import os
import time

import pytest

from repro.games.broadcast import BroadcastGame
from repro.games.equilibrium import check_equilibrium, check_equilibrium_legacy
from repro.graphs.generators import random_tree_plus_chords


def _instance(n, seed):
    g = random_tree_plus_chords(n, n // 2, seed=seed, chord_factor=1.1)
    return BroadcastGame(g, root=0).mst_state()


@pytest.fixture(scope="module")
def broadcast_200():
    return _instance(200, seed=7)


def test_engine_check(benchmark, broadcast_200):
    report = benchmark(check_equilibrium, broadcast_200, find_all=True)
    assert not report.is_equilibrium  # the bare MST is not stable here


def test_legacy_check(benchmark, broadcast_200):
    report = benchmark(check_equilibrium_legacy, broadcast_200, find_all=True)
    assert not report.is_equilibrium


def test_verdicts_identical_on_randomized_instances(broadcast_200):
    for n, seed in [(200, 7), (60, 1), (60, 2), (80, 3), (100, 4), (120, 5)]:
        state = _instance(n, seed)
        a = check_equilibrium(state, find_all=True)
        b = check_equilibrium_legacy(state, find_all=True)
        assert a.is_equilibrium == b.is_equilibrium
        assert [d.player for d in a.deviations] == [d.player for d in b.deviations]


@pytest.mark.skipif(
    os.environ.get("CI", "") != "",
    reason="wall-clock ratio assertion; shared CI runners are too noisy for it",
)
def test_engine_beats_legacy_2x(broadcast_200):
    """min-of-5 wall-clock: engine at least 2x faster than the legacy checker."""

    def best_of(fn, reps=5):
        times = []
        for _ in range(reps):
            t0 = time.perf_counter()
            fn(broadcast_200, find_all=True)
            times.append(time.perf_counter() - t0)
        return min(times)

    check_equilibrium(broadcast_200, find_all=True)  # warm the interned caches
    t_engine = best_of(check_equilibrium)
    t_legacy = best_of(check_equilibrium_legacy)
    speedup = t_legacy / t_engine
    assert speedup >= 2.0, (
        f"engine {t_engine * 1e3:.2f}ms vs legacy {t_legacy * 1e3:.2f}ms "
        f"-> {speedup:.2f}x (< 2x)"
    )
