"""Shared utilities: numeric tolerances, RNG plumbing, timing, validation.

The whole library compares player costs with a single relative tolerance so
that "no improving deviation" means the same thing in the equilibrium checker,
the LP post-verification and the hardness-reduction experiments.
"""

from repro.utils.tolerances import (
    EQ_TOL,
    LP_TOL,
    is_close,
    is_improvement,
    leq_with_tol,
    nonnegative,
)
from repro.utils.rng import child_seeds, ensure_rng
from repro.utils.resources import peak_rss_bytes
from repro.utils.timing import Timer
from repro.utils.validation import (
    check_edge_weight,
    check_positive_int,
    check_probability,
)

__all__ = [
    "EQ_TOL",
    "LP_TOL",
    "is_close",
    "is_improvement",
    "leq_with_tol",
    "nonnegative",
    "ensure_rng",
    "child_seeds",
    "peak_rss_bytes",
    "Timer",
    "check_edge_weight",
    "check_positive_int",
    "check_probability",
]
