"""Coalitional deviations (strong equilibria) — the paper's §6 direction.

A coalition ``S`` has a profitable joint deviation from state ``T`` when
there are new strategies for all members making *every* member strictly
better off (others fixed).  A state immune to coalitions of size ≤ k is a
k-strong equilibrium; k = 1 recovers the Nash condition.

Checking is NP-hard in general; this module does exact checking on small
instances by enumerating simple paths per member (bounded), which is
exactly what the reduction-scale experiments need.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations, product
from typing import Dict, List, Optional, Sequence, Tuple

from repro.graphs.graph import Edge, Node
from repro.graphs.paths import enumerate_simple_paths
from repro.games.game import State, Subsidies, _path_nodes_to_edges
from repro.utils.tolerances import EQ_TOL, is_improvement


@dataclass
class CoalitionDeviation:
    """A profitable joint move: members, their new paths, cost changes."""

    members: Tuple[int, ...]
    new_paths: List[List[Node]]
    old_costs: List[float]
    new_costs: List[float]

    @property
    def gains(self) -> List[float]:
        return [o - n for o, n in zip(self.old_costs, self.new_costs)]


@dataclass
class StrongEquilibriumReport:
    is_strong_equilibrium: bool
    max_coalition_checked: int
    deviation: Optional[CoalitionDeviation] = None
    coalitions_checked: int = 0


def _joint_costs(
    state: State,
    members: Sequence[int],
    new_edge_paths: Sequence[Tuple[Edge, ...]],
    subsidies: Optional[Subsidies],
) -> List[float]:
    """Member costs after the coalition jointly switches paths."""
    game = state.game
    usage = dict(state.usage)
    for i in members:
        for e in state.edge_paths[i]:
            usage[e] -= 1
    for edges in new_edge_paths:
        for e in edges:
            usage[e] = usage.get(e, 0) + 1
    costs = []
    for edges in new_edge_paths:
        total = 0.0
        for e in edges:
            w = game.graph.weight(*e)
            b = subsidies.get(e, 0.0) if subsidies else 0.0
            total += max(0.0, w - b) / usage[e]
        costs.append(total)
    return costs


def check_strong_equilibrium(
    state: State,
    max_coalition: int = 2,
    subsidies: Optional[Subsidies] = None,
    tol: float = EQ_TOL,
    max_paths_per_player: int = 200,
) -> StrongEquilibriumReport:
    """Exact k-strong equilibrium check by joint-path enumeration.

    Every coalition of size ≤ ``max_coalition`` is tested against every
    combination of ≤ ``max_paths_per_player`` simple paths per member.
    Exponential — use on small instances (that is where the interesting
    examples live; see ``exp_extensions``).
    """
    game = state.game
    candidate_paths: Dict[int, List[Tuple[Edge, ...]]] = {}
    node_paths: Dict[int, List[List[Node]]] = {}
    for i, p in enumerate(game.players):
        node_paths[i] = [
            nodes
            for nodes in enumerate_simple_paths(
                game.graph, p.source, p.target, max_paths=max_paths_per_player
            )
        ]
        candidate_paths[i] = [_path_nodes_to_edges(nodes) for nodes in node_paths[i]]

    checked = 0
    for k in range(1, max_coalition + 1):
        for members in combinations(range(game.n_players), k):
            checked += 1
            old_costs = [state.player_cost(i, subsidies) for i in members]
            for pick in product(*(range(len(candidate_paths[i])) for i in members)):
                new_edges = [candidate_paths[m][j] for m, j in zip(members, pick)]
                if all(
                    new_edges[idx] == state.edge_paths[m]
                    for idx, m in enumerate(members)
                ):
                    continue
                new_costs = _joint_costs(state, members, new_edges, subsidies)
                if all(
                    is_improvement(nc, oc, tol)
                    for nc, oc in zip(new_costs, old_costs)
                ):
                    return StrongEquilibriumReport(
                        False,
                        max_coalition,
                        CoalitionDeviation(
                            members,
                            [node_paths[m][j] for m, j in zip(members, pick)],
                            old_costs,
                            new_costs,
                        ),
                        checked,
                    )
    return StrongEquilibriumReport(True, max_coalition, None, checked)
