"""Result containers for experiments.

Every experiment driver (``exp_*.run``) returns an
:class:`ExperimentResult`: a one-line *headline* comparing the paper's
claim against the measured value, a table of rows backing it, and optional
notes.  The CLI renders it with :meth:`ExperimentResult.to_text`; the sweep
runtime round-trips it as JSON (:meth:`to_json` / :meth:`from_json`) so
cached and cross-process runs reproduce the exact report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional


def _jsonify(value: object) -> object:
    """Coerce one table value to a JSON-safe equivalent.

    Rows may carry numpy scalars (measurements) or exotic exact types
    (``Fraction`` in the hardness experiments); numbers map to Python
    numbers, everything else degrades to ``str`` — tables are a display
    surface, so display fidelity is the contract.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    try:
        import numpy as np

        if isinstance(value, np.integer):
            return int(value)
        if isinstance(value, (np.floating, np.bool_)):
            return value.item()
    except ImportError:  # pragma: no cover - numpy is a hard dependency
        pass
    return str(value)


@dataclass
class ExperimentResult:
    """One experiment's output: a headline claim plus a table of rows."""

    experiment_id: str
    title: str
    #: one-line paper-vs-measured statement
    headline: str
    #: table rows; all rows share a key set (column order = first row's)
    rows: List[Dict[str, object]] = field(default_factory=list)
    notes: Optional[str] = None
    elapsed_seconds: float = 0.0

    def columns(self) -> List[str]:
        return list(self.rows[0].keys()) if self.rows else []

    def to_text(self) -> str:
        from repro.experiments.tables import render_table

        parts = [f"[{self.experiment_id}] {self.title}", self.headline]
        if self.rows:
            parts.append(render_table(self.rows))
        if self.notes:
            parts.append(self.notes)
        parts.append(f"(elapsed: {self.elapsed_seconds:.2f}s)")
        return "\n".join(parts)

    def to_json(self) -> Dict[str, Any]:
        """Plain-data form for caching and process boundaries."""
        return {
            "kind": "experiment-result",
            "experiment_id": self.experiment_id,
            "title": self.title,
            "headline": self.headline,
            "rows": [
                {str(k): _jsonify(v) for k, v in row.items()} for row in self.rows
            ],
            "notes": self.notes,
            "elapsed_seconds": self.elapsed_seconds,
        }

    @classmethod
    def from_json(cls, data: Mapping[str, Any]) -> "ExperimentResult":
        """Inverse of :meth:`to_json` (table values may have become str)."""
        if data.get("kind") != "experiment-result":
            raise ValueError(
                f"expected kind 'experiment-result', got {data.get('kind')!r}"
            )
        return cls(
            experiment_id=data["experiment_id"],
            title=data["title"],
            headline=data["headline"],
            rows=[dict(row) for row in data.get("rows", [])],
            notes=data.get("notes"),
            elapsed_seconds=data.get("elapsed_seconds", 0.0),
        )
