"""Scale tier: indexed scenario builders, IndexedTree, approximate solvers.

Covers the anytime/approximate subsidy stack end to end:

* the array-native scenario builders reproduce the legacy ``Graph``
  builders draw for draw (label-level ``(u, v, w)`` triples identical);
* :class:`~repro.graphs.indexed_tree.IndexedTree` agrees with the
  dict-based :class:`~repro.graphs.tree.RootedTree` on depths, LCAs,
  subtree loads and root-path prefix sums;
* the greedy/primal-dual solvers emit *valid* gap certificates
  (``lower_bound <= exact optimum <= budget``) on every game family, with
  fast/cold parity and primal-dual convergence to the exact LP subsidies;
* anytime stopping (deadline / target gap / max rounds) always returns a
  feasible, verified assignment;
* the CLI / serve surfaces: ``--anytime`` knobs, peak-RSS metadata,
  ``engine_*`` / ``anytime_*`` daemon counters.
"""

import json

import numpy as np
import pytest

from repro import api
from repro.cli import main
from repro.games import BroadcastGame, check_equilibrium
from repro.games.directed import DirectedNetworkDesignGame
from repro.games.game import NetworkDesignGame
from repro.games.multicast import MulticastGame
from repro.games.weighted import WeightedNetworkDesignGame
from repro.graphs.core import IndexedGraph
from repro.graphs.generators import random_tree_plus_chords
from repro.graphs.graph import canonical_edge
from repro.graphs.indexed_tree import IndexedTree
from repro.graphs.mst import kruskal_mst, kruskal_mst_ids
from repro.graphs.tree import RootedTree
from repro.scenarios import build_scenario, build_scenario_indexed
from repro.subsidies import (
    SubsidyAssignment,
    lagrangian_lower_bound,
    solve_sne_cutting_plane_lp1,
    solve_sne_greedy,
    solve_sne_greedy_indexed,
    solve_sne_primal_dual,
)
from repro.utils.resources import peak_rss_bytes
from repro.utils.rng import ensure_rng


# ---------------------------------------------------------------------------
# the RNG contract the vectorized builders rely on
# ---------------------------------------------------------------------------


class TestUniformVectorizationContract:
    def test_batched_uniform_equals_scalar_draws(self):
        a = ensure_rng(42).uniform(0.75, 1.25, size=64)
        rng = ensure_rng(42)
        b = np.array([float(rng.uniform(0.75, 1.25)) for _ in range(64)])
        assert a.tolist() == b.tolist()


# ---------------------------------------------------------------------------
# indexed scenario builders == legacy Graph builders, draw for draw
# ---------------------------------------------------------------------------


def _label_triples_graph(g):
    return {(canonical_edge(u, v), w) for u, v, w in g.edges()}


def _label_triples_indexed(ig):
    return {
        (canonical_edge(u, v), w)
        for u, v, w in zip(
            ig.edge_u.tolist(), ig.edge_v.tolist(), ig.edge_weights.tolist()
        )
    }


SCENARIO_CASES = [
    ("grid", dict(n=17, seed=3)),
    ("grid", dict(n=17, seed=3, jitter=0.0)),
    ("hypercube", dict(n=40, seed=5)),
    ("augmented-cube", dict(n=33, seed=9)),
    ("power-law", dict(n=30, seed=11, m=3)),
    ("power-law", dict(n=24, seed=4)),
    ("isp-like", dict(n=25, seed=2, hubs=5)),
    ("isp-like", dict(n=40, seed=8)),
    ("lower-bound-cycle", dict(n=12, seed=0)),
    ("lower-bound-cycle", dict(n=13, seed=0, shape="wheel")),
]


class TestIndexedBuildersMatchLegacy:
    @pytest.mark.parametrize("name,kwargs", SCENARIO_CASES)
    def test_same_label_triples(self, name, kwargs):
        game = build_scenario(name, **kwargs)
        inst = build_scenario_indexed(name, **kwargs)
        assert _label_triples_graph(game.graph) == _label_triples_indexed(inst.ig)
        assert game.graph.num_nodes == inst.num_nodes
        assert inst.root == 0 and inst.name == name

    def test_weights_bitwise_identical(self):
        game = build_scenario("isp-like", n=120, seed=7)
        inst = build_scenario_indexed("isp-like", n=120, seed=7)
        assert sorted(w for _, _, w in game.graph.edges()) == sorted(
            inst.ig.edge_weights.tolist()
        )

    def test_rejects_non_broadcast_games(self):
        with pytest.raises(ValueError, match="broadcast"):
            build_scenario_indexed("grid", n=9, game="weighted")
        with pytest.raises(ValueError, match="not supported at scale"):
            build_scenario_indexed("grid", n=9, terminals="half")

    def test_rejects_unknown_params(self):
        with pytest.raises(ValueError, match="unknown parameter"):
            build_scenario_indexed("grid", n=9, radius=0.5)

    def test_large_instance_is_lean(self):
        inst = build_scenario_indexed("grid", n=50_000, seed=1)
        assert inst.num_nodes == 50_000
        # identity labels, int32 CSR, no label dicts materialized
        assert isinstance(inst.ig.labels, range)
        assert inst.ig.neighbors.dtype == np.int32
        assert inst.ig._edge_labels is None and inst.ig._id_of is None


# ---------------------------------------------------------------------------
# IndexedGraph.from_arrays lazy surfaces
# ---------------------------------------------------------------------------


class TestFromArrays:
    def test_round_trip_and_lazy_labels(self):
        ig = IndexedGraph.from_arrays(
            4, [0, 1, 2, 0], [1, 2, 3, 3], [1.0, 2.0, 3.0, 4.0]
        )
        assert ig.num_nodes == 4 and ig.num_edges == 4
        assert ig.edge_labels == [(0, 1), (1, 2), (2, 3), (0, 3)]
        assert ig.id_of(2) == 2
        assert ig.edge_id(3, 0) == 3
        assert ig.has_label(3) and not ig.has_label(4)

    def test_validation(self):
        with pytest.raises(ValueError, match="out of range"):
            IndexedGraph.from_arrays(2, [0], [2], [1.0])
        with pytest.raises(ValueError, match="self-loop"):
            IndexedGraph.from_arrays(2, [1], [1], [1.0])
        with pytest.raises(ValueError, match="duplicate"):
            IndexedGraph.from_arrays(2, [0, 1], [1, 0], [1.0, 2.0])

    def test_dijkstra_agrees_with_interned_snapshot(self):
        g = random_tree_plus_chords(30, 15, seed=5, chord_factor=1.2)
        ig_legacy = g.to_indexed()
        triples = [(u, v, w) for u, v, w in g.edges()]
        ig_new = IndexedGraph.from_arrays(
            g.num_nodes,
            [u for u, _, _ in triples],
            [v for _, v, _ in triples],
            [w for _, _, w in triples],
        )
        from repro.graphs.core import dijkstra_indexed

        d_legacy = dijkstra_indexed(ig_legacy, ig_legacy.id_of(0))[0]
        d_new = dijkstra_indexed(ig_new, 0)[0]
        by_label_legacy = {ig_legacy.labels[i]: d_legacy[i] for i in range(30)}
        assert {i: d_new[i] for i in range(30)} == pytest.approx(by_label_legacy)


class TestKruskalIds:
    def test_matches_label_level_kruskal(self):
        g = random_tree_plus_chords(40, 25, seed=9, chord_factor=1.1)
        ig = g.to_indexed()
        eids = kruskal_mst_ids(ig)
        labels = {canonical_edge(*ig.edge_labels[e]) for e in eids.tolist()}
        assert labels == {canonical_edge(u, v) for u, v in kruskal_mst(g)}

    def test_disconnected_raises(self):
        ig = IndexedGraph.from_arrays(4, [0, 2], [1, 3], [1.0, 1.0])
        with pytest.raises(ValueError, match="disconnected"):
            kruskal_mst_ids(ig)


# ---------------------------------------------------------------------------
# IndexedTree vs RootedTree
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def tree_pair():
    g = random_tree_plus_chords(40, 20, seed=13, chord_factor=1.3)
    ig = g.to_indexed()
    eids = kruskal_mst_ids(ig)
    itree = IndexedTree(ig, ig.id_of(0), eids)
    rtree = RootedTree(0, [ig.edge_labels[e] for e in eids.tolist()])
    return g, ig, itree, rtree


class TestIndexedTree:
    def test_depths_and_parents(self, tree_pair):
        g, ig, itree, rtree = tree_pair
        for u in g.nodes:
            uid = ig.id_of(u)
            assert itree.depth[uid] == len(rtree.path_to_root(u))

    def test_batch_lca(self, tree_pair):
        g, ig, itree, rtree = tree_pair
        rng = ensure_rng(3)
        us = rng.integers(0, 40, size=200)
        vs = rng.integers(0, 40, size=200)
        got = itree.lca(us, vs)
        for a, b, l in zip(us.tolist(), vs.tolist(), got.tolist()):
            assert ig.labels[l] == rtree.lca(ig.labels[a], ig.labels[b])

    def test_prefix_sums_match_root_paths(self, tree_pair):
        g, ig, itree, rtree = tree_pair
        prefix = itree.prefix_sum_edges(ig.edge_weights)
        for u in g.nodes:
            expect = sum(g.weight(a, b) for a, b in rtree.path_to_root(u))
            assert prefix[ig.id_of(u)] == pytest.approx(expect)

    def test_edge_loads_count_players_below(self, tree_pair):
        g, ig, itree, rtree = tree_pair
        loads = itree.edge_loads()
        for eid in itree.tree_eids.tolist():
            edge = canonical_edge(*ig.edge_labels[eid])
            expect = sum(
                1
                for u in g.nodes
                if u != 0
                and edge in {canonical_edge(a, b) for a, b in rtree.path_to_root(u)}
            )
            assert loads[eid] == pytest.approx(expect)

    def test_non_spanning_edges_raise(self, tree_pair):
        _, ig, itree, _ = tree_pair
        with pytest.raises(ValueError, match="n - 1"):
            IndexedTree(ig, 0, itree.tree_eids[:-1])
        bad = itree.tree_eids.copy()
        bad[-1] = bad[0]  # duplicate edge: no longer spanning
        with pytest.raises(ValueError):
            IndexedTree(ig, 0, bad)


# ---------------------------------------------------------------------------
# certified gaps on every game family (the property-test satellite)
# ---------------------------------------------------------------------------


def _family_zoo():
    g = random_tree_plus_chords(14, 7, seed=3, chord_factor=1.1)
    others = [u for u in g.nodes if u != 0]
    demands = [1.0 + (i % 3) * 0.5 for i in range(6)]
    return {
        "broadcast": BroadcastGame(g, root=0),
        "multicast": MulticastGame(g, 0, others[:5]),
        "general": NetworkDesignGame(g, [(u, 0) for u in others[:6]]),
        "weighted": WeightedNetworkDesignGame(
            g, [(u, 0) for u in others[:6]], demands
        ),
        "directed": DirectedNetworkDesignGame(g, [(u, 0) for u in others[:6]]),
    }


@pytest.fixture(scope="module")
def zoo_states():
    return {name: game.default_state() for name, game in _family_zoo().items()}


class TestCertifiedGaps:
    @pytest.mark.parametrize("family", sorted(_family_zoo()))
    def test_greedy_brackets_exact_optimum(self, family, zoo_states):
        state = zoo_states[family]
        exact = solve_sne_cutting_plane_lp1(state)
        greedy = solve_sne_greedy(state)
        assert greedy.feasible and greedy.verified
        cert = greedy.certificate
        assert cert.lower_bound >= 0.0
        # greedy_budget - lower_bound >= 0, and the interval brackets OPT
        assert greedy.cost - cert.lower_bound >= -1e-9
        assert cert.lower_bound <= exact.cost + 1e-6
        assert exact.cost <= greedy.cost + 1e-6
        assert cert.gap == pytest.approx(cert.upper_bound - cert.lower_bound)

    @pytest.mark.parametrize("family", sorted(_family_zoo()))
    def test_greedy_fast_cold_parity(self, family, zoo_states):
        state = zoo_states[family]
        fast = solve_sne_greedy(state, fast=True)
        cold = solve_sne_greedy(state, fast=False)
        assert dict(fast.subsidies.items()) == dict(cold.subsidies.items())
        assert fast.verified == cold.verified

    def test_zoo_is_nontrivial(self, zoo_states):
        """At least one family needs a strictly positive budget."""
        budgets = [
            solve_sne_cutting_plane_lp1(state).cost
            for state in zoo_states.values()
        ]
        assert max(budgets) > 0.0


class TestPrimalDual:
    @pytest.mark.parametrize("family", sorted(_family_zoo()))
    def test_converges_to_exact_subsidies(self, family, zoo_states):
        state = zoo_states[family]
        exact = solve_sne_cutting_plane_lp1(state)
        pd = solve_sne_primal_dual(state)
        assert pd.optimal and pd.certificate.kind == "exact"
        assert pd.certificate.relative_gap == 0.0
        assert dict(pd.subsidies.items()) == dict(exact.subsidies.items())

    def test_anytime_iterates_are_monotone(self, zoo_states):
        pd = solve_sne_primal_dual(zoo_states["broadcast"], anytime=True)
        log = pd.anytime
        assert log is not None and log.stopped == "converged"
        ubs = [ub for _, ub, _ in log.iterates]
        lbs = [lb for _, _, lb in log.iterates]
        assert all(a >= b - 1e-9 for a, b in zip(ubs, ubs[1:]))
        assert all(a <= b + 1e-9 for a, b in zip(lbs, lbs[1:]))
        assert ubs[-1] == pytest.approx(pd.cost)

    def test_max_rounds_stop_is_feasible(self, zoo_states):
        pd = solve_sne_primal_dual(zoo_states["broadcast"], max_rounds=1)
        assert pd.feasible and pd.verified
        assert pd.anytime is None  # no anytime flag -> no log
        assert pd.certificate.kind in ("lp-relaxation", "exact")
        assert pd.cost >= pd.certificate.lower_bound - 1e-9

    def test_target_gap_stop(self, zoo_states):
        pd = solve_sne_primal_dual(
            zoo_states["broadcast"], anytime=True, target_gap=0.99
        )
        assert pd.feasible and pd.verified
        assert pd.anytime.stopped in ("target-gap", "converged")

    def test_deadline_stop(self, zoo_states):
        pd = solve_sne_primal_dual(
            zoo_states["broadcast"], anytime=True, deadline=0.0
        )
        assert pd.feasible and pd.verified
        assert pd.anytime.stopped == "deadline"


# ---------------------------------------------------------------------------
# the indexed (memory-lean) greedy solver
# ---------------------------------------------------------------------------


class TestIndexedGreedy:
    def test_certified_and_nash_on_broadcast(self):
        game = build_scenario("grid", n=30, seed=5)
        state = game.mst_state()
        exact = solve_sne_cutting_plane_lp1(state)

        ig = game.graph.to_indexed()
        res = solve_sne_greedy_indexed(ig, ig.id_of(game.root))
        assert res.feasible and res.verified
        assert res.certificate.lower_bound <= exact.cost + 1e-6
        assert exact.cost <= res.cost + 1e-6

        values = {
            canonical_edge(*ig.edge_labels[e]): float(res.subsidy_vector[e])
            for e in np.nonzero(res.subsidy_vector)[0].tolist()
        }
        sub = SubsidyAssignment(game.graph, values)
        assert check_equilibrium(state, sub).is_equilibrium

    def test_scale_instance_end_to_end(self):
        inst = build_scenario_indexed("grid", n=2_000, seed=2)
        res = solve_sne_greedy_indexed(inst.ig, inst.root, anytime=True)
        assert res.feasible and res.verified
        assert res.anytime is not None and res.anytime.iterates
        assert 0.0 <= res.certificate.lower_bound <= res.cost + 1e-9
        assert res.num_incidences > 0

    def test_deadline_bailout_is_always_feasible(self):
        inst = build_scenario_indexed("power-law", n=500, seed=6)
        res = solve_sne_greedy_indexed(inst.ig, inst.root, anytime=True, deadline=0.0)
        assert res.feasible and res.verified
        assert res.anytime.stopped == "deadline"
        assert res.cost <= inst.ig.edge_weights.sum() + 1e-9


class TestLagrangianBound:
    def test_single_row_exact(self):
        # one constraint b/1 >= 1 with w = 2: the optimum is b = 1
        bound, lam = lagrangian_lower_bound(
            np.array([2.0]), np.array([1.0]), 1.0
        )
        assert bound == pytest.approx(1.0)
        assert lam > 0.0

    def test_zero_deficit_is_zero(self):
        bound, lam = lagrangian_lower_bound(np.array([2.0]), np.array([1.0]), 0.0)
        assert bound == 0.0 and lam == 0.0


# ---------------------------------------------------------------------------
# surfaces: serve daemon counters, CLI anytime knobs, peak-RSS metadata
# ---------------------------------------------------------------------------


class TestServeCounters:
    def test_engine_and_anytime_sections(self):
        from repro.serve.service import ServeConfig, SolverService

        svc = SolverService(ServeConfig(cache=False))
        payload = api.serialize.game_to_json(build_scenario("grid", n=12, seed=7))
        body = svc.solve_json(
            {
                "instance": payload,
                "solver": "approx-primal-dual",
                "opts": {"anytime": True},
            }
        )
        report = json.loads(body)
        assert report["metadata"]["anytime"]["stopped"] == "converged"
        svc.solve_json({"instance": payload, "solver": "sne-cutting-plane"})
        stats = json.loads(svc.stats_json())
        assert stats["engine"]["cut_rounds"] >= 1
        assert stats["engine"]["dijkstra_calls"] >= 1
        assert stats["anytime"]["solves"] == 1
        assert stats["anytime"]["iterates"] >= 1
        assert stats["anytime"]["stopped_converged"] == 1


@pytest.fixture()
def grid_instance_file(tmp_path, capsys):
    path = tmp_path / "grid.json"
    assert (
        main(
            ["gen", "--family", "grid", "--n", "12", "--seed", "7",
             "--out", str(path)]
        )
        == 0
    )
    # streaming gen with --out writes the file only — no stdout echo
    assert capsys.readouterr().out == ""
    assert json.loads(path.read_text())["kind"] == "instance-set"
    return path


class TestCLIScaleKnobs:
    def test_anytime_flags_reach_the_solver(self, grid_instance_file, capsys):
        rc = main(
            ["solve", str(grid_instance_file), "--solver", "approx-primal-dual",
             "--anytime", "--target-gap", "0.99", "--json"]
        )
        assert rc == 0
        report = json.loads(capsys.readouterr().out)
        meta = report["metadata"]
        assert meta["anytime"]["stopped"] in ("target-gap", "converged")
        assert meta["certificate"]["lower_bound"] >= 0.0
        assert meta["peak_rss_bytes"] > 0

    def test_canonical_output_has_no_rss(self, grid_instance_file, capsys):
        rc = main(
            ["solve", str(grid_instance_file), "--solver", "approx-greedy",
             "--json", "--canonical"]
        )
        assert rc == 0
        report = json.loads(capsys.readouterr().out)
        assert "peak_rss_bytes" not in report["metadata"]
        assert report["wall_clock_seconds"] == 0.0

    def test_peak_rss_helper_is_positive_here(self):
        assert peak_rss_bytes() > 0
