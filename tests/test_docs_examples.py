"""The documentation executes: README/docs quickstarts and example doctests.

Documentation that is not executed rots.  These tests run

* every fenced ``python`` block of README.md and docs/index.md, top to
  bottom in one shared namespace (the pages are written to chain),
* the ``>>>`` usage examples in the five ``examples/*.py`` headers,
* the docsite builder in strict mode (zero warnings, no broken links).
"""

import doctest
import importlib.util
import re
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent

_FENCE = re.compile(r"```python\n(.*?)```", re.DOTALL)


def python_blocks(path: Path):
    return _FENCE.findall(path.read_text())


def exec_blocks_chained(path: Path):
    namespace: dict = {}
    blocks = python_blocks(path)
    assert blocks, f"{path.name} has no ```python blocks"
    for i, block in enumerate(blocks):
        try:
            exec(compile(block, f"{path.name}[block {i}]", "exec"), namespace)
        except Exception as exc:  # pragma: no cover - failure reporting
            pytest.fail(f"{path.name} python block {i} failed: {exc!r}\n{block}")


class TestQuickstartSnippets:
    @pytest.fixture(autouse=True)
    def isolated_cache(self, tmp_path, monkeypatch):
        # snippets may opt into the default cache dir; keep it out of $HOME
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))

    def test_readme_blocks_execute(self, capsys):
        exec_blocks_chained(REPO / "README.md")

    def test_docs_index_blocks_execute(self, capsys):
        exec_blocks_chained(REPO / "docs" / "index.md")


EXAMPLES = sorted((REPO / "examples").glob("*.py"))


class TestExampleHeaderDoctests:
    @pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
    def test_header_doctest(self, path):
        spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        assert module.__doc__ and ">>>" in module.__doc__, (
            f"{path.name} header needs a doctested usage example"
        )
        results = doctest.testmod(module, verbose=False)
        assert results.attempted > 0
        assert results.failed == 0


class TestDocsiteBuild:
    def test_strict_build_passes(self, tmp_path, capsys):
        spec = importlib.util.spec_from_file_location(
            "docsite", REPO / "tools" / "docsite.py"
        )
        docsite = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(docsite)
        code = docsite.main(["build", "--strict", "--out", str(tmp_path / "site")])
        assert code == 0, "docsite build produced warnings (see stderr)"
        site = tmp_path / "site"
        for page in ("index", "architecture", "reproducing", "runtime"):
            assert (site / f"{page}.html").is_file()
        # one generated reference page per subpackage, runtime included
        assert (site / "api" / "repro.runtime.html").is_file()
        assert len(list((site / "api").glob("*.html"))) == 1 + len(
            docsite.API_PACKAGES
        )
