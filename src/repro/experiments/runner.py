"""Experiment registry and drivers (ids match DESIGN.md / EXPERIMENTS.md)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.utils.timing import Timer

from repro.experiments.records import ExperimentResult
from repro.experiments import (
    exp_ablation,
    exp_aon_lower_bound,
    exp_binpacking,
    exp_bypass,
    exp_extensions,
    exp_independent_set,
    exp_lower_bound_cycle,
    exp_lp_agreement,
    exp_pos_potential,
    exp_sat_reduction,
    exp_snd,
    exp_theorem6,
    exp_virtual_cost,
)

#: experiment id -> run(seed=...) callable
EXPERIMENTS: Dict[str, Callable[..., ExperimentResult]] = {
    "E1": exp_lp_agreement.run,
    "E2": exp_theorem6.run,
    "E3": exp_lower_bound_cycle.run,
    "E4": exp_aon_lower_bound.run,
    "E5": exp_bypass.run,
    "E6": exp_binpacking.run,
    "E7": exp_independent_set.run,
    "E8": exp_sat_reduction.run,
    "E9": exp_pos_potential.run,
    "E10": exp_virtual_cost.run,
    "E11": exp_snd.run,
    "A1": exp_ablation.run,
    "A2": exp_extensions.run,
}


def run_experiment(experiment_id: str, seed: int = 0) -> ExperimentResult:
    """Run one experiment by id (raises KeyError for unknown ids)."""
    key = experiment_id.upper()
    if key not in EXPERIMENTS:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; known: {', '.join(EXPERIMENTS)}"
        )
    return EXPERIMENTS[key](seed=seed)


def run_all(seed: int = 0) -> List[ExperimentResult]:
    """Run every experiment in id order (aborts on the first failure)."""
    return [EXPERIMENTS[k](seed=seed) for k in EXPERIMENTS]


@dataclass
class SweepItem:
    """Outcome of one experiment inside a failure-tolerant sweep."""

    experiment_id: str
    result: Optional[ExperimentResult]
    error: Optional[BaseException]
    elapsed_seconds: float

    @property
    def ok(self) -> bool:
        return self.error is None


def sweep_summary(items: List[SweepItem], seed: int = 0) -> dict:
    """Machine-readable summary of a tolerant sweep.

    The CLI writes this next to the human table (``run all --json-out``) so
    dashboards and CI can consume per-experiment status and wall time without
    scraping text.
    """
    return {
        "kind": "experiment-sweep-summary",
        "seed": seed,
        "passed": sum(1 for item in items if item.ok),
        "failed": sum(1 for item in items if not item.ok),
        "total_seconds": sum(item.elapsed_seconds for item in items),
        "experiments": [
            {
                "id": item.experiment_id,
                "ok": item.ok,
                "seconds": item.elapsed_seconds,
                "headline": item.result.headline if item.ok and item.result else None,
                "error": (
                    f"{type(item.error).__name__}: {item.error}"
                    if item.error is not None
                    else None
                ),
            }
            for item in items
        ],
    }


def run_all_tolerant(seed: int = 0) -> List[SweepItem]:
    """Run every experiment, continuing past failures.

    Each item records the per-experiment wall-clock time and, when the
    experiment raised, the exception instead of a result.  The CLI uses
    this for ``run all`` so one broken experiment cannot hide the rest.
    """
    items: List[SweepItem] = []
    for key in EXPERIMENTS:
        with Timer() as t:
            try:
                result, error = EXPERIMENTS[key](seed=seed), None
            except Exception as exc:  # noqa: BLE001 - sweep must survive anything
                result, error = None, exc
        items.append(SweepItem(key, result, error, t.elapsed))
    return items
