PYTHON ?= python
export PYTHONPATH := src

.PHONY: docs test bench sweep-demo serve clean-docs

## build the documentation site (mkdocs when installed, else the
## zero-dependency fallback builder; both fail on warnings/broken links)
docs:
	@if $(PYTHON) -c "import mkdocs" 2>/dev/null; then \
		$(PYTHON) -m mkdocs build --strict; \
	fi
	$(PYTHON) tools/docsite.py build --strict

test:
	$(PYTHON) -m pytest -x -q

bench:
	$(PYTHON) -m pytest -q --benchmark-disable benchmarks/bench_*.py

## the persistent solver daemon in the foreground (Ctrl-C stops it);
## talk to it with repro.serve.ServeClient or plain HTTP on :8350
serve:
	$(PYTHON) -m repro.cli serve --port 8350 --workers 4

## a tiny end-to-end sweep: run it twice to watch the cache work
sweep-demo:
	$(PYTHON) -m repro.cli sweep --solver sne-lp3 --solver theorem6 \
		--model tree-chords --n 16 --count 2 --jobs 2

clean-docs:
	rm -rf docs/_build
