"""LP problem and result containers.

The canonical form used throughout the library is::

    minimize    c . x
    subject to  A_ub x <= b_ub
                lower <= x <= upper   (elementwise, optionally infinite)

which is exactly what both backends consume.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

#: cached ``(version, n_rows, rows_id, A_ub, b_ub)`` — see
#: :meth:`LinearProgram.matrices`
_MatCache = Optional[Tuple[int, int, int, np.ndarray, np.ndarray]]


class LPStatus(enum.Enum):
    """Solver outcome."""

    OPTIMAL = "optimal"
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"
    ITERATION_LIMIT = "iteration_limit"


@dataclass
class LPResult:
    """Outcome of an LP solve: status, primal point and objective value."""

    status: LPStatus
    x: Optional[np.ndarray] = None
    objective: Optional[float] = None

    @property
    def ok(self) -> bool:
        return self.status is LPStatus.OPTIMAL


@dataclass
class LinearProgram:
    """A dense LP in canonical ``min c.x : A x <= b, l <= x <= u`` form.

    Rows are appended incrementally (the cutting-plane driver does this), so
    the matrix is materialized lazily via :meth:`matrices`.
    """

    n_vars: int
    c: np.ndarray
    rows: List[np.ndarray] = field(default_factory=list)
    rhs: List[float] = field(default_factory=list)
    lower: Optional[np.ndarray] = None
    upper: Optional[np.ndarray] = None
    _mat_cache: _MatCache = field(default=None, init=False, repr=False, compare=False)
    #: bumped on every mutation made through the construction API; part of
    #: the cache key so interleaved mutate/solve sequences (e.g. solving
    #: with one backend, adding a cut, solving with another) can never be
    #: served a stale compilation even when the row count ends up equal
    _version: int = field(default=0, init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        self.c = np.asarray(self.c, dtype=float)
        if self.c.shape != (self.n_vars,):
            raise ValueError(f"objective has shape {self.c.shape}, expected ({self.n_vars},)")
        if self.lower is None:
            self.lower = np.zeros(self.n_vars)
        else:
            self.lower = np.asarray(self.lower, dtype=float)
        if self.upper is None:
            self.upper = np.full(self.n_vars, np.inf)
        else:
            self.upper = np.asarray(self.upper, dtype=float)
        if np.any(self.lower > self.upper):
            raise ValueError("lower bound exceeds upper bound for some variable")

    def add_constraint(self, coeffs: Sequence[float] | np.ndarray, rhs: float) -> None:
        """Append the row ``coeffs . x <= rhs``."""
        row = np.asarray(coeffs, dtype=float)
        if row.shape != (self.n_vars,):
            raise ValueError(f"row has shape {row.shape}, expected ({self.n_vars},)")
        self.rows.append(row)
        self.rhs.append(float(rhs))
        self._version += 1
        self._mat_cache = None

    def add_sparse_constraint(self, entries: Sequence[Tuple[int, float]], rhs: float) -> None:
        """Append a row given as (index, coefficient) pairs."""
        row = np.zeros(self.n_vars)
        for idx, coef in entries:
            row[idx] += coef
        self.add_constraint(row, rhs)

    @property
    def n_constraints(self) -> int:
        return len(self.rows)

    def matrices(self) -> Tuple[np.ndarray, np.ndarray]:
        """Dense ``(A_ub, b_ub)``; zero-row matrix when unconstrained.

        The compiled pair is cached so callers that re-solve an unchanged
        program (the cutting-plane driver does, once per round before the
        oracle adds cuts) stop paying a dense re-materialization each
        time.  The cache key is the mutation version bumped by
        :meth:`add_constraint` plus the row count and the identity of the
        ``rows`` list, so any mutate-then-resolve ordering — including a
        backend swap right after a cut append, or replacing ``rows``
        wholesale — recompiles instead of serving stale matrices.  (An
        in-place element assignment like ``lp.rows[0] = r`` is outside the
        construction API and not detected; mutate through
        :meth:`add_constraint`.)  Treat the returned arrays as read-only —
        they are shared with later callers.
        """
        cached = self._mat_cache
        if (
            cached is not None
            and cached[0] == self._version
            and cached[1] == len(self.rows)
            and cached[2] == id(self.rows)
        ):
            return cached[3], cached[4]
        if not self.rows:
            A, b = np.zeros((0, self.n_vars)), np.zeros(0)
        else:
            A, b = np.vstack(self.rows), np.asarray(self.rhs, dtype=float)
        self._mat_cache = (self._version, len(self.rows), id(self.rows), A, b)
        return A, b
