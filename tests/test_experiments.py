"""Integration tests: every experiment runs and reports the paper's shape."""

import math

import pytest

from repro.experiments import EXPERIMENTS, run_experiment
from repro.experiments.records import ExperimentResult
from repro.experiments.tables import render_table


class TestHarness:
    def test_registry_complete(self):
        assert set(EXPERIMENTS) == {f"E{i}" for i in range(1, 12)} | {"A1", "A2", "S1"}

    def test_unknown_experiment(self):
        with pytest.raises(KeyError):
            run_experiment("E99")

    def test_case_insensitive(self):
        res = run_experiment("e10")
        assert res.experiment_id == "E10"

    def test_render_table(self):
        text = render_table([{"a": 1, "b": 2.5}, {"a": 10, "b": True}])
        lines = text.splitlines()
        assert lines[0].split() == ["a", "b"]
        assert "yes" in lines[3]

    def test_render_empty(self):
        assert render_table([]) == "(no rows)"

    def test_to_text(self):
        res = ExperimentResult("EX", "t", "h", rows=[{"x": 1}], notes="n")
        text = res.to_text()
        assert "[EX]" in text and "h" in text and "n" in text


class TestShapes:
    """Each experiment's headline claim, asserted on its actual rows."""

    def test_e1_agreement(self):
        res = run_experiment("E1")
        for row in res.rows:
            assert row["lp3_cost"] == pytest.approx(row["lp2_cost"], abs=1e-5)
            assert row["lp3_cost"] == pytest.approx(row["lp1_cost"], abs=1e-5)
            assert row["all_verified"]

    def test_e2_fraction_is_inverse_e(self):
        res = run_experiment("E2")
        for row in res.rows:
            assert row["fraction"] == pytest.approx(1 / math.e, rel=1e-6)
            assert row["lp_fraction"] <= row["fraction"] + 1e-6
            assert row["enforced"]

    def test_e3_monotone_toward_inverse_e(self):
        res = run_experiment("E3")
        fracs = [row["subsidy_fraction"] for row in res.rows]
        assert all(b >= a - 1e-12 for a, b in zip(fracs, fracs[1:]))
        assert fracs[-1] == pytest.approx(1 / math.e, abs=1e-4)

    def test_e4_aon_between_lp_and_limit(self):
        res = run_experiment("E4")
        limit = math.e / (2 * math.e - 1)
        for row in res.rows:
            if row["method"] == "exact B&B":
                assert row["aon_fraction"] == pytest.approx(row["closed_form"], abs=1e-6)
                assert row["aon_fraction"] > row["fractional_lp"]
        assert res.rows[-1]["aon_fraction"] == pytest.approx(limit, abs=1e-2)

    def test_e5_lemma4(self):
        res = run_experiment("E5")
        for row in res.rows:
            assert row["deviates"] == row["lemma4_predicts"]
            assert row["deviates"] == (row["beta"] < row["kappa"])

    def test_e6_equivalence(self):
        res = run_experiment("E6")
        assert all(row["matches_thm3"] for row in res.rows)
        assert any(not row["packing_solvable"] for row in res.rows)

    def test_e7_formula(self):
        res = run_experiment("E7")
        for row in res.rows:
            assert row["equilibrium"]
            assert row["weight"] == pytest.approx(row["5n/2-(1-d)m"])

    def test_e8_corollary20(self):
        res = run_experiment("E8")
        for row in res.rows:
            assert row["satisfiable"] == row["light_enforcement"]
        assert any(not row["satisfiable"] for row in res.rows)

    def test_e9_harmonic_bound(self):
        res = run_experiment("E9")
        for row in res.rows:
            assert row["converged"]
            assert row["ratio"] <= row["H_n"] + 1e-9

    def test_e10_claims(self):
        res = run_experiment("E10")
        for row in res.rows:
            assert row["claim8_holds"]
            if math.isfinite(row["virtual_cost"]):
                assert row["virtual_cost"] == pytest.approx(row["closed_form"])

    def test_a1_ablation_orderings(self):
        res = run_experiment("A1")
        for row in res.rows:
            if row["ablation"] == "packing rule":
                assert row["least_crowded"] < row["uniform"] < row["most_crowded"]
            else:
                assert row["penalty_most/least"] > 1.0

    def test_a2_extensions_all_ok(self):
        res = run_experiment("A2")
        assert all(row["ok"] for row in res.rows)
        weighted = [r["value"] for r in res.rows if r["extension"] == "weighted players"]
        assert weighted == sorted(weighted)  # subsidy bill grows with demand

    def test_e11_budget_monotonicity(self):
        res = run_experiment("E11")
        weights = [row["exact_weight"] for row in res.rows]
        assert all(b <= a + 1e-9 for a, b in zip(weights, weights[1:]))
        assert res.rows[-1]["mst_reached"]
        # The sweep must actually exercise the tradeoff.
        assert weights[0] > weights[-1]
        for row in res.rows:
            assert row["heuristic_weight"] >= row["exact_weight"] - 1e-9


class TestCLI:
    def test_list(self, capsys):
        from repro.cli import main

        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "E1" in out and "E11" in out

    def test_run_single(self, capsys):
        from repro.cli import main

        assert main(["run", "E10"]) == 0
        out = capsys.readouterr().out
        assert "[E10]" in out and "virtual" in out.lower()

    def test_run_unknown(self, capsys):
        from repro.cli import main

        assert main(["run", "E99"]) == 2

    def test_seed_flag(self, capsys):
        from repro.cli import main

        assert main(["run", "E5", "--seed", "3"]) == 0
