#!/usr/bin/env python3
"""Zero-dependency documentation site builder (the ``make docs`` fallback).

The docs tree under ``docs/`` is authored for mkdocs (``mkdocs.yml`` at the
repo root), but mkdocs is not a runtime dependency and is absent in minimal
environments — so this script builds the same site with nothing beyond the
standard library:

* renders the hand-written markdown pages to HTML (headings, fenced code,
  lists, tables, blockquotes, inline code/bold/italic/links),
* generates an API reference page per ``repro`` subpackage straight from
  the live docstrings (import, introspect, render),
* verifies every internal link resolves to a page and every public module
  has a docstring, reporting anything suspicious as a warning.

Usage::

    python tools/docsite.py build [--strict] [--out DIR]

``--strict`` (what CI runs) turns any warning into a non-zero exit.  The
site lands in ``docs/_build/site`` by default and is plain static HTML —
open ``index.html`` in a browser.
"""

from __future__ import annotations

import argparse
import html
import importlib
import inspect
import pkgutil
import re
import sys
from pathlib import Path
from typing import Dict, List, Optional, Tuple

REPO = Path(__file__).resolve().parent.parent
DOCS = REPO / "docs"
DEFAULT_OUT = DOCS / "_build" / "site"

#: the navigation, mirrored by mkdocs.yml — (title, docs-relative source)
NAV: List[Tuple[str, str]] = [
    ("Home", "index.md"),
    ("Architecture", "architecture.md"),
    ("Reproducing the paper", "reproducing.md"),
    ("Sweep runtime & cache", "runtime.md"),
    ("Distributed sweeps", "distributed.md"),
    ("Solver daemon", "serving.md"),
    ("Scenario library", "scenarios.md"),
    ("LP backends", "lp-backends.md"),
    ("Performance", "performance.md"),
    ("API reference", "api/index.md"),
]

#: subpackages that get a generated reference page (``api/<name>.md``)
API_PACKAGES = [
    "repro.api",
    "repro.runtime",
    "repro.serve",
    "repro.scenarios",
    "repro.graphs",
    "repro.games",
    "repro.subsidies",
    "repro.hardness",
    "repro.bounds",
    "repro.lp",
    "repro.experiments",
    "repro.utils",
]

CSS = """
:root { --fg:#1a1d21; --muted:#5c6570; --line:#e2e5e9; --accent:#0b61a4;
        --code-bg:#f5f6f8; }
* { box-sizing: border-box; }
body { margin:0; color:var(--fg); font:16px/1.6 system-ui, sans-serif; }
.layout { display:flex; min-height:100vh; }
nav { width:240px; flex:none; border-right:1px solid var(--line);
      padding:1.5rem 1rem; }
nav h2 { font-size:.95rem; margin:.2rem 0 1rem; }
nav a { display:block; color:var(--muted); text-decoration:none;
        padding:.25rem .5rem; border-radius:6px; font-size:.92rem; }
nav a.current, nav a:hover { color:var(--accent); background:var(--code-bg); }
nav .section { margin-top:1rem; font-size:.75rem; text-transform:uppercase;
               letter-spacing:.06em; color:var(--muted); }
main { flex:1; max-width:52rem; padding:2rem 3rem 4rem; }
h1,h2,h3 { line-height:1.25; }
h1 { border-bottom:1px solid var(--line); padding-bottom:.4rem; }
a { color:var(--accent); }
code { background:var(--code-bg); border-radius:4px; padding:.1em .35em;
       font:.88em ui-monospace, monospace; }
pre { background:var(--code-bg); border:1px solid var(--line);
      border-radius:8px; padding: .9rem 1.1rem; overflow-x:auto; }
pre code { background:none; padding:0; }
table { border-collapse:collapse; margin:1rem 0; font-size:.92rem; }
th,td { border:1px solid var(--line); padding:.35rem .7rem; text-align:left; }
th { background:var(--code-bg); }
blockquote { margin:1rem 0; padding:.2rem 1rem; border-left:3px solid
             var(--accent); color:var(--muted); }
.apimod { margin: 1.6rem 0; }
.apimod h3 { margin-bottom:.3rem; }
.sig { color:var(--muted); font-size:.88rem; }
""".strip()

PAGE = """<!DOCTYPE html>
<html lang="en"><head><meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>{title} — repro</title><style>{css}</style></head>
<body><div class="layout">
<nav><h2>repro docs</h2>{nav}</nav>
<main>{body}</main>
</div></body></html>
"""


class Warnings:
    def __init__(self) -> None:
        self.items: List[str] = []

    def add(self, msg: str) -> None:
        self.items.append(msg)
        print(f"WARNING: {msg}", file=sys.stderr)


# ---------------------------------------------------------------------------
# Markdown subset -> HTML
# ---------------------------------------------------------------------------

_INLINE_CODE = re.compile(r"`([^`]+)`")
_BOLD = re.compile(r"\*\*([^*]+)\*\*")
_ITALIC = re.compile(r"(?<![*\w])\*([^*]+)\*(?![*\w])")
_LINK = re.compile(r"\[([^\]]+)\]\(([^)\s]+)\)")


def slugify(text: str) -> str:
    return re.sub(r"[^a-z0-9]+", "-", text.lower()).strip("-")


def _inline(text: str, links: Optional[List[str]] = None) -> str:
    """Render inline markup; escaping first, then span substitutions."""
    out = html.escape(text, quote=False)

    def link(m: "re.Match[str]") -> str:
        label, target = m.group(1), m.group(2)
        if links is not None:
            links.append(target)
        return f'<a href="{html.escape(_to_html_href(target))}">{label}</a>'

    out = _INLINE_CODE.sub(lambda m: f"<code>{m.group(1)}</code>", out)
    out = _LINK.sub(link, out)
    out = _BOLD.sub(r"<strong>\1</strong>", out)
    out = _ITALIC.sub(r"<em>\1</em>", out)
    return out


def _to_html_href(target: str) -> str:
    """Internal ``x.md`` links become ``x.html`` in the built site."""
    if target.startswith(("http://", "https://", "mailto:", "#")):
        return target
    path, _, anchor = target.partition("#")
    if path.endswith(".md"):
        path = path[:-3] + ".html"
    return path + (f"#{anchor}" if anchor else "")


def render_markdown(text: str, links: Optional[List[str]] = None) -> Tuple[str, List[str]]:
    """Render the supported markdown subset; returns (html, heading slugs)."""
    lines = text.split("\n")
    out: List[str] = []
    anchors: List[str] = []
    i = 0
    in_list: Optional[str] = None  # "ul" | "ol"

    def close_list() -> None:
        nonlocal in_list
        if in_list:
            out.append(f"</{in_list}>")
            in_list = None

    while i < len(lines):
        line = lines[i]
        stripped = line.strip()

        if stripped.startswith("```"):
            close_list()
            fence: List[str] = []
            i += 1
            while i < len(lines) and not lines[i].strip().startswith("```"):
                fence.append(lines[i])
                i += 1
            i += 1  # closing fence
            body = html.escape("\n".join(fence), quote=False)
            out.append(f"<pre><code>{body}</code></pre>")
            continue

        heading = re.match(r"^(#{1,6})\s+(.*)$", stripped)
        if heading:
            close_list()
            level = len(heading.group(1))
            title = heading.group(2).strip()
            slug = slugify(title)
            anchors.append(slug)
            out.append(f'<h{level} id="{slug}">{_inline(title, links)}</h{level}>')
            i += 1
            continue

        if stripped in ("---", "***", "___"):
            close_list()
            out.append("<hr>")
            i += 1
            continue

        if stripped.startswith("|") and stripped.endswith("|"):
            close_list()
            rows: List[List[str]] = []
            while i < len(lines) and lines[i].strip().startswith("|"):
                cells = [c.strip() for c in lines[i].strip().strip("|").split("|")]
                if not all(re.fullmatch(r":?-{2,}:?", c or "-") for c in cells):
                    rows.append(cells)
                i += 1
            if rows:
                head = "".join(f"<th>{_inline(c, links)}</th>" for c in rows[0])
                body_rows = [
                    "<tr>" + "".join(f"<td>{_inline(c, links)}</td>" for c in r) + "</tr>"
                    for r in rows[1:]
                ]
                out.append(
                    f"<table><thead><tr>{head}</tr></thead>"
                    f"<tbody>{''.join(body_rows)}</tbody></table>"
                )
            continue

        bullet = re.match(r"^[-*]\s+(.*)$", stripped)
        ordered = re.match(r"^\d+\.\s+(.*)$", stripped)
        if bullet or ordered:
            kind = "ul" if bullet else "ol"
            if in_list != kind:
                close_list()
                out.append(f"<{kind}>")
                in_list = kind
            item = (bullet or ordered).group(1)  # type: ignore[union-attr]
            # continuation lines (indented) attach to the same item
            cont: List[str] = []
            while (
                i + 1 < len(lines)
                and lines[i + 1].startswith("  ")
                and lines[i + 1].strip()
                and not re.match(r"^[-*]\s|^\d+\.\s", lines[i + 1].strip())
            ):
                cont.append(lines[i + 1].strip())
                i += 1
            full = " ".join([item, *cont])
            out.append(f"<li>{_inline(full, links)}</li>")
            i += 1
            continue

        if stripped.startswith(">"):
            close_list()
            quote: List[str] = []
            while i < len(lines) and lines[i].strip().startswith(">"):
                quote.append(lines[i].strip().lstrip(">").strip())
                i += 1
            out.append(f"<blockquote><p>{_inline(' '.join(quote), links)}</p></blockquote>")
            continue

        if not stripped:
            close_list()
            i += 1
            continue

        # paragraph: greedily absorb plain continuation lines
        para = [stripped]
        while i + 1 < len(lines):
            nxt = lines[i + 1].strip()
            if (
                not nxt
                or nxt.startswith(("#", "```", "|", ">", "- ", "* "))
                or re.match(r"^\d+\.\s", nxt)
                or nxt in ("---", "***", "___")
            ):
                break
            para.append(nxt)
            i += 1
        out.append(f"<p>{_inline(' '.join(para), links)}</p>")
        i += 1

    close_list()
    return "\n".join(out), anchors


# ---------------------------------------------------------------------------
# API reference generation
# ---------------------------------------------------------------------------


_RST_ROLE = re.compile(r":[a-z]+:`~?([^`]+)`")
_RST_DOUBLE_BACKTICK = re.compile(r"``(.+?)``")


def _first_paragraph(doc: Optional[str]) -> str:
    """First docstring paragraph, with RST markup downgraded to markdown."""
    if not doc:
        return ""
    text = inspect.cleandoc(doc).split("\n\n")[0].replace("\n", " ")
    text = _RST_ROLE.sub(lambda m: f"`{m.group(1).rsplit('.', 1)[-1]}`", text)
    return _RST_DOUBLE_BACKTICK.sub(r"`\1`", text)


def _signature(obj: object) -> str:
    try:
        return str(inspect.signature(obj))  # type: ignore[arg-type]
    except (TypeError, ValueError):
        return "(…)"


def generate_api_page(package_name: str, warn: Warnings) -> str:
    """One markdown page documenting every module of ``package_name``."""
    package = importlib.import_module(package_name)
    md: List[str] = [f"# `{package_name}`", ""]
    intro = _first_paragraph(package.__doc__)
    if intro:
        md += [intro, ""]
    else:
        warn.add(f"package {package_name} has no docstring")

    module_names = [package_name]
    for info in pkgutil.iter_modules(package.__path__, prefix=f"{package_name}."):
        if not info.ispkg and not info.name.rsplit(".", 1)[-1].startswith("_"):
            module_names.append(info.name)
        elif info.ispkg:  # nested packages (repro.hardness.solvers)
            sub = importlib.import_module(info.name)
            module_names.append(info.name)
            for leaf in pkgutil.iter_modules(sub.__path__, prefix=f"{info.name}."):
                if not leaf.name.rsplit(".", 1)[-1].startswith("_"):
                    module_names.append(leaf.name)

    for name in module_names[1:] if len(module_names) > 1 else module_names:
        module = importlib.import_module(name)
        md += [f"## `{name}`", ""]
        doc = _first_paragraph(module.__doc__)
        if doc:
            md += [doc, ""]
        else:
            warn.add(f"module {name} has no docstring")
        members = []
        for attr, obj in sorted(vars(module).items()):
            if attr.startswith("_") or getattr(obj, "__module__", None) != name:
                continue
            if inspect.isclass(obj) or inspect.isfunction(obj):
                members.append((attr, obj))
        for attr, obj in members:
            kind = "class" if inspect.isclass(obj) else "def"
            summary = _first_paragraph(obj.__doc__)
            md.append(f"- **`{kind} {attr}{_signature(obj)}`** — {summary}")
        if members:
            md.append("")
    return "\n".join(md)


# ---------------------------------------------------------------------------
# Site assembly
# ---------------------------------------------------------------------------


def _nav_html(pages: List[Tuple[str, str]], current: str) -> str:
    items = []
    for title, src in pages:
        href = _to_html_href(_relpath(src, current))
        cls = ' class="current"' if src == current else ""
        items.append(f'<a{cls} href="{href}">{html.escape(title)}</a>')
    api_items = []
    for pkg in API_PACKAGES:
        src = f"api/{pkg}.md"
        href = _to_html_href(_relpath(src, current))
        cls = ' class="current"' if src == current else ""
        api_items.append(f'<a{cls} href="{href}"><code>{pkg}</code></a>')
    return (
        "".join(items)
        + '<div class="section">Reference</div>'
        + "".join(api_items)
    )


def _relpath(target: str, current: str) -> str:
    depth = current.count("/")
    return "../" * depth + target


def build(out_dir: Path, strict: bool) -> int:
    warn = Warnings()
    sys.path.insert(0, str(REPO / "src"))

    sources: Dict[str, str] = {}
    for title, src in NAV:
        path = DOCS / src
        if not path.is_file():
            warn.add(f"nav entry {src!r} does not exist under docs/")
            continue
        sources[src] = path.read_text()
    for pkg in API_PACKAGES:
        sources[f"api/{pkg}.md"] = generate_api_page(pkg, warn)

    rendered: Dict[str, Tuple[str, List[str], List[str]]] = {}
    page_anchors: Dict[str, List[str]] = {}
    for src, text in sources.items():
        links: List[str] = []
        body, anchors = render_markdown(text, links)
        rendered[src] = (body, anchors, links)
        page_anchors[src] = anchors

    # link check: every internal target must be a known page (+ anchor)
    for src, (_, _, links) in rendered.items():
        for target in links:
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            path, _, anchor = target.partition("#")
            if not path:  # same-page anchor
                if anchor and anchor not in page_anchors[src]:
                    warn.add(f"{src}: broken anchor #{anchor}")
                continue
            resolved = _resolve(src, path)
            if resolved not in sources:
                warn.add(f"{src}: broken internal link {target!r}")
            elif anchor and anchor not in page_anchors.get(resolved, []):
                warn.add(f"{src}: broken anchor {target!r}")

    out_dir.mkdir(parents=True, exist_ok=True)
    titles = dict((src, title) for title, src in NAV)
    for src, (body, anchors, _) in rendered.items():
        title = titles.get(src) or src.rsplit("/", 1)[-1].removesuffix(".md")
        page = PAGE.format(
            title=html.escape(title),
            css=CSS,
            nav=_nav_html(NAV, src),
            body=body,
        )
        dest = out_dir / (src[:-3] + ".html")
        dest.parent.mkdir(parents=True, exist_ok=True)
        dest.write_text(page)

    n = len(rendered)
    print(f"built {n} pages -> {out_dir}")
    if warn.items:
        print(f"{len(warn.items)} warning(s)", file=sys.stderr)
        return 1 if strict else 0
    return 0


def _resolve(current: str, relative: str) -> str:
    base = current.rsplit("/", 1)[0] if "/" in current else ""
    parts = (f"{base}/{relative}" if base else relative).split("/")
    stack: List[str] = []
    for part in parts:
        if part in ("", "."):
            continue
        if part == "..":
            if stack:
                stack.pop()
        else:
            stack.append(part)
    return "/".join(stack)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    sub = parser.add_subparsers(dest="command", required=True)
    build_p = sub.add_parser("build", help="build the static site")
    build_p.add_argument("--out", default=str(DEFAULT_OUT), help="output directory")
    build_p.add_argument(
        "--strict", action="store_true", help="exit non-zero on any warning"
    )
    args = parser.parse_args(argv)
    return build(Path(args.out), strict=args.strict)


if __name__ == "__main__":
    raise SystemExit(main())
