"""Scale tier of the scenario catalogue: array-native instance builders.

:func:`repro.scenarios.build_scenario` materializes a dict-of-dicts
:class:`~repro.graphs.graph.Graph` and a game wrapper — comfortable up to a
few thousand nodes, but a 10^5–10^6-node instance would spend hundreds of
bytes per node on dict entries before any solver runs.  This module is the
memory-lean mirror: :func:`build_scenario_indexed` builds the *same* seeded
topology straight into :meth:`IndexedGraph.from_arrays
<repro.graphs.core.IndexedGraph.from_arrays>` (flat int32/float64 arrays,
identity labels, no per-node dicts) and wraps it in a :class:`ScaleInstance`
the approximate solvers (:func:`repro.subsidies.solve_sne_greedy_indexed`)
consume directly.

Draw-for-draw reproducibility
-----------------------------
Every builder here consumes the seeded RNG stream in *exactly* the order the
:mod:`repro.scenarios.families` builder does, so at any ``(name, n, seed,
params)`` the label-level ``(u, v, w)`` edge triples of the two paths are
identical (``tests/test_scale_tier.py`` asserts this).  The key fact making
vectorization legal is that ``rng.uniform(a, b, size=N)`` consumes the same
``N`` doubles, in the same order, as ``N`` scalar ``rng.uniform(a, b)``
calls — so a whole family's jittered weights can be drawn in one call as
long as the *edge order* matches the legacy loop.

Audit notes (large-``n`` behaviour of the legacy builders)
----------------------------------------------------------
* ``_power_law_graph`` — no quadratic intermediates; the cost is the
  inherently sequential preferential-attachment loop (each pick depends on
  the degree pool so far) plus the Graph's per-edge dicts.  The indexed
  mirror keeps the identical loop but appends into flat lists.
* ``_isp_graph`` — ``sorted(range(h), key=dist)`` per site is ``O(n h log
  h)`` time with ``h`` small (fine) but allocates a lambda + list per node;
  the indexed mirror computes the full ``(n - h) x h`` distance matrix with
  one vectorized ``np.hypot`` and a stable ``argsort`` (same tie-break as
  ``sorted``).
* ``grid`` / ``hypercube`` / ``augmented-cube`` / ``lower-bound-cycle`` —
  pure index arithmetic, fully vectorized here.

Only the (default) broadcast wrapping is supported at scale: the multicast /
weighted / directed wrappers need label-level game state the lean path
deliberately avoids.  Above :data:`LARGE_N_THRESHOLD` nodes, prefer this
entry point; below it the two paths agree, so tests can cross-check them.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Tuple

import numpy as np

from repro.graphs.core import IndexedGraph
from repro.scenarios.families import (
    GAME_PARAMS,
    get_scenario,
    _cube_dim,
)
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_positive_int

#: above this node count, callers should prefer the indexed path; the CLI
#: and benchmarks use it as the auto-dispatch cutoff.
LARGE_N_THRESHOLD = 20_000


@dataclass(frozen=True)
class ScaleInstance:
    """One seeded broadcast instance built straight into flat arrays.

    The scale-tier analogue of a wrapped scenario game: the graph is an
    :class:`~repro.graphs.core.IndexedGraph` with identity labels, the game
    is implicitly broadcast from ``root`` (one player per non-root node),
    and the whole object is a pure function of ``(name, n, seed, params)``
    exactly like :func:`~repro.scenarios.families.build_scenario`.
    """

    name: str
    n: int
    seed: int
    params: Dict[str, Any] = field(default_factory=dict)
    ig: IndexedGraph = None  # type: ignore[assignment]
    root: int = 0

    @property
    def num_nodes(self) -> int:
        return self.ig.num_nodes

    @property
    def num_edges(self) -> int:
        return self.ig.num_edges

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ScaleInstance({self.name!r}, n={self.n}, seed={self.seed}, "
            f"nodes={self.num_nodes}, edges={self.num_edges})"
        )


# ---------------------------------------------------------------------------
# Array-native topology builders (one per catalogue family)
# ---------------------------------------------------------------------------

_Arrays = Tuple[int, np.ndarray, np.ndarray, np.ndarray]


def _draw_weights(rng: np.random.Generator, jitter: float, m: int) -> np.ndarray:
    """``m`` jittered unit weights — the vectorized ``_jittered`` loop."""
    if jitter <= 0.0:
        return np.ones(m, dtype=np.float64)
    return rng.uniform(1.0 - jitter, 1.0 + jitter, size=m)


def _grid_arrays(n: int, rng: np.random.Generator, jitter: float = 0.25) -> _Arrays:
    check_positive_int(n, "n")
    rows = max(1, math.isqrt(n))
    cols = math.ceil(n / rows)
    k = np.arange(n, dtype=np.int64)
    r, c = np.divmod(k, cols)
    has_right = (c + 1 < cols) & (k + 1 < n)
    has_down = (r + 1) * cols + c < n
    # Legacy edge order: per node k (row-major), right edge then down edge.
    u2 = np.column_stack([k, k])
    v2 = np.column_stack([k + 1, k + cols])
    m2 = np.column_stack([has_right, has_down]).ravel()
    eu = u2.ravel()[m2]
    ev = v2.ravel()[m2]
    return n, eu, ev, _draw_weights(rng, jitter, len(eu))


def _hypercube_arrays(
    n: int, rng: np.random.Generator, jitter: float = 0.25
) -> _Arrays:
    d = _cube_dim(n)
    size = 1 << d
    # Legacy edge order: u ascending, bit ascending; edge exists iff the bit
    # is clear in u (then u < u ^ bit).
    uu = np.repeat(np.arange(size, dtype=np.int64), d)
    bb = np.tile(np.arange(d, dtype=np.int64), size)
    vv = uu ^ (np.int64(1) << bb)
    keep = uu < vv
    eu, ev = uu[keep], vv[keep]
    return size, eu, ev, _draw_weights(rng, jitter, len(eu))


def _aq_edge_arrays(d: int) -> np.ndarray:
    """``_aq_edge_list(d)`` as an (m, 2) array (same recursion, same order)."""
    edges = np.array([[0, 1]], dtype=np.int64)
    for dd in range(2, d + 1):
        h = 1 << (dd - 1)
        u = np.arange(h, dtype=np.int64)
        inter = np.empty((2 * h, 2), dtype=np.int64)
        inter[0::2, 0] = u
        inter[0::2, 1] = u + h  # hypercube link
        inter[1::2, 0] = u
        inter[1::2, 1] = ((h - 1) ^ u) + h  # suffix-complement link
        edges = np.concatenate([edges, edges + h, inter])
    return edges


def _augmented_cube_arrays(
    n: int, rng: np.random.Generator, jitter: float = 0.25
) -> _Arrays:
    d = _cube_dim(n)
    size = 1 << d
    raw = _aq_edge_arrays(d)
    lo = np.minimum(raw[:, 0], raw[:, 1])
    hi = np.maximum(raw[:, 0], raw[:, 1])
    keys = lo * np.int64(size) + hi
    # First-occurrence dedup preserving list order — matches the legacy
    # seen-set loop, so the weight draws line up edge for edge.
    _, first = np.unique(keys, return_index=True)
    order = np.sort(first)
    eu, ev = raw[order, 0], raw[order, 1]
    return size, eu, ev, _draw_weights(rng, jitter, len(eu))


def _power_law_arrays(
    n: int, rng: np.random.Generator, m: int = 2, jitter: float = 0.5
) -> _Arrays:
    check_positive_int(n, "n")
    m = max(1, min(int(m), n - 1)) if n > 1 else 1
    # Preferential attachment is inherently sequential (every pick depends
    # on the degree pool so far), so the legacy loop survives verbatim —
    # it just appends into flat lists instead of Graph dicts.
    endpoints: List[int] = []
    eu: List[int] = []
    ev: List[int] = []
    ew: List[float] = []
    draw = jitter > 0.0
    for v in range(m, n):
        if endpoints:
            chosen: set = set()
            while len(chosen) < min(m, v):
                if rng.random() < 0.9:
                    u = endpoints[int(rng.integers(len(endpoints)))]
                else:
                    u = int(rng.integers(v))
                chosen.add(u)
        else:
            chosen = set(range(v))
        for u in sorted(chosen):
            eu.append(v)
            ev.append(u)
            ew.append(
                float(rng.uniform(1.0 - jitter, 1.0 + jitter)) if draw else 1.0
            )
            endpoints += [v, u]
    return (
        n,
        np.asarray(eu, dtype=np.int64),
        np.asarray(ev, dtype=np.int64),
        np.asarray(ew, dtype=np.float64),
    )


def _isp_arrays(
    n: int,
    rng: np.random.Generator,
    hubs: int = 4,
    backbone_discount: float = 0.3,
) -> _Arrays:
    check_positive_int(n, "n")
    h = max(3, min(int(hubs), n))
    pts = rng.random((max(n, h), 2))
    num_nodes = max(n, h)

    # Backbone ring at a bulk discount (h >= 3, so no dup/self edges).
    ring_i = np.arange(h, dtype=np.int64)
    ring_j = (ring_i + 1) % h
    ring_d = np.hypot(
        pts[ring_i, 0] - pts[ring_j, 0], pts[ring_i, 1] - pts[ring_j, 1]
    )
    ring_w = backbone_discount * np.maximum(ring_d, 1e-3)

    # Access uplinks: each site to its two nearest hubs.  Stable argsort
    # reproduces `sorted(range(h), key=dist)`'s index tie-break.
    if n > h:
        sites = np.arange(h, n, dtype=np.int64)
        dx = pts[sites, 0][:, None] - pts[:h, 0][None, :]
        dy = pts[sites, 1][:, None] - pts[:h, 1][None, :]
        dist = np.hypot(dx, dy)
        near = np.argsort(dist, axis=1, kind="stable")[:, :2]
        rows = np.arange(len(sites))
        acc_u = np.repeat(sites, 2)
        acc_v = near.astype(np.int64).ravel()
        acc_w = np.maximum(
            np.column_stack(
                [dist[rows, near[:, 0]], dist[rows, near[:, 1]]]
            ).ravel(),
            1e-3,
        )
    else:
        acc_u = np.empty(0, dtype=np.int64)
        acc_v = np.empty(0, dtype=np.int64)
        acc_w = np.empty(0, dtype=np.float64)

    eu = np.concatenate([ring_i, acc_u])
    ev = np.concatenate([ring_j, acc_v])
    ew = np.concatenate([ring_w, acc_w])
    return num_nodes, eu, ev, ew


def _lower_bound_arrays(
    n: int, rng: np.random.Generator, shape: str = "cycle"
) -> _Arrays:
    check_positive_int(n, "n")
    if shape == "cycle":
        size = max(3, n)
        i = np.arange(size, dtype=np.int64)
        eu, ev = i, (i + 1) % size
        return size, eu, ev, np.ones(size, dtype=np.float64)
    if shape == "wheel":
        rim = max(3, n - 1)
        spokes_u = np.zeros(rim, dtype=np.int64)
        spokes_v = np.arange(1, rim + 1, dtype=np.int64)
        rim_u = np.arange(1, rim + 1, dtype=np.int64)
        rim_v = np.concatenate([np.arange(2, rim + 1), [1]]).astype(np.int64)
        eu = np.concatenate([spokes_u, rim_u])
        ev = np.concatenate([spokes_v, rim_v])
        ew = np.concatenate(
            [
                np.ones(rim, dtype=np.float64),
                np.full(rim, 4.0 / max(4, n), dtype=np.float64),
            ]
        )
        return rim + 1, eu, ev, ew
    raise ValueError(f"lower-bound shape must be 'cycle' or 'wheel', got {shape!r}")


_INDEXED_BUILDERS = {
    "grid": _grid_arrays,
    "hypercube": _hypercube_arrays,
    "augmented-cube": _augmented_cube_arrays,
    "power-law": _power_law_arrays,
    "isp-like": _isp_arrays,
    "lower-bound-cycle": _lower_bound_arrays,
}


def build_scenario_indexed(
    name: str, n: int = 16, seed: int = 0, **params: Any
) -> ScaleInstance:
    """Build one seeded scenario instance straight into flat arrays.

    Accepts the same ``(name, n, seed, **topology params)`` signature as
    :func:`~repro.scenarios.families.build_scenario` and produces the same
    label-level ``(u, v, w)`` edge triples from the same RNG stream — but
    as an :class:`~repro.graphs.core.IndexedGraph` with identity labels
    and no dict intermediates, so ``n`` up to 10^6 stays within a flat
    handful of arrays.

    Only broadcast wrapping is supported (``game="broadcast"`` or omitted);
    the other game families need label-level state the lean path avoids.
    """
    fam = get_scenario(name)
    try:
        build = _INDEXED_BUILDERS[fam.name]
    except KeyError:  # pragma: no cover - catalogue and builders co-evolve
        raise ValueError(f"no indexed builder for scenario {fam.name!r}")
    params = dict(params)
    game_family = params.pop("game", None) or "broadcast"
    if game_family != "broadcast":
        raise ValueError(
            "build_scenario_indexed supports only the broadcast game "
            f"(got game={game_family!r}); use build_scenario for the "
            "label-level game families"
        )
    for knob in GAME_PARAMS:
        if knob in params:
            raise ValueError(
                f"game-wrapper knob {knob!r} is not supported at scale; "
                "build_scenario_indexed builds broadcast instances only"
            )
    topo = dict(fam.params)
    for key in list(params):
        if key in topo:
            topo[key] = params.pop(key)
    if params:
        raise ValueError(
            f"unknown parameter(s) for scenario {name!r}: "
            f"{', '.join(sorted(params))} (accepted: "
            f"{', '.join(sorted(fam.params))})"
        )
    rng = ensure_rng(seed)
    num_nodes, eu, ev, ew = build(n, rng, **topo)
    if num_nodes < 2:
        raise ValueError("scenario instance needs at least 2 nodes")
    ig = IndexedGraph.from_arrays(num_nodes, eu, ev, ew)
    return ScaleInstance(
        name=fam.name, n=n, seed=seed, params=dict(topo), ig=ig, root=0
    )
