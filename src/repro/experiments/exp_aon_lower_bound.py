"""E4 — Theorem 21: all-or-nothing enforcement needs ~ e/(2e-1) of wgt(T).

On the path-with-shortcuts family the exact branch-and-bound optimum (small
n) matches the closed form, sits strictly above the fractional LP optimum,
and the closed-form fraction converges to e/(2e-1) ~ 0.6127.
"""

from __future__ import annotations

from repro.bounds.instances import (
    theorem21_analysis,
    theorem21_fraction_limit,
    theorem21_path_instance,
)
from repro.experiments.records import ExperimentResult
from repro.subsidies import solve_aon_sne_exact, solve_sne_broadcast_lp3
from repro.utils.timing import Timer


def run(seed: int = 0, exact_sizes=(6, 10, 14), formula_sizes=(50, 500, 5000, 500_000)) -> ExperimentResult:
    limit = theorem21_fraction_limit()
    rows = []
    with Timer() as t:
        for n in exact_sizes:
            game, state = theorem21_path_instance(n)
            analysis = theorem21_analysis(n)
            aon = solve_aon_sne_exact(state)
            frac = solve_sne_broadcast_lp3(state)
            rows.append(
                {
                    "n": n,
                    "method": "exact B&B",
                    "aon_fraction": aon.cost / state.social_cost(),
                    "closed_form": analysis.optimal_fraction,
                    "fractional_lp": frac.cost / state.social_cost(),
                    "gap_to_limit": limit - aon.cost / state.social_cost(),
                }
            )
        for n in formula_sizes:
            analysis = theorem21_analysis(n)
            rows.append(
                {
                    "n": n,
                    "method": "closed form",
                    "aon_fraction": analysis.optimal_fraction,
                    "closed_form": analysis.optimal_fraction,
                    "fractional_lp": float("nan"),
                    "gap_to_limit": limit - analysis.optimal_fraction,
                }
            )
    result = ExperimentResult(
        experiment_id="E4",
        title="Theorem 21: all-or-nothing subsidies approach e/(2e-1) of wgt(T)",
        headline=(
            f"all-or-nothing fraction -> e/(2e-1) = {limit:.5f} "
            f"(measured at n={formula_sizes[-1]}: "
            f"{theorem21_analysis(formula_sizes[-1]).optimal_fraction:.5f}); "
            "strictly above the fractional optimum everywhere "
            "(paper: 61% may be necessary)"
        ),
        rows=rows,
    )
    result.elapsed_seconds = t.elapsed
    return result
