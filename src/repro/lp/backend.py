"""Unified LP solving entry point.

``solve_lp(problem, method=...)`` dispatches to scipy's HiGHS (default) or
the in-repo simplex.  Both return the same :class:`repro.lp.problem.LPResult`
so callers and tests can swap them freely.
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import linprog

from repro.lp.problem import LinearProgram, LPResult, LPStatus
from repro.lp.simplex import simplex_solve

_SCIPY_STATUS = {
    0: LPStatus.OPTIMAL,
    1: LPStatus.ITERATION_LIMIT,
    2: LPStatus.INFEASIBLE,
    3: LPStatus.UNBOUNDED,
}


def solve_lp(problem: LinearProgram, method: str = "highs", max_iter: int = 20_000) -> LPResult:
    """Solve a canonical-form LP with the chosen backend.

    Parameters
    ----------
    problem:
        The LP in ``min c.x : A x <= b, l <= x <= u`` form.
    method:
        ``"highs"`` (scipy) or ``"simplex"`` (from-scratch reference solver).
    """
    if method == "simplex":
        return simplex_solve(problem, max_iter=max_iter)
    if method != "highs":
        raise ValueError(f"unknown LP method {method!r}")

    A, b = problem.matrices()
    bounds = list(zip(problem.lower, problem.upper))
    res = linprog(
        problem.c,
        A_ub=A if A.size else None,
        b_ub=b if b.size else None,
        bounds=bounds,
        method="highs",
    )
    status = _SCIPY_STATUS.get(res.status, LPStatus.INFEASIBLE)
    if status is not LPStatus.OPTIMAL:
        return LPResult(status)
    x = np.asarray(res.x, dtype=float)
    return LPResult(LPStatus.OPTIMAL, x=x, objective=float(res.fun))
