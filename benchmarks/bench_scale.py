"""Scale-tier benchmark — anytime/approximate subsidy solvers at 10^5 nodes.

The acceptance bar for the approximate tier:

* a 10^5-node scenario instance (``grid`` by default) must **build and
  solve** through the memory-lean indexed path
  (:func:`repro.scenarios.build_scenario_indexed` +
  :func:`repro.subsidies.solve_sne_greedy_indexed`) within a wall-clock
  and a peak-RSS budget, producing a *certified* optimality gap
  (``lower_bound <= cost`` with a dual-feasible Lagrangian lower bound)
  and a verified subsidy vector;
* on small instances the approximate solvers must **cross-validate
  against the exact LP solvers on all five game families**: the certified
  interval brackets the LP optimum, and the primal-dual solver run to
  convergence reproduces the exact cutting-plane subsidies bit for bit.

The wall-clock/memory gates are environment-tunable:
``REPRO_BENCH_SCALE_N`` sizes the gate instance (default 100000),
``REPRO_BENCH_SCALE_SECONDS`` bounds build+solve time (default 60) and
``REPRO_BENCH_SCALE_RSS_MB`` bounds the process peak RSS (default 2048).
Like the other hand-rolled timing gates in this directory, the gate skips
under plain ``CI`` unless one of those knobs is set explicitly (the CI
scale-smoke job sets a reduced ``N``).

Each gated run appends a measurement record to ``BENCH_scale.json`` at
the repo root — (timestamp, n, timings, certified gap, anytime
trajectory, peak RSS) so scaling regressions are visible across commits.
"""

import json
import os
import time
from pathlib import Path

import pytest

from repro.api import solve
from repro.scenarios import build_scenario, build_scenario_indexed
from repro.subsidies import solve_sne_greedy_indexed
from repro.utils.resources import peak_rss_bytes

REPO_ROOT = Path(__file__).resolve().parent.parent
TRAJECTORY = REPO_ROOT / "BENCH_scale.json"

#: gate knobs; overridable for slow shared runners
SCALE_N = int(os.environ.get("REPRO_BENCH_SCALE_N", "100000"))
SCALE_SECONDS = float(os.environ.get("REPRO_BENCH_SCALE_SECONDS", "60"))
SCALE_RSS_MB = float(os.environ.get("REPRO_BENCH_SCALE_RSS_MB", "2048"))

#: plain CI without explicit knobs: run everything except the gate
_SKIP_TIMING = (
    os.environ.get("CI", "") != ""
    and "REPRO_BENCH_SCALE_N" not in os.environ
    and "REPRO_BENCH_SCALE_SECONDS" not in os.environ
    and "REPRO_BENCH_SCALE_RSS_MB" not in os.environ
)

#: scenario families exercised at the gate size (structured mesh, heavy-tail
#: hubs, two-tier geometric — the three scaling-relevant topologies)
SCALE_FAMILIES = ("grid", "power-law", "isp-like")


def _append_trajectory(entry: dict) -> None:
    history = []
    if TRAJECTORY.exists():
        try:
            history = json.loads(TRAJECTORY.read_text())
        except json.JSONDecodeError:
            history = []
        if not isinstance(history, list):
            history = [history]
    history.append(entry)
    TRAJECTORY.write_text(json.dumps(history, indent=2) + "\n")


# ---------------------------------------------------------------------------
# pytest-benchmark visibility (no gates; run once under --benchmark-disable)
# ---------------------------------------------------------------------------


def test_indexed_build_mid_scale(benchmark):
    inst = benchmark(build_scenario_indexed, "grid", 20_000, 3)
    assert inst.num_nodes == 20_000


def test_indexed_solve_mid_scale(benchmark):
    inst = build_scenario_indexed("grid", n=20_000, seed=3)
    res = benchmark(solve_sne_greedy_indexed, inst.ig, inst.root)
    assert res.verified and res.feasible
    assert 0.0 <= res.certificate.lower_bound <= res.cost + 1e-9


# ---------------------------------------------------------------------------
# cross-validation: approx vs exact on small instances, all five families
# ---------------------------------------------------------------------------


def _family_instances():
    """One small instance of every game family (nontrivial subsidies)."""
    from repro.games.broadcast import BroadcastGame
    from repro.games.directed import DirectedNetworkDesignGame
    from repro.games.game import NetworkDesignGame
    from repro.games.multicast import MulticastGame
    from repro.games.weighted import WeightedNetworkDesignGame
    from repro.graphs.generators import random_tree_plus_chords

    g = random_tree_plus_chords(14, 7, seed=3, chord_factor=1.1)
    others = [u for u in g.nodes if u != 0]
    demands = [1.0 + (i % 3) * 0.5 for i in range(6)]
    return {
        "broadcast": BroadcastGame(g, root=0),
        "multicast": MulticastGame(g, 0, others[:5]),
        "general": NetworkDesignGame(g, [(u, 0) for u in others[:6]]),
        "weighted": WeightedNetworkDesignGame(
            g, [(u, 0) for u in others[:6]], demands
        ),
        "directed": DirectedNetworkDesignGame(g, [(u, 0) for u in others[:6]]),
    }


@pytest.mark.parametrize("family", sorted(_family_instances()))
def test_certified_interval_brackets_exact_optimum(family):
    """approx lower bound <= exact LP optimum <= approx budget, per family."""
    game = _family_instances()[family]
    exact = solve(game, "sne-cutting-plane")
    assert exact.verified
    for solver in ("approx-greedy", "approx-primal-dual"):
        approx = solve(game, solver)
        assert approx.verified, (family, solver)
        cert = approx.metadata["certificate"]
        assert cert["lower_bound"] <= exact.budget_used + 1e-6, (family, solver)
        assert exact.budget_used <= approx.budget_used + 1e-6, (family, solver)


@pytest.mark.parametrize("family", sorted(_family_instances()))
def test_primal_dual_converges_to_exact(family):
    """Run to convergence, primal-dual == exact cutting-plane subsidies."""
    game = _family_instances()[family]
    exact = solve(game, "sne-cutting-plane")
    pd = solve(game, "approx-primal-dual")
    assert pd.metadata["certificate"]["kind"] == "exact", family
    assert pd.subsidies == exact.subsidies, family
    assert pd.budget_used == pytest.approx(exact.budget_used, abs=1e-9)


# ---------------------------------------------------------------------------
# the scale gate + the BENCH_scale.json trajectory record
# ---------------------------------------------------------------------------


@pytest.mark.skipif(
    _SKIP_TIMING,
    reason="the scale gate needs a quiet machine or an explicit "
    "REPRO_BENCH_SCALE_* knob (the CI scale-smoke job sets one)",
)
def test_scale_gate():
    """Build + solve the gate instance within time/memory budgets."""
    entry = {
        "bench": "scale",
        "timestamp": time.time(),
        "n": SCALE_N,
        "budgets": {"seconds": SCALE_SECONDS, "rss_mb": SCALE_RSS_MB},
        "families": {},
    }
    total = 0.0
    for name in SCALE_FAMILIES:
        t0 = time.perf_counter()
        inst = build_scenario_indexed(name, n=SCALE_N, seed=1)
        t_build = time.perf_counter() - t0
        t0 = time.perf_counter()
        res = solve_sne_greedy_indexed(inst.ig, inst.root, anytime=True)
        t_solve = time.perf_counter() - t0
        total += t_build + t_solve

        assert res.feasible and res.verified, name
        cert = res.certificate
        assert 0.0 <= cert.lower_bound <= res.cost + 1e-9, name
        assert res.anytime is not None and res.anytime.iterates, name

        entry["families"][name] = {
            "nodes": inst.num_nodes,
            "edges": inst.num_edges,
            "incidences": res.num_incidences,
            "build_seconds": t_build,
            "solve_seconds": t_solve,
            "rounds": res.rounds,
            "budget": res.cost,
            "certificate": cert.as_dict(),
            "anytime": res.anytime.as_dict(),
        }

    rss_mb = peak_rss_bytes() / (1024 * 1024)
    entry["total_seconds"] = total
    entry["peak_rss_mb"] = rss_mb
    _append_trajectory(entry)

    assert total <= SCALE_SECONDS, (
        f"scale tier took {total:.2f}s for {len(SCALE_FAMILIES)} families at "
        f"n={SCALE_N} (> {SCALE_SECONDS}s budget)"
    )
    assert rss_mb <= SCALE_RSS_MB, (
        f"peak RSS {rss_mb:.0f} MiB at n={SCALE_N} (> {SCALE_RSS_MB} MiB budget)"
    )
