"""The Bypass gadget (Figure 1, Lemma 4).

A Bypass gadget of capacity ``kappa`` is a basic path of ``l`` unit-weight
edges from the root ``r`` to a *connector* node ``c``, plus a *bypass edge*
``(c, r)`` of weight ``H_{kappa+l} - H_kappa``, where ``l`` is the minimum
positive integer with ``H_{kappa+l} - H_kappa > 1``.

Lemma 4: if a subgraph of ``beta`` player-nodes hangs off the connector,
then in the MST (which routes everyone through the basic path) the player
at ``c`` wants to deviate to the bypass edge iff ``beta < kappa``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.bounds.harmonic import harmonic_diff
from repro.graphs.graph import Graph, Node
from repro.games.broadcast import BroadcastGame, TreeState


def bypass_ell(kappa: int) -> int:
    """Minimum ``l >= 1`` with ``H_{kappa+l} - H_kappa > 1`` (~ (e-1)*kappa)."""
    if kappa < 1:
        raise ValueError("capacity must be >= 1")
    ell = 1
    while harmonic_diff(kappa + ell, kappa) <= 1.0:
        ell += 1
    return ell


@dataclass
class BypassGadget:
    """Bookkeeping for one gadget added to a graph."""

    root: Node
    connector: Node
    path_nodes: List[Node]  # from the root side toward the connector
    basic_path_edges: List[Tuple[Node, Node]]
    bypass_edge: Tuple[Node, Node]
    kappa: int
    ell: int
    bypass_weight: float


def add_bypass_gadget(graph: Graph, root: Node, kappa: int, tag: object) -> BypassGadget:
    """Attach a Bypass gadget of capacity ``kappa`` to ``root`` in place.

    Nodes are labeled ``("bypass", tag, i)`` for ``i = 1..l`` (``i = l`` is
    the connector).  Returns the gadget descriptor.
    """
    ell = bypass_ell(kappa)
    bypass_weight = harmonic_diff(kappa + ell, kappa)
    nodes = [("bypass", tag, i) for i in range(1, ell + 1)]
    graph.add_node(root)
    prev = root
    path_edges = []
    for node in nodes:
        graph.add_edge(prev, node, 1.0)
        path_edges.append((prev, node))
        prev = node
    connector = nodes[-1]
    graph.add_edge(connector, root, bypass_weight)
    return BypassGadget(
        root=root,
        connector=connector,
        path_nodes=nodes,
        basic_path_edges=path_edges,
        bypass_edge=(connector, root),
        kappa=kappa,
        ell=ell,
        bypass_weight=bypass_weight,
    )


def build_bypass_game(kappa: int, beta: int) -> Tuple[BroadcastGame, TreeState, BypassGadget]:
    """The Lemma 4 demonstration instance.

    One Bypass gadget of capacity ``kappa`` plus ``beta`` player-nodes
    attached to the connector through zero-weight edges (the simplest
    subgraph ``S``); the target state is the MST (basic path, no bypass).
    """
    if beta < 0:
        raise ValueError("beta must be >= 0")
    g = Graph()
    gadget = add_bypass_gadget(g, root="r", kappa=kappa, tag=0)
    tree_edges = list(gadget.basic_path_edges)
    for i in range(beta):
        node = ("s", i)
        g.add_edge(gadget.connector, node, 0.0)
        tree_edges.append((gadget.connector, node))
    game = BroadcastGame(g, root="r")
    state = game.tree_state(tree_edges)
    return game, state, gadget


def connector_deviates(kappa: int, beta: int) -> bool:
    """Closed-form Lemma 4 prediction: deviation iff ``beta < kappa``.

    (Equivalently ``H_{kappa+l} - H_kappa < H_{beta+l} - H_beta`` since the
    tail difference is strictly decreasing in the base.)
    """
    ell = bypass_ell(kappa)
    return harmonic_diff(kappa + ell, kappa) < harmonic_diff(beta + ell, beta)
