"""Numeric tolerances used across the library.

Equilibrium conditions in the paper are weak inequalities
(``cost_i(T) <= cost_i(T_{-i}, T'_i)``).  With floating-point path sums the
only robust reading is: a deviation counts as *improving* only when it beats
the current cost by more than a tolerance.  Every module uses the helpers
here rather than bare comparisons so the policy lives in one place.
"""

from __future__ import annotations

import math

#: Tolerance for equilibrium / player-cost comparisons.
EQ_TOL: float = 1e-9

#: Looser tolerance for values that went through an LP solver.
LP_TOL: float = 1e-7


def is_close(a: float, b: float, tol: float = EQ_TOL) -> bool:
    """Return True when ``a`` and ``b`` agree up to ``tol`` (rel or abs)."""
    return math.isclose(a, b, rel_tol=tol, abs_tol=tol)


def leq_with_tol(a: float, b: float, tol: float = EQ_TOL) -> bool:
    """Tolerant ``a <= b``: true when ``a`` exceeds ``b`` by at most ``tol``.

    The slack scales with the magnitude of the operands so that games with
    weights around 1e6 behave like games with unit weights.
    """
    scale = max(1.0, abs(a), abs(b))
    return a <= b + tol * scale


def is_improvement(new_cost: float, old_cost: float, tol: float = EQ_TOL) -> bool:
    """True when deviating to ``new_cost`` strictly improves on ``old_cost``.

    This is the negation of :func:`leq_with_tol` applied to the equilibrium
    inequality, so "equilibrium" and "no improving deviation" can never
    disagree about borderline ties.
    """
    return not leq_with_tol(old_cost, new_cost, tol)


def nonnegative(x: float, tol: float = EQ_TOL) -> float:
    """Clip a tiny negative float (LP round-off) to zero; reject real negatives."""
    if x < -tol * max(1.0, abs(x)):
        raise ValueError(f"expected a nonnegative value, got {x!r}")
    return max(0.0, x)
