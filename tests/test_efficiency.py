"""Tests for exact PoS/PoA computation."""

import pytest

from repro.games import BroadcastGame
from repro.games.efficiency import (
    best_equilibrium_tree,
    efficiency_report,
    equilibrium_spanning_trees,
    price_of_anarchy,
    price_of_stability,
)
from repro.graphs import Graph
from repro.graphs.generators import fan_graph


class TestEfficiencyReport:
    def test_trivial_game_pos_one(self):
        g = Graph.from_edges([(0, 1, 1.0), (1, 2, 1.0)])
        game = BroadcastGame(g, root=0)
        rep = efficiency_report(game)
        assert rep.n_trees == 1
        assert rep.n_equilibria == 1
        assert rep.price_of_stability == pytest.approx(1.0)
        assert rep.price_of_anarchy == pytest.approx(1.0)

    def test_fan_game_rim_is_stable(self):
        """With uniform unit spokes the cheap rim MST is itself stable."""
        game = BroadcastGame(fan_graph(4, rim_weight_scale=1.0), root=0)
        rep = efficiency_report(game)
        assert rep.price_of_stability == pytest.approx(1.0)

    def test_shortcut_triangle_gap(self):
        """MST path 0-1-2 is destabilized by the (0,2) shortcut: PoS > 1.

        Trees: {01,12} (w=2, player 2 deviates: 1.5 > 1.2), {12,02} (w=2.2,
        player 1 deviates to her direct edge: 1 < 1.6), and {01,02} (w=2.2,
        the unique equilibrium) -> PoS = PoA = 1.1 exactly.
        """
        g = Graph.from_edges([(0, 1, 1.0), (1, 2, 1.0), (0, 2, 1.2)])
        game = BroadcastGame(g, root=0)
        rep = efficiency_report(game)
        assert rep.n_trees == 3
        assert rep.n_equilibria == 1
        assert rep.price_of_stability == pytest.approx(1.1)
        assert rep.price_of_anarchy == pytest.approx(1.1)

    def test_pos_poa_wrappers(self):
        g = Graph.from_edges([(0, 1, 1.0), (1, 2, 1.0), (0, 2, 1.6)])
        game = BroadcastGame(g, root=0)
        assert price_of_stability(game) == pytest.approx(1.0)
        assert price_of_anarchy(game) >= 1.0

    def test_subsidies_enlarge_equilibrium_set(self):
        g = Graph.from_edges([(0, 1, 1.0), (1, 2, 1.0), (0, 2, 1.2)])
        game = BroadcastGame(g, root=0)
        rep_plain = efficiency_report(game)
        rep_sub = efficiency_report(game, {(1, 2): 0.5})
        assert rep_sub.n_equilibria >= rep_plain.n_equilibria
        # With the subsidy the MST path becomes an equilibrium: PoS = 1.
        assert rep_sub.price_of_stability == pytest.approx(1.0)

    def test_equilibrium_iterator_consistent_with_report(self):
        g = Graph.from_edges(
            [(0, 1, 1.0), (1, 2, 1.0), (0, 2, 1.2), (2, 3, 1.0), (0, 3, 2.0)]
        )
        game = BroadcastGame(g, root=0)
        eqs = list(equilibrium_spanning_trees(game))
        rep = efficiency_report(game)
        assert len(eqs) == rep.n_equilibria
        if eqs:
            weights = [e.social_cost() for e in eqs]
            assert min(weights) == pytest.approx(rep.best_equilibrium_weight)
            assert max(weights) == pytest.approx(rep.worst_equilibrium_weight)

    def test_best_equilibrium_tree(self):
        g = Graph.from_edges([(0, 1, 1.0), (1, 2, 1.0), (0, 2, 1.6)])
        game = BroadcastGame(g, root=0)
        edges, weight = best_equilibrium_tree(game)
        assert edges is not None
        assert weight == pytest.approx(2.0)
