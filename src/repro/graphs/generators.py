"""Instance generators for experiments and tests.

Conventions: nodes are integers ``0..n-1`` (gadget builders elsewhere use
richer node labels), node ``0`` is the broadcast root unless stated
otherwise, and every stochastic generator takes a ``seed`` handled by
:func:`repro.utils.ensure_rng`.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

import numpy as np

from repro.graphs.graph import Graph
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_positive_int, check_probability


def path_graph(n: int, weights: Optional[Sequence[float]] = None) -> Graph:
    """Path 0-1-...-(n-1); ``weights[i]`` is the weight of edge (i, i+1)."""
    check_positive_int(n, "n")
    g = Graph()
    g.add_node(0)
    for i in range(n - 1):
        w = 1.0 if weights is None else float(weights[i])
        g.add_edge(i, i + 1, w)
    return g


def cycle_graph(n: int, weight: float = 1.0) -> Graph:
    """Cycle over n >= 3 nodes with uniform edge weight."""
    check_positive_int(n, "n")
    if n < 3:
        raise ValueError("a cycle needs at least 3 nodes")
    g = path_graph(n)
    for i in range(n - 1):
        g.add_edge(i, i + 1, weight)
    g.add_edge(n - 1, 0, weight)
    return g


def complete_graph(n: int, weight: float = 1.0) -> Graph:
    check_positive_int(n, "n")
    g = Graph()
    g.add_node(0)
    for i in range(n):
        for j in range(i + 1, n):
            g.add_edge(i, j, weight)
    return g


def star_graph(n_leaves: int, weight: float = 1.0, center: int = 0) -> Graph:
    """Star with ``n_leaves`` leaves attached to ``center``."""
    g = Graph()
    g.add_node(center)
    for i in range(1, n_leaves + 1):
        g.add_edge(center, center + i, weight)
    return g


def wheel_graph(n_rim: int, spoke_weight: float = 1.0, rim_weight: float = 1.0) -> Graph:
    """Hub node 0 plus an n_rim-cycle 1..n_rim around it."""
    check_positive_int(n_rim, "n_rim")
    if n_rim < 3:
        raise ValueError("a wheel needs at least 3 rim nodes")
    g = Graph()
    for i in range(1, n_rim + 1):
        g.add_edge(0, i, spoke_weight)
    for i in range(1, n_rim):
        g.add_edge(i, i + 1, rim_weight)
    g.add_edge(n_rim, 1, rim_weight)
    return g


def grid_graph(rows: int, cols: int, weight: float = 1.0) -> Graph:
    """rows x cols grid; node (r, c) is encoded as r*cols + c."""
    check_positive_int(rows, "rows")
    check_positive_int(cols, "cols")
    g = Graph()
    g.add_node(0)
    for r in range(rows):
        for c in range(cols):
            u = r * cols + c
            if c + 1 < cols:
                g.add_edge(u, u + 1, weight)
            if r + 1 < rows:
                g.add_edge(u, u + cols, weight)
    return g


def random_connected_gnp(
    n: int,
    p: float,
    seed: "int | np.random.Generator | None" = None,
    weight_low: float = 0.5,
    weight_high: float = 2.0,
) -> Graph:
    """Erdos-Renyi G(n, p) with uniform random weights, forced connected.

    Connectivity is guaranteed by first laying down a random spanning tree
    (random parent attachment) and then adding each remaining pair with
    probability p.
    """
    check_positive_int(n, "n")
    check_probability(p)
    rng = ensure_rng(seed)

    def draw() -> float:
        return float(rng.uniform(weight_low, weight_high))

    g = Graph()
    g.add_node(0)
    order = list(rng.permutation(n))
    placed = [order[0]]
    for u in order[1:]:
        v = placed[int(rng.integers(len(placed)))]
        g.add_edge(u, v, draw())
        placed.append(u)
    for u in range(n):
        for v in range(u + 1, n):
            if not g.has_edge(u, v) and rng.random() < p:
                g.add_edge(u, v, draw())
    return g


def random_geometric_graph(
    n: int,
    radius: float,
    seed: "int | np.random.Generator | None" = None,
    scale: float = 1.0,
) -> Graph:
    """Random points in the unit square, edges within ``radius`` at Euclidean
    cost, plus a Euclidean spanning tree so the result is always connected.

    Models the "ISP builds links between sites" scenario of the paper's intro.
    """
    check_positive_int(n, "n")
    rng = ensure_rng(seed)
    pts = rng.random((n, 2))
    g = Graph()
    g.add_node(0)
    for i in range(n):
        g.add_node(i)
    diffs = pts[:, None, :] - pts[None, :, :]
    dist = np.sqrt((diffs**2).sum(axis=2))
    for i in range(n):
        for j in range(i + 1, n):
            if dist[i, j] <= radius:
                g.add_edge(i, j, scale * float(dist[i, j]))
    # Connect any leftover components through their nearest cross pair.
    comps = g.connected_components()
    while len(comps) > 1:
        a, b = comps[0], comps[1]
        best = None
        for i in a:
            for j in b:
                d = float(dist[i, j])
                if best is None or d < best[0]:
                    best = (d, i, j)
        assert best is not None
        g.add_edge(best[1], best[2], scale * best[0])
        comps = g.connected_components()
    return g


def random_tree_plus_chords(
    n: int,
    n_chords: int,
    seed: "int | np.random.Generator | None" = None,
    weight_low: float = 0.5,
    weight_high: float = 2.0,
    chord_factor: float = 1.5,
) -> Graph:
    """Random spanning tree plus ``n_chords`` heavier chord edges.

    Useful for SNE experiments: the tree is the natural design and the chords
    are tempting deviations at ``chord_factor`` times typical tree weights.
    """
    check_positive_int(n, "n")
    rng = ensure_rng(seed)
    g = Graph()
    g.add_node(0)
    for u in range(1, n):
        v = int(rng.integers(u))
        g.add_edge(u, v, float(rng.uniform(weight_low, weight_high)))
    attempts = 0
    added = 0
    while added < n_chords and attempts < 50 * max(1, n_chords):
        attempts += 1
        u = int(rng.integers(n))
        v = int(rng.integers(n))
        if u != v and not g.has_edge(u, v):
            g.add_edge(u, v, chord_factor * float(rng.uniform(weight_low, weight_high)))
            added += 1
    return g


def fan_graph(n: int, direct_weight: float = 1.0, rim_weight_scale: float = 1.0) -> Graph:
    """The "fan": spokes 0-i of weight ``direct_weight`` plus a cheap rim path.

    A classic family in price-of-stability discussions - the MST hugs the rim
    while selfish players prefer the spokes.
    """
    check_positive_int(n, "n")
    g = Graph()
    g.add_node(0)
    for i in range(1, n + 1):
        g.add_edge(0, i, direct_weight)
    for i in range(1, n):
        g.add_edge(i, i + 1, rim_weight_scale * direct_weight / (2.0 * n))
    return g


def euclidean_distance(p: Sequence[float], q: Sequence[float]) -> float:
    return math.dist(p, q)
