"""E4 benchmark — Theorem 21: all-or-nothing optimum toward e/(2e-1)."""

import math

import pytest

from repro.bounds.instances import theorem21_analysis, theorem21_path_instance
from repro.subsidies import greedy_aon_sne, solve_aon_sne_exact


@pytest.mark.parametrize("n", [8, 12])
def test_exact_branch_and_bound(benchmark, n):
    _, state = theorem21_path_instance(n)
    res = benchmark(solve_aon_sne_exact, state)
    assert res.optimal
    assert res.cost == pytest.approx(theorem21_analysis(n).optimal_cost, abs=1e-6)


def test_greedy_heuristic(benchmark):
    _, state = theorem21_path_instance(12)
    res = benchmark(greedy_aon_sne, state)
    assert res.verified
    assert res.cost >= theorem21_analysis(12).optimal_cost - 1e-9


def test_closed_form_series(benchmark):
    limit = math.e / (2 * math.e - 1)

    def series():
        return [theorem21_analysis(n).optimal_fraction for n in (20, 100, 1000, 10_000)]

    fracs = benchmark(series)
    assert fracs[-1] == pytest.approx(limit, abs=5e-3)
    assert all(f > 1 / math.e for f in fracs)
