"""Tests for STABLE NETWORK DESIGN solvers."""

import math

import pytest

from repro.games import BroadcastGame, check_equilibrium
from repro.graphs import Graph
from repro.graphs.generators import random_tree_plus_chords
from repro.subsidies import snd_heuristic, solve_snd_exact
from repro.subsidies.snd import snd_local_search


@pytest.fixture
def shortcut_triangle_game():
    g = Graph.from_edges([(0, 1, 1.0), (1, 2, 1.0), (0, 2, 1.2)])
    return BroadcastGame(g, root=0)


class TestExactSND:
    def test_zero_budget_picks_stable_tree(self, shortcut_triangle_game):
        # With budget 0 the MST (weight 2) is not enforceable; the only
        # equilibrium tree is {01, 02} of weight 2.2.
        res = solve_snd_exact(shortcut_triangle_game, budget=0.0)
        assert res is not None
        assert res.weight == pytest.approx(2.2)
        assert res.subsidy_cost == pytest.approx(0.0, abs=1e-8)

    def test_sufficient_budget_picks_mst(self, shortcut_triangle_game):
        res = solve_snd_exact(shortcut_triangle_game, budget=0.5)
        assert res is not None
        assert res.weight == pytest.approx(2.0)
        assert res.subsidy_cost == pytest.approx(0.3, abs=1e-6)

    def test_monotone_in_budget(self, shortcut_triangle_game):
        budgets = [0.0, 0.1, 0.3, 1.0]
        weights = [
            solve_snd_exact(shortcut_triangle_game, budget=b).weight for b in budgets
        ]
        assert all(w2 <= w1 + 1e-12 for w1, w2 in zip(weights, weights[1:]))

    def test_result_is_enforced_equilibrium(self, shortcut_triangle_game):
        res = solve_snd_exact(shortcut_triangle_game, budget=0.3)
        state = shortcut_triangle_game.tree_state(res.tree_edges)
        assert check_equilibrium(state, res.subsidies, tol=1e-6).is_equilibrium

    def test_all_or_nothing_variant_needs_more(self, shortcut_triangle_game):
        frac = solve_snd_exact(shortcut_triangle_game, budget=0.3)
        aon = solve_snd_exact(shortcut_triangle_game, budget=0.3, all_or_nothing=True)
        assert frac.weight == pytest.approx(2.0)
        # 0.3 cannot fully subsidize any unit edge: AoN must pick the stable tree.
        assert aon.weight == pytest.approx(2.2)

    def test_theorem6_budget_always_enough_for_mst(self):
        for seed in (0, 1, 2):
            g = random_tree_plus_chords(7, 4, seed=seed, chord_factor=1.1)
            game = BroadcastGame(g, root=0)
            budget = game.mst_weight() / math.e
            res = solve_snd_exact(game, budget=budget)
            assert res is not None
            assert res.weight == pytest.approx(game.mst_weight())


class TestHeuristic:
    def test_mst_first_fires_with_big_budget(self, shortcut_triangle_game):
        res = snd_heuristic(shortcut_triangle_game, budget=1.0)
        assert res.method == "mst_first"
        assert res.weight == pytest.approx(2.0)
        assert res.optimal

    def test_fallback_with_zero_budget(self, shortcut_triangle_game):
        res = snd_heuristic(shortcut_triangle_game, budget=0.0)
        assert res.subsidy_cost <= 1e-8
        state = shortcut_triangle_game.tree_state(res.tree_edges)
        assert check_equilibrium(state, res.subsidies, tol=1e-6).is_equilibrium

    def test_heuristic_never_beats_exact(self):
        for seed in (3, 4, 5):
            g = random_tree_plus_chords(6, 3, seed=seed, chord_factor=1.2)
            game = BroadcastGame(g, root=0)
            for budget in (0.0, 0.2 * game.mst_weight(), game.mst_weight()):
                exact = solve_snd_exact(game, budget=budget)
                heur = snd_heuristic(game, budget=budget)
                assert exact is not None
                assert heur.weight >= exact.weight - 1e-9

    def test_heuristic_respects_budget(self):
        g = random_tree_plus_chords(8, 4, seed=9, chord_factor=1.2)
        game = BroadcastGame(g, root=0)
        budget = 0.1 * game.mst_weight()
        res = snd_heuristic(game, budget=budget)
        if res.method != "full_subsidy_fallback":
            assert res.subsidy_cost <= budget + 1e-6


class TestLocalSearch:
    def test_local_search_improves_or_keeps(self, shortcut_triangle_game):
        start = [(0, 1), (0, 2)]  # the stable (heavier) tree
        res = snd_local_search(shortcut_triangle_game, budget=0.5, start_edges=start)
        assert res is not None
        # Budget 0.5 affords the MST swap (needs 0.3).
        assert res.weight == pytest.approx(2.0)

    def test_local_search_none_when_start_infeasible(self, shortcut_triangle_game):
        start = [(0, 1), (1, 2)]  # MST needs 0.3 > 0 budget
        assert (
            snd_local_search(shortcut_triangle_game, budget=0.0, start_edges=start)
            is None
        )

    def test_local_search_stays_within_budget(self, shortcut_triangle_game):
        start = [(0, 1), (0, 2)]
        res = snd_local_search(shortcut_triangle_game, budget=0.1, start_edges=start)
        assert res is not None
        assert res.subsidy_cost <= 0.1 + 1e-6
        assert res.weight == pytest.approx(2.2)  # swap unaffordable
