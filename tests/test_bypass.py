"""Tests for the Bypass gadget (Lemma 4)."""

import pytest

from repro.bounds.harmonic import harmonic_diff
from repro.games import check_equilibrium
from repro.games.equilibrium import best_deviation_from_tree
from repro.hardness.bypass import (
    build_bypass_game,
    bypass_ell,
    connector_deviates,
)


class TestEll:
    def test_definition_minimal(self):
        for kappa in (1, 4, 7, 12):
            ell = bypass_ell(kappa)
            assert harmonic_diff(kappa + ell, kappa) > 1.0
            assert harmonic_diff(kappa + ell - 1, kappa) <= 1.0

    def test_roughly_e_minus_one_times_kappa(self):
        # ell/kappa -> e - 1 ~ 1.718 from above as kappa grows.
        ratios = {kappa: bypass_ell(kappa) / kappa for kappa in (10, 200, 5000)}
        assert all(1.65 < r < 2.0 for r in ratios.values())
        assert ratios[5000] == pytest.approx(1.718, abs=0.01)
        assert ratios[10] > ratios[200] > ratios[5000]

    def test_validation(self):
        with pytest.raises(ValueError):
            bypass_ell(0)


class TestLemma4:
    @pytest.mark.parametrize("kappa", [3, 5, 7])
    def test_deviation_iff_beta_below_capacity(self, kappa):
        """Lemma 4, executed on the actual game for beta around kappa."""
        for beta in range(0, kappa + 3):
            game, state, gadget = build_bypass_game(kappa, beta)
            dev = best_deviation_from_tree(state, gadget.connector)
            deviates = dev.deviation_cost < dev.current_cost - 1e-12
            assert deviates == (beta < kappa)
            assert deviates == connector_deviates(kappa, beta)

    def test_connector_cost_formula(self):
        kappa, beta = 5, 7
        game, state, gadget = build_bypass_game(kappa, beta)
        cost = state.player_cost(gadget.connector)
        assert cost == pytest.approx(harmonic_diff(beta + gadget.ell, beta))

    def test_full_equilibrium_when_saturated(self):
        kappa = 4
        game, state, gadget = build_bypass_game(kappa, beta=kappa)
        assert check_equilibrium(state).is_equilibrium

    def test_not_equilibrium_when_underfull(self):
        kappa = 4
        game, state, gadget = build_bypass_game(kappa, beta=kappa - 1)
        report = check_equilibrium(state)
        assert not report.is_equilibrium

    def test_basic_path_players_stable_when_saturated(self):
        """No basic-path player (not just the connector) wants the bypass."""
        kappa = 5
        game, state, gadget = build_bypass_game(kappa, beta=kappa)
        for node in gadget.path_nodes:
            dev = best_deviation_from_tree(state, node)
            assert dev.deviation_cost >= dev.current_cost - 1e-12

    def test_mst_excludes_bypass(self):
        game, state, gadget = build_bypass_game(4, 2)
        mst = game.mst_state()
        assert gadget.bypass_edge not in mst.edge_set()
        assert state.edge_set() == mst.edge_set() | (
            state.edge_set() - mst.edge_set()
        )

    def test_beta_validation(self):
        with pytest.raises(ValueError):
            build_bypass_game(3, -1)
