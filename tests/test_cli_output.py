"""CLI --out flag, report formatting, --version and --canonical."""

import json

import pytest

from repro import __version__
from repro.cli import main


class TestOutFlag:
    def test_writes_file(self, tmp_path, capsys):
        out = tmp_path / "report.txt"
        assert main(["run", "E10", "--out", str(out)]) == 0
        text = out.read_text()
        assert "[E10]" in text
        assert "virtual_cost" in text
        # Still printed to stdout too.
        assert "[E10]" in capsys.readouterr().out

    def test_no_file_without_flag(self, tmp_path, capsys):
        assert main(["run", "E5"]) == 0
        assert list(tmp_path.iterdir()) == []

    def test_ablation_via_cli(self, tmp_path):
        out = tmp_path / "a1.txt"
        assert main(["run", "A1", "--out", str(out)]) == 0
        assert "packing rule" in out.read_text()


class TestVersionFlag:
    def test_version_matches_package(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert capsys.readouterr().out.strip() == f"repro-experiments {__version__}"


@pytest.fixture()
def instance_file(tmp_path):
    path = tmp_path / "instances.json"
    assert main(["gen", "--n", "8", "--count", "1", "--seed", "4", "--out", str(path)]) == 0
    return path


class TestCanonicalFlag:
    def test_canonical_output_is_byte_stable(self, tmp_path, instance_file):
        out_a = tmp_path / "a.json"
        out_b = tmp_path / "b.json"
        base = ["solve", str(instance_file), "--solver", "sne-lp2", "--json", "--canonical"]
        assert main(base + ["--out", str(out_a)]) == 0
        assert main(base + ["--out", str(out_b)]) == 0
        assert out_a.read_bytes() == out_b.read_bytes()
        payload = json.loads(out_a.read_text())
        assert payload["wall_clock_seconds"] == 0.0

    def test_without_canonical_wall_clock_survives(self, tmp_path, instance_file):
        out = tmp_path / "raw.json"
        assert (
            main(["solve", str(instance_file), "--solver", "sne-lp2", "--json",
                  "--out", str(out)]) == 0
        )
        assert json.loads(out.read_text())["wall_clock_seconds"] > 0.0

    def test_canonical_requires_json(self, instance_file, capsys):
        rc = main(["solve", str(instance_file), "--solver", "sne-lp2", "--canonical"])
        assert rc == 2
        assert "--canonical only applies to --json" in capsys.readouterr().err

    def test_solve_batch_canonical(self, tmp_path, instance_file):
        out_a = tmp_path / "a.json"
        out_b = tmp_path / "b.json"
        base = [
            "solve-batch", str(instance_file),
            "--solver", "sne-lp1", "--solver", "sne-lp2",
            "--json", "--canonical",
        ]
        assert main(base + ["--out", str(out_a)]) == 0
        assert main(base + ["--out", str(out_b)]) == 0
        assert out_a.read_bytes() == out_b.read_bytes()
        grid = json.loads(out_a.read_text())
        assert [[cell["wall_clock_seconds"] for cell in row] for row in grid] == [[0.0, 0.0]]
