"""Tests for spanning tree enumeration/counting (Matrix-Tree cross-check)."""

import networkx as nx
import pytest
from hypothesis import given, settings, strategies as st

from repro.graphs import (
    Graph,
    count_spanning_trees,
    enumerate_spanning_trees,
    enumerate_minimum_spanning_trees,
    is_spanning_tree,
    kruskal_mst,
)
from repro.graphs.generators import complete_graph, cycle_graph, random_connected_gnp


class TestCounting:
    def test_tree_has_one(self):
        g = Graph.from_edges([(0, 1, 1.0), (1, 2, 1.0)])
        assert count_spanning_trees(g) == 1

    def test_cycle_has_n(self):
        for n in (3, 4, 7):
            assert count_spanning_trees(cycle_graph(n)) == n

    def test_cayley_formula(self):
        # K_n has n^(n-2) spanning trees.
        for n in (3, 4, 5, 6):
            assert count_spanning_trees(complete_graph(n)) == n ** (n - 2)

    def test_disconnected_zero(self):
        g = Graph.from_edges([(0, 1, 1.0)])
        g.add_node(5)
        assert count_spanning_trees(g) == 0

    def test_single_node(self):
        g = Graph()
        g.add_node(0)
        assert count_spanning_trees(g) == 1


class TestEnumeration:
    def test_cycle_enumeration(self):
        g = cycle_graph(5)
        trees = list(enumerate_spanning_trees(g))
        assert len(trees) == 5
        assert len({frozenset(t) for t in trees}) == 5
        for t in trees:
            assert is_spanning_tree(g, t)

    def test_matches_matrix_tree_count(self):
        g = complete_graph(5)
        trees = list(enumerate_spanning_trees(g))
        assert len(trees) == count_spanning_trees(g) == 125

    def test_limit(self):
        g = complete_graph(6)
        trees = list(enumerate_spanning_trees(g, limit=10))
        assert len(trees) == 10

    def test_empty_graph(self):
        assert list(enumerate_spanning_trees(Graph())) == []

    def test_disconnected_yields_nothing(self):
        g = Graph.from_edges([(0, 1, 1.0)])
        g.add_node(3)
        assert list(enumerate_spanning_trees(g)) == []


class TestMSTEnumeration:
    def test_unique_mst(self):
        g = Graph.from_edges([(0, 1, 1.0), (1, 2, 2.0), (0, 2, 5.0)])
        msts = list(enumerate_minimum_spanning_trees(g))
        assert len(msts) == 1
        assert set(msts[0]) == set(kruskal_mst(g))

    def test_uniform_cycle_all_msts(self):
        g = cycle_graph(6)
        msts = list(enumerate_minimum_spanning_trees(g))
        assert len(msts) == 6

    def test_mixed_weights(self):
        # Square with one heavy diagonal pair: two MSTs drop one unit edge.
        g = Graph.from_edges(
            [(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0), (3, 0, 1.0), (0, 2, 9.0)]
        )
        msts = list(enumerate_minimum_spanning_trees(g))
        assert len(msts) == 4  # the 4-cycle part gives 4, heavy edge never used
        for t in msts:
            assert (0, 2) not in t

    def test_all_msts_have_optimal_weight(self):
        g = random_connected_gnp(8, 0.5, seed=11)
        best = g.subset_weight(kruskal_mst(g))
        for t in enumerate_minimum_spanning_trees(g):
            assert g.subset_weight(t) == pytest.approx(best)

    def test_limit_respected(self):
        g = cycle_graph(8)
        assert len(list(enumerate_minimum_spanning_trees(g, limit=3))) == 3


@settings(max_examples=25, deadline=None)
@given(st.integers(4, 8), st.floats(0.3, 0.9), st.integers(0, 10_000))
def test_enumeration_matches_networkx_count(n, p, seed):
    g = random_connected_gnp(n, p, seed=seed)
    h = nx.Graph()
    for u, v, w in g.edges():
        h.add_edge(u, v)
    expected = round(nx.number_of_spanning_trees(h))
    ours = len(list(enumerate_spanning_trees(g)))
    assert ours == expected == count_spanning_trees(g)
