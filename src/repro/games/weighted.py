"""Weighted network design games (Chen & Roughgarden; the paper's §6).

Player ``i`` carries a demand ``d_i > 0`` and pays the *demand-proportional*
share of each edge she uses:  ``cost_i = sum_a d_i (w_a - b_a) / D_a(T)``
where ``D_a(T)`` is the total demand on ``a``.  Unweighted games are the
``d_i = 1`` special case.  Sharing is pluggable through
:class:`~repro.games.base.CostSharingRule` — demand-proportional is the
default, and arbitrary per-edge splits (:class:`~repro.games.base.
PerEdgeSplit`) ride the same machinery.

Everything engine-shaped runs on the shared
:class:`~repro.games.engine.BestResponseEngine` (the ``_RuleBinding``
prices deviations with per-player contribution vectors): equilibrium
checking, the LP (1) separation oracle behind :func:`solve_weighted_sne`,
and the re-verification of its output.  The dict-based
:func:`weighted_best_response` closure is kept only as the reference
implementation behind :func:`check_weighted_equilibrium_legacy` — the
engine tests and ``benchmarks/bench_families.py`` cross-check against it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.games.base import CostSharingRule, ProportionalSharing
from repro.games.game import Subsidies, _path_nodes_to_edges, shortest_node_paths
from repro.graphs.graph import Edge, Graph, Node, canonical_edge
from repro.graphs.shortest_paths import dijkstra
from repro.subsidies.assignment import SubsidyAssignment
from repro.utils.tolerances import EQ_TOL, is_improvement


@dataclass(frozen=True)
class WeightedPlayer:
    index: int
    source: Node
    target: Node
    demand: float


class WeightedState:
    """A strategy profile of a weighted game; tracks contribution loads."""

    #: engine dispatch marker (see ``BestResponseEngine.bind``)
    binding_kind = "rule"

    def __init__(self, game: "WeightedNetworkDesignGame", node_paths: Sequence[Sequence[Node]]):
        if len(node_paths) != game.n_players:
            raise ValueError(f"expected {game.n_players} paths")
        self.game = game
        self.node_paths: List[Tuple[Node, ...]] = []
        self.edge_paths: List[Tuple[Edge, ...]] = []
        rule = game.cost_sharing
        load: Dict[Edge, float] = {}
        for i, (player, nodes) in enumerate(zip(game.players, node_paths)):
            nodes = tuple(nodes)
            if nodes[0] != player.source or nodes[-1] != player.target:
                raise ValueError(f"path endpoints wrong for player {player.index}")
            edges = _path_nodes_to_edges(nodes)
            for e in edges:
                if not game.graph.has_edge(*e):
                    raise ValueError(f"non-edge {e!r}")
                load[e] = load.get(e, 0.0) + rule.weight_on(i, e)
            self.node_paths.append(nodes)
            self.edge_paths.append(edges)
        self.load = load

    def established_edges(self) -> List[Edge]:
        """Edges carrying load (the built network)."""
        return list(self.load)

    def social_cost(self) -> float:
        return sum(self.game.graph.weight(*e) for e in self.load)

    def player_cost(self, i: int, subsidies: Optional[Subsidies] = None) -> float:
        g = self.game.graph
        rule = self.game.cost_sharing
        total = 0.0
        for e in self.edge_paths[i]:
            b = subsidies.get(e, 0.0) if subsidies else 0.0
            total += rule.weight_on(i, e) * max(0.0, g.weight(*e) - b) / self.load[e]
        return total

    def total_player_cost(self, subsidies: Optional[Subsidies] = None) -> float:
        return sum(self.player_cost(i, subsidies) for i in range(self.game.n_players))


class WeightedNetworkDesignGame:
    """Network design game with player demands and pluggable sharing.

    Parameters
    ----------
    graph:
        Connected edge-weighted graph.
    terminal_pairs:
        One ``(source, target)`` pair per player.
    demands:
        Positive per-player demands (``d_i = 1`` recovers the fair game).
    cost_sharing:
        Optional :class:`~repro.games.base.CostSharingRule` overriding the
        default demand-proportional split (e.g. a
        :class:`~repro.games.base.PerEdgeSplit`).
    """

    #: game-family name (see :mod:`repro.games.base`)
    family = "weighted"

    def __init__(
        self,
        graph: Graph,
        terminal_pairs: Sequence[Tuple[Node, Node]],
        demands: Sequence[float],
        cost_sharing: Optional[CostSharingRule] = None,
    ):
        if len(terminal_pairs) != len(demands):
            raise ValueError("one demand per player required")
        self.graph = graph
        self.players: List[WeightedPlayer] = []
        for i, ((s, t), d) in enumerate(zip(terminal_pairs, demands)):
            if s not in graph or t not in graph:
                raise ValueError(f"terminals {(s, t)!r} not in graph")
            if s == t:
                raise ValueError("identical terminals")
            if d <= 0:
                raise ValueError(f"demand must be positive, got {d}")
            self.players.append(WeightedPlayer(i, s, t, float(d)))
        self.cost_sharing: CostSharingRule = (
            cost_sharing
            if cost_sharing is not None
            else ProportionalSharing([p.demand for p in self.players])
        )

    @property
    def n_players(self) -> int:
        return len(self.players)

    @property
    def demands(self) -> Tuple[float, ...]:
        return tuple(p.demand for p in self.players)

    def state(self, node_paths: Sequence[Sequence[Node]]) -> WeightedState:
        return WeightedState(self, node_paths)

    def shortest_path_state(self) -> WeightedState:
        """Every player on her weight-shortest path (natural target)."""
        return self.state(shortest_node_paths(self.graph, self.players))

    def default_state(self) -> WeightedState:
        """The family's natural target state (all shortest paths)."""
        return self.shortest_path_state()


def weighted_best_response(
    state: WeightedState, i: int, subsidies: Optional[Subsidies] = None
) -> Tuple[float, List[Node]]:
    """Reference best response of player i: cost and node path.

    Edge ``a`` costs her ``alpha_i(a) (w_a - b_a) / (L_a + alpha_i(a) -
    alpha_i(a) * uses_i(a))``.  This is the dict-based slow path kept for
    cross-validation (:func:`check_weighted_equilibrium_legacy`); the
    engine's rule binding is the production implementation.
    """
    game = state.game
    player = game.players[i]
    rule = game.cost_sharing
    own = set(state.edge_paths[i])

    def weight_fn(u: Node, v: Node) -> float:
        e = canonical_edge(u, v)
        w = game.graph.weight(u, v)
        b = subsidies.get(e, 0.0) if subsidies else 0.0
        a = rule.weight_on(i, e)
        denom = state.load.get(e, 0.0) + a - (a if e in own else 0.0)
        return a * max(0.0, w - b) / denom

    dist, parent = dijkstra(game.graph, player.source, weight_fn=weight_fn, target=player.target)
    nodes = [player.target]
    while nodes[-1] != player.source:
        nodes.append(parent[nodes[-1]])
    nodes.reverse()
    return dist[player.target], nodes


def check_weighted_equilibrium(
    state: WeightedState, subsidies: Optional[Subsidies] = None, tol: float = EQ_TOL
) -> bool:
    """Pure Nash check for weighted games (weak inequality, shared tol).

    Runs on the vectorized engine: the graph is interned once, loads and
    per-player contribution vectors live in flat arrays, and each player
    costs one array division plus a bounded int-id Dijkstra.
    """
    from repro.games.equilibrium import check_equilibrium

    return check_equilibrium(state, subsidies, tol=tol).is_equilibrium


def check_weighted_equilibrium_legacy(
    state: WeightedState,
    subsidies: Optional[Subsidies] = None,
    tol: float = EQ_TOL,
    find_all: bool = False,
) -> bool:
    """Reference Nash check via the per-player dict-based oracle.

    Semantically identical to :func:`check_weighted_equilibrium`; kept as
    the cross-validation baseline (``benchmarks/bench_families.py``
    measures the engine's speedup against it).  ``find_all`` keeps
    scanning past the first improving deviation — the full-scan mode the
    benchmark times, mirroring ``check_equilibrium(..., find_all=True)``.
    """
    stable = True
    for i in range(state.game.n_players):
        current = state.player_cost(i, subsidies)
        if current <= tol:
            continue
        best, _ = weighted_best_response(state, i, subsidies)
        if is_improvement(best, current, tol):
            stable = False
            if not find_all:
                return False
    return stable


def solve_weighted_sne(
    state: WeightedState,
    method: str = "highs",
    max_rounds: int = 200,
    verify: bool = True,
) -> Tuple[Optional[SubsidyAssignment], float]:
    """Minimum subsidies enforcing a weighted state (LP (1) + oracle).

    Delegates to the unified cutting-plane solver
    (:func:`repro.subsidies.sne_lp.solve_sne_cutting_plane_lp1`): the
    engine's rule binding prices the separation oracle and emits the cut
    rows through the binding's share coefficients, so weighted games share
    one code path with every other family.  With ``verify`` (default) the
    optimum is re-verified through the same engine binding — the shared
    relative-tolerance semantics of :func:`repro.utils.tolerances.
    is_improvement`, not a bespoke absolute float check — and a
    verification failure is reported as infeasible.

    Returns ``(subsidies, cost)``; ``(None, inf)`` when the cutting-plane
    loop fails to converge or verification rejects the optimum (neither
    observed on the tested families).
    """
    from repro.subsidies.sne_lp import solve_sne_cutting_plane_lp1

    res = solve_sne_cutting_plane_lp1(
        state, method=method, max_rounds=max_rounds, verify=verify
    )
    if not res.feasible or (verify and not res.verified):
        return None, float("inf")
    return res.subsidies, res.cost
