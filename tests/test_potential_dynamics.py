"""Tests for Rosenthal potential and best-response dynamics."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.bounds.harmonic import harmonic
from repro.games import (
    BroadcastGame,
    NetworkDesignGame,
    best_response_dynamics,
    check_equilibrium,
    rosenthal_potential,
)
from repro.games.dynamics import equilibrium_from_optimum
from repro.games.potential import potential_of_tree
from repro.graphs import Graph
from repro.graphs.generators import fan_graph, random_connected_gnp


class TestPotential:
    def test_single_user_edges(self):
        g = Graph.from_edges([(0, 1, 2.0), (1, 2, 3.0)])
        game = NetworkDesignGame(g, [(0, 2)])
        st = game.state([[0, 1, 2]])
        assert rosenthal_potential(st) == pytest.approx(5.0)

    def test_shared_edge_harmonic(self):
        g = Graph.from_edges([(0, 1, 6.0)])
        game = NetworkDesignGame(g, [(0, 1), (0, 1), (0, 1)])
        st = game.state([[0, 1]] * 3)
        assert rosenthal_potential(st) == pytest.approx(6.0 * harmonic(3))

    def test_subsidies_lower_potential(self):
        g = Graph.from_edges([(0, 1, 6.0)])
        game = NetworkDesignGame(g, [(0, 1)])
        st = game.state([[0, 1]])
        assert rosenthal_potential(st, {(0, 1): 2.0}) == pytest.approx(4.0)

    def test_tree_potential_matches_general(self):
        g = Graph.from_edges([(0, 1, 1.0), (1, 2, 2.0), (0, 2, 3.0)])
        game = BroadcastGame(g, root=0)
        tree = game.tree_state([(0, 1), (1, 2)])
        nd = game.to_network_design_game()
        general = nd.state(game.tree_state_to_paths(tree))
        assert potential_of_tree(tree) == pytest.approx(rosenthal_potential(general))

    def test_deviation_changes_potential_by_cost_delta(self):
        """The defining property of an exact potential function."""
        g = Graph.from_edges([(0, 1, 1.0), (1, 2, 1.0), (0, 2, 1.3)])
        game = NetworkDesignGame(g, [(0, 2), (1, 2)])
        st = game.state([[0, 1, 2], [1, 2]])
        st2 = st.with_player_path(0, [0, 2])
        delta_phi = rosenthal_potential(st2) - rosenthal_potential(st)
        delta_cost = st2.player_cost(0) - st.player_cost(0)
        assert delta_phi == pytest.approx(delta_cost)

    def test_potential_sandwiches_social_cost(self):
        g = random_connected_gnp(10, 0.4, seed=7)
        game = BroadcastGame(g, root=0)
        st = game.mst_state()
        phi = potential_of_tree(st)
        w = st.social_cost()
        assert w <= phi + 1e-9
        assert phi <= harmonic(game.n_players) * w + 1e-9


class TestDynamics:
    def test_converges_to_equilibrium(self):
        game = BroadcastGame(fan_graph(4, rim_weight_scale=1.0), root=0)
        nd = game.to_network_design_game()
        start = nd.state(game.tree_state_to_paths(game.mst_state()))
        result = best_response_dynamics(start)
        assert result.converged
        assert check_equilibrium(result.final_state).is_equilibrium

    def test_potential_trace_strictly_decreasing(self):
        game = BroadcastGame(fan_graph(6, rim_weight_scale=1.0), root=0)
        nd = game.to_network_design_game()
        start = nd.state([[i, 0] for i in range(1, 7)])
        result = best_response_dynamics(start)
        trace = result.potential_trace
        assert all(trace[i + 1] < trace[i] + 1e-12 for i in range(len(trace) - 1))

    def test_already_equilibrium_zero_moves(self):
        g = Graph.from_edges([(0, 1, 1.0), (1, 2, 1.0)])
        game = BroadcastGame(g, root=0)
        nd = game.to_network_design_game()
        start = nd.state(game.tree_state_to_paths(game.mst_state()))
        result = best_response_dynamics(start)
        assert result.converged
        assert result.n_moves == 0
        assert result.n_rounds == 1

    @pytest.mark.parametrize("scheduler", ["round_robin", "random", "max_gain"])
    def test_all_schedulers_reach_equilibria(self, scheduler):
        g = random_connected_gnp(8, 0.45, seed=13)
        game = BroadcastGame(g, root=0)
        nd = game.to_network_design_game()
        start = nd.shortest_path_state()
        result = best_response_dynamics(start, scheduler=scheduler, seed=5)
        assert result.converged
        assert check_equilibrium(result.final_state).is_equilibrium

    def test_unknown_scheduler(self):
        g = Graph.from_edges([(0, 1, 1.0)])
        game = NetworkDesignGame(g, [(0, 1)])
        with pytest.raises(ValueError):
            best_response_dynamics(game.state([[0, 1]]), scheduler="chaotic")


class TestPotentialDescentBound:
    """Experiment E9's core claim: BRD from OPT stays within H_n of OPT."""

    @settings(max_examples=15, deadline=None)
    @given(st.integers(5, 10), st.integers(0, 1000))
    def test_equilibrium_from_optimum_within_harmonic_bound(self, n, seed):
        g = random_connected_gnp(n, 0.5, seed=seed)
        game = BroadcastGame(g, root=0)
        result = equilibrium_from_optimum(game)
        assert result.converged
        opt = game.mst_weight()
        bound = harmonic(game.n_players) * opt
        assert result.final_social_cost <= bound + 1e-9
        assert check_equilibrium(result.final_state).is_equilibrium
