"""Tests for the NP-solver substrates (DPLL, bin packing, MIS)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.hardness.solvers import (
    BinPackingInstance,
    CNFFormula,
    complete_graph_k4,
    dpll_solve,
    is_3sat4,
    is_independent_set,
    k33_graph,
    max_independent_set,
    petersen_graph,
    prism_graph,
    random_3_regular_graph,
    random_3sat,
    solve_bin_packing_exact,
    to_strict_form,
)
from repro.hardness.solvers.mis import is_k_regular
from repro.hardness.solvers.sat import is_3sat


class TestCNF:
    def test_from_lists(self):
        f = CNFFormula.from_lists([[1, -2, 3], [2, 3, -4]])
        assert f.n_vars == 4
        assert f.n_clauses == 2

    def test_rejects_empty_clause(self):
        with pytest.raises(ValueError):
            CNFFormula.from_lists([[]])

    def test_rejects_zero_literal(self):
        with pytest.raises(ValueError):
            CNFFormula.from_lists([[0, 1, 2]])

    def test_satisfaction(self):
        f = CNFFormula.from_lists([[1, -2, 3]])
        assert f.is_satisfied_by({1: True, 2: True, 3: False})
        assert not f.is_satisfied_by({1: False, 2: True, 3: False})

    def test_occurrences(self):
        f = CNFFormula.from_lists([[1, 2, 3], [-1, 2, 4]])
        assert f.occurrences(1) == [(0, 1), (1, -1)]

    def test_is_3sat_checks(self):
        good = CNFFormula.from_lists([[1, 2, 3]])
        assert is_3sat(good) and is_3sat4(good)
        dup_var = CNFFormula.from_lists([[1, -1, 2]])
        assert not is_3sat(dup_var)
        # Variable 1 appears five times: 3SAT but not 3SAT-4.
        many = CNFFormula.from_lists([[1, 2, 3]] * 5)
        assert is_3sat(many) and not is_3sat4(many)


class TestDPLL:
    def test_simple_sat(self):
        f = CNFFormula.from_lists([[1, 2, 3], [-1, 2, 3]])
        model = dpll_solve(f)
        assert model is not None
        assert f.is_satisfied_by(model)

    def test_unit_chain(self):
        f = CNFFormula.from_lists([[1], [-1, 2], [-2, 3]])
        model = dpll_solve(f)
        assert model == {1: True, 2: True, 3: True}

    def test_full_unsat_cube(self):
        clauses = [
            [s1 * 1, s2 * 2, s3 * 3]
            for s1 in (1, -1)
            for s2 in (1, -1)
            for s3 in (1, -1)
        ]
        assert dpll_solve(CNFFormula.from_lists(clauses)) is None

    def test_small_unsat(self):
        f = CNFFormula.from_lists([[1], [-1]])
        assert dpll_solve(f) is None

    @settings(max_examples=30, deadline=None)
    @given(st.integers(3, 8), st.integers(1, 20), st.integers(0, 10_000))
    def test_agrees_with_brute_force(self, n_vars, n_clauses, seed):
        from itertools import product

        f = random_3sat(n_vars, n_clauses, seed=seed)
        brute = any(
            f.is_satisfied_by(dict(zip(range(1, n_vars + 1), bits)))
            for bits in product([False, True], repeat=n_vars)
        )
        model = dpll_solve(f)
        assert (model is not None) == brute
        if model:
            assert f.is_satisfied_by(model)


class TestBinPacking:
    def test_strict_predicate(self):
        assert BinPackingInstance((2, 2, 2, 2), 2, 4).is_strict()
        assert not BinPackingInstance((2, 2, 3, 1), 2, 4).is_strict()  # odd sizes
        assert not BinPackingInstance((2, 2), 2, 4).is_strict()  # wrong total

    def test_solvable(self):
        inst = BinPackingInstance((2, 2, 2, 2), 2, 4)
        sol = solve_bin_packing_exact(inst)
        assert sol is not None
        assert inst.check_solution(sol)

    def test_unsolvable(self):
        # Three 4s cannot fill two bins of 6 exactly.
        inst = BinPackingInstance((4, 4, 4), 2, 6)
        assert inst.is_strict()
        assert solve_bin_packing_exact(inst) is None

    def test_larger_solvable(self):
        inst = BinPackingInstance((6, 4, 2, 2, 2, 8), 3, 8)
        assert inst.is_strict()
        sol = solve_bin_packing_exact(inst)
        assert sol is not None and inst.check_solution(sol)

    def test_check_solution_rejects_bad(self):
        inst = BinPackingInstance((2, 2, 2, 2), 2, 4)
        assert not inst.check_solution([0, 0, 0, 0])
        assert not inst.check_solution([0, 0, 1])
        assert not inst.check_solution([0, 0, 5, 1])

    def test_to_strict_form(self):
        strict, padding = to_strict_form([3, 3, 2], capacity=4, n_bins=2)
        assert padding == 0
        assert strict.sizes == (6, 6, 4)
        assert strict.capacity == 8
        assert strict.is_strict()

    def test_to_strict_form_with_padding(self):
        strict, padding = to_strict_form([3], capacity=4, n_bins=2)
        assert padding == 5
        assert sum(strict.sizes) == strict.n_bins * strict.capacity

    def test_strict_equivalence(self):
        # Conventional feasible <-> strict feasible, on a hand example.
        strict, _ = to_strict_form([3, 3, 2, 2, 2], capacity=6, n_bins=2)
        assert solve_bin_packing_exact(strict) is not None
        strict_bad, _ = to_strict_form([4, 4, 4], capacity=6, n_bins=2)
        assert solve_bin_packing_exact(strict_bad) is None

    def test_validation(self):
        with pytest.raises(ValueError):
            BinPackingInstance((0,), 1, 4)
        with pytest.raises(ValueError):
            to_strict_form([9], capacity=4, n_bins=2)


class TestMIS:
    def test_known_sizes(self):
        assert len(max_independent_set(complete_graph_k4())) == 1
        assert len(max_independent_set(k33_graph())) == 3
        assert len(max_independent_set(petersen_graph())) == 4
        assert len(max_independent_set(prism_graph(3))) == 2

    def test_result_is_independent(self):
        for g in (complete_graph_k4(), petersen_graph(), prism_graph(4)):
            assert is_independent_set(g, max_independent_set(g))

    def test_is_independent_set_rejects(self):
        g = complete_graph_k4()
        assert not is_independent_set(g, [0, 1])
        assert not is_independent_set(g, [0, 0])
        assert is_independent_set(g, [0])

    def test_families_are_cubic(self):
        for g in (
            complete_graph_k4(),
            k33_graph(),
            petersen_graph(),
            prism_graph(5),
        ):
            assert is_k_regular(g, 3)

    def test_random_3_regular(self):
        g = random_3_regular_graph(10, seed=3)
        assert is_k_regular(g, 3)
        assert g.is_connected()

    def test_random_3_regular_validation(self):
        with pytest.raises(ValueError):
            random_3_regular_graph(5)

    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 10_000))
    def test_mis_matches_brute_force(self, seed):
        from itertools import combinations

        g = random_3_regular_graph(8, seed=seed)
        best = len(max_independent_set(g))
        brute = 0
        nodes = g.nodes
        for r in range(len(nodes), 0, -1):
            if any(is_independent_set(g, c) for c in combinations(nodes, r)):
                brute = r
                break
        assert best == brute
