"""``repro.runtime`` — parallel sweep execution with a content-addressed cache.

The orchestration layer above :mod:`repro.api`: where the facade solves one
instance, the runtime runs *grids* — model × size × seed × solver — across
worker processes, reusing previously computed cells from an on-disk cache.

* :class:`SweepSpec` / :class:`SweepJob` — declarative grids expanded into
  process-safe job payloads (:mod:`repro.runtime.spec`);
* :class:`SweepRunner` / :class:`SweepResult` — cache-aware parallel
  execution with per-job timeouts and live progress
  (:mod:`repro.runtime.runner`);
* :class:`ResultCache` — content-addressed storage keyed by
  (instance JSON, solver, solver version, options)
  (:mod:`repro.runtime.cache`);
* :class:`SweepCoordinator` / :func:`run_worker` — multi-host sharding of
  a sweep over an HTTP or shared-spool-directory protocol, with
  lease-based work-stealing and streaming aggregation
  (:mod:`repro.runtime.distributed`).

>>> from repro.runtime import SweepSpec, SweepRunner
>>> spec = SweepSpec(solvers=["theorem6"], sizes=[8], count=1, seed=0)
>>> result = SweepRunner(cache=False).run(spec.expand())
>>> [o.status for o in result]
['ok']

The CLI front ends are ``repro-experiments sweep`` and the cache-aware
``repro-experiments run all``.
"""

from repro.runtime.cache import (
    CACHE_SCHEMA_VERSION,
    NullCache,
    ResultCache,
    coerce_cache,
    default_cache_dir,
    experiment_job_key,
    solve_job_key,
)
from repro.runtime.distributed import (
    CoordinatorClient,
    DistributedSweepResult,
    SweepCoordinator,
    WorkerSummary,
    run_worker,
)
from repro.runtime.runner import (
    JobOutcome,
    SweepResult,
    SweepRunner,
    execute_payloads,
    run_solve_batch,
)
from repro.runtime.spec import (
    MODELS,
    SweepJob,
    SweepSpec,
    generate_instance,
    jobs_from_instances,
    read_spec_file,
)
from repro.runtime.workers import (
    JobTimeout,
    experiment_source_digest,
    run_experiment_job,
    run_solve_job,
)

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "CoordinatorClient",
    "DistributedSweepResult",
    "JobOutcome",
    "JobTimeout",
    "MODELS",
    "NullCache",
    "ResultCache",
    "SweepCoordinator",
    "SweepJob",
    "SweepResult",
    "SweepRunner",
    "SweepSpec",
    "WorkerSummary",
    "coerce_cache",
    "default_cache_dir",
    "read_spec_file",
    "execute_payloads",
    "experiment_job_key",
    "experiment_source_digest",
    "generate_instance",
    "jobs_from_instances",
    "run_experiment_job",
    "run_solve_batch",
    "run_solve_job",
    "run_worker",
    "solve_job_key",
]
