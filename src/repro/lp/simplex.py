"""Dense two-phase primal simplex, built from scratch.

This is the reference LP solver the cutting-plane driver was developed
against; production solves go through scipy's HiGHS (see
:mod:`repro.lp.backend`).  The implementation is a textbook tableau method:

* finite lower/upper variable bounds are compiled into shift + extra rows,
  so the core solves ``min c.x : A x <= b, x >= 0``;
* rows with negative right-hand side get artificial variables and a phase-1
  feasibility solve;
* pivoting uses Dantzig's rule with an automatic switch to Bland's rule
  (which guarantees termination) once the iteration count gets large.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.lp.problem import LinearProgram, LPResult, LPStatus

_PIVOT_EPS = 1e-10


def simplex_solve(problem: LinearProgram, max_iter: int = 20_000) -> LPResult:
    """Solve a :class:`LinearProgram` with the two-phase tableau simplex."""
    A, b = problem.matrices()
    c = problem.c.copy()
    lower = problem.lower.copy()
    upper = problem.upper.copy()
    n = problem.n_vars

    if np.any(np.isinf(lower)):
        raise ValueError("simplex_solve requires finite lower bounds")

    # Shift x' = x - lower so all variables are >= 0.
    shift = lower
    b = b - A @ shift if A.size else b
    const_obj = float(c @ shift)
    ub_shifted = upper - lower

    # Finite upper bounds become rows  x'_j <= u_j.
    finite_ub = np.where(np.isfinite(ub_shifted))[0]
    if finite_ub.size:
        ub_rows = np.zeros((finite_ub.size, n))
        ub_rows[np.arange(finite_ub.size), finite_ub] = 1.0
        A = np.vstack([A, ub_rows]) if A.size else ub_rows
        b = np.concatenate([b, ub_shifted[finite_ub]])

    m = A.shape[0] if A.size else 0
    if m == 0:
        # Unconstrained besides x >= 0: optimum at 0 unless some c_j < 0.
        if np.any(c < -_PIVOT_EPS):
            return LPResult(LPStatus.UNBOUNDED)
        return LPResult(LPStatus.OPTIMAL, x=shift.copy(), objective=const_obj)

    status, x_shifted = _two_phase(A, b, c, max_iter)
    if status is not LPStatus.OPTIMAL:
        return LPResult(status)
    x = x_shifted + shift
    return LPResult(LPStatus.OPTIMAL, x=x, objective=float(problem.c @ x))


def _two_phase(
    A: np.ndarray, b: np.ndarray, c: np.ndarray, max_iter: int
) -> Tuple[LPStatus, Optional[np.ndarray]]:
    """Solve min c.x : A x <= b, x >= 0 (b may be negative)."""
    m, n = A.shape

    # Normalize rows so every RHS is nonnegative; <=-rows keep a +1 slack,
    # negated rows get a -1 slack (surplus) and an artificial variable.
    A = A.copy()
    b = b.copy()
    neg = b < 0
    A[neg] *= -1.0
    b[neg] *= -1.0
    slack_sign = np.where(neg, -1.0, 1.0)

    n_art = int(neg.sum())
    total = n + m + n_art
    T = np.zeros((m, total))
    T[:, :n] = A
    T[np.arange(m), n + np.arange(m)] = slack_sign
    art_cols = []
    k = 0
    basis = np.empty(m, dtype=int)
    for i in range(m):
        if neg[i]:
            col = n + m + k
            T[i, col] = 1.0
            art_cols.append(col)
            basis[i] = col
            k += 1
        else:
            basis[i] = n + i

    rhs = b.copy()

    if n_art:
        # Phase 1: minimize the sum of artificials.
        obj1 = np.zeros(total)
        obj1[art_cols] = 1.0
        status, val = _run_simplex(T, rhs, obj1, basis, max_iter)
        if status is not LPStatus.OPTIMAL:
            return status if status is not LPStatus.UNBOUNDED else LPStatus.INFEASIBLE, None
        if val > 1e-7:
            return LPStatus.INFEASIBLE, None
        # Pivot any artificial still in the basis out (or drop its row).
        for i in range(m):
            if basis[i] in art_cols and rhs[i] <= 1e-9:
                pivot_col = next(
                    (j for j in range(n + m) if abs(T[i, j]) > _PIVOT_EPS), None
                )
                if pivot_col is not None:
                    _pivot(T, rhs, i, pivot_col, basis)
        art_set = set(art_cols)
        if any(bv in art_set for bv in basis):
            # Degenerate rows that are all-zero outside artificials are
            # redundant; zero them so phase 2 ignores them.
            for i in range(m):
                if basis[i] in art_set:
                    T[i, :] = 0.0
                    T[i, basis[i]] = 1.0
                    rhs[i] = 0.0
        # Forbid artificials from re-entering.
        T[:, art_cols] = 0.0
        for i in range(m):
            if basis[i] in art_set:
                T[i, basis[i]] = 1.0

    # Phase 2.
    obj2 = np.zeros(total)
    obj2[:n] = c
    status, _ = _run_simplex(T, rhs, obj2, basis, max_iter, frozen=set(art_cols) if n_art else None)
    if status is not LPStatus.OPTIMAL:
        return status, None
    x = np.zeros(total)
    x[basis] = rhs
    return LPStatus.OPTIMAL, x[:n]


def _pivot(T: np.ndarray, rhs: np.ndarray, row: int, col: int, basis: np.ndarray) -> None:
    piv = T[row, col]
    T[row] /= piv
    rhs[row] /= piv
    for i in range(T.shape[0]):
        if i != row and abs(T[i, col]) > _PIVOT_EPS:
            factor = T[i, col]
            T[i] -= factor * T[row]
            rhs[i] -= factor * rhs[row]
    basis[row] = col


def _run_simplex(
    T: np.ndarray,
    rhs: np.ndarray,
    obj: np.ndarray,
    basis: np.ndarray,
    max_iter: int,
    frozen: Optional[set] = None,
) -> Tuple[LPStatus, float]:
    """Iterate pivots in place; returns (status, objective value)."""
    m, total = T.shape
    bland_after = max(200, 5 * total)
    for it in range(max_iter):
        # Reduced costs: r = obj - obj_B . T   (computed densely).
        y = obj[basis]
        reduced = obj - y @ T
        if frozen:
            reduced = reduced.copy()
            reduced[list(frozen)] = 0.0
        if it < bland_after:
            col = int(np.argmin(reduced))
            if reduced[col] >= -1e-9:
                return LPStatus.OPTIMAL, float(y @ rhs)
        else:
            candidates = np.where(reduced < -1e-9)[0]
            if candidates.size == 0:
                return LPStatus.OPTIMAL, float(y @ rhs)
            col = int(candidates[0])  # Bland: lowest index
        column = T[:, col]
        positive = column > _PIVOT_EPS
        if not positive.any():
            return LPStatus.UNBOUNDED, float("nan")
        ratios = np.full(m, np.inf)
        ratios[positive] = rhs[positive] / column[positive]
        row = int(np.argmin(ratios))
        if it >= bland_after:
            # Bland's rule also needs lowest basis index among tied rows.
            best = ratios[row]
            tied = np.where(np.abs(ratios - best) <= 1e-12)[0]
            row = int(min(tied, key=lambda i: basis[i]))
        _pivot(T, rhs, row, col, basis)
    return LPStatus.ITERATION_LIMIT, float("nan")
