"""Sweep runtime: expansion determinism, parallel equality, resumability."""

import json
import time

import pytest

from repro.api import solve_many
from repro.api.serialize import game_from_json
from repro.experiments import run_all_tolerant
from repro.games.broadcast import BroadcastGame
from repro.graphs.generators import random_tree_plus_chords
from repro.runtime import (
    JobTimeout,
    ResultCache,
    SweepRunner,
    SweepSpec,
    run_solve_job,
)
from repro.runtime.workers import job_timeout


def small_spec(**overrides):
    kwargs = dict(
        solvers=["sne-lp3", "theorem6"],
        models=["tree-chords"],
        sizes=[8],
        count=2,
        seed=5,
    )
    kwargs.update(overrides)
    return SweepSpec(**kwargs)


def result_bytes(result):
    return json.dumps(result.to_json(), sort_keys=True)


class TestSpecExpansion:
    def test_deterministic_across_expansions(self):
        jobs_a = small_spec().expand()
        jobs_b = small_spec().expand()
        assert [j.label for j in jobs_a] == [j.label for j in jobs_b]
        assert [j.instance for j in jobs_a] == [j.instance for j in jobs_b]

    def test_instance_major_order(self):
        labels = [j.label for j in small_spec().expand()]
        assert labels == [
            "tree-chords-n8[0] x sne-lp3",
            "tree-chords-n8[0] x theorem6",
            "tree-chords-n8[1] x sne-lp3",
            "tree-chords-n8[1] x theorem6",
        ]

    def test_replicas_differ(self):
        jobs = small_spec().expand()
        assert jobs[0].instance != jobs[2].instance  # distinct child seeds

    def test_payloads_deserialize(self):
        game = game_from_json(small_spec().expand()[0].instance)
        assert isinstance(game, BroadcastGame)

    def test_from_json_file(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(
            json.dumps(
                {"solvers": ["theorem6"], "models": ["gnp"], "sizes": [9],
                 "params": {"density": 0.5}, "seed": 2}
            )
        )
        spec = SweepSpec.from_file(path)
        assert spec.solvers == ["theorem6"]
        assert spec.params == {"density": 0.5}
        assert len(spec.expand()) == 1

    def test_from_toml_file(self, tmp_path):
        pytest.importorskip("tomllib")
        path = tmp_path / "spec.toml"
        path.write_text(
            'solvers = ["theorem6", "sne-lp3"]\n'
            "sizes = [8, 10]\ncount = 2\nseed = 3\n"
            "[opts]\nverify = true\n"
        )
        spec = SweepSpec.from_file(path)
        assert len(spec.expand()) == 2 * 2 * 2
        assert spec.opts == {"verify": True}

    def test_unknown_spec_key_rejected(self):
        with pytest.raises(ValueError, match="unknown sweep-spec key"):
            SweepSpec.from_mapping({"solvers": ["theorem6"], "sizess": [8]})

    def test_unknown_model_rejected(self):
        with pytest.raises(ValueError, match="unknown instance model"):
            small_spec(models=["smallworld"])

    def test_entropy_seed_rejected(self):
        # seed=None would silently defeat the cache and byte-identity
        with pytest.raises(ValueError, match="deterministic"):
            small_spec(seed=None)

    def test_unknown_generator_param_rejected(self):
        with pytest.raises(ValueError, match="fit none of the grid's models"):
            small_spec(params={"dencity": 0.3})

    def test_mixed_model_grid_scopes_params_per_model(self):
        spec = small_spec(
            models=["tree-chords", "gnp"],
            params={"density": 0.5, "chord_factor": 1.2},
        )
        jobs = spec.expand()  # must not reject gnp's density for tree-chords
        assert len(jobs) == 2 * 2 * 2  # 2 models x 2 replicas x 2 solvers


class TestRunner:
    def test_parallel_equals_serial_byte_for_byte(self, tmp_path):
        jobs = small_spec().expand()
        serial = SweepRunner(cache=False, jobs=1).run(jobs)
        parallel = SweepRunner(cache=False, jobs=4).run(jobs)
        assert serial.ok and parallel.ok
        assert result_bytes(serial) == result_bytes(parallel)

    def test_warm_cache_identical_and_all_hits(self, tmp_path):
        jobs = small_spec().expand()
        cache = ResultCache(tmp_path)
        cold = SweepRunner(cache=cache).run(jobs)
        warm = SweepRunner(cache=cache).run(jobs)
        assert cold.cache_hits == 0
        assert warm.cache_hits == len(jobs)
        assert result_bytes(cold) == result_bytes(warm)

    def test_deterministic_seeds_across_job_counts(self, tmp_path):
        # Fresh expansion + fresh cache per mode: everything recomputed, and
        # the generated instances (not just the reports) must agree.
        r1 = SweepRunner(cache=ResultCache(tmp_path / "a"), jobs=1).run(
            small_spec().expand()
        )
        r4 = SweepRunner(cache=ResultCache(tmp_path / "b"), jobs=4).run(
            small_spec().expand()
        )
        assert r1.cache_hits == r4.cache_hits == 0
        assert result_bytes(r1) == result_bytes(r4)

    def test_failure_captured_not_raised(self):
        jobs = small_spec(opts={"bogus_option": 123}).expand()
        result = SweepRunner(cache=False).run(jobs)
        assert not result.ok
        assert {o.status for o in result} == {"failed"}
        assert all("bogus_option" in (o.error or "") for o in result)

    def test_unknown_solver_fails_fast(self):
        spec = small_spec(solvers=["definitely-not-a-solver"])
        with pytest.raises(KeyError):
            SweepRunner(cache=False).run(spec.expand())

    def test_resumable_after_interruption(self, tmp_path):
        """A killed sweep resumes from the cells already on disk."""
        jobs = small_spec().expand()
        cache = ResultCache(tmp_path)
        completed = []

        def interrupt_after_two(outcome, done, total):
            completed.append(outcome)
            if done == 2:
                raise KeyboardInterrupt

        with pytest.raises(KeyboardInterrupt):
            SweepRunner(cache=cache, progress=interrupt_after_two).run(jobs)
        assert len(cache) == 2  # the finished prefix survived

        resumed = SweepRunner(cache=cache).run(jobs)
        assert resumed.ok
        assert resumed.cache_hits == 2
        fresh = SweepRunner(cache=ResultCache(tmp_path / "fresh")).run(jobs)
        assert result_bytes(resumed) == result_bytes(fresh)

    def test_progress_reports_every_job(self):
        jobs = small_spec().expand()
        seen = []
        SweepRunner(
            cache=False, progress=lambda o, done, total: seen.append((done, total))
        ).run(jobs)
        assert seen == [(i + 1, len(jobs)) for i in range(len(jobs))]

    def test_jobs_must_be_positive(self):
        with pytest.raises(ValueError):
            SweepRunner(jobs=0)


def _die_once_worker(payload):
    """Test worker: hard-kills its process on first attempt of the marked job."""
    import os
    from pathlib import Path

    marker = Path(payload["marker"])
    if payload.get("die") and not marker.exists():
        marker.write_text("died")
        os._exit(1)  # simulates a segfault/OOM kill: breaks the whole pool
    return {"status": "ok", "echo": payload["i"], "elapsed_seconds": 0.0}


class TestPoolBreakage:
    def test_worker_death_does_not_poison_sweep(self, tmp_path):
        from repro.runtime import execute_payloads

        payloads = [
            {"i": i, "die": i == 2, "marker": str(tmp_path / "died")}
            for i in range(6)
        ]
        outcomes = dict(execute_payloads(payloads, _die_once_worker, jobs=2))
        assert (tmp_path / "died").exists()  # the kill actually happened
        assert len(outcomes) == 6
        # every job — including the one whose first attempt killed its
        # worker — completes on the respawned pool
        assert [outcomes[i]["status"] for i in range(6)] == ["ok"] * 6


def _marker_worker(payload):
    """Test worker: drops a marker file, then returns ok."""
    from pathlib import Path

    Path(payload["marker"]).write_text("done")
    return {"status": "ok", "echo": payload["i"], "elapsed_seconds": 0.0}


def _slow_worker(payload):
    """Test worker: the first payload is instant, the rest sleep forever."""
    import time as _time
    from pathlib import Path

    if payload["i"] == 0:
        return {"status": "ok", "echo": 0, "elapsed_seconds": 0.0}
    Path(payload["marker"]).write_text("started")
    _time.sleep(60.0)
    return {"status": "ok", "echo": payload["i"], "elapsed_seconds": 60.0}


class TestInterruption:
    """Ctrl-C mid-sweep: no lost finished work, no orphaned workers."""

    def test_close_salvages_finished_but_unyielded_outcomes(self, tmp_path):
        from repro.runtime import execute_payloads

        payloads = [
            {"i": i, "marker": str(tmp_path / f"m{i}")} for i in range(6)
        ]
        salvaged = {}
        gen = execute_payloads(
            payloads, _marker_worker, jobs=2, salvage=lambda i, raw: salvaged.update({i: raw})
        )
        _, first = next(gen)
        # Wait until every worker has actually finished its job...
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            if all((tmp_path / f"m{i}").exists() for i in range(6)):
                break
            time.sleep(0.02)
        else:  # pragma: no cover - diagnostic
            pytest.fail("workers never finished")
        time.sleep(0.3)  # let the futures settle after the marker writes
        # ...then interrupt: everything completed-but-unyielded is salvaged.
        gen.close()
        yielded = {first["echo"]}
        assert yielded | set(salvaged) == set(range(6))
        assert all(raw["status"] == "ok" for raw in salvaged.values())

    def test_close_terminates_running_workers_promptly(self, tmp_path):
        import multiprocessing

        from repro.runtime import execute_payloads

        payloads = [
            {"i": i, "marker": str(tmp_path / f"s{i}")} for i in range(3)
        ]
        gen = execute_payloads(payloads, _slow_worker, jobs=2, salvage=None)
        _, first = next(gen)
        assert first["echo"] == 0
        # A slow job must actually be running before we interrupt.
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            if any((tmp_path / f"s{i}").exists() for i in (1, 2)):
                break
            time.sleep(0.02)
        start = time.monotonic()
        gen.close()  # must terminate the sleepers, not join them
        assert time.monotonic() - start < 10.0
        # and no orphaned worker processes linger
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline:
            if not multiprocessing.active_children():
                break
            time.sleep(0.05)
        assert not multiprocessing.active_children()

    def test_interrupt_in_consumer_flushes_cache_and_stops_pool(self, tmp_path):
        """KeyboardInterrupt in the progress callback mid-parallel-sweep."""
        jobs = small_spec().expand()
        cache = ResultCache(tmp_path)

        def interrupt_on_first_fresh(outcome, done, total):
            if not outcome.cached:
                raise KeyboardInterrupt

        start = time.monotonic()
        with pytest.raises(KeyboardInterrupt):
            SweepRunner(
                jobs=2, cache=cache, progress=interrupt_on_first_fresh
            ).run(jobs)
        assert time.monotonic() - start < 30.0  # no shutdown hang
        # At least the job that triggered the interrupt was flushed; the
        # resumed sweep finishes from disk and matches a fresh run.
        assert len(cache) >= 1
        resumed = SweepRunner(cache=cache).run(jobs)
        assert resumed.ok
        assert resumed.cache_hits >= 1
        fresh = SweepRunner(cache=ResultCache(tmp_path / "fresh")).run(jobs)
        assert result_bytes(resumed) == result_bytes(fresh)


class TestTimeouts:
    def test_job_timeout_context_fires(self):
        with pytest.raises(JobTimeout):
            with job_timeout(0.05):
                time.sleep(1.0)

    def test_job_timeout_noop_when_disabled(self):
        with job_timeout(None):
            pass
        with job_timeout(0):
            pass

    def test_timed_out_job_reports_timeout_status(self):
        job = small_spec().expand()[0]
        payload = {
            "instance": job.instance,
            "solver": "__slow__",
            "opts": {},
            "timeout": 0.05,
        }
        # Patch in a deliberately slow solver through the registry.
        from repro.api import registry

        def slow(instance, **opts):
            time.sleep(1.0)

        spec = registry.SolverSpec(
            name="__slow__", fn=slow, problem="sne", description="test"
        )
        registry._REGISTRY["__slow__"] = spec
        try:
            outcome = run_solve_job(payload)
        finally:
            del registry._REGISTRY["__slow__"]
        assert outcome["status"] == "timeout"
        assert "timeout" in outcome["error"]


class TestSolveManyProcessExecutor:
    @pytest.fixture()
    def games(self):
        return [
            BroadcastGame(random_tree_plus_chords(8, 4, seed=s), root=0)
            for s in (1, 2, 3)
        ]

    def test_matches_thread_executor(self, games):
        thread = solve_many(games, ["sne-lp3", "theorem6"], workers=2)
        process = solve_many(
            games, ["sne-lp3", "theorem6"], workers=2, executor="process"
        )
        assert thread == process

    def test_single_solver_flat_shape(self, games):
        reports = solve_many(games, "theorem6", executor="process")
        assert len(reports) == 3 and all(r.verified for r in reports)

    def test_cache_round_trip(self, games, tmp_path):
        cache = ResultCache(tmp_path)
        first = solve_many(games, "theorem6", executor="process", cache=cache)
        assert len(cache) == 3
        again = solve_many(games, "theorem6", executor="process", cache=cache)
        assert first == again

    def test_states_rejected_with_clear_error(self, games):
        with pytest.raises(TypeError, match="process"):
            solve_many([games[0].mst_state()], "theorem6", executor="process")

    def test_bad_executor_name(self, games):
        with pytest.raises(ValueError, match="executor"):
            solve_many(games, "theorem6", executor="fiber")

    def test_thread_executor_rejects_cache_and_timeout(self, games, tmp_path):
        # Silently ignoring them would look like they were active.
        with pytest.raises(ValueError, match="executor='process'"):
            solve_many(games, "theorem6", cache=ResultCache(tmp_path))
        with pytest.raises(ValueError, match="executor='process'"):
            solve_many(games, "theorem6", timeout=5.0)


class TestExperimentSweep:
    def test_cache_hit_and_skip_reporting(self, tmp_path):
        cache = ResultCache(tmp_path)
        skip = [k for k in ("E1", "E4", "E6", "E8", "E11") ]
        cold = run_all_tolerant(seed=0, cache=cache, skip=skip)
        warm = run_all_tolerant(seed=0, cache=cache, skip=skip)
        by_status = lambda items, s: [i.experiment_id for i in items if i.status == s]
        assert by_status(cold, "skipped") == skip
        assert by_status(warm, "skipped") == skip
        assert by_status(cold, "cached") == []
        assert by_status(warm, "cached") == by_status(cold, "ok")
        # cached results reproduce the original reports
        for a, b in zip(cold, warm):
            if a.status == "ok":
                assert b.result.headline == a.result.headline
                assert b.result.rows == json.loads(
                    json.dumps(a.result.to_json())
                )["rows"]

    def test_unknown_skip_rejected(self):
        with pytest.raises(KeyError, match="E99"):
            run_all_tolerant(skip=["E99"])

    def test_seed_changes_cache_cell(self, tmp_path):
        cache = ResultCache(tmp_path)
        skip = [k for k in (
            "E1", "E2", "E3", "E4", "E6", "E7", "E8", "E9", "E10", "E11", "A1", "A2"
        )]  # keep only E5 (fast, deterministic)
        run_all_tolerant(seed=0, cache=cache, skip=skip)
        items = run_all_tolerant(seed=1, cache=cache, skip=skip)
        (e5,) = [i for i in items if i.experiment_id == "E5"]
        assert e5.status == "ok"  # different seed, not a cache hit
