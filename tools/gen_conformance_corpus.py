#!/usr/bin/env python3
"""Regenerate the pinned conformance corpus in ``tests/conformance_corpus/``.

Each corpus case pins one *hard instance* — augmented-cube and
lower-bound-cycle scenarios, the two families the paper's lower-bound
sections lean on — by its generation recipe ``(model, n, seed, params)``
plus the solve outcome of the default (``highs-sparse``) backend:

* ``budget`` — the optimal subsidy cost, and
* ``sha256`` — a digest of the full canonical report JSON
  (:func:`repro.api.serialize.canonical_report_json`, ``sort_keys=True``),
  so *any* drift in subsidies, metadata, or verdicts shows up, not just
  objective drift.

``tests/test_backend_conformance.py`` replays every case through every
registered LP backend: the default backend must reproduce the digest byte
for byte; the others must match the budget within their documented
tolerance.  ``exact_ok`` gates the Fraction-arithmetic backend to cells
where exact pivoting is affordable (LP (2) tableaus grow with
``players x nodes`` variables and exact pivots are O(m.n) big-rational
multiplies).

Run from the repo root after any intentional solver/backend change::

    PYTHONPATH=src python tools/gen_conformance_corpus.py

and commit the rewritten JSON.  An unintentional digest change is exactly
what the corpus exists to catch — regenerate only when the new answers
have been reviewed.
"""

from __future__ import annotations

import hashlib
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
CORPUS_DIR = REPO_ROOT / "tests" / "conformance_corpus"

sys.path.insert(0, str(REPO_ROOT / "src"))

from repro import api  # noqa: E402
from repro.runtime.spec import generate_instance  # noqa: E402

#: (name, model, n, seed, params, solver, exact_ok)
CASES = [
    # Theorem 12's augmented-cube family: the paper's densest lower-bound
    # topology; small enough that even the exact backend solves LP (1).
    ("augmented-cube-8-lp1", "augmented-cube", 8, 11, {}, "sne-cutting-plane", True),
    ("augmented-cube-8-lp2", "augmented-cube", 8, 11, {}, "sne-poly", False),
    ("augmented-cube-16-lp1", "augmented-cube", 16, 5, {}, "sne-cutting-plane", True),
    # Theorem 11's cycle family: closed-form optimum, and at n=9 LP (2) is
    # a *knife-edge* instance — exactly infeasible by one ulp as rationals
    # — so this cell locks the exact backend's rhs-relaxation fallback in.
    ("lower-bound-cycle-9-lp1", "lower-bound-cycle", 9, 0, {}, "sne-cutting-plane", True),
    ("lower-bound-cycle-9-lp2", "lower-bound-cycle", 9, 0, {}, "sne-poly", True),
    ("lower-bound-cycle-16-lp1", "lower-bound-cycle", 16, 0, {}, "sne-cutting-plane", True),
]


def report_digest(report) -> str:
    """The corpus digest: sha256 over sorted canonical report JSON."""
    payload = api.serialize.canonical_report_json(report)
    return hashlib.sha256(json.dumps(payload, sort_keys=True).encode()).hexdigest()


def build_case(name, model, n, seed, params, solver, exact_ok) -> dict:
    game = generate_instance(model, n, seed, **params)
    report = api.solve(game, solver)
    if not (report.feasible and report.verified):
        raise RuntimeError(f"corpus case {name} did not verify — refusing to pin it")
    return {
        "kind": "conformance-case",
        "name": name,
        "model": model,
        "n": n,
        "seed": seed,
        "params": params,
        "solver": solver,
        "exact_ok": exact_ok,
        "expected": {
            "budget": report.budget_used,
            "solver_version": api.get_solver(solver).version,
            "sha256": report_digest(report),
        },
    }


def main() -> int:
    CORPUS_DIR.mkdir(parents=True, exist_ok=True)
    for stale in CORPUS_DIR.glob("*.json"):
        stale.unlink()
    for spec in CASES:
        case = build_case(*spec)
        path = CORPUS_DIR / f"{case['name']}.json"
        path.write_text(json.dumps(case, indent=2, sort_keys=True) + "\n")
        print(f"{case['name']:26s} budget={case['expected']['budget']:.9f} "
              f"sha256={case['expected']['sha256'][:16]}…")
    print(f"\n{len(CASES)} cases written to {CORPUS_DIR}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
