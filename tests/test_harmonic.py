"""Tests for harmonic numbers and bound constants."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.bounds import harmonic, harmonic_array, harmonic_diff
from repro.bounds.constants import (
    AON_SUBSIDY_BOUND,
    FRACTIONAL_SUBSIDY_BOUND,
    POS_INAPPROX_RATIO,
    pos_upper_bound,
)


class TestHarmonic:
    def test_small_values(self):
        assert harmonic(0) == 0.0
        assert harmonic(1) == 1.0
        assert harmonic(2) == pytest.approx(1.5)
        assert harmonic(4) == pytest.approx(1 + 0.5 + 1 / 3 + 0.25)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            harmonic(-1)

    def test_monotone(self):
        values = [harmonic(n) for n in range(50)]
        assert all(b > a for a, b in zip(values, values[1:]))

    def test_asymptotic_matches_exact_at_boundary(self):
        # Just below the cache limit vs. the expansion formula.
        n = (1 << 20) - 1
        exact = harmonic(n)
        approx = math.log(n) + 0.5772156649015329 + 1 / (2 * n)
        assert exact == pytest.approx(approx, abs=1e-9)

    def test_huge_argument(self):
        # The Theorem 12 constant n_1 = 28^256 / 4.
        n1 = 28**256 // 4
        h = harmonic(n1)
        assert h == pytest.approx(math.log(28) * 256 - math.log(4) + 0.5772156649, abs=1e-6)

    def test_cache_growth(self):
        assert harmonic(10_000) == pytest.approx(
            math.log(10_000) + 0.5772156649 + 1 / 20_000, abs=1e-8
        )

    def test_array(self):
        arr = harmonic_array(5)
        assert len(arr) == 6
        assert arr[0] == 0.0
        assert arr[5] == pytest.approx(harmonic(5))

    def test_array_validation(self):
        with pytest.raises(ValueError):
            harmonic_array(-1)
        with pytest.raises(ValueError):
            harmonic_array(1 << 21)

    @given(st.integers(0, 5000), st.integers(0, 5000))
    def test_diff_antisymmetric(self, n, k):
        assert harmonic_diff(n, k) == pytest.approx(-harmonic_diff(k, n))

    @given(st.integers(1, 5000))
    def test_diff_telescopes(self, n):
        assert harmonic_diff(n, n - 1) == pytest.approx(1.0 / n)


class TestConstants:
    def test_fractional_bound(self):
        assert FRACTIONAL_SUBSIDY_BOUND == pytest.approx(0.367879441, abs=1e-8)

    def test_aon_bound(self):
        assert AON_SUBSIDY_BOUND == pytest.approx(0.612699837, abs=1e-8)
        assert AON_SUBSIDY_BOUND > FRACTIONAL_SUBSIDY_BOUND

    def test_pos_ratio(self):
        assert POS_INAPPROX_RATIO == pytest.approx(571 / 570)

    def test_pos_upper_bound_is_harmonic(self):
        assert pos_upper_bound(4) == pytest.approx(harmonic(4))
