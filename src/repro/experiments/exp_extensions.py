"""A2 — the paper's §6 extensions, implemented and measured.

* **Multicast games**: Steiner-tree optimal designs (exact Dreyfus-Wagner)
  enforced with the general LP (1) machinery.
* **Weighted players** (Chen-Roughgarden): demand-proportional sharing;
  SNE stays an LP, and the subsidy bill grows with the tempted player's
  demand (a heavier player shoulders a larger share of the shared edge,
  so her outside option gets relatively cheaper).
* **Coalitional deviations**: a Nash equilibrium broken by a 2-player
  coalition, found by exact joint-path enumeration.
* **Combinatorial SNE**: the water-filling solver matches the LP optimum
  on every tested family (the §6 open problem, answered empirically on
  these instances).
"""

from __future__ import annotations

from repro.experiments.records import ExperimentResult
from repro.games.broadcast import BroadcastGame
from repro.games.coalitions import check_strong_equilibrium
from repro.games.equilibrium import check_equilibrium
from repro.games.multicast import MulticastGame
from repro.games.weighted import (
    WeightedNetworkDesignGame,
    check_weighted_equilibrium,
    solve_weighted_sne,
)
from repro.graphs.generators import random_connected_gnp
from repro.graphs.graph import Graph
from repro.subsidies import solve_sne_broadcast_lp3, solve_sne_cutting_plane_lp1
from repro.subsidies.combinatorial import combinatorial_sne
from repro.graphs.generators import random_tree_plus_chords
from repro.utils.timing import Timer


def _multicast_rows(seed: int):
    rows = []
    for i in range(3):
        g = random_connected_gnp(12, 0.3, seed=seed + i)
        game = MulticastGame(g, root=0, terminals=[3, 7, 11])
        state = game.optimal_state()
        res = solve_sne_cutting_plane_lp1(state)
        rows.append(
            {
                "extension": "multicast",
                "instance": f"gnp seed {seed + i}",
                "metric": "SNE cost on Steiner optimum",
                "value": res.cost,
                "reference": game.social_optimum(),
                "ok": res.verified,
            }
        )
    return rows


def _weighted_rows():
    # One shared expensive edge; the light player is the flight risk.
    g = Graph.from_edges([(0, 1, 4.0), (0, 2, 1.1), (1, 2, 1.1)])
    rows = []
    for demands in ((1.0, 1.0), (1.0, 3.0), (1.0, 9.0)):
        game = WeightedNetworkDesignGame(g, [(1, 0), (1, 0)], demands)
        state = game.state([[1, 0], [1, 0]])
        stable = check_weighted_equilibrium(state)
        sub, cost = solve_weighted_sne(state)
        rows.append(
            {
                "extension": "weighted players",
                "instance": f"demands {demands}",
                "metric": "SNE cost on shared edge",
                "value": cost,
                "reference": 0.0 if stable else None,
                "ok": sub is not None
                and check_weighted_equilibrium(state, sub, tol=1e-6),
            }
        )
    return rows


def _coalition_rows():
    # Two players on their direct unit edges; sharing the middle edge (3,0)
    # helps both (0.4 + 1.1/2 = 0.95 < 1) but helps neither alone
    # (0.4 + 1.1 = 1.5 > 1): a Nash equilibrium that is not 2-strong.
    from repro.games.game import NetworkDesignGame

    g = Graph.from_edges(
        [(1, 0, 1.0), (2, 0, 1.0), (1, 3, 0.4), (2, 3, 0.4), (3, 0, 1.1)]
    )
    game_nd = NetworkDesignGame(g, [(1, 0), (2, 0)])
    state = game_nd.state([[1, 0], [2, 0]])
    nash = check_equilibrium(state).is_equilibrium
    strong = check_strong_equilibrium(state, max_coalition=2)
    return [
        {
            "extension": "coalitions",
            "instance": "joint-shortcut gadget",
            "metric": "Nash but not 2-strong",
            "value": float(nash and not strong.is_strong_equilibrium),
            "reference": 1.0,
            "ok": nash and not strong.is_strong_equilibrium,
        }
    ]


def _combinatorial_rows(seed: int):
    rows = []
    worst_gap = 0.0
    for i in range(6):
        g = random_tree_plus_chords(9, 4, seed=seed + 10 * i, chord_factor=1.1)
        game = BroadcastGame(g, root=0)
        state = game.mst_state()
        comb = combinatorial_sne(state)
        lp = solve_sne_broadcast_lp3(state)
        gap = comb.cost - lp.cost
        worst_gap = max(worst_gap, gap)
        rows.append(
            {
                "extension": "combinatorial SNE",
                "instance": f"tree+chords seed {seed + 10 * i}",
                "metric": "waterfill - LP optimum",
                "value": gap,
                "reference": lp.cost,
                "ok": comb.verified and gap <= 1e-6,
            }
        )
    return rows


def run(seed: int = 0) -> ExperimentResult:
    with Timer() as t:
        rows = (
            _multicast_rows(seed)
            + _weighted_rows()
            + _coalition_rows()
            + _combinatorial_rows(seed)
        )
    all_ok = all(r["ok"] for r in rows)
    result = ExperimentResult(
        experiment_id="A2",
        title="Section 6 extensions: multicast, weighted, coalitions, combinatorial",
        headline=(
            f"all extension checks passed: {all_ok} — Steiner-optimal multicast "
            "designs enforceable via LP (1); weighted SNE cost grows with the "
            "tempted player's demand; a Nash equilibrium broken by a pair "
            "coalition; water-filling matches the LP optimum"
        ),
        rows=rows,
    )
    result.elapsed_seconds = t.elapsed
    return result
