"""E3 benchmark — Theorem 11: the cycle lower-bound series toward 1/e."""

import math

import pytest

from repro.bounds.instances import theorem11_cycle_instance, theorem11_optimal_fraction
from repro.subsidies import solve_sne_broadcast_lp3


@pytest.mark.parametrize("n", [16, 64, 256])
def test_cycle_lp_optimum(benchmark, n):
    _, state = theorem11_cycle_instance(n)
    res = benchmark(solve_sne_broadcast_lp3, state)
    assert res.verified
    assert res.cost / n == pytest.approx(theorem11_optimal_fraction(n), abs=1e-6)
    assert res.cost / n < 1 / math.e


def test_closed_form_series(benchmark):
    def series():
        return [theorem11_optimal_fraction(n) for n in (8, 32, 128, 512, 2048, 8192)]

    fracs = benchmark(series)
    assert all(b > a for a, b in zip(fracs, fracs[1:]))
    assert fracs[-1] == pytest.approx(1 / math.e, abs=1e-3)
