"""CLI --out flag and report formatting."""

from repro.cli import main


class TestOutFlag:
    def test_writes_file(self, tmp_path, capsys):
        out = tmp_path / "report.txt"
        assert main(["run", "E10", "--out", str(out)]) == 0
        text = out.read_text()
        assert "[E10]" in text
        assert "virtual_cost" in text
        # Still printed to stdout too.
        assert "[E10]" in capsys.readouterr().out

    def test_no_file_without_flag(self, tmp_path, capsys):
        assert main(["run", "E5"]) == 0
        assert list(tmp_path.iterdir()) == []

    def test_ablation_via_cli(self, tmp_path):
        out = tmp_path / "a1.txt"
        assert main(["run", "A1", "--out", str(out)]) == 0
        assert "packing rule" in out.read_text()
