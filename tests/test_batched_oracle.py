"""Batched separation oracle parity: `scan` must equal `scan_legacy` exactly.

The batched scan skips searches only when their outcome is provably
decided — a Lemma 2 incidence certificate for broadcast trees, a shared
reverse-search lower bound for shared-target groups — so every record it
returns (players, costs, deviation paths, ordering, early-exit behavior)
must be identical to the pre-batching per-player reference.  These tests
sweep random instances of every game family under random subsidy vectors
and at the LP optimum (where certificate constraints sit exactly on their
boundaries).
"""

import numpy as np
import pytest

from repro.games.broadcast import BroadcastGame
from repro.games.directed import DirectedNetworkDesignGame
from repro.games.engine import BestResponseEngine, EngineProfile, OracleStats
from repro.games.game import NetworkDesignGame
from repro.games.multicast import MulticastGame
from repro.games.weighted import WeightedNetworkDesignGame
from repro.graphs.core import DijkstraWorkspace, dijkstra_indexed
from repro.graphs.generators import random_tree_plus_chords
from repro.subsidies.sne_lp import solve_sne_broadcast_lp3
from repro.utils.tolerances import LP_TOL


def _random_subsidies(graph, rng, density=0.4):
    subs = {}
    for u, v, w in graph.edges():
        if rng.random() < density:
            subs[(min(u, v), max(u, v))] = float(rng.random() * w)
    return subs


def _assert_scans_equal(binding, engine, subsidies, tol=LP_TOL):
    wb = engine.net_weights(engine.subsidy_vector(subsidies))
    for find_all in (False, True):
        fast = binding.scan(wb, tol=tol, find_all=find_all)
        slow = binding.scan_legacy(wb, tol=tol, find_all=find_all)
        assert len(fast) == len(slow)
        for a, b in zip(fast, slow):
            assert a.player == b.player and a.position == b.position
            assert a.current_cost == b.current_cost
            assert a.deviation_cost == b.deviation_cost
            assert a.node_ids == b.node_ids and a.edge_ids == b.edge_ids
    # the all-players mode (no improvement filtering) must agree too
    fast_all = binding.scan(wb, tol=tol, find_all=True, improving_only=False)
    slow_all = binding.scan_legacy(wb, tol=tol, find_all=True, improving_only=False)
    assert [(a.player, a.deviation_cost, tuple(a.edge_ids)) for a in fast_all] == [
        (b.player, b.deviation_cost, tuple(b.edge_ids)) for b in slow_all
    ]


@pytest.mark.parametrize("seed", [1, 2, 3, 4])
def test_tree_binding_parity(seed):
    rng = np.random.default_rng(seed)
    g = random_tree_plus_chords(30 + 5 * seed, 15, seed=seed, chord_factor=1.1)
    state = BroadcastGame(g, root=0).mst_state()
    engine = BestResponseEngine.for_graph(g)
    binding = engine.bind(state)
    _assert_scans_equal(binding, engine, None)
    for _ in range(3):
        _assert_scans_equal(binding, engine, _random_subsidies(g, rng))
    # At the LP(3) optimum several Lemma 2 constraints are tight: the
    # certificate must still agree with the per-player reference.
    opt = solve_sne_broadcast_lp3(state).subsidies
    _assert_scans_equal(binding, engine, opt)
    before = engine.stats.snapshot()
    assert binding.scan(engine.net_weights(engine.subsidy_vector(opt)), tol=LP_TOL) == []
    delta = engine.stats.delta(before)
    assert delta["dijkstra_calls"] == 0 and delta["players_batched"] > 0


@pytest.mark.parametrize("family", ["multicast", "general", "weighted", "directed"])
def test_path_binding_parity(family):
    rng = np.random.default_rng(hash(family) % 2**32)
    g = random_tree_plus_chords(24, 12, seed=11, chord_factor=1.1)
    others = [u for u in g.nodes if u != 0]
    if family == "multicast":
        game = MulticastGame(g, 0, others[:8])
        state = game.default_state()
    elif family == "general":
        game = NetworkDesignGame(g, [(u, 0) for u in others[:8]])
        state = game.shortest_path_state()
    elif family == "weighted":
        demands = [1.0 + (i % 4) * 0.5 for i in range(8)]
        game = WeightedNetworkDesignGame(g, [(u, 0) for u in others[:8]], demands)
        state = game.shortest_path_state()
    else:
        game = DirectedNetworkDesignGame(g, [(u, 0) for u in others[:8]])
        state = game.shortest_path_state()
    engine = BestResponseEngine.for_graph(g)
    binding = engine.bind(state)
    _assert_scans_equal(binding, engine, None)
    for _ in range(3):
        _assert_scans_equal(binding, engine, _random_subsidies(g, rng))


def test_oracle_stats_counters():
    stats = OracleStats()
    snap = stats.snapshot()
    stats.dijkstra_calls += 3
    stats.warm_start_hits += 1
    assert stats.delta(snap) == {
        "dijkstra_calls": 3,
        "players_batched": 0,
        "cut_rounds": 0,
        "warm_start_hits": 1,
    }
    assert set(stats.as_dict()) == set(OracleStats._FIELDS)


def test_dijkstra_workspace_matches_fresh_arrays():
    g = random_tree_plus_chords(40, 20, seed=9, chord_factor=1.2)
    ig = g.to_indexed()
    ws = DijkstraWorkspace(ig.num_nodes)
    rng = np.random.default_rng(0)
    for trial in range(12):
        src = int(rng.integers(ig.num_nodes))
        target = int(rng.integers(ig.num_nodes)) if trial % 2 else -1
        bound = float(rng.random() * 4) if trial % 3 else float("inf")
        costs = rng.random(ig.num_edges) + 0.01
        d0, p0, pe0 = dijkstra_indexed(ig, src, costs, target=target, bound=bound)
        d1, p1, pe1 = dijkstra_indexed(
            ig, src, costs, target=target, bound=bound, workspace=ws
        )
        assert d0 == d1 and p0 == p1 and pe0 == pe1


def test_dijkstra_workspace_size_mismatch():
    g = random_tree_plus_chords(10, 4, seed=1, chord_factor=1.1)
    ig = g.to_indexed()
    with pytest.raises(ValueError):
        dijkstra_indexed(ig, 0, workspace=DijkstraWorkspace(ig.num_nodes + 1))


def test_arc_slots_of_edge():
    g = random_tree_plus_chords(15, 8, seed=2, chord_factor=1.1)
    ig = g.to_indexed()
    slots = ig.arc_slots_of_edge
    assert slots is ig.arc_slots_of_edge  # cached
    assert sorted(k for ks in slots for k in ks) == list(range(2 * ig.num_edges))
    for e, ks in enumerate(slots):
        assert len(ks) == 2
        for k in ks:
            assert ig._adj_edge_list[k] == e


def test_engine_profile_incremental_arc_costs():
    """Dynamics on the incrementally-maintained arc list match a rebuild."""
    g = random_tree_plus_chords(20, 10, seed=4, chord_factor=1.1)
    game = BroadcastGame(g, root=0).to_network_design_game()
    state = game.shortest_path_state()
    engine = BestResponseEngine.for_graph(g)
    wb = engine.net_weights(engine.subsidy_vector(None))
    profile = EngineProfile(engine, state, wb)
    assert profile.stats is engine.stats
    rng = np.random.default_rng(3)
    for _ in range(15):
        pos = int(rng.integers(game.n_players))
        rec = profile.best_response(pos)
        profile.apply(rec.position, rec.node_ids, rec.edge_ids)
        # the maintained arc list must equal a from-scratch expansion
        expected = (profile.wb / (profile.usage + 1.0))[engine.ig.adj_edge]
        assert np.allclose(profile._arc_base, expected, rtol=0, atol=0)
        assert profile._usage_l == profile.usage.tolist()
