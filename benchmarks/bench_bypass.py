"""E5 benchmark — Lemma 4: building and checking Bypass gadgets."""

import pytest

from repro.games.equilibrium import best_deviation_from_tree, check_equilibrium
from repro.hardness.bypass import build_bypass_game, connector_deviates


@pytest.mark.parametrize("kappa", [5, 20])
def test_build_and_threshold(benchmark, kappa):
    def kernel():
        out = []
        for beta in (kappa - 1, kappa):
            game, state, gadget = build_bypass_game(kappa, beta)
            dev = best_deviation_from_tree(state, gadget.connector)
            out.append(dev.deviation_cost < dev.current_cost - 1e-12)
        return out

    below, at = benchmark(kernel)
    assert below and not at
    assert connector_deviates(kappa, kappa - 1)
    assert not connector_deviates(kappa, kappa)


def test_full_equilibrium_check(benchmark):
    game, state, gadget = build_bypass_game(kappa=12, beta=12)
    report = benchmark(check_equilibrium, state)
    assert report.is_equilibrium
