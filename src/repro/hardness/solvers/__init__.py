"""Exact solvers for the NP-hard source problems of the reductions.

These are the ground-truth oracles the reduction experiments compare
against: a DPLL SAT solver, an exact bin-packing backtracker (the paper's
strict fill-to-the-brim variant) and an exact maximum-independent-set
branch & bound.
"""

from repro.hardness.solvers.sat import CNFFormula, dpll_solve, is_3sat4, random_3sat
from repro.hardness.solvers.binpacking import (
    BinPackingInstance,
    solve_bin_packing_exact,
    to_strict_form,
)
from repro.hardness.solvers.mis import (
    complete_graph_k4,
    is_independent_set,
    is_k_regular,
    k33_graph,
    max_independent_set,
    petersen_graph,
    prism_graph,
    random_3_regular_graph,
)

__all__ = [
    "CNFFormula",
    "dpll_solve",
    "is_3sat4",
    "random_3sat",
    "BinPackingInstance",
    "solve_bin_packing_exact",
    "to_strict_form",
    "complete_graph_k4",
    "is_independent_set",
    "is_k_regular",
    "k33_graph",
    "max_independent_set",
    "petersen_graph",
    "prism_graph",
    "random_3_regular_graph",
]
