"""Stress and edge-case tests for the from-scratch simplex solver."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.lp import LinearProgram, LPStatus, simplex_solve, solve_lp


def _lp(c, rows, rhs, lower=None, upper=None):
    lp = LinearProgram(n_vars=len(c), c=np.array(c, float), lower=lower, upper=upper)
    for row, b in zip(rows, rhs):
        lp.add_constraint(np.array(row, float), b)
    return lp


class TestDegenerateAndCycling:
    def test_beale_cycling_example(self):
        """Beale's classic cycling LP; Bland's-rule fallback must terminate."""
        # min -0.75 x4 + 150 x5 - 0.02 x6 + 6 x7  (standard form rows)
        c = [-0.75, 150.0, -0.02, 6.0]
        rows = [
            [0.25, -60.0, -0.04, 9.0],
            [0.5, -90.0, -0.02, 3.0],
            [0.0, 0.0, 1.0, 0.0],
        ]
        rhs = [0.0, 0.0, 1.0]
        res = simplex_solve(_lp(c, rows, rhs))
        assert res.status is LPStatus.OPTIMAL
        ref = solve_lp(_lp(c, rows, rhs), "highs")
        assert res.objective == pytest.approx(ref.objective, abs=1e-7)

    def test_highly_degenerate_vertex(self):
        # Many redundant constraints through the same optimum.
        c = [-1.0, -1.0]
        rows = [[1, 1]] * 6 + [[1, 0], [0, 1]]
        rhs = [2.0] * 6 + [1.0, 1.0]
        res = simplex_solve(_lp(c, rows, rhs))
        assert res.ok
        assert res.objective == pytest.approx(-2.0)

    def test_redundant_equalities(self):
        # x + y = 1 stated three times (as pairs of inequalities).
        rows = [[1, 1], [-1, -1]] * 3
        rhs = [1.0, -1.0] * 3
        res = simplex_solve(_lp([1.0, 2.0], rows, rhs))
        assert res.ok
        assert res.objective == pytest.approx(1.0)  # all weight on x


class TestScale:
    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 2**31 - 1), st.integers(3, 10), st.integers(3, 16))
    def test_random_feasible_bounded(self, seed, n, m):
        rng = np.random.default_rng(seed)
        A = rng.normal(size=(m, n))
        x0 = rng.uniform(0.1, 1.5, size=n)
        b = A @ x0 + rng.uniform(0.05, 0.5, size=m)
        c = rng.normal(size=n)
        upper = np.full(n, 4.0)
        r1 = simplex_solve(_lp(c, A, b, upper=upper))
        r2 = solve_lp(_lp(c, A, b, upper=upper), "highs")
        assert r1.ok and r2.ok
        assert r1.objective == pytest.approx(r2.objective, abs=1e-6)
        # The returned point must actually be feasible.
        assert np.all(A @ r1.x <= b + 1e-7)
        assert np.all(r1.x >= -1e-9) and np.all(r1.x <= 4.0 + 1e-9)

    def test_moderately_large_dense(self):
        rng = np.random.default_rng(7)
        n, m = 30, 60
        A = rng.normal(size=(m, n))
        b = A @ rng.uniform(0.2, 1.0, size=n) + 0.5
        c = rng.normal(size=n)
        lp1 = _lp(c, A, b, upper=np.full(n, 3.0))
        lp2 = _lp(c, A, b, upper=np.full(n, 3.0))
        r1 = simplex_solve(lp1)
        r2 = solve_lp(lp2, "highs")
        assert r1.ok
        assert r1.objective == pytest.approx(r2.objective, abs=1e-5)

    def test_iteration_limit_reported(self):
        rng = np.random.default_rng(3)
        n, m = 12, 24
        A = rng.normal(size=(m, n))
        b = A @ rng.uniform(0.2, 1.0, size=n) + 0.5
        lp = _lp(rng.normal(size=n), A, b, upper=np.full(n, 3.0))
        res = simplex_solve(lp, max_iter=1)
        assert res.status in (LPStatus.ITERATION_LIMIT, LPStatus.OPTIMAL)


class TestBoundsHandling:
    def test_infinite_lower_rejected(self):
        lp = LinearProgram(
            n_vars=1, c=np.ones(1), lower=np.array([-np.inf]), upper=np.array([1.0])
        )
        with pytest.raises(ValueError):
            simplex_solve(lp)

    def test_fixed_variable(self):
        lp = _lp(
            [1.0, 1.0],
            [[-1.0, -1.0]],
            [-3.0],
            lower=np.array([2.0, 0.0]),
            upper=np.array([2.0, 10.0]),
        )
        res = simplex_solve(lp)
        assert res.ok
        assert res.x[0] == pytest.approx(2.0)
        assert res.objective == pytest.approx(3.0)

    def test_zero_objective_feasibility_only(self):
        lp = _lp([0.0], [[-1.0]], [-2.0], upper=np.array([5.0]))
        res = simplex_solve(lp)
        assert res.ok
        assert 2.0 - 1e-9 <= res.x[0] <= 5.0 + 1e-9
