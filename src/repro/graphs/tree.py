"""Rooted spanning tree utilities for broadcast games.

A broadcast state *is* a spanning tree rooted at the game's root; every
quantity the paper manipulates (the path ``T_u`` from a node to the root, the
edge usage counts ``n_a(T)``, least common ancestors for Lemma 2) is provided
here on top of a plain edge list.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, List, Mapping, Optional, Set, Tuple

from repro.graphs.graph import Edge, Node, canonical_edge


class RootedTree:
    """A tree over hashable nodes rooted at ``root``.

    Parameters
    ----------
    root:
        The root node (the broadcast destination ``r``).
    edges:
        Tree edges as unordered pairs; must form a tree containing ``root``.
    """

    def __init__(self, root: Node, edges: Iterable[Tuple[Node, Node]]) -> None:
        adjacency: Dict[Node, List[Node]] = {root: []}
        edge_list = [canonical_edge(u, v) for u, v in edges]
        if len(set(edge_list)) != len(edge_list):
            raise ValueError("duplicate edges passed to RootedTree")
        for u, v in edge_list:
            adjacency.setdefault(u, []).append(v)
            adjacency.setdefault(v, []).append(u)
        if len(edge_list) != len(adjacency) - 1:
            raise ValueError(
                f"{len(edge_list)} edges over {len(adjacency)} nodes do not form a tree"
            )

        self.root: Node = root
        self.parent: Dict[Node, Node] = {}
        self.depth: Dict[Node, int] = {root: 0}
        self.children: Dict[Node, List[Node]] = {u: [] for u in adjacency}
        #: nodes in BFS order from the root (root first)
        self.bfs_order: List[Node] = [root]

        queue = deque([root])
        while queue:
            u = queue.popleft()
            for v in adjacency[u]:
                if v not in self.depth:
                    self.depth[v] = self.depth[u] + 1
                    self.parent[v] = u
                    self.children[u].append(v)
                    self.bfs_order.append(v)
                    queue.append(v)
        if len(self.bfs_order) != len(adjacency):
            raise ValueError("edges do not form a connected tree containing the root")

        self._edges: List[Edge] = edge_list
        self._path_cache: Dict[Node, List[Edge]] = {root: []}

    # -- basic structure ---------------------------------------------------

    @property
    def nodes(self) -> List[Node]:
        return list(self.bfs_order)

    @property
    def edges(self) -> List[Edge]:
        return list(self._edges)

    @property
    def num_nodes(self) -> int:
        return len(self.bfs_order)

    def edge_to_parent(self, v: Node) -> Edge:
        """Canonical tree edge connecting ``v`` to its parent."""
        if v == self.root:
            raise ValueError("the root has no parent edge")
        return canonical_edge(v, self.parent[v])

    def child_endpoint(self, edge: Edge) -> Node:
        """The endpoint of a tree edge farther from the root."""
        u, v = edge
        if self.parent.get(u) == v:
            return u
        if self.parent.get(v) == u:
            return v
        raise ValueError(f"{edge!r} is not a tree edge")

    # -- paths and ancestors -------------------------------------------------

    def path_to_root(self, u: Node) -> List[Edge]:
        """Edge list of ``T_u``, the unique tree path from u to the root.

        Results are cached; paths share no list structure with the cache, so
        callers may mutate the returned list freely.
        """
        if u not in self._path_cache:
            v = u
            suffix: List[Node] = []
            while v not in self._path_cache:
                suffix.append(v)
                v = self.parent[v]
            base = self._path_cache[v]
            # Unwind: path(x) = [edge(x, parent)] + path(parent).
            for x in reversed(suffix):
                self._path_cache[x] = [self.edge_to_parent(x)] + self._path_cache[self.parent[x]]
        return list(self._path_cache[u])

    def lca(self, u: Node, v: Node) -> Node:
        """Least common ancestor by depth walking."""
        while self.depth[u] > self.depth[v]:
            u = self.parent[u]
        while self.depth[v] > self.depth[u]:
            v = self.parent[v]
        while u != v:
            u = self.parent[u]
            v = self.parent[v]
        return u

    def path_between(self, u: Node, v: Node) -> List[Edge]:
        """Edge list of the unique tree path between two nodes."""
        w = self.lca(u, v)
        up: List[Edge] = []
        x = u
        while x != w:
            up.append(self.edge_to_parent(x))
            x = self.parent[x]
        down: List[Edge] = []
        x = v
        while x != w:
            down.append(self.edge_to_parent(x))
            x = self.parent[x]
        return up + list(reversed(down))

    # -- subtree aggregates ---------------------------------------------------

    def subtree_nodes(self, v: Node) -> Set[Node]:
        """All nodes in the subtree rooted at v (including v)."""
        out: Set[Node] = set()
        stack = [v]
        while stack:
            x = stack.pop()
            out.add(x)
            stack.extend(self.children[x])
        return out

    def subtree_loads(self, multiplicity: Optional[Mapping[Node, int]] = None) -> Dict[Edge, int]:
        """Usage count ``n_a(T)`` for every tree edge.

        In a broadcast state the players using the edge from ``v`` to its
        parent are exactly the players located in v's subtree.  When
        ``multiplicity`` is given, node u hosts ``multiplicity[u]`` co-located
        players (default 1 per non-root node); the root hosts none.
        """
        load: Dict[Node, int] = {}
        for u in reversed(self.bfs_order):
            own = 1 if u != self.root else 0
            if multiplicity is not None and u != self.root:
                own = int(multiplicity.get(u, 1))
            load[u] = own + sum(load[c] for c in self.children[u])
        return {self.edge_to_parent(v): load[v] for v in self.bfs_order if v != self.root}

    def leaves(self) -> List[Node]:
        return [u for u in self.bfs_order if not self.children[u]]
