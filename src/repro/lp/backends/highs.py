"""The ``highs-sparse`` backend: scipy's HiGHS, fed sparse, warm-guided.

The production default.  The cold dense path is what ``solve_lp`` always
did; the incremental session is the PR 5 fast path moved behind the
registry verbatim:

* re-solves whose appended rows are already satisfied by the previous
  optimum are answered from that optimum without calling the solver
  (adding satisfied constraints cannot displace a minimization optimum);
* a rowless LP with strictly positive costs is answered analytically at
  the lower-bound vertex (bit-for-bit what HiGHS returns);
* otherwise the HiGHS core is driven directly through handles captured
  once from scipy's private glue (same library, same options, same
  matrices — bit-identical answers to the public ``linprog`` path), with
  ``linprog`` as the drift-safe fallback.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np
import scipy.sparse as sp
from scipy.optimize import linprog

from repro.lp.problem import LinearProgram, LPResult, LPStatus

_SCIPY_STATUS = {
    0: LPStatus.OPTIMAL,
    1: LPStatus.ITERATION_LIMIT,
    2: LPStatus.INFEASIBLE,
    3: LPStatus.UNBOUNDED,
}


def _capture_highs_direct():
    """Bind HiGHS core handles once, skipping scipy's per-call pipeline.

    ``scipy.optimize.linprog`` spends a large, problem-size-independent
    slice of each call parsing arguments, re-validating options and
    rebuilding solver state.  The cutting-plane loop calls with the same
    (validated, canonical) structures every round, so the fast path feeds
    the HiGHS core directly: one prebuilt ``HighsOptions`` carrying
    exactly the values scipy's ``method="highs"`` path sets (presolve on,
    dual simplex strategy, output off), a ``HighsLp`` filled from the CSC
    buffers, then ``passOptions``/``passModel``/``run``.  Same library,
    same options, same matrices — bit-identical answers (the benchmark
    asserts this against the public ``linprog`` path).  Returns ``None``
    when scipy's private layout changed; callers then fall back to
    ``linprog``.
    """
    try:
        from scipy.optimize import _linprog_highs as glue
        from scipy.optimize._highspy import _highs_wrapper as wrapper_mod

        core = wrapper_mod._h
        options = core.HighsOptions()
        # Exactly the non-default values _highs_wrapper applies for
        # scipy's method="highs" (everything else it leaves at default).
        options.presolve = "on"
        options.highs_debug_level = int(glue.HighsDebugLevel.kHighsDebugLevelNone)
        options.log_to_console = False
        options.output_flag = False
        options.simplex_strategy = int(glue.s_c.SimplexStrategy.kSimplexStrategyDual)
        return {
            "core": core,
            "inf": glue.kHighsInf,
            "to_scipy": glue._highs_to_scipy_status_message,
            "options": options,
        }
    except Exception:  # pragma: no cover - exercised only on scipy drift
        return None


_HIGHS_DIRECT = _capture_highs_direct()


def solve_dense(problem: LinearProgram, max_iter: int = 20_000) -> LPResult:
    """One cold HiGHS solve of a dense :class:`LinearProgram`."""
    A, b = problem.matrices()
    bounds = list(zip(problem.lower, problem.upper))
    res = linprog(
        problem.c,
        A_ub=A if A.size else None,
        b_ub=b if b.size else None,
        bounds=bounds,
        method="highs",
    )
    status = _SCIPY_STATUS.get(res.status, LPStatus.INFEASIBLE)
    if status is not LPStatus.OPTIMAL:
        return LPResult(status)
    x = np.asarray(res.x, dtype=float)
    return LPResult(LPStatus.OPTIMAL, x=x, objective=float(res.fun))


class HighsSession:
    """Warm state for one :class:`~repro.lp.incremental.IncrementalLP`."""

    def __init__(self, spec, inc) -> None:
        self._inc = inc
        #: (lb, ub) with infinities replaced for the HiGHS core, built once
        self._highs_bounds: Optional[Tuple[np.ndarray, np.ndarray]] = None

    def solve(
        self, cached: Optional[Tuple[int, LPResult]], max_iter: int = 20_000
    ) -> Tuple[LPResult, bool]:
        inc = self._inc
        # Solution-guided shortcut: rows appended since an optimal solve
        # that the previous optimum already satisfies cannot displace it.
        if cached is not None and cached[1].ok:
            rows_solved, prev = cached
            x = prev.x
            assert x is not None
            lo, hi = inc._indptr[rows_solved], inc._indptr[inc._m]
            tail = sp.csr_matrix(
                (
                    inc._data[lo:hi],
                    inc._indices[lo:hi],
                    inc._indptr[rows_solved : inc._m + 1] - lo,
                ),
                shape=(inc._m - rows_solved, inc.n_vars),
                copy=False,
            )
            if np.all(tail @ x <= np.asarray(inc._rhs[rows_solved:], dtype=float)):
                return prev, True

        # Rowless LP with strictly positive costs: the optimum is exactly
        # the lower-bound vertex (unique, and what HiGHS returns bit-for-bit
        # — LP (1)'s first round hits this every solve).
        if inc._m == 0 and np.all(inc.c > 0.0) and np.all(np.isfinite(inc.lower)):
            x = inc.lower.copy()
            return LPResult(LPStatus.OPTIMAL, x=x, objective=float(inc.c @ x)), False
        direct = _HIGHS_DIRECT
        if direct is not None:
            try:
                return self._solve_direct(direct), False
            except Exception:  # pragma: no cover - scipy drift safety net
                pass
        A = inc.sparse_matrix() if inc._m else None
        bounds = list(zip(inc.lower, inc.upper))
        res = linprog(
            inc.c,
            A_ub=A,
            b_ub=np.asarray(inc._rhs, dtype=float) if inc._m else None,
            bounds=bounds,
            method="highs",
        )
        status = _SCIPY_STATUS.get(res.status, LPStatus.INFEASIBLE)
        if status is not LPStatus.OPTIMAL:
            return LPResult(status), False
        x = np.asarray(res.x, dtype=float)
        return LPResult(LPStatus.OPTIMAL, x=x, objective=float(res.fun)), False

    def _solve_direct(self, direct: dict) -> LPResult:
        """One HiGHS solve through the captured core handles (see above)."""
        inc = self._inc
        core = direct["core"]
        inf = direct["inf"]
        if self._highs_bounds is None:
            # Bounds are fixed at construction; replace infinities once.
            self._highs_bounds = (
                np.where(np.isinf(inc.lower), -inf, inc.lower),
                np.where(np.isinf(inc.upper), inf, inc.upper),
            )
        lb, ub = self._highs_bounds
        A = inc.sparse_matrix().tocsc()
        m = inc._m
        n = inc.n_vars

        lp = core.HighsLp()
        lp.num_col_ = n
        lp.num_row_ = m
        lp.a_matrix_.num_col_ = n
        lp.a_matrix_.num_row_ = m
        lp.a_matrix_.format_ = core.MatrixFormat.kColwise
        lp.col_cost_ = inc.c
        lp.col_lower_ = lb
        lp.col_upper_ = ub
        lp.row_lower_ = np.full(m, -inf)
        lp.row_upper_ = np.asarray(inc._rhs, dtype=float)
        lp.a_matrix_.start_ = A.indptr
        lp.a_matrix_.index_ = A.indices
        lp.a_matrix_.value_ = A.data

        highs = core._Highs()
        if highs.passOptions(direct["options"]) == core.HighsStatus.kError:
            raise RuntimeError("HiGHS rejected the prebuilt options")
        if highs.passModel(lp) == core.HighsStatus.kError:
            raise RuntimeError("HiGHS rejected the model")
        highs.run()
        model_status = highs.getModelStatus()
        if model_status != core.HighsModelStatus.kOptimal:
            scipy_status, _msg = direct["to_scipy"](
                model_status, highs.modelStatusToString(model_status)
            )
            return LPResult(_SCIPY_STATUS.get(scipy_status, LPStatus.INFEASIBLE))
        solution = highs.getSolution()
        info = highs.getInfo()
        x = np.asarray(solution.col_value, dtype=float)
        return LPResult(
            LPStatus.OPTIMAL, x=x, objective=float(info.objective_function_value)
        )
