"""E7/E12 — Theorem 5: equilibria <-> independent sets, PoS gap numbers.

For a zoo of cubic graphs, the best-equilibrium weight equals
``5n/2 - (1-delta)*MIS`` (via the A/B-branch structure) and the reduction's
YES/NO gap constants reproduce the 571/570 inapproximability ratio.
"""

from __future__ import annotations

from repro.bounds.constants import theorem5_no_weight, theorem5_yes_weight
from repro.experiments.records import ExperimentResult
from repro.games.equilibrium import check_equilibrium
from repro.hardness.independent_set import (
    build_theorem5_instance,
    equilibrium_weight,
    tree_from_independent_set,
)
from repro.hardness.solvers import (
    complete_graph_k4,
    k33_graph,
    max_independent_set,
    petersen_graph,
    prism_graph,
    random_3_regular_graph,
)
from repro.utils.timing import Timer


def run(seed: int = 0) -> ExperimentResult:
    graphs = [
        ("K4", complete_graph_k4()),
        ("K3,3", k33_graph()),
        ("prism(3)", prism_graph(3)),
        ("prism(5)", prism_graph(5)),
        ("Petersen", petersen_graph()),
        ("random cubic n=12", random_3_regular_graph(12, seed=seed)),
    ]
    rows = []
    all_match = True
    with Timer() as t:
        for name, h in graphs:
            inst = build_theorem5_instance(h)
            mis = max_independent_set(h)
            state = tree_from_independent_set(inst, mis)
            stable = check_equilibrium(state).is_equilibrium
            predicted = equilibrium_weight(inst, len(mis))
            measured = state.social_cost()
            all_match &= stable and abs(measured - predicted) < 1e-9
            rows.append(
                {
                    "H": name,
                    "n(H)": inst.n,
                    "MIS": len(mis),
                    "equilibrium": stable,
                    "weight": measured,
                    "5n/2-(1-d)m": predicted,
                    "PoS_vs_alltypeA": (2.5 * inst.n) / measured,
                }
            )
        eps = delta = 1e-9
        ratio = theorem5_no_weight(1, delta, eps) / theorem5_yes_weight(1, delta, eps)
    result = ExperimentResult(
        experiment_id="E7",
        title="Theorem 5: best equilibria realize 5n/2 - (1-delta)*MIS",
        headline=(
            f"weight formula and stability held on all cubic graphs: {all_match}; "
            f"YES/NO gap ratio at eps,delta->0: {ratio:.6f} "
            "(paper: 571/570 = 1.001754)"
        ),
        rows=rows,
    )
    result.elapsed_seconds = t.elapsed
    return result
