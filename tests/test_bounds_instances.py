"""Tests for the Theorem 11 / 21 lower-bound instance families."""

import math

import pytest

from repro.bounds import (
    theorem11_cycle_instance,
    theorem11_optimal_fraction,
    theorem21_fraction_limit,
    theorem21_path_instance,
)
from repro.bounds.instances import theorem21_analysis
from repro.games import check_equilibrium
from repro.graphs.mst import is_minimum_spanning_tree
from repro.subsidies import solve_aon_sne_exact, solve_sne_broadcast_lp3


class TestTheorem11Family:
    def test_instance_structure(self):
        game, state = theorem11_cycle_instance(8)
        assert game.graph.num_nodes == 9
        assert game.graph.num_edges == 9
        assert is_minimum_spanning_tree(game.graph, state.edges)
        assert state.social_cost() == pytest.approx(8.0)

    def test_target_not_equilibrium_without_subsidies(self):
        _, state = theorem11_cycle_instance(8)
        assert not check_equilibrium(state).is_equilibrium

    def test_validation(self):
        with pytest.raises(ValueError):
            theorem11_cycle_instance(1)

    def test_closed_form_matches_lp(self):
        for n in (4, 7, 12, 20):
            _, state = theorem11_cycle_instance(n)
            lp = solve_sne_broadcast_lp3(state)
            assert lp.cost / n == pytest.approx(theorem11_optimal_fraction(n), abs=1e-7)

    def test_fraction_converges_to_inverse_e(self):
        fractions = [theorem11_optimal_fraction(n) for n in (10, 100, 1000, 100_000)]
        # Monotone approach from below toward 1/e.
        assert all(f < 1 / math.e for f in fractions)
        assert fractions[-1] == pytest.approx(1 / math.e, abs=2e-4)
        assert fractions[0] < fractions[-1]

    def test_paper_lower_bound_inequality(self):
        # Paper: subsidies >= (n+1)/e - 2.
        for n in (50, 500):
            total = theorem11_optimal_fraction(n) * n
            assert total >= (n + 1) / math.e - 2


class TestTheorem21Family:
    def test_instance_structure(self):
        game, state = theorem21_path_instance(10)
        assert game.graph.num_nodes == 11
        assert game.graph.num_edges == 12
        assert is_minimum_spanning_tree(game.graph, state.edges)

    def test_tree_weight_formula(self):
        n = 12
        _, state = theorem21_path_instance(n)
        expected = (2 * n - n / math.e) / (n - n / math.e + 1)
        assert state.social_cost() == pytest.approx(expected)

    def test_validation(self):
        with pytest.raises(ValueError):
            theorem21_path_instance(3)

    def test_not_equilibrium_unsubsidized(self):
        _, state = theorem21_path_instance(10)
        assert not check_equilibrium(state).is_equilibrium

    def test_analysis_matches_exact_solver(self):
        for n in (6, 10, 14):
            game, state = theorem21_path_instance(n)
            res = solve_aon_sne_exact(state)
            assert res.optimal
            assert res.cost == pytest.approx(theorem21_analysis(n).optimal_cost, abs=1e-6)

    def test_fraction_converges_to_limit(self):
        limit = theorem21_fraction_limit()
        fractions = [theorem21_analysis(n).optimal_fraction for n in (20, 200, 2000, 200_000)]
        assert fractions[-1] == pytest.approx(limit, abs=2e-3)
        # All near-limit fractions exceed the fractional bound 1/e.
        assert all(f > 1 / math.e for f in fractions)

    def test_aon_strictly_above_fractional(self):
        game, state = theorem21_path_instance(12)
        frac = solve_sne_broadcast_lp3(state)
        aon = solve_aon_sne_exact(state)
        assert aon.cost > frac.cost + 1e-6
