"""The HTTP front end: byte-identity with the CLI, concurrency, admission."""

import json
import threading
from contextlib import contextmanager
from http.client import HTTPConnection

import pytest

from repro import __version__, api
from repro.cli import main
from repro.games import (
    BroadcastGame,
    DirectedNetworkDesignGame,
    MulticastGame,
    NetworkDesignGame,
    WeightedNetworkDesignGame,
)
from repro.graphs.graph import Graph
from repro.serve import ServeClient, ServeConfig, ServeError, make_server

SOLVER = "sne-lp2"  # defined on every game family


def _family_zoo():
    g = Graph.from_edges(
        [(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0), (0, 2, 1.3), (0, 3, 1.6)]
    )
    others = [u for u in g.nodes if u != 0]
    pairs = [(u, 0) for u in others]
    games = {
        "broadcast": BroadcastGame(g, 0),
        "multicast": MulticastGame(g, 0, others),
        "general": NetworkDesignGame(g, pairs),
        "weighted": WeightedNetworkDesignGame(g, pairs, [1.0] * len(pairs)),
        "directed": DirectedNetworkDesignGame(g, pairs),
    }
    return {name: api.serialize.game_to_json(game) for name, game in games.items()}


@contextmanager
def serve(config=None):
    """A live daemon on an ephemeral port, torn down on exit."""
    server = make_server(config or ServeConfig(cache=False), port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    client = ServeClient(port=server.server_address[1])
    try:
        client.wait_ready()
        yield server.server_address[1], client, server.service
    finally:
        client.close()
        server.shutdown()
        server.server_close()


class TestByteIdentityWithCLI:
    def test_solve_matches_cli_across_all_families(self, tmp_path):
        """The acceptance criterion: daemon body == `cli solve --json
        --canonical` file bytes, for every game family."""
        with serve() as (_port, client, _service):
            for family, instance in _family_zoo().items():
                instance_file = tmp_path / f"{family}.json"
                instance_file.write_text(json.dumps(instance))
                out = tmp_path / f"{family}-cli.json"
                rc = main(
                    [
                        "solve",
                        str(instance_file),
                        "--solver",
                        SOLVER,
                        "--json",
                        "--canonical",
                        "--out",
                        str(out),
                    ]
                )
                assert rc == 0, family
                body, status = client.solve_raw(instance, SOLVER)
                assert status == 200
                assert body == out.read_bytes(), f"{family}: daemon != CLI bytes"

    def test_solve_batch_matches_cli(self, tmp_path):
        zoo = _family_zoo()
        instances = [zoo["broadcast"], zoo["general"]]
        instance_file = tmp_path / "set.json"
        instance_file.write_text(
            json.dumps({"kind": "instance-set", "instances": instances})
        )
        out = tmp_path / "batch-cli.json"
        rc = main(
            [
                "solve-batch",
                str(instance_file),
                "--solver",
                "sne-lp1",
                "--solver",
                SOLVER,
                "--json",
                "--canonical",
                "--out",
                str(out),
            ]
        )
        assert rc == 0
        with serve() as (_port, client, _service):
            body, _ = client.solve_batch_raw(instances, ["sne-lp1", SOLVER])
            assert body == out.read_bytes()


class TestConcurrentClients:
    def test_interleaved_threads_get_serial_bytes(self):
        """N threads x all families interleaved == the serial answers."""
        zoo = list(_family_zoo().items())
        with serve(ServeConfig(cache=False, workers=4, queue=32)) as (
            port,
            client,
            _service,
        ):
            serial = {
                family: client.solve_raw(instance, SOLVER)[0]
                for family, instance in zoo
            }
            results = {}
            errors = []
            lock = threading.Lock()

            def worker(offset):
                local = ServeClient(port=port)
                try:
                    for k in range(len(zoo) * 3):
                        family, instance = zoo[(offset + k) % len(zoo)]
                        body, _ = local.solve_raw(instance, SOLVER)
                        with lock:
                            results.setdefault(family, set()).add(body)
                except Exception as exc:  # noqa: BLE001 - surfaced below
                    with lock:
                        errors.append(f"{type(exc).__name__}: {exc}")
                finally:
                    local.close()

            threads = [threading.Thread(target=worker, args=(i,)) for i in range(6)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert not errors, errors
            for family, bodies in results.items():
                assert bodies == {serial[family]}, f"{family} diverged under load"


class TestCacheHitsViaStats:
    def test_repeat_request_hits_result_cache(self, tmp_path):
        instance = _family_zoo()["broadcast"]
        with serve(ServeConfig(cache=tmp_path)) as (_port, client, _service):
            first, _ = client.solve_raw(instance, SOLVER)
            before = client.stats()["counters"]
            again, _ = client.solve_raw(instance, SOLVER)
            after = client.stats()["counters"]
            assert first == again
            assert after["result_cache_hits"] == before.get("result_cache_hits", 0) + 1
            assert after["solves"] == before["solves"]  # no recompute


class TestAdmissionControlHTTP:
    def test_saturated_daemon_answers_429_with_retry_after(self, monkeypatch):
        real_solve = api.solve
        started = threading.Event()
        release = threading.Event()

        def blocked_solve(*args, **kwargs):
            started.set()
            assert release.wait(10.0), "test never released the solver"
            return real_solve(*args, **kwargs)

        monkeypatch.setattr(api, "solve", blocked_solve)
        instance = _family_zoo()["broadcast"]
        with serve(ServeConfig(cache=False, workers=1, queue=0)) as (
            port,
            client,
            service,
        ):
            first = {}
            thread = threading.Thread(
                target=lambda: first.update(
                    body=client.solve_raw(instance, SOLVER)[0]
                )
            )
            thread.start()
            assert started.wait(10.0)  # the only worker slot is now held
            second = ServeClient(port=port)
            with pytest.raises(ServeError) as excinfo:
                second.solve_raw(instance, SOLVER)
            assert excinfo.value.status == 429
            assert excinfo.value.retry_after is not None
            second.close()
            release.set()
            thread.join(timeout=30.0)
            assert "body" in first  # the admitted request still completed
            assert service.admission.rejected == 1


class TestErrorsAndEndpoints:
    def test_version_endpoint_single_source_of_truth(self):
        with serve() as (_port, client, _service):
            assert client.version() == __version__
            assert client.healthz() == {"status": "ok", "version": __version__}

    def test_solvers_and_families_endpoints(self):
        with serve() as (_port, client, _service):
            names = {s["name"] for s in client.solvers()}
            assert names == set(api.solver_names())
            families = client.families()
            assert {g["family"] for g in families["games"]} == {
                "broadcast",
                "multicast",
                "general",
                "weighted",
                "directed",
            }

    def test_unknown_paths_are_404(self):
        with serve() as (_port, client, _service):
            for method, path in (("GET", "/nope"), ("POST", "/also-nope")):
                with pytest.raises(ServeError) as excinfo:
                    client._request(method, path, {"x": 1} if method == "POST" else None)
                assert excinfo.value.status == 404

    def test_unsupported_method_is_405(self):
        with serve() as (port, _client, _service):
            conn = HTTPConnection("127.0.0.1", port, timeout=10)
            conn.request("DELETE", "/solve")
            response = conn.getresponse()
            assert response.status == 405
            response.read()
            conn.close()

    def test_malformed_json_body_is_400(self):
        with serve() as (port, _client, _service):
            conn = HTTPConnection("127.0.0.1", port, timeout=10)
            conn.request(
                "POST", "/solve", body=b"{not json", headers={"Content-Length": "9"}
            )
            response = conn.getresponse()
            assert response.status == 400
            assert b"not valid JSON" in response.read()
            conn.close()

    def test_missing_body_is_400(self):
        with serve() as (port, _client, _service):
            conn = HTTPConnection("127.0.0.1", port, timeout=10)
            conn.request("POST", "/solve")
            response = conn.getresponse()
            assert response.status == 400
            response.read()
            conn.close()

    def test_unknown_solver_is_400(self):
        with serve() as (_port, client, _service):
            with pytest.raises(ServeError) as excinfo:
                client.solve(_family_zoo()["broadcast"], "no-such-solver")
            assert excinfo.value.status == 400
            assert "unknown solver" in excinfo.value.message

    def test_broadcast_only_solver_on_incompatible_game_is_400(self):
        # sne-lp3 is broadcast-only; a multi-target general game cannot be
        # coerced, so the daemon must answer 400 (caller error), not 500.
        g = Graph.from_edges(
            [(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0), (0, 2, 1.3), (0, 3, 1.6)]
        )
        instance = api.serialize.game_to_json(NetworkDesignGame(g, [(1, 2), (0, 3)]))
        with serve() as (_port, client, _service):
            with pytest.raises(ServeError) as excinfo:
                client.solve(instance, "sne-lp3")
            assert excinfo.value.status == 400
            assert "broadcast" in excinfo.value.message

    def test_sweep_endpoint_runs_and_caches(self, tmp_path):
        spec = {
            "solvers": [SOLVER],
            "models": ["tree-chords"],
            "sizes": [8],
            "count": 1,
            "seed": 5,
        }
        with serve(ServeConfig(cache=tmp_path)) as (_port, client, _service):
            result = client.sweep(spec)
            assert result["kind"] == "sweep-result"
            assert all(j["status"] == "ok" for j in result["jobs"])
            again = client.sweep(spec)
            assert again == result  # second run served from the shared cache
            stats = client.stats()
            assert stats["counters"]["sweep_cache_hits"] >= 1
