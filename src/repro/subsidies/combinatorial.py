"""Combinatorial (LP-free) SNE algorithms — the paper's §6 open problem.

The paper asks for a combinatorial algorithm matching the LP optimum.  We
provide two pieces of that puzzle:

* :func:`waterfill_player` — *exactly* optimal for a single binding player:
  to lower ``sum (w_a - b_a)/n_a`` along her tree path to a target at
  minimum total subsidy, fill the least-crowded edges first (each subsidy
  unit on an ``n_a``-edge buys ``1/n_a`` of cost reduction, so smaller
  ``n_a`` is strictly better).  This generalizes the Theorem 11 packing
  argument and solves every instance with one non-tree deviation edge.
* :func:`combinatorial_sne` — a deterministic most-violated-first
  water-filling loop for general broadcast instances.  It is exact on
  single-constraint families (verified against the LP in tests) and an
  upper bound elsewhere; the ablation experiment quantifies its gap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.graphs.graph import Edge
from repro.games.broadcast import TreeState
from repro.games.equilibrium import check_equilibrium
from repro.subsidies.assignment import SubsidyAssignment
from repro.utils.tolerances import LP_TOL


def waterfill_player(
    state: TreeState,
    node,
    target_cost: float,
    existing: Optional[Dict[Edge, float]] = None,
) -> Dict[Edge, float]:
    """Cheapest *additional* subsidies bringing one player's path cost down
    to ``target_cost``, packing least-crowded edges first.

    Returns the additional per-edge amounts (not including ``existing``).
    Raises ``ValueError`` when even full subsidies cannot reach the target.
    """
    graph = state.game.graph
    existing = existing or {}
    path = state.tree.path_to_root(node)
    current = 0.0
    headroom: List[Tuple[int, Edge, float]] = []  # (load, edge, residual w-b)
    for e in path:
        n_a = state.loads[e]
        w = graph.weight(*e)
        b0 = existing.get(e, 0.0)
        residual = max(0.0, w - b0)
        current += residual / n_a
        if residual > 0:
            headroom.append((n_a, e, residual))
    need = current - target_cost
    if need <= 1e-15:
        return {}
    out: Dict[Edge, float] = {}
    # Least crowded first: best cost-reduction per subsidy unit.
    for n_a, e, residual in sorted(headroom, key=lambda t: (t[0], repr(t[1]))):
        if need <= 1e-15:
            break
        # Spending x on edge e reduces the player's cost by x / n_a.
        spend = min(residual, need * n_a)
        out[e] = spend
        need -= spend / n_a
    if need > 1e-9 * max(1.0, abs(target_cost)):
        raise ValueError(
            f"player {node!r} cannot reach cost {target_cost}: even full "
            "subsidies leave a shortfall"
        )
    return out


@dataclass
class CombinatorialSNEResult:
    subsidies: SubsidyAssignment
    cost: float
    iterations: int
    verified: bool
    converged: bool


def combinatorial_sne(
    state: TreeState,
    max_iterations: Optional[int] = None,
    tol: float = LP_TOL,
) -> CombinatorialSNEResult:
    """Water-filling SNE: repeatedly fix the currently most-violated player.

    Each round finds the player whose best response undercuts her cost the
    most, then water-fills her tree path so her cost matches that best
    response.  Subsidies only grow, so the loop terminates (bounded by
    ``wgt(T)``); iteration count is capped defensively.

    Exact when the binding constraints are nested along one path (e.g. the
    Theorem 11 cycle family); an upper bound in general.
    """
    game = state.game
    current: Dict[Edge, float] = {}
    limit = max_iterations if max_iterations is not None else 20 * game.graph.num_nodes

    for iteration in range(1, limit + 1):
        subsidies = SubsidyAssignment(game.graph, current)
        report = check_equilibrium(state, subsidies, tol=tol, find_all=True)
        if report.is_equilibrium:
            return CombinatorialSNEResult(
                subsidies, subsidies.cost, iteration - 1, True, True
            )
        worst = max(report.deviations, key=lambda d: d.gain)
        extra = waterfill_player(
            state, worst.player, worst.deviation_cost, existing=current
        )
        if not extra:
            break  # numerically stuck: bail to the defensive exit below
        for e, amount in extra.items():
            current[e] = current.get(e, 0.0) + amount

    subsidies = SubsidyAssignment(game.graph, current)
    verified = check_equilibrium(state, subsidies, tol=tol).is_equilibrium
    return CombinatorialSNEResult(subsidies, subsidies.cost, limit, verified, False)
