"""The repro.api solver registry: listing, lookup, errors, registration."""

import pytest

from repro import api
from repro.api.registry import PROBLEMS, register_solver

EXPECTED_SOLVERS = {
    "sne-lp3",
    "sne-cutting-plane",
    "sne-poly",
    "theorem6",
    "aon-exact",
    "aon-greedy",
    "snd-exact",
    "snd-local-search",
    "combinatorial",
}


class TestListing:
    def test_all_builtins_registered(self):
        assert set(api.solver_names()) >= EXPECTED_SOLVERS
        assert len(api.solver_names()) >= 9

    def test_list_solvers_sorted_and_complete(self):
        specs = api.list_solvers()
        assert [s.name for s in specs] == sorted(
            (s.name for s in specs), key=lambda n: (api.get_solver(n).problem, n)
        )
        assert {s.name for s in specs} == set(api.solver_names())

    def test_filter_by_problem(self):
        snd = api.list_solvers(problem="snd")
        assert {s.name for s in snd} == {"snd-exact", "snd-local-search"}
        for s in api.list_solvers():
            assert s.problem in PROBLEMS

    def test_capability_flags(self):
        lp3 = api.get_solver("sne-lp3")
        assert lp3.broadcast_only and lp3.requires_tree_state and lp3.exact
        lp1 = api.get_solver("sne-cutting-plane")
        assert not lp1.broadcast_only and not lp1.requires_tree_state
        t6 = api.get_solver("theorem6")
        assert not t6.exact  # 1/e guarantee, not per-instance optimal
        snd = api.get_solver("snd-exact")
        assert snd.broadcast_only and not snd.requires_tree_state

    def test_every_spec_has_description(self):
        for spec in api.list_solvers():
            assert spec.description
            assert callable(spec.fn)


class TestLookup:
    def test_aliases_resolve_to_canonical(self):
        assert api.get_solver("sne-lp1").name == "sne-cutting-plane"
        assert api.get_solver("sne-lp2").name == "sne-poly"
        assert api.get_solver("snd-heuristic").name == "snd-local-search"

    def test_unknown_name_raises_with_suggestions(self):
        with pytest.raises(api.UnknownSolverError) as exc:
            api.get_solver("sne-lp4")
        msg = str(exc.value)
        assert "sne-lp4" in msg
        assert "did you mean" in msg

    def test_unknown_solver_is_a_key_error(self):
        with pytest.raises(KeyError):
            api.get_solver("nope")

    def test_non_string_name_raises_type_error(self):
        with pytest.raises(TypeError):
            api.get_solver(3)


class TestRegistration:
    def test_duplicate_name_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_solver("sne-lp3", problem="sne", description="dup")(lambda x: x)

    def test_duplicate_alias_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_solver(
                "brand-new", problem="sne", description="d", aliases=("sne-lp1",)
            )(lambda x: x)

    def test_bad_problem_rejected(self):
        with pytest.raises(ValueError, match="problem"):
            register_solver("x", problem="knapsack", description="d")

    def test_decorator_returns_function_unchanged(self):
        def fn(instance):
            return None

        try:
            out = register_solver(
                "test-tmp-solver", problem="sne", description="d"
            )(fn)
            assert out is fn
            assert api.get_solver("test-tmp-solver").fn is fn
        finally:
            from repro.api import registry

            registry._REGISTRY.pop("test-tmp-solver", None)
