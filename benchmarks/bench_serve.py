"""Serve-layer load benchmark — resident daemon vs per-request cold processes.

The acceptance bar for ``repro.serve``: a warm daemon (interned instances,
resident engines, shared result cache) handling a closed-loop multi-thread
client load must beat the status quo it replaces — one cold
``repro-experiments solve --json`` process per request — by at least
**2x** requests/second, returning byte-identical canonical bodies.

The measured load runs N client threads in closed loop (each fires its
next request the moment the previous one returns) over a small mixed-family
instance set, then reports p50/p99 latency, req/s and the result-cache
hit-rate from ``/stats``.

The wall-clock gate is environment-tunable: ``REPRO_BENCH_SERVE_MIN``
overrides the 2x threshold (the CI perf-smoke job relaxes it for the noisy
2-core runner) and the gate skips entirely under plain ``CI`` without an
override, exactly like the other hand-rolled timing gates in this
directory.  Each gated run appends a record to ``BENCH_serve.json`` at the
repo root — a growing trajectory of (timestamp, latencies, throughputs,
hit-rates) so regressions are visible across commits.
"""

import json
import os
import statistics
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.api import serialize, solve
from repro.games.broadcast import BroadcastGame
from repro.games.directed import DirectedNetworkDesignGame
from repro.games.game import NetworkDesignGame
from repro.games.multicast import MulticastGame
from repro.games.weighted import WeightedNetworkDesignGame
from repro.graphs.generators import random_tree_plus_chords
from repro.serve import ServeClient, ServeConfig, make_server

REPO_ROOT = Path(__file__).resolve().parent.parent
TRAJECTORY = REPO_ROOT / "BENCH_serve.json"

SOLVER = "sne-lp2"

#: warm-daemon throughput must beat the cold-process baseline by this factor
SERVE_MIN = float(os.environ.get("REPRO_BENCH_SERVE_MIN", "2.0"))

#: plain CI without an explicit threshold: run everything except the gate
_SKIP_TIMING = (
    os.environ.get("CI", "") != "" and "REPRO_BENCH_SERVE_MIN" not in os.environ
)

#: closed-loop load shape
CLIENT_THREADS = 4
REQUESTS_PER_THREAD = 25
COLD_PROCESS_REPS = 3


def _instance_payloads():
    """A small mixed-family workload, one payload per game family."""
    g = random_tree_plus_chords(14, 7, seed=3, chord_factor=1.1)
    others = [u for u in g.nodes if u != 0]
    demands = [1.0 + (i % 3) * 0.5 for i in range(6)]
    games = [
        BroadcastGame(g, root=0),
        MulticastGame(g, 0, others[:5]),
        NetworkDesignGame(g, [(u, 0) for u in others[:6]]),
        WeightedNetworkDesignGame(g, [(u, 0) for u in others[:6]], demands),
        DirectedNetworkDesignGame(g, [(u, 0) for u in others[:6]]),
    ]
    return [serialize.game_to_json(game) for game in games]


@pytest.fixture(scope="module")
def daemon(tmp_path_factory):
    """A live daemon on a fresh port with its own result-cache directory."""
    cache_dir = tmp_path_factory.mktemp("serve-cache")
    server = make_server(
        ServeConfig(workers=4, queue=64, lru_size=32, cache=cache_dir), port=0
    )
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    port = server.server_address[1]
    client = ServeClient(port=port)
    client.wait_ready()
    yield port, client
    client.close()
    server.shutdown()
    server.server_close()


def _append_trajectory(entry: dict) -> None:
    history = []
    if TRAJECTORY.exists():
        try:
            history = json.loads(TRAJECTORY.read_text())
        except json.JSONDecodeError:
            history = []
        if not isinstance(history, list):
            history = [history]
    history.append(entry)
    TRAJECTORY.write_text(json.dumps(history, indent=2) + "\n")


def _closed_loop_load(port, instances):
    """N threads, each firing its next request as the previous returns.

    Returns (latencies_seconds, wall_seconds, bodies_by_cell).
    """
    latencies = []
    bodies = {}
    lock = threading.Lock()
    errors = []

    def client_loop(thread_index):
        client = ServeClient(port=port)
        try:
            for r in range(REQUESTS_PER_THREAD):
                cell = (thread_index + r) % len(instances)
                t0 = time.perf_counter()
                body, status = client.solve_raw(instances[cell], SOLVER)
                dt = time.perf_counter() - t0
                with lock:
                    latencies.append(dt)
                    previous = bodies.setdefault(cell, body)
                    if previous != body:
                        errors.append(f"cell {cell}: divergent response bytes")
        except Exception as exc:  # noqa: BLE001 - surfaced via errors
            with lock:
                errors.append(f"thread {thread_index}: {type(exc).__name__}: {exc}")
        finally:
            client.close()

    threads = [
        threading.Thread(target=client_loop, args=(i,)) for i in range(CLIENT_THREADS)
    ]
    t0 = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    wall = time.perf_counter() - t0
    assert not errors, errors
    return latencies, wall, bodies


def _cold_process_baseline(instance, tmp_path):
    """Per-request cost of the daemon-less status quo: one CLI process.

    Returns (per-request seconds list, canonical stdout bytes).
    """
    instance_file = tmp_path / "cold-instance.json"
    instance_file.write_text(json.dumps(instance))
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    times = []
    stdout = None
    for _ in range(COLD_PROCESS_REPS):
        t0 = time.perf_counter()
        proc = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro.cli",
                "solve",
                str(instance_file),
                "--solver",
                SOLVER,
                "--json",
                "--canonical",
            ],
            env=env,
            capture_output=True,
            check=True,
        )
        times.append(time.perf_counter() - t0)
        stdout = proc.stdout
    return times, stdout


# ---------------------------------------------------------------------------
# correctness under load (no gate: runs everywhere, CI included)
# ---------------------------------------------------------------------------


def test_concurrent_load_is_byte_stable(daemon):
    """Concurrent clients must see exactly the serial canonical bytes."""
    port, _client = daemon
    instances = _instance_payloads()
    _latencies, _wall, bodies = _closed_loop_load(port, instances)
    assert set(bodies) == set(range(len(instances)))
    for cell, instance in enumerate(instances):
        game = serialize.game_from_json(instance)
        expected = (
            json.dumps(
                serialize.canonical_report_json(solve(game, SOLVER)), indent=2
            )
            + "\n"
        ).encode("utf-8")
        assert bodies[cell] == expected, f"cell {cell} diverged from serial solve"


# ---------------------------------------------------------------------------
# the throughput gate + the BENCH_serve.json trajectory record
# ---------------------------------------------------------------------------


@pytest.mark.skipif(
    _SKIP_TIMING,
    reason="wall-clock ratio gate needs a quiet machine or an explicit "
    "REPRO_BENCH_SERVE_MIN threshold (the CI perf-smoke job sets one)",
)
def test_serve_warm_beats_cold_processes(daemon, tmp_path):
    """Gate warm-daemon throughput and append the trajectory record."""
    port, client = daemon
    instances = _instance_payloads()

    # Warm every layer (LRU intern, engines, result cache) before timing.
    for instance in instances:
        client.solve_raw(instance, SOLVER)

    before = client.stats()["counters"]
    latencies, wall, bodies = _closed_loop_load(port, instances)
    after = client.stats()["counters"]

    total = len(latencies)
    warm_rps = total / wall
    latencies.sort()
    p50 = statistics.median(latencies)
    p99 = latencies[min(total - 1, int(total * 0.99))]
    delta_hits = after.get("result_cache_hits", 0) - before.get("result_cache_hits", 0)
    delta_misses = after.get("result_cache_misses", 0) - before.get(
        "result_cache_misses", 0
    )
    hit_rate = delta_hits / max(1, delta_hits + delta_misses)

    cold_times, cold_stdout = _cold_process_baseline(instances[0], tmp_path)
    cold_rps = 1.0 / min(cold_times)
    speedup = warm_rps / cold_rps

    # The two execution styles must be interchangeable byte for byte.
    assert cold_stdout == bodies[0], "daemon body != cold CLI --canonical stdout"
    # After the warmup pass, the timed load should be essentially all hits.
    assert hit_rate >= 0.9, f"timed-phase cache hit rate only {hit_rate:.2%}"

    _append_trajectory(
        {
            "bench": "serve",
            "timestamp": time.time(),
            "threshold": SERVE_MIN,
            "solver": SOLVER,
            "load": {
                "client_threads": CLIENT_THREADS,
                "requests_per_thread": REQUESTS_PER_THREAD,
                "unique_cells": len(instances),
            },
            "warm": {
                "requests": total,
                "wall_seconds": wall,
                "req_per_s": warm_rps,
                "p50_ms": p50 * 1e3,
                "p99_ms": p99 * 1e3,
                "cache_hit_rate": hit_rate,
            },
            "cold": {
                "process_reps": COLD_PROCESS_REPS,
                "best_seconds": min(cold_times),
                "req_per_s": cold_rps,
            },
            "speedup": speedup,
        }
    )
    assert speedup >= SERVE_MIN, (
        f"warm daemon {warm_rps:.1f} req/s vs cold process {cold_rps:.2f} req/s "
        f"-> {speedup:.2f}x (< {SERVE_MIN}x)"
    )
