"""E1 benchmark — Theorem 1: the three SNE LP formulations.

Measures each formulation on a fixed 20-node broadcast instance and asserts
they produce the same optimal subsidy cost.
"""

import pytest

from repro.games.broadcast import BroadcastGame
from repro.graphs.generators import random_tree_plus_chords
from repro.subsidies import (
    solve_sne_broadcast_lp3,
    solve_sne_cutting_plane_lp1,
    solve_sne_polynomial_lp2,
)


@pytest.fixture(scope="module")
def instance():
    g = random_tree_plus_chords(20, 10, seed=42, chord_factor=1.1)
    game = BroadcastGame(g, root=0)
    state = game.mst_state()
    reference = solve_sne_broadcast_lp3(state).cost
    return state, reference


def test_lp3_broadcast(benchmark, instance):
    state, reference = instance
    res = benchmark(solve_sne_broadcast_lp3, state)
    assert res.verified
    assert res.cost == pytest.approx(reference, abs=1e-6)


def test_lp2_polynomial(benchmark, instance):
    state, reference = instance
    res = benchmark(solve_sne_polynomial_lp2, state)
    assert res.verified
    assert res.cost == pytest.approx(reference, abs=1e-5)


def test_lp1_cutting_planes(benchmark, instance):
    state, reference = instance
    res = benchmark(solve_sne_cutting_plane_lp1, state)
    assert res.verified
    assert res.cost == pytest.approx(reference, abs=1e-5)


def test_lp3_simplex_backend(benchmark, instance):
    state, reference = instance
    res = benchmark(solve_sne_broadcast_lp3, state, "simplex")
    assert res.cost == pytest.approx(reference, abs=1e-5)
