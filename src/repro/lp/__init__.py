"""Linear programming substrate.

Two interchangeable backends sit behind :func:`solve_lp`:

* ``"highs"`` — scipy's HiGHS (production default),
* ``"simplex"`` — the from-scratch dense two-phase simplex in
  :mod:`repro.lp.simplex`, kept as an independently-tested reference.

:mod:`repro.lp.cutting_plane` provides the constraint-generation driver used
to solve the paper's exponential-size LP (1) with a shortest-path separation
oracle (the practical stand-in for the ellipsoid method cited in Theorem 1).

:mod:`repro.lp.incremental` is the fast path for that driver's access
pattern: :class:`IncrementalLP` stores rows sparsely (``O(nnz)`` cut
appends) and warm-starts re-solves — a dual-simplex basis resume on the
``"simplex"`` backend (:class:`~repro.lp.simplex.WarmSimplex`), a sparse
+ previous-solution-guided path on ``"highs"`` — while returning exactly
the answers of the dense cold path.
"""

from repro.lp.problem import LinearProgram, LPResult, LPStatus
from repro.lp.simplex import WarmSimplex, simplex_solve
from repro.lp.backend import solve_lp
from repro.lp.incremental import IncrementalLP, LPStats
from repro.lp.cutting_plane import CuttingPlaneResult, solve_with_cutting_planes

__all__ = [
    "LinearProgram",
    "LPResult",
    "LPStatus",
    "IncrementalLP",
    "LPStats",
    "WarmSimplex",
    "simplex_solve",
    "solve_lp",
    "CuttingPlaneResult",
    "solve_with_cutting_planes",
]
