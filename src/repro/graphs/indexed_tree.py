"""Array-native rooted trees: vectorized BFS, level passes, batch LCA.

:class:`~repro.graphs.tree.RootedTree` is the dict-based contract the exact
solvers verify against, but its per-node dicts and cached label paths cost
hundreds of bytes per node — a non-starter at the 10^5–10^6-node scale tier.
:class:`IndexedTree` is the flat-array mirror: parent / parent-edge / depth
arrays over int node ids, per-level frontiers, and the three primitives the
approximate subsidy solvers are built from:

* level-descending ``subtree_accumulate`` (numpy ``add.at`` per level) —
  subtree loads and violated-path diff-counting in O(depth) vectorized
  passes;
* level-ascending ``prefix_sum_edges`` — root-path prefix sums of any
  per-edge quantity (the Lemma 2 own/deviation share sums);
* binary-lifting ``lca`` over whole query arrays at once.

Everything is built by a vectorized level BFS over the CSR arrays (the
``np.repeat`` + cumsum concatenated-ranges trick); in a tree every unvisited
head appears exactly once per level, so no dedup pass is needed.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.graphs.core import IndexedGraph


def _concat_ranges(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Concatenate ``[arange(s, s + c) for s, c in zip(starts, counts)]``."""
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    reps = np.repeat(starts.astype(np.int64), counts)
    offs = np.arange(total, dtype=np.int64)
    offs -= np.repeat(np.cumsum(counts, dtype=np.int64) - counts, counts)
    return reps + offs


class IndexedTree:
    """Rooted spanning tree of an :class:`IndexedGraph` as flat arrays.

    Attributes
    ----------
    root:
        Root node id.
    parent, parent_eid, depth:
        Length-``n`` int arrays: parent node id, edge id of the edge to the
        parent (``-1`` at the root) and hop depth.
    levels:
        ``levels[d]`` is the array of node ids at depth ``d`` (``levels[0]``
        is ``[root]``).
    tree_eids, is_tree_edge:
        The ``n - 1`` tree edge ids and the boolean mask over all edge ids.
    """

    __slots__ = (
        "ig",
        "root",
        "parent",
        "parent_eid",
        "depth",
        "levels",
        "tree_eids",
        "is_tree_edge",
        "_up",
    )

    def __init__(self, ig: IndexedGraph, root: int, tree_eids: np.ndarray) -> None:
        n = ig.num_nodes
        tree_eids = np.asarray(tree_eids, dtype=np.int64)
        if len(tree_eids) != max(0, n - 1):
            raise ValueError(
                f"{len(tree_eids)} tree edges for {n} nodes (need n - 1)"
            )
        is_tree = np.zeros(ig.num_edges, dtype=bool)
        is_tree[tree_eids] = True

        parent = np.full(n, -1, dtype=np.int64)
        parent_eid = np.full(n, -1, dtype=np.int64)
        depth = np.zeros(n, dtype=np.int64)
        seen = np.zeros(n, dtype=bool)
        seen[root] = True
        parent[root] = root

        indptr = self_indptr = ig.indptr.astype(np.int64)
        neighbors = ig.neighbors
        adj_edge = ig.adj_edge
        tree_arc = is_tree[adj_edge]

        levels: List[np.ndarray] = [np.array([root], dtype=np.int64)]
        frontier = levels[0]
        d = 0
        visited = 1
        while True:
            starts = self_indptr[frontier]
            counts = indptr[frontier + 1] - starts
            slots = _concat_ranges(starts, counts)
            tails = np.repeat(frontier, counts)
            keep = tree_arc[slots]
            slots, tails = slots[keep], tails[keep]
            heads = neighbors[slots].astype(np.int64)
            fresh = ~seen[heads]
            heads, slots, tails = heads[fresh], slots[fresh], tails[fresh]
            if len(heads) == 0:
                break
            d += 1
            # In a tree each unvisited head is reached by exactly one arc of
            # the frontier, so `heads` has no duplicates — plain assignment.
            seen[heads] = True
            parent[heads] = tails
            parent_eid[heads] = adj_edge[slots]
            depth[heads] = d
            levels.append(heads)
            frontier = heads
            visited += len(heads)
        if visited != n:
            raise ValueError("tree edges do not span the graph from the root")

        self.ig = ig
        self.root = int(root)
        self.parent = parent
        self.parent_eid = parent_eid
        self.depth = depth
        self.levels = levels
        self.tree_eids = tree_eids
        self.is_tree_edge = is_tree
        self._up: Optional[np.ndarray] = None

    # -- size ---------------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        return len(self.parent)

    @property
    def height(self) -> int:
        return len(self.levels) - 1

    # -- level passes --------------------------------------------------------

    def subtree_accumulate(self, values: np.ndarray) -> np.ndarray:
        """Per-node sums of ``values`` over each node's subtree.

        One ``np.add.at`` pass per level, deepest first: children fold into
        parents level by level, so the whole tree costs O(height) vectorized
        passes over disjoint node sets.
        """
        acc = np.array(values, dtype=np.float64, copy=True)
        parent = self.parent
        for nodes in reversed(self.levels[1:]):
            np.add.at(acc, parent[nodes], acc[nodes])
        return acc

    def subtree_counts(self, marks: np.ndarray) -> np.ndarray:
        """Integer variant of :meth:`subtree_accumulate` (diff-counting)."""
        acc = np.array(marks, dtype=np.int64, copy=True)
        parent = self.parent
        for nodes in reversed(self.levels[1:]):
            np.add.at(acc, parent[nodes], acc[nodes])
        return acc

    def prefix_sum_edges(self, edge_values: np.ndarray) -> np.ndarray:
        """Per-node sums of ``edge_values`` along the path node → root.

        ``edge_values`` is indexed by edge id; the root's prefix is 0 and
        each node adds its parent edge's value to its parent's prefix —
        one vectorized pass per level, top down.
        """
        n = self.num_nodes
        acc = np.zeros(n, dtype=np.float64)
        parent = self.parent
        parent_eid = self.parent_eid
        for nodes in self.levels[1:]:
            acc[nodes] = acc[parent[nodes]] + edge_values[parent_eid[nodes]]
        return acc

    def edge_loads(self, node_multiplicity: Optional[np.ndarray] = None) -> np.ndarray:
        """Per-edge-id usage counts: players below each tree edge.

        ``node_multiplicity[v]`` is the number of players homed at node
        ``v`` (default: 1 everywhere except the root).  Non-tree edges get
        load 0.
        """
        n = self.num_nodes
        if node_multiplicity is None:
            mult = np.ones(n, dtype=np.float64)
            mult[self.root] = 0.0
        else:
            mult = np.asarray(node_multiplicity, dtype=np.float64)
        sub = self.subtree_accumulate(mult)
        loads = np.zeros(self.ig.num_edges, dtype=np.float64)
        nonroot = np.concatenate(self.levels[1:]) if self.height else np.empty(0, dtype=np.int64)
        loads[self.parent_eid[nonroot]] = sub[nonroot]
        return loads

    # -- LCA -----------------------------------------------------------------

    def _lift_table(self) -> np.ndarray:
        up = self._up
        if up is None:
            height = max(1, self.height)
            k = max(1, int(height).bit_length())
            up = np.empty((k, self.num_nodes), dtype=np.int64)
            up[0] = self.parent  # root's parent is itself
            for j in range(1, k):
                up[j] = up[j - 1][up[j - 1]]
            self._up = up
        return up

    def lca(self, us: np.ndarray, vs: np.ndarray) -> np.ndarray:
        """Batch lowest common ancestors via binary lifting (vectorized)."""
        up = self._lift_table()
        depth = self.depth
        u = np.asarray(us, dtype=np.int64).copy()
        v = np.asarray(vs, dtype=np.int64).copy()
        # Lift the deeper endpoint up to the shallower one's depth.
        swap = depth[u] < depth[v]
        u[swap], v[swap] = v[swap], u[swap]
        diff = depth[u] - depth[v]
        for j in range(up.shape[0]):
            sel = (diff >> j) & 1 == 1
            if sel.any():
                u[sel] = up[j][u[sel]]
        out = np.where(u == v, u, -1)
        active = out < 0
        ua, va = u[active], v[active]
        for j in range(up.shape[0] - 1, -1, -1):
            upj = up[j]
            differs = upj[ua] != upj[va]
            ua[differs] = upj[ua[differs]]
            va[differs] = upj[va[differs]]
        out[active] = self.parent[ua]
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"IndexedTree(n={self.num_nodes}, height={self.height}, "
            f"root={self.root})"
        )
