"""Unit tests for repro.graphs.graph."""

import pytest

from repro.graphs import Graph, canonical_edge


class TestCanonicalEdge:
    def test_orders_comparable_nodes(self):
        assert canonical_edge(2, 1) == (1, 2)
        assert canonical_edge(1, 2) == (1, 2)

    def test_strings(self):
        assert canonical_edge("b", "a") == ("a", "b")

    def test_mixed_types_deterministic(self):
        e1 = canonical_edge("r", (1, 2))
        e2 = canonical_edge((1, 2), "r")
        assert e1 == e2

    def test_rejects_self_loop(self):
        with pytest.raises(ValueError):
            canonical_edge(3, 3)


class TestGraphBasics:
    def test_from_edges_roundtrip(self):
        g = Graph.from_edges([(0, 1, 1.5), (1, 2, 2.0)])
        assert g.num_nodes == 3
        assert g.num_edges == 2
        assert g.weight(0, 1) == 1.5
        assert g.weight(1, 0) == 1.5

    def test_add_node_isolated(self):
        g = Graph()
        g.add_node("x")
        assert "x" in g
        assert g.num_nodes == 1
        assert g.num_edges == 0

    def test_add_edge_overwrites(self):
        g = Graph.from_edges([(0, 1, 1.0)])
        g.add_edge(1, 0, 3.0)
        assert g.weight(0, 1) == 3.0
        assert g.num_edges == 1

    def test_zero_weight_allowed(self):
        g = Graph.from_edges([(0, 1, 0.0)])
        assert g.weight(0, 1) == 0.0

    def test_negative_weight_rejected(self):
        g = Graph()
        with pytest.raises(ValueError):
            g.add_edge(0, 1, -1.0)

    def test_nan_weight_rejected(self):
        g = Graph()
        with pytest.raises(ValueError):
            g.add_edge(0, 1, float("nan"))

    def test_self_loop_rejected(self):
        g = Graph()
        with pytest.raises(ValueError):
            g.add_edge(5, 5, 1.0)

    def test_remove_edge(self):
        g = Graph.from_edges([(0, 1, 1.0), (1, 2, 1.0)])
        g.remove_edge(0, 1)
        assert not g.has_edge(0, 1)
        assert g.num_edges == 1
        with pytest.raises(KeyError):
            g.remove_edge(0, 1)

    def test_degree_and_neighbors(self):
        g = Graph.from_edges([(0, 1, 1.0), (0, 2, 1.0), (0, 3, 1.0)])
        assert g.degree(0) == 3
        assert set(g.neighbors(0)) == {1, 2, 3}
        assert g.degree(1) == 1

    def test_edges_iterates_once_each(self):
        g = Graph.from_edges([(0, 1, 1.0), (1, 2, 2.0), (0, 2, 3.0)])
        es = list(g.edges())
        assert len(es) == 3
        assert {(u, v) for u, v, _ in es} == {(0, 1), (1, 2), (0, 2)}

    def test_total_and_subset_weight(self):
        g = Graph.from_edges([(0, 1, 1.0), (1, 2, 2.0), (0, 2, 3.0)])
        assert g.total_weight() == pytest.approx(6.0)
        assert g.subset_weight([(0, 1), (0, 2)]) == pytest.approx(4.0)


class TestConnectivity:
    def test_connected_path(self):
        g = Graph.from_edges([(0, 1, 1.0), (1, 2, 1.0)])
        assert g.is_connected()

    def test_disconnected(self):
        g = Graph.from_edges([(0, 1, 1.0)])
        g.add_node(7)
        assert not g.is_connected()
        comps = g.connected_components()
        assert sorted(len(c) for c in comps) == [1, 2]

    def test_empty_graph_connected(self):
        assert Graph().is_connected()

    def test_components_partition_nodes(self):
        g = Graph.from_edges([(0, 1, 1.0), (2, 3, 1.0), (3, 4, 1.0)])
        comps = g.connected_components()
        assert sorted(len(c) for c in comps) == [2, 3]
        union = set()
        for c in comps:
            union |= c
        assert union == g.node_set()


class TestDerivedGraphs:
    def test_copy_is_independent(self):
        g = Graph.from_edges([(0, 1, 1.0)])
        h = g.copy()
        h.add_edge(1, 2, 2.0)
        assert g.num_nodes == 2
        assert h.num_nodes == 3

    def test_edge_subgraph_keeps_nodes(self):
        g = Graph.from_edges([(0, 1, 1.0), (1, 2, 2.0), (0, 2, 3.0)])
        sub = g.edge_subgraph([(0, 1)])
        assert sub.num_nodes == 3
        assert sub.num_edges == 1
        assert sub.weight(0, 1) == 1.0

    def test_heterogeneous_nodes(self):
        g = Graph.from_edges([("r", ("lit", 1), 1.0), (("lit", 1), ("lit", 2), 0.0)])
        assert g.num_nodes == 3
        assert g.has_edge(("lit", 2), ("lit", 1))
