"""Tests for Dijkstra and path helpers, cross-checked against networkx."""

import networkx as nx
import pytest
from hypothesis import given, settings, strategies as st

from repro.graphs import Graph, dijkstra, shortest_path, path_weight
from repro.graphs.shortest_paths import reconstruct_path
from repro.graphs.generators import cycle_graph, grid_graph, random_connected_gnp


class TestDijkstraBasics:
    def test_path_graph_distances(self):
        g = Graph.from_edges([(0, 1, 1.0), (1, 2, 2.0), (2, 3, 3.0)])
        dist, _ = dijkstra(g, 0)
        assert dist == {0: 0.0, 1: 1.0, 2: 3.0, 3: 6.0}

    def test_unreachable_absent_from_dist(self):
        g = Graph.from_edges([(0, 1, 1.0)])
        g.add_node(9)
        dist, _ = dijkstra(g, 0)
        assert 9 not in dist

    def test_source_not_in_graph(self):
        with pytest.raises(KeyError):
            dijkstra(Graph(), 0)

    def test_weight_fn_override(self):
        g = Graph.from_edges([(0, 1, 10.0), (1, 2, 10.0), (0, 2, 10.0)])
        dist, _ = dijkstra(g, 0, weight_fn=lambda u, v: 1.0)
        assert dist[2] == 1.0

    def test_negative_weight_fn_rejected(self):
        g = Graph.from_edges([(0, 1, 1.0)])
        with pytest.raises(ValueError):
            dijkstra(g, 0, weight_fn=lambda u, v: -1.0)

    def test_target_early_exit_correct(self):
        g = grid_graph(5, 5)
        full, _ = dijkstra(g, 0)
        dist, _ = dijkstra(g, 0, target=24)
        assert dist[24] == full[24]

    def test_zero_weight_edges(self):
        g = Graph.from_edges([(0, 1, 0.0), (1, 2, 0.0)])
        dist, _ = dijkstra(g, 0)
        assert dist[2] == 0.0


class TestPathReconstruction:
    def test_shortest_path_edges(self):
        g = Graph.from_edges([(0, 1, 1.0), (1, 2, 1.0), (0, 2, 5.0)])
        length, path = shortest_path(g, 0, 2)
        assert length == 2.0
        assert path == [(0, 1), (1, 2)]

    def test_trivial_path(self):
        g = Graph.from_edges([(0, 1, 1.0)])
        length, path = shortest_path(g, 0, 0)
        assert length == 0.0
        assert path == []

    def test_unreachable_target_raises(self):
        g = Graph.from_edges([(0, 1, 1.0)])
        g.add_node(5)
        with pytest.raises(ValueError):
            shortest_path(g, 0, 5)

    def test_reconstruct_unreachable(self):
        with pytest.raises(ValueError):
            reconstruct_path({}, 0, 1)

    def test_path_weight_with_override(self):
        g = cycle_graph(5)
        _, path = shortest_path(g, 0, 2)
        assert path_weight(g, path) == pytest.approx(2.0)
        assert path_weight(g, path, weight_fn=lambda u, v: 0.5) == pytest.approx(1.0)


@settings(max_examples=40, deadline=None)
@given(st.integers(4, 14), st.floats(0.2, 0.9), st.integers(0, 10_000))
def test_dijkstra_matches_networkx(n, p, seed):
    g = random_connected_gnp(n, p, seed=seed)
    h = nx.Graph()
    for u, v, w in g.edges():
        h.add_edge(u, v, weight=w)
    expected = nx.single_source_dijkstra_path_length(h, 0)
    dist, _ = dijkstra(g, 0)
    assert set(dist) == set(expected)
    for node, d in expected.items():
        assert dist[node] == pytest.approx(d)
