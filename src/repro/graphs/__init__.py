"""Graph substrate: structures and algorithms the game layer is built on.

Everything here is implemented from scratch (union-find, MSTs, Dijkstra,
rooted-tree utilities, spanning-tree enumeration/counting, generators);
networkx is used only in the test suite as an independent oracle.
"""

from repro.graphs.graph import Graph, canonical_edge
from repro.graphs.core import IndexedGraph, IntUnionFind, bfs_hops_indexed, dijkstra_indexed
from repro.graphs.unionfind import UnionFind
from repro.graphs.mst import kruskal_mst, prim_mst, minimum_spanning_tree, is_spanning_tree
from repro.graphs.shortest_paths import dijkstra, shortest_path, path_weight
from repro.graphs.tree import RootedTree
from repro.graphs.spanning_trees import (
    count_spanning_trees,
    enumerate_spanning_trees,
    enumerate_minimum_spanning_trees,
)
from repro.graphs.paths import count_simple_paths, enumerate_simple_paths
from repro.graphs.steiner import steiner_tree
from repro.graphs import generators

__all__ = [
    "Graph",
    "canonical_edge",
    "IndexedGraph",
    "IntUnionFind",
    "dijkstra_indexed",
    "bfs_hops_indexed",
    "UnionFind",
    "kruskal_mst",
    "prim_mst",
    "minimum_spanning_tree",
    "is_spanning_tree",
    "dijkstra",
    "shortest_path",
    "path_weight",
    "RootedTree",
    "count_spanning_trees",
    "enumerate_spanning_trees",
    "enumerate_minimum_spanning_trees",
    "count_simple_paths",
    "enumerate_simple_paths",
    "steiner_tree",
    "generators",
]
