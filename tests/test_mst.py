"""Tests for MST algorithms, cross-checked against networkx."""

import networkx as nx
import pytest
from hypothesis import given, settings, strategies as st

from repro.graphs import Graph, kruskal_mst, prim_mst, minimum_spanning_tree, is_spanning_tree
from repro.graphs.mst import is_minimum_spanning_tree
from repro.graphs.generators import cycle_graph, grid_graph, random_connected_gnp


def _to_nx(g: Graph) -> nx.Graph:
    h = nx.Graph()
    h.add_nodes_from(g.nodes)
    for u, v, w in g.edges():
        h.add_edge(u, v, weight=w)
    return h


class TestKruskal:
    def test_triangle(self):
        g = Graph.from_edges([(0, 1, 1.0), (1, 2, 2.0), (0, 2, 5.0)])
        tree = kruskal_mst(g)
        assert set(tree) == {(0, 1), (1, 2)}

    def test_single_node(self):
        g = Graph()
        g.add_node(0)
        assert kruskal_mst(g) == []

    def test_disconnected_raises(self):
        g = Graph.from_edges([(0, 1, 1.0)])
        g.add_node(9)
        with pytest.raises(ValueError):
            kruskal_mst(g)

    def test_deterministic_under_ties(self):
        g = cycle_graph(6)
        assert kruskal_mst(g) == kruskal_mst(g.copy())

    def test_zero_weight_edges(self):
        g = Graph.from_edges([(0, 1, 0.0), (1, 2, 0.0), (0, 2, 1.0)])
        tree = kruskal_mst(g)
        assert g.subset_weight(tree) == 0.0


class TestPrim:
    def test_matches_kruskal_weight_on_grid(self):
        g = grid_graph(4, 5)
        assert g.subset_weight(prim_mst(g)) == pytest.approx(g.subset_weight(kruskal_mst(g)))

    def test_start_node_irrelevant_for_weight(self):
        g = random_connected_gnp(12, 0.4, seed=3)
        w0 = g.subset_weight(prim_mst(g, start=0))
        w7 = g.subset_weight(prim_mst(g, start=7))
        assert w0 == pytest.approx(w7)

    def test_disconnected_raises(self):
        g = Graph.from_edges([(0, 1, 1.0)])
        g.add_node(5)
        with pytest.raises(ValueError):
            prim_mst(g)


class TestValidators:
    def test_is_spanning_tree_accepts_mst(self):
        g = random_connected_gnp(10, 0.5, seed=1)
        assert is_spanning_tree(g, kruskal_mst(g))

    def test_rejects_cycle(self):
        g = cycle_graph(4)
        assert not is_spanning_tree(g, [(0, 1), (1, 2), (2, 3), (3, 0)])

    def test_rejects_too_few_edges(self):
        g = cycle_graph(4)
        assert not is_spanning_tree(g, [(0, 1), (1, 2)])

    def test_rejects_non_edges(self):
        g = cycle_graph(5)
        assert not is_spanning_tree(g, [(0, 1), (1, 2), (2, 3), (0, 2)])

    def test_rejects_duplicates(self):
        g = cycle_graph(4)
        assert not is_spanning_tree(g, [(0, 1), (0, 1), (2, 3)])

    def test_is_minimum_spanning_tree(self):
        g = Graph.from_edges([(0, 1, 1.0), (1, 2, 1.0), (0, 2, 1.0)])
        assert is_minimum_spanning_tree(g, [(0, 1), (1, 2)])
        assert is_minimum_spanning_tree(g, [(0, 1), (0, 2)])
        g2 = Graph.from_edges([(0, 1, 1.0), (1, 2, 1.0), (0, 2, 9.0)])
        assert not is_minimum_spanning_tree(g2, [(0, 1), (0, 2)])

    def test_minimum_spanning_tree_graph(self):
        g = random_connected_gnp(8, 0.6, seed=2)
        t = minimum_spanning_tree(g)
        assert t.num_nodes == g.num_nodes
        assert t.num_edges == g.num_nodes - 1


@settings(max_examples=40, deadline=None)
@given(st.integers(5, 14), st.floats(0.15, 0.9), st.integers(0, 10_000))
def test_mst_weight_matches_networkx(n, p, seed):
    """Kruskal and Prim must both match networkx's MST weight exactly."""
    g = random_connected_gnp(n, p, seed=seed)
    expected = _to_nx(g).size(weight="weight") if g.num_edges == g.num_nodes - 1 else None
    nx_tree = nx.minimum_spanning_tree(_to_nx(g))
    nx_weight = nx_tree.size(weight="weight")
    assert g.subset_weight(kruskal_mst(g)) == pytest.approx(nx_weight)
    assert g.subset_weight(prim_mst(g)) == pytest.approx(nx_weight)
    if expected is not None:
        assert nx_weight == pytest.approx(expected)
