"""The optional ``pulp-cbc`` backend: COIN-OR CBC driven through PuLP.

A conformance implementation, not a performance path: CBC is a wholly
independent simplex/branch-and-cut codebase, so agreement with the
HiGHS-sparse and warm-tableau backends on the conformance matrix is
evidence the *formulations* are right, not just that one solver is
self-consistent.  The module imports ``pulp`` lazily inside the solve so
the registry can always describe the backend; :attr:`LPBackendSpec.
available` is what callers (and the conformance suite's skip path) gate
on when pulp is absent.
"""

from __future__ import annotations

import math

from repro.lp.problem import LinearProgram, LPResult, LPStatus

import numpy as np


def solve_dense(problem: LinearProgram, max_iter: int = 20_000) -> LPResult:
    """One cold CBC solve of a dense :class:`LinearProgram` via PuLP."""
    import pulp  # gated by LPBackendSpec.requires = "pulp"

    n = problem.n_vars
    model = pulp.LpProblem("repro_lp", pulp.LpMinimize)
    xs = []
    for j in range(n):
        lo = problem.lower[j]
        hi = problem.upper[j]
        xs.append(
            pulp.LpVariable(
                f"x{j}",
                lowBound=None if math.isinf(lo) else float(lo),
                upBound=None if math.isinf(hi) else float(hi),
            )
        )
    model += pulp.lpSum(float(cj) * xj for cj, xj in zip(problem.c, xs) if cj != 0.0)
    for i, (row, rhs) in enumerate(zip(problem.rows, problem.rhs)):
        nz = np.nonzero(row)[0]
        model += (
            pulp.lpSum(float(row[j]) * xs[j] for j in nz) <= float(rhs),
            f"row{i}",
        )
    solver = pulp.PULP_CBC_CMD(msg=False)
    model.solve(solver)
    status = model.status
    if status == pulp.LpStatusOptimal:
        x = np.array([pulp.value(xj) or 0.0 for xj in xs], dtype=float)
        # Recompute the objective from x rather than trusting CBC's
        # reported value: PuLP drops constant terms and CBC rounds its
        # printed objective, but c.x in float64 matches the other
        # backends' convention exactly.
        return LPResult(LPStatus.OPTIMAL, x=x, objective=float(problem.c @ x))
    if status == pulp.LpStatusUnbounded:
        return LPResult(LPStatus.UNBOUNDED)
    if status == pulp.LpStatusInfeasible:
        return LPResult(LPStatus.INFEASIBLE)
    # LpStatusNotSolved / LpStatusUndefined: treat as an iteration limit so
    # callers see a non-ok verdict without inventing a new status.
    return LPResult(LPStatus.ITERATION_LIMIT)
