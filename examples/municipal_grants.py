"""Municipal broadband grants: the all-or-nothing constraint in practice.

A municipality funds rural broadband links from a grant program that can
only pay for a link *in full* (all-or-nothing subsidies, Section 5 of the
paper).  Compare, on the paper's own worst-case family and on random
towns:

* the fractional optimum (what a pro-rata program would cost),
* the exact all-or-nothing optimum (branch & bound),
* the greedy least-crowded heuristic a program officer might run,
* the paper's asymptotic worst case e/(2e-1) ~ 61.3% of the network cost.

Run:  python examples/municipal_grants.py

Usage (doctested) — exact never spends more than greedy::

    >>> from repro.bounds.instances import theorem21_path_instance
    >>> from repro.subsidies import greedy_aon_sne, solve_aon_sne_exact
    >>> _game, state = theorem21_path_instance(5)
    >>> exact = solve_aon_sne_exact(state)
    >>> greedy = greedy_aon_sne(state)
    >>> exact.subsidies.cost <= greedy.subsidies.cost + 1e-9
    True
"""

import math

from repro.bounds.instances import theorem21_analysis, theorem21_path_instance
from repro.games import BroadcastGame
from repro.graphs.generators import random_tree_plus_chords
from repro.subsidies import (
    greedy_aon_sne,
    solve_aon_sne_exact,
    solve_sne_broadcast_lp3,
)


def main() -> None:
    print("== Worst-case family (Theorem 21 path-with-shortcuts) ==")
    print("n    wgt(T)   fractional  all-or-nothing  greedy   aon_fraction")
    for n in (6, 10, 14):
        game, state = theorem21_path_instance(n)
        frac = solve_sne_broadcast_lp3(state)
        aon = solve_aon_sne_exact(state)
        greedy = greedy_aon_sne(state)
        w = state.social_cost()
        print(
            f"{n:<4d} {w:7.4f}  {frac.cost:10.4f}  {aon.cost:14.4f}  "
            f"{greedy.cost:7.4f}  {aon.cost / w:10.2%}"
        )
        assert aon.cost == math.inf or aon.cost >= frac.cost - 1e-9
    limit = math.e / (2 * math.e - 1)
    tail = theorem21_analysis(100_000).optimal_fraction
    print(f"asymptotic fraction: {tail:.4f} -> e/(2e-1) = {limit:.4f}")

    print("\n== Random towns (tree + chord road network) ==")
    print("seed  wgt(T)   fractional  exact_aon  greedy_aon  premium")
    for seed in range(5):
        g = random_tree_plus_chords(9, 4, seed=seed, chord_factor=1.1)
        game = BroadcastGame(g, root=0)
        state = game.mst_state()
        frac = solve_sne_broadcast_lp3(state)
        aon = solve_aon_sne_exact(state)
        greedy = greedy_aon_sne(state)
        premium = (aon.cost - frac.cost) if frac.cost > 0 else 0.0
        print(
            f"{seed:<4d}  {state.social_cost():7.3f}  {frac.cost:10.4f}  "
            f"{aon.cost:9.4f}  {greedy.cost:10.4f}  {premium:7.4f}"
        )
        assert aon.optimal and aon.verified
        assert greedy.cost >= aon.cost - 1e-9

    print("\nThe integrality premium is what full-link-only funding costs the")
    print("municipality beyond a pro-rata program; the paper shows it can")
    print(f"reach {limit:.1%} - 1/e = {limit - 1/math.e:.1%} of the network cost.")


if __name__ == "__main__":
    main()
