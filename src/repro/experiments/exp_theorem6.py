"""E2 — Theorem 6: the constructive algorithm spends exactly wgt(T)/e.

On every instance family the per-level accounting lands on wgt(T_j)/e, the
composed assignment enforces the MST, and the LP optimum is never above the
constructive cost (it is the optimum, after all).  Both solvers run through
the :mod:`repro.api` registry.
"""

from __future__ import annotations

import math

from repro.api import solve
from repro.experiments.records import ExperimentResult
from repro.games.broadcast import BroadcastGame
from repro.graphs.generators import (
    grid_graph,
    random_connected_gnp,
    random_geometric_graph,
    random_tree_plus_chords,
)
from repro.utils.timing import Timer


def run(seed: int = 0) -> ExperimentResult:
    families = [
        ("gnp(16,0.3)", random_connected_gnp(16, 0.3, seed=seed)),
        ("gnp(24,0.2)", random_connected_gnp(24, 0.2, seed=seed + 1)),
        ("geometric(20)", random_geometric_graph(20, 0.35, seed=seed + 2)),
        ("grid(4x5)", grid_graph(4, 5)),
        ("tree+chords(18)", random_tree_plus_chords(18, 9, seed=seed + 3)),
    ]
    rows = []
    with Timer() as t:
        for name, g in families:
            game = BroadcastGame(g, root=0)
            state = game.mst_state()
            res = solve(state, solver="theorem6")
            lp = solve(state, solver="sne-lp3")
            rows.append(
                {
                    "family": name,
                    "wgt(T)": state.social_cost(),
                    "constructive": res.budget_used,
                    "fraction": res.metadata["fraction"],
                    "lp_optimum": lp.budget_used,
                    "lp_fraction": lp.budget_used / state.social_cost(),
                    "levels": res.metadata["levels"],
                    "enforced": res.verified,
                }
            )
    result = ExperimentResult(
        experiment_id="E2",
        title="Theorem 6: constructive subsidies of wgt(T)/e enforce the MST",
        headline=(
            f"constructive fraction = 1/e = {1/math.e:.5f} on every family; "
            "LP optimum <= constructive throughout (paper: 37% always suffices)"
        ),
        rows=rows,
    )
    result.elapsed_seconds = t.elapsed
    return result
