"""LP warm-start benchmark — the fast LP + oracle subsystem vs cold rebuilds.

The acceptance bar for the warm-started incremental cutting-plane stack:

* **LP (1)** end-to-end on a 200-node broadcast instance must beat the
  cold-rebuild reference path (dense ``LinearProgram`` rebuilt per round,
  one isolated Dijkstra per player per round) by at least **3x**;
* **LP (2)** must beat its dense build by at least **2x**;
* both with *byte-identical* ``SolveReport`` JSON (modulo the wall clock
  and the solve-path ``profile`` counters) and identical equilibrium
  verdicts — checked here across **all five game families**.

The wall-clock gates are environment-tunable: ``REPRO_BENCH_LP1_MIN`` /
``REPRO_BENCH_LP2_MIN`` override the 3x / 2x thresholds (the CI
perf-smoke job relaxes both to 1.5x for the noisy 2-core runner), and the
gates skip entirely under plain ``CI`` without those overrides, exactly
like the other hand-rolled timing gates in this directory.

Each gated run appends a measurement record to ``BENCH_lp.json`` at the
repo root — a growing trajectory of (timestamp, timings, speedups,
profile counters) so regressions are visible across commits.
"""

import json
import os
import time
from pathlib import Path

import pytest

from repro.api import solve
from repro.api.serialize import report_to_json
from repro.games.broadcast import BroadcastGame
from repro.games.directed import DirectedNetworkDesignGame
from repro.games.game import NetworkDesignGame
from repro.games.multicast import MulticastGame
from repro.games.weighted import WeightedNetworkDesignGame
from repro.graphs.generators import random_tree_plus_chords
from repro.subsidies.sne_lp import (
    solve_sne_cutting_plane_lp1,
    solve_sne_polynomial_lp2,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
TRAJECTORY = REPO_ROOT / "BENCH_lp.json"

#: wall-clock gates; overridable for slow shared runners
LP1_MIN = float(os.environ.get("REPRO_BENCH_LP1_MIN", "3.0"))
LP2_MIN = float(os.environ.get("REPRO_BENCH_LP2_MIN", "2.0"))

#: plain CI without explicit thresholds: run everything except the gates
_SKIP_TIMING = (
    os.environ.get("CI", "") != ""
    and "REPRO_BENCH_LP1_MIN" not in os.environ
    and "REPRO_BENCH_LP2_MIN" not in os.environ
)


def _broadcast_state(n, chords, seed, chord_factor):
    g = random_tree_plus_chords(n, chords, seed=seed, chord_factor=chord_factor)
    return BroadcastGame(g, root=0).mst_state()


@pytest.fixture(scope="module")
def lp1_state():
    """The 200-node broadcast gate instance."""
    return _broadcast_state(200, 500, seed=11, chord_factor=1.0)


@pytest.fixture(scope="module")
def lp2_state():
    """LP (2)'s gate instance (the dense cold build is quadratic, so the
    instance is sized to keep the cold half of the comparison runnable)."""
    return _broadcast_state(60, 30, seed=7, chord_factor=1.1)


def _best_of_pair(fn_a, fn_b, reps):
    """Best-of timings for two callables, *interleaved* per repetition.

    Timing the fast and cold paths in separate back-to-back blocks lets a
    load spike or CPU-frequency shift land entirely inside one block and
    skew the ratio; alternating them spreads any disturbance across both.
    """
    times_a, times_b = [], []
    result_a = result_b = None
    for _ in range(reps):
        t0 = time.perf_counter()
        result_a = fn_a()
        times_a.append(time.perf_counter() - t0)
        t0 = time.perf_counter()
        result_b = fn_b()
        times_b.append(time.perf_counter() - t0)
    return min(times_a), result_a, min(times_b), result_b


def _stripped_report_bytes(report) -> bytes:
    """Canonical report JSON minus wall clock and solve-path provenance."""
    payload = report_to_json(report)
    payload.pop("wall_clock_seconds", None)
    metadata = payload.get("metadata")
    if isinstance(metadata, dict):
        metadata.pop("profile", None)
    return json.dumps(payload, sort_keys=True).encode()


def _append_trajectory(entry: dict) -> None:
    history = []
    if TRAJECTORY.exists():
        try:
            history = json.loads(TRAJECTORY.read_text())
        except json.JSONDecodeError:
            history = []
        if not isinstance(history, list):
            history = [history]
    history.append(entry)
    TRAJECTORY.write_text(json.dumps(history, indent=2) + "\n")


# ---------------------------------------------------------------------------
# pytest-benchmark visibility (no gates; run once under --benchmark-disable)
# ---------------------------------------------------------------------------


def test_lp1_fast_path(benchmark, lp1_state):
    res = benchmark(solve_sne_cutting_plane_lp1, lp1_state)
    assert res.feasible and res.verified


def test_lp1_cold_path(benchmark, lp1_state):
    res = benchmark(lambda: solve_sne_cutting_plane_lp1(lp1_state, fast=False))
    assert res.feasible and res.verified


def test_lp2_fast_path(benchmark, lp2_state):
    res = benchmark(solve_sne_polynomial_lp2, lp2_state)
    assert res.feasible and res.verified


# ---------------------------------------------------------------------------
# cross-checks: identical outcomes on every game family, both solvers
# ---------------------------------------------------------------------------


def _family_zoo():
    g = random_tree_plus_chords(14, 7, seed=3, chord_factor=1.1)
    others = [u for u in g.nodes if u != 0]
    demands = [1.0 + (i % 3) * 0.5 for i in range(6)]
    return {
        "broadcast": BroadcastGame(g, root=0),
        "multicast": MulticastGame(g, 0, others[:5]),
        "general": NetworkDesignGame(g, [(u, 0) for u in others[:6]]),
        "weighted": WeightedNetworkDesignGame(
            g, [(u, 0) for u in others[:6]], demands
        ),
        "directed": DirectedNetworkDesignGame(g, [(u, 0) for u in others[:6]]),
    }


@pytest.mark.parametrize("solver", ["sne-cutting-plane", "sne-poly"])
def test_reports_byte_identical_across_families(solver):
    """Fast vs cold: byte-identical reports + verdicts on all 5 families."""
    for family, game in _family_zoo().items():
        fast = solve(game, solver)
        cold = solve(game, solver, fast=False)
        assert fast.verified == cold.verified, (family, solver)
        assert _stripped_report_bytes(fast) == _stripped_report_bytes(cold), (
            family,
            solver,
        )
        profile = fast.metadata.get("profile")
        assert profile is not None and set(profile) == {
            "dijkstra_calls",
            "players_batched",
            "cut_rounds",
            "warm_start_hits",
        }, (family, solver)


def test_simplex_backend_warm_start_agrees(lp2_state):
    """The dual-simplex warm start must match the cold tableau exactly."""
    fast = solve_sne_cutting_plane_lp1(lp2_state, method="simplex")
    cold = solve_sne_cutting_plane_lp1(lp2_state, method="simplex", fast=False)
    assert fast.verified and cold.verified
    assert (fast.rounds, fast.cuts) == (cold.rounds, cold.cuts)
    assert dict(fast.subsidies.items()) == dict(cold.subsidies.items())
    assert fast.profile["warm_start_hits"] >= 1


# ---------------------------------------------------------------------------
# the wall-clock gates + the BENCH_lp.json trajectory record
# ---------------------------------------------------------------------------


@pytest.mark.skipif(
    _SKIP_TIMING,
    reason="wall-clock ratio gates need a quiet machine or an explicit "
    "REPRO_BENCH_LP*_MIN threshold (the CI perf-smoke job sets one)",
)
def test_lp_warmstart_speedups(lp1_state, lp2_state):
    """Gate the end-to-end speedups and append the trajectory record."""
    # Warm every cache (graph interning, bindings) before timing.
    solve_sne_cutting_plane_lp1(lp1_state)
    solve_sne_polynomial_lp2(lp2_state)

    t_fast1, res_fast1, t_cold1, res_cold1 = _best_of_pair(
        lambda: solve_sne_cutting_plane_lp1(lp1_state),
        lambda: solve_sne_cutting_plane_lp1(lp1_state, fast=False),
        5,
    )
    assert res_fast1.verified and res_cold1.verified
    assert dict(res_fast1.subsidies.items()) == dict(res_cold1.subsidies.items())
    assert (res_fast1.rounds, res_fast1.cuts) == (res_cold1.rounds, res_cold1.cuts)

    t_fast2, res_fast2, t_cold2, res_cold2 = _best_of_pair(
        lambda: solve_sne_polynomial_lp2(lp2_state),
        lambda: solve_sne_polynomial_lp2(lp2_state, fast=False),
        3,
    )
    assert res_fast2.verified and res_cold2.verified
    assert dict(res_fast2.subsidies.items()) == dict(res_cold2.subsidies.items())

    speedup1 = t_cold1 / t_fast1
    speedup2 = t_cold2 / t_fast2
    _append_trajectory(
        {
            "bench": "lp_warmstart",
            "timestamp": time.time(),
            "thresholds": {"lp1": LP1_MIN, "lp2": LP2_MIN},
            "lp1": {
                "instance": "broadcast n=200 chords=500 seed=11",
                "fast_ms": t_fast1 * 1e3,
                "cold_ms": t_cold1 * 1e3,
                "speedup": speedup1,
                "rounds": res_fast1.rounds,
                "cuts": res_fast1.cuts,
                "profile": res_fast1.profile,
            },
            "lp2": {
                "instance": "broadcast n=60 chords=30 seed=7",
                "fast_ms": t_fast2 * 1e3,
                "cold_ms": t_cold2 * 1e3,
                "speedup": speedup2,
                "profile": res_fast2.profile,
            },
        }
    )
    assert speedup1 >= LP1_MIN, (
        f"LP(1) fast {t_fast1 * 1e3:.2f}ms vs cold {t_cold1 * 1e3:.2f}ms "
        f"-> {speedup1:.2f}x (< {LP1_MIN}x)"
    )
    assert speedup2 >= LP2_MIN, (
        f"LP(2) fast {t_fast2 * 1e3:.2f}ms vs cold {t_cold2 * 1e3:.2f}ms "
        f"-> {speedup2:.2f}x (< {LP2_MIN}x)"
    )
