"""The LP backend registry: one declarative catalogue of every LP solver.

Mirrors :mod:`repro.api.registry` (the subsidy-solver registry) one layer
down: each LP backend is described by an :class:`LPBackendSpec` — its
canonical name, capability flags (``warm_start`` / ``sparse`` / ``exact`` /
``incremental``), aliases, an optional import requirement gating
availability, and two callables implementing the uniform contract:

* ``solve(problem, max_iter=...) -> LPResult`` — one cold solve of a dense
  :class:`~repro.lp.problem.LinearProgram`;
* ``make_session(inc) -> session`` — a warm-state holder bound to one
  :class:`~repro.lp.incremental.IncrementalLP`, whose
  ``session.solve(cached)`` answers the row-appending re-solve pattern.

Backends register themselves with :func:`register_backend`;
:mod:`repro.lp.backends` registers the built-ins on import.  Lookup is by
canonical name or alias; unknown names raise :class:`UnknownBackendError`
(a ``ValueError``, so legacy ``solve_lp(method=...)`` callers keep their
error contract) and known-but-uninstallable backends raise
:class:`BackendUnavailableError`.
"""

from __future__ import annotations

import difflib
import importlib
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.lp.problem import LinearProgram, LPResult


class UnknownBackendError(ValueError):
    """Raised when an LP backend name is not in the registry."""

    def __init__(self, name: str, known: List[str]):
        self.name = name
        self.known = known
        suggestions = difflib.get_close_matches(name, known, n=3, cutoff=0.4)
        msg = f"unknown LP backend {name!r}; known backends: {', '.join(known)}"
        if suggestions:
            msg += f" (did you mean {' or '.join(repr(s) for s in suggestions)}?)"
        super().__init__(msg)


class BackendUnavailableError(RuntimeError):
    """A registered backend whose import requirement is missing."""

    def __init__(self, name: str, requires: str):
        self.name = name
        self.requires = requires
        super().__init__(
            f"LP backend {name!r} needs the optional dependency {requires!r}, "
            f"which is not installed (pip install {requires})"
        )


class ColdSession:
    """Fallback incremental session: rebuild dense and solve cold.

    Used by backends without incremental machinery (``exact``,
    ``pulp-cbc``).  Correct for every backend by the dense-twin contract
    (:meth:`~repro.lp.incremental.IncrementalLP.to_linear_program`
    materializes identical rows in order); never warm.
    """

    def __init__(self, spec: "LPBackendSpec", inc) -> None:
        self._spec = spec
        self._inc = inc

    def solve(self, cached, max_iter: int = 20_000) -> Tuple[LPResult, bool]:
        return self._spec.solve(self._inc.to_linear_program(), max_iter=max_iter), False


@dataclass(frozen=True)
class LPBackendSpec:
    """Declarative description of one registered LP backend."""

    #: canonical registry name, e.g. ``"highs-sparse"``
    name: str
    #: one-line human description (shown by ``repro-experiments backends``)
    description: str
    #: cold dense solve: ``(problem, max_iter=...) -> LPResult``
    solve: Callable[..., LPResult]
    #: re-solves can resume from previous solve state (basis / optimum)
    warm_start: bool = False
    #: consumes sparse row storage without densifying
    sparse: bool = False
    #: exact rational arithmetic — verdicts are proofs, not float estimates
    exact: bool = False
    #: ships a bespoke incremental session (vs. the ColdSession fallback)
    incremental: bool = False
    #: alternative lookup names (``"highs"``/``"simplex"`` legacy spellings)
    aliases: Tuple[str, ...] = field(default=())
    #: import name gating availability (``None`` = always available)
    requires: Optional[str] = None
    #: bespoke session factory ``(spec, inc) -> session``; None = ColdSession
    session_factory: Optional[Callable[..., object]] = None
    #: backend version; bump when outputs for a fixed problem can change
    version: str = "1"

    @property
    def available(self) -> bool:
        """Whether the backend can actually run in this environment."""
        if self.requires is None:
            return True
        try:
            importlib.import_module(self.requires)
            return True
        except ImportError:
            return False

    def make_session(self, inc) -> object:
        """A warm-state session bound to one :class:`IncrementalLP`."""
        factory = self.session_factory or ColdSession
        return factory(self, inc)

    def capabilities(self) -> Dict[str, bool]:
        """The capability flags as a plain dict (CLI / ``/stats`` rendering)."""
        return {
            "warm_start": self.warm_start,
            "sparse": self.sparse,
            "exact": self.exact,
            "incremental": self.incremental,
        }


_REGISTRY: Dict[str, LPBackendSpec] = {}
_ALIASES: Dict[str, str] = {}


def register_backend(spec: LPBackendSpec) -> LPBackendSpec:
    """Record ``spec`` in the catalogue.

    Re-registering a taken name (or alias) raises ``ValueError`` — backend
    names are a public API surface (CLI ``--backend``, report metadata,
    the serve daemon's ``/stats`` backend section).
    """
    for key in (spec.name, *spec.aliases):
        if key in _REGISTRY or key in _ALIASES:
            raise ValueError(f"LP backend name {key!r} is already registered")
    _REGISTRY[spec.name] = spec
    for alias in spec.aliases:
        _ALIASES[alias] = spec.name
    return spec


def get_backend(name: str, require_available: bool = True) -> LPBackendSpec:
    """Look up a backend by canonical name or alias.

    ``require_available`` (default) raises :class:`BackendUnavailableError`
    when the backend's optional dependency is missing; pass ``False`` to
    inspect the spec anyway (the conformance suite's skip path does).
    """
    if not isinstance(name, str):
        raise TypeError(f"backend name must be a string, got {type(name).__name__}")
    key = _ALIASES.get(name, name)
    spec = _REGISTRY.get(key)
    if spec is None:
        raise UnknownBackendError(name, backend_names())
    if require_available and not spec.available:
        assert spec.requires is not None
        raise BackendUnavailableError(spec.name, spec.requires)
    return spec


def list_backends(
    available_only: bool = False,
    *,
    warm_start: Optional[bool] = None,
    sparse: Optional[bool] = None,
    exact: Optional[bool] = None,
    incremental: Optional[bool] = None,
) -> List[LPBackendSpec]:
    """All registered backends, optionally filtered by capability flags."""
    specs = sorted(_REGISTRY.values(), key=lambda s: s.name)
    if available_only:
        specs = [s for s in specs if s.available]
    for flag, want in (
        ("warm_start", warm_start),
        ("sparse", sparse),
        ("exact", exact),
        ("incremental", incremental),
    ):
        if want is not None:
            specs = [s for s in specs if getattr(s, flag) == want]
    return specs


def backend_names(include_aliases: bool = False) -> List[str]:
    """Canonical names of all registered backends."""
    names = sorted(_REGISTRY)
    if include_aliases:
        names += sorted(_ALIASES)
    return names


def solve_lp(problem: LinearProgram, method: str = "highs", max_iter: int = 20_000) -> LPResult:
    """Solve a canonical-form LP with the chosen backend.

    The uniform front door: ``method`` is any registered backend name or
    alias (``"highs"`` and ``"simplex"`` remain valid legacy spellings for
    ``highs-sparse`` / ``warm-tableau``).
    """
    return get_backend(method).solve(problem, max_iter=max_iter)
