"""Simple-path enumeration.

The coalitional-deviation checker (Section 6's "deviations of coalitions")
needs every simple path between a player's terminals on small graphs; this
module provides bounded enumeration with deterministic order.
"""

from __future__ import annotations

from typing import Iterator, List, Optional

from repro.graphs.graph import Graph, Node


def enumerate_simple_paths(
    graph: Graph,
    source: Node,
    target: Node,
    max_paths: Optional[int] = None,
    max_length: Optional[int] = None,
) -> Iterator[List[Node]]:
    """Yield every simple path (as a node list) from source to target.

    Depth-first with deterministic neighbor order; ``max_paths`` caps the
    number yielded and ``max_length`` caps the edge count per path.
    Exponential in general — intended for the small coalition instances.
    """
    if source not in graph or target not in graph:
        raise KeyError("source/target not in graph")
    if source == target:
        yield [source]
        return
    limit = max_length if max_length is not None else graph.num_nodes - 1
    produced = 0
    stack: List[Node] = [source]
    on_path = {source}

    def dfs() -> Iterator[List[Node]]:
        nonlocal produced
        if max_paths is not None and produced >= max_paths:
            return
        u = stack[-1]
        if u == target:
            produced += 1
            yield list(stack)
            return
        if len(stack) - 1 >= limit:
            return
        for v in sorted(graph.adjacency(u), key=lambda x: (type(x).__name__, repr(x))):
            if v in on_path:
                continue
            stack.append(v)
            on_path.add(v)
            yield from dfs()
            stack.pop()
            on_path.discard(v)

    yield from dfs()


def count_simple_paths(graph: Graph, source: Node, target: Node) -> int:
    """Number of simple source->target paths (exponential; small graphs)."""
    return sum(1 for _ in enumerate_simple_paths(graph, source, target))
