"""Equilibrium checking via best-response shortest-path oracles.

For a player ``i`` contemplating a deviation from state ``T``, edge ``a``
costs her ``(w_a - b_a) / (n_a(T) + 1 - n_a^i(T))`` — the denominator is the
number of users of ``a`` in ``(T_{-i}, T'_i)``.  A best response is then a
shortest path under that pricing, exactly the separation oracle the paper
uses inside Theorem 1.  ``T`` is an equilibrium iff no player's best response
beats her current cost (weak inequality, handled by the shared tolerance).

:func:`check_equilibrium` runs on the vectorized
:class:`~repro.games.engine.BestResponseEngine` (per-edge weight/subsidy
arrays over the indexed graph core).  The per-player closures
:func:`best_response` / :func:`best_deviation_from_tree` are the original
dict-based oracles, kept as the slow reference implementation — the engine
tests and benchmarks cross-check against them via
:func:`check_equilibrium_legacy`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Union

from repro.graphs.graph import Node, canonical_edge
from repro.graphs.shortest_paths import dijkstra
from repro.games.broadcast import TreeState
from repro.games.game import State, Subsidies
from repro.utils.tolerances import EQ_TOL, is_improvement


@dataclass
class Deviation:
    """An improving deviation found by the checker."""

    player: object  # player index (general game) or node (broadcast game)
    current_cost: float
    deviation_cost: float
    path_nodes: List[Node]

    @property
    def gain(self) -> float:
        return self.current_cost - self.deviation_cost


@dataclass
class EquilibriumReport:
    """Outcome of an equilibrium check."""

    is_equilibrium: bool
    deviations: List[Deviation] = field(default_factory=list)

    def __bool__(self) -> bool:
        return self.is_equilibrium


def _nodes_from_parent(parent: dict, source: Node, target: Node) -> List[Node]:
    nodes = [target]
    while nodes[-1] != source:
        nodes.append(parent[nodes[-1]])
    nodes.reverse()
    return nodes


# ---------------------------------------------------------------------------
# General games
# ---------------------------------------------------------------------------


def best_response(
    state: State,
    player_index: int,
    subsidies: Optional[Subsidies] = None,
) -> Deviation:
    """Best response of one player in a general game state.

    Returns a :class:`Deviation` record regardless of whether it improves;
    callers compare ``deviation_cost`` against ``current_cost``.
    """
    game = state.game
    player = game.players[player_index]
    own_edges = state.edge_sets[player_index]

    def weight_fn(u: Node, v: Node) -> float:
        e = canonical_edge(u, v)
        w = game.graph.weight(u, v)
        b = subsidies.get(e, 0.0) if subsidies else 0.0
        denom = state.usage.get(e, 0) + 1 - (1 if e in own_edges else 0)
        return max(0.0, w - b) / denom

    dist, parent = dijkstra(game.graph, player.source, weight_fn=weight_fn, target=player.target)
    if player.target not in dist:
        raise ValueError(f"player {player_index} cannot reach her target")
    nodes = _nodes_from_parent(parent, player.source, player.target)
    return Deviation(
        player=player_index,
        current_cost=state.player_cost(player_index, subsidies),
        deviation_cost=dist[player.target],
        path_nodes=nodes,
    )


# ---------------------------------------------------------------------------
# Broadcast games
# ---------------------------------------------------------------------------


def best_deviation_from_tree(
    state: TreeState,
    node: Node,
    subsidies: Optional[Subsidies] = None,
) -> Deviation:
    """Best response of (a player at) ``node`` in a broadcast tree state."""
    game = state.game
    own_edges = set(state.tree.path_to_root(node))

    def weight_fn(u: Node, v: Node) -> float:
        e = canonical_edge(u, v)
        w = game.graph.weight(u, v)
        b = subsidies.get(e, 0.0) if subsidies else 0.0
        denom = state.loads.get(e, 0) + 1 - (1 if e in own_edges else 0)
        return max(0.0, w - b) / denom

    dist, parent = dijkstra(game.graph, node, weight_fn=weight_fn, target=game.root)
    nodes = _nodes_from_parent(parent, node, game.root)
    return Deviation(
        player=node,
        current_cost=state.player_cost(node, subsidies),
        deviation_cost=dist[game.root],
        path_nodes=nodes,
    )


# ---------------------------------------------------------------------------
# Unified checker
# ---------------------------------------------------------------------------


def check_equilibrium(
    state: Union[State, TreeState],
    subsidies: Optional[Subsidies] = None,
    tol: float = EQ_TOL,
    find_all: bool = False,
) -> EquilibriumReport:
    """Check whether a state is a (pure Nash) equilibrium.

    Works for both general-game :class:`State` and broadcast
    :class:`TreeState` profiles.  With ``find_all=False`` (default) the check
    stops at the first improving deviation.

    Runs on the vectorized engine: the graph is interned once (cached per
    graph), usage counts and subsidized weights live in per-edge arrays, and
    each player costs one array division plus an int-id Dijkstra.

    Notes
    -----
    Players whose current cost is zero are skipped — costs are nonnegative,
    so they can never improve.  This matters on the Theorem 12 graphs where
    most auxiliary players ride fully-shared zero-weight edges.
    """
    from repro.games.engine import BestResponseEngine

    engine = BestResponseEngine.for_graph(state.game.graph)
    binding = engine.bind(state)
    wb = engine.net_weights(engine.subsidy_vector(subsidies))
    labels = engine.ig.labels
    deviations = [
        Deviation(
            player=rec.player,
            current_cost=rec.current_cost,
            deviation_cost=rec.deviation_cost,
            path_nodes=[labels[i] for i in rec.node_ids],
        )
        for rec in binding.scan(wb, tol=tol, find_all=find_all)
    ]
    return EquilibriumReport(is_equilibrium=not deviations, deviations=deviations)


def check_equilibrium_legacy(
    state: Union[State, TreeState],
    subsidies: Optional[Subsidies] = None,
    tol: float = EQ_TOL,
    find_all: bool = False,
) -> EquilibriumReport:
    """Reference equilibrium check via the per-player dict-based oracles.

    Semantically identical to :func:`check_equilibrium`; kept as the
    cross-validation baseline for the engine (tests assert verdict equality
    on randomized instances, ``benchmarks/bench_equilibrium.py`` measures
    the speedup).
    """
    deviations: List[Deviation] = []

    if isinstance(state, TreeState):
        costs = state.all_player_costs(subsidies)
        for node in state.game.player_nodes():
            if costs[node] <= tol:
                continue
            dev = best_deviation_from_tree(state, node, subsidies)
            if is_improvement(dev.deviation_cost, dev.current_cost, tol):
                deviations.append(dev)
                if not find_all:
                    break
    else:
        for i in range(state.game.n_players):
            if state.player_cost(i, subsidies) <= tol:
                continue
            dev = best_response(state, i, subsidies)
            if is_improvement(dev.deviation_cost, dev.current_cost, tol):
                deviations.append(dev)
                if not find_all:
                    break

    return EquilibriumReport(is_equilibrium=not deviations, deviations=deviations)
