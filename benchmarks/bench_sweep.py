"""Sweep-runtime benchmark — multi-core scaling and warm-cache reruns.

The acceptance bar for the :mod:`repro.runtime` orchestration layer, on a
3-solver x 4-instance grid:

* ``--jobs 4`` beats ``--jobs 1`` by >= 1.7x wall clock on a cold cache
  (multi-core machines only; the ratio gate skips itself under CI and on
  starved runners, following the repo's benchmark convention),
* a warm cache beats the cold run by >= 10x,
* the deterministic result JSON is byte-identical across all of the above.
"""

import json
import os

import pytest

from repro.runtime import ResultCache, SweepRunner, SweepSpec

#: the acceptance grid: 3 solvers x (2 sizes x 2 replicas) = 12 jobs
GRID = dict(
    solvers=["sne-lp3", "sne-cutting-plane", "aon-exact"],
    models=["tree-chords"],
    sizes=[24, 30],
    count=2,
    seed=11,
)


def expand():
    return SweepSpec(**GRID).expand()


def result_bytes(result):
    return json.dumps(result.to_json(), sort_keys=True).encode()


@pytest.fixture(scope="module")
def cold_baseline(tmp_path_factory):
    """One serial cold run: the reference for bytes and wall clock."""
    cache = ResultCache(tmp_path_factory.mktemp("cache-base"))
    result = SweepRunner(cache=cache, jobs=1).run(expand())
    assert result.ok and result.cache_hits == 0
    return result, cache


def test_sweep_serial(benchmark, tmp_path_factory):
    cache_root = tmp_path_factory.mktemp("cache-serial")

    def run():
        cache = ResultCache(cache_root)
        cache.clear()
        return SweepRunner(cache=cache, jobs=1).run(expand())

    result = benchmark(run)
    assert result.ok and len(result) == 12


def test_sweep_warm_cache(benchmark, cold_baseline):
    baseline, cache = cold_baseline

    def rerun():
        return SweepRunner(cache=cache, jobs=1).run(expand())

    result = benchmark(rerun)
    assert result.cache_hits == len(result) == 12
    assert result_bytes(result) == result_bytes(baseline)


def test_parallel_results_byte_identical(cold_baseline):
    baseline, _ = cold_baseline
    parallel = SweepRunner(cache=False, jobs=4).run(expand())
    assert parallel.ok
    assert result_bytes(parallel) == result_bytes(baseline)


@pytest.mark.skipif(
    os.environ.get("CI", "") != "",
    reason="wall-clock ratio assertion; shared CI runners are too noisy for it",
)
def test_warm_cache_speedup_at_least_10x(cold_baseline):
    baseline, cache = cold_baseline
    warm = SweepRunner(cache=cache, jobs=1).run(expand())
    assert warm.cache_hits == 12
    ratio = baseline.wall_seconds / max(warm.wall_seconds, 1e-9)
    assert ratio >= 10.0, (
        f"warm cache only {ratio:.1f}x faster "
        f"({baseline.wall_seconds:.3f}s cold vs {warm.wall_seconds:.3f}s warm)"
    )


@pytest.mark.skipif(
    os.environ.get("CI", "") != "",
    reason="wall-clock ratio assertion; shared CI runners are too noisy for it",
)
@pytest.mark.skipif(
    (os.cpu_count() or 1) < 4,
    reason="multi-core scaling needs >= 4 cores",
)
def test_jobs4_speedup_at_least_1_7x(tmp_path_factory):
    jobs = expand()
    serial = SweepRunner(cache=False, jobs=1).run(jobs)
    parallel = SweepRunner(cache=False, jobs=4).run(jobs)
    assert serial.ok and parallel.ok
    assert result_bytes(serial) == result_bytes(parallel)
    ratio = serial.wall_seconds / max(parallel.wall_seconds, 1e-9)
    assert ratio >= 1.7, (
        f"--jobs 4 only {ratio:.2f}x faster "
        f"({serial.wall_seconds:.3f}s serial vs {parallel.wall_seconds:.3f}s parallel)"
    )
