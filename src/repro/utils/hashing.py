"""Stable content hashing for cache keys and payload digests.

The sweep runtime (:mod:`repro.runtime`) addresses results by the *content*
of the work that produced them: the instance JSON, the solver name and
version, and the solver options.  Two ingredients make that key stable:

* :func:`canonical_json` — a deterministic JSON rendering (sorted keys, no
  whitespace, no NaN) so logically-equal payloads serialize identically
  across processes, platforms and Python versions;
* :func:`stable_hash` — SHA-256 over that rendering, returned as lowercase
  hex.  Unlike the built-in ``hash()``, it is not salted per process, so
  keys computed in a worker match keys computed in the parent.

>>> stable_hash({"b": 1, "a": 2}) == stable_hash({"a": 2, "b": 1})
True
>>> len(stable_hash([1, 2, 3]))
64
"""

from __future__ import annotations

import hashlib
import json
from typing import Any


class UnhashablePayloadError(TypeError):
    """The payload contains values JSON cannot represent deterministically."""


def canonical_json(obj: Any) -> str:
    """Render ``obj`` as deterministic JSON text.

    Keys are sorted, separators are minimal, and non-finite floats are
    rejected (``NaN != NaN`` would silently break key equality).  Raises
    :class:`UnhashablePayloadError` for values JSON cannot encode.
    """
    try:
        return json.dumps(
            obj, sort_keys=True, separators=(",", ":"), allow_nan=False
        )
    except (TypeError, ValueError) as exc:
        raise UnhashablePayloadError(
            f"payload is not canonically JSON-serializable: {exc}"
        ) from exc


def stable_hash(obj: Any) -> str:
    """SHA-256 hex digest of :func:`canonical_json` of ``obj``."""
    return hashlib.sha256(canonical_json(obj).encode("utf-8")).hexdigest()


def source_digest(*texts: str) -> str:
    """SHA-256 hex digest of one or more source-code strings.

    The experiment cache keys include a digest of the experiment module's
    source, so editing an experiment invalidates its cached results without
    anyone remembering to bump a version number.
    """
    h = hashlib.sha256()
    for text in texts:
        h.update(text.encode("utf-8"))
        h.update(b"\x00")  # unambiguous concatenation boundary
    return h.hexdigest()
