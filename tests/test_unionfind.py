"""Unit and property tests for the union-find substrate."""

from hypothesis import given, strategies as st

from repro.graphs import UnionFind


class TestUnionFindBasics:
    def test_initial_singletons(self):
        uf = UnionFind(range(5))
        assert len(uf) == 5
        assert uf.n_components == 5

    def test_union_reduces_components(self):
        uf = UnionFind(range(4))
        assert uf.union(0, 1)
        assert uf.n_components == 3
        assert not uf.union(1, 0)
        assert uf.n_components == 3

    def test_connected_transitive(self):
        uf = UnionFind(range(5))
        uf.union(0, 1)
        uf.union(1, 2)
        assert uf.connected(0, 2)
        assert not uf.connected(0, 3)

    def test_lazy_registration(self):
        uf = UnionFind()
        assert uf.find("x") == "x"
        assert "x" in uf
        assert uf.n_components == 1

    def test_add_idempotent(self):
        uf = UnionFind()
        uf.add(1)
        uf.add(1)
        assert uf.n_components == 1

    def test_hashable_elements(self):
        uf = UnionFind()
        uf.union(("a", 1), "b")
        assert uf.connected("b", ("a", 1))


@given(st.lists(st.tuples(st.integers(0, 15), st.integers(0, 15)), max_size=60))
def test_union_find_matches_naive_partition(pairs):
    """Union-find must agree with a brute-force set-merging partition."""
    uf = UnionFind(range(16))
    naive = [{i} for i in range(16)]

    def naive_find(x):
        for s in naive:
            if x in s:
                return s
        raise AssertionError

    for x, y in pairs:
        uf.union(x, y)
        sx, sy = naive_find(x), naive_find(y)
        if sx is not sy:
            sx |= sy
            naive.remove(sy)

    assert uf.n_components == len(naive)
    for x in range(16):
        for y in range(16):
            assert uf.connected(x, y) == (naive_find(x) is naive_find(y))
